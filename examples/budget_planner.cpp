// Budget planner: answer "how much faster does my job finish if I pay
// more?" by sweeping budgets and printing the tuned expected latency — the
// library as a what-if planning tool for a crowd-powered pipeline.
//
// Usage: budget_planner [num_tasks] [repetitions] [max_budget]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "tuning/evaluator.h"
#include "tuning/group_latency_table.h"
#include "tuning/repetition_allocator.h"

int main(int argc, char** argv) {
  const int num_tasks = argc > 1 ? std::atoi(argv[1]) : 50;
  const int repetitions = argc > 2 ? std::atoi(argv[2]) : 4;
  const long max_budget = argc > 3 ? std::atol(argv[3]) : 4000;
  if (num_tasks < 1 || repetitions < 1) {
    std::fprintf(stderr, "usage: %s [num_tasks>=1] [reps>=1] [max_budget]\n",
                 argv[0]);
    return 1;
  }

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  htune::TuningProblem problem;
  htune::TaskGroup group;
  group.name = "votes";
  group.num_tasks = num_tasks;
  group.repetitions = repetitions;
  group.processing_rate = 2.0;
  group.curve = curve;
  problem.groups.push_back(group);

  const long min_budget = problem.MinimumBudget();
  if (max_budget < min_budget) {
    std::fprintf(stderr,
                 "max budget %ld below the feasibility floor %ld (one unit "
                 "per repetition)\n",
                 max_budget, min_budget);
    return 1;
  }

  const htune::GroupLatencyTable table(group);
  std::printf("job: %d tasks x %d repetitions (difficulty lambda_p = %.1f)\n",
              num_tasks, repetitions, group.processing_rate);
  std::printf("%10s %14s %18s %18s\n", "budget", "price/rep",
              "E[phase-1 latency]", "E[+ processing]");

  const htune::RepetitionAllocator tuner;
  const long step = (max_budget - min_budget) / 10 > 0
                        ? (max_budget - min_budget) / 10
                        : 1;
  for (long budget = min_budget; budget <= max_budget; budget += step) {
    problem.budget = budget;
    const auto prices = tuner.SolvePrices(problem);
    if (!prices.ok()) {
      std::fprintf(stderr, "%s\n", prices.status().ToString().c_str());
      return 1;
    }
    const double phase1 = table.Phase1((*prices)[0]);
    std::printf("%10ld %14d %18.4f %18.4f\n", budget, (*prices)[0], phase1,
                phase1 + table.Phase2());
  }
  std::printf(
      "\nthe marginal value of budget falls off: past the knee, latency is "
      "processing-bound and more pay buys nothing (cf. paper §5.1.2)\n");
  return 0;
}
