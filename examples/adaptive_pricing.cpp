// Adaptive pricing: run a tuned job with the closed-loop controller on a
// market whose real price-responsiveness has silently drifted away from
// the calibration. The controller re-learns each task type's rate from the
// acceptance stream and reprices the still-open repetitions.

#include <cstdio>
#include <memory>
#include <vector>

#include "control/adaptive_retuner.h"
#include "tuning/repetition_allocator.h"

int main() {
  // What we believe (yesterday's calibration)...
  const auto believed = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  // ...and what the market actually does today: image-tagging tasks behave
  // as calibrated, but the transcription crowd has thinned to 20%.
  const auto tagging_truth = believed;
  const auto transcription_truth = std::make_shared<htune::FunctionCurve>(
      [](double p) { return 0.2 * (p + 1.0); }, "transcription-today");

  htune::TuningProblem problem;
  htune::TaskGroup tagging;
  tagging.name = "image tagging";
  tagging.num_tasks = 8;
  tagging.repetitions = 12;
  tagging.processing_rate = 5.0;
  tagging.curve = believed;
  htune::TaskGroup transcription = tagging;
  transcription.name = "transcription";
  problem.groups = {tagging, transcription};
  problem.budget = 1500;

  const htune::RepetitionAllocator allocator;
  const std::vector<htune::QuestionSpec> questions(
      static_cast<size_t>(problem.TotalTasks()));

  for (const bool adaptive : {false, true}) {
    htune::MarketConfig market_config;
    market_config.worker_arrival_rate = 200.0;
    market_config.seed = 42;
    market_config.record_trace = false;
    htune::MarketSimulator market(market_config);

    htune::RetunerConfig config;
    config.market_truth_per_group = {tagging_truth, transcription_truth};
    if (adaptive) {
      config.review_interval = 0.25;
      config.min_observations = 10;
      config.smoothing = 0.7;
    } else {
      config.max_reviews = 0;  // fire-and-forget baseline
    }
    const htune::AdaptiveRetuner runner(&allocator, config);
    const auto report = runner.Run(market, problem, questions);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s execution:\n", adaptive ? "adaptive" : "static  ");
    std::printf("  job latency %.3f, spent %ld of %ld units\n",
                report->latency, report->spent, problem.budget);
    if (adaptive) {
      std::printf(
          "  reviews %d, retunes %d; learned scales: tagging %.2f, "
          "transcription %.2f\n",
          report->reviews, report->retunes, report->final_scale[0],
          report->final_scale[1]);
      std::printf(
          "  final per-repetition prices: tagging %d, transcription %d\n",
          report->final_prices[0], report->final_prices[1]);
    }
  }
  std::printf(
      "\nthe controller detects that transcription acceptances arrive ~5x "
      "slower than calibrated and moves the unexposed budget there.\n");
  return 0;
}
