// Heterogeneous workload (motivation example 2): a crowd-powered database
// answering a sort query and a filter query at once. Sort votes are harder
// (slower processing, lower uptake) than yes/no filter votes, so naive
// budget splits leave a straggler; the Heterogeneous Algorithm (HA)
// balances both objectives.

#include <cstdio>
#include <memory>
#include <vector>

#include "crowddb/executor.h"
#include "market/simulator.h"
#include "stats/descriptive.h"
#include "tuning/baselines.h"
#include "tuning/heterogeneous_allocator.h"

namespace {

double MeanLatency(const htune::TuningProblem& problem,
                   const htune::Allocation& alloc, int runs) {
  htune::RunningStats stats;
  for (int r = 0; r < runs; ++r) {
    htune::MarketConfig config;
    config.worker_arrival_rate = 150.0;
    config.seed = 100 + static_cast<uint64_t>(r);
    config.record_trace = false;
    htune::MarketSimulator market(config);
    const std::vector<htune::QuestionSpec> questions(
        static_cast<size_t>(problem.TotalTasks()));
    const auto run = htune::ExecuteJob(market, problem, alloc, questions);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      std::exit(1);
    }
    stats.Add(run->latency);
  }
  return stats.Mean();
}

}  // namespace

int main() {
  // Sort votes: harder, slower uptake per unit payment, slower processing.
  const auto sort_curve = std::make_shared<htune::LinearCurve>(1.0, 0.5);
  // Yes/no filter votes: easier on both axes (cf. Table 1 of the paper).
  const auto filter_curve = std::make_shared<htune::LinearCurve>(1.5, 1.0);

  htune::TuningProblem problem;
  htune::TaskGroup sort_votes;
  sort_votes.name = "sort votes";
  sort_votes.num_tasks = 5;
  sort_votes.repetitions = 10;  // long sequential chains: the stragglers
  sort_votes.processing_rate = 1.0;  // hard: mean 1.0 per answer
  sort_votes.curve = sort_curve;
  htune::TaskGroup filter_votes;
  filter_votes.name = "filter votes";
  filter_votes.num_tasks = 25;
  filter_votes.repetitions = 2;
  filter_votes.processing_rate = 3.0;  // easy: mean 0.33 per answer
  filter_votes.curve = filter_curve;
  problem.groups = {sort_votes, filter_votes};
  problem.budget = 600;

  const htune::HeterogeneousAllocator ha;
  const auto utopia = ha.UtopiaPoint(problem);
  if (!utopia.ok()) {
    std::fprintf(stderr, "%s\n", utopia.status().ToString().c_str());
    return 1;
  }
  std::printf("utopia point: O1*=%.3f (batch phase-1), O2*=%.3f "
              "(most-difficult task)\n",
              utopia->o1, utopia->o2);

  const std::vector<std::unique_ptr<htune::BudgetAllocator>> allocators = [] {
    std::vector<std::unique_ptr<htune::BudgetAllocator>> v;
    v.push_back(std::make_unique<htune::HeterogeneousAllocator>());
    v.push_back(std::make_unique<htune::TaskEvenAllocator>());
    v.push_back(std::make_unique<htune::RepEvenAllocator>());
    return v;
  }();

  std::printf("%-12s %-28s %s\n", "strategy", "allocation",
              "mean latency (40 market runs)");
  for (const auto& allocator : allocators) {
    const auto alloc = allocator->Allocate(problem);
    if (!alloc.ok()) {
      std::fprintf(stderr, "%s: %s\n", allocator->Name().c_str(),
                   alloc.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %-28s %.3f\n", allocator->Name().c_str(),
                alloc->ToString().c_str(), MeanLatency(problem, *alloc, 40));
  }
  return 0;
}
