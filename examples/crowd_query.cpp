// Crowd-powered SQL: run
//   SELECT id FROM photos WHERE quality >= 60 ORDER BY quality DESC LIMIT 3
// end-to-end as a two-phase crowd job: a filtering pass over every photo,
// then a top-k tournament over the survivors — each phase budget-tuned and
// executed on the simulated marketplace.

#include <cstdio>
#include <memory>
#include <vector>

#include "crowddb/query.h"
#include "market/simulator.h"
#include "tuning/even_allocator.h"

int main() {
  // 16 photos with latent quality scores the crowd can judge.
  std::vector<htune::Item> photos;
  for (int i = 0; i < 16; ++i) {
    photos.push_back({/*id=*/i, /*value=*/17.0 + 6.0 * i});
  }

  const auto query = htune::TopKFilteredQuery::Create(
      photos, /*threshold=*/60.0, /*k=*/3,
      /*filter_repetitions=*/3, /*topk_repetitions=*/5);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  htune::MarketConfig config;
  config.worker_arrival_rate = 150.0;
  config.worker_error_prob = 0.15;  // imperfect judges
  config.seed = 2026;
  config.record_trace = false;
  htune::MarketSimulator market(config);

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  const auto result = query->Run(market, htune::EvenAllocator(),
                                 /*budget=*/4000, curve,
                                 /*processing_rate=*/4.0);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("phase 1 (filter) kept %zu of %zu photos\n",
              result->filtered_ids.size(), photos.size());
  std::printf("query answer (top-3 by quality):");
  for (int id : result->top_ids) {
    std::printf(" %d", id);
  }
  std::printf("\ntrue answer: 15 14 13\n");
  std::printf("precision %.2f, recall %.2f | latency %.2f | spent %ld\n",
              result->quality.precision, result->quality.recall,
              result->latency, result->spent);
  return 0;
}
