// Quickstart: tune a crowdsourced job's budget allocation and execute it on
// the simulated marketplace.
//
// The job: 60 image-labeling micro-tasks, half needing 3 answer repetitions
// and half needing 5, with a fixed budget of 1200 payment units. We compare
// the paper's Repetition Algorithm (RA) against the naive rep-even split.

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "crowddb/executor.h"
#include "market/simulator.h"
#include "tuning/baselines.h"
#include "tuning/evaluator.h"
#include "tuning/repetition_allocator.h"

int main() {
  // 1. Describe the marketplace's price responsiveness per task type:
  // promising one more payment unit per repetition raises the acceptance
  // rate — easy labels attract workers faster per unit than tricky ones.
  const auto easy_curve = std::make_shared<htune::LinearCurve>(1.5, 1.0);
  const auto tricky_curve = std::make_shared<htune::LinearCurve>(0.4, 0.6);

  // 2. Describe the job as task groups.
  htune::TuningProblem problem;
  htune::TaskGroup quick_votes;
  quick_votes.name = "3-rep labels";
  quick_votes.num_tasks = 30;
  quick_votes.repetitions = 3;
  quick_votes.processing_rate = 2.0;  // a worker answers in ~0.5 time units
  quick_votes.curve = easy_curve;
  htune::TaskGroup careful_votes = quick_votes;
  careful_votes.name = "5-rep tricky labels";
  careful_votes.repetitions = 5;
  careful_votes.curve = tricky_curve;
  problem.groups = {quick_votes, careful_votes};
  problem.budget = 1200;

  // 3. Tune. RA solves Scenario II: minimize the expected completion time
  // of the whole batch under the budget.
  const htune::RepetitionAllocator tuner;
  const auto tuned = tuner.Allocate(problem);
  if (!tuned.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n",
                 tuned.status().ToString().c_str());
    return 1;
  }
  const auto naive = htune::RepEvenAllocator().Allocate(problem);
  if (!naive.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 naive.status().ToString().c_str());
    return 1;
  }
  std::printf("tuned allocation : %s\n", tuned->ToString().c_str());
  std::printf("naive allocation : %s\n", naive->ToString().c_str());

  // 4. Predict: expected on-hold latency of the whole job, analytically.
  std::printf("predicted phase-1 latency: tuned %.3f vs naive %.3f\n",
              htune::ExpectedPhase1Latency(problem, *tuned),
              htune::ExpectedPhase1Latency(problem, *naive));

  // 5. Execute both allocations on the simulated marketplace.
  const std::vector<std::pair<const char*, const htune::Allocation*>> runs = {
      {"tuned", &*tuned}, {"naive", &*naive}};
  for (const auto& [label, alloc] : runs) {
    htune::MarketConfig config;
    config.worker_arrival_rate = 100.0;
    config.seed = 7;
    config.record_trace = false;
    htune::MarketSimulator market(config);
    const std::vector<htune::QuestionSpec> questions(
        static_cast<size_t>(problem.TotalTasks()));
    const auto run = htune::ExecuteJob(market, problem, *alloc, questions);
    if (!run.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("market run (%s): latency %.3f, spent %ld units\n", label,
                run->latency, run->spent);
  }
  return 0;
}
