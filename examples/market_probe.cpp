// Parameter inference (§3.3): treat the market as a black box, probe it at
// several prices, infer the on-hold rates with the MLE lambda-hat = N/T0,
// and fit the Linearity Hypothesis. Then infer the processing rate of a
// task type from full-task traces.

#include <cstdio>
#include <utility>
#include <vector>

#include "market/simulator.h"
#include "probe/calibration.h"
#include "probe/probe.h"

int main() {
  // The market's hidden truth (unknown to the requester).
  const htune::LinearCurve hidden_curve(0.6, 0.9);
  const double hidden_processing_rate = 1.8;

  std::printf("probing acceptance rates at five price points...\n");
  std::vector<std::pair<double, double>> measured;
  for (const int price : {1, 2, 4, 6, 8}) {
    htune::MarketConfig config;
    config.worker_arrival_rate = 120.0;
    config.seed = 40 + static_cast<uint64_t>(price);
    config.record_trace = false;
    htune::MarketSimulator market(config);

    htune::ProbeSpec spec;
    spec.price = price;
    spec.on_hold_rate = hidden_curve.Rate(price);
    const auto report = htune::RunFixedPeriodProbe(market, spec, 250.0);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("  price %d: lambda-hat %.3f (true %.3f, %d events)\n",
                price, report->lambda_hat, hidden_curve.Rate(price),
                report->events);
    measured.emplace_back(price, report->lambda_hat);
  }

  const auto calibration = htune::CalibrateLinearCurve(measured);
  if (!calibration.ok()) {
    std::fprintf(stderr, "%s\n", calibration.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "linearity fit: lambda(c) = %.3f c + %.3f (R^2 = %.4f) -> "
      "hypothesis %s\n",
      calibration->fit.slope, calibration->fit.intercept,
      calibration->fit.r_squared,
      calibration->SupportsLinearity() ? "SUPPORTED" : "REJECTED");

  // Processing-rate inference from completed full tasks.
  htune::MarketConfig config;
  config.worker_arrival_rate = 120.0;
  config.seed = 99;
  config.record_trace = false;
  htune::MarketSimulator market(config);
  htune::TaskSpec task;
  task.price_per_repetition = 4;
  task.repetitions = 6;
  task.on_hold_rate = hidden_curve.Rate(4);
  task.processing_rate = hidden_processing_rate;
  for (int i = 0; i < 100; ++i) {
    if (!market.PostTask(task).ok()) return 1;
  }
  if (!market.RunToCompletion().ok()) return 1;
  const auto lambda_p = htune::EstimateProcessingRate(
      market.CompletedOutcomes());
  if (!lambda_p.ok()) return 1;
  std::printf("processing rate: inferred %.3f (true %.3f)\n", *lambda_p,
              hidden_processing_rate);
  return 0;
}
