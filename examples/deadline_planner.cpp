// Deadline planning: instead of "how fast can my budget go?", ask "what
// does my deadline cost?". Solve the dual tuning problem at several
// deadlines, then sanity-check the chosen plan on the market.

#include <cstdio>
#include <memory>
#include <vector>

#include "crowddb/executor.h"
#include "market/simulator.h"
#include "stats/descriptive.h"
#include "tuning/deadline_allocator.h"

int main() {
  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  htune::TuningProblem problem;
  htune::TaskGroup screening;
  screening.name = "resume screening";
  screening.num_tasks = 25;
  screening.repetitions = 3;
  screening.processing_rate = 2.0;
  screening.curve = curve;
  htune::TaskGroup grading = screening;
  grading.name = "essay grading";
  grading.repetitions = 5;
  grading.processing_rate = 1.0;
  problem.groups = {screening, grading};
  problem.budget = 50000;  // ceiling for the cost search

  std::printf("what does finishing faster cost? (most-difficult-task "
              "objective)\n%10s %12s %26s\n",
              "deadline", "cost", "per-rep prices (scr/gra)");
  for (const double deadline : {12.0, 9.0, 7.0, 6.0, 5.5}) {
    const auto plan = htune::SolveDeadline(
        problem, deadline, htune::DeadlineObjective::kMostDifficult);
    if (!plan.ok()) {
      std::printf("%10.1f %12s\n", deadline, "infeasible");
      continue;
    }
    std::printf("%10.1f %12ld %18d / %d\n", deadline, plan->cost,
                plan->prices[0], plan->prices[1]);
  }

  // Validate the 7-time-unit plan against the simulated market.
  const auto plan = htune::SolveDeadline(
      problem, 7.0, htune::DeadlineObjective::kMostDifficult);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  const htune::Allocation alloc =
      htune::DeadlinePlanToAllocation(problem, *plan);
  htune::RunningStats latency;
  for (int run = 0; run < 30; ++run) {
    htune::MarketConfig config;
    config.worker_arrival_rate = 150.0;
    config.seed = 77 + static_cast<uint64_t>(run);
    config.record_trace = false;
    htune::MarketSimulator market(config);
    const std::vector<htune::QuestionSpec> questions(
        static_cast<size_t>(problem.TotalTasks()));
    const auto result = htune::ExecuteJob(market, problem, alloc, questions);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    latency.Add(result->latency);
  }
  std::printf(
      "\nplan for deadline 7.0 costs %ld units (bounds the EXPECTED latency "
      "of the most difficult task at 7.0); realized mean job latency over "
      "30 market runs: %.2f\n",
      plan->cost, latency.Mean());
  std::printf(
      "(the job latency is the max over all 50 tasks, so it sits above the "
      "per-task expectation the deadline constrains — add headroom, or "
      "constrain a quantile, when the deadline is hard)\n");
  return 0;
}
