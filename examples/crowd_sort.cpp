// Crowd-powered ORDER BY (motivation example 1): sort a set of items using
// pairwise votes from the crowd, with the budget tuned by Even Allocation.
//
// Demonstrates the crowddb layer end-to-end: planner -> tuner -> market
// execution -> majority-vote aggregation, with worker errors enabled to
// show how repetition repairs noisy answers.

#include <cstdio>
#include <memory>

#include "crowddb/sort.h"
#include "market/simulator.h"
#include "tuning/baselines.h"
#include "tuning/even_allocator.h"

int main() {
  // The hidden ground truth: 8 images ranked by dot count.
  std::vector<htune::Item> images;
  for (int i = 0; i < 8; ++i) {
    images.push_back({/*id=*/i, /*value=*/25.0 + 13.0 * i});
  }

  const auto sorter = htune::CrowdSort::Create(images, /*repetitions=*/5);
  if (!sorter.ok()) {
    std::fprintf(stderr, "%s\n", sorter.status().ToString().c_str());
    return 1;
  }
  std::printf("sorting %zu items -> %d pairwise vote tasks x %d votes\n",
              images.size(), sorter->NumPairs(), sorter->repetitions());

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  const long budget = sorter->NumPairs() * 5L * 6L;  // 6 units per vote

  for (const double error_rate : {0.0, 0.25}) {
    htune::MarketConfig config;
    config.worker_arrival_rate = 150.0;
    config.worker_error_prob = error_rate;
    config.seed = 11;
    config.record_trace = false;
    htune::MarketSimulator market(config);

    const auto result = sorter->Run(market, htune::EvenAllocator(), budget,
                                    curve, /*processing_rate=*/4.0);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "worker error %.0f%%: latency %.2f, spent %ld, kendall-tau %.3f, "
        "ranking:",
        error_rate * 100.0, result->latency, result->spent,
        result->kendall_tau);
    for (int id : result->ranking) {
      std::printf(" %d", id);
    }
    std::printf("\n");
  }
  std::printf(
      "(true order is 7 6 5 4 3 2 1 0; majority voting over 5 repetitions "
      "keeps the ranking stable under noise)\n");
  return 0;
}
