// Observability overhead bench: the hot tuning + execution paths run twice
// in one binary — instrumentation enabled vs disabled via the runtime
// obs::SetEnabled switch — and the wall-clock ratio is reported. The design
// claim (DESIGN.md §8) is that spans and counters ride only coarse
// operations, so the enabled/disabled ratio stays within noise of 1.0;
// the bench FAILS (exit 1) when the ratio exceeds --max-ratio.
//
//   observability_overhead [--smoke] [--max-ratio=R]
//
// --smoke shrinks the workload for CI gating (default max ratio 1.05: the
// claimed <=2% overhead plus shared-runner noise headroom). Trials
// alternate enabled/disabled and each mode scores its MINIMUM wall time, so
// one-sided interference (page cache, turbo ramps, noisy neighbors) cannot
// fake an overhead or mask one.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.h"
#include "control/fault_tolerant_executor.h"
#include "market/simulator.h"
#include "model/latency_cache.h"
#include "model/price_rate_curve.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tuning/problem.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

TuningProblem BenchProblem(long budget, int num_tasks,
                           const std::shared_ptr<const PriceRateCurve>& curve) {
  TaskGroup a;
  a.name = "a";
  a.num_tasks = num_tasks;
  a.repetitions = 3;
  a.processing_rate = 2.0;
  a.curve = curve;
  TaskGroup b = a;
  b.name = "b";
  b.repetitions = 5;
  b.processing_rate = 3.0;
  TuningProblem problem;
  problem.groups = {a, b};
  problem.budget = budget;
  return problem;
}

/// One end-to-end rep of the instrumented hot paths: allocate (quadrature
/// kernel + DP + backtrack) against a FRESH curve — fresh so every rep pays
/// the cache-miss quadrature path the spans ride — then execute the job
/// with reviews (market dispatch + straggler/repost decisions).
double RunWorkload(long budget, int num_tasks, int reviews, uint64_t seed) {
  // A fresh curve object per rep defeats the latency-cache key (curve
  // identity), so allocation always exercises the quadrature kernel.
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = BenchProblem(budget, num_tasks, curve);

  const RepetitionAllocator allocator;
  FaultTolerantConfig config;
  config.review_interval = 0.5;
  config.max_reviews = reviews;
  const FaultTolerantExecutor executor(&allocator, config);

  MarketConfig market_config;
  market_config.worker_arrival_rate = 100.0;
  market_config.seed = seed;
  market_config.record_trace = false;
  MarketSimulator market(market_config);
  const std::vector<QuestionSpec> questions(
      static_cast<size_t>(problem.TotalTasks()));
  const auto report = executor.Run(market, problem, questions);
  if (!report.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(2);
  }
  return report->latency;
}

double TimeWorkloadMs(int reps, long budget, int num_tasks, int reviews) {
  const auto start = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    sink += RunWorkload(budget, num_tasks, reviews,
                        /*seed=*/1 + static_cast<uint64_t>(r));
  }
  const auto end = std::chrono::steady_clock::now();
  // Keep the accumulated latencies observable so the loop cannot fold.
  std::fprintf(stderr, "  (sink %.3f)\n", sink);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace
}  // namespace htune

int main(int argc, char** argv) {
  bool smoke = false;
  double max_ratio = 1.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--max-ratio=", 12) == 0) {
      max_ratio = std::atof(argv[i] + 12);
    }
  }

  // Each timed sample must be well clear of scheduler/timer noise (tens of
  // milliseconds), or the ratio gate flakes — smoke trims trials, not the
  // per-sample workload size.
  const int trials = smoke ? 3 : 5;
  const int reps = smoke ? 40 : 60;
  const long budget = smoke ? 1000 : 1200;
  const int num_tasks = smoke ? 50 : 60;
  const int reviews = smoke ? 16 : 24;

  htune::bench::Banner(
      "observability overhead (enabled vs disabled instrumentation)",
      "DESIGN.md §8 overhead bound");

  // Warm-up: fault in code paths and the thread pool before timing.
  htune::obs::SetEnabled(true);
  htune::TimeWorkloadMs(1, budget, num_tasks, reviews);

  double best_on = -1.0;
  double best_off = -1.0;
  for (int t = 0; t < trials; ++t) {
    htune::obs::SetEnabled(true);
    const double on = htune::TimeWorkloadMs(reps, budget, num_tasks, reviews);
    htune::obs::SetEnabled(false);
    const double off = htune::TimeWorkloadMs(reps, budget, num_tasks, reviews);
    htune::obs::SetEnabled(true);
    if (best_on < 0.0 || on < best_on) best_on = on;
    if (best_off < 0.0 || off < best_off) best_off = off;
    std::printf("trial %d: enabled %.2f ms, disabled %.2f ms\n", t + 1, on,
                off);
  }

  const double ratio = best_on / best_off;
  const htune::obs::MetricsSnapshot snapshot =
      htune::obs::GlobalMetrics().Snapshot();
  std::printf("\nbest-of-%d: enabled %.2f ms, disabled %.2f ms, "
              "ratio %.4f (max allowed %.2f)\n",
              trials, best_on, best_off, ratio, max_ratio);
  std::printf("instrumentation recorded %zu counters, %zu gauges; span ring "
              "holds %zu records (%llu dropped)\n",
              snapshot.counters.size(), snapshot.gauges.size(),
              htune::obs::GlobalTracer().Drain().size(),
              static_cast<unsigned long long>(
                  htune::obs::GlobalTracer().dropped()));
  if (ratio > max_ratio) {
    std::printf("FAIL: instrumentation overhead %.1f%% exceeds the %.1f%% "
                "budget\n",
                (ratio - 1.0) * 100.0, (max_ratio - 1.0) * 100.0);
    return 1;
  }
  std::printf("PASS: instrumentation overhead %.1f%% within budget\n",
              (ratio - 1.0) * 100.0);
  return 0;
}
