// Figure 1 + Example 1: the two motivating budget-allocation comparisons.
//  (a) Repetition: tasks {o1,o2} x1 and {o3,o4} x2 with budget $6 — even
//      ($3,$3) vs load-sensitive ($2,$4) split.
//  (b) Heterogeneous: a sort vote and a yes/no vote with budget $6 — even
//      ($3,$3) vs difficulty-balanced ($4,$2) split.
// We compute the expected completion latencies with the §3.2 model and
// Table 1's rates. The paper's printed values come from its (garbled)
// closed form; what must reproduce is the ordering: the load-sensitive /
// balanced split wins in both examples.

#include <cstdio>
#include <functional>

#include "bench/report.h"
#include "common/check.h"
#include "model/distributions.h"
#include "model/order_statistics.h"
#include "probe/calibration.h"

namespace {

using htune::ErlangDist;
using htune::ExponentialDist;
using htune::TwoPhaseLatencyDist;

// Expected max of two independent latencies given their CDFs.
double MaxOfTwo(const std::function<double(double)>& a,
                const std::function<double(double)>& b, double mean_hint) {
  return htune::ExpectedMaxIndependent({a, b}, mean_hint);
}

}  // namespace

int main() {
  htune::bench::Banner("fig1_motivation",
                       "Figure 1(a)/(b) + Example 1: motivating budget "
                       "splits on the crowd-powered database");

  const auto sort_curve = htune::TableCurve::Create(
      htune::PaperTable1SortVotePoints(), "sorting-vote");
  const auto yesno_curve = htune::TableCurve::Create(
      htune::PaperTable1YesNoVotePoints(), "yes/no-vote");
  HTUNE_CHECK(sort_curve.ok());
  HTUNE_CHECK(yesno_curve.ok());

  // ---- Example 1 (Figure 1(a)): repetition-aware split. ----
  // Task 1: one sort vote; task 2: two sequential sort votes. On-hold-only
  // latencies (phase 2 is identical across the homogeneous sort votes).
  const auto example1 = [&](double price1, double price2_total) {
    const ExponentialDist t1(sort_curve->Rate(price1));
    const ErlangDist t2(2, sort_curve->Rate(price2_total / 2.0));
    return MaxOfTwo([&t1](double t) { return t1.Cdf(t); },
                    [&t2](double t) { return t2.Cdf(t); }, t2.Mean());
  };
  const double even_1 = example1(3.0, 3.0);
  const double sensitive_1 = example1(2.0, 4.0);
  std::printf("\nExample 1 (repetition, budget $6):\n");
  std::printf("  even ($3,$3)           E[L] = %.3f   (paper: 2.93 s)\n",
              even_1);
  std::printf("  load-sensitive ($2,$4) E[L] = %.3f   (paper: 2.25 s)\n",
              sensitive_1);
  std::printf("  shape %s: load-sensitive split wins\n",
              sensitive_1 < even_1 ? "REPRODUCED" : "NOT reproduced");

  // ---- Example 2 (Figure 1(b)): heterogeneous types. ----
  // The sort vote processes slowly (lambda_p = 0.5), the yes/no vote fast
  // (lambda_p = 2.0); on-hold rates follow each type's Table 1 curve.
  const auto example2 = [&](double sort_price, double yesno_price) {
    const TwoPhaseLatencyDist sort_task(sort_curve->Rate(sort_price), 0.5);
    const TwoPhaseLatencyDist yesno_task(yesno_curve->Rate(yesno_price), 2.0);
    return MaxOfTwo([&sort_task](double t) { return sort_task.Cdf(t); },
                    [&yesno_task](double t) { return yesno_task.Cdf(t); },
                    sort_task.Mean());
  };
  const double even_2 = example2(3.0, 3.0);
  const double balanced_2 = example2(4.0, 2.0);
  std::printf("\nExample 2 (heterogeneous, budget $6):\n");
  std::printf("  even ($3,$3)     E[L] = %.3f   (paper: 3.5 s)\n", even_2);
  std::printf("  balanced ($4,$2) E[L] = %.3f   (paper: 2.7 s)\n",
              balanced_2);
  std::printf("  shape %s: difficulty-balanced split wins\n",
              balanced_2 < even_2 ? "REPRODUCED" : "NOT reproduced");

  htune::bench::Note(
      "absolute seconds differ from the paper (its closed form and exact "
      "lambda_p are not recoverable from the text); the allocation ordering "
      "is the reproducible claim.");
  return 0;
}
