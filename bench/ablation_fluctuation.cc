// Ablation D: what does the paper's constant-workforce assumption cost?
// §3 observes daily/weekly fluctuation on AMT and then assumes a constant
// arrival rate. We tune a job against the constant-rate calibration and run
// it on markets whose arrival intensity cycles with increasing amplitude
// around the SAME mean: the realized latency inflation is the price of the
// assumption.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "crowddb/executor.h"
#include "market/rate_schedule.h"
#include "market/simulator.h"
#include "stats/descriptive.h"
#include "tuning/even_allocator.h"

int main() {
  htune::bench::Banner(
      "ablation_fluctuation",
      "DESIGN.md ablation D: tuned latency under cyclic worker arrivals "
      "(constant-mean schedules of growing amplitude)");

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  htune::TuningProblem problem;
  htune::TaskGroup group;
  group.name = "votes";
  group.num_tasks = 40;
  group.repetitions = 4;
  group.processing_rate = 3.0;
  group.curve = curve;
  problem.groups.push_back(group);
  problem.budget = 1280;  // 8 units per repetition -> nominal rate 9

  const auto alloc = htune::EvenAllocator().Allocate(problem);
  HTUNE_CHECK(alloc.ok());
  const double reference_rate = 100.0;
  const double cycle = 2.0;  // "day" length in simulated time units
  const int kRuns = 60;

  std::printf("%12s %16s %16s\n", "amplitude", "mean latency",
              "vs constant");
  double constant_latency = 0.0;
  for (const double amplitude : {0.0, 0.3, 0.6, 0.9}) {
    // High phase at (1+a)x the mean for half the cycle, low at (1-a)x.
    std::shared_ptr<const htune::RateSchedule> schedule;
    if (amplitude > 0.0) {
      const auto made = htune::RateSchedule::Create(
          {{0.0, reference_rate * (1.0 + amplitude)},
           {cycle / 2.0, reference_rate * (1.0 - amplitude)}},
          cycle);
      HTUNE_CHECK(made.ok());
      schedule = std::make_shared<htune::RateSchedule>(*made);
    }
    htune::RunningStats stats;
    for (int r = 0; r < kRuns; ++r) {
      htune::MarketConfig config;
      config.worker_arrival_rate = reference_rate;
      config.arrival_schedule = schedule;
      config.seed = 8000 + static_cast<uint64_t>(r);
      config.record_trace = false;
      htune::MarketSimulator market(config);
      const std::vector<htune::QuestionSpec> questions(
          static_cast<size_t>(problem.TotalTasks()));
      const auto run = htune::ExecuteJob(market, problem, *alloc, questions);
      HTUNE_CHECK(run.ok());
      stats.Add(run->latency);
    }
    if (amplitude == 0.0) constant_latency = stats.Mean();
    std::printf("%12.1f %16.4f %15.1f%%\n", amplitude, stats.Mean(),
                100.0 * (stats.Mean() / constant_latency - 1.0));
  }
  htune::bench::Note(
      "the mean arrival rate is identical in every row; latency inflation "
      "grows with amplitude because the job's completion straddles the slow "
      "phase (Jensen penalty on the max). The paper's constant-rate model "
      "is tight for amplitudes typical of intra-hour AMT noise but optimistic "
      "across day boundaries.");
  return 0;
}
