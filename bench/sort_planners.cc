// Extension bench: the planner-level latency/cost tradeoff for crowd
// sorting. The all-pairs plan asks n(n-1)/2 comparisons but runs them all
// in parallel (latency ~ the slowest single comparison); merge sort asks
// O(n log n) comparisons but chains them (latency ~ plan depth x per-
// comparison round trip). Same accuracy machinery, very different
// cost/latency frontier — the decomposition choice the paper's query
// planner makes before any budget tuning happens.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "crowddb/merge_sort.h"
#include "crowddb/sort.h"
#include "market/simulator.h"
#include "stats/descriptive.h"
#include "tuning/even_allocator.h"

int main() {
  htune::bench::Banner(
      "sort_planners",
      "extension: all-pairs vs merge-sort crowd ORDER BY — comparisons, "
      "spend, latency, accuracy");

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  const int kReps = 3;
  const int kRuns = 10;
  const double kError = 0.15;

  std::printf("%6s %12s %14s %14s %12s %12s %12s %12s\n", "n",
              "pairs comps", "merge comps", "pairs spend", "merge spend",
              "pairs lat", "merge lat", "tau p/m");
  for (const int n : {6, 10, 16, 24}) {
    std::vector<htune::Item> items;
    for (int i = 0; i < n; ++i) {
      items.push_back({i, 2.0 * i + 1.0});
    }
    const auto all_pairs = htune::CrowdSort::Create(items, kReps);
    const auto merge = htune::CrowdMergeSort::Create(items, kReps);
    HTUNE_CHECK(all_pairs.ok());
    HTUNE_CHECK(merge.ok());
    // Same per-vote price (6 units) for an apples-to-apples spend: the
    // plans differ in how many votes they need, not in what a vote costs.
    const long pairs_budget = all_pairs->NumPairs() * 3L * 6L;
    const long merge_budget = merge->WorstCaseComparisons() * 3L * 6L;

    htune::RunningStats pairs_lat, merge_lat, pairs_tau, merge_tau;
    long pairs_spend = 0, merge_spend = 0;
    int merge_comparisons = 0;
    for (int r = 0; r < kRuns; ++r) {
      htune::MarketConfig config;
      config.worker_arrival_rate = 200.0;
      config.worker_error_prob = kError;
      config.seed = 700 + static_cast<uint64_t>(n) * 100 +
                    static_cast<uint64_t>(r);
      config.record_trace = false;
      {
        htune::MarketSimulator market(config);
        const auto result = all_pairs->Run(market, htune::EvenAllocator(),
                                           pairs_budget, curve, 5.0);
        HTUNE_CHECK(result.ok());
        pairs_lat.Add(result->latency);
        pairs_tau.Add(result->kendall_tau);
        pairs_spend += result->spent / kRuns;
      }
      {
        htune::MarketSimulator market(config);
        const auto result = merge->Run(market, merge_budget, curve, 5.0);
        HTUNE_CHECK(result.ok());
        merge_lat.Add(result->latency);
        merge_tau.Add(result->kendall_tau);
        merge_spend += result->spent / kRuns;
        merge_comparisons = result->comparisons;
      }
    }
    std::printf("%6d %12d %14d %14ld %12ld %12.2f %12.2f %8.2f/%.2f\n", n,
                all_pairs->NumPairs(), merge_comparisons, pairs_spend,
                merge_spend, pairs_lat.Mean(), merge_lat.Mean(),
                pairs_tau.Mean(), merge_tau.Mean());
  }
  htune::bench::Note(
      "merge sort's spend grows ~n log n against all-pairs' n^2, but its "
      "latency grows with the sequential depth while all-pairs stays nearly "
      "flat — with money to burn, buy parallelism; on a tight budget, "
      "accept the depth. The tau column shows merge sort is also the more "
      "accurate decoder at equal per-vote error: a flipped comparison only "
      "displaces items locally within one merge, while a flipped vote in "
      "the all-pairs Copeland tally perturbs the global score ordering.");
  return 0;
}
