// Figure 2(g)-(l), "repe": Scenario II — 100 tasks split into a 3-repetition
// half and a 5-repetition half, lambda_p = 2.0, budget 1000..5000,
// RA (opt) vs task-even (te) vs rep-even (re).

#include <memory>

#include "bench/fig2_common.h"
#include "tuning/baselines.h"
#include "tuning/repetition_allocator.h"

namespace {

std::vector<htune::TaskGroup> MakeGroups(
    std::shared_ptr<const htune::PriceRateCurve> curve) {
  htune::TaskGroup three;
  three.name = "three-reps";
  three.num_tasks = 50;
  three.repetitions = 3;
  three.processing_rate = 2.0;
  three.curve = curve;
  htune::TaskGroup five = three;
  five.name = "five-reps";
  five.repetitions = 5;
  return {three, five};
}

}  // namespace

int main() {
  const htune::RepetitionAllocator opt;
  const htune::TaskEvenAllocator te;
  const htune::RepEvenAllocator re;
  htune::bench::Fig2Config config;
  config.experiment_name = "fig2_repetition (Scenario II)";
  config.paper_ref =
      "Figure 2(g)-(l) 'repe': opt (RA) vs te (task-even) vs re (rep-even); "
      "50 tasks x 3 reps + 50 tasks x 5 reps, lambda_p=2.0";
  config.make_groups = MakeGroups;
  config.strategies = {&opt, &te, &re};
  htune::bench::RunFig2Sweep(config);
  htune::bench::Note(
      "expected shape: opt at or below the baselines (to within the "
      "group-sum surrogate's ~1% slack on the flat 0.1p+10 curve, where all "
      "strategies coincide); task-even underpays the 5-rep group's "
      "repetitions (60% of group-1 price) and loses most.");
  return 0;
}
