// Figure 5(c): OPT vs the equal-payment heuristic on the MTurk workload.
// Three task types with different repetition requirements (10 / 15 / 20)
// and difficulties, budgets $6..$10. OPT (the Scenario III HA tuner) must
// produce lower completion latency than HEU (same total payment per type),
// and must avoid letting any one type become the straggler.

#include <cstdio>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "crowddb/executor.h"
#include "market/simulator.h"
#include "probe/calibration.h"
#include "stats/descriptive.h"
#include "tuning/baselines.h"
#include "tuning/heterogeneous_allocator.h"

namespace {

htune::TuningProblem MakeProblem(
    long budget_cents,
    const std::shared_ptr<const htune::PriceRateCurve>& curve) {
  // t1: 10 reps, easy; t2: 15 reps, medium; t3: 20 reps, hard.
  const int reps[] = {10, 15, 20};
  const double processing[] = {1.0 / 60.0, 1.0 / 90.0, 1.0 / 120.0};
  htune::TuningProblem problem;
  for (int i = 0; i < 3; ++i) {
    htune::TaskGroup g;
    g.name = "t" + std::to_string(i + 1);
    g.num_tasks = 1;
    g.repetitions = reps[i];
    g.processing_rate = processing[i];
    g.curve = curve;
    problem.groups.push_back(g);
  }
  problem.budget = budget_cents;
  return problem;
}

}  // namespace

int main() {
  htune::bench::Banner(
      "fig5c_opt_vs_heuristic",
      "Figure 5(c): OPT (HA) vs HEU (equal payment per type); 3 types with "
      "10/15/20 repetitions, budget $6..$10");

  const auto curve_or = htune::TableCurve::Create(
      htune::PaperAmtMeasuredPoints(), "amt-filtering");
  HTUNE_CHECK(curve_or.ok());
  const std::shared_ptr<const htune::PriceRateCurve> curve(
      curve_or->Clone());

  const htune::HeterogeneousAllocator opt;
  const htune::UniformHeuristicAllocator heu;
  const int kRuns = 24;

  std::printf("%10s %14s %14s %26s %26s\n", "budget($)", "OPT (min)",
              "HEU (min)", "OPT per-type t1/t2/t3", "HEU per-type t1/t2/t3");
  for (long cents = 600; cents <= 1000; cents += 100) {
    const htune::TuningProblem problem = MakeProblem(cents, curve);
    double means[2] = {0.0, 0.0};
    double per_type[2][3] = {{0.0}};
    const htune::BudgetAllocator* allocators[2] = {&opt, &heu};
    for (int a = 0; a < 2; ++a) {
      const auto alloc = allocators[a]->Allocate(problem);
      HTUNE_CHECK(alloc.ok());
      htune::RunningStats job_stats;
      for (int run = 0; run < kRuns; ++run) {
        htune::MarketConfig config;
        config.worker_arrival_rate = 1.0;
        config.seed = 4000 + static_cast<uint64_t>(cents) * 10 +
                      static_cast<uint64_t>(run);
        config.record_trace = false;
        htune::MarketSimulator market(config);
        const std::vector<htune::QuestionSpec> questions(3);
        const auto result =
            htune::ExecuteJob(market, problem, *alloc, questions);
        HTUNE_CHECK(result.ok());
        job_stats.Add(result->latency / 60.0);
        for (int i = 0; i < 3; ++i) {
          per_type[a][i] +=
              result->task_latencies[static_cast<size_t>(i)] / 60.0 / kRuns;
        }
      }
      means[a] = job_stats.Mean();
    }
    std::printf("%10.2f %14.1f %14.1f %12.0f/%5.0f/%5.0f %14.0f/%5.0f/%5.0f\n",
                cents / 100.0, means[0], means[1], per_type[0][0],
                per_type[0][1], per_type[0][2], per_type[1][0],
                per_type[1][1], per_type[1][2]);
  }
  htune::bench::Note(
      "OPT's job latency sits below HEU at every budget, and OPT's "
      "per-type latencies are balanced while HEU lets the 20-repetition "
      "type straggle — the paper's Fig 5(c) observation.");
  return 0;
}
