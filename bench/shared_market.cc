// Shared-market platform bench: one SharedMarket carrying a whole fleet of
// concurrent jobs, plus the paper's competition sanity check.
//
// Two sections, both exported through tools/bench_report.py --shared:
//
//  1. Throughput gate: >= 1000 jobs compete on ONE market (the platform
//     service's design target is many small jobs, so the gate is job count,
//     not tasks-per-job). Every posted task must complete, and the event
//     rate is reported for trend tracking.
//  2. Competition invariant: two identical saturating jobs each see ~half
//     the isolated acceptance rate (acceptance thinning conserves the
//     worker stream). observed_ratio is re-derived by the validator from
//     the exported rates, so it is computed here from the same doubles.
//
// Usage: shared_market [--smoke] [--out=PATH]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "model/price_rate_curve.h"
#include "platform/shared_market.h"

namespace {

using htune::LinearCurve;
using htune::PriceRateCurve;
using htune::SharedMarket;
using htune::SharedMarketConfig;
using htune::TraceEvent;
using htune::TraceEventKind;

std::shared_ptr<const PriceRateCurve> UnitCurve() {
  return std::make_shared<LinearCurve>(1.0, 0.0);
}

size_t CountAcceptances(const std::vector<TraceEvent>& trace) {
  size_t n = 0;
  for (const TraceEvent& event : trace) {
    if (event.kind == TraceEventKind::kTaskAccepted) ++n;
  }
  return n;
}

struct ThroughputResult {
  int jobs = 0;
  uint64_t tasks = 0;
  uint64_t tasks_completed = 0;
  uint64_t total_events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  bool ok = false;
};

// N jobs x kTasksPerJob tasks x kRepsPerTask repetitions on one market.
// Total posted weight (price 5 per on-hold task) dwarfs the arrival rate,
// so every arrival is productive and the run length is repetitions/rate.
ThroughputResult RunThroughput(int jobs) {
  constexpr int kTasksPerJob = 4;
  constexpr int kRepsPerTask = 3;
  constexpr int kPrice = 5;
  constexpr double kProcessingRate = 2.0;

  SharedMarketConfig config;
  config.worker_arrival_rate = 500.0;
  config.worker_error_prob = 0.05;
  config.curve = UnitCurve();
  config.seed = 11;
  config.record_trace = false;  // throughput section: no trace overhead

  ThroughputResult result;
  result.jobs = jobs;

  const auto t0 = std::chrono::steady_clock::now();
  SharedMarket market(config);
  const std::vector<int> reps(kRepsPerTask, kPrice);
  for (int j = 0; j < jobs; ++j) {
    const uint64_t id = static_cast<uint64_t>(j) + 1;
    if (!market.AddJob(id, 1000 + id).ok()) return result;
    for (int t = 0; t < kTasksPerJob; ++t) {
      if (!market.PostTask(id, reps, kProcessingRate).ok()) return result;
    }
  }
  if (!market.RunToCompletion().ok()) return result;
  const auto t1 = std::chrono::steady_clock::now();

  for (int j = 0; j < jobs; ++j) {
    const uint64_t id = static_cast<uint64_t>(j) + 1;
    result.tasks_completed += market.CompletedOutcomes(id).size();
  }
  result.tasks = static_cast<uint64_t>(jobs) * kTasksPerJob;
  const htune::SharedMarketCounts& counts = market.Counts();
  result.total_events =
      counts.tasks_posted + counts.worker_arrivals + counts.completions;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (result.wall_seconds <= 0.0) result.wall_seconds = 1e-9;
  result.events_per_sec =
      static_cast<double>(result.total_events) / result.wall_seconds;
  result.ok = result.tasks_completed == result.tasks;
  return result;
}

struct CompetitionResult {
  double isolated_rate = 0.0;
  double shared_rate = 0.0;
  double expected_ratio = 0.5;
  double observed_ratio = 0.0;
  double tolerance = 0.05;
  bool ok = false;
};

// Mirrors SharedMarketTest.TwoIdenticalJobsEachSeeHalfTheIsolatedRate: a
// single saturating job (weight 200 > arrival rate 50) accepts nearly every
// arrival; adding an identical rival must halve its effective rate.
CompetitionResult RunCompetition(double window) {
  constexpr double kProcessingRate = 1e6;  // turnaround is negligible
  constexpr int kSaturatingPrice = 200;

  SharedMarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.worker_error_prob = 0.0;
  config.curve = UnitCurve();
  config.seed = 7;

  // Enough repetitions that neither task completes inside the window.
  const std::vector<int> reps(
      static_cast<size_t>(window * config.worker_arrival_rate * 2.0) + 64,
      kSaturatingPrice);

  CompetitionResult result;

  SharedMarket isolated(config);
  if (!isolated.AddJob(1, 21).ok()) return result;
  if (!isolated.PostTask(1, reps, kProcessingRate).ok()) return result;
  isolated.RunUntil(window);
  result.isolated_rate =
      static_cast<double>(CountAcceptances(isolated.Trace(1))) / window;

  SharedMarket shared(config);
  if (!shared.AddJob(1, 21).ok()) return result;
  if (!shared.AddJob(2, 22).ok()) return result;
  if (!shared.PostTask(1, reps, kProcessingRate).ok()) return result;
  if (!shared.PostTask(2, reps, kProcessingRate).ok()) return result;
  shared.RunUntil(window);
  result.shared_rate =
      static_cast<double>(CountAcceptances(shared.Trace(1))) / window;

  if (result.isolated_rate <= 0.0) return result;
  result.observed_ratio = result.shared_rate / result.isolated_rate;
  const double error = result.observed_ratio - result.expected_ratio;
  result.ok = (error < 0 ? -error : error) <= result.tolerance;
  return result;
}

int WriteReport(const std::string& path, bool smoke, int min_jobs_for_gate,
                const ThroughputResult& t, const CompetitionResult& c) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 2;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"smoke\": %s,\n"
      "  \"jobs\": %d,\n"
      "  \"min_jobs_for_gate\": %d,\n"
      "  \"tasks\": %llu,\n"
      "  \"tasks_completed\": %llu,\n"
      "  \"total_events\": %llu,\n"
      "  \"wall_seconds\": %.17g,\n"
      "  \"events_per_sec\": %.17g,\n"
      "  \"competition\": {\n"
      "    \"isolated_rate\": %.17g,\n"
      "    \"shared_rate\": %.17g,\n"
      "    \"expected_ratio\": %.17g,\n"
      "    \"observed_ratio\": %.17g,\n"
      "    \"tolerance\": %.17g\n"
      "  }\n"
      "}\n",
      smoke ? "true" : "false", t.jobs, min_jobs_for_gate,
      static_cast<unsigned long long>(t.tasks),
      static_cast<unsigned long long>(t.tasks_completed),
      static_cast<unsigned long long>(t.total_events), t.wall_seconds,
      t.events_per_sec, c.isolated_rate, c.shared_rate, c.expected_ratio,
      c.observed_ratio, c.tolerance);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  constexpr int kMinJobsForGate = 1000;
  const int jobs = smoke ? 64 : 1200;
  const double window = smoke ? 50.0 : 400.0;

  std::printf("shared-market bench (%s): %d concurrent jobs on one market\n",
              smoke ? "smoke" : "full", jobs);

  const ThroughputResult t = RunThroughput(jobs);
  std::printf("throughput: %llu/%llu tasks completed, %llu events in "
              "%.3f s (%.0f events/s)\n",
              static_cast<unsigned long long>(t.tasks_completed),
              static_cast<unsigned long long>(t.tasks),
              static_cast<unsigned long long>(t.total_events), t.wall_seconds,
              t.events_per_sec);

  const CompetitionResult c = RunCompetition(window);
  std::printf("competition: isolated %.3f/s, shared %.3f/s, ratio %.4f "
              "(expected %.2f +/- %.2f)\n",
              c.isolated_rate, c.shared_rate, c.observed_ratio,
              c.expected_ratio, c.tolerance);

  int status = 0;
  if (!out_path.empty()) {
    status = WriteReport(out_path, smoke, kMinJobsForGate, t, c);
    if (status != 0) return status;
  }

  if (!t.ok) {
    std::printf("FAIL: %llu of %llu tasks never completed\n",
                static_cast<unsigned long long>(t.tasks - t.tasks_completed),
                static_cast<unsigned long long>(t.tasks));
    return 1;
  }
  if (!smoke && t.jobs < kMinJobsForGate) {
    std::printf("FAIL: %d jobs is below the %d-job gate\n", t.jobs,
                kMinJobsForGate);
    return 1;
  }
  if (!c.ok) {
    std::printf("FAIL: competition ratio %.4f outside %.2f +/- %.2f\n",
                c.observed_ratio, c.expected_ratio, c.tolerance);
    return 1;
  }
  std::printf("PASS: %d jobs shared one market; competition halves the "
              "isolated rate\n",
              t.jobs);
  return 0;
}
