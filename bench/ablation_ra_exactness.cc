// Ablation A: is the paper's budget-indexed DP (Algorithm 2) actually
// optimal, and what does it cost? Compare the paper DP, the exact knapsack
// DP and the brute-force oracle on solution quality, and measure runtime
// scaling in the budget.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "tuning/brute_force.h"
#include "tuning/group_latency_table.h"
#include "tuning/repetition_allocator.h"

namespace {

htune::TuningProblem Instance(long budget,
                              std::shared_ptr<const htune::PriceRateCurve>
                                  curve) {
  htune::TuningProblem problem;
  const int reps[] = {2, 3, 5};
  for (int i = 0; i < 3; ++i) {
    htune::TaskGroup g;
    g.name = "g" + std::to_string(i);
    g.num_tasks = 2;
    g.repetitions = reps[i];
    g.processing_rate = 2.0;
    g.curve = curve;
    problem.groups.push_back(g);
  }
  problem.budget = budget;
  return problem;
}

double Objective(const htune::TuningProblem& problem,
                 const std::vector<int>& prices) {
  double total = 0.0;
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    total += htune::GroupLatencyTable(problem.groups[i]).Phase1(prices[i]);
  }
  return total;
}

template <typename Fn>
double TimedMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  htune::bench::Banner(
      "ablation_ra_exactness",
      "DESIGN.md ablation A: paper DP (Alg. 2) vs exact knapsack DP vs "
      "brute force — quality and runtime");

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  const htune::RepetitionAllocator paper(
      htune::RepetitionAllocator::Mode::kPaperDp);
  const htune::RepetitionAllocator exact(
      htune::RepetitionAllocator::Mode::kExactDp);

  std::printf("%8s %14s %14s %14s %12s %12s %12s\n", "budget", "paper obj",
              "exact obj", "oracle obj", "paper ms", "exact ms",
              "oracle ms");
  for (const long budget : {25L, 40L, 60L, 90L, 130L, 200L}) {
    const htune::TuningProblem problem = Instance(budget, curve);
    std::vector<int> paper_prices, exact_prices, oracle_prices;
    const double paper_ms = TimedMs([&] {
      paper_prices = *paper.SolvePrices(problem);
    });
    const double exact_ms = TimedMs([&] {
      exact_prices = *exact.SolvePrices(problem);
    });
    const double oracle_ms = TimedMs([&] {
      oracle_prices = *htune::BruteForceMinimize(
          problem, [&](const std::vector<int>& p) {
            return Objective(problem, p);
          });
    });
    std::printf("%8ld %14.5f %14.5f %14.5f %12.2f %12.2f %12.2f\n", budget,
                Objective(problem, paper_prices),
                Objective(problem, exact_prices),
                Objective(problem, oracle_prices), paper_ms, exact_ms,
                oracle_ms);
  }
  htune::bench::Note(
      "the three objective columns must coincide (Algorithm 2 is exact for "
      "the convex latency tables the model produces); brute-force runtime "
      "explodes while both DPs stay polynomial.");

  // Runtime scaling in the budget for realistic sizes (no oracle).
  std::printf("\nruntime scaling (100 tasks in 2 groups):\n%10s %12s %12s\n",
              "budget", "paper ms", "exact ms");
  for (const long budget : {1000L, 2000L, 4000L, 8000L}) {
    htune::TuningProblem problem;
    htune::TaskGroup a;
    a.name = "a";
    a.num_tasks = 50;
    a.repetitions = 3;
    a.processing_rate = 2.0;
    a.curve = curve;
    htune::TaskGroup b = a;
    b.repetitions = 5;
    problem.groups = {a, b};
    problem.budget = budget;
    const double paper_ms =
        TimedMs([&] { (void)*paper.SolvePrices(problem); });
    const double exact_ms =
        TimedMs([&] { (void)*exact.SolvePrices(problem); });
    std::printf("%10ld %12.2f %12.2f\n", budget, paper_ms, exact_ms);
  }
  return 0;
}
