// Figure 2(a)-(f), "homo": Scenario I — 100 identical tasks x 5 repetitions,
// lambda_p = 2.0, budget 1000..5000, EA (opt) vs bias(0.67) vs bias(0.75).

#include <memory>

#include "bench/fig2_common.h"
#include "tuning/baselines.h"
#include "tuning/even_allocator.h"

namespace {

std::vector<htune::TaskGroup> MakeGroups(
    std::shared_ptr<const htune::PriceRateCurve> curve) {
  htune::TaskGroup group;
  group.name = "homogeneous";
  group.num_tasks = 100;
  group.repetitions = 5;
  group.processing_rate = 2.0;
  group.curve = std::move(curve);
  return {group};
}

}  // namespace

int main() {
  const htune::EvenAllocator opt;
  const htune::BiasedAllocator bias1(0.67);
  const htune::BiasedAllocator bias2(0.75);
  htune::bench::Fig2Config config;
  config.experiment_name = "fig2_homogeneous (Scenario I)";
  config.paper_ref =
      "Figure 2(a)-(f) 'homo': opt (EA) vs bias_1 (alpha=0.67) vs bias_2 "
      "(alpha=0.75); 100 tasks x 5 reps, lambda_p=2.0";
  config.make_groups = MakeGroups;
  config.strategies = {&opt, &bias1, &bias2};
  htune::bench::RunFig2Sweep(config);
  htune::bench::Note(
      "expected shape: opt lowest everywhere; bias_2 (more biased) worse "
      "than bias_1; gaps shrink for steep curves (10p+1), where processing "
      "dominates, and for flat curves (0.1p+10), where price barely moves "
      "the rate.");
  return 0;
}
