// Table 1: HPU clock rate as a function of the promised reward for the two
// motivating vote types (sorting votes and yes/no votes). The table's
// measured values seed TableCurves; we then stand up a market exhibiting
// those curves and re-measure the rates with the §3.3 probe, closing the
// loop between the table, the simulator and the estimator.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "market/simulator.h"
#include "probe/calibration.h"
#include "probe/probe.h"

int main() {
  htune::bench::Banner(
      "table1_rates",
      "Table 1: HPU processing rate vs reward, sorting vote and yes/no "
      "vote at rewards $1.5 / $2 / $3");

  const auto sort_curve = htune::TableCurve::Create(
      htune::PaperTable1SortVotePoints(), "sorting-vote");
  const auto yesno_curve = htune::TableCurve::Create(
      htune::PaperTable1YesNoVotePoints(), "yes/no-vote");
  HTUNE_CHECK(sort_curve.ok());
  HTUNE_CHECK(yesno_curve.ok());

  std::printf("%10s %14s %14s %14s %14s\n", "reward($)", "sort(table)",
              "sort(probe)", "yesno(table)", "yesno(probe)");
  for (const double reward : {1.5, 2.0, 3.0}) {
    std::vector<double> measured;
    for (const htune::PriceRateCurve* curve :
         {static_cast<const htune::PriceRateCurve*>(&*sort_curve),
          static_cast<const htune::PriceRateCurve*>(&*yesno_curve)}) {
      htune::MarketConfig config;
      config.worker_arrival_rate = 60.0;
      config.seed = static_cast<uint64_t>(reward * 100.0) + 17;
      config.record_trace = false;
      htune::MarketSimulator market(config);
      htune::ProbeSpec spec;
      spec.price = static_cast<int>(reward);  // granularity: whole units
      spec.on_hold_rate = curve->Rate(reward);
      const auto report = htune::RunRandomPeriodProbe(market, spec, 2000);
      HTUNE_CHECK(report.ok());
      measured.push_back(report->lambda_corrected);
    }
    std::printf("%10.1f %14.2f %14.3f %14.2f %14.3f\n", reward,
                sort_curve->Rate(reward), measured[0],
                yesno_curve->Rate(reward), measured[1]);
  }
  htune::bench::Note(
      "probe estimates should match the table columns to ~2% (2000-event "
      "MLE); yes/no votes are uniformly faster than sorting votes, as in "
      "the paper.");
  return 0;
}
