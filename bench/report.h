#ifndef HTUNE_BENCH_REPORT_H_
#define HTUNE_BENCH_REPORT_H_

// Small console-report helpers shared by the figure-reproduction binaries.
// These binaries print the same rows/series the paper's tables and figures
// report; google-benchmark is reserved for the micro-cost suite.

#include <cstdio>
#include <string>
#include <vector>

namespace htune::bench {

/// Prints a banner naming the experiment and the paper artifact it
/// regenerates.
inline void Banner(const std::string& experiment,
                   const std::string& paper_ref) {
  std::printf("\n==================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==================================================\n");
}

/// Prints a header row: first column `key`, then one column per series.
inline void SeriesHeader(const std::string& key,
                         const std::vector<std::string>& series) {
  std::printf("%12s", key.c_str());
  for (const std::string& s : series) {
    std::printf(" %14s", s.c_str());
  }
  std::printf("\n");
}

/// Prints one data row.
inline void SeriesRow(double key, const std::vector<double>& values) {
  std::printf("%12.0f", key);
  for (double v : values) {
    std::printf(" %14.4f", v);
  }
  std::printf("\n");
}

/// Prints a free-form note line.
inline void Note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

}  // namespace htune::bench

#endif  // HTUNE_BENCH_REPORT_H_
