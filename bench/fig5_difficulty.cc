// Figure 5(a)/(b): task difficulty vs latency. Difficulty is the number of
// internal binary votes in one image-filtering HIT (4, 6 or 8); harder
// tasks are accepted more slowly (lower lambda_o at equal reward) and take
// longer to process (lower lambda_p). We sweep the six (reward, difficulty)
// combinations the paper plots and report mean phase-1 and phase-2
// latencies over the first 10 orders.

#include <cstdio>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "market/simulator.h"
#include "probe/calibration.h"
#include "stats/descriptive.h"

namespace {

// Difficulty model: v internal votes scale the base (4-vote) rates by 4/v —
// more checkboxes per HIT means fewer interested workers and more work.
double OnHoldRate(const htune::PriceRateCurve& base, double cents, int votes) {
  return base.Rate(cents) * 4.0 / votes;
}

double ProcessingRate(int votes) {
  // 4 votes take ~100 s on average; each extra vote adds proportionally.
  return (1.0 / 100.0) * 4.0 / votes;
}

}  // namespace

int main() {
  htune::bench::Banner(
      "fig5_difficulty",
      "Figure 5(a)/(b): difficulty (4/6/8 internal votes) x reward "
      "($0.05/$0.08) vs phase-1 and phase-2 latency");

  const auto curve = htune::TableCurve::Create(
      htune::PaperAmtMeasuredPoints(), "amt-filtering");
  HTUNE_CHECK(curve.ok());

  const std::vector<double> rewards = {5.0, 8.0};
  const std::vector<int> vote_counts = {4, 6, 8};
  const int kTasks = 60;

  std::printf("%8s %8s %20s %22s\n", "reward", "votes",
              "mean ph1 (min)", "mean ph2 (sec)");
  for (const double cents : rewards) {
    for (const int votes : vote_counts) {
      htune::MarketConfig config;
      config.worker_arrival_rate = 1.0;
      config.seed = 7000 + static_cast<uint64_t>(cents) * 10 +
                    static_cast<uint64_t>(votes);
      config.record_trace = false;
      htune::MarketSimulator market(config);
      std::vector<htune::TaskId> ids;
      for (int t = 0; t < kTasks; ++t) {
        htune::TaskSpec task;
        task.price_per_repetition = static_cast<int>(cents);
        task.repetitions = 1;
        task.on_hold_rate = OnHoldRate(*curve, cents, votes);
        task.processing_rate = ProcessingRate(votes);
        const auto id = market.PostTask(task);
        HTUNE_CHECK(id.ok());
        ids.push_back(*id);
      }
      HTUNE_CHECK_OK(market.RunToCompletion());
      htune::RunningStats ph1, ph2;
      for (const htune::TaskId id : ids) {
        const auto outcome = market.GetOutcome(id);
        HTUNE_CHECK(outcome.ok());
        ph1.Add(outcome->repetitions[0].OnHoldLatency() / 60.0);
        ph2.Add(outcome->repetitions[0].ProcessingLatency());
      }
      std::printf("%7.2f$ %8d %20.1f %22.1f\n", cents / 100.0, votes,
                  ph1.Mean(), ph2.Mean());
    }
  }
  htune::bench::Note(
      "within a reward level, more internal votes -> longer phase 1 (fewer "
      "takers) and longer phase 2 (more work): Fig 5(a)/(b)'s ordering. "
      "Raising the reward shortens phase 1 but leaves phase 2 untouched.");
  return 0;
}
