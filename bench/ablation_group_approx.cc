// Ablation C: quality of the group-sum surrogate. RA/HA minimize
// sum_i E[L(g_i)] instead of the intractable E[max over all tasks]; the
// paper argues the sum upper-bounds the max and moves with it. Quantify
// the gap as the number of groups grows, against the exact analytic max
// and a Monte Carlo estimate.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "rng/random.h"
#include "tuning/evaluator.h"
#include "tuning/repetition_allocator.h"

int main() {
  htune::bench::Banner(
      "ablation_group_approx",
      "DESIGN.md ablation C: group-sum surrogate vs exact E[max] vs Monte "
      "Carlo, as group count grows");

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  std::printf("%8s %14s %14s %14s %12s\n", "groups", "sum E[L(g)]",
              "E[max] exact", "E[max] MC", "sum/max");
  for (const int group_count : {1, 2, 4, 8}) {
    htune::TuningProblem problem;
    for (int i = 0; i < group_count; ++i) {
      htune::TaskGroup g;
      g.name = "g" + std::to_string(i);
      g.num_tasks = 10;
      g.repetitions = 2 + i % 3;
      g.processing_rate = 2.0;
      g.curve = curve;
      problem.groups.push_back(g);
    }
    problem.budget = problem.MinimumBudget() * 4;
    const auto alloc =
        htune::RepetitionAllocator().Allocate(problem);
    if (!alloc.ok()) {
      std::fprintf(stderr, "%s\n", alloc.status().ToString().c_str());
      return 1;
    }
    const double sum = htune::Phase1GroupSum(problem, *alloc);
    const double exact = htune::ExpectedPhase1Latency(problem, *alloc);
    htune::Random rng(static_cast<uint64_t>(group_count));
    const double mc =
        htune::MonteCarloPhase1Latency(problem, *alloc, 30000, rng);
    std::printf("%8d %14.4f %14.4f %14.4f %12.3f\n", group_count, sum,
                exact, mc, sum / exact);
  }
  htune::bench::Note(
      "the sum upper-bounds the exact max (ratio >= 1) and the gap grows "
      "with the group count — the surrogate's price for tractability; the "
      "exact analytic column must match Monte Carlo.");
  return 0;
}
