// Figure 3: worker arrival moments. Publish an image-filtering task at one
// unit reward ($0.05) on the AMT-calibrated market and collect the first 20
// acceptances. The paper's observation: acceptance epochs grow linearly in
// the order index (a Poisson process), while phase-2 latencies fluctuate in
// a small band.

#include <cstdio>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "market/simulator.h"
#include "probe/calibration.h"
#include "stats/regression.h"

int main() {
  htune::bench::Banner(
      "fig3_arrivals",
      "Figure 3: first 20 worker arrivals at $0.05 — ph1 epochs, ph2 "
      "latencies, overall (minutes)");

  // AMT calibration (§5.2.2): lambda_o(5 cents) = 0.0038 /s. Processing of
  // the dot-counting filter takes a couple of minutes on average.
  const double lambda_o = htune::PaperAmtMeasuredPoints()[0].second;
  const double lambda_p = 1.0 / 120.0;  // mean 2 minutes

  htune::MarketConfig config;
  config.worker_arrival_rate = 0.05;  // workers entering the market per sec
  config.seed = 20161014;
  htune::MarketSimulator market(config);

  htune::TaskSpec task;
  task.price_per_repetition = 1;
  task.repetitions = 20;
  task.on_hold_rate = lambda_o;
  task.processing_rate = lambda_p;
  const auto id = market.PostTask(task);
  HTUNE_CHECK(id.ok());
  HTUNE_CHECK_OK(market.RunToCompletion());
  const auto outcome = market.GetOutcome(*id);
  HTUNE_CHECK(outcome.ok());

  std::printf("%6s %16s %16s %16s\n", "order", "ph1 epoch (min)",
              "ph2 latency (min)", "overall (min)");
  std::vector<double> orders, epochs;
  for (size_t i = 0; i < outcome->repetitions.size(); ++i) {
    const auto& rep = outcome->repetitions[i];
    const double epoch_min = rep.accepted_time / 60.0;
    std::printf("%6zu %16.1f %16.1f %16.1f\n", i + 1, epoch_min,
                rep.ProcessingLatency() / 60.0, rep.completed_time / 60.0);
    orders.push_back(static_cast<double>(i + 1));
    epochs.push_back(epoch_min);
  }

  const auto fit = htune::FitLinear(orders, epochs);
  HTUNE_CHECK(fit.ok());
  std::printf(
      "\nacceptance epochs vs order: slope %.2f min/order, R^2 = %.4f\n",
      fit->slope, fit->r_squared);
  htune::bench::Note(
      "linearity of the epochs (R^2 near 1) indicates a Poisson acceptance "
      "process, the paper's Fig 3 finding; the slope estimates one full "
      "repetition cycle 1/lambda_o + 1/lambda_p = " +
      std::to_string((1.0 / lambda_o + 1.0 / lambda_p) / 60.0) +
      " min (sequential repetitions re-post after each answer).");
  return 0;
}
