// Extension bench: the quality / latency / cost frontier of repetition.
// The HPU is error-prone; repetition plus majority voting buys accuracy at
// linear latency and cost. Compare the analytic majority model against
// accuracy realized end-to-end on the market (CrowdFilter with noisy
// workers), and report the latency multiplier.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "crowddb/filter.h"
#include "market/simulator.h"
#include "model/quality.h"
#include "stats/descriptive.h"
#include "tuning/even_allocator.h"

int main() {
  htune::bench::Banner(
      "quality_tradeoff",
      "extension: majority-vote accuracy vs repetitions — analytic binomial "
      "model vs end-to-end market runs");

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  const int kItems = 40;
  const int kMarkets = 12;

  for (const double error : {0.1, 0.2, 0.3}) {
    std::printf("\nworker error rate %.0f%%:\n", error * 100.0);
    std::printf("%6s %12s %12s %12s %12s\n", "reps", "analytic",
                "measured", "latency", "cost/item");
    for (const int reps : {1, 3, 5, 7}) {
      const double analytic =
          *htune::MajorityCorrectProbability(error, reps);
      int right = 0, total = 0;
      htune::RunningStats latency;
      long spent = 0;
      for (int m = 0; m < kMarkets; ++m) {
        std::vector<htune::Item> items;
        for (int i = 0; i < kItems; ++i) {
          items.push_back({i, static_cast<double>(i)});
        }
        const auto filter =
            htune::CrowdFilter::Create(items, kItems / 2.0, reps);
        HTUNE_CHECK(filter.ok());
        htune::MarketConfig config;
        config.worker_arrival_rate = 150.0;
        config.worker_error_prob = error;
        config.seed = 100 + static_cast<uint64_t>(m) * 7 +
                      static_cast<uint64_t>(reps);
        config.record_trace = false;
        htune::MarketSimulator market(config);
        const auto result =
            filter->Run(market, htune::EvenAllocator(),
                        static_cast<long>(kItems) * reps * 5, curve, 4.0);
        HTUNE_CHECK(result.ok());
        latency.Add(result->latency);
        spent += result->spent;
        // Per-item correctness: compare the majority verdict to the truth.
        const auto questions = filter->Questions();
        for (int i = 0; i < kItems; ++i) {
          const bool truth_pass = questions[static_cast<size_t>(i)]
                                      .true_answer == 0;
          const bool judged_pass =
              std::find(result->selected.begin(), result->selected.end(),
                        i) != result->selected.end();
          if (truth_pass == judged_pass) ++right;
          ++total;
        }
      }
      std::printf("%6d %12.4f %12.4f %12.3f %12.1f\n", reps, analytic,
                  right / static_cast<double>(total), latency.Mean(),
                  static_cast<double>(spent) / (kMarkets * kItems));
    }
  }
  htune::bench::Note(
      "measured accuracy should track the binomial model (small departures "
      "come from worker reuse within a market); accuracy gains flatten while "
      "latency and cost keep growing linearly — pick repetitions with "
      "MinRepetitionsForTarget rather than 'more is better'.");
  return 0;
}
