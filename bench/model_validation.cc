// Extension bench: nonparametric validation of the exponential on-hold
// model (the statistically careful version of Figure 3's linearity check).
// Collect acceptance durations from the market *with censoring* — waits
// still unresolved when the observation window closes — fit Kaplan-Meier,
// and compare against the exponential survival at the probe-estimated rate.
// Also shows the bias of naively dropping the censored waits.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "market/simulator.h"
#include "stats/kaplan_meier.h"

int main() {
  htune::bench::Banner(
      "model_validation",
      "extension: Kaplan-Meier survival of on-hold waits (censored at a "
      "finite window) vs the exponential model");

  const double true_rate = 2.0;
  const double window = 1.2;  // observation cut: ~9% of waits censored

  std::vector<htune::SurvivalObservation> censored, naive;
  for (int m = 0; m < 400; ++m) {
    htune::MarketConfig config;
    config.worker_arrival_rate = 60.0;
    config.seed = 5000 + static_cast<uint64_t>(m);
    config.record_trace = false;
    htune::MarketSimulator market(config);
    std::vector<htune::TaskId> ids;
    for (int i = 0; i < 5; ++i) {
      htune::TaskSpec spec;
      spec.price_per_repetition = 1;
      spec.repetitions = 1;
      spec.on_hold_rate = true_rate;
      spec.processing_rate = 1e5;
      ids.push_back(*market.PostTask(spec));
    }
    market.RunUntil(window);
    for (const htune::TaskId id : ids) {
      const auto progress = market.GetProgress(id);
      HTUNE_CHECK(progress.ok());
      if (!progress->repetitions.empty()) {
        const double wait = progress->repetitions[0].OnHoldLatency();
        censored.push_back({wait, true});
        naive.push_back({wait, true});
      } else {
        censored.push_back({window, false});
        // the naive analysis silently drops this observation
      }
    }
  }

  const auto km = htune::KaplanMeier::Fit(censored);
  const auto km_naive = htune::KaplanMeier::Fit(naive);
  HTUNE_CHECK(km.ok());
  HTUNE_CHECK(km_naive.ok());

  // MLE of the rate under censoring: events / total exposure.
  double exposure = 0.0;
  int events = 0;
  for (const auto& obs : censored) {
    exposure += obs.time;
    if (obs.event) ++events;
  }
  const double rate_hat = events / exposure;

  std::printf("observations: %zu (%zu censored at the %.1f window)\n",
              censored.size(), km->num_censored(), window);
  std::printf("censored MLE rate: %.4f (true %.4f)\n", rate_hat, true_rate);
  std::printf("%8s %14s %14s %14s\n", "t", "exp model", "KM (censored)",
              "KM (naive)");
  for (const double t : {0.1, 0.3, 0.6, 0.9, 1.1}) {
    std::printf("%8.2f %14.4f %14.4f %14.4f\n", t,
                std::exp(-true_rate * t), km->Survival(t),
                km_naive->Survival(t));
  }
  std::printf(
      "\nmax |KM - exponential| at the estimated rate: censored %.4f, "
      "naive %.4f\n",
      htune::MaxDeviationFromExponential(*km, rate_hat),
      htune::MaxDeviationFromExponential(*km_naive, rate_hat));
  htune::bench::Note(
      "the censoring-aware curve hugs the exponential model (validating "
      "the §3.1 acceptance law end-to-end); the naive curve that drops "
      "unresolved waits is biased low — the same survivorship trap the "
      "adaptive retuner's estimator avoids.");
  return 0;
}
