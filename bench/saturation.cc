// Extension bench: market saturation. The paper's linear hypothesis says
// every extra payment unit keeps buying rate; a real worker pool is finite,
// so uptake saturates (sigmoid curve). Sweep budgets on both markets and
// show where money stops buying latency — the knee a production budget
// planner must detect.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "tuning/even_allocator.h"
#include "tuning/evaluator.h"
#include "tuning/group_latency_table.h"

int main() {
  htune::bench::Banner(
      "saturation",
      "extension: linear vs saturating (sigmoid) markets — where extra "
      "budget stops buying latency");

  // Both curves agree around price ~4 but diverge beyond.
  const auto linear = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  const auto sigmoid =
      std::make_shared<htune::SigmoidCurve>(10.0, 4.0, 1.5);

  std::printf("%10s %14s %14s %16s %16s\n", "budget", "price/rep",
              "E[L] linear", "E[L] sigmoid", "marginal sig");
  double prev_sigmoid = -1.0;
  for (long budget = 200; budget <= 4000; budget += 380) {
    htune::TuningProblem problem;
    htune::TaskGroup group;
    group.name = "votes";
    group.num_tasks = 40;
    group.repetitions = 5;
    group.processing_rate = 2.0;
    group.curve = linear;
    problem.groups.push_back(group);
    problem.budget = budget;

    const auto alloc = htune::EvenAllocator().Allocate(problem);
    HTUNE_CHECK(alloc.ok());
    const double linear_latency =
        htune::ExpectedPhase1Latency(problem, *alloc);

    htune::TuningProblem saturated = problem;
    saturated.groups[0].curve = sigmoid;
    const double sigmoid_latency =
        htune::ExpectedPhase1Latency(saturated, *alloc);

    const int price = alloc->groups[0].prices[0][0];
    std::printf("%10ld %14d %14.4f %16.4f %16.4f\n", budget, price,
                linear_latency, sigmoid_latency,
                prev_sigmoid < 0.0 ? 0.0 : prev_sigmoid - sigmoid_latency);
    prev_sigmoid = sigmoid_latency;
  }
  htune::bench::Note(
      "on the linear market, latency keeps falling hyperbolically with "
      "budget; on the saturating market, the marginal column collapses "
      "once the price passes the sigmoid's midpoint — the worker pool is "
      "exhausted and further spend is pure waste. Probe for the knee "
      "(Calibration + SigmoidCurve) before committing a large budget.");
  return 0;
}
