// Extension bench: the cost-vs-deadline frontier of the dual tuning
// problem. For a fixed job, sweep the deadline and report the cheapest
// budget meeting it — the requester-facing "what does speed cost?" curve,
// and the inverse of Figure 2's latency-vs-budget sweeps.

#include <cstdio>
#include <memory>

#include "bench/report.h"
#include "common/check.h"
#include "tuning/deadline_allocator.h"
#include "tuning/evaluator.h"
#include "tuning/repetition_allocator.h"

int main() {
  htune::bench::Banner(
      "deadline_frontier",
      "extension: minimal budget vs deadline (dual of Fig 2), both "
      "deadline objectives");

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  htune::TuningProblem problem;
  htune::TaskGroup easy;
  easy.name = "easy";
  easy.num_tasks = 20;
  easy.repetitions = 3;
  easy.processing_rate = 2.0;
  easy.curve = curve;
  htune::TaskGroup hard = easy;
  hard.name = "hard";
  hard.repetitions = 5;
  hard.processing_rate = 1.0;
  problem.groups = {easy, hard};
  problem.budget = 20000;  // search ceiling

  std::printf("%10s %16s %16s %18s %18s\n", "deadline", "cost(ph1-sum)",
              "cost(most-diff)", "achieved(ph1)", "achieved(md)");
  for (const double deadline :
       {8.0, 6.5, 6.0, 5.5, 5.2, 4.0, 3.0, 2.0, 1.0, 0.5}) {
    const auto ph1 = htune::SolveDeadline(
        problem, deadline, htune::DeadlineObjective::kPhase1Sum);
    const auto md = htune::SolveDeadline(
        problem, deadline, htune::DeadlineObjective::kMostDifficult);
    std::printf("%10.2f", deadline);
    if (ph1.ok()) {
      std::printf(" %16ld", ph1->cost);
    } else {
      std::printf(" %16s", "infeasible");
    }
    if (md.ok()) {
      std::printf(" %16ld", md->cost);
    } else {
      std::printf(" %16s", "infeasible");
    }
    std::printf(" %18.4f %18.4f\n", ph1.ok() ? ph1->achieved : -1.0,
                md.ok() ? md->achieved : -1.0);
  }

  // Round trip with the primal: tune at the dual's cost and confirm the
  // latency comes back under the deadline.
  const double deadline = 2.0;
  const auto plan = htune::SolveDeadline(
      problem, deadline, htune::DeadlineObjective::kPhase1Sum);
  HTUNE_CHECK(plan.ok());
  htune::TuningProblem primal = problem;
  primal.budget = plan->cost;
  const auto alloc =
      htune::RepetitionAllocator(htune::RepetitionAllocator::Mode::kExactDp)
          .Allocate(primal);
  HTUNE_CHECK(alloc.ok());
  std::printf(
      "\nround trip at deadline %.1f: dual cost %ld; primal RA at that "
      "budget reaches phase-1 sum %.4f (<= deadline)\n",
      deadline, plan->cost, htune::Phase1GroupSum(primal, *alloc));
  htune::bench::Note(
      "cost explodes as the deadline approaches the model's latency floors: "
      "the phase-1 sum can be bought down indefinitely (hyperbolic cost "
      "growth), while the most-difficult objective hits the hard "
      "processing floor of 5 repetitions / 1.0 = 5 and goes infeasible "
      "below it.");
  return 0;
}
