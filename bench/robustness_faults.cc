// Robustness F: fault-tolerant execution vs static allocation and online
// re-tuning when the market misbehaves. Two fault regimes: (1) a worker
// abandonment sweep (accepted repetitions returned unanswered with
// probability p after an exponential hold) and (2) a scripted mid-job
// demand outage with an error burst. The fault-tolerant executor allocates
// against the renewal-corrected rates, detects stragglers, and reposts at
// escalated prices inside a budget ceiling.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "common/parallel.h"
#include "control/adaptive_retuner.h"
#include "control/fault_tolerant_executor.h"
#include "crowddb/executor.h"
#include "crowddb/types.h"
#include "market/fault_schedule.h"
#include "stats/descriptive.h"
#include "tuning/repetition_allocator.h"

namespace {

struct RunResult {
  double latency = 0.0;
  double spent = 0.0;
  double accuracy = 0.0;
};

htune::TuningProblem MakeProblem(long budget) {
  htune::TaskGroup g;
  g.name = "vote";
  g.num_tasks = 12;
  g.repetitions = 5;
  g.processing_rate = 5.0;
  g.curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  htune::TuningProblem problem;
  problem.groups = {g};
  problem.budget = budget;
  return problem;
}

double MajorityAccuracy(const std::vector<std::vector<int>>& answers) {
  int correct = 0;
  for (const std::vector<int>& task : answers) {
    if (htune::MajorityVote(task) == 0) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(answers.size());
}

}  // namespace

int main() {
  htune::bench::Banner(
      "robustness_faults",
      "DESIGN.md robustness F: static vs adaptive vs fault-tolerant "
      "execution under abandonment and outage faults");

  const htune::RepetitionAllocator allocator;
  const int kRuns = 20;
  const long kBudget = 600;        // spend ceiling every strategy gets
  const long kPlanBudget = 450;    // FT allocates below the ceiling:
                                   // the difference is escalation headroom
  const double kHoldRate = 2.0;    // abandoning workers give up at this rate

  std::printf("\n-- abandonment sweep (p = return probability) --\n");
  std::printf("%8s %12s %12s %12s %10s %10s %10s %10s\n", "p", "static lat",
              "adaptive", "fault-tol", "ft spend", "ft acc", "stragglers",
              "escalated");
  for (const double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    // One replication = one parallel job (its own market instances, seeded
    // by r exactly as the serial loop was); stats accumulate serially in r
    // order below, so the report is identical for any thread count.
    struct SweepResult {
      double static_lat = 0.0;
      double adaptive_lat = 0.0;
      double ft_lat = 0.0;
      double ft_spent = 0.0;
      double ft_acc = 0.0;
      double ft_stragglers = 0.0;
      double ft_escalations = 0.0;
    };
    const std::vector<SweepResult> runs =
        htune::ParallelMap<SweepResult>(kRuns, [&](size_t r) {
          SweepResult out;
          for (const int mode : {0, 1, 2}) {  // static, adaptive, fault-tol
            htune::MarketConfig market_config;
            market_config.worker_arrival_rate = 200.0;
            market_config.worker_error_prob = 0.25;
            market_config.abandon_prob = p;
            market_config.abandon_hold_rate = kHoldRate;
            market_config.seed = 31000 + static_cast<uint64_t>(r);
            market_config.record_trace = false;
            htune::MarketSimulator market(market_config);

            const htune::TuningProblem problem =
                MakeProblem(mode == 2 ? kPlanBudget : kBudget);
            const std::vector<htune::QuestionSpec> questions(
                static_cast<size_t>(problem.TotalTasks()));

            if (mode == 0) {
              const auto alloc = allocator.Allocate(problem);
              HTUNE_CHECK(alloc.ok());
              const auto result =
                  htune::ExecuteJob(market, problem, *alloc, questions);
              HTUNE_CHECK(result.ok());
              out.static_lat = result->latency;
            } else if (mode == 1) {
              htune::RetunerConfig config;
              config.review_interval = 0.25;
              const htune::AdaptiveRetuner runner(&allocator, config);
              const auto report = runner.Run(market, problem, questions);
              HTUNE_CHECK(report.ok());
              out.adaptive_lat = report->latency;
            } else {
              htune::FaultTolerantConfig config;
              config.review_interval = 0.25;
              config.straggler_quantile = 0.9;
              config.budget = kBudget;
              config.abandonment = {p, kHoldRate};
              const htune::FaultTolerantExecutor runner(&allocator, config);
              const auto report = runner.Run(market, problem, questions);
              HTUNE_CHECK(report.ok());
              out.ft_lat = report->latency;
              out.ft_spent = static_cast<double>(report->spent);
              out.ft_acc = MajorityAccuracy(report->answers);
              out.ft_stragglers = static_cast<double>(report->stragglers);
              out.ft_escalations = static_cast<double>(report->escalations);
            }
          }
          return out;
        });
    htune::RunningStats static_lat, adaptive_lat, ft_lat, ft_spent, ft_acc,
        ft_stragglers, ft_escalations;
    for (const SweepResult& run : runs) {
      static_lat.Add(run.static_lat);
      adaptive_lat.Add(run.adaptive_lat);
      ft_lat.Add(run.ft_lat);
      ft_spent.Add(run.ft_spent);
      ft_acc.Add(run.ft_acc);
      ft_stragglers.Add(run.ft_stragglers);
      ft_escalations.Add(run.ft_escalations);
    }
    std::printf("%8.2f %12.3f %12.3f %12.3f %10.1f %10.3f %10.2f %10.2f\n",
                p, static_lat.Mean(), adaptive_lat.Mean(), ft_lat.Mean(),
                ft_spent.Mean(), ft_acc.Mean(), ft_stragglers.Mean(),
                ft_escalations.Mean());
  }

  std::printf("\n-- scripted outage: arrivals x0.05 and error burst 0.5 "
              "over t in [1.5, 4.5), abandonment p=0.1 --\n");
  std::printf("%12s %12s %12s %10s\n", "strategy", "latency", "spend", "acc");
  const char* names[] = {"static", "adaptive", "fault-tol"};
  for (const int mode : {0, 1, 2}) {
    const std::vector<RunResult> runs = htune::ParallelMap<RunResult>(
        kRuns, [&](size_t r) {
      htune::FaultWindow outage;
      outage.start = 1.5;
      outage.end = 4.5;
      outage.arrival_factor = 0.05;
      outage.error_prob = 0.5;
      auto schedule = htune::FaultSchedule::Create({outage});
      HTUNE_CHECK(schedule.ok());

      htune::MarketConfig market_config;
      market_config.worker_arrival_rate = 200.0;
      market_config.worker_error_prob = 0.25;
      market_config.abandon_prob = 0.1;
      market_config.abandon_hold_rate = kHoldRate;
      market_config.fault_schedule =
          std::make_shared<htune::FaultSchedule>(*schedule);
      market_config.seed = 47000 + static_cast<uint64_t>(r);
      market_config.record_trace = false;
      htune::MarketSimulator market(market_config);

      const htune::TuningProblem problem =
          MakeProblem(mode == 2 ? kPlanBudget : kBudget);
      const std::vector<htune::QuestionSpec> questions(
          static_cast<size_t>(problem.TotalTasks()));

      RunResult result;
      if (mode == 0) {
        const auto alloc = allocator.Allocate(problem);
        HTUNE_CHECK(alloc.ok());
        const auto run = htune::ExecuteJob(market, problem, *alloc, questions);
        HTUNE_CHECK(run.ok());
        result = {run->latency, static_cast<double>(run->spent),
                  MajorityAccuracy(run->answers)};
      } else if (mode == 1) {
        htune::RetunerConfig config;
        config.review_interval = 0.25;
        const htune::AdaptiveRetuner runner(&allocator, config);
        const auto run = runner.Run(market, problem, questions);
        HTUNE_CHECK(run.ok());
        // The retuner does not report answers; accuracy comes from the
        // market outcomes directly.
        double correct = 0.0;
        for (const htune::TaskOutcome& outcome : market.CompletedOutcomes()) {
          std::vector<int> answers;
          for (const htune::RepetitionOutcome& rep : outcome.repetitions) {
            answers.push_back(rep.answer);
          }
          if (htune::MajorityVote(answers) == 0) correct += 1.0;
        }
        result = {run->latency, static_cast<double>(run->spent),
                  correct / static_cast<double>(questions.size())};
      } else {
        htune::FaultTolerantConfig config;
        config.review_interval = 0.25;
        config.straggler_quantile = 0.9;
        config.budget = kBudget;
        config.abandonment = {0.1, kHoldRate};
        const htune::FaultTolerantExecutor runner(&allocator, config);
        const auto run = runner.Run(market, problem, questions);
        HTUNE_CHECK(run.ok());
        result = {run->latency, static_cast<double>(run->spent),
                  MajorityAccuracy(run->answers)};
      }
      return result;
    });
    htune::RunningStats lat, spent, acc;
    for (const RunResult& result : runs) {
      lat.Add(result.latency);
      spent.Add(result.spent);
      acc.Add(result.accuracy);
    }
    std::printf("%12s %12.3f %12.3f %10.3f\n", names[mode], lat.Mean(),
                spent.Mean(), acc.Mean());
  }

  htune::bench::Note(
      "the static path pays for abandonment and outages entirely in latency "
      "(stragglers dominate the job's E[max]); the adaptive retuner only "
      "helps once its rate estimates drift, while the fault-tolerant "
      "executor converts budget headroom into targeted escalations of the "
      "repetitions that are actually stuck. Its spend stays under the same "
      "ceiling the other strategies allocate outright, and majority-vote "
      "accuracy is preserved because escalation never reduces repetitions.");
  return 0;
}
