// Figure 2(m)-(r), "heter": Scenario III — a 3-repetition group with
// lambda_p = 2.0 and a 5-repetition group with lambda_p = 3.0, budget
// 1000..5000, HA (opt) vs rep-even (re) vs task-even (te).

#include <memory>

#include "bench/fig2_common.h"
#include "tuning/baselines.h"
#include "tuning/heterogeneous_allocator.h"

namespace {

std::vector<htune::TaskGroup> MakeGroups(
    std::shared_ptr<const htune::PriceRateCurve> curve) {
  htune::TaskGroup easy;
  easy.name = "three-reps-easy";
  easy.num_tasks = 50;
  easy.repetitions = 3;
  easy.processing_rate = 2.0;
  easy.curve = curve;
  htune::TaskGroup hard = easy;
  hard.name = "five-reps-hard";
  hard.repetitions = 5;
  hard.processing_rate = 3.0;
  return {easy, hard};
}

}  // namespace

int main() {
  const htune::HeterogeneousAllocator opt;
  const htune::RepEvenAllocator re;
  const htune::TaskEvenAllocator te;
  htune::bench::Fig2Config config;
  config.experiment_name = "fig2_heterogeneous (Scenario III)";
  config.paper_ref =
      "Figure 2(m)-(r) 'heter': opt (HA) vs re (rep-even) vs te (task-even); "
      "50 tasks x 3 reps (lambda_p=2) + 50 tasks x 5 reps (lambda_p=3)";
  config.make_groups = MakeGroups;
  config.strategies = {&opt, &re, &te};
  htune::bench::RunFig2Sweep(config);
  htune::bench::Note(
      "expected shape: opt at or below both baselines across budgets and "
      "curves; the compromise objective keeps the most-difficult group from "
      "straggling.");
  return 0;
}
