// Micro-cost suite (google-benchmark): the numerical kernels and optimizer
// inner loops whose constants determine whether the tuners are usable
// interactively, plus market simulator event throughput.

#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "market/simulator.h"
#include "model/latency_cache.h"
#include "spec/job_spec.h"
#include "stats/kaplan_meier.h"
#include "tuning/evaluator.h"
#include "tuning/quantile.h"
#include "model/distributions.h"
#include "model/hypoexponential.h"
#include "model/order_statistics.h"
#include "rng/random.h"
#include "tuning/heterogeneous_allocator.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

void BM_ErlangCdf(benchmark::State& state) {
  const ErlangDist dist(static_cast<int>(state.range(0)), 2.0);
  double t = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Cdf(t));
    t += 0.1;
    if (t > 20.0) t = 0.1;
  }
}
BENCHMARK(BM_ErlangCdf)->Arg(1)->Arg(5)->Arg(20);

void BM_HypoexponentialCdf(benchmark::State& state) {
  std::vector<double> rates;
  for (long i = 0; i < state.range(0); ++i) {
    rates.push_back(1.0 + static_cast<double>(i % 4));
  }
  const HypoexponentialDist dist(rates);
  double t = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Cdf(t));
    t += 0.5;
    if (t > 30.0) t = 0.5;
  }
}
BENCHMARK(BM_HypoexponentialCdf)->Arg(2)->Arg(8)->Arg(24);

void BM_ExpectedMaxErlang(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExpectedMaxErlang(static_cast<int>(state.range(0)), 5, 3.0));
  }
}
BENCHMARK(BM_ExpectedMaxErlang)->Arg(10)->Arg(100);

std::shared_ptr<const PriceRateCurve> BenchCurve() {
  static const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  return curve;
}

TuningProblem BenchProblem(long budget) {
  TaskGroup a;
  a.name = "a";
  a.num_tasks = 50;
  a.repetitions = 3;
  a.processing_rate = 2.0;
  a.curve = BenchCurve();
  TaskGroup b = a;
  b.repetitions = 5;
  b.processing_rate = 3.0;
  TuningProblem problem;
  problem.groups = {a, b};
  problem.budget = budget;
  return problem;
}

void BM_RepetitionAllocator(benchmark::State& state) {
  const TuningProblem problem = BenchProblem(state.range(0));
  const RepetitionAllocator tuner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.SolvePrices(problem));
  }
}
BENCHMARK(BM_RepetitionAllocator)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_HeterogeneousAllocator(benchmark::State& state) {
  const TuningProblem problem = BenchProblem(state.range(0));
  const HeterogeneousAllocator tuner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.SolvePrices(problem));
  }
}
BENCHMARK(BM_HeterogeneousAllocator)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

// 16 distinct group shapes (tasks x repetitions cross product) replicated
// `copies` times each — 64 groups at copies=4, 256 at copies=16. With
// `clone_curves=false` every group shares one curve object, so the global
// latency cache dedupes the quadrature kernel across copies; with
// `clone_curves=true` each group carries its own deep copy, which defeats
// cross-group sharing and reproduces the pre-cache per-group cost.
TuningProblem ManyGroupProblem(int copies, bool clone_curves) {
  const std::shared_ptr<const PriceRateCurve> shared_curve = BenchCurve();
  TuningProblem problem;
  long unit_cost_sum = 0;
  for (int c = 0; c < copies; ++c) {
    for (const int tasks : {20, 30, 40, 50}) {
      for (const int reps : {2, 3, 4, 5}) {
        TaskGroup g;
        g.name = "g" + std::to_string(problem.groups.size());
        g.num_tasks = tasks;
        g.repetitions = reps;
        g.processing_rate = 2.0;
        g.curve = clone_curves
                      ? std::shared_ptr<const PriceRateCurve>(
                            shared_curve->Clone())
                      : shared_curve;
        unit_cost_sum += tasks * reps;
        problem.groups.push_back(std::move(g));
      }
    }
  }
  // Minimum spend plus a fixed spare so the DP depth (and therefore the
  // price range the kernels are evaluated over) is the same at every size.
  problem.budget = unit_cost_sum + 2000;
  return problem;
}

// End-to-end cold solve: the cache is cleared outside the timed region, so
// each iteration pays the full quadrature bill once per distinct
// (shape, price) — copies of a shape share entries.
void BM_RepetitionAllocatorManyGroups(benchmark::State& state) {
  const TuningProblem problem =
      ManyGroupProblem(static_cast<int>(state.range(0)),
                       /*clone_curves=*/false);
  const RepetitionAllocator tuner;
  for (auto _ : state) {
    state.PauseTiming();
    GlobalLatencyCache().Clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(tuner.SolvePrices(problem));
  }
  state.counters["groups"] =
      static_cast<double>(problem.groups.size());
}
BENCHMARK(BM_RepetitionAllocatorManyGroups)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Same instance but with per-group cloned curves: distinct curve identities
// keep the cache from sharing kernel results across the copies, matching
// the pre-cache behavior where every group recomputed its own table.
void BM_RepetitionAllocatorManyGroupsBaseline(benchmark::State& state) {
  const TuningProblem problem =
      ManyGroupProblem(static_cast<int>(state.range(0)),
                       /*clone_curves=*/true);
  const RepetitionAllocator tuner;
  for (auto _ : state) {
    state.PauseTiming();
    GlobalLatencyCache().Clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(tuner.SolvePrices(problem));
  }
  state.counters["groups"] =
      static_cast<double>(problem.groups.size());
}
BENCHMARK(BM_RepetitionAllocatorManyGroupsBaseline)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_HeterogeneousAllocatorManyGroups(benchmark::State& state) {
  const TuningProblem problem =
      ManyGroupProblem(static_cast<int>(state.range(0)),
                       /*clone_curves=*/false);
  const HeterogeneousAllocator tuner;
  for (auto _ : state) {
    state.PauseTiming();
    GlobalLatencyCache().Clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(tuner.SolvePrices(problem));
  }
  state.counters["groups"] =
      static_cast<double>(problem.groups.size());
}
BENCHMARK(BM_HeterogeneousAllocatorManyGroups)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Warm-path cost of one memoized kernel lookup.
void BM_LatencyCacheHit(benchmark::State& state) {
  const auto curve = BenchCurve();
  GroupShape shape;
  shape.num_tasks = 50;
  shape.repetitions = 3;
  GlobalLatencyCache().Phase1(shape, curve, 2);  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(GlobalLatencyCache().Phase1(shape, curve, 2));
  }
}
BENCHMARK(BM_LatencyCacheHit);

// Fork/join overhead of an n-index region with a trivial body.
void BM_ParallelForOverhead(benchmark::State& state) {
  std::vector<double> slots(static_cast<size_t>(state.range(0)), 0.0);
  for (auto _ : state) {
    ParallelFor(slots.size(), [&](size_t i) {
      slots[i] += 1.0;
    });
    benchmark::DoNotOptimize(slots.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(64)->Arg(4096);

void BM_ParallelMonteCarlo(benchmark::State& state) {
  const TuningProblem problem = BenchProblem(2000);
  const RepetitionAllocator tuner;
  const auto alloc = tuner.Allocate(problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelMonteCarloOverallLatency(
        problem, *alloc, static_cast<int>(state.range(0)), 12345));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelMonteCarlo)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_MarketThroughput(benchmark::State& state) {
  for (auto _ : state) {
    MarketConfig config;
    config.worker_arrival_rate = 100.0;
    config.seed = 1;
    config.record_trace = false;
    MarketSimulator market(config);
    for (long i = 0; i < state.range(0); ++i) {
      TaskSpec spec;
      spec.price_per_repetition = 2;
      spec.repetitions = 3;
      spec.on_hold_rate = 5.0;
      spec.processing_rate = 2.0;
      benchmark::DoNotOptimize(market.PostTask(spec));
    }
    benchmark::DoNotOptimize(market.RunToCompletion());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_MarketThroughput)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_KaplanMeierFit(benchmark::State& state) {
  Random rng(7);
  std::vector<SurvivalObservation> data;
  for (long i = 0; i < state.range(0); ++i) {
    const double t = rng.Exponential(1.0);
    data.push_back({std::min(t, 2.0), t <= 2.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KaplanMeier::Fit(data));
  }
}
BENCHMARK(BM_KaplanMeierFit)->Arg(100)->Arg(10000);

void BM_SolveQuantileDeadline(benchmark::State& state) {
  const TuningProblem problem = BenchProblem(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveQuantileDeadline(problem, 4.0, 0.9));
  }
}
BENCHMARK(BM_SolveQuantileDeadline)->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_ParseJobSpec(benchmark::State& state) {
  const std::string spec =
      "budget = 1500\n[group]\ntasks = 30\nrepetitions = 3\n"
      "processing_rate = 2.0\ncurve = linear 1.0 1.0\n[group]\n"
      "tasks = 30\nrepetitions = 5\nprocessing_rate = 2.0\n"
      "curve = table 1:0.5,5:2.5,9:4.0\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseJobSpec(spec));
  }
}
BENCHMARK(BM_ParseJobSpec);

void BM_MonteCarloSampling(benchmark::State& state) {
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Erlang(5, 2.0));
  }
}
BENCHMARK(BM_MonteCarloSampling);

}  // namespace
}  // namespace htune

BENCHMARK_MAIN();
