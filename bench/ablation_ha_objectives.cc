// Ablation B: what does the compromise objective buy? Compare HA (L1
// closeness), HA-L2, the O1-only tuner (group-sum DP) and the O2-only
// tuner (bottleneck greedy) on Scenario III instances: their (O1, O2)
// points and their realized Monte Carlo job latency.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "rng/random.h"
#include "tuning/evaluator.h"
#include "tuning/heterogeneous_allocator.h"
#include "tuning/repetition_allocator.h"

namespace {

htune::TuningProblem Instance(long budget,
                              std::shared_ptr<const htune::PriceRateCurve>
                                  curve) {
  htune::TuningProblem problem;
  htune::TaskGroup easy;
  easy.name = "easy";
  easy.num_tasks = 20;
  easy.repetitions = 3;
  easy.processing_rate = 3.0;
  easy.curve = curve;
  htune::TaskGroup hard = easy;
  hard.name = "hard";
  hard.repetitions = 6;
  hard.processing_rate = 0.8;
  problem.groups = {easy, hard};
  problem.budget = budget;
  return problem;
}

}  // namespace

int main() {
  htune::bench::Banner(
      "ablation_ha_objectives",
      "DESIGN.md ablation B: HA-L1 vs HA-L2 vs O1-only vs O2-only — "
      "objective points and realized latency");

  const auto curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  const htune::HeterogeneousAllocator ha_l1(htune::ClosenessNorm::kL1);
  const htune::HeterogeneousAllocator ha_l2(htune::ClosenessNorm::kL2);
  const htune::RepetitionAllocator o1_only(
      htune::RepetitionAllocator::Mode::kExactDp);

  for (const long budget : {300L, 600L, 1200L}) {
    const htune::TuningProblem problem = Instance(budget, curve);
    const auto utopia = ha_l1.UtopiaPoint(problem);
    HTUNE_CHECK(utopia.ok());
    std::printf("\nbudget %ld — utopia (O1*, O2*) = (%.3f, %.3f)\n", budget,
                utopia->o1, utopia->o2);
    std::printf("%10s %16s %10s %10s %14s\n", "tuner", "prices", "O1", "O2",
                "MC latency");

    struct Entry {
      const char* name;
      std::vector<int> prices;
    };
    std::vector<Entry> entries;
    entries.push_back({"HA-L1", *ha_l1.SolvePrices(problem)});
    entries.push_back({"HA-L2", *ha_l2.SolvePrices(problem)});
    entries.push_back({"O1-only", *o1_only.SolvePrices(problem)});
    entries.push_back({"O2-only", htune::MinimizeMostDifficult(problem)});

    for (const Entry& entry : entries) {
      const auto op =
          htune::HeterogeneousAllocator::Objectives(problem, entry.prices);
      const htune::Allocation alloc =
          htune::UniformAllocation(problem, entry.prices);
      htune::Random rng(static_cast<uint64_t>(budget) + 5);
      const double mc =
          htune::MonteCarloOverallLatency(problem, alloc, 2000, rng);
      std::printf("%10s %10d,%4d %10.3f %10.3f %14.3f\n", entry.name,
                  entry.prices[0], entry.prices[1], op.o1, op.o2, mc);
    }
  }
  htune::bench::Note(
      "O1-only ignores the hard group's processing handicap and O2-only "
      "overspends on it; the compromise tuners sit between both objective "
      "extremes and track the best realized latency. L1 vs L2 closeness "
      "rarely changes the chosen allocation.");
  return 0;
}
