// Throughput gate for the MarketSimulator event engine (ROADMAP item 2).
//
// Drives million-event workloads chosen to stress the three hot paths of
// the engine rewrite:
//
//   many_task_homogeneous   thousands of open tasks waiting for workers, so
//                           the per-arrival acceptance scan dominates — the
//                           regime of "Finish Them!" / "Human-powered Sorts
//                           and Joins" batch workloads.
//   churn_abandon_expiry    heavy abandonment plus tight acceptance windows:
//                           repost storms exercise the event queue and the
//                           on-hold index churn.
//   reprice_adaptive        periodic fleet-wide repricing between RunUntil
//                           slices, the adaptive-retuner access pattern.
//   wide_fleet_processing_bound
//                           a steady-state fleet where almost every open
//                           task is in a worker's hands: the on-hold set is
//                           tiny, so per-arrival cost is dominated by how
//                           the engine finds the waiting tasks.
//   traced_filtered         many_task workload with tracing enabled; the
//                           trace-filter mask drops per-worker arrival
//                           records so million-event traced runs stay small.
//
// The metric is events/sec where events = dispatched simulator events
// (completions, abandons, expiries) + worker arrivals. Usage:
//
//   market_throughput [--smoke] [--out=PATH] [--baseline=PATH]
//                     [--baseline-out=PATH] [--min-speedup=X]
//
// --baseline-out writes "name events_per_sec" lines; run it on a
// pre-rewrite build, then pass the file via --baseline to a current build
// to fold baseline numbers and speedups into the JSON written by --out
// (the committed BENCH_market.json). With --min-speedup (default 10 when a
// baseline is present), the process exits nonzero unless some workload with
// >= 1M events meets the speedup, making this binary the perf gate.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "market/simulator.h"

namespace {

struct WorkloadResult {
  std::string name;
  size_t tasks = 0;
  uint64_t worker_arrivals = 0;
  uint64_t events_dispatched = 0;
  uint64_t reprices = 0;
  uint64_t total_events = 0;
  uint64_t trace_records = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  long spent = 0;
  // Filled from --baseline when present.
  double baseline_events_per_sec = 0.0;
  double speedup = 0.0;
};

struct Timer {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }
};

void Finish(const htune::MarketSimulator& market, const Timer& timer,
            WorkloadResult& result) {
  result.wall_seconds = timer.Seconds();
  const htune::MarketEventCounts& counts = market.EventCounts();
  result.worker_arrivals = counts.worker_arrivals;
  result.events_dispatched = counts.events_dispatched;
  result.reprices = counts.reprices;
  result.total_events = counts.worker_arrivals + counts.events_dispatched;
  result.trace_records = market.trace().size();
  result.spent = market.TotalSpent();
  result.events_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.total_events) / result.wall_seconds
          : 0.0;
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "market_throughput: %s failed\n", what);
    std::exit(2);
  }
}

// N tasks, all posted at t=0, slowly drained by a fast arrival stream: the
// per-arrival scan over the on-hold population is the dominant cost.
WorkloadResult ManyTaskHomogeneous(bool smoke) {
  WorkloadResult result;
  result.name = "many_task_homogeneous";
  const int tasks = smoke ? 300 : 1500;
  const int reps = smoke ? 4 : 50;
  result.tasks = static_cast<size_t>(tasks);

  htune::MarketConfig config;
  config.worker_arrival_rate = 200.0;
  config.seed = 0xBEEF01;
  config.record_trace = false;

  Timer timer;
  htune::MarketSimulator market(config);
  for (int i = 0; i < tasks; ++i) {
    htune::TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = reps;
    spec.on_hold_rate = 0.01;  // p_accept = 5e-5 per arrival per task
    spec.processing_rate = 4.0;
    Check(market.PostTask(spec).ok(), "PostTask(many_task)");
  }
  Check(market.RunToCompletion().ok(), "RunToCompletion(many_task)");
  Finish(market, timer, result);
  return result;
}

// Abandonment + tight acceptance windows: every exposure races an expiry
// clock, and 30% of acceptances bounce back on hold, so the event queue and
// the on-hold index churn far more than tasks complete.
WorkloadResult ChurnAbandonExpiry(bool smoke) {
  WorkloadResult result;
  result.name = "churn_abandon_expiry";
  const int tasks = smoke ? 200 : 900;
  const int reps = smoke ? 4 : 36;
  result.tasks = static_cast<size_t>(tasks);

  htune::MarketConfig config;
  config.worker_arrival_rate = 150.0;
  config.abandon_prob = 0.3;
  config.abandon_hold_rate = 2.0;
  config.seed = 0xBEEF02;
  config.record_trace = false;

  Timer timer;
  htune::MarketSimulator market(config);
  for (int i = 0; i < tasks; ++i) {
    htune::TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = reps;
    spec.on_hold_rate = 0.02;
    spec.processing_rate = 4.0;
    spec.acceptance_timeout = 6.0;  // ~8.3 expiries per acceptance
    Check(market.PostTask(spec).ok(), "PostTask(churn)");
  }
  Check(market.RunToCompletion().ok(), "RunToCompletion(churn)");
  Finish(market, timer, result);
  return result;
}

// The adaptive-retuner pattern: run in slices, repricing the whole open
// fleet between slices (alternating terms), polling progress as it goes.
WorkloadResult RepriceAdaptive(bool smoke) {
  WorkloadResult result;
  result.name = "reprice_adaptive";
  const int tasks = smoke ? 200 : 1400;
  const int reps = smoke ? 4 : 40;
  result.tasks = static_cast<size_t>(tasks);

  htune::MarketConfig config;
  config.worker_arrival_rate = 200.0;
  config.seed = 0xBEEF03;
  config.record_trace = false;

  Timer timer;
  htune::MarketSimulator market(config);
  std::vector<htune::TaskId> ids;
  ids.reserve(static_cast<size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    htune::TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = reps;
    spec.on_hold_rate = 0.012;
    spec.processing_rate = 4.0;
    ids.push_back(*market.PostTask(spec));
  }
  double deadline = 0.0;
  int phase = 0;
  while (market.OpenTaskCount() > 0) {
    deadline += 25.0;
    market.RunUntil(deadline);
    ++phase;
    const int price = 1 + (phase & 1);
    const double rate = price == 1 ? 0.012 : 0.02;
    for (htune::TaskId id : ids) {
      // Completed tasks return FailedPrecondition; that is part of the
      // polling pattern being measured.
      (void)market.Reprice(id, price, rate);
    }
  }
  Finish(market, timer, result);
  return result;
}

// A wide fleet where processing, not acceptance, is the bottleneck: tasks
// are accepted within ~0.1 time units but process for ~4, so at any instant
// only ~2% of the 2000 open tasks are actually on hold. Pre-rewrite, every
// worker arrival still walked the full open-task map to find them; the
// on-hold index touches only the waiting handful. This is the steady-state
// regime of a long-running crowd pipeline (most work is in workers' hands).
WorkloadResult WideFleetProcessingBound(bool smoke) {
  WorkloadResult result;
  result.name = "wide_fleet_processing_bound";
  const int tasks = smoke ? 300 : 2000;
  const int reps = smoke ? 3 : 125;
  result.tasks = static_cast<size_t>(tasks);

  htune::MarketConfig config;
  config.worker_arrival_rate = 2000.0;
  config.seed = 0xBEEF05;
  config.record_trace = false;

  Timer timer;
  htune::MarketSimulator market(config);
  for (int i = 0; i < tasks; ++i) {
    htune::TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = reps;
    spec.on_hold_rate = 10.0;    // accepted after ~0.1 time units
    spec.processing_rate = 0.25;  // ...then processed for ~4
    Check(market.PostTask(spec).ok(), "PostTask(wide_fleet)");
  }
  Check(market.RunToCompletion().ok(), "RunToCompletion(wide_fleet)");
  Finish(market, timer, result);
  return result;
}

// The many-task workload with tracing on. Pre-rewrite this records every
// worker arrival; with the trace-filter mask the arrival firehose is
// dropped while task-lifecycle records stay, so the comparison measures
// what a traced million-event run actually costs end to end.
WorkloadResult TracedFiltered(bool smoke) {
  WorkloadResult result;
  result.name = "traced_filtered";
  const int tasks = smoke ? 300 : 1500;
  const int reps = smoke ? 4 : 50;
  result.tasks = static_cast<size_t>(tasks);

  htune::MarketConfig config;
  config.worker_arrival_rate = 200.0;
  config.seed = 0xBEEF01;  // same stream as many_task_homogeneous
  config.record_trace = true;
#ifdef HTUNE_MARKET_HAS_TRACE_MASK
  config.trace_mask = htune::kTraceMaskAll &
                      ~htune::TraceMaskBit(htune::TraceEventKind::kWorkerArrival);
#endif

  Timer timer;
  htune::MarketSimulator market(config);
  for (int i = 0; i < tasks; ++i) {
    htune::TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = reps;
    spec.on_hold_rate = 0.01;
    spec.processing_rate = 4.0;
    Check(market.PostTask(spec).ok(), "PostTask(traced)");
  }
  Check(market.RunToCompletion().ok(), "RunToCompletion(traced)");
  Finish(market, timer, result);
  return result;
}

std::map<std::string, double> LoadBaseline(const std::string& path) {
  std::map<std::string, double> baseline;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "market_throughput: cannot read baseline %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::string name;
  double eps = 0.0;
  while (in >> name >> eps) {
    baseline[name] = eps;
  }
  return baseline;
}

std::string ToJson(const std::vector<WorkloadResult>& results, bool smoke,
                   double min_speedup, bool have_baseline) {
  std::ostringstream out;
  out.precision(17);
  out << "{\n  \"schema_version\": 1,\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"min_events_for_gate\": 1000000,\n";
  out << "  \"target_speedup\": " << min_speedup << ",\n";
  out << "  \"has_baseline\": " << (have_baseline ? "true" : "false")
      << ",\n";
  out << "  \"workloads\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    out << "    {\n";
    out << "      \"name\": \"" << r.name << "\",\n";
    out << "      \"tasks\": " << r.tasks << ",\n";
    out << "      \"worker_arrivals\": " << r.worker_arrivals << ",\n";
    out << "      \"events_dispatched\": " << r.events_dispatched << ",\n";
    out << "      \"reprices\": " << r.reprices << ",\n";
    out << "      \"total_events\": " << r.total_events << ",\n";
    out << "      \"trace_records\": " << r.trace_records << ",\n";
    out << "      \"spent\": " << r.spent << ",\n";
    out << "      \"wall_seconds\": " << r.wall_seconds << ",\n";
    out << "      \"events_per_sec\": " << r.events_per_sec;
    if (r.baseline_events_per_sec > 0.0) {
      out << ",\n      \"baseline_events_per_sec\": "
          << r.baseline_events_per_sec;
      out << ",\n      \"speedup\": " << r.speedup;
    }
    out << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path, baseline_path, baseline_out_path;
  double min_speedup = -1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--baseline-out=", 0) == 0) {
      baseline_out_path = arg.substr(15);
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::stod(arg.substr(14));
    } else {
      std::fprintf(stderr,
                   "usage: market_throughput [--smoke] [--out=PATH] "
                   "[--baseline=PATH] [--baseline-out=PATH] "
                   "[--min-speedup=X]\n");
      return 2;
    }
  }

  std::vector<WorkloadResult> results;
  results.push_back(ManyTaskHomogeneous(smoke));
  results.push_back(ChurnAbandonExpiry(smoke));
  results.push_back(RepriceAdaptive(smoke));
  results.push_back(WideFleetProcessingBound(smoke));
  results.push_back(TracedFiltered(smoke));

  std::map<std::string, double> baseline;
  if (!baseline_path.empty()) {
    baseline = LoadBaseline(baseline_path);
    if (min_speedup < 0.0) min_speedup = 10.0;
  }
  if (min_speedup < 0.0) min_speedup = 0.0;
  for (WorkloadResult& r : results) {
    const auto it = baseline.find(r.name);
    if (it != baseline.end() && it->second > 0.0 && r.events_per_sec > 0.0) {
      r.baseline_events_per_sec = it->second;
      r.speedup = r.events_per_sec / it->second;
    }
  }

  for (const WorkloadResult& r : results) {
    std::printf("%-24s %9.2fs  %12llu events  %12.0f events/s",
                r.name.c_str(), r.wall_seconds,
                static_cast<unsigned long long>(r.total_events),
                r.events_per_sec);
    if (r.speedup > 0.0) {
      std::printf("  %6.2fx vs baseline", r.speedup);
    }
    if (r.trace_records > 0) {
      std::printf("  (%llu trace records)",
                  static_cast<unsigned long long>(r.trace_records));
    }
    std::printf("\n");
  }

  if (!baseline_out_path.empty()) {
    std::ofstream out(baseline_out_path);
    out.precision(17);
    for (const WorkloadResult& r : results) {
      out << r.name << " " << r.events_per_sec << "\n";
    }
    std::printf("wrote baseline %s\n", baseline_out_path.c_str());
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << ToJson(results, smoke, min_speedup, !baseline.empty());
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!baseline.empty() && min_speedup > 0.0) {
    bool met = false;
    for (const WorkloadResult& r : results) {
      if (r.total_events >= 1000000 && r.speedup >= min_speedup) met = true;
    }
    if (!met && !smoke) {
      std::fprintf(stderr,
                   "market_throughput: no >=1M-event workload reached the "
                   "%.1fx speedup gate\n",
                   min_speedup);
      return 1;
    }
  }
  return 0;
}
