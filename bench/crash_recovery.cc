// Crash-recovery bench: measures the overhead of journaling a fault-
// tolerant run and the cost of recovering it after simulated kills at
// increasing points of progress. Writes a real file-backed journal (path =
// argv[1], default ./crash_recovery.journal) and leaves the completed
// journal on disk so tools/journal_inspect.py can verify it — CI does
// exactly that.
//
// Correctness is asserted, not just measured: every recovered run must
// reproduce the uninterrupted run's report and journal bytes exactly.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "control/fault_tolerant_executor.h"
#include "durability/journal.h"
#include "market/fault_schedule.h"
#include "market/simulator.h"
#include "model/price_rate_curve.h"
#include "tuning/repetition_allocator.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct Scenario {
  htune::TuningProblem problem;
  std::vector<htune::QuestionSpec> questions;
  htune::MarketConfig market;
  htune::FaultTolerantConfig config;
};

Scenario MakeScenario() {
  Scenario s;
  htune::TaskGroup g;
  g.name = "vote";
  g.num_tasks = 16;
  g.repetitions = 4;
  g.processing_rate = 5.0;
  g.curve = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  s.problem.groups = {g};
  s.problem.budget = 420;
  s.questions.assign(static_cast<size_t>(s.problem.TotalTasks()),
                     htune::QuestionSpec{});

  s.market.worker_arrival_rate = 150.0;
  s.market.worker_error_prob = 0.15;
  s.market.abandon_prob = 0.15;
  s.market.abandon_hold_rate = 2.0;
  const auto outage = htune::FaultSchedule::Create({{0.6, 1.8, 0.05, -1.0}});
  HTUNE_CHECK(outage.ok());
  s.market.fault_schedule =
      std::make_shared<htune::FaultSchedule>(*outage);
  s.market.seed = 20260806;
  s.market.record_trace = true;

  s.config.review_interval = 0.2;
  s.config.straggler_quantile = 0.9;
  s.config.budget = 560;
  s.config.acceptance_timeout = 1.0;
  s.config.abandonment = {0.15, 2.0};
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  htune::bench::Banner(
      "crash_recovery",
      "DESIGN.md §7 durability: journal overhead and recovery cost of the "
      "fault-tolerant executor under simulated kills");
  const std::string path =
      argc > 1 ? argv[1] : std::string("crash_recovery.journal");

  const Scenario s = MakeScenario();
  const htune::RepetitionAllocator allocator;
  const htune::FaultTolerantExecutor executor(&allocator, s.config);

  // Plain (non-durable) run for the overhead baseline.
  const auto t0 = std::chrono::steady_clock::now();
  htune::MarketSimulator plain_market(s.market);
  const auto plain = executor.Run(plain_market, s.problem, s.questions);
  HTUNE_CHECK(plain.ok());
  const auto t1 = std::chrono::steady_clock::now();

  // Uninterrupted durable run with a real file journal.
  htune::FileJournalStorage storage(path);
  HTUNE_CHECK(storage.Truncate(0).ok());
  htune::DurabilityConfig durability;
  durability.storage = &storage;
  durability.snapshot_interval = 4;
  const auto t2 = std::chrono::steady_clock::now();
  const auto baseline =
      executor.RunDurable(s.market, s.problem, s.questions, durability);
  HTUNE_CHECK(baseline.ok());
  const auto t3 = std::chrono::steady_clock::now();
  HTUNE_CHECK(baseline->spent == plain->spent);
  HTUNE_CHECK(baseline->latency == plain->latency);

  const auto journal = storage.Load();
  HTUNE_CHECK(journal.ok());
  const auto contents = htune::ScanJournal(*journal);
  HTUNE_CHECK(contents.ok());
  size_t snapshots = 0;
  for (const htune::JournalRecord& r : contents->records) {
    if (r.type == htune::JournalRecordType::kSnapshot) ++snapshots;
  }
  std::printf(
      "\nscenario: %d tasks x %d reps, outage + abandonment market\n"
      "plain run      %8.1f ms\n"
      "durable run    %8.1f ms  (journal: %zu records, %zu snapshots, "
      "%zu bytes)\n",
      s.problem.groups[0].num_tasks, s.problem.groups[0].repetitions,
      Seconds(t0, t1) * 1e3, Seconds(t2, t3) * 1e3,
      contents->records.size(), snapshots, journal->size());

  // Kill at 10%..90% of journal progress, recover, verify equality.
  std::printf("\n-- recovery after a kill at p%% of journal progress --\n");
  std::printf("%8s %12s %14s %12s\n", "p", "torn bytes", "recovery ms",
              "identical");
  const std::string crash_path = path + ".crash";
  for (int pct = 10; pct <= 90; pct += 20) {
    const uint64_t torn =
        static_cast<uint64_t>(journal->size()) * pct / 100;
    htune::FileJournalStorage crashed(crash_path);
    HTUNE_CHECK(crashed.Truncate(0).ok());
    HTUNE_CHECK(crashed.Append(journal->substr(0, torn)).ok());
    const auto r0 = std::chrono::steady_clock::now();
    const auto recovered =
        [&] {
          htune::DurabilityConfig d;
          d.storage = &crashed;
          d.snapshot_interval = 4;
          return executor.RunDurable(s.market, s.problem, s.questions, d);
        }();
    const auto r1 = std::chrono::steady_clock::now();
    HTUNE_CHECK(recovered.ok());
    const auto final_bytes = crashed.Load();
    HTUNE_CHECK(final_bytes.ok());
    const bool identical = recovered->spent == baseline->spent &&
                           recovered->latency == baseline->latency &&
                           *final_bytes == *journal;
    std::printf("%7d%% %12llu %14.1f %12s\n", pct,
                static_cast<unsigned long long>(torn),
                Seconds(r0, r1) * 1e3, identical ? "yes" : "NO");
    HTUNE_CHECK(identical);
  }
  std::remove(crash_path.c_str());

  std::printf("\ncompleted journal left at %s (run "
              "tools/journal_inspect.py to verify)\n",
              path.c_str());
  return 0;
}
