// Figure 4: money vs latency. Rewards $0.05-$0.12 on the AMT-calibrated
// market, 10 repetitions per task; higher rewards must produce uniformly
// shorter latency curves, and the probe-inferred lambda values must
// reproduce the paper's (0.0038, 0.0062, 0.0121, 0.0131 s^-1) supporting
// the Linearity Hypothesis.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "market/simulator.h"
#include "probe/calibration.h"
#include "probe/probe.h"
#include "stats/descriptive.h"

int main() {
  htune::bench::Banner(
      "fig4_reward",
      "Figure 4: reward vs latency ($0.05..$0.12, 10 repetitions) + "
      "inferred lambda values (§5.2.2)");

  const auto amt_points = htune::PaperAmtMeasuredPoints();
  const auto curve = htune::TableCurve::Create(amt_points, "amt-filtering");
  HTUNE_CHECK(curve.ok());
  const double lambda_p = 1.0 / 120.0;  // dot-counting: mean 2 min
  const int kTasks = 120;                // tasks averaged per reward level
  const int kReps = 10;

  // Mean cumulative completion epoch (minutes) of the k-th repetition.
  std::printf("%6s", "order");
  for (const auto& [cents, rate] : amt_points) {
    (void)rate;
    std::printf("      $%.2f", cents / 100.0);
  }
  std::printf("\n");

  std::vector<std::vector<double>> mean_epoch(
      static_cast<size_t>(kReps), std::vector<double>(amt_points.size()));
  std::vector<double> inferred;
  for (size_t r = 0; r < amt_points.size(); ++r) {
    const double cents = amt_points[r].first;
    htune::MarketConfig config;
    config.worker_arrival_rate = 1.0;
    config.seed = 900 + static_cast<uint64_t>(cents);
    config.record_trace = false;
    htune::MarketSimulator market(config);
    std::vector<htune::TaskId> ids;
    for (int t = 0; t < kTasks; ++t) {
      htune::TaskSpec task;
      task.price_per_repetition = static_cast<int>(cents);
      task.repetitions = kReps;
      task.on_hold_rate = curve->Rate(cents);
      task.processing_rate = lambda_p;
      const auto id = market.PostTask(task);
      HTUNE_CHECK(id.ok());
      ids.push_back(*id);
    }
    HTUNE_CHECK_OK(market.RunToCompletion());
    std::vector<double> on_hold_total(1, 0.0);
    on_hold_total.clear();
    for (const htune::TaskId id : ids) {
      const auto outcome = market.GetOutcome(id);
      HTUNE_CHECK(outcome.ok());
      double cumulative_on_hold = 0.0;
      for (int k = 0; k < kReps; ++k) {
        const auto& rep = outcome->repetitions[static_cast<size_t>(k)];
        mean_epoch[static_cast<size_t>(k)][r] +=
            (rep.completed_time - outcome->posted_time) / 60.0 / kTasks;
        cumulative_on_hold += rep.OnHoldLatency();
      }
      on_hold_total.push_back(cumulative_on_hold);
    }
    // Infer lambda_o: total acceptance events over total on-hold time.
    double total_time = 0.0;
    for (double t : on_hold_total) total_time += t;
    inferred.push_back(static_cast<double>(kTasks * kReps) / total_time);
  }

  for (int k = 0; k < kReps; ++k) {
    std::printf("%6d", k + 1);
    for (size_t r = 0; r < amt_points.size(); ++r) {
      std::printf(" %10.1f", mean_epoch[static_cast<size_t>(k)][r]);
    }
    std::printf("\n");
  }

  std::printf("\ninferred on-hold rates (s^-1):\n");
  std::vector<double> prices, rates;
  for (size_t r = 0; r < amt_points.size(); ++r) {
    std::printf("  $%.2f: lambda-hat = %.4f   (paper: %.4f)\n",
                amt_points[r].first / 100.0, inferred[r],
                amt_points[r].second);
    prices.push_back(amt_points[r].first);
    rates.push_back(inferred[r]);
  }
  const auto calibration = htune::CalibrateLinearCurve(
      [&] {
        std::vector<std::pair<double, double>> pts;
        for (size_t i = 0; i < prices.size(); ++i) {
          pts.emplace_back(prices[i], rates[i]);
        }
        return pts;
      }());
  HTUNE_CHECK(calibration.ok());
  std::printf(
      "linearity fit over inferred rates: lambda(c) = %.5f c + %.5f, "
      "R^2 = %.3f -> Hypothesis 1 %s\n",
      calibration->fit.slope, calibration->fit.intercept,
      calibration->fit.r_squared,
      calibration->SupportsLinearity(0.85) ? "SUPPORTED" : "NOT supported");
  htune::bench::Note(
      "higher rewards give uniformly lower latency curves (column order), "
      "matching Fig 4; inferred rates match the paper's four lambdas.");
  return 0;
}
