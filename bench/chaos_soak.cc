// Chaos-soak bench: puts numbers on the resilience layer (DESIGN.md §10).
//
//   chaos_soak [--smoke] [--max-ratio=R] [--schedules=N] [--out=PATH]
//
// Two measurements:
//  1. Fault-free overhead — the durable workload runs with the resilience
//     wiring fully engaged (journal retry armed, deadline checks live,
//     breaker constructed, gate empty) vs fully inert (retry disabled, no
//     deadline). The claim is that an idle resilience layer is noise: the
//     bench FAILS (exit 1) when the min-time ratio exceeds --max-ratio
//     (default 1.02, the <=2% budget). Trials alternate modes and each
//     scores its MINIMUM wall time, so one-sided interference cannot fake
//     or mask an overhead.
//  2. Recovery latency — N seeded crash/chaos schedules: each run is killed
//     by a crash injector under a transient-fault storm, then recovered
//     from the surviving journal; the wall time of the recovery run and
//     the faults healed along the way are reported (and written as JSON
//     for tools/bench_report.py --chaos).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.h"
#include "control/fault_tolerant_executor.h"
#include "durability/journal.h"
#include "market/simulator.h"
#include "model/price_rate_curve.h"
#include "resilience/fault_injector.h"
#include "rng/splitmix64.h"
#include "tuning/problem.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

TuningProblem BenchProblem(long budget, int num_tasks,
                           const std::shared_ptr<const PriceRateCurve>& curve) {
  TaskGroup a;
  a.name = "a";
  a.num_tasks = num_tasks;
  a.repetitions = 3;
  a.processing_rate = 2.0;
  a.curve = curve;
  TaskGroup b = a;
  b.name = "b";
  b.repetitions = 5;
  b.processing_rate = 3.0;
  TuningProblem problem;
  problem.groups = {a, b};
  problem.budget = budget;
  return problem;
}

struct Workload {
  TuningProblem problem;
  std::vector<QuestionSpec> questions;
  MarketConfig market;
  FaultTolerantConfig config;
};

Workload MakeWorkload(long budget, int num_tasks, int reviews,
                      uint64_t seed, bool resilience_on) {
  Workload w;
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  w.problem = BenchProblem(budget, num_tasks, curve);
  w.questions.assign(static_cast<size_t>(w.problem.TotalTasks()),
                     QuestionSpec{});
  w.market.worker_arrival_rate = 100.0;
  w.market.seed = seed;
  w.market.record_trace = false;
  w.config.review_interval = 0.5;
  w.config.max_reviews = reviews;
  if (resilience_on) {
    // Engaged but idle: deadline far past the job, retry armed, no gate.
    w.config.time_deadline = 1e6;
    w.config.market_retry.max_attempts = 4;
  }
  return w;
}

struct RunResult {
  long spent = 0;
  bool ok = false;
  Status status = OkStatus();
};

RunResult RunDurableOnce(const Workload& w, JournalStorage& storage,
                         FaultGate gate, bool retry_on) {
  const RepetitionAllocator allocator;
  FaultTolerantConfig config = w.config;
  config.market_fault_gate = std::move(gate);
  const FaultTolerantExecutor executor(&allocator, config);
  DurabilityConfig durability;
  durability.storage = &storage;
  durability.snapshot_interval = 8;
  durability.journal_retry.max_attempts = retry_on ? 4 : 1;
  const auto report =
      executor.RunDurable(w.market, w.problem, w.questions, durability);
  RunResult result;
  result.ok = report.ok();
  result.status = report.status();
  if (report.ok()) result.spent = report->spent;
  return result;
}

double TimeFaultFreeMs(int reps, long budget, int num_tasks, int reviews,
                       bool resilience_on) {
  const auto start = std::chrono::steady_clock::now();
  long sink = 0;
  for (int r = 0; r < reps; ++r) {
    const Workload w = MakeWorkload(budget, num_tasks, reviews,
                                    1 + static_cast<uint64_t>(r),
                                    resilience_on);
    InMemoryJournalStorage storage;
    const RunResult result =
        RunDurableOnce(w, storage, FaultGate(), resilience_on);
    if (!result.ok) {
      std::fprintf(stderr, "workload failed: %s\n",
                   result.status.ToString().c_str());
      std::exit(2);
    }
    sink += result.spent;
  }
  const auto end = std::chrono::steady_clock::now();
  std::fprintf(stderr, "  (sink %ld)\n", sink);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double NextDouble(SplitMix64& rng) {
  return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
}

struct ChaosStats {
  int schedules = 0;
  int converged = 0;
  uint64_t faults_healed = 0;
  uint64_t crashes = 0;
  std::vector<double> recovery_ms;
};

/// One crash + recovery schedule: the run dies under a transient-fault
/// storm via the crash injector, then a recovery run (still under a storm)
/// finishes the job from the surviving journal. Returns false on any
/// correctness violation.
bool RunOneSchedule(uint64_t seed, long budget, int num_tasks, int reviews,
                    long reference_spent, ChaosStats* stats) {
  const Workload w = MakeWorkload(budget, num_tasks, reviews, /*seed=*/7,
                                  /*resilience_on=*/true);
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL);
  FaultInjectorConfig chaos;
  chaos.seed = rng.Next();
  chaos.append_fault_prob = 0.05 + 0.15 * NextDouble(rng);
  chaos.short_write_prob = 0.05 + 0.10 * NextDouble(rng);
  chaos.flush_fault_prob = 0.10 * NextDouble(rng);
  chaos.market_fault_prob = 0.05 + 0.15 * NextDouble(rng);
  chaos.max_consecutive_faults = 1 + static_cast<int>(rng.Next() % 3);

  InMemoryJournalStorage inner;
  ++stats->schedules;
  // Phase 1: die mid-run (crash injector under the fault injector).
  {
    const uint64_t crash_budget = 64 + rng.Next() % 8192;
    CrashInjectingStorage crash(&inner, crash_budget);
    FaultInjector injector(chaos);
    auto storage = injector.WrapStorage(&crash);
    const RunResult killed =
        RunDurableOnce(w, *storage, injector.MarketGate(), true);
    stats->faults_healed += injector.stats().append_faults +
                            injector.stats().short_writes +
                            injector.stats().flush_faults +
                            injector.stats().market_faults;
    if (killed.ok) {
      // Crash budget outlasted the whole run; still a valid (quiet) sample.
      if (killed.spent != reference_spent) return false;
      ++stats->converged;
      return true;
    }
    if (killed.status.code() != StatusCode::kResourceExhausted) {
      std::fprintf(stderr, "seed %llu: unexpected kill status %s\n",
                   static_cast<unsigned long long>(seed),
                   killed.status.ToString().c_str());
      return false;
    }
    ++stats->crashes;
  }
  // Phase 2: recover under a fresh storm and time it.
  chaos.seed = rng.Next();
  FaultInjector injector(chaos);
  auto storage = injector.WrapStorage(&inner);
  const auto start = std::chrono::steady_clock::now();
  const RunResult recovered =
      RunDurableOnce(w, *storage, injector.MarketGate(), true);
  const auto end = std::chrono::steady_clock::now();
  stats->faults_healed += injector.stats().append_faults +
                          injector.stats().short_writes +
                          injector.stats().flush_faults +
                          injector.stats().market_faults;
  if (!recovered.ok || recovered.spent != reference_spent) {
    std::fprintf(stderr, "seed %llu: recovery diverged: %s\n",
                 static_cast<unsigned long long>(seed),
                 recovered.status.ToString().c_str());
    return false;
  }
  stats->recovery_ms.push_back(
      std::chrono::duration<double, std::milli>(end - start).count());
  ++stats->converged;
  return true;
}

}  // namespace
}  // namespace htune

int main(int argc, char** argv) {
  bool smoke = false;
  double max_ratio = 1.02;
  int schedules = 40;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      schedules = 10;
    } else if (std::strncmp(argv[i], "--max-ratio=", 12) == 0) {
      max_ratio = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--schedules=", 12) == 0) {
      schedules = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  const int trials = smoke ? 3 : 5;
  const int reps = smoke ? 30 : 50;
  const long budget = smoke ? 1000 : 1200;
  const int num_tasks = smoke ? 50 : 60;
  const int reviews = smoke ? 16 : 24;

  htune::bench::Banner(
      "chaos soak (resilience overhead + recovery latency)",
      "DESIGN.md §10 degradation ladder");

  // -------------------------------------------------------------- overhead
  htune::TimeFaultFreeMs(1, budget, num_tasks, reviews, true);  // warm-up
  double best_on = -1.0, best_off = -1.0;
  for (int t = 0; t < trials; ++t) {
    const double on =
        htune::TimeFaultFreeMs(reps, budget, num_tasks, reviews, true);
    const double off =
        htune::TimeFaultFreeMs(reps, budget, num_tasks, reviews, false);
    if (best_on < 0.0 || on < best_on) best_on = on;
    if (best_off < 0.0 || off < best_off) best_off = off;
    std::printf("trial %d: resilience-on %.2f ms, resilience-off %.2f ms\n",
                t + 1, on, off);
  }
  const double ratio = best_on / best_off;
  std::printf("\nfault-free overhead: best-of-%d on %.2f ms / off %.2f ms = "
              "ratio %.4f (max allowed %.2f)\n",
              trials, best_on, best_off, ratio, max_ratio);

  // --------------------------------------------------------------- recovery
  const htune::Workload reference_workload = htune::MakeWorkload(
      budget, num_tasks, reviews, /*seed=*/7, /*resilience_on=*/true);
  long reference_spent = 0;
  double fresh_run_ms = 0.0;
  {
    htune::InMemoryJournalStorage storage;
    const auto start = std::chrono::steady_clock::now();
    const htune::RunResult reference = htune::RunDurableOnce(
        reference_workload, storage, htune::FaultGate(), true);
    fresh_run_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!reference.ok) {
      std::fprintf(stderr, "reference run failed: %s\n",
                   reference.status.ToString().c_str());
      return 2;
    }
    reference_spent = reference.spent;
  }

  htune::ChaosStats stats;
  bool correct = true;
  for (int s = 1; s <= schedules; ++s) {
    correct = htune::RunOneSchedule(static_cast<uint64_t>(s), budget,
                                    num_tasks, reviews, reference_spent,
                                    &stats) &&
              correct;
  }
  double rec_min = 0.0, rec_max = 0.0, rec_mean = 0.0;
  if (!stats.recovery_ms.empty()) {
    rec_min = *std::min_element(stats.recovery_ms.begin(),
                                stats.recovery_ms.end());
    rec_max = *std::max_element(stats.recovery_ms.begin(),
                                stats.recovery_ms.end());
    for (const double ms : stats.recovery_ms) rec_mean += ms;
    rec_mean /= static_cast<double>(stats.recovery_ms.size());
  }
  std::printf("chaos: %d/%d schedules converged, %llu crashes, %llu faults "
              "healed\n",
              stats.converged, stats.schedules,
              static_cast<unsigned long long>(stats.crashes),
              static_cast<unsigned long long>(stats.faults_healed));
  std::printf("recovery latency over %zu recoveries: min %.2f / mean %.2f / "
              "max %.2f ms (fresh run %.2f ms)\n",
              stats.recovery_ms.size(), rec_min, rec_mean, rec_max,
              fresh_run_ms);

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema_version\": 1,\n"
        "  \"schedules\": %d,\n"
        "  \"converged\": %d,\n"
        "  \"crashes\": %llu,\n"
        "  \"faults_healed\": %llu,\n"
        "  \"fault_free_overhead\": {\"on_ms\": %.4f, \"off_ms\": %.4f, "
        "\"ratio\": %.6f, \"max_ratio\": %.4f},\n"
        "  \"recovery_latency_ms\": {\"count\": %zu, \"min\": %.4f, "
        "\"mean\": %.4f, \"max\": %.4f, \"fresh_run_ms\": %.4f}\n"
        "}\n",
        stats.schedules, stats.converged,
        static_cast<unsigned long long>(stats.crashes),
        static_cast<unsigned long long>(stats.faults_healed), best_on,
        best_off, ratio, max_ratio, stats.recovery_ms.size(), rec_min,
        rec_mean, rec_max, fresh_run_ms);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!correct || stats.converged != stats.schedules) {
    std::printf("FAIL: %d of %d chaos schedules did not converge to the "
                "reference\n",
                stats.schedules - stats.converged, stats.schedules);
    return 1;
  }
  if (ratio > max_ratio) {
    std::printf("FAIL: fault-free resilience overhead %.1f%% exceeds the "
                "%.1f%% budget\n",
                (ratio - 1.0) * 100.0, (max_ratio - 1.0) * 100.0);
    return 1;
  }
  std::printf("PASS: overhead %.1f%% within budget; all schedules "
              "converged\n",
              (ratio - 1.0) * 100.0);
  return 0;
}
