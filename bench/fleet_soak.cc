// Fleet-soak bench: puts numbers on the fleet supervisor (DESIGN.md §12).
//
//   fleet_soak [--smoke] [--max-ratio=R] [--schedules=N] [--out=PATH]
//
// Two measurements:
//  1. Supervision overhead — the same fault-free job set runs under the
//     full FleetSupervisor (manifest, lifecycle transitions, watchdog
//     bookkeeping, admission, lanes) vs a bare loop that executes the
//     identical durable jobs on the identical lane count with none of the
//     supervision. The claim is that supervision is noise next to the jobs
//     themselves: the bench FAILS (exit 1) when the min-time ratio exceeds
//     --max-ratio (default 1.02, the <=2% budget). Trials alternate modes
//     and each mode scores its MINIMUM wall time.
//  2. Recovery latency — N seeded kill schedules over a multi-job fleet:
//     each fleet dies mid-flight at a FleetKillSwitch byte budget (every
//     fourth killed schedule additionally poisons one interrupted journal),
//     then a fresh supervisor Recover()+RunAll() finishes the fleet; the
//     wall time of that recovery is reported (and written as JSON for
//     tools/bench_report.py --fleet). Every non-poisoned job must land on
//     the fault-free reference digest — a divergence is a bench failure.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.h"
#include "common/parallel.h"
#include "control/fault_tolerant_executor.h"
#include "durability/crc32c.h"
#include "durability/journal.h"
#include "durability/manifest.h"
#include "durability/serialize.h"
#include "durability/snapshot.h"
#include "fleet/supervisor.h"
#include "resilience/fault_injector.h"
#include "rng/splitmix64.h"
#include "spec/job_spec.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

std::string OverheadSpec(bool smoke) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "budget = %d\n"
                "arrival_rate = 100\n"
                "[group]\n"
                "tasks = %d\n"
                "repetitions = 3\n"
                "processing_rate = 3.0\n"
                "curve = linear 1.0 1.0\n",
                smoke ? 40 : 120, smoke ? 6 : 12);
  return buf;
}

constexpr char kRecoverySpec[] =
    "budget = 6\n"
    "arrival_rate = 80\n"
    "[group]\n"
    "tasks = 2\n"
    "repetitions = 1\n"
    "processing_rate = 4.0\n"
    "curve = linear 1.0 1.0\n";

FleetJobSpec MakeJob(const std::string& spec_text, int index) {
  FleetJobSpec spec;
  spec.name = "bench#" + std::to_string(index);
  spec.spec_text = spec_text;
  spec.seed_override = 100 + index;
  spec.snapshot_interval = 8;
  return spec;
}

// ------------------------------------------------------------ overhead leg

/// The unsupervised baseline for one job: exactly the work the supervisor's
/// run path does (parse, durable run, trace encode, digest) minus the
/// supervision itself.
uint32_t DirectRunOnce(const FleetJobSpec& spec) {
  const auto parsed = ParseJobSpec(spec.spec_text);
  if (!parsed.ok()) std::abort();
  MarketConfig market;
  market.worker_arrival_rate = parsed->arrival_rate;
  market.worker_error_prob = parsed->worker_error_prob;
  market.abandon_prob = parsed->abandon_prob;
  market.abandon_hold_rate = parsed->abandon_hold_rate;
  market.seed = static_cast<uint64_t>(spec.seed_override);
  market.record_trace = true;
  const std::vector<QuestionSpec> questions(
      static_cast<size_t>(parsed->problem.TotalTasks()), QuestionSpec{});
  const RepetitionAllocator allocator;
  FaultTolerantConfig config;
  config.abandonment.prob = parsed->abandon_prob;
  config.abandonment.hold_rate = parsed->abandon_hold_rate;
  const FaultTolerantExecutor executor(&allocator, config);
  InMemoryJournalStorage storage;
  DurabilityConfig durability;
  durability.storage = &storage;
  durability.snapshot_interval = spec.snapshot_interval;
  std::vector<TraceEvent> trace;
  const auto report = executor.RunDurable(market, parsed->problem, questions,
                                          durability, &trace);
  if (!report.ok()) std::abort();
  Encoder encoder;
  EncodeTraceEvents(trace, encoder);
  return Crc32c(encoder.Release()) ^ static_cast<uint32_t>(report->spent);
}

double TimeSupervisedMs(const std::vector<FleetJobSpec>& jobs, int lanes) {
  const auto start = std::chrono::steady_clock::now();
  InMemoryFleetStorage provider;
  FleetConfig config;
  config.max_running = lanes;
  FleetSupervisor fleet(&provider, config);
  if (!fleet.Open().ok()) std::abort();
  for (const FleetJobSpec& job : jobs) {
    if (!fleet.Submit(job).ok()) std::abort();
  }
  const auto stats = fleet.RunAll();
  if (!stats.ok() ||
      stats->completed != static_cast<int>(jobs.size())) {
    std::abort();
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double TimeDirectMs(const std::vector<FleetJobSpec>& jobs, int lanes) {
  const auto start = std::chrono::steady_clock::now();
  std::atomic<size_t> next{0};
  std::atomic<uint32_t> sink{0};
  ParallelFor(static_cast<size_t>(lanes), [&](size_t) {
    for (size_t i = next.fetch_add(1); i < jobs.size();
         i = next.fetch_add(1)) {
      sink.fetch_xor(DirectRunOnce(jobs[i]));
    }
  });
  const auto end = std::chrono::steady_clock::now();
  if (sink.load() == 0xdeadbeef) std::printf("(sink)\n");
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// ------------------------------------------------------------ recovery leg

struct RecoveryStats {
  int schedules = 0;
  int kills = 0;
  int quarantines = 0;
  int poisoned = 0;
  int recovered_jobs = 0;
  std::vector<double> recovery_ms;
  bool correct = true;
};

void RunRecoverySchedule(int schedule, int fleet_jobs,
                         const std::map<uint64_t, std::string>& truth,
                         RecoveryStats* stats) {
  SplitMix64 rng(0x62656e6368ULL + static_cast<uint64_t>(schedule));
  InMemoryFleetStorage provider;
  ++stats->schedules;

  // Scaled to the fleet's total write volume so kills land mid-run for
  // any fleet size.
  const uint64_t kill_budget =
      4000 + rng.Next() % (1000u * static_cast<uint64_t>(fleet_jobs));
  FleetKillSwitch kill(kill_budget);
  std::vector<std::unique_ptr<JournalStorage>> wrappers;
  FleetConfig chaos;
  chaos.max_running = 8;
  chaos.decorate_storage = [&](uint64_t, JournalStorage* inner) {
    wrappers.push_back(kill.WrapStorage(inner));
    return wrappers.back().get();
  };
  bool killed = false;
  {
    FleetSupervisor fleet(&provider, chaos);
    if (!fleet.Open().ok()) std::abort();
    for (int i = 0; i < fleet_jobs; ++i) {
      if (!fleet.Submit(MakeJob(kRecoverySpec, i)).ok()) std::abort();
    }
    const auto run = fleet.RunAll();
    if (!run.ok()) {
      killed = true;
      ++stats->kills;
    }
  }

  uint64_t poisoned_id = 0;
  if (killed && schedule % 4 == 0) {
    const auto scan =
        ScanManifest(provider.Find(FleetManifestFileName())->bytes());
    if (!scan.ok()) std::abort();
    for (const auto& [id, entry] : scan->jobs) {
      if (entry.state == FleetJobState::kDone) continue;
      InMemoryJournalStorage* journal = provider.Find(FleetJobJournalPath(id));
      if (journal == nullptr || journal->bytes().empty()) continue;
      if (entry.journal_bytes >= 16 &&
          journal->bytes().size() >= entry.journal_bytes) {
        journal->bytes()[8 + rng.Next() % (entry.journal_bytes - 8)] ^=
            static_cast<char>(1u << (rng.Next() % 8));
      } else {
        journal->bytes()[0] ^= 0x55;
      }
      poisoned_id = id;
      ++stats->poisoned;
      break;
    }
  }

  FleetConfig clean;
  clean.max_running = 8;
  FleetSupervisor recovered(&provider, clean);
  const auto start = std::chrono::steady_clock::now();
  if (!recovered.Recover().ok()) std::abort();
  const auto run = recovered.RunAll();
  const auto end = std::chrono::steady_clock::now();
  if (!run.ok()) std::abort();
  stats->recovery_ms.push_back(
      std::chrono::duration<double, std::milli>(end - start).count());
  stats->quarantines += run->quarantined;
  stats->recovered_jobs += run->completed;
  for (const auto& [id, entry] : recovered.jobs()) {
    if (id == poisoned_id) {
      if (entry.state != FleetJobState::kQuarantined) {
        std::fprintf(stderr,
                     "schedule %d: poisoned job %llu not quarantined: %s\n",
                     schedule, static_cast<unsigned long long>(id),
                     entry.detail.c_str());
        stats->correct = false;
      }
      continue;
    }
    if (entry.state != FleetJobState::kDone ||
        entry.detail != truth.at(id)) {
      std::fprintf(stderr, "schedule %d: job %llu diverged: %s\n", schedule,
                   static_cast<unsigned long long>(id), entry.detail.c_str());
      stats->correct = false;
    }
  }
}

}  // namespace
}  // namespace htune

int main(int argc, char** argv) {
  bool smoke = false;
  double max_ratio = 1.02;
  int schedules = 25;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      schedules = 5;
    } else if (std::strncmp(argv[i], "--max-ratio=", 12) == 0) {
      max_ratio = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--schedules=", 12) == 0) {
      schedules = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  const int trials = smoke ? 3 : 5;
  const int overhead_jobs = smoke ? 8 : 32;
  const int lanes = smoke ? 4 : 8;
  const int fleet_jobs = smoke ? 16 : 64;

  htune::bench::Banner(
      "fleet soak (supervision overhead + whole-fleet recovery latency)",
      "DESIGN.md §12 fleet supervisor");

  // -------------------------------------------------------------- overhead
  const std::string spec_text = htune::OverheadSpec(smoke);
  std::vector<htune::FleetJobSpec> jobs;
  for (int i = 0; i < overhead_jobs; ++i) {
    jobs.push_back(htune::MakeJob(spec_text, i));
  }
  htune::TimeSupervisedMs(jobs, lanes);  // warm-up
  htune::TimeDirectMs(jobs, lanes);
  double best_sup = -1.0, best_dir = -1.0;
  for (int t = 0; t < trials; ++t) {
    const double sup = htune::TimeSupervisedMs(jobs, lanes);
    const double dir = htune::TimeDirectMs(jobs, lanes);
    if (best_sup < 0.0 || sup < best_sup) best_sup = sup;
    if (best_dir < 0.0 || dir < best_dir) best_dir = dir;
    std::printf("trial %d: supervised %.2f ms, direct %.2f ms (%d jobs, "
                "%d lanes)\n",
                t + 1, sup, dir, overhead_jobs, lanes);
  }
  const double ratio = best_sup / best_dir;
  std::printf("\nsupervision overhead: best-of-%d supervised %.2f ms / "
              "direct %.2f ms = ratio %.4f (max allowed %.2f)\n",
              trials, best_sup, best_dir, ratio, max_ratio);

  // --------------------------------------------------------------- recovery
  // Fault-free reference digests every killed schedule must recover to.
  std::map<uint64_t, std::string> truth;
  {
    htune::InMemoryFleetStorage provider;
    htune::FleetConfig config;
    config.max_running = 8;
    htune::FleetSupervisor fleet(&provider, config);
    if (!fleet.Open().ok()) return 2;
    for (int i = 0; i < fleet_jobs; ++i) {
      if (!fleet.Submit(htune::MakeJob(htune::kRecoverySpec, i)).ok()) {
        return 2;
      }
    }
    const auto run = fleet.RunAll();
    if (!run.ok() || run->completed != fleet_jobs) {
      std::fprintf(stderr, "reference fleet failed\n");
      return 2;
    }
    for (const auto& [id, entry] : fleet.jobs()) {
      truth[id] = entry.detail;
    }
  }

  htune::RecoveryStats stats;
  for (int s = 1; s <= schedules; ++s) {
    htune::RunRecoverySchedule(s, fleet_jobs, truth, &stats);
  }
  double rec_min = 0.0, rec_max = 0.0, rec_mean = 0.0;
  if (!stats.recovery_ms.empty()) {
    rec_min = *std::min_element(stats.recovery_ms.begin(),
                                stats.recovery_ms.end());
    rec_max = *std::max_element(stats.recovery_ms.begin(),
                                stats.recovery_ms.end());
    for (const double ms : stats.recovery_ms) rec_mean += ms;
    rec_mean /= static_cast<double>(stats.recovery_ms.size());
  }
  std::printf("recovery: %d schedules (%d-job fleets), %d kills, %d "
              "poisoned -> %d quarantined, %d jobs recovered\n",
              stats.schedules, fleet_jobs, stats.kills, stats.poisoned,
              stats.quarantines, stats.recovered_jobs);
  std::printf("whole-fleet recovery latency: min %.2f / mean %.2f / max "
              "%.2f ms over %zu recoveries\n",
              rec_min, rec_mean, rec_max, stats.recovery_ms.size());

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema_version\": 1,\n"
        "  \"smoke\": %s,\n"
        "  \"fleet_jobs\": %d,\n"
        "  \"schedules\": %d,\n"
        "  \"kills\": %d,\n"
        "  \"poisoned\": %d,\n"
        "  \"quarantines\": %d,\n"
        "  \"recovered_jobs\": %d,\n"
        "  \"supervision_overhead\": {\"supervised_ms\": %.4f, "
        "\"direct_ms\": %.4f, \"ratio\": %.6f, \"max_ratio\": %.4f},\n"
        "  \"recovery_latency_ms\": {\"count\": %zu, \"min\": %.4f, "
        "\"mean\": %.4f, \"max\": %.4f}\n"
        "}\n",
        smoke ? "true" : "false", fleet_jobs, stats.schedules, stats.kills,
        stats.poisoned, stats.quarantines, stats.recovered_jobs, best_sup,
        best_dir, ratio, max_ratio, stats.recovery_ms.size(), rec_min,
        rec_mean, rec_max);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!stats.correct) {
    std::printf("FAIL: a recovered fleet diverged from the fault-free "
                "reference\n");
    return 1;
  }
  if (stats.quarantines != stats.poisoned) {
    std::printf("FAIL: quarantined %d jobs but poisoned %d\n",
                stats.quarantines, stats.poisoned);
    return 1;
  }
  if (ratio > max_ratio) {
    std::printf("FAIL: supervision overhead %.1f%% exceeds the %.1f%% "
                "budget\n",
                (ratio - 1.0) * 100.0, (max_ratio - 1.0) * 100.0);
    return 1;
  }
  std::printf("PASS: supervision overhead %.1f%% within budget; every "
              "killed fleet recovered bitwise\n",
              (ratio - 1.0) * 100.0);
  return 0;
}
