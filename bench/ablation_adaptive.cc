// Ablation E: online re-tuning vs fire-and-forget execution when one task
// type has silently drifted from its calibration. The adaptive controller
// re-learns the drifted group's price-responsiveness from its own
// acceptance stream (censored MLE) and shifts the unexposed budget.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "control/adaptive_retuner.h"
#include "stats/descriptive.h"
#include "tuning/repetition_allocator.h"

int main() {
  htune::bench::Banner(
      "ablation_adaptive",
      "DESIGN.md ablation E: static vs adaptive execution under "
      "differential calibration drift");

  const auto believed = std::make_shared<htune::LinearCurve>(1.0, 1.0);
  const htune::RepetitionAllocator allocator;
  const int kRuns = 30;

  std::printf("%10s %14s %14s %14s %12s %12s %14s\n", "drift",
              "static lat", "eager lat", "damped lat", "eager gain",
              "damped gain", "learned scale");
  for (const double drift : {1.0, 0.5, 0.25, 0.15}) {
    const auto truth_b = std::make_shared<htune::FunctionCurve>(
        [drift](double p) { return drift * (p + 1.0); }, "drifted");
    htune::RunningStats static_lat, eager_lat, damped_lat, scale_b;
    for (int r = 0; r < kRuns; ++r) {
      htune::TaskGroup a;
      a.name = "a";
      a.num_tasks = 8;
      a.repetitions = 12;
      a.processing_rate = 5.0;
      a.curve = believed;
      htune::TuningProblem problem;
      problem.groups = {a, a};
      problem.budget = 1500;
      const std::vector<htune::QuestionSpec> questions(
          static_cast<size_t>(problem.TotalTasks()));
      for (const int mode : {0, 1, 2}) {  // static, eager, damped
        htune::MarketConfig market_config;
        market_config.worker_arrival_rate = 200.0;
        market_config.seed = 9000 + static_cast<uint64_t>(r);
        market_config.record_trace = false;
        htune::MarketSimulator market(market_config);

        htune::RetunerConfig config;
        config.market_truth_per_group = {believed, truth_b};
        if (mode == 0) {
          config.max_reviews = 0;
        } else {
          config.review_interval = 0.25;
          config.smoothing = 0.7;
          config.min_observations = mode == 1 ? 10 : 25;
          config.retune_threshold = mode == 1 ? 0.10 : 0.25;
        }
        const htune::AdaptiveRetuner runner(&allocator, config);
        const auto report = runner.Run(market, problem, questions);
        HTUNE_CHECK(report.ok());
        (mode == 0 ? static_lat : mode == 1 ? eager_lat : damped_lat)
            .Add(report->latency);
        if (mode == 1) {
          scale_b.Add(report->final_scale[1]);
        }
      }
    }
    std::printf("%10.2f %14.3f %14.3f %14.3f %11.1f%% %11.1f%% %14.2f\n",
                drift, static_lat.Mean(), eager_lat.Mean(),
                damped_lat.Mean(),
                100.0 * (1.0 - eager_lat.Mean() / static_lat.Mean()),
                100.0 * (1.0 - damped_lat.Mean() / static_lat.Mean()),
                scale_b.Mean());
  }
  htune::bench::Note(
      "the learned scale tracks the true drift factor exactly. The eager "
      "controller wins even at drift 1.0 (correct calibration): re-solving "
      "the residual problem also rebalances the budget against realized "
      "randomness — money flows from groups that got lucky to groups that "
      "lag. Gains grow with drift severity; the damped controller trades "
      "part of them for stability. Review aggressiveness is a real "
      "deployment knob.");
  return 0;
}
