#ifndef HTUNE_BENCH_FIG2_COMMON_H_
#define HTUNE_BENCH_FIG2_COMMON_H_

// Shared driver for the Figure 2 synthetic experiments (§5.1): sweep the
// budget from 1000 to 5000 for each of the paper's six price-rate curves,
// solve the instance with each strategy, and report the expected job
// latency. The paper's y-axis is the expected latency of the whole task
// set; we report the Monte Carlo estimate of E[max over tasks of
// (on-hold + processing)] plus the analytic phase-1 expectation.

#include <memory>
#include <string>
#include <vector>

#include "bench/report.h"
#include "common/check.h"
#include "tuning/allocator.h"
#include "tuning/evaluator.h"
#include "tuning/problem.h"

namespace htune::bench {

struct Fig2Config {
  std::string experiment_name;
  std::string paper_ref;
  /// Builds the problem instance (groups only; budget/curve filled by the
  /// sweep) given the shared curve.
  std::vector<TaskGroup> (*make_groups)(
      std::shared_ptr<const PriceRateCurve> curve);
  /// Strategies to compare, first one is the paper's optimum.
  std::vector<const BudgetAllocator*> strategies;
  int mc_trials = 400;
};

inline void RunFig2Sweep(const Fig2Config& config) {
  Banner(config.experiment_name, config.paper_ref);
  const auto curves = PaperSyntheticCurves();
  for (const auto& curve_proto : curves) {
    std::shared_ptr<const PriceRateCurve> curve(curve_proto->Clone());
    std::printf("\n-- curve lambda_o(p) = %s --\n", curve->Name().c_str());

    std::vector<std::string> header;
    for (const BudgetAllocator* s : config.strategies) {
      header.push_back(s->Name() + "|MC");
    }
    for (const BudgetAllocator* s : config.strategies) {
      header.push_back(s->Name() + "|ph1");
    }
    SeriesHeader("budget", header);

    for (long budget = 1000; budget <= 5000; budget += 500) {
      TuningProblem problem;
      problem.groups = config.make_groups(curve);
      problem.budget = budget;
      std::vector<double> row;
      std::vector<double> phase1_row;
      for (const BudgetAllocator* strategy : config.strategies) {
        const auto alloc = strategy->Allocate(problem);
        HTUNE_CHECK(alloc.ok());
        row.push_back(ParallelMonteCarloOverallLatency(
            problem, *alloc, config.mc_trials,
            static_cast<uint64_t>(budget) * 131 + 7));
        phase1_row.push_back(ExpectedPhase1Latency(problem, *alloc));
      }
      row.insert(row.end(), phase1_row.begin(), phase1_row.end());
      SeriesRow(static_cast<double>(budget), row);
    }
  }
}

}  // namespace htune::bench

#endif  // HTUNE_BENCH_FIG2_COMMON_H_
