// End-to-end integration tests: probe a simulated market to calibrate the
// price-rate curve, tune a job with the paper's allocators, execute it on
// the market, and check that the tuned allocation's realized latency beats
// the baselines' — the paper's headline claim, exercised across the whole
// library surface.

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "crowddb/executor.h"
#include "crowddb/sort.h"
#include "market/simulator.h"
#include "probe/calibration.h"
#include "probe/probe.h"
#include "stats/descriptive.h"
#include "tuning/baselines.h"
#include "tuning/evaluator.h"
#include "tuning/even_allocator.h"
#include "tuning/heterogeneous_allocator.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

MarketConfig Market(uint64_t seed) {
  MarketConfig config;
  config.worker_arrival_rate = 300.0;
  config.seed = seed;
  config.record_trace = false;
  return config;
}

// Runs `alloc` on a fresh market and returns the realized job latency.
double RealizedLatency(const TuningProblem& problem, const Allocation& alloc,
                       uint64_t seed) {
  MarketSimulator market(Market(seed));
  std::vector<QuestionSpec> questions(
      static_cast<size_t>(problem.TotalTasks()));
  const auto execution = ExecuteJob(market, problem, alloc, questions);
  HTUNE_CHECK(execution.ok());
  return execution->latency;
}

double MeanRealizedLatency(const TuningProblem& problem,
                           const Allocation& alloc, int runs,
                           uint64_t seed_base) {
  RunningStats stats;
  for (int r = 0; r < runs; ++r) {
    stats.Add(RealizedLatency(problem, alloc, seed_base + r));
  }
  return stats.Mean();
}

TEST(IntegrationTest, ProbeCalibrateThenPredictLatency) {
  // The market's hidden truth: lambda_o(c) = 0.8 c + 0.5.
  const LinearCurve truth(0.8, 0.5);

  // 1. Probe at several prices.
  std::vector<std::pair<double, double>> measured;
  for (int price : {1, 3, 5, 8}) {
    MarketSimulator market(Market(10 + price));
    ProbeSpec spec;
    spec.price = price;
    spec.on_hold_rate = truth.Rate(price);
    const auto report = RunFixedPeriodProbe(market, spec, 300.0);
    ASSERT_TRUE(report.ok());
    measured.emplace_back(price, report->lambda_hat);
  }

  // 2. Calibrate the linear curve.
  const auto calibration = CalibrateLinearCurve(measured);
  ASSERT_TRUE(calibration.ok());
  ASSERT_TRUE(calibration->SupportsLinearity(0.9));
  auto fitted = calibration->ToCurve();
  ASSERT_TRUE(fitted.ok());
  std::shared_ptr<const PriceRateCurve> curve = std::move(*fitted);

  // 3. Predict a job's latency with the analytic model and check the
  // realized latency on the (truth-driven) market is close.
  TaskGroup group;
  group.name = "calibrated";
  group.num_tasks = 40;
  group.repetitions = 2;
  group.processing_rate = 5.0;
  group.curve = std::make_shared<LinearCurve>(truth);
  TuningProblem problem;
  problem.groups.push_back(group);
  problem.budget = 400;  // 5 per repetition

  const auto alloc = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  // Prediction uses the fitted curve; execution uses the true curve.
  TuningProblem fitted_problem = problem;
  fitted_problem.groups[0].curve = curve;
  const double predicted = ExpectedPhase1Latency(fitted_problem, *alloc);
  const double realized = MeanRealizedLatency(problem, *alloc, 30, 1000);
  // Realized includes processing (mean 0.4 per task, max over 40 tasks);
  // phase-1 prediction must at least explain the bulk of the latency.
  EXPECT_GT(realized, predicted * 0.5);
  EXPECT_LT(std::abs(realized - predicted), predicted * 1.0 + 1.0);
}

TEST(IntegrationTest, ScenarioOneEvenBeatsBiasedOnRealizedLatency) {
  TaskGroup group;
  group.name = "homo";
  group.num_tasks = 50;
  group.repetitions = 5;
  group.processing_rate = 2.0;
  group.curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  problem.groups.push_back(group);
  problem.budget = 1500;  // 6 per repetition

  const auto even = EvenAllocator().Allocate(problem);
  const auto biased = BiasedAllocator(0.75).Allocate(problem);
  ASSERT_TRUE(even.ok());
  ASSERT_TRUE(biased.ok());

  const double even_latency = MeanRealizedLatency(problem, *even, 40, 2000);
  const double biased_latency =
      MeanRealizedLatency(problem, *biased, 40, 2000);
  EXPECT_LT(even_latency, biased_latency);
}

TEST(IntegrationTest, ScenarioTwoRaBeatsBaselinesOnRealizedLatency) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  TaskGroup a;
  a.name = "three";
  a.num_tasks = 20;
  a.repetitions = 3;
  a.processing_rate = 2.0;
  a.curve = curve;
  TaskGroup b = a;
  b.name = "five";
  b.repetitions = 5;
  problem.groups = {a, b};
  problem.budget = 800;

  const auto ra = RepetitionAllocator().Allocate(problem);
  const auto task_even = TaskEvenAllocator().Allocate(problem);
  const auto rep_even = RepEvenAllocator().Allocate(problem);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(task_even.ok());
  ASSERT_TRUE(rep_even.ok());

  const int runs = 60;
  const double ra_latency = MeanRealizedLatency(problem, *ra, runs, 3000);
  const double te_latency =
      MeanRealizedLatency(problem, *task_even, runs, 3000);
  const double re_latency =
      MeanRealizedLatency(problem, *rep_even, runs, 3000);
  // The tuned allocation must not lose to either baseline (small stochastic
  // slack allowed).
  EXPECT_LT(ra_latency, te_latency * 1.05);
  EXPECT_LT(ra_latency, re_latency * 1.05);
}

TEST(IntegrationTest, ScenarioThreeHaAvoidsTheStraggler) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  TaskGroup easy;
  easy.name = "easy";
  easy.num_tasks = 10;
  easy.repetitions = 3;
  easy.processing_rate = 3.0;
  easy.curve = curve;
  TaskGroup hard = easy;
  hard.name = "hard";
  hard.repetitions = 5;
  hard.processing_rate = 1.0;
  problem.groups = {easy, hard};
  problem.budget = 600;

  const auto ha = HeterogeneousAllocator().Allocate(problem);
  const auto heu = UniformHeuristicAllocator().Allocate(problem);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(heu.ok());

  const int runs = 60;
  const double ha_latency = MeanRealizedLatency(problem, *ha, runs, 4000);
  const double heu_latency = MeanRealizedLatency(problem, *heu, runs, 4000);
  EXPECT_LT(ha_latency, heu_latency * 1.05);
}

TEST(IntegrationTest, AnalyticModelPredictsSimulatedPhase1) {
  // The analytic phase-1 expectation must match the market's realized
  // phase-1 statistics — the simulator and the math describe one model.
  TaskGroup group;
  group.name = "check";
  group.num_tasks = 30;
  group.repetitions = 2;
  group.processing_rate = 4.0;
  group.curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  problem.groups.push_back(group);
  problem.budget = 240;  // 4 per repetition -> rate 5

  const auto alloc = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  const double analytic = ExpectedPhase1Latency(problem, *alloc);

  RunningStats stats;
  for (int run = 0; run < 60; ++run) {
    MarketSimulator market(Market(5000 + run));
    std::vector<QuestionSpec> questions(30);
    const auto execution = ExecuteJob(market, problem, *alloc, questions);
    ASSERT_TRUE(execution.ok());
    // Realized phase-1 of the job: max over tasks of summed on-hold times.
    double worst = 0.0;
    for (const TaskOutcome& outcome : market.CompletedOutcomes()) {
      double on_hold = 0.0;
      for (const RepetitionOutcome& rep : outcome.repetitions) {
        on_hold += rep.OnHoldLatency();
      }
      worst = std::max(worst, on_hold);
    }
    stats.Add(worst);
  }
  EXPECT_NEAR(stats.Mean(), analytic, 6.0 * stats.StdError() + 0.02);
}

TEST(IntegrationTest, CrowdSortUnderTunedBudgetIsAccurate) {
  std::vector<Item> items;
  for (int i = 0; i < 7; ++i) {
    items.push_back({i, 3.0 * i + 1.0});
  }
  const auto sort = CrowdSort::Create(items, 5);
  ASSERT_TRUE(sort.ok());
  MarketConfig config = Market(6000);
  config.worker_error_prob = 0.15;
  MarketSimulator market(config);
  const auto result =
      sort->Run(market, EvenAllocator(),
                sort->NumPairs() * 5L * 4L,
                std::make_shared<LinearCurve>(1.0, 1.0), 5.0);
  ASSERT_TRUE(result.ok());
  // 15% error with 5 votes per pair: majority flips are rare; the ranking
  // should be near-perfect.
  EXPECT_GT(result->kendall_tau, 0.8);
}

}  // namespace
}  // namespace htune
