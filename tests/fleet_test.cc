// Tests for the fleet supervisor (src/fleet): admission control and
// shedding, restart policy, watchdog hang detection, the fleet breaker,
// the poison-job quarantine triplet (journal regressed below its durable
// mark, truncated manifest tail / orphan journal, divergent replay), and
// whole-fleet kill/recover with no re-execution of finished jobs.

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "durability/journal.h"
#include "durability/manifest.h"
#include "fleet/supervisor.h"
#include "gtest/gtest.h"
#include "resilience/fault_injector.h"
#include "spec/fleet_spec.h"

namespace htune {
namespace {

// Small enough that a 1000-job fleet stays fast, big enough to journal a
// few dozen records per run.
constexpr char kTinySpec[] =
    "budget = 8\n"
    "arrival_rate = 80\n"
    "[group]\n"
    "tasks = 2\n"
    "repetitions = 2\n"
    "processing_rate = 4.0\n"
    "curve = linear 1.0 1.0\n";

FleetJobSpec TinyJob(const std::string& name, int64_t seed) {
  FleetJobSpec spec;
  spec.name = name;
  spec.spec_text = kTinySpec;
  spec.seed_override = seed;
  spec.snapshot_interval = 4;
  return spec;
}

/// Runs a clean one-job fleet and returns its terminal manifest entry and
/// journal bytes — the fault-free reference for bitwise comparisons.
struct Reference {
  ManifestJobEntry entry;
  std::string journal;
  FleetJobResult result;
};

Reference RunReference(const FleetJobSpec& job) {
  InMemoryFleetStorage provider;
  FleetSupervisor fleet(&provider, FleetConfig{});
  EXPECT_TRUE(fleet.Open().ok());
  const auto id = fleet.Submit(job);
  EXPECT_TRUE(id.ok());
  const auto stats = fleet.RunAll();
  EXPECT_TRUE(stats.ok());
  Reference ref;
  ref.entry = fleet.jobs().at(*id);
  EXPECT_EQ(ref.entry.state, FleetJobState::kDone);
  ref.journal = provider.Find(FleetJobJournalPath(*id))->bytes();
  ref.result = fleet.results().at(*id);
  return ref;
}

TEST(FleetSupervisorTest, RunsMixedFleetToCompletionDeterministically) {
  auto run_once = [](InMemoryFleetStorage* provider) {
    FleetConfig config;
    config.max_running = 3;
    FleetSupervisor fleet(provider, config);
    EXPECT_TRUE(fleet.Open().ok());
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(
          fleet.Submit(TinyJob("ft#" + std::to_string(i), 100 + i)).ok());
    }
    FleetJobSpec retune = TinyJob("retune", 200);
    retune.controller = FleetController::kAdaptiveRetuner;
    EXPECT_TRUE(fleet.Submit(retune).ok());
    const auto stats = fleet.RunAll();
    EXPECT_TRUE(stats.ok());
    EXPECT_EQ(stats->completed, 6);
    EXPECT_EQ(stats->dispatched, 6);
    std::vector<std::string> artifacts;
    for (const auto& [id, entry] : fleet.jobs()) {
      EXPECT_EQ(entry.state, FleetJobState::kDone) << entry.detail;
      const FleetJobResult& result = fleet.results().at(id);
      EXPECT_FALSE(result.report_bytes.empty());
      artifacts.push_back(result.report_bytes + result.trace_bytes +
                          provider->Find(FleetJobJournalPath(id))->bytes());
    }
    return artifacts;
  };
  // Any lane interleaving must produce the same bytes: every job's
  // determinism is its own (seeded market, journaled decisions).
  InMemoryFleetStorage a, b;
  EXPECT_EQ(run_once(&a), run_once(&b));
}

TEST(FleetSupervisorTest, AdmissionControlRejectsAndSheds) {
  InMemoryFleetStorage provider;
  FleetConfig config;
  config.max_admitted = 2;
  FleetSupervisor fleet(&provider, config);
  ASSERT_TRUE(fleet.Open().ok());

  FleetJobSpec low = TinyJob("low", 1);
  low.priority = 0;
  ASSERT_TRUE(fleet.Submit(low).ok());
  ASSERT_TRUE(fleet.Submit(low).ok());

  // Backlog full, equal priority: rejected with a clean kResourceExhausted.
  const auto rejected = fleet.Submit(low);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // Backlog full, higher priority: admitted by shedding the youngest
  // lowest-priority pending job.
  FleetJobSpec high = TinyJob("high", 2);
  high.priority = 5;
  const auto admitted = fleet.Submit(high);
  ASSERT_TRUE(admitted.ok());
  const auto jobs = fleet.jobs();
  EXPECT_EQ(jobs.at(1).state, FleetJobState::kPending);
  EXPECT_EQ(jobs.at(2).state, FleetJobState::kShed);
  EXPECT_NE(jobs.at(2).detail.find("shed"), std::string::npos);
  EXPECT_EQ(jobs.at(*admitted).state, FleetJobState::kPending);

  // Shed is terminal: RunAll leaves it alone and runs the rest.
  const auto stats = fleet.RunAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed, 2);
  EXPECT_EQ(fleet.jobs().at(2).state, FleetJobState::kShed);
}

TEST(FleetSupervisorTest, AdmissionCapExactTieNeverShedsAndNeverAdmits) {
  // Backlog exactly at max_admitted, all priorities equal: the newcomer
  // outranks nobody, so it must be rejected WITHOUT shedding anything —
  // the boundary where a bad tie-break can lose both the newcomer and a
  // victim, or admit past the cap.
  InMemoryFleetStorage provider;
  FleetConfig config;
  config.max_admitted = 3;
  FleetSupervisor fleet(&provider, config);
  ASSERT_TRUE(fleet.Open().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fleet.Submit(TinyJob("tie" + std::to_string(i), i)).ok());
  }
  const auto rejected = fleet.Submit(TinyJob("newcomer", 9));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  int pending = 0, shed = 0;
  for (const auto& [id, entry] : fleet.jobs()) {
    if (entry.state == FleetJobState::kPending) ++pending;
    if (entry.state == FleetJobState::kShed) ++shed;
  }
  EXPECT_EQ(pending, 3) << "a rejected submit must not cost a pending job";
  EXPECT_EQ(shed, 0);
}

TEST(FleetSupervisorTest, AdmissionCapExactShedKeepsBacklogAtCap) {
  // Backlog exactly at max_admitted and the newcomer outranks the victim:
  // exactly one job is shed and the pending count stays at the cap.
  InMemoryFleetStorage provider;
  FleetConfig config;
  config.max_admitted = 2;
  FleetSupervisor fleet(&provider, config);
  ASSERT_TRUE(fleet.Open().ok());
  FleetJobSpec low = TinyJob("low", 1);
  low.priority = 0;
  ASSERT_TRUE(fleet.Submit(low).ok());
  ASSERT_TRUE(fleet.Submit(low).ok());
  FleetJobSpec high = TinyJob("high", 2);
  high.priority = 3;
  ASSERT_TRUE(fleet.Submit(high).ok());
  int pending = 0, shed = 0;
  for (const auto& [id, entry] : fleet.jobs()) {
    if (entry.state == FleetJobState::kPending) ++pending;
    if (entry.state == FleetJobState::kShed) ++shed;
  }
  EXPECT_EQ(pending, config.max_admitted);
  EXPECT_EQ(shed, 1);
  // The youngest of the equal-priority victims went (id 2, not id 1).
  EXPECT_EQ(fleet.jobs().at(1).state, FleetJobState::kPending);
  EXPECT_EQ(fleet.jobs().at(2).state, FleetJobState::kShed);
}

TEST(FleetSupervisorTest, AdmissionCapPlusOneShedsEnoughVictims) {
  // A backlog already past the cap (the fleet was reopened with a smaller
  // max_admitted): admitting one newcomer must shed backlog - cap + 1
  // victims, not just one — shedding one would admit past the cap.
  InMemoryFleetStorage provider;
  {
    FleetSupervisor unbounded(&provider, FleetConfig{});
    ASSERT_TRUE(unbounded.Open().ok());
    for (int i = 0; i < 3; ++i) {
      FleetJobSpec job = TinyJob("old" + std::to_string(i), i);
      job.priority = 0;
      ASSERT_TRUE(unbounded.Submit(job).ok());
    }
  }
  FleetConfig config;
  config.max_admitted = 2;
  FleetSupervisor fleet(&provider, config);
  ASSERT_TRUE(fleet.Open().ok());

  // Equal priority: rejected outright, nothing shed even though the
  // backlog exceeds the cap.
  FleetJobSpec equal = TinyJob("equal", 7);
  equal.priority = 0;
  const auto rejected = fleet.Submit(equal);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  {
    int pending = 0;
    for (const auto& [id, entry] : fleet.jobs()) {
      if (entry.state == FleetJobState::kPending) ++pending;
    }
    EXPECT_EQ(pending, 3);
  }

  // Higher priority: admits by shedding backlog - cap + 1 = 2 victims,
  // youngest first, leaving pending exactly at the cap.
  FleetJobSpec high = TinyJob("high", 8);
  high.priority = 5;
  const auto admitted = fleet.Submit(high);
  ASSERT_TRUE(admitted.ok());
  const auto jobs = fleet.jobs();
  int pending = 0, shed = 0;
  for (const auto& [id, entry] : jobs) {
    if (entry.state == FleetJobState::kPending) ++pending;
    if (entry.state == FleetJobState::kShed) ++shed;
  }
  EXPECT_EQ(pending, config.max_admitted);
  EXPECT_EQ(shed, 2);
  EXPECT_EQ(jobs.at(1).state, FleetJobState::kPending);  // oldest survives
  EXPECT_EQ(jobs.at(2).state, FleetJobState::kShed);
  EXPECT_EQ(jobs.at(3).state, FleetJobState::kShed);
  EXPECT_EQ(jobs.at(*admitted).state, FleetJobState::kPending);
}

TEST(FleetSupervisorTest, TransientFaultRestartsThenMatchesReference) {
  const Reference ref = RunReference(TinyJob("job", 7));

  // The gate fails the first two market calls outright (exhausting the
  // 2-attempt market retry -> checkpoint-and-park), then heals forever.
  auto calls = std::make_shared<std::atomic<int>>(0);
  InMemoryFleetStorage provider;
  FleetConfig config;
  config.market_retry.max_attempts = 2;
  config.market_gate = [calls](uint64_t) -> FaultGate {
    return [calls](std::string_view) -> Status {
      if (calls->fetch_add(1) < 2) {
        return UnavailableError("injected outage");
      }
      return OkStatus();
    };
  };
  FleetSupervisor fleet(&provider, config);
  ASSERT_TRUE(fleet.Open().ok());
  const auto id = fleet.Submit(TinyJob("job", 7));
  ASSERT_TRUE(id.ok());
  const auto stats = fleet.RunAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->restarts, 1);
  const ManifestJobEntry entry = fleet.jobs().at(*id);
  EXPECT_EQ(entry.state, FleetJobState::kDone) << entry.detail;
  // The outage healed inside the restart budget; the durable run must end
  // bitwise identical to the fault-free reference.
  EXPECT_EQ(fleet.results().at(*id).report_bytes, ref.result.report_bytes);
  EXPECT_EQ(fleet.results().at(*id).trace_bytes, ref.result.trace_bytes);
  EXPECT_EQ(entry.detail, ref.entry.detail);
}

TEST(FleetSupervisorTest, WatchdogParksHungJobInsteadOfBurningRestarts) {
  InMemoryFleetStorage provider;
  FleetConfig config;
  config.restart.max_attempts = 50;  // the watchdog must fire first
  config.watchdog_stall_limit = 2;
  config.market_retry.max_attempts = 2;
  config.market_gate = [](uint64_t) -> FaultGate {
    return [](std::string_view) -> Status {
      return UnavailableError("permanent outage");
    };
  };
  FleetSupervisor fleet(&provider, config);
  ASSERT_TRUE(fleet.Open().ok());
  const auto id = fleet.Submit(TinyJob("hung", 7));
  ASSERT_TRUE(id.ok());
  const auto stats = fleet.RunAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->watchdog_parks, 1);
  EXPECT_LT(stats->restarts, 10);
  const ManifestJobEntry entry = fleet.jobs().at(*id);
  EXPECT_EQ(entry.state, FleetJobState::kParked);
  EXPECT_NE(entry.detail.find("watchdog"), std::string::npos)
      << entry.detail;
}

TEST(FleetSupervisorTest, RestartBudgetExhaustionParks) {
  InMemoryFleetStorage provider;
  FleetConfig config;
  config.restart.max_attempts = 3;
  config.watchdog_stall_limit = 100;  // restart budget must run out first
  config.market_retry.max_attempts = 2;
  config.market_gate = [](uint64_t) -> FaultGate {
    return [](std::string_view) -> Status {
      return UnavailableError("permanent outage");
    };
  };
  FleetSupervisor fleet(&provider, config);
  ASSERT_TRUE(fleet.Open().ok());
  const auto id = fleet.Submit(TinyJob("doomed", 7));
  ASSERT_TRUE(id.ok());
  const auto stats = fleet.RunAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->restarts, 2);
  EXPECT_EQ(stats->exhausted_parks, 1);
  const ManifestJobEntry entry = fleet.jobs().at(*id);
  EXPECT_EQ(entry.state, FleetJobState::kParked);
  EXPECT_NE(entry.detail.find("restart budget exhausted"),
            std::string::npos);

  // Operator retry: a resume_parked supervisor with the outage healed runs
  // the parked job to the reference result.
  const Reference ref = RunReference(TinyJob("doomed", 7));
  FleetConfig resume_config;
  resume_config.resume_parked = true;
  FleetSupervisor resumed(&provider, resume_config);
  ASSERT_TRUE(resumed.Recover().ok());
  const auto resumed_stats = resumed.RunAll();
  ASSERT_TRUE(resumed_stats.ok());
  const ManifestJobEntry after = resumed.jobs().at(*id);
  EXPECT_EQ(after.state, FleetJobState::kDone) << after.detail;
  EXPECT_EQ(after.detail, ref.entry.detail);
}

TEST(FleetSupervisorTest, OpenBreakerParksInsteadOfDispatching) {
  InMemoryFleetStorage provider;
  FleetConfig config;
  config.max_running = 1;  // serial dispatch: failures accumulate in order
  config.restart.max_attempts = 1;
  config.breaker.failure_threshold = 2;
  config.breaker.open_cooldown = 1e9;  // never half-opens within this run
  config.market_retry.max_attempts = 2;
  config.market_gate = [](uint64_t) -> FaultGate {
    return [](std::string_view) -> Status {
      return UnavailableError("systemic outage");
    };
  };
  FleetSupervisor fleet(&provider, config);
  ASSERT_TRUE(fleet.Open().ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fleet.Submit(TinyJob("job#" + std::to_string(i), i)).ok());
  }
  const auto stats = fleet.RunAll();
  ASSERT_TRUE(stats.ok());
  // Two failed runs trip the breaker; the remaining ready jobs are parked
  // without dispatch rather than burning their restart budgets.
  EXPECT_GE(stats->breaker_parks, 1);
  EXPECT_EQ(stats->completed, 0);
  int breaker_parked = 0;
  for (const auto& [id, entry] : fleet.jobs()) {
    EXPECT_EQ(entry.state, FleetJobState::kParked);
    if (entry.detail.find("breaker") != std::string::npos) {
      ++breaker_parked;
    }
  }
  EXPECT_EQ(breaker_parked, stats->breaker_parks);
}

TEST(FleetSupervisorTest, QuarantinesJournalRegressedBelowDurableMark) {
  const FleetJobSpec job = TinyJob("victim", 7);
  const Reference ref = RunReference(job);
  ASSERT_GT(ref.entry.journal_bytes, 64u);

  // Craft a fleet whose manifest proves `journal_bytes` of durable journal,
  // then hand it a journal with a bit flipped inside that prefix — the
  // mid-stream corruption plain torn-tail recovery would silently truncate.
  InMemoryFleetStorage provider;
  {
    const auto storage = provider.Storage(FleetManifestFileName());
    ASSERT_TRUE(storage.ok());
    auto manifest = FleetManifest::Open(*storage);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(manifest->AppendJob(1, job).ok());
    ASSERT_TRUE(manifest
                    ->AppendState(1, FleetJobState::kRunning, 0,
                                  ref.entry.journal_bytes, "")
                    .ok());
    ASSERT_TRUE(provider.Storage(FleetJobJournalPath(1)).ok());
    provider.Find(FleetJobJournalPath(1))->bytes() = ref.journal;
    provider.Find(FleetJobJournalPath(1))
        ->bytes()[ref.journal.size() / 2] ^= 0x10;
  }
  // A healthy sibling proves quarantine is surgical.
  FleetSupervisor fleet(&provider, FleetConfig{});
  ASSERT_TRUE(fleet.Recover().ok());
  const auto sibling = fleet.Submit(TinyJob("sibling", 8));
  ASSERT_TRUE(sibling.ok());
  const auto stats = fleet.RunAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->quarantined, 1);
  const auto jobs = fleet.jobs();
  EXPECT_EQ(jobs.at(1).state, FleetJobState::kQuarantined);
  EXPECT_NE(jobs.at(1).detail.find("regressed below durable mark"),
            std::string::npos)
      << jobs.at(1).detail;
  EXPECT_EQ(jobs.at(*sibling).state, FleetJobState::kDone);
  EXPECT_EQ(jobs.at(*sibling).detail,
            RunReference(TinyJob("sibling", 8)).entry.detail);

  // Control: the same crafted fleet without the bit flip resumes cleanly
  // to the reference result.
  InMemoryFleetStorage clean;
  {
    const auto storage = clean.Storage(FleetManifestFileName());
    ASSERT_TRUE(storage.ok());
    auto manifest = FleetManifest::Open(*storage);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(manifest->AppendJob(1, job).ok());
    ASSERT_TRUE(manifest
                    ->AppendState(1, FleetJobState::kRunning, 0,
                                  ref.entry.journal_bytes, "")
                    .ok());
    ASSERT_TRUE(clean.Storage(FleetJobJournalPath(1)).ok());
    clean.Find(FleetJobJournalPath(1))->bytes() = ref.journal;
  }
  FleetSupervisor resumed(&clean, FleetConfig{});
  ASSERT_TRUE(resumed.Recover().ok());
  const auto clean_stats = resumed.RunAll();
  ASSERT_TRUE(clean_stats.ok());
  EXPECT_EQ(resumed.jobs().at(1).state, FleetJobState::kDone);
  EXPECT_EQ(resumed.jobs().at(1).detail, ref.entry.detail);
}

TEST(FleetSupervisorTest, QuarantinesCorruptJournalHeader) {
  const Reference ref = RunReference(TinyJob("victim", 7));
  InMemoryFleetStorage provider;
  {
    const auto storage = provider.Storage(FleetManifestFileName());
    ASSERT_TRUE(storage.ok());
    auto manifest = FleetManifest::Open(*storage);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(manifest->AppendJob(1, TinyJob("victim", 7)).ok());
    ASSERT_TRUE(
        manifest->AppendState(1, FleetJobState::kRunning, 0, 8, "").ok());
    ASSERT_TRUE(provider.Storage(FleetJobJournalPath(1)).ok());
    provider.Find(FleetJobJournalPath(1))->bytes() = ref.journal;
    provider.Find(FleetJobJournalPath(1))->bytes()[0] ^= 0xFF;  // magic
  }
  FleetSupervisor fleet(&provider, FleetConfig{});
  ASSERT_TRUE(fleet.Recover().ok());
  const auto stats = fleet.RunAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->quarantined, 1);
  EXPECT_EQ(fleet.jobs().at(1).state, FleetJobState::kQuarantined);
  EXPECT_NE(fleet.jobs().at(1).detail.find("failed validation"),
            std::string::npos)
      << fleet.jobs().at(1).detail;
}

TEST(FleetSupervisorTest, QuarantinesDivergentReplay) {
  // A journal written under seed 7 attached to a job whose manifest spec
  // says seed 8: replay-by-re-execution must detect the divergence and
  // quarantine rather than emit a silently wrong result. Snapshots are
  // disabled on both sides so replay re-executes from the journal start —
  // a snapshot would legitimately carry the old market state forward.
  FleetJobSpec donor = TinyJob("victim", 7);
  donor.snapshot_interval = 1000000;
  const Reference ref = RunReference(donor);
  FleetJobSpec victim = TinyJob("victim", 8);
  victim.snapshot_interval = 1000000;
  InMemoryFleetStorage provider;
  {
    const auto storage = provider.Storage(FleetManifestFileName());
    ASSERT_TRUE(storage.ok());
    auto manifest = FleetManifest::Open(*storage);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(manifest->AppendJob(1, victim).ok());
    ASSERT_TRUE(
        manifest->AppendState(1, FleetJobState::kRunning, 0, 8, "").ok());
    ASSERT_TRUE(provider.Storage(FleetJobJournalPath(1)).ok());
    provider.Find(FleetJobJournalPath(1))->bytes() = ref.journal;
  }
  FleetSupervisor fleet(&provider, FleetConfig{});
  ASSERT_TRUE(fleet.Recover().ok());
  const auto stats = fleet.RunAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->quarantined, 1);
  const ManifestJobEntry entry = fleet.jobs().at(1);
  EXPECT_EQ(entry.state, FleetJobState::kQuarantined);
  EXPECT_NE(entry.detail.find("divergent replay"), std::string::npos)
      << entry.detail;
}

TEST(FleetSupervisorTest, RecoverQuarantinesOrphanJournals) {
  InMemoryFleetStorage provider;
  {
    const auto storage = provider.Storage(FleetManifestFileName());
    ASSERT_TRUE(storage.ok());
    auto manifest = FleetManifest::Open(*storage);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(manifest->AppendJob(1, TinyJob("known", 7)).ok());
    // Job 2's kJob record was lost to a torn manifest tail, but its journal
    // survived: the Submit ordering invariant (kJob flushed before the
    // journal exists) makes this journal proof of the truncation.
    ASSERT_TRUE(provider.Storage(FleetJobJournalPath(2)).ok());
    provider.Find(FleetJobJournalPath(2))->bytes() = "leftover journal";
  }
  FleetSupervisor fleet(&provider, FleetConfig{});
  ASSERT_TRUE(fleet.Recover().ok());
  ASSERT_EQ(fleet.orphans().size(), 1u);
  EXPECT_EQ(fleet.orphans()[0], 2u);
  const auto stats = fleet.RunAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(fleet.jobs().at(1).state, FleetJobState::kDone);

  // The quarantine is durable and the burned id is never reused: a new
  // submission must get id 3, not adopt the orphan's journal.
  FleetSupervisor reopened(&provider, FleetConfig{});
  ASSERT_TRUE(reopened.Recover().ok());
  const auto fresh = reopened.Submit(TinyJob("fresh", 9));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, 3u);
}

TEST(FleetSupervisorTest, KilledThousandJobFleetResumesWithoutRerunning) {
  constexpr int kJobs = 1000;
  InMemoryFleetStorage provider;
  FleetKillSwitch kill(400000);  // dies partway through the fleet
  std::mutex wrappers_mu;
  std::vector<std::unique_ptr<FleetKillStorage>> wrappers;

  FleetConfig chaos_config;
  chaos_config.max_running = 8;
  chaos_config.decorate_storage = [&](uint64_t, JournalStorage* inner) {
    std::lock_guard<std::mutex> lock(wrappers_mu);
    wrappers.push_back(kill.WrapStorage(inner));
    return wrappers.back().get();
  };
  {
    FleetSupervisor fleet(&provider, chaos_config);
    ASSERT_TRUE(fleet.Open().ok());
    for (int i = 0; i < kJobs; ++i) {
      ASSERT_TRUE(
          fleet.Submit(TinyJob("job#" + std::to_string(i), 5000 + i)).ok());
    }
    const auto stats = fleet.RunAll();
    ASSERT_FALSE(stats.ok());  // the injected kill
    ASSERT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
    ASSERT_TRUE(kill.killed());
  }

  // Count what the manifest says survived the kill.
  int done_before = 0, interrupted = 0;
  {
    FleetSupervisor inspect(&provider, FleetConfig{});
    ASSERT_TRUE(inspect.Recover().ok());
    for (const auto& [id, entry] : inspect.jobs()) {
      if (entry.state == FleetJobState::kDone) {
        ++done_before;
      } else {
        ++interrupted;
      }
    }
  }
  ASSERT_GT(done_before, 0) << "kill budget too small: nothing finished";
  ASSERT_GT(interrupted, 0) << "kill budget too large: nothing interrupted";

  // Recover and finish. The manifest proves finished jobs are not re-run:
  // dispatches (minus restarts) cover exactly the interrupted jobs.
  FleetConfig resume_config;
  resume_config.max_running = 8;
  FleetSupervisor resumed(&provider, resume_config);
  ASSERT_TRUE(resumed.Recover().ok());
  EXPECT_TRUE(resumed.orphans().empty());
  const auto stats = resumed.RunAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->dispatched - stats->restarts, interrupted);
  EXPECT_EQ(stats->completed, interrupted);

  // Every job completed, bitwise identically to a fault-free fleet: equal
  // completion digests (report + trace CRC) job for job.
  InMemoryFleetStorage clean;
  FleetConfig clean_config;
  clean_config.max_running = 8;
  FleetSupervisor reference(&clean, clean_config);
  ASSERT_TRUE(reference.Open().ok());
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(
        reference.Submit(TinyJob("job#" + std::to_string(i), 5000 + i)).ok());
  }
  ASSERT_TRUE(reference.RunAll().ok());
  const auto recovered_jobs = resumed.jobs();
  const auto reference_jobs = reference.jobs();
  ASSERT_EQ(recovered_jobs.size(), reference_jobs.size());
  for (const auto& [id, entry] : recovered_jobs) {
    EXPECT_EQ(entry.state, FleetJobState::kDone) << id << ": " << entry.detail;
    EXPECT_EQ(entry.detail, reference_jobs.at(id).detail) << id;
  }
}

TEST(FleetConfigTest, ValidateRejectsBadKnobs) {
  FleetConfig config;
  EXPECT_TRUE(ValidateFleetConfig(config).ok());
  config.max_running = 0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = FleetConfig{};
  config.max_admitted = -1;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = FleetConfig{};
  config.watchdog_stall_limit = 0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = FleetConfig{};
  config.restart.max_attempts = 0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config = FleetConfig{};
  config.breaker.failure_threshold = 0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
}

TEST(FleetSpecTest, ParsesFleetWithReplicasAndOverrides) {
  const std::string dir = testing::TempDir();
  const std::string job_path = dir + "/fleet_spec_test_job.spec";
  {
    std::FILE* f = std::fopen(job_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs(kTinySpec, f);
    std::fclose(f);
  }
  const std::string text =
      "max_running = 6\n"
      "max_admitted = 12\n"
      "\n"
      "[job]\n"
      "spec = fleet_spec_test_job.spec\n"
      "name = tiny\n"
      "priority = 2\n"
      "count = 3\n"
      "seed = 40\n"
      "budget = 99\n"
      "controller = retune\n"
      "snapshot_interval = 2\n"
      "\n"
      "[job]\n"
      "spec = fleet_spec_test_job.spec\n";
  const auto fleet = ParseFleetSpec(text, dir);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_EQ(fleet->max_running, 6);
  EXPECT_EQ(fleet->max_admitted, 12);
  ASSERT_EQ(fleet->jobs.size(), 4u);
  EXPECT_EQ(fleet->jobs[0].name, "tiny#0");
  EXPECT_EQ(fleet->jobs[2].name, "tiny#2");
  EXPECT_EQ(fleet->jobs[0].seed_override, 40);
  EXPECT_EQ(fleet->jobs[1].seed_override, 41);
  EXPECT_EQ(fleet->jobs[0].ceiling, 99);
  EXPECT_EQ(fleet->jobs[0].priority, 2);
  EXPECT_EQ(fleet->jobs[0].controller, FleetController::kAdaptiveRetuner);
  EXPECT_EQ(fleet->jobs[0].snapshot_interval, 2);
  EXPECT_EQ(fleet->jobs[0].spec_text, kTinySpec);
  // Second section: defaults.
  EXPECT_EQ(fleet->jobs[3].name, "fleet_spec_test_job.spec");
  EXPECT_EQ(fleet->jobs[3].seed_override, -1);
  EXPECT_EQ(fleet->jobs[3].controller, FleetController::kFaultTolerant);
}

TEST(FleetSpecTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFleetSpec("", "").ok());  // no jobs
  EXPECT_FALSE(ParseFleetSpec("[job]\n", "").ok());  // no spec path
  EXPECT_FALSE(ParseFleetSpec("bogus = 1\n", "").ok());
  EXPECT_FALSE(
      ParseFleetSpec("[job]\nspec = /nonexistent/path.spec\n", "").ok());
  EXPECT_FALSE(ParseFleetSpec("[job]\ncontroller = bogus\n", "").ok());
}

TEST(FleetSpecTest, ParsesSharedMarketSection) {
  const std::string dir = testing::TempDir();
  const std::string job_path = dir + "/fleet_spec_shared_job.spec";
  {
    std::FILE* f = std::fopen(job_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs(kTinySpec, f);
    std::fclose(f);
  }
  const std::string text =
      "max_running = 2\n"
      "\n"
      "[shared_market]\n"
      "arrival_rate = 80.5\n"
      "worker_error_prob = 0.25\n"
      "curve = quadratic 0.5 1.0\n"
      "seed = 77\n"
      "review_interval = 2.5\n"
      "snapshot_interval = 3\n"
      "\n"
      "[job]\n"
      "spec = fleet_spec_shared_job.spec\n";
  const auto fleet = ParseFleetSpec(text, dir);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_TRUE(fleet->shared_market.present);
  EXPECT_EQ(fleet->shared_market.arrival_rate, 80.5);
  EXPECT_EQ(fleet->shared_market.worker_error_prob, 0.25);
  EXPECT_EQ(fleet->shared_market.curve, "quadratic 0.5 1.0");
  EXPECT_EQ(fleet->shared_market.seed, 77);
  EXPECT_EQ(fleet->shared_market.review_interval, 2.5);
  EXPECT_EQ(fleet->shared_market.snapshot_interval, 3);

  // Absent section: defaults, present == false.
  const auto isolated =
      ParseFleetSpec("[job]\nspec = fleet_spec_shared_job.spec\n", dir);
  ASSERT_TRUE(isolated.ok()) << isolated.status().ToString();
  EXPECT_FALSE(isolated->shared_market.present);
}

TEST(FleetSpecTest, RejectsBadSharedMarketKnobs) {
  const std::string dir = testing::TempDir();
  const std::string job_path = dir + "/fleet_spec_shared_job.spec";
  {
    std::FILE* f = std::fopen(job_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs(kTinySpec, f);
    std::fclose(f);
  }
  const std::string tail = "[job]\nspec = fleet_spec_shared_job.spec\n";
  EXPECT_FALSE(
      ParseFleetSpec("[shared_market]\narrival_rate = 0\n" + tail, dir).ok());
  EXPECT_FALSE(
      ParseFleetSpec("[shared_market]\narrival_rate = nope\n" + tail, dir)
          .ok());
  EXPECT_FALSE(
      ParseFleetSpec("[shared_market]\nworker_error_prob = 1.5\n" + tail, dir)
          .ok());
  EXPECT_FALSE(
      ParseFleetSpec("[shared_market]\ncurve = bogus 1 2\n" + tail, dir).ok());
  EXPECT_FALSE(
      ParseFleetSpec("[shared_market]\nseed = -3\n" + tail, dir).ok());
  EXPECT_FALSE(
      ParseFleetSpec("[shared_market]\nreview_interval = 0\n" + tail, dir)
          .ok());
  EXPECT_FALSE(
      ParseFleetSpec("[shared_market]\nsnapshot_interval = 0\n" + tail, dir)
          .ok());
  EXPECT_FALSE(
      ParseFleetSpec("[shared_market]\nbogus = 1\n" + tail, dir).ok());
  EXPECT_FALSE(ParseFleetSpec(
                   "[shared_market]\n[shared_market]\n" + tail, dir)
                   .ok());  // duplicate section
}

}  // namespace
}  // namespace htune
