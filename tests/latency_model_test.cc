#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "model/distributions.h"
#include "model/latency_model.h"
#include "model/order_statistics.h"
#include "rng/random.h"
#include "stats/descriptive.h"

namespace htune {
namespace {

TEST(GroupLatencyTest, SingleTaskSingleRepIsExponentialMean) {
  GroupShape shape{1, 1, 2.0};
  EXPECT_NEAR(ExpectedGroupOnHoldLatencyAtRate(shape, 4.0), 0.25, 1e-6);
}

TEST(GroupLatencyTest, GroupOfSingleRoundUsesHarmonicSum) {
  GroupShape shape{10, 1, 2.0};
  EXPECT_NEAR(ExpectedGroupOnHoldLatencyAtRate(shape, 3.0),
              ExpectedMaxExponential(10, 3.0), 1e-9);
}

TEST(GroupLatencyTest, CurveOverloadAppliesPrice) {
  GroupShape shape{5, 2, 2.0};
  LinearCurve curve(1.0, 1.0);
  const double via_curve = ExpectedGroupOnHoldLatency(shape, curve, 3.0);
  const double via_rate = ExpectedGroupOnHoldLatencyAtRate(shape, 4.0);
  EXPECT_NEAR(via_curve, via_rate, 1e-12);
}

TEST(GroupLatencyTest, ProcessingLatencyIsErlangMean) {
  GroupShape shape{100, 5, 2.0};
  EXPECT_DOUBLE_EQ(ExpectedGroupProcessingLatency(shape), 2.5);
}

TEST(SumOfErlangsCdfTest, EqualRatesCollapseToSingleErlang) {
  // Erlang(2, 3) + Erlang(3, 3) = Erlang(5, 3).
  ErlangDist combined(5, 3.0);
  for (double t : {0.5, 1.5, 3.0}) {
    EXPECT_NEAR(SumOfErlangsCdf(2, 3.0, 3, 3.0, t), combined.Cdf(t), 1e-6);
  }
}

TEST(SumOfErlangsCdfTest, DistinctRatesMatchTwoPhaseClosedForm) {
  TwoPhaseLatencyDist closed(2.0, 5.0);
  for (double t : {0.2, 1.0, 2.5}) {
    EXPECT_NEAR(SumOfErlangsCdf(1, 2.0, 1, 5.0, t), closed.Cdf(t), 1e-6);
  }
}

TEST(SumOfErlangsCdfTest, NonPositiveTimeIsZero) {
  EXPECT_EQ(SumOfErlangsCdf(2, 1.0, 2, 2.0, 0.0), 0.0);
  EXPECT_EQ(SumOfErlangsCdf(2, 1.0, 2, 2.0, -1.0), 0.0);
}

TEST(TotalGroupLatencyTest, MatchesMonteCarlo) {
  GroupShape shape{6, 3, 2.0};
  const double on_hold_rate = 1.5;
  const double analytic = ExpectedGroupTotalLatency(shape, on_hold_rate);

  Random rng(21);
  RunningStats stats;
  for (int trial = 0; trial < 60000; ++trial) {
    double worst = 0.0;
    for (int task = 0; task < shape.num_tasks; ++task) {
      const double latency = rng.Erlang(shape.repetitions, on_hold_rate) +
                             rng.Erlang(shape.repetitions,
                                        shape.processing_rate);
      worst = std::max(worst, latency);
    }
    stats.Add(worst);
  }
  EXPECT_NEAR(analytic, stats.Mean(), 5.0 * stats.StdError() + 5e-3);
}

TEST(TotalGroupLatencyTest, ExceedsPhase1Alone) {
  GroupShape shape{10, 2, 3.0};
  EXPECT_GT(ExpectedGroupTotalLatency(shape, 2.0),
            ExpectedGroupOnHoldLatencyAtRate(shape, 2.0));
}

TEST(GroupLatencyDeathTest, RejectsBadShapes) {
  GroupShape bad_tasks{0, 1, 1.0};
  EXPECT_DEATH(ExpectedGroupOnHoldLatencyAtRate(bad_tasks, 1.0),
               "HTUNE_CHECK");
  GroupShape bad_rate{1, 1, 0.0};
  EXPECT_DEATH(ExpectedGroupProcessingLatency(bad_rate), "HTUNE_CHECK");
}

}  // namespace
}  // namespace htune
