#include "market/shared_stream.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "rng/random.h"

namespace htune {
namespace {

TEST(SharedStreamTest, DrawStreamMatchesManualReplay) {
  // The documented draw discipline: one Exponential at construction, then
  // per Step one Exponential (next interarrival) and one Uniform
  // (selection) — bitwise, regardless of candidate count.
  constexpr uint64_t kSeed = 0x5EED0100;
  constexpr double kRate = 40.0;
  SharedArrivalStream stream(kRate, kSeed);
  Random replay(kSeed);

  double expected_next = replay.Exponential(kRate);
  EXPECT_EQ(stream.NextArrivalTime(), expected_next);

  const std::vector<double> weights = {3.0, 7.0};
  for (int i = 0; i < 50; ++i) {
    const size_t n = static_cast<size_t>(i % 3);  // 0, 1, or 2 candidates
    const SharedArrival arrival = stream.Step(weights.data(), n);
    EXPECT_EQ(arrival.time, expected_next);
    EXPECT_EQ(arrival.worker, static_cast<uint64_t>(i));
    expected_next = arrival.time + replay.Exponential(kRate);
    const double u = replay.Uniform();
    EXPECT_EQ(stream.NextArrivalTime(), expected_next);
    double total = 0.0;
    for (size_t j = 0; j < n; ++j) total += weights[j];
    const double threshold = u * (total > kRate ? total : kRate);
    EXPECT_EQ(arrival.accepted, threshold < total);
  }
  EXPECT_EQ(stream.arrivals(), 50u);
}

TEST(SharedStreamTest, UnsaturatedCandidateKeepsItsMarginalRate) {
  // Below saturation (W <= arrival rate) the acceptance process of a
  // candidate with weight w is Poisson(w) — identical in law to an
  // isolated task posted at that price.
  constexpr double kRate = 100.0;
  SharedArrivalStream stream(kRate, 0x5EED0101);
  const double weight = 5.0;
  uint64_t accepts = 0;
  constexpr int kArrivals = 200000;
  for (int i = 0; i < kArrivals; ++i) {
    if (stream.Step(&weight, 1).accepted) ++accepts;
  }
  const double observed = static_cast<double>(accepts) / stream.now();
  EXPECT_NEAR(observed, weight, 0.2);
}

TEST(SharedStreamTest, TwoIdenticalSaturatingJobsEachSeeHalfIsolatedRate) {
  // Isolated, a weight-150 candidate saturates a rate-100 market and
  // accepts every arrival (rate 100). Sharing the market with an identical
  // rival, each gets half of that.
  constexpr double kRate = 100.0;
  constexpr double kWeight = 150.0;

  SharedArrivalStream isolated(kRate, 0x5EED0102);
  uint64_t isolated_accepts = 0;
  constexpr int kArrivals = 100000;
  for (int i = 0; i < kArrivals; ++i) {
    if (isolated.Step(&kWeight, 1).accepted) ++isolated_accepts;
  }
  EXPECT_EQ(isolated_accepts, static_cast<uint64_t>(kArrivals));
  const double isolated_rate =
      static_cast<double>(isolated_accepts) / isolated.now();

  SharedArrivalStream shared(kRate, 0x5EED0103);
  const std::vector<double> weights = {kWeight, kWeight};
  uint64_t accepts[2] = {0, 0};
  for (int i = 0; i < kArrivals; ++i) {
    const SharedArrival arrival = shared.Step(weights.data(), weights.size());
    if (arrival.accepted) ++accepts[arrival.candidate];
  }
  const double elapsed = shared.now();
  for (uint64_t count : accepts) {
    const double rate = static_cast<double>(count) / elapsed;
    EXPECT_NEAR(rate / isolated_rate, 0.5, 0.02);
  }
}

TEST(SharedStreamTest, RaisingOnePriceDrainsTheRivalsRate) {
  // At weights {100, 100} on a rate-100 market each candidate accepts half
  // the arrivals. Raising the first to 300 pushes its share to 3/4 and
  // halves the rival's — contention propagates through the shared
  // denominator, not through any explicit coupling.
  constexpr double kRate = 100.0;
  constexpr int kArrivals = 100000;

  const auto shares = [&](const std::vector<double>& weights) {
    SharedArrivalStream stream(kRate, 0x5EED0104);
    std::vector<uint64_t> accepts(weights.size(), 0);
    for (int i = 0; i < kArrivals; ++i) {
      const SharedArrival arrival =
          stream.Step(weights.data(), weights.size());
      if (arrival.accepted) ++accepts[arrival.candidate];
    }
    std::vector<double> rates(weights.size());
    for (size_t j = 0; j < weights.size(); ++j) {
      rates[j] = static_cast<double>(accepts[j]) / stream.now();
    }
    return rates;
  };

  const std::vector<double> before = shares({100.0, 100.0});
  const std::vector<double> after = shares({300.0, 100.0});
  EXPECT_NEAR(before[1], 50.0, 2.0);
  EXPECT_NEAR(after[1], 25.0, 2.0);
  EXPECT_NEAR(after[0], 75.0, 2.0);
}

TEST(SharedStreamTest, ZeroWeightCandidateIsNeverSelected) {
  SharedArrivalStream stream(50.0, 0x5EED0105);
  const std::vector<double> weights = {0.0, 5.0, 0.0};
  for (int i = 0; i < 20000; ++i) {
    const SharedArrival arrival = stream.Step(weights.data(), weights.size());
    if (arrival.accepted) {
      ASSERT_EQ(arrival.candidate, 1u);
    }
  }
}

TEST(SharedStreamTest, DrawCountIsIndependentOfCandidateMembership) {
  // Two same-seeded streams fed different candidate sets produce identical
  // arrival epochs: the uniform stream never depends on who competes.
  SharedArrivalStream a(25.0, 0x5EED0106);
  SharedArrivalStream b(25.0, 0x5EED0106);
  const std::vector<double> many = {1.0, 2.0, 3.0, 4.0};
  for (int i = 0; i < 200; ++i) {
    const SharedArrival from_a = a.Step(nullptr, 0);
    const SharedArrival from_b =
        b.Step(many.data(), static_cast<size_t>(i % 5));
    ASSERT_EQ(from_a.time, from_b.time);
    ASSERT_EQ(a.NextArrivalTime(), b.NextArrivalTime());
  }
}

TEST(SharedStreamTest, CaptureRestoreContinuesBitwise) {
  constexpr double kRate = 60.0;
  const std::vector<double> weights = {10.0, 45.0, 20.0};
  SharedArrivalStream original(kRate, 0x5EED0107);
  for (int i = 0; i < 500; ++i) {
    original.Step(weights.data(), weights.size());
  }
  const SharedStreamState snapshot = original.CaptureState();

  // Restore into a stream built from a different seed: everything dynamic
  // must come from the snapshot.
  SharedArrivalStream resumed(kRate, 0xDEADBEEF);
  resumed.RestoreState(snapshot);
  EXPECT_EQ(resumed.now(), original.now());
  EXPECT_EQ(resumed.NextArrivalTime(), original.NextArrivalTime());
  EXPECT_EQ(resumed.arrivals(), original.arrivals());

  for (int i = 0; i < 500; ++i) {
    const size_t n = static_cast<size_t>(i % (weights.size() + 1));
    const SharedArrival expected = original.Step(weights.data(), n);
    const SharedArrival actual = resumed.Step(weights.data(), n);
    ASSERT_EQ(actual.time, expected.time);
    ASSERT_EQ(actual.worker, expected.worker);
    ASSERT_EQ(actual.accepted, expected.accepted);
    if (expected.accepted) {
      ASSERT_EQ(actual.candidate, expected.candidate);
    }
  }
}

TEST(SharedStreamTest, TotalWeightSumsLeftToRight) {
  // The helper must reproduce the exact accumulation Step performs; spot
  // check with values whose sum depends on order.
  const std::vector<double> weights = {1e16, 1.0, -0.0, 3.0};
  double manual = 0.0;
  for (double w : weights) manual += w;
  EXPECT_EQ(SharedArrivalStream::TotalWeight(weights.data(), weights.size()),
            manual);
  EXPECT_EQ(SharedArrivalStream::TotalWeight(nullptr, 0), 0.0);
}

}  // namespace
}  // namespace htune
