#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "tuning/brute_force.h"
#include "tuning/evaluator.h"
#include "tuning/group_latency_table.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

TaskGroup MakeGroup(const std::string& name, int tasks, int reps,
                    std::shared_ptr<const PriceRateCurve> curve,
                    double processing = 2.0) {
  TaskGroup g;
  g.name = name;
  g.num_tasks = tasks;
  g.repetitions = reps;
  g.processing_rate = processing;
  g.curve = std::move(curve);
  return g;
}

TuningProblem TwoGroupProblem(long budget,
                              std::shared_ptr<const PriceRateCurve> curve) {
  TuningProblem problem;
  problem.groups.push_back(MakeGroup("three-reps", 2, 3, curve));
  problem.groups.push_back(MakeGroup("five-reps", 2, 5, curve));
  problem.budget = budget;
  return problem;
}

double GroupSumObjective(const TuningProblem& problem,
                         const std::vector<int>& prices) {
  double total = 0.0;
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    total += GroupLatencyTable(problem.groups[i]).Phase1(prices[i]);
  }
  return total;
}

TEST(GroupLatencyTableTest, CachesAndMatchesDirectComputation) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TaskGroup group = MakeGroup("g", 4, 2, curve);
  GroupLatencyTable table(group);
  const double first = table.Phase1(3);
  const double second = table.Phase1(3);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_GT(table.Phase1Gain(3), 0.0);
  EXPECT_DOUBLE_EQ(table.Phase2(), 1.0);
}

TEST(RepetitionAllocatorTest, SpendsWithinBudget) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = TwoGroupProblem(100, curve);
  for (const auto mode : {RepetitionAllocator::Mode::kPaperDp,
                          RepetitionAllocator::Mode::kExactDp}) {
    const auto alloc = RepetitionAllocator(mode).Allocate(problem);
    ASSERT_TRUE(alloc.ok());
    EXPECT_LE(alloc->TotalCost(), 100);
    EXPECT_TRUE(ValidateAllocation(problem, *alloc).ok());
  }
}

TEST(RepetitionAllocatorTest, RejectsInsufficientBudget) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = TwoGroupProblem(15, curve);  // min is 16
  EXPECT_FALSE(RepetitionAllocator().Allocate(problem).ok());
}

TEST(RepetitionAllocatorTest, MinimalBudgetGivesAllOnes) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = TwoGroupProblem(16, curve);
  const auto prices = RepetitionAllocator().SolvePrices(problem);
  ASSERT_TRUE(prices.ok());
  EXPECT_EQ(*prices, (std::vector<int>{1, 1}));
}

// Property sweep: the paper's DP matches the exact DP and the brute-force
// oracle across curves and budgets.
class RaExactnessSweep
    : public ::testing::TestWithParam<std::tuple<int, long>> {};

TEST_P(RaExactnessSweep, MatchesOracles) {
  const auto [curve_index, budget] = GetParam();
  const auto curves = PaperSyntheticCurves();
  const std::shared_ptr<const PriceRateCurve> curve =
      std::shared_ptr<const PriceRateCurve>(curves[curve_index]->Clone());
  const TuningProblem problem = TwoGroupProblem(budget, curve);

  const auto paper =
      RepetitionAllocator(RepetitionAllocator::Mode::kPaperDp)
          .SolvePrices(problem);
  const auto exact =
      RepetitionAllocator(RepetitionAllocator::Mode::kExactDp)
          .SolvePrices(problem);
  const auto oracle = BruteForceMinimize(
      problem, [&problem](const std::vector<int>& prices) {
        return GroupSumObjective(problem, prices);
      });
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(oracle.ok());

  const double paper_value = GroupSumObjective(problem, *paper);
  const double exact_value = GroupSumObjective(problem, *exact);
  const double oracle_value = GroupSumObjective(problem, *oracle);
  // All three must land on the same objective value (the price vectors may
  // differ on exact ties).
  EXPECT_NEAR(exact_value, oracle_value, 1e-9)
      << "curve=" << curve->Name() << " budget=" << budget;
  EXPECT_NEAR(paper_value, oracle_value, 1e-9)
      << "curve=" << curve->Name() << " budget=" << budget;
}

INSTANTIATE_TEST_SUITE_P(
    CurvesAndBudgets, RaExactnessSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(16L, 20L, 33L, 48L, 64L)));

TEST(RepetitionAllocatorTest, ObjectiveMonotoneInBudget) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  double prev = 1e18;
  for (long budget : {16, 24, 32, 48, 64, 96}) {
    const TuningProblem problem = TwoGroupProblem(budget, curve);
    const auto prices = RepetitionAllocator().SolvePrices(problem);
    ASSERT_TRUE(prices.ok());
    const double value = GroupSumObjective(problem, *prices);
    EXPECT_LE(value, prev + 1e-12) << "budget=" << budget;
    prev = value;
  }
}

TEST(RepetitionAllocatorTest, AsymmetricUnitCostsStillOptimal) {
  // Group sizes that make per-unit upgrade costs differ by 12x: the DP must
  // still land on the brute-force optimum.
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  problem.groups.push_back(MakeGroup("light", 1, 1, curve));
  problem.groups.push_back(MakeGroup("heavy", 1, 12, curve));
  problem.budget = 40;
  const auto prices = RepetitionAllocator().SolvePrices(problem);
  ASSERT_TRUE(prices.ok());
  const auto oracle = BruteForceMinimize(
      problem, [&problem](const std::vector<int>& p) {
        return GroupSumObjective(problem, p);
      });
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(GroupSumObjective(problem, *prices),
              GroupSumObjective(problem, *oracle), 1e-9);
}

TEST(RepetitionAllocatorTest, SingleGroupDegeneratesToEvenPerRepetition) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  problem.groups.push_back(MakeGroup("only", 5, 2, curve));
  problem.budget = 70;  // 7 per repetition exactly
  const auto prices = RepetitionAllocator().SolvePrices(problem);
  ASSERT_TRUE(prices.ok());
  EXPECT_EQ((*prices)[0], 7);
}

TEST(BruteForceTest, EnumeratesFeasibleSet) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  problem.groups.push_back(MakeGroup("a", 1, 2, curve));  // unit cost 2
  problem.groups.push_back(MakeGroup("b", 1, 3, curve));  // unit cost 3
  problem.budget = 10;
  int count = 0;
  ForEachUniformPriceVector(problem, [&](const std::vector<int>& prices) {
    ++count;
    EXPECT_LE(2 * prices[0] + 3 * prices[1], 10);
    EXPECT_GE(prices[0], 1);
    EXPECT_GE(prices[1], 1);
  });
  // Feasible: (1,1),(1,2),(2,1),(3,1),(2,2). Check (3,1): 6+3=9 ok;
  // (1,2): 2+6=8 ok; (2,2): 4+6=10 ok.
  EXPECT_EQ(count, 5);
}

TEST(BruteForceTest, MinimizeRejectsInvalidProblem) {
  TuningProblem empty;
  EXPECT_FALSE(
      BruteForceMinimize(empty, [](const std::vector<int>&) { return 0.0; })
          .ok());
}

}  // namespace
}  // namespace htune
