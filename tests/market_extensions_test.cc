// Tests for the market extensions beyond the paper's baseline model:
// time-varying arrival schedules, heterogeneous worker reliability,
// market-owned price-rate truth, and in-flight repricing.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "market/rate_schedule.h"
#include "market/simulator.h"
#include "stats/descriptive.h"

namespace htune {
namespace {

TEST(RateScheduleTest, ConstantSchedule) {
  const RateSchedule schedule = RateSchedule::Constant(4.0);
  EXPECT_DOUBLE_EQ(schedule.RateAt(0.0), 4.0);
  EXPECT_DOUBLE_EQ(schedule.RateAt(123.456), 4.0);
  EXPECT_DOUBLE_EQ(schedule.MaxRate(), 4.0);
  EXPECT_DOUBLE_EQ(schedule.MeanRate(), 4.0);
}

TEST(RateScheduleTest, PiecewiseLookupAndPeriodicity) {
  // Day: high rate in [0, 16), low in [16, 24).
  const auto schedule =
      RateSchedule::Create({{0.0, 10.0}, {16.0, 2.0}}, 24.0);
  ASSERT_TRUE(schedule.ok());
  EXPECT_DOUBLE_EQ(schedule->RateAt(0.0), 10.0);
  EXPECT_DOUBLE_EQ(schedule->RateAt(15.999), 10.0);
  EXPECT_DOUBLE_EQ(schedule->RateAt(16.0), 2.0);
  EXPECT_DOUBLE_EQ(schedule->RateAt(23.9), 2.0);
  // Next day repeats.
  EXPECT_DOUBLE_EQ(schedule->RateAt(24.0), 10.0);
  EXPECT_DOUBLE_EQ(schedule->RateAt(24.0 + 20.0), 2.0);
  EXPECT_DOUBLE_EQ(schedule->MaxRate(), 10.0);
  EXPECT_NEAR(schedule->MeanRate(), (10.0 * 16.0 + 2.0 * 8.0) / 24.0, 1e-12);
}

TEST(RateScheduleTest, CreateValidation) {
  EXPECT_FALSE(RateSchedule::Create({}, 24.0).ok());
  EXPECT_FALSE(RateSchedule::Create({{1.0, 5.0}}, 24.0).ok());  // start != 0
  EXPECT_FALSE(
      RateSchedule::Create({{0.0, 5.0}, {0.0, 2.0}}, 24.0).ok());
  EXPECT_FALSE(RateSchedule::Create({{0.0, -1.0}}, 24.0).ok());
  EXPECT_FALSE(RateSchedule::Create({{0.0, 5.0}, {30.0, 2.0}}, 24.0).ok());
  EXPECT_FALSE(RateSchedule::Create({{0.0, 5.0}}, 0.0).ok());
}

TEST(NonhomogeneousMarketTest, ArrivalCountsFollowSchedule) {
  // 10 workers/unit in the first half of each 10-unit cycle, 1 in the
  // second half.
  const auto schedule =
      RateSchedule::Create({{0.0, 10.0}, {5.0, 1.0}}, 10.0);
  ASSERT_TRUE(schedule.ok());
  MarketConfig config;
  config.worker_arrival_rate = 10.0;  // calibration reference
  config.arrival_schedule =
      std::make_shared<RateSchedule>(*schedule);
  config.seed = 31;
  MarketSimulator market(config);
  // A slow task keeps the market open for several cycles.
  TaskSpec spec;
  spec.price_per_repetition = 1;
  spec.repetitions = 40;
  spec.on_hold_rate = 0.8;
  spec.processing_rate = 1e5;
  ASSERT_TRUE(market.PostTask(spec).ok());
  ASSERT_TRUE(market.RunToCompletion().ok());

  double busy = 0.0, quiet = 0.0;
  double horizon = 0.0;
  for (const TraceEvent& event : market.trace()) {
    if (event.kind != TraceEventKind::kWorkerArrival) continue;
    const double phase = std::fmod(event.time, 10.0);
    (phase < 5.0 ? busy : quiet) += 1.0;
    horizon = event.time;
  }
  ASSERT_GT(horizon, 30.0);
  // Busy half should see about 10x the arrivals of the quiet half.
  EXPECT_GT(busy / quiet, 6.0);
  EXPECT_LT(busy / quiet, 15.0);
}

TEST(NonhomogeneousMarketTest, AcceptanceRateScalesWithSchedule) {
  // Constant schedule at twice the reference rate: acceptance runs 2x the
  // nominal on-hold rate.
  MarketConfig config;
  config.worker_arrival_rate = 10.0;
  config.arrival_schedule =
      std::make_shared<RateSchedule>(RateSchedule::Constant(20.0));
  config.seed = 32;
  config.record_trace = false;
  std::vector<double> on_hold;
  for (int m = 0; m < 200; ++m) {
    MarketConfig c = config;
    c.seed = 32 + static_cast<uint64_t>(m);
    MarketSimulator market(c);
    TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = 3;
    spec.on_hold_rate = 2.0;  // nominal, at the reference arrival rate
    spec.processing_rate = 50.0;
    const auto id = market.PostTask(spec);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(market.RunToCompletion().ok());
    const TaskOutcome outcome = *market.GetOutcome(*id);
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      on_hold.push_back(rep.OnHoldLatency());
    }
  }
  // Expected effective rate 4.0 -> mean 0.25.
  EXPECT_NEAR(Mean(on_hold), 0.25, 0.03);
}

TEST(HeterogeneousWorkerTest, AggregateErrorRateMatchesMean) {
  // One worker answers many repetitions with the same personal error rate,
  // so answers within a market are correlated: sample across independent
  // markets with a low acceptance probability (≈ one task per worker).
  int wrong = 0, total = 0;
  for (int m = 0; m < 40; ++m) {
    MarketConfig config;
    config.worker_arrival_rate = 50.0;
    config.worker_error_prob = 0.2;
    config.worker_error_concentration = 4.0;  // highly variable workers
    config.seed = 33 + static_cast<uint64_t>(m);
    config.record_trace = false;
    MarketSimulator market(config);
    std::vector<TaskId> ids;
    for (int i = 0; i < 50; ++i) {
      TaskSpec spec;
      spec.price_per_repetition = 1;
      spec.repetitions = 2;
      spec.on_hold_rate = 0.5;
      spec.processing_rate = 2.0;
      spec.num_options = 2;
      ids.push_back(*market.PostTask(spec));
    }
    ASSERT_TRUE(market.RunToCompletion().ok());
    for (TaskId id : ids) {
      const TaskOutcome outcome = *market.GetOutcome(id);
      for (const RepetitionOutcome& rep : outcome.repetitions) {
        ++total;
        if (!rep.correct) ++wrong;
      }
    }
  }
  EXPECT_NEAR(wrong / static_cast<double>(total), 0.2, 0.02);
}

TEST(HeterogeneousWorkerDeathTest, BetaNeedsInteriorMean) {
  MarketConfig config;
  config.worker_arrival_rate = 10.0;
  config.worker_error_prob = 0.0;
  config.worker_error_concentration = 5.0;
  EXPECT_DEATH(MarketSimulator{config}, "HTUNE_CHECK");
}

TEST(TrueCurveTest, MarketOverridesCallerRates) {
  // The caller believes rate 100; the market's truth is rate(price=2) = 3.
  MarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.true_curve = std::make_shared<LinearCurve>(1.0, 1.0);
  config.seed = 34;
  config.record_trace = false;
  std::vector<double> on_hold;
  for (int m = 0; m < 300; ++m) {
    MarketConfig c = config;
    c.seed = 34 + static_cast<uint64_t>(m);
    MarketSimulator market(c);
    TaskSpec spec;
    spec.price_per_repetition = 2;
    spec.repetitions = 2;
    spec.on_hold_rate = 100.0;  // the caller's wrong belief
    spec.processing_rate = 10.0;
    const auto id = market.PostTask(spec);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(market.RunToCompletion().ok());
    const TaskOutcome outcome = *market.GetOutcome(*id);
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      on_hold.push_back(rep.OnHoldLatency());
    }
  }
  EXPECT_NEAR(Mean(on_hold), 1.0 / 3.0, 0.03);
}

TEST(RepriceTest, AffectsOnlyFutureRepetitions) {
  MarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.seed = 35;
  config.record_trace = false;
  MarketSimulator market(config);
  TaskSpec spec;
  spec.price_per_repetition = 2;
  spec.repetitions = 4;
  spec.on_hold_rate = 3.0;
  spec.processing_rate = 1.0;
  const TaskId id = *market.PostTask(spec);
  // Let some progress happen, then reprice.
  market.RunUntil(1.0);
  ASSERT_TRUE(market.Reprice(id, 7, 9.0).ok());
  ASSERT_TRUE(market.RunToCompletion().ok());
  const TaskOutcome outcome = *market.GetOutcome(id);
  ASSERT_EQ(outcome.repetitions.size(), 4u);
  // Every repetition accepted after the reprice carries the new price.
  for (const RepetitionOutcome& rep : outcome.repetitions) {
    if (rep.accepted_time > 1.0) {
      EXPECT_EQ(rep.price, 7);
    } else {
      EXPECT_EQ(rep.price, 2);
    }
  }
  // Spend reflects the mix of old and new prices.
  long expected = 0;
  for (const RepetitionOutcome& rep : outcome.repetitions) {
    expected += rep.price;
  }
  EXPECT_EQ(market.TotalSpent(), expected);
}

TEST(RepriceTest, SpeedsUpAcceptance) {
  // Raise a starving task's price: mean remaining on-hold must shrink.
  RunningStats slow, fast;
  for (int m = 0; m < 200; ++m) {
    for (const bool reprice : {false, true}) {
      MarketConfig config;
      config.worker_arrival_rate = 50.0;
      config.seed = 36 + static_cast<uint64_t>(m);
      config.record_trace = false;
      MarketSimulator market(config);
      TaskSpec spec;
      spec.price_per_repetition = 1;
      spec.repetitions = 1;
      spec.on_hold_rate = 0.2;
      spec.processing_rate = 100.0;
      const TaskId id = *market.PostTask(spec);
      if (reprice) {
        ASSERT_TRUE(market.Reprice(id, 10, 20.0).ok());
      }
      ASSERT_TRUE(market.RunToCompletion().ok());
      (reprice ? fast : slow)
          .Add(market.GetOutcome(id)->repetitions[0].OnHoldLatency());
    }
  }
  EXPECT_LT(fast.Mean() * 10.0, slow.Mean());
}

TEST(RepriceTest, ValidationErrors) {
  MarketConfig config;
  config.worker_arrival_rate = 10.0;
  config.seed = 37;
  MarketSimulator market(config);
  TaskSpec spec;
  spec.price_per_repetition = 1;
  spec.repetitions = 1;
  spec.on_hold_rate = 1.0;
  spec.processing_rate = 5.0;
  const TaskId id = *market.PostTask(spec);

  EXPECT_FALSE(market.Reprice(id, 0, 1.0).ok());          // bad price
  EXPECT_FALSE(market.Reprice(id, 2, 0.0).ok());          // no rate, no curve
  EXPECT_EQ(market.Reprice(id, 2, 100.0).code(),          // above arrivals
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(market.Reprice(99, 2, 1.0).code(), StatusCode::kNotFound);

  ASSERT_TRUE(market.RunToCompletion().ok());
  EXPECT_EQ(market.Reprice(id, 2, 1.0).code(),
            StatusCode::kFailedPrecondition);  // completed
}

TEST(RepriceTest, MidProcessingKeepsInFlightPromise) {
  // Repricing while the current repetition is being processed must not
  // touch the in-flight worker's terms; only later repetitions repay.
  MarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.seed = 40;
  config.record_trace = false;
  MarketSimulator market(config);
  TaskSpec spec;
  spec.price_per_repetition = 2;
  spec.repetitions = 2;
  spec.on_hold_rate = 5.0;
  spec.processing_rate = 0.5;  // long processing: easy to catch in flight
  const TaskId id = *market.PostTask(spec);
  bool repriced = false;
  for (int step = 0; step < 400 && !repriced; ++step) {
    market.RunUntil(market.now() + 0.02);
    const auto progress = market.GetProgress(id);
    ASSERT_TRUE(progress.ok());
    if (progress->repetitions.size() == 1 &&
        progress->repetitions[0].completed_time == 0.0) {
      ASSERT_TRUE(market.Reprice(id, 7, 9.0).ok());  // mid-processing
      repriced = true;
    }
  }
  ASSERT_TRUE(repriced);
  ASSERT_TRUE(market.RunToCompletion().ok());
  const TaskOutcome outcome = *market.GetOutcome(id);
  ASSERT_EQ(outcome.repetitions.size(), 2u);
  EXPECT_EQ(outcome.repetitions[0].price, 2);  // promise kept
  EXPECT_EQ(outcome.repetitions[1].price, 7);
  EXPECT_EQ(market.TotalSpent(), 9);
}

TEST(RepriceTest, JustAbandonedSlotTakesNewTerms) {
  // A repetition whose attempt was just abandoned is back on hold: a
  // reprice right then governs the slot's re-exposure, and the repetition
  // that finally answers carries the new price.
  MarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.abandon_prob = 0.6;
  config.abandon_hold_rate = 2.0;
  config.seed = 41;
  config.record_trace = false;
  MarketSimulator market(config);
  TaskSpec spec;
  spec.price_per_repetition = 2;
  spec.repetitions = 2;
  spec.on_hold_rate = 5.0;
  spec.processing_rate = 2.0;
  const TaskId id = *market.PostTask(spec);
  double reprice_time = -1.0;
  for (int step = 0; step < 400 && reprice_time < 0.0; ++step) {
    market.RunUntil(market.now() + 0.02);
    const auto progress = market.GetProgress(id);
    ASSERT_TRUE(progress.ok());
    if (progress->completed_time == 0.0 && progress->abandoned_attempts > 0 &&
        market.OnHoldSince(id).ok()) {
      ASSERT_TRUE(market.Reprice(id, 7, 9.0).ok());  // just-abandoned slot
      reprice_time = market.now();
    }
  }
  ASSERT_GE(reprice_time, 0.0) << "seed produced no mid-job abandonment";
  ASSERT_TRUE(market.RunToCompletion().ok());
  const TaskOutcome outcome = *market.GetOutcome(id);
  ASSERT_EQ(outcome.repetitions.size(), 2u);
  long expected_spend = 0;
  for (const RepetitionOutcome& rep : outcome.repetitions) {
    EXPECT_EQ(rep.price, rep.accepted_time > reprice_time ? 7 : 2);
    expected_spend += rep.price;
  }
  EXPECT_EQ(market.TotalSpent(), expected_spend);
}

TEST(RepriceTest, AfterCompletionFailsPrecondition) {
  MarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.seed = 42;
  config.record_trace = false;
  MarketSimulator market(config);
  TaskSpec spec;
  spec.price_per_repetition = 1;
  spec.repetitions = 1;
  spec.on_hold_rate = 5.0;
  spec.processing_rate = 5.0;
  const TaskId id = *market.PostTask(spec);
  ASSERT_TRUE(market.RunToCompletion().ok());
  EXPECT_EQ(market.Reprice(id, 3, 6.0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RepriceTest, TrueCurveDrivesRepriceRate) {
  MarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.true_curve = std::make_shared<LinearCurve>(2.0, 0.0);
  config.seed = 38;
  config.record_trace = false;
  RunningStats on_hold;
  for (int m = 0; m < 200; ++m) {
    MarketConfig c = config;
    c.seed = 38 + static_cast<uint64_t>(m);
    MarketSimulator market(c);
    TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = 1;
    spec.processing_rate = 100.0;
    const TaskId id = *market.PostTask(spec);
    // Reprice to 5 units: the true curve gives rate 10 (argument ignored).
    ASSERT_TRUE(market.Reprice(id, 5, 0.001).ok());
    ASSERT_TRUE(market.RunToCompletion().ok());
    on_hold.Add(market.GetOutcome(id)->repetitions[0].OnHoldLatency());
  }
  EXPECT_NEAR(on_hold.Mean(), 0.1, 0.02);
}

}  // namespace
}  // namespace htune
