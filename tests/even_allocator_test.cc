#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "tuning/evaluator.h"
#include "tuning/even_allocator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Curve() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

TuningProblem HomogeneousProblem(int tasks, int reps, long budget,
                                 std::shared_ptr<const PriceRateCurve> curve =
                                     Curve()) {
  TaskGroup g;
  g.name = "homo";
  g.num_tasks = tasks;
  g.repetitions = reps;
  g.processing_rate = 2.0;
  g.curve = std::move(curve);
  TuningProblem problem;
  problem.groups.push_back(g);
  problem.budget = budget;
  return problem;
}

TEST(EvenAllocatorTest, ExactDivisionGivesUniformPrices) {
  const TuningProblem problem = HomogeneousProblem(10, 5, 500);
  const auto alloc = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_TRUE(alloc->groups[0].IsUniform());
  EXPECT_EQ(alloc->groups[0].UniformPrice(), 10);
  EXPECT_EQ(alloc->TotalCost(), 500);
}

TEST(EvenAllocatorTest, SpendsEntireBudgetWithRemainder) {
  // 10 tasks x 3 reps = 30 reps; budget 100 = 3*30 + 10 -> gamma=1, sigma=0.
  const TuningProblem problem = HomogeneousProblem(10, 3, 100);
  const auto alloc = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->TotalCost(), 100);
  // Every task got exactly one +1 repetition.
  for (const auto& task : alloc->groups[0].prices) {
    int extras = 0;
    for (int p : task) {
      EXPECT_GE(p, 3);
      EXPECT_LE(p, 4);
      if (p == 4) ++extras;
    }
    EXPECT_EQ(extras, 1);
  }
}

TEST(EvenAllocatorTest, SigmaUnitsGoToDistinctTasks) {
  // 4 tasks x 2 reps = 8 reps; budget 19 = 2*8 + 3 -> gamma=0, sigma=3.
  const TuningProblem problem = HomogeneousProblem(4, 2, 19);
  const auto alloc = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->TotalCost(), 19);
  int tasks_with_extra = 0;
  for (const auto& task : alloc->groups[0].prices) {
    int extras = 0;
    for (int p : task) {
      if (p == 3) ++extras;
      EXPECT_GE(p, 2);
      EXPECT_LE(p, 3);
    }
    EXPECT_LE(extras, 1);
    if (extras == 1) ++tasks_with_extra;
  }
  EXPECT_EQ(tasks_with_extra, 3);
}

TEST(EvenAllocatorTest, GammaAndSigmaTogether) {
  // 3 tasks x 4 reps = 12 reps; budget 53 = 4*12 + 5 -> gamma=1, sigma=2.
  const TuningProblem problem = HomogeneousProblem(3, 4, 53);
  const auto alloc = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->TotalCost(), 53);
}

TEST(EvenAllocatorTest, RejectsInsufficientBudget) {
  const TuningProblem problem = HomogeneousProblem(10, 5, 49);
  EXPECT_FALSE(EvenAllocator().Allocate(problem).ok());
}

TEST(EvenAllocatorTest, RejectsHeterogeneousGroups) {
  TuningProblem problem = HomogeneousProblem(5, 2, 1000);
  TaskGroup different = problem.groups[0];
  different.repetitions = 3;
  problem.groups.push_back(different);
  EXPECT_EQ(EvenAllocator().Allocate(problem).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EvenAllocatorTest, AcceptsMultipleIdenticalGroups) {
  TuningProblem problem = HomogeneousProblem(5, 2, 1000);
  problem.groups.push_back(problem.groups[0]);
  const auto alloc = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->groups.size(), 2u);
  EXPECT_EQ(alloc->TotalCost(), 1000);
}

TEST(EvenAllocatorTest, EvenBeatsLopsidedSplits) {
  // Theorem 1: even allocation minimizes expected phase-1 latency. Compare
  // against hand-built lopsided allocations of the same total cost.
  const TuningProblem problem = HomogeneousProblem(4, 2, 48);  // 6 per rep
  const auto even = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(even.ok());
  const double even_latency = ExpectedPhase1Latency(problem, *even);

  // Lopsided: first half of the tasks pay 9, the rest pay 3.
  Allocation lopsided;
  lopsided.groups.push_back(UniformGroupAllocation(4, 2, 9));
  lopsided.groups[0].prices[2] = {3, 3};
  lopsided.groups[0].prices[3] = {3, 3};
  ASSERT_EQ(lopsided.TotalCost(), 48);
  EXPECT_LT(even_latency, ExpectedPhase1Latency(problem, lopsided));

  // Lopsided within a task: repetitions pay (10, 2) instead of (6, 6).
  Allocation uneven_reps;
  uneven_reps.groups.push_back(UniformGroupAllocation(4, 2, 6));
  for (auto& task : uneven_reps.groups[0].prices) {
    task = {10, 2};
  }
  ASSERT_EQ(uneven_reps.TotalCost(), 48);
  EXPECT_LT(even_latency, ExpectedPhase1Latency(problem, uneven_reps));
}

// Property sweep: across curves and budgets, EA's allocation never loses to
// a +1/-1 perturbation of itself (local optimality of the even split).
class EaPerturbationSweep : public ::testing::TestWithParam<long> {};

TEST_P(EaPerturbationSweep, LocallyOptimal) {
  const long budget = GetParam();
  const TuningProblem problem = HomogeneousProblem(3, 2, budget);
  const auto even = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(even.ok());
  const double even_latency = ExpectedPhase1Latency(problem, *even);

  // Move one unit from task 0 rep 0 to task 2 rep 1 (if legal).
  Allocation perturbed = *even;
  if (perturbed.groups[0].prices[0][0] > 1) {
    --perturbed.groups[0].prices[0][0];
    ++perturbed.groups[0].prices[2][1];
    EXPECT_LE(even_latency,
              ExpectedPhase1Latency(problem, perturbed) + 1e-9)
        << "budget=" << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, EaPerturbationSweep,
                         ::testing::Values(12, 13, 17, 24, 31, 60, 100));

}  // namespace
}  // namespace htune
