#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "model/distributions.h"
#include "model/order_statistics.h"
#include "rng/random.h"
#include "stats/descriptive.h"

namespace htune {
namespace {

TEST(HarmonicTest, KnownValues) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(4), 25.0 / 12.0, 1e-12);
}

// Kahan-compensated forward sum: exact to well below 1e-14 relative error
// even at n = 1e6, so it can referee the asymptotic expansion at 1e-12.
double KahanHarmonic(int n) {
  double sum = 0.0;
  double carry = 0.0;
  for (int k = 1; k <= n; ++k) {
    const double term = 1.0 / static_cast<double>(k) - carry;
    const double next = sum + term;
    carry = (next - sum) - term;
    sum = next;
  }
  return sum;
}

TEST(HarmonicTest, AsymptoticExpansionMatchesExactSum) {
  // The implementation switches to the Euler–Maclaurin expansion above
  // n = 64; pin agreement with the exact sum across the asymptotic range.
  for (const int n : {65, 100, 128, 1000, 4096, 100000, 1000000}) {
    EXPECT_NEAR(HarmonicNumber(n), KahanHarmonic(n), 1e-12)
        << "n = " << n;
  }
}

TEST(HarmonicTest, ContinuousAcrossExpansionThreshold) {
  // H(65) - H(64) crosses the exact-sum/expansion boundary and must still
  // equal 1/65 to full accuracy.
  EXPECT_NEAR(HarmonicNumber(65) - HarmonicNumber(64), 1.0 / 65.0, 1e-13);
}

TEST(ExpectedMaxExponentialTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(ExpectedMaxExponential(1, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ExpectedMaxExponential(2, 1.0), 1.5);
  EXPECT_NEAR(ExpectedMaxExponential(3, 0.5), 2.0 * (1.0 + 0.5 + 1.0 / 3.0),
              1e-12);
}

TEST(ExpectedMaxTwoExponentialsTest, SymmetricCaseMatchesHarmonic) {
  EXPECT_NEAR(ExpectedMaxTwoExponentials(2.0, 2.0),
              ExpectedMaxExponential(2, 2.0), 1e-12);
}

TEST(ExpectedMaxTwoExponentialsTest, MatchesMonteCarlo) {
  Random rng(1);
  RunningStats stats;
  for (int i = 0; i < 400000; ++i) {
    stats.Add(std::max(rng.Exponential(1.0), rng.Exponential(3.0)));
  }
  EXPECT_NEAR(stats.Mean(), ExpectedMaxTwoExponentials(1.0, 3.0), 0.01);
}

TEST(ExpectedMinExponentialTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(ExpectedMinExponential(4, 2.0), 1.0 / 8.0);
}

TEST(ExpectedMaxGenericTest, MatchesExponentialClosedForm) {
  for (int n : {1, 2, 5, 20, 100}) {
    const double lambda = 1.7;
    ExponentialDist dist(lambda);
    const double numeric = ExpectedMaxGeneric(
        [&dist](double t) { return dist.Cdf(t); }, n, dist.Mean());
    EXPECT_NEAR(numeric, ExpectedMaxExponential(n, lambda), 1e-6)
        << "n=" << n;
  }
}

TEST(ExpectedMaxErlangTest, K1UsesHarmonicForm) {
  EXPECT_NEAR(ExpectedMaxErlang(10, 1, 2.0), ExpectedMaxExponential(10, 2.0),
              1e-12);
}

TEST(ExpectedMaxErlangTest, SingleDrawIsMean) {
  EXPECT_NEAR(ExpectedMaxErlang(1, 5, 2.0), 2.5, 1e-6);
}

// Property sweep: E[max of n Erlang(k, lambda)] matches Monte Carlo across a
// (n, k, lambda) grid.
class ErlangMaxSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(ErlangMaxSweep, MatchesMonteCarlo) {
  const auto [n, k, lambda] = GetParam();
  const double analytic = ExpectedMaxErlang(n, k, lambda);
  Random rng(static_cast<uint64_t>(n * 1000 + k * 10) + 7);
  RunningStats stats;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    double max_value = 0.0;
    for (int i = 0; i < n; ++i) {
      max_value = std::max(max_value, rng.Erlang(k, lambda));
    }
    stats.Add(max_value);
  }
  EXPECT_NEAR(analytic, stats.Mean(), 5.0 * stats.StdError() + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ErlangMaxSweep,
    ::testing::Combine(::testing::Values(1, 3, 10, 50),
                       ::testing::Values(1, 2, 5),
                       ::testing::Values(0.5, 2.0, 10.0)));

TEST(ExpectedMaxErlangTest, MonotoneInN) {
  double prev = 0.0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const double value = ExpectedMaxErlang(n, 3, 1.0);
    EXPECT_GT(value, prev);
    prev = value;
  }
}

TEST(ExpectedMaxErlangTest, DecreasingInLambda) {
  double prev = 1e18;
  for (double lambda : {0.5, 1.0, 2.0, 4.0}) {
    const double value = ExpectedMaxErlang(10, 4, lambda);
    EXPECT_LT(value, prev);
    prev = value;
  }
}

TEST(ExpectedMaxErlangTest, ScalesInverselyWithLambda) {
  // E[max] for rate c*lambda is E[max for lambda] / c.
  const double base = ExpectedMaxErlang(7, 3, 1.0);
  EXPECT_NEAR(ExpectedMaxErlang(7, 3, 4.0), base / 4.0, 1e-6);
}

TEST(ExpectedMaxTwoPhaseTest, MatchesMonteCarlo) {
  TwoPhaseLatencyDist dist(2.0, 0.8);
  const double analytic = ExpectedMaxTwoPhase(12, dist);
  Random rng(9);
  RunningStats stats;
  for (int t = 0; t < 100000; ++t) {
    double max_value = 0.0;
    for (int i = 0; i < 12; ++i) {
      max_value = std::max(max_value, dist.Sample(rng));
    }
    stats.Add(max_value);
  }
  EXPECT_NEAR(analytic, stats.Mean(), 5.0 * stats.StdError() + 1e-3);
}

TEST(ExpectedMaxIndependentTest, MatchesTwoExponentialClosedForm) {
  ExponentialDist d1(1.0), d2(3.0);
  const double numeric = ExpectedMaxIndependent(
      {[&d1](double t) { return d1.Cdf(t); },
       [&d2](double t) { return d2.Cdf(t); }},
      1.0);
  EXPECT_NEAR(numeric, ExpectedMaxTwoExponentials(1.0, 3.0), 1e-6);
}

TEST(ExpectedMaxIndependentTest, MotivationExampleOneShape) {
  // Figure 1(a): task 1 = one sort vote, task 2 = two sequential sort votes.
  // With the load-sensitive allocation the heavier task gets the higher
  // rate, which must beat the even split.
  ExponentialDist even1(3.0);
  ErlangDist even2(2, 3.0);
  const double even = ExpectedMaxIndependent(
      {[&even1](double t) { return even1.Cdf(t); },
       [&even2](double t) { return even2.Cdf(t); }},
      even2.Mean());
  ExponentialDist biased1(2.0);
  ErlangDist biased2(2, 4.0);
  const double load_sensitive = ExpectedMaxIndependent(
      {[&biased1](double t) { return biased1.Cdf(t); },
       [&biased2](double t) { return biased2.Cdf(t); }},
      biased2.Mean());
  EXPECT_LT(load_sensitive, even);
}

TEST(ExpectedMaxWithMultiplicityTest, MatchesUnrolledForm) {
  ErlangDist dist(3, 2.0);
  const auto cdf = [&dist](double t) { return dist.Cdf(t); };
  const double grouped =
      ExpectedMaxWithMultiplicity({{cdf, 25}}, dist.Mean());
  const double direct = ExpectedMaxErlang(25, 3, 2.0);
  EXPECT_NEAR(grouped, direct, 1e-6);
}

TEST(ExpectedMaxWithMultiplicityTest, MixedGroups) {
  ExponentialDist fast(5.0);
  ExponentialDist slow(1.0);
  const double mixed = ExpectedMaxWithMultiplicity(
      {{[&fast](double t) { return fast.Cdf(t); }, 3},
       {[&slow](double t) { return slow.Cdf(t); }, 2}},
      1.0);
  Random rng(11);
  RunningStats stats;
  for (int t = 0; t < 200000; ++t) {
    double max_value = 0.0;
    for (int i = 0; i < 3; ++i) {
      max_value = std::max(max_value, fast.Sample(rng));
    }
    for (int i = 0; i < 2; ++i) {
      max_value = std::max(max_value, slow.Sample(rng));
    }
    stats.Add(max_value);
  }
  EXPECT_NEAR(mixed, stats.Mean(), 5.0 * stats.StdError() + 1e-3);
}

TEST(OrderStatisticsDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(ExpectedMaxExponential(0, 1.0), "HTUNE_CHECK");
  EXPECT_DEATH(ExpectedMaxExponential(1, 0.0), "HTUNE_CHECK");
  EXPECT_DEATH(ExpectedMaxErlang(1, 0, 1.0), "HTUNE_CHECK");
  EXPECT_DEATH(ExpectedMaxIndependent({}, 1.0), "HTUNE_CHECK");
}

}  // namespace
}  // namespace htune
