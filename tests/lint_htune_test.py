#!/usr/bin/env python3
"""Unit tests for tools/lint_htune.py, driven from ctest.

Each rule is exercised three ways from fixture files in
tests/lint_fixtures/: a positive hit, the same hit suppressed, and a
clean file using the approved alternative. Fixtures are linted under a
*virtual* path (e.g. src/market/foo.cc) so the path-scoped rules apply
regardless of where the checkout lives.
"""

import os
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import lint_htune  # noqa: E402

FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")


def lint_fixture(name, virtual_path):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as f:
        return lint_htune.lint_text(f.read(), virtual_path)


class RuleFixtureTest(unittest.TestCase):
    # (fixture stem, virtual path, rule, findings expected in positive)
    CASES = [
        ("nondeterminism", "src/model/fixture.cc", "nondeterminism", 5),
        ("unordered_iter", "src/obs/fixture.cc", "unordered-iter", 1),
        ("market_obs", "src/market/fixture.cc", "market-obs", 1),
        ("market_node_map", "src/market/fixture.cc", "market-node-map", 3),
        ("raw_mutex", "src/tuning/fixture.cc", "raw-mutex", 2),
        ("raw_retry", "src/control/fixture.cc", "raw-retry", 3),
        ("fleet_lifecycle", "src/control/fixture.cc", "fleet-lifecycle", 2),
    ]

    def test_positive_fixtures_fire(self):
        for stem, vpath, rule, expected in self.CASES:
            with self.subTest(rule=rule):
                findings = lint_fixture(f"{stem}_positive.cc", vpath)
                self.assertEqual(len(findings), expected,
                                 [str(f) for f in findings])
                self.assertTrue(all(f.rule == rule for f in findings))

    def test_suppressed_fixtures_are_silent(self):
        for stem, vpath, rule, _ in self.CASES:
            with self.subTest(rule=rule):
                findings = lint_fixture(f"{stem}_suppressed.cc", vpath)
                self.assertEqual([str(f) for f in findings], [])

    def test_clean_fixtures_are_silent(self):
        for stem, vpath, rule, _ in self.CASES:
            with self.subTest(rule=rule):
                findings = lint_fixture(f"{stem}_clean.cc", vpath)
                self.assertEqual([str(f) for f in findings], [])


class RuleScopingTest(unittest.TestCase):
    def test_rules_scoped_to_src(self):
        text = "std::mutex mu;\nint x = rand();\n"
        self.assertEqual(lint_htune.lint_text(text, "tests/foo.cc"), [])
        self.assertEqual(len(lint_htune.lint_text(text, "src/foo.cc")), 2)

    def test_market_rule_scoped_to_market(self):
        text = 'void F() { HTUNE_OBS_COUNTER_ADD("x", 1); }\n'
        self.assertEqual(lint_htune.lint_text(text, "src/control/foo.cc"), [])
        self.assertEqual(
            len(lint_htune.lint_text(text, "src/market/foo.cc")), 1)

    def test_node_map_rule_scoped_to_market(self):
        text = "std::map<int, int> by_id;\n"
        self.assertEqual(lint_htune.lint_text(text, "src/control/foo.cc"), [])
        findings = lint_htune.lint_text(text, "src/market/foo.cc")
        self.assertEqual([f.rule for f in findings], ["market-node-map"])

    def test_mutex_header_exempt_from_raw_mutex(self):
        text = "std::mutex mu_;\n"
        self.assertEqual(lint_htune.lint_text(text, "src/common/mutex.h"), [])

    def test_resilience_exempt_from_raw_retry(self):
        text = "for (int attempt = 1; attempt <= max; ++attempt) {\n"
        self.assertEqual(
            lint_htune.lint_text(text, "src/resilience/policy.h"), [])
        self.assertEqual(
            len(lint_htune.lint_text(text, "src/durability/journal.cc")), 1)

    def test_fleet_lifecycle_scoped(self):
        text = "entry.state = FleetJobState::kDone;\n"
        self.assertEqual(
            lint_htune.lint_text(text, "src/fleet/supervisor.cc"), [])
        self.assertEqual(
            lint_htune.lint_text(text, "src/durability/manifest.cc"), [])
        findings = lint_htune.lint_text(text, "src/control/foo.cc")
        self.assertEqual([f.rule for f in findings], ["fleet-lifecycle"])
        comparison = "if (entry.state == FleetJobState::kDone) return;\n"
        self.assertEqual(
            lint_htune.lint_text(comparison, "src/control/foo.cc"), [])

    def test_non_cxx_files_skipped(self):
        self.assertEqual(
            lint_htune.lint_text("std::mutex mu;", "src/notes.md"), [])


class SuppressionMechanicsTest(unittest.TestCase):
    def test_same_line_suppression(self):
        text = ("std::mutex mu;  "
                "// htune-lint: allow(raw-mutex) fixture reason\n")
        self.assertEqual(lint_htune.lint_text(text, "src/foo.cc"), [])

    def test_wrong_rule_suppression_does_not_silence(self):
        text = ("// htune-lint: allow(nondeterminism) wrong rule\n"
                "std::mutex mu;\n")
        findings = lint_htune.lint_text(text, "src/foo.cc")
        # The raw-mutex hit still fires, and the misdirected allow is
        # itself reported as stale.
        self.assertEqual(sorted(f.rule for f in findings),
                         ["raw-mutex", "stale-suppression"])

    def test_file_level_suppression(self):
        text = ("// htune-lint: allow-file(raw-mutex) whole-file interop\n"
                "std::mutex a;\nstd::mutex b;\n")
        self.assertEqual(lint_htune.lint_text(text, "src/foo.cc"), [])


class StaleSuppressionTest(unittest.TestCase):
    def test_unused_allow_is_stale(self):
        text = "int x;  // htune-lint: allow(raw-mutex) nothing here\n"
        findings = lint_htune.lint_text(text, "src/foo.cc")
        self.assertEqual([f.rule for f in findings], ["stale-suppression"])
        self.assertEqual(findings[0].line, 1)
        self.assertIn("no longer suppresses", findings[0].message)

    def test_unknown_rule_allow_is_stale(self):
        text = "int x;  // htune-lint: allow(no-such-rule) typo\n"
        findings = lint_htune.lint_text(text, "src/foo.cc")
        self.assertEqual([f.rule for f in findings], ["stale-suppression"])
        self.assertIn("unknown rule", findings[0].message)

    def test_unused_allow_file_is_stale(self):
        text = "// htune-lint: allow-file(nondeterminism) nothing left\n"
        findings = lint_htune.lint_text(text, "src/foo.cc")
        self.assertEqual([f.rule for f in findings], ["stale-suppression"])
        self.assertIn("allow-file(nondeterminism)", findings[0].message)

    def test_unknown_rule_allow_file_is_stale(self):
        text = "// htune-lint: allow-file(bogus) typo\n"
        findings = lint_htune.lint_text(text, "src/foo.cc")
        self.assertEqual([f.rule for f in findings], ["stale-suppression"])
        self.assertIn("unknown rule", findings[0].message)

    def test_used_suppressions_are_not_stale(self):
        text = ("// htune-lint: allow(raw-mutex) interop fixture\n"
                "std::mutex mu;\n"
                "// htune-lint: allow-file(nondeterminism) sim clock shim\n"
                "long t = time(0);\n")
        self.assertEqual(lint_htune.lint_text(text, "src/foo.cc"), [])

    def test_stale_suppression_is_not_itself_suppressible(self):
        text = ("// htune-lint: allow-file(stale-suppression) nice try\n"
                "int x;  // htune-lint: allow(raw-mutex) unused\n")
        findings = lint_htune.lint_text(text, "src/foo.cc")
        self.assertEqual(sorted(f.rule for f in findings),
                         ["stale-suppression", "stale-suppression"])


class LexerTest(unittest.TestCase):
    def test_comments_and_strings_ignored(self):
        text = ('// std::mutex in a line comment\n'
                '/* std::random_device in a block\n'
                '   comment spanning lines */\n'
                'const char* s = "std::mutex rand() time()";\n')
        self.assertEqual(lint_htune.lint_text(text, "src/foo.cc"), [])

    def test_identifier_suffix_not_matched(self):
        text = "double some_time() { return uptime(); }\n"
        self.assertEqual(lint_htune.lint_text(text, "src/foo.cc"), [])


class TreeIsCleanTest(unittest.TestCase):
    def test_src_and_tools_lint_clean(self):
        findings = lint_htune.lint_paths(
            [os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "tools")],
            root=REPO_ROOT)
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
