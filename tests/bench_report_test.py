#!/usr/bin/env python3
"""Fixture tests for tools/bench_report.py's validator modes.

Exercises the overhead-gate helper shared by --chaos and --fleet (including
the zero-denominator skip path that used to traceback on smoke exports) and
the --shared validator for bench/shared_market exports. Pure stdlib; runs
under ctest as bench_report_unit.
"""

import contextlib
import copy
import io
import json
import os
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import bench_report  # noqa: E402


def write_json(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(payload, f)
    return path


CHAOS_FIXTURE = {
    "schema_version": 1,
    "schedules": 4,
    "converged": 4,
    "crashes": 9,
    "faults_healed": 17,
    "fault_free_overhead": {
        "on_ms": 12.5,
        "off_ms": 12.0,
        "ratio": 12.5 / 12.0,
        "max_ratio": 1.10,
    },
    "recovery_latency_ms": {
        "count": 9,
        "min": 0.5,
        "mean": 1.5,
        "max": 4.0,
        "fresh_run_ms": 12.0,
    },
}

FLEET_FIXTURE = {
    "schema_version": 1,
    "smoke": False,
    "fleet_jobs": 24,
    "schedules": 6,
    "kills": 12,
    "poisoned": 2,
    "quarantines": 2,
    "recovered_jobs": 22,
    "supervision_overhead": {
        # Mirrors the committed BENCH_fleet.json precision: ms at 4
        # decimals, ratio at 6 — the re-derivation must tolerate that.
        "supervised_ms": 13.6993,
        "direct_ms": 14.5209,
        "ratio": 0.943417,
        "max_ratio": 1.02,
    },
    "recovery_latency_ms": {
        "count": 12,
        "min": 0.3,
        "mean": 0.9,
        "max": 2.1,
    },
}

SHARED_FIXTURE = {
    "schema_version": 1,
    "smoke": False,
    "jobs": 1024,
    "min_jobs_for_gate": 1000,
    "tasks": 4096,
    "tasks_completed": 4096,
    "total_events": 250000,
    "wall_seconds": 2.5,
    "events_per_sec": 250000 / 2.5,
    "competition": {
        "isolated_rate": 4.0,
        "shared_rate": 2.02,
        "expected_ratio": 0.5,
        "observed_ratio": 2.02 / 4.0,
        "tolerance": 0.05,
    },
}


class OverheadGateTest(unittest.TestCase):
    """check_overhead_gate: the seam both --chaos and --fleet load through."""

    def test_valid_section_passes(self):
        overhead = dict(CHAOS_FIXTURE["fault_free_overhead"])
        self.assertTrue(bench_report.check_overhead_gate(
            "x.json", overhead, "fault_free_overhead", "on_ms", "off_ms"))

    def test_zero_denominator_skips_instead_of_dividing(self):
        overhead = {"on_ms": 0.0, "off_ms": 0.0, "ratio": 0.0,
                    "max_ratio": 1.10}
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            checked = bench_report.check_overhead_gate(
                "x.json", overhead, "fault_free_overhead", "on_ms", "off_ms")
        self.assertFalse(checked)
        self.assertIn("SKIPPED", stderr.getvalue())

    def test_ratio_above_max_fails(self):
        overhead = {"on_ms": 15.0, "off_ms": 10.0, "ratio": 1.5,
                    "max_ratio": 1.10}
        with self.assertRaises(SystemExit):
            bench_report.check_overhead_gate(
                "x.json", overhead, "fault_free_overhead", "on_ms", "off_ms")

    def test_inconsistent_ratio_fails(self):
        overhead = {"on_ms": 10.0, "off_ms": 10.0, "ratio": 0.5,
                    "max_ratio": 1.10}
        with self.assertRaises(SystemExit):
            bench_report.check_overhead_gate(
                "x.json", overhead, "fault_free_overhead", "on_ms", "off_ms")

    def test_sub_resolution_times_skip_rederivation_but_keep_gate(self):
        # Both sides timed under the 0.1 ms floor: the quotient is rounding
        # noise, so only the ratio <= max_ratio gate applies.
        overhead = {"on_ms": 0.0001, "off_ms": 0.0002, "ratio": 1.0,
                    "max_ratio": 1.10}
        self.assertTrue(bench_report.check_overhead_gate(
            "x.json", overhead, "fault_free_overhead", "on_ms", "off_ms"))
        overhead["ratio"] = 1.5
        with self.assertRaises(SystemExit):
            bench_report.check_overhead_gate(
                "x.json", overhead, "fault_free_overhead", "on_ms", "off_ms")

    def test_non_finite_value_fails(self):
        overhead = {"on_ms": float("nan"), "off_ms": 10.0, "ratio": 1.0,
                    "max_ratio": 1.10}
        with self.assertRaises(SystemExit):
            bench_report.check_overhead_gate(
                "x.json", overhead, "fault_free_overhead", "on_ms", "off_ms")


class ChaosValidatorTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def test_valid_export_passes_and_digests(self):
        path = write_json(self.dir.name, "chaos.json", CHAOS_FIXTURE)
        data = bench_report.load_chaos(path)
        digest = bench_report.chaos_digest(data)
        self.assertIn("schedules=4 converged=4", digest)

    def test_zero_off_ms_smoke_export_skips_gate(self):
        fixture = copy.deepcopy(CHAOS_FIXTURE)
        fixture["fault_free_overhead"] = {
            "on_ms": 0.0, "off_ms": 0.0, "ratio": 0.0, "max_ratio": 1.10}
        path = write_json(self.dir.name, "chaos.json", fixture)
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            bench_report.load_chaos(path)
        self.assertIn("SKIPPED", stderr.getvalue())

    def test_unconverged_schedule_fails(self):
        fixture = copy.deepcopy(CHAOS_FIXTURE)
        fixture["converged"] = 3
        path = write_json(self.dir.name, "chaos.json", fixture)
        with self.assertRaises(SystemExit):
            bench_report.load_chaos(path)


class FleetValidatorTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def test_committed_precision_export_passes(self):
        path = write_json(self.dir.name, "fleet.json", FLEET_FIXTURE)
        data = bench_report.load_fleet(path)
        self.assertIn("overhead supervised_ms=",
                      bench_report.fleet_digest(data))

    def test_zero_direct_ms_smoke_export_skips_gate(self):
        fixture = copy.deepcopy(FLEET_FIXTURE)
        fixture["smoke"] = True
        fixture["supervision_overhead"] = {
            "supervised_ms": 0.0, "direct_ms": 0.0, "ratio": 0.0,
            "max_ratio": 1.02}
        path = write_json(self.dir.name, "fleet.json", fixture)
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            bench_report.load_fleet(path)
        self.assertIn("SKIPPED", stderr.getvalue())

    def test_quarantine_mismatch_fails(self):
        fixture = copy.deepcopy(FLEET_FIXTURE)
        fixture["quarantines"] = 3
        path = write_json(self.dir.name, "fleet.json", fixture)
        with self.assertRaises(SystemExit):
            bench_report.load_fleet(path)

    def test_overhead_ratio_above_max_fails(self):
        fixture = copy.deepcopy(FLEET_FIXTURE)
        fixture["supervision_overhead"]["ratio"] = 1.5
        fixture["supervision_overhead"]["supervised_ms"] = 21.7814
        path = write_json(self.dir.name, "fleet.json", fixture)
        with self.assertRaises(SystemExit):
            bench_report.load_fleet(path)


class SharedValidatorTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def test_valid_export_passes_and_digests(self):
        path = write_json(self.dir.name, "shared.json", SHARED_FIXTURE)
        data = bench_report.load_shared(path)
        digest = bench_report.shared_digest(data)
        self.assertIn("jobs=1024 min_jobs_for_gate=1000", digest)
        self.assertIn("competition isolated_rate=4", digest)

    def test_full_run_below_job_gate_fails(self):
        fixture = copy.deepcopy(SHARED_FIXTURE)
        fixture["jobs"] = 8
        path = write_json(self.dir.name, "shared.json", fixture)
        with self.assertRaises(SystemExit):
            bench_report.load_shared(path)

    def test_smoke_run_below_job_gate_passes(self):
        fixture = copy.deepcopy(SHARED_FIXTURE)
        fixture["smoke"] = True
        fixture["jobs"] = 8
        path = write_json(self.dir.name, "shared.json", fixture)
        bench_report.load_shared(path)

    def test_incomplete_tasks_fail(self):
        fixture = copy.deepcopy(SHARED_FIXTURE)
        fixture["tasks_completed"] = fixture["tasks"] - 1
        path = write_json(self.dir.name, "shared.json", fixture)
        with self.assertRaises(SystemExit):
            bench_report.load_shared(path)

    def test_inconsistent_events_per_sec_fails(self):
        fixture = copy.deepcopy(SHARED_FIXTURE)
        fixture["events_per_sec"] = fixture["events_per_sec"] * 1.01
        path = write_json(self.dir.name, "shared.json", fixture)
        with self.assertRaises(SystemExit):
            bench_report.load_shared(path)

    def test_zero_isolated_rate_skips_competition_gate(self):
        fixture = copy.deepcopy(SHARED_FIXTURE)
        fixture["competition"].update(
            {"isolated_rate": 0.0, "shared_rate": 0.0, "observed_ratio": 0.0})
        path = write_json(self.dir.name, "shared.json", fixture)
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            bench_report.load_shared(path)
        self.assertIn("SKIPPED", stderr.getvalue())

    def test_competition_ratio_outside_tolerance_fails(self):
        fixture = copy.deepcopy(SHARED_FIXTURE)
        fixture["competition"]["shared_rate"] = 3.6
        fixture["competition"]["observed_ratio"] = 3.6 / 4.0
        path = write_json(self.dir.name, "shared.json", fixture)
        with self.assertRaises(SystemExit):
            bench_report.load_shared(path)

    def test_wrong_schema_version_fails(self):
        fixture = copy.deepcopy(SHARED_FIXTURE)
        fixture["schema_version"] = 2
        path = write_json(self.dir.name, "shared.json", fixture)
        with self.assertRaises(SystemExit):
            bench_report.load_shared(path)


if __name__ == "__main__":
    unittest.main()
