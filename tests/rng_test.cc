#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rng/random.h"
#include "rng/splitmix64.h"
#include "rng/xoshiro256.h"
#include "stats/descriptive.h"

namespace htune {
namespace {

TEST(SplitMix64Test, DeterministicStream) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Xoshiro256Test, DeterministicStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xoshiro256Test, JumpChangesStream) {
  Xoshiro256 a(7), b(7);
  b.Jump();
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Xoshiro256Test, SplitStreamsAreDistinct) {
  Xoshiro256 parent(42);
  Xoshiro256 child1 = parent.Split();
  Xoshiro256 child2 = parent.Split();
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(child1.Next());
    seen.insert(child2.Next());
    seen.insert(parent.Next());
  }
  EXPECT_EQ(seen.size(), 600u);
}

TEST(RandomTest, UniformInUnitInterval) {
  Random rng(1);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.Add(u);
  }
  EXPECT_NEAR(stats.Mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0 / 12.0, 0.01);
}

TEST(RandomTest, UniformRangeRespectsBounds) {
  Random rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformRange(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RandomTest, UniformIntIsUnbiased) {
  Random rng(3);
  std::vector<int> counts(7, 0);
  const int trials = 140000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.UniformInt(7)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 7.0, 5.0 * std::sqrt(trials / 7.0));
  }
}

TEST(RandomTest, BernoulliFrequencies) {
  Random rng(4);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RandomTest, ExponentialMoments) {
  Random rng(5);
  const double lambda = 2.5;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.Exponential(lambda);
    ASSERT_GE(x, 0.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.Mean(), 1.0 / lambda, 0.005);
  EXPECT_NEAR(stats.Variance(), 1.0 / (lambda * lambda), 0.01);
}

TEST(RandomTest, ErlangMoments) {
  Random rng(6);
  const int k = 4;
  const double lambda = 3.0;
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Erlang(k, lambda));
  }
  EXPECT_NEAR(stats.Mean(), k / lambda, 0.01);
  EXPECT_NEAR(stats.Variance(), k / (lambda * lambda), 0.02);
}

TEST(RandomTest, ErlangOfOneMatchesExponentialLaw) {
  Random rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Erlang(1, 2.0));
  }
  EXPECT_NEAR(stats.Mean(), 0.5, 0.01);
}

TEST(RandomTest, PoissonMoments) {
  Random rng(8);
  const double mean = 6.5;
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Poisson(mean));
  }
  EXPECT_NEAR(stats.Mean(), mean, 0.05);
  EXPECT_NEAR(stats.Variance(), mean, 0.2);
}

TEST(RandomTest, PoissonZeroMeanIsZero) {
  Random rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Poisson(0.0), 0);
  }
}

TEST(RandomTest, PoissonLargeMeanUsesBlocking) {
  Random rng(10);
  const double mean = 1500.0;  // exceeds the internal 500 block size
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.Add(rng.Poisson(mean));
  }
  EXPECT_NEAR(stats.Mean(), mean, 3.0);
  EXPECT_NEAR(stats.StdDev(), std::sqrt(mean), 2.0);
}

TEST(RandomTest, NormalMoments) {
  Random rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.Normal(10.0, 3.0));
  }
  EXPECT_NEAR(stats.Mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.StdDev(), 3.0, 0.05);
}

TEST(RandomTest, DiscreteRespectsWeights) {
  Random rng(12);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.Discrete(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.6, 0.01);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(13);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RandomTest, ShuffleIsUniformOnPositions) {
  Random rng(14);
  // Element 0's final position should be uniform over 5 slots.
  std::vector<int> counts(5, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> v = {0, 1, 2, 3, 4};
    rng.Shuffle(v);
    for (int i = 0; i < 5; ++i) {
      if (v[i] == 0) ++counts[i];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(trials), 0.2, 0.01);
  }
}

TEST(RandomTest, SplitProducesIndependentStream) {
  Random parent(15);
  Random child = parent.Split();
  RunningStats corr;
  // Crude independence check: products of centered uniforms average ~0.
  for (int i = 0; i < 100000; ++i) {
    corr.Add((parent.Uniform() - 0.5) * (child.Uniform() - 0.5));
  }
  EXPECT_NEAR(corr.Mean(), 0.0, 0.002);
}

TEST(RandomTest, GammaMoments) {
  Random rng(17);
  for (const double shape : {0.5, 1.0, 2.5, 9.0}) {
    RunningStats stats;
    for (int i = 0; i < 120000; ++i) {
      const double x = rng.Gamma(shape);
      ASSERT_GT(x, 0.0);
      stats.Add(x);
    }
    EXPECT_NEAR(stats.Mean(), shape, 0.05 * shape + 0.01) << shape;
    EXPECT_NEAR(stats.Variance(), shape, 0.1 * shape + 0.05) << shape;
  }
}

TEST(RandomTest, BetaMomentsAndSupport) {
  Random rng(18);
  const double a = 2.0, b = 6.0;
  RunningStats stats;
  for (int i = 0; i < 120000; ++i) {
    const double x = rng.Beta(a, b);
    ASSERT_GT(x, 0.0);
    ASSERT_LT(x, 1.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.Mean(), a / (a + b), 0.005);
  const double variance = a * b / ((a + b) * (a + b) * (a + b + 1.0));
  EXPECT_NEAR(stats.Variance(), variance, 0.002);
}

TEST(RandomTest, BetaConcentrationShrinksSpread) {
  Random rng(19);
  RunningStats loose, tight;
  for (int i = 0; i < 50000; ++i) {
    loose.Add(rng.Beta(0.4, 1.6));   // concentration 2
    tight.Add(rng.Beta(8.0, 32.0));  // concentration 40, same mean 0.2
  }
  EXPECT_NEAR(loose.Mean(), 0.2, 0.01);
  EXPECT_NEAR(tight.Mean(), 0.2, 0.01);
  EXPECT_LT(tight.Variance() * 5.0, loose.Variance());
}

TEST(RandomDeathTest, InvalidArgumentsAbort) {
  Random rng(16);
  EXPECT_DEATH(rng.Exponential(0.0), "HTUNE_CHECK");
  EXPECT_DEATH(rng.Erlang(0, 1.0), "HTUNE_CHECK");
  EXPECT_DEATH(rng.UniformInt(0), "HTUNE_CHECK");
  EXPECT_DEATH(rng.Poisson(-1.0), "HTUNE_CHECK");
  EXPECT_DEATH(rng.Discrete({0.0, 0.0}), "HTUNE_CHECK");
  EXPECT_DEATH(rng.Gamma(0.0), "HTUNE_CHECK");
  EXPECT_DEATH(rng.Beta(1.0, 0.0), "HTUNE_CHECK");
}

}  // namespace
}  // namespace htune
