#!/usr/bin/env python3
"""Unit tests for tools/htune_analyze/, driven from ctest.

Four layers:
  * fixture triplets per check under tests/analyze_fixtures/
    (violating / suppressed / clean), run through the real CLI;
  * mutation tests against today's tree: delete a member reference from
    MarketSimulator's snapshot codec, append an unhandled TraceEventKind
    enumerator, reverse a real lock pair — each must fail its check;
  * the AST-dump cache contract: same inputs -> no re-dump, an edited
    header -> exactly the including TU re-dumps;
  * clang AST-JSON extraction on a hand-written mini dump.

The whole-tree clean gate is a separate ctest (htune_analyze_tree).
"""

import contextlib
import io
import json
import os
import shutil
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools", "htune_analyze"))

import analyze  # noqa: E402
import astdump  # noqa: E402
import declparse  # noqa: E402
import lock_check  # noqa: E402
import schema_check  # noqa: E402
import snapshot_check  # noqa: E402
from model import FunctionDef, Model  # noqa: E402

FIXTURES = os.path.join(REPO_ROOT, "tests", "analyze_fixtures")


def run_cli(fixture, checks):
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(
            io.StringIO()):
        rc = analyze.main(["--root", os.path.join(FIXTURES, fixture),
                           "--checks", checks])
    return rc, out.getvalue()


class FixtureTripletTest(unittest.TestCase):
    def test_snapshot_violating(self):
        rc, out = run_cli("snapshot/violating", "snapshot")
        self.assertEqual(rc, 1, out)
        self.assertIn("Widget::skew_", out)
        self.assertIn("state.h:12", out)

    def test_snapshot_suppressed(self):
        rc, out = run_cli("snapshot/suppressed", "snapshot")
        self.assertEqual(rc, 0, out)

    def test_snapshot_clean(self):
        rc, out = run_cli("snapshot/clean", "snapshot")
        self.assertEqual(rc, 0, out)

    def test_lock_reversed_pair_is_a_cycle(self):
        rc, out = run_cli("lock/violating", "lock")
        self.assertEqual(rc, 1, out)
        self.assertIn("cycle", out)
        self.assertIn("Pool::mu_", out)
        self.assertIn("Pool::flush_mu_", out)

    def test_lock_undeclared_edge(self):
        rc, out = run_cli("lock/undeclared", "lock")
        self.assertEqual(rc, 1, out)
        self.assertIn("not declared in lock_order.toml", out)

    def test_lock_suppressed_by_declaration(self):
        rc, out = run_cli("lock/suppressed", "lock")
        self.assertEqual(rc, 0, out)

    def test_lock_clean_sibling_scopes(self):
        rc, out = run_cli("lock/clean", "lock")
        self.assertEqual(rc, 0, out)

    def test_schema_violating(self):
        rc, out = run_cli("schema/violating", "schema")
        self.assertEqual(rc, 1, out)
        self.assertIn("RecordKind::kGamma", out)

    def test_schema_suppressed_by_ignore(self):
        rc, out = run_cli("schema/suppressed", "schema")
        self.assertEqual(rc, 0, out)

    def test_schema_clean(self):
        rc, out = run_cli("schema/clean", "schema")
        self.assertEqual(rc, 0, out)


class RealTreeMutationTest(unittest.TestCase):
    """The acceptance contract: each check catches its defect class when
    injected into today's real declarations."""

    @classmethod
    def setUpClass(cls):
        cls.model = analyze.build_model(REPO_ROOT, None, None, False)
        cls.config = analyze.load_toml(None, REPO_ROOT, "analyze.toml")
        cls.lock_order = analyze.load_toml(None, REPO_ROOT,
                                           "lock_order.toml")

    def test_baseline_is_clean(self):
        findings = (snapshot_check.run(self.model, self.config)
                    + lock_check.run(self.model, self.lock_order)
                    + schema_check.run(self.model, self.config, REPO_ROOT))
        self.assertEqual([str(f) for f in findings], [])

    def test_dropped_simulator_codec_reference_fails(self):
        model = analyze.build_model(REPO_ROOT, None, None, False)
        fns = model.functions["MarketSimulator::CaptureState"]
        self.assertTrue(fns)
        for fn in fns:
            fn.body = fn.body.replace("rng_", "dropped_")
        findings = snapshot_check.run(model, self.config)
        self.assertTrue(
            any("MarketSimulator::rng_" in str(f) for f in findings),
            [str(f) for f in findings])

    def test_unhandled_trace_kind_fails_every_surface(self):
        model = analyze.build_model(REPO_ROOT, None, None, False)
        enum = model.find_enum("TraceEventKind")
        enum.enumerators.append(("kPhantom", 7))
        findings = schema_check.run(model, self.config, REPO_ROOT)
        messages = [str(f) for f in findings]
        self.assertTrue(
            any("kPhantom" in m for m in messages), messages)
        # The ToString switch, the FromString table, the decode bound,
        # and the Python dict must all complain.
        self.assertGreaterEqual(
            sum("kPhantom" in m or "TraceEventKind" in m
                for m in messages), 4, messages)

    def test_reversed_real_lock_pair_fails(self):
        model = analyze.build_model(REPO_ROOT, None, None, False)
        model.add_function(FunctionDef(
            qname="LatencyKernelCache::Backwards",
            params="",
            body="{ MutexLock lock(shard.mu); MutexLock pin(pin_mu_); }",
            file="src/model/latency_cache.cc", line=1,
            body_start_line=1))
        findings = lock_check.run(model, self.lock_order)
        self.assertTrue(
            any("cycle" in str(f) for f in findings),
            [str(f) for f in findings])


class AstCacheTest(unittest.TestCase):
    """Same compiler + same file contents -> the dump is not re-run; an
    edit to the TU or any transitively-included in-repo header -> it is."""

    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="htune-analyze-")
        self.addCleanup(shutil.rmtree, self.root, ignore_errors=True)
        os.makedirs(os.path.join(self.root, "src"))
        self.header = os.path.join(self.root, "src", "gadget.h")
        self.source = os.path.join(self.root, "src", "gadget.cc")
        with open(self.header, "w") as f:
            f.write("#pragma once\nstruct Gadget { int spin; };\n")
        with open(self.source, "w") as f:
            f.write('#include "gadget.h"\nint use(Gadget g) '
                    '{ return g.spin; }\n')
        self.db = os.path.join(self.root, "compile_commands.json")
        with open(self.db, "w") as f:
            json.dump([{"directory": self.root,
                        "file": "src/gadget.cc",
                        "command": "c++ -c src/gadget.cc"}], f)
        self.cache = os.path.join(self.root, "cache")
        self.calls = 0

    def fake_dumper(self, entry):
        self.calls += 1
        return {
            "kind": "TranslationUnitDecl",
            "inner": [{
                "kind": "CXXRecordDecl", "name": "Gadget",
                "tagUsed": "struct", "completeDefinition": True,
                "loc": {"file": self.header, "line": 2},
                "inner": [{"kind": "FieldDecl", "name": "spin",
                           "loc": {"line": 2}}],
            }],
        }

    def refine(self):
        model = Model()
        stats = astdump.refine(model, self.root, self.db, self.cache,
                               dumper=self.fake_dumper, dumper_id="fake-1")
        return model, stats

    def test_second_run_hits_cache(self):
        _, stats = self.refine()
        self.assertEqual((stats["dumped"], stats["cached"]), (1, 0))
        self.assertEqual(self.calls, 1)
        model, stats = self.refine()
        self.assertEqual((stats["dumped"], stats["cached"]), (0, 1))
        self.assertEqual(self.calls, 1)  # no re-dump
        self.assertIn("Gadget", model.classes)
        self.assertEqual(
            [m.name for m in model.classes["Gadget"].members], ["spin"])

    def test_edited_header_invalidates(self):
        self.refine()
        with open(self.header, "a") as f:
            f.write("// touched\n")
        _, stats = self.refine()
        self.assertEqual((stats["dumped"], stats["cached"]), (1, 0))
        self.assertEqual(self.calls, 2)

    def test_edited_source_invalidates(self):
        self.refine()
        with open(self.source, "a") as f:
            f.write("// touched\n")
        _, stats = self.refine()
        self.assertEqual((stats["dumped"], stats["cached"]), (1, 0))
        self.assertEqual(self.calls, 2)

    def test_failed_dump_falls_back(self):
        model = Model()
        stats = astdump.refine(model, self.root, self.db, self.cache,
                               dumper=lambda entry: None,
                               dumper_id="fake-1")
        self.assertEqual(stats["failed"], 1)
        self.assertEqual(model.classes, {})


class AstExtractionTest(unittest.TestCase):
    def test_mini_dump(self):
        root = tempfile.mkdtemp(prefix="htune-extract-")
        self.addCleanup(shutil.rmtree, root, ignore_errors=True)
        path = os.path.join(root, "src", "thing.h")
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as f:
            f.write("struct X;\n" * 10)
        tu = {
            "kind": "TranslationUnitDecl",
            "inner": [
                {"kind": "CXXRecordDecl", "name": "Thing",
                 "tagUsed": "class", "completeDefinition": True,
                 "loc": {"file": path, "line": 3},
                 "inner": [
                     {"kind": "FieldDecl", "name": "hidden_",
                      "loc": {"line": 4}},
                     {"kind": "AccessSpecDecl", "access": "public"},
                     {"kind": "FieldDecl", "name": "shown_",
                      "loc": {"line": 6}},
                     {"kind": "CXXMethodDecl", "name": "CaptureState"},
                 ]},
                {"kind": "EnumDecl", "name": "Mode",
                 "loc": {"line": 9},
                 "inner": [
                     {"kind": "EnumConstantDecl", "name": "kOff",
                      "inner": [{"kind": "ConstantExpr", "value": "4"}]},
                     {"kind": "EnumConstantDecl", "name": "kOn"},
                 ]},
                # A system-header record must be dropped.
                {"kind": "CXXRecordDecl", "name": "basic_string",
                 "tagUsed": "class", "completeDefinition": True,
                 "loc": {"file": "/usr/include/string", "line": 1}},
            ],
        }
        model = astdump.extract_model(tu, root)
        self.assertEqual(sorted(model.classes), ["Thing"])
        thing = model.classes["Thing"]
        self.assertEqual(
            [(m.name, m.access) for m in thing.members],
            [("hidden_", "private"), ("shown_", "public")])
        self.assertTrue(thing.declares_method("CaptureState"))
        self.assertEqual(model.enums["Mode"].enumerators,
                         [("kOff", 4), ("kOn", 5)])


class DeclparseRegressionTest(unittest.TestCase):
    def test_member_line_is_declarator_line(self):
        text = ("class C {\n"
                " public:\n"
                "  void CaptureState();\n"
                "\n"
                " private:\n"
                "  // HTUNE_TRANSIENT: rebuilt lazily\n"
                "  int cache_ = 0;\n"
                "  int real_ = 0;\n"
                "};\n")
        model = declparse.parse_text(text, "t.h")
        members = {m.name: m for m in model.classes["C"].members}
        self.assertEqual(members["cache_"].line, 7)
        self.assertEqual(members["cache_"].transient_reason,
                         "rebuilt lazily")
        self.assertIsNone(members["real_"].transient_reason)
        self.assertEqual(members["cache_"].access, "private")

    def test_requires_seeds_lock_walk(self):
        text = ("void Pool::DrainLocked() HTUNE_REQUIRES(mu_) {\n"
                "  MutexLock flush(flush_mu_);\n"
                "}\n")
        model = declparse.parse_text(text, "t.cc")
        edges = {}
        lock_check._walk_function(
            model.functions["Pool::DrainLocked"][0], edges)
        self.assertEqual(list(edges),
                         [("Pool::mu_", "Pool::flush_mu_")])


if __name__ == "__main__":
    unittest.main()
