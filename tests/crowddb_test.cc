#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "crowddb/executor.h"
#include "crowddb/filter.h"
#include "crowddb/max.h"
#include "crowddb/metrics.h"
#include "crowddb/sort.h"
#include "crowddb/types.h"
#include "tuning/even_allocator.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Curve() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

MarketConfig Market(uint64_t seed, double error = 0.0) {
  MarketConfig config;
  config.worker_arrival_rate = 200.0;
  config.seed = seed;
  config.worker_error_prob = error;
  config.record_trace = false;
  return config;
}

std::vector<Item> SomeItems(int n) {
  std::vector<Item> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({i, 10.0 * (i + 1)});
  }
  return items;
}

TEST(MajorityVoteTest, BasicMajorities) {
  EXPECT_EQ(MajorityVote({}), -1);
  EXPECT_EQ(MajorityVote({1}), 1);
  EXPECT_EQ(MajorityVote({0, 1, 1}), 1);
  EXPECT_EQ(MajorityVote({0, 0, 1, 1, 1, 0, 0}), 0);
  // Tie breaks toward the smaller option.
  EXPECT_EQ(MajorityVote({1, 0}), 0);
  EXPECT_EQ(MajorityVote({2, 1, 2, 1}), 1);
}

TEST(KendallTauTest, PerfectAndReversed) {
  const std::vector<int> truth = {3, 1, 4, 2};
  EXPECT_DOUBLE_EQ(*KendallTau(truth, truth), 1.0);
  std::vector<int> reversed = truth;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_DOUBLE_EQ(*KendallTau(reversed, truth), -1.0);
}

TEST(KendallTauTest, OneSwapCosts2OverPairs) {
  const std::vector<int> truth = {1, 2, 3, 4};
  const std::vector<int> swapped = {2, 1, 3, 4};
  EXPECT_NEAR(*KendallTau(swapped, truth), 1.0 - 2.0 / 6.0, 1e-12);
}

TEST(KendallTauTest, RejectsBadInput) {
  EXPECT_FALSE(KendallTau({1}, {1}).ok());
  EXPECT_FALSE(KendallTau({1, 2}, {1, 3}).ok());
  EXPECT_FALSE(KendallTau({1, 1}, {1, 1}).ok());
}

TEST(PrecisionRecallTest, Basics) {
  const auto pr = ComputePrecisionRecall({1, 2, 3}, {2, 3, 4, 5});
  EXPECT_NEAR(pr.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pr.recall, 0.5, 1e-12);
  EXPECT_GT(pr.F1(), 0.0);
  EXPECT_DOUBLE_EQ(ComputePrecisionRecall({}, {1}).precision, 1.0);
  EXPECT_DOUBLE_EQ(ComputePrecisionRecall({1}, {}).recall, 1.0);
  // Vacuous prediction of a vacuous truth is perfect by convention.
  EXPECT_DOUBLE_EQ(ComputePrecisionRecall({}, {}).F1(), 1.0);
}

TEST(CrowdSortTest, CreateValidation) {
  EXPECT_FALSE(CrowdSort::Create({{0, 1.0}}, 1).ok());
  EXPECT_FALSE(CrowdSort::Create(SomeItems(3), 0).ok());
  EXPECT_FALSE(CrowdSort::Create({{0, 1.0}, {0, 2.0}}, 1).ok());  // dup id
  EXPECT_FALSE(CrowdSort::Create({{0, 1.0}, {1, 1.0}}, 1).ok());  // dup value
  EXPECT_TRUE(CrowdSort::Create(SomeItems(4), 3).ok());
}

TEST(CrowdSortTest, ProblemShape) {
  const auto sort = CrowdSort::Create(SomeItems(5), 3);
  ASSERT_TRUE(sort.ok());
  EXPECT_EQ(sort->NumPairs(), 10);
  const TuningProblem problem = sort->MakeProblem(100, Curve(), 2.0);
  EXPECT_EQ(problem.groups.size(), 1u);
  EXPECT_EQ(problem.groups[0].num_tasks, 10);
  EXPECT_EQ(problem.groups[0].repetitions, 3);
  EXPECT_EQ(sort->Questions().size(), 10u);
}

TEST(CrowdSortTest, PerfectWorkersYieldPerfectRanking) {
  const auto sort = CrowdSort::Create(SomeItems(6), 3);
  ASSERT_TRUE(sort.ok());
  MarketSimulator market(Market(1));
  const auto result =
      sort->Run(market, EvenAllocator(), 500, Curve(), 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->kendall_tau, 1.0);
  EXPECT_EQ(result->ranking.front(), 5);  // highest value item id
  EXPECT_EQ(result->ranking.back(), 0);
  EXPECT_GT(result->latency, 0.0);
  EXPECT_LE(result->spent, 500);
}

TEST(CrowdSortTest, NoisyWorkersDegradeButRepetitionHelps) {
  double tau_few = 0.0, tau_many = 0.0;
  const int trials = 10;
  for (int reps : {1, 9}) {
    double tau_sum = 0.0;
    for (int t = 0; t < trials; ++t) {
      const auto sort = CrowdSort::Create(SomeItems(6), reps);
      ASSERT_TRUE(sort.ok());
      MarketSimulator market(Market(50 + t, /*error=*/0.3));
      const auto result = sort->Run(market, EvenAllocator(),
                                    400L * reps, Curve(), 5.0);
      ASSERT_TRUE(result.ok());
      tau_sum += result->kendall_tau;
    }
    (reps == 1 ? tau_few : tau_many) = tau_sum / trials;
  }
  EXPECT_GT(tau_many, tau_few);
}

TEST(CrowdFilterTest, CreateValidation) {
  EXPECT_FALSE(CrowdFilter::Create({}, 1.0, 1).ok());
  EXPECT_FALSE(CrowdFilter::Create(SomeItems(2), 1.0, 0).ok());
  EXPECT_FALSE(
      CrowdFilter::Create({{0, 1.0}, {0, 2.0}}, 1.0, 1).ok());
  EXPECT_TRUE(CrowdFilter::Create(SomeItems(3), 15.0, 2).ok());
}

TEST(CrowdFilterTest, PerfectWorkersFilterExactly) {
  const auto filter = CrowdFilter::Create(SomeItems(8), 45.0, 3);
  ASSERT_TRUE(filter.ok());
  MarketSimulator market(Market(2));
  const auto result =
      filter->Run(market, EvenAllocator(), 300, Curve(), 5.0);
  ASSERT_TRUE(result.ok());
  // Items with value >= 45: ids 4..7 (values 50..80).
  EXPECT_EQ(result->selected, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_DOUBLE_EQ(result->quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(result->quality.recall, 1.0);
}

TEST(CrowdFilterTest, ThresholdBoundaryIsInclusive) {
  const auto filter = CrowdFilter::Create({{0, 10.0}, {1, 9.99}}, 10.0, 1);
  ASSERT_TRUE(filter.ok());
  const auto questions = filter->Questions();
  EXPECT_EQ(questions[0].true_answer, 0);  // passes
  EXPECT_EQ(questions[1].true_answer, 1);  // fails
}

TEST(CrowdMaxTest, CreateValidation) {
  EXPECT_FALSE(CrowdMax::Create({{0, 1.0}}, 1).ok());
  EXPECT_FALSE(CrowdMax::Create(SomeItems(4), 0).ok());
  EXPECT_TRUE(CrowdMax::Create(SomeItems(4), 3).ok());
}

TEST(CrowdMaxTest, PerfectWorkersFindTrueMax) {
  for (int n : {2, 3, 5, 8}) {
    const auto max_query = CrowdMax::Create(SomeItems(n), 3);
    ASSERT_TRUE(max_query.ok());
    EXPECT_EQ(max_query->TotalMatches(), n - 1);
    MarketSimulator market(Market(3 + static_cast<uint64_t>(n)));
    const auto result = max_query->Run(market, EvenAllocator(),
                                       60L * (n - 1), Curve(), 5.0);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->correct) << "n=" << n;
    EXPECT_EQ(result->winner_id, n - 1);
    EXPECT_GT(result->rounds, 0);
  }
}

TEST(CrowdMaxTest, RejectsTinyBudget) {
  const auto max_query = CrowdMax::Create(SomeItems(4), 5);
  ASSERT_TRUE(max_query.ok());
  MarketSimulator market(Market(4));
  EXPECT_FALSE(
      max_query->Run(market, EvenAllocator(), 10, Curve(), 5.0).ok());
}

TEST(ExecutorTest, ShapeValidation) {
  const auto sort = CrowdSort::Create(SomeItems(3), 2);
  ASSERT_TRUE(sort.ok());
  const TuningProblem problem = sort->MakeProblem(60, Curve(), 5.0);
  const auto alloc = EvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  MarketSimulator market(Market(5));
  // Wrong number of questions.
  EXPECT_FALSE(ExecuteJob(market, problem, *alloc, {}).ok());
}

TEST(ExecutorTest, AccountingAndAnswersShape) {
  const auto filter = CrowdFilter::Create(SomeItems(5), 25.0, 4);
  ASSERT_TRUE(filter.ok());
  const TuningProblem problem = filter->MakeProblem(200, Curve(), 5.0);
  const auto alloc = RepetitionAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  MarketSimulator market(Market(6));
  const auto execution =
      ExecuteJob(market, problem, *alloc, filter->Questions());
  ASSERT_TRUE(execution.ok());
  EXPECT_EQ(execution->answers.size(), 5u);
  for (const auto& task_answers : execution->answers) {
    EXPECT_EQ(task_answers.size(), 4u);
  }
  EXPECT_EQ(execution->spent, alloc->TotalCost());
  EXPECT_EQ(execution->task_latencies.size(), 5u);
  const double max_task = *std::max_element(execution->task_latencies.begin(),
                                            execution->task_latencies.end());
  EXPECT_DOUBLE_EQ(execution->latency, max_task);
}

}  // namespace
}  // namespace htune
