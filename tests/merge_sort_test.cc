#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "crowddb/merge_sort.h"
#include "rng/random.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Curve() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

MarketConfig Market(uint64_t seed, double error = 0.0) {
  MarketConfig config;
  config.worker_arrival_rate = 200.0;
  config.seed = seed;
  config.worker_error_prob = error;
  config.record_trace = false;
  return config;
}

std::vector<Item> SomeItems(int n) {
  std::vector<Item> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({i, 3.0 * (i + 1)});
  }
  return items;
}

TEST(CrowdMergeSortTest, CreateValidation) {
  EXPECT_FALSE(CrowdMergeSort::Create({{0, 1.0}}, 1).ok());
  EXPECT_FALSE(CrowdMergeSort::Create(SomeItems(4), 0).ok());
  EXPECT_FALSE(CrowdMergeSort::Create({{0, 1.0}, {0, 2.0}}, 1).ok());
  EXPECT_FALSE(CrowdMergeSort::Create({{0, 1.0}, {1, 1.0}}, 1).ok());
  EXPECT_TRUE(CrowdMergeSort::Create(SomeItems(4), 3).ok());
}

TEST(CrowdMergeSortTest, WorstCaseComparisonCounts) {
  // n=2: 1. n=4: 2 + 3 = 5. n=8: 4 + 6 + 7 = 17.
  EXPECT_EQ(CrowdMergeSort::Create(SomeItems(2), 1)->WorstCaseComparisons(),
            1);
  EXPECT_EQ(CrowdMergeSort::Create(SomeItems(4), 1)->WorstCaseComparisons(),
            5);
  EXPECT_EQ(CrowdMergeSort::Create(SomeItems(8), 1)->WorstCaseComparisons(),
            17);
  // Odd n=5: level 1 merges (1,1),(1,1) carry 1 -> 2 comps; level 2 merges
  // (2,2) carry 1 -> 3; level 3 merges (4,1) -> 4. Total 9.
  EXPECT_EQ(CrowdMergeSort::Create(SomeItems(5), 1)->WorstCaseComparisons(),
            9);
}

TEST(CrowdMergeSortTest, PerfectWorkersSortExactly) {
  for (const int n : {2, 5, 8, 13}) {
    const auto sorter = CrowdMergeSort::Create(SomeItems(n), 3);
    ASSERT_TRUE(sorter.ok());
    MarketSimulator market(Market(10 + static_cast<uint64_t>(n)));
    const auto result =
        sorter->Run(market, sorter->WorstCaseComparisons() * 3L * 5L,
                    Curve(), 5.0);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_DOUBLE_EQ(result->kendall_tau, 1.0) << "n=" << n;
    EXPECT_EQ(result->ranking.front(), n - 1);
    EXPECT_LE(result->comparisons, sorter->WorstCaseComparisons());
    EXPECT_GT(result->levels, 0);
  }
}

TEST(CrowdMergeSortTest, AsksFarFewerComparisonsThanAllPairs) {
  const int n = 16;
  const auto sorter = CrowdMergeSort::Create(SomeItems(n), 1);
  ASSERT_TRUE(sorter.ok());
  // All-pairs: 120 comparisons; merge sort worst case: 8+12+14+15 = 49.
  EXPECT_LT(sorter->WorstCaseComparisons(), n * (n - 1) / 2 / 2);
}

TEST(CrowdMergeSortTest, SpendReflectsActualComparisons) {
  const auto sorter = CrowdMergeSort::Create(SomeItems(6), 2);
  ASSERT_TRUE(sorter.ok());
  const long budget = sorter->WorstCaseComparisons() * 2L * 4L;
  MarketSimulator market(Market(20));
  const auto result = sorter->Run(market, budget, Curve(), 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->spent, budget);
  EXPECT_EQ(result->spent, static_cast<long>(result->comparisons) * 2 * 4);
}

TEST(CrowdMergeSortTest, RejectsTinyBudget) {
  const auto sorter = CrowdMergeSort::Create(SomeItems(8), 3);
  ASSERT_TRUE(sorter.ok());
  MarketSimulator market(Market(21));
  EXPECT_FALSE(
      sorter->Run(market, sorter->WorstCaseComparisons() * 3L - 1, Curve(),
                  5.0)
          .ok());
}

TEST(CrowdMergeSortTest, NoisyWorkersStillRankWell) {
  Random seed_rng(22);
  double tau_total = 0.0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const auto sorter = CrowdMergeSort::Create(SomeItems(8), 5);
    ASSERT_TRUE(sorter.ok());
    MarketSimulator market(Market(30 + t, /*error=*/0.2));
    const auto result =
        sorter->Run(market, sorter->WorstCaseComparisons() * 5L * 5L,
                    Curve(), 5.0);
    ASSERT_TRUE(result.ok());
    tau_total += result->kendall_tau;
  }
  EXPECT_GT(tau_total / trials, 0.75);
}

}  // namespace
}  // namespace htune
