// Cross-module mathematical properties: identities that tie the model, the
// optimizers and the simulator together. These are the load-bearing
// invariants a refactor must not break.

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "market/simulator.h"
#include "model/distributions.h"
#include "model/hypoexponential.h"
#include "model/order_statistics.h"
#include "rng/random.h"
#include "stats/descriptive.h"
#include "tuning/evaluator.h"
#include "tuning/group_latency_table.h"
#include "tuning/quantile.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

// --- Model identities -----------------------------------------------------

TEST(CrossProperties, ErlangIsHypoexponentialWithEqualRates) {
  for (const int k : {1, 2, 5, 9}) {
    const ErlangDist erlang(k, 1.7);
    const HypoexponentialDist hypo(std::vector<double>(k, 1.7));
    for (double t = 0.25; t < 12.0; t += 0.75) {
      ASSERT_NEAR(erlang.Cdf(t), hypo.Cdf(t), 1e-9) << "k=" << k;
    }
  }
}

TEST(CrossProperties, HypoexponentialOrderInvariance) {
  // The sum's law cannot depend on the order of the phases.
  const HypoexponentialDist forward({0.5, 2.0, 7.0});
  const HypoexponentialDist backward({7.0, 2.0, 0.5});
  for (double t = 0.2; t < 10.0; t += 0.6) {
    ASSERT_NEAR(forward.Cdf(t), backward.Cdf(t), 1e-9);
  }
}

TEST(CrossProperties, MaxOfOneIsTheMean) {
  // E[max over 1 draw] must equal the plain expectation for every family.
  EXPECT_NEAR(ExpectedMaxExponential(1, 3.0), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(ExpectedMaxErlang(1, 4, 2.0), 2.0, 1e-6);
  const TwoPhaseLatencyDist two_phase(2.0, 5.0);
  EXPECT_NEAR(ExpectedMaxTwoPhase(1, two_phase), two_phase.Mean(), 1e-6);
}

TEST(CrossProperties, MinMaxIdentityForTwoExponentials) {
  // E[max] + E[min] = E[X] + E[Y].
  const double l1 = 1.3, l2 = 4.2;
  const double max_term = ExpectedMaxTwoExponentials(l1, l2);
  const double min_term = 1.0 / (l1 + l2);
  EXPECT_NEAR(max_term + min_term, 1.0 / l1 + 1.0 / l2, 1e-12);
}

// Scaling law: multiplying every rate by c divides every latency
// expectation by c. Checked across the full analytic stack.
class ScalingSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScalingSweep, AllExpectationsScaleInversely) {
  const double c = GetParam();
  EXPECT_NEAR(ExpectedMaxErlang(12, 3, 2.0 * c),
              ExpectedMaxErlang(12, 3, 2.0) / c, 1e-6);
  const HypoexponentialDist base({1.0, 3.0});
  const HypoexponentialDist scaled({1.0 * c, 3.0 * c});
  EXPECT_NEAR(scaled.Mean(), base.Mean() / c, 1e-12);
  // CDF time-rescaling: F_scaled(t) = F_base(c t).
  for (double t = 0.3; t < 3.0; t += 0.4) {
    EXPECT_NEAR(scaled.Cdf(t), base.Cdf(c * t), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, ScalingSweep,
                         ::testing::Values(0.25, 2.0, 8.0));

// --- Optimizer invariances -------------------------------------------------

TEST(CrossProperties, RaAllocationInvariantToUniformRateScaling) {
  // Scaling the curve by a constant rescales all latencies equally, so the
  // optimal price split must not change.
  for (const double scale : {0.2, 1.0, 5.0}) {
    TuningProblem problem;
    TaskGroup a;
    a.name = "a";
    a.num_tasks = 5;
    a.repetitions = 2;
    a.processing_rate = 2.0;
    a.curve = std::make_shared<FunctionCurve>(
        [scale](double p) { return scale * (0.7 * p + 0.9); }, "scaled");
    TaskGroup b = a;
    b.name = "b";
    b.repetitions = 4;
    problem.groups = {a, b};
    problem.budget = 100;
    const auto prices =
        RepetitionAllocator(RepetitionAllocator::Mode::kExactDp)
            .SolvePrices(problem);
    ASSERT_TRUE(prices.ok());
    // Reference solution at scale 1.
    TuningProblem reference = problem;
    reference.groups[0].curve =
        std::make_shared<LinearCurve>(0.7, 0.9);
    reference.groups[1].curve = reference.groups[0].curve;
    const auto reference_prices =
        RepetitionAllocator(RepetitionAllocator::Mode::kExactDp)
            .SolvePrices(reference);
    ASSERT_TRUE(reference_prices.ok());
    EXPECT_EQ(*prices, *reference_prices) << "scale=" << scale;
  }
}

TEST(CrossProperties, GroupTablePhase1MatchesEvaluator) {
  // GroupLatencyTable (the optimizers' view) and the evaluator (the
  // reporting view) must agree on uniform allocations.
  TaskGroup g;
  g.name = "g";
  g.num_tasks = 7;
  g.repetitions = 3;
  g.processing_rate = 2.0;
  g.curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const GroupLatencyTable table(g);
  for (int price = 1; price <= 8; ++price) {
    const GroupAllocation alloc = UniformGroupAllocation(7, 3, price);
    EXPECT_NEAR(table.Phase1(price), ExpectedPhase1GroupLatency(g, alloc),
                1e-7)
        << price;
  }
}

TEST(CrossProperties, QuantileMedianBelowMeanForJobMax) {
  // The max of many light-tailed latencies is right-skewed, so its median
  // sits below its mean.
  TuningProblem problem;
  TaskGroup g;
  g.name = "g";
  g.num_tasks = 20;
  g.repetitions = 2;
  g.processing_rate = 2.0;
  g.curve = std::make_shared<LinearCurve>(1.0, 1.0);
  problem.groups = {g};
  problem.budget = 400;
  const Allocation alloc = UniformAllocation(problem, {5});
  const auto median = JobLatencyQuantile(problem, alloc, 0.5);
  ASSERT_TRUE(median.ok());
  Random rng(11);
  const double mean = MonteCarloOverallLatency(problem, alloc, 60000, rng);
  EXPECT_LT(*median, mean);
  // But not absurdly so.
  EXPECT_GT(*median, 0.5 * mean);
}

// --- Market-vs-analytic matrix ----------------------------------------------

// The realized mean on-hold latency on the simulator must match 1/rate for
// every (curve, schedule) combination: the simulator implements the same
// model the analytics assume.
class MarketMatrixSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MarketMatrixSweep, RealizedOnHoldMatchesModel) {
  const auto [curve_index, scheduled] = GetParam();
  const auto curves = PaperSyntheticCurves();
  const PriceRateCurve& curve = *curves[curve_index];
  const int price = 3;
  const double rate = curve.Rate(price);

  RunningStats on_hold;
  for (int m = 0; m < 150; ++m) {
    MarketConfig config;
    config.worker_arrival_rate = 60.0;
    if (scheduled) {
      // Cyclic schedule with mean = the reference rate: realized rate
      // averages out over enough samples.
      const auto schedule = RateSchedule::Create(
          {{0.0, 90.0}, {0.5, 30.0}}, 1.0);
      ASSERT_TRUE(schedule.ok());
      config.arrival_schedule = std::make_shared<RateSchedule>(*schedule);
    }
    config.seed = 4000 + static_cast<uint64_t>(m);
    config.record_trace = false;
    MarketSimulator market(config);
    TaskSpec spec;
    spec.price_per_repetition = price;
    spec.repetitions = 4;
    spec.on_hold_rate = rate;
    spec.processing_rate = 50.0;
    const auto id = market.PostTask(spec);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(market.RunToCompletion().ok());
    const TaskOutcome outcome = *market.GetOutcome(*id);
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      on_hold.Add(rep.OnHoldLatency());
    }
  }
  // Constant market: exact law. Cyclic market: same mean rate, so the mean
  // on-hold agrees to first order (slightly above by Jensen); allow more
  // slack there.
  const double expected = 1.0 / rate;
  const double tolerance = (scheduled ? 0.25 : 0.1) * expected + 0.01;
  EXPECT_NEAR(on_hold.Mean(), expected, tolerance)
      << curve.Name() << " scheduled=" << scheduled;
}

INSTANTIATE_TEST_SUITE_P(
    CurvesBySchedule, MarketMatrixSweep,
    ::testing::Combine(::testing::Values(0, 1, 3, 4),
                       ::testing::Bool()));

// --- End-to-end conservation under repricing -------------------------------

TEST(CrossProperties, RepricingConservesRepetitionCount) {
  MarketConfig config;
  config.worker_arrival_rate = 80.0;
  config.seed = 77;
  config.record_trace = false;
  MarketSimulator market(config);
  std::vector<TaskId> ids;
  for (int i = 0; i < 10; ++i) {
    TaskSpec spec;
    spec.price_per_repetition = 2;
    spec.repetitions = 5;
    spec.on_hold_rate = 2.0;
    spec.processing_rate = 2.0;
    ids.push_back(*market.PostTask(spec));
  }
  // Storm of reprices while the job runs.
  for (int round = 0; round < 8; ++round) {
    market.RunUntil(market.now() + 0.3);
    for (const TaskId id : ids) {
      // Repricing completed tasks fails cleanly; open ones succeed.
      const Status status = market.Reprice(id, 2 + round, 2.0 + round);
      if (!status.ok()) {
        EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
      }
    }
  }
  ASSERT_TRUE(market.OpenTaskCount() == 0 || market.RunToCompletion().ok());
  long paid = 0;
  for (const TaskId id : ids) {
    const TaskOutcome outcome = *market.GetOutcome(id);
    ASSERT_EQ(outcome.repetitions.size(), 5u);
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      paid += rep.price;
    }
  }
  EXPECT_EQ(market.TotalSpent(), paid);
}

}  // namespace
}  // namespace htune
