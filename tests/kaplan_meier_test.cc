#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/random.h"
#include "stats/kaplan_meier.h"

namespace htune {
namespace {

TEST(KaplanMeierTest, NoCensoringMatchesEmpiricalSurvival) {
  // Events at 1, 2, 3, 4: S drops by 1/4 at each.
  const auto km = KaplanMeier::Fit(
      {{1.0, true}, {2.0, true}, {3.0, true}, {4.0, true}});
  ASSERT_TRUE(km.ok());
  EXPECT_DOUBLE_EQ(km->Survival(0.5), 1.0);
  EXPECT_DOUBLE_EQ(km->Survival(1.0), 0.75);
  EXPECT_DOUBLE_EQ(km->Survival(2.5), 0.5);
  EXPECT_DOUBLE_EQ(km->Survival(4.0), 0.0);
  EXPECT_EQ(km->num_events(), 4u);
  EXPECT_EQ(km->num_censored(), 0u);
  EXPECT_DOUBLE_EQ(km->MedianSurvivalTime(), 2.0);
}

TEST(KaplanMeierTest, TextbookCensoredExample) {
  // Events at 1 and 3; censored at 2. At-risk sets: {1..4} -> S(1)=3/4;
  // at t=3 at-risk {3, 4(c at 2 removed)} ... observations: e1, c2, e3, e4.
  const auto km = KaplanMeier::Fit(
      {{1.0, true}, {2.0, false}, {3.0, true}, {4.0, true}});
  ASSERT_TRUE(km.ok());
  EXPECT_DOUBLE_EQ(km->Survival(1.0), 0.75);
  // At t=3, at-risk = 2 (the censored subject left): S = 0.75 * 1/2.
  EXPECT_DOUBLE_EQ(km->Survival(3.0), 0.375);
  EXPECT_DOUBLE_EQ(km->Survival(4.0), 0.0);
  EXPECT_EQ(km->num_censored(), 1u);
}

TEST(KaplanMeierTest, TiesProcessEventsBeforeCensorings) {
  // A subject censored at t counts as at-risk for the death at t.
  const auto km =
      KaplanMeier::Fit({{1.0, true}, {1.0, false}, {2.0, true}});
  ASSERT_TRUE(km.ok());
  // At t=1: 3 at risk, 1 death -> S = 2/3. At t=2: 1 at risk -> S = 0.
  EXPECT_NEAR(km->Survival(1.0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(km->Survival(2.0), 0.0);
}

TEST(KaplanMeierTest, HeavyCensoringLeavesCurveAboveHalf) {
  const auto km = KaplanMeier::Fit(
      {{1.0, true}, {5.0, false}, {5.0, false}, {5.0, false}});
  ASSERT_TRUE(km.ok());
  EXPECT_DOUBLE_EQ(km->Survival(10.0), 0.75);
  EXPECT_TRUE(std::isinf(km->MedianSurvivalTime()));
}

TEST(KaplanMeierTest, FitValidation) {
  EXPECT_FALSE(KaplanMeier::Fit({}).ok());
  EXPECT_FALSE(KaplanMeier::Fit({{-1.0, true}}).ok());
  EXPECT_FALSE(KaplanMeier::Fit({{1.0, false}, {2.0, false}}).ok());
}

TEST(KaplanMeierTest, RecoversExponentialSurvivalWithCensoring) {
  // Exponential durations censored at a fixed horizon: the KM curve must
  // track e^{-lambda t} closely despite ~39% censoring.
  Random rng(5);
  const double lambda = 1.5;
  const double horizon = 0.63;  // P(censored) = e^{-lambda*horizon} ~ 0.39
  std::vector<SurvivalObservation> data;
  for (int i = 0; i < 6000; ++i) {
    const double t = rng.Exponential(lambda);
    if (t > horizon) {
      data.push_back({horizon, false});
    } else {
      data.push_back({t, true});
    }
  }
  const auto km = KaplanMeier::Fit(data);
  ASSERT_TRUE(km.ok());
  EXPECT_GT(km->num_censored(), 2000u);
  EXPECT_LT(MaxDeviationFromExponential(*km, lambda), 0.03);
  // A wrong rate is clearly rejected by the same distance.
  EXPECT_GT(MaxDeviationFromExponential(*km, lambda * 2.0), 0.15);
}

TEST(KaplanMeierTest, NaiveUncensoredFitIsBiasedWhereKmIsNot) {
  // Dropping censored observations biases survival downward (only short
  // durations complete); KM corrects this. Compare survival at the median.
  Random rng(6);
  const double lambda = 1.0;
  const double horizon = 1.0;
  std::vector<SurvivalObservation> censored_data, naive_data;
  for (int i = 0; i < 8000; ++i) {
    const double t = rng.Exponential(lambda);
    if (t > horizon) {
      censored_data.push_back({horizon, false});
    } else {
      censored_data.push_back({t, true});
      naive_data.push_back({t, true});
    }
  }
  const auto km = KaplanMeier::Fit(censored_data);
  const auto naive = KaplanMeier::Fit(naive_data);
  ASSERT_TRUE(km.ok());
  ASSERT_TRUE(naive.ok());
  const double truth = std::exp(-lambda * 0.69);
  EXPECT_NEAR(km->Survival(0.69), truth, 0.02);
  EXPECT_LT(naive->Survival(0.69), truth - 0.05);
}

}  // namespace
}  // namespace htune
