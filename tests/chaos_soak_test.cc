// Chaos-soak invariant harness: hundreds of seeded fault schedules — flaky
// journal appends, short writes, flush failures, market stalls, and
// interleaved crash/recover cycles — driven through the durable executor.
// Every schedule must converge to a final run whose report, market trace,
// and journal bytes are IDENTICAL to a fault-free reference, with payments
// accounted exactly once and spend never above the ceiling. Faults here are
// *transparent* by construction (each injector's consecutive-fault cap sits
// below the retry budget), so retries heal them invisibly; the divergent
// degradation modes — breaker-open escalation skips, deadline expiry,
// checkpoint-and-park — get their own deterministic tests below.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "control/fault_tolerant_executor.h"
#include "durability/journal.h"
#include "durability/serialize.h"
#include "market/fault_schedule.h"
#include "market/simulator.h"
#include "model/price_rate_curve.h"
#include "resilience/fault_injector.h"
#include "rng/splitmix64.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

// ---------------------------------------------------------------------------
// Scenario: the same hostile market the crash-recovery harness uses
// (abandonment, an outage window, acceptance timeouts) so journals carry
// posts, reprices, payments, completions, reviews, and snapshots.

struct SoakScenario {
  TuningProblem problem;
  std::vector<QuestionSpec> questions;
  MarketConfig market;
  FaultTolerantConfig config;
  int snapshot_interval = 4;
};

SoakScenario MakeSoakScenario() {
  SoakScenario s;
  TaskGroup g;
  g.name = "vote";
  g.num_tasks = 6;
  g.repetitions = 3;
  g.processing_rate = 5.0;
  g.curve = std::make_shared<LinearCurve>(1.0, 1.0);
  s.problem.groups = {g};
  s.problem.budget = 140;
  s.questions.assign(6, QuestionSpec{});

  s.market.worker_arrival_rate = 150.0;
  s.market.worker_error_prob = 0.2;
  s.market.abandon_prob = 0.15;
  s.market.abandon_hold_rate = 2.0;
  const auto outage = FaultSchedule::Create({{0.6, 1.8, 0.05, -1.0}});
  EXPECT_TRUE(outage.ok());
  s.market.fault_schedule = std::make_shared<FaultSchedule>(*outage);
  s.market.seed = 4242;
  s.market.record_trace = true;

  s.config.review_interval = 0.2;
  s.config.straggler_quantile = 0.9;
  s.config.budget = 200;
  s.config.acceptance_timeout = 1.0;
  s.config.abandonment = {0.15, 2.0};
  // Retry budgets sit ABOVE every injector's consecutive-fault cap (1..3
  // below), which is what makes the injected faults transparent.
  s.config.market_retry.max_attempts = 5;
  return s;
}

struct DurableRun {
  FaultTolerantReport report;
  std::vector<TraceEvent> trace;
};

StatusOr<DurableRun> RunSoak(const SoakScenario& s, JournalStorage& storage,
                             FaultGate gate) {
  const RepetitionAllocator allocator;
  FaultTolerantConfig config = s.config;
  config.market_fault_gate = std::move(gate);
  const FaultTolerantExecutor executor(&allocator, config);
  DurabilityConfig durability;
  durability.storage = &storage;
  durability.snapshot_interval = s.snapshot_interval;
  durability.journal_retry.max_attempts = 5;
  DurableRun run;
  HTUNE_ASSIGN_OR_RETURN(
      run.report, executor.RunDurable(s.market, s.problem, s.questions,
                                      durability, &run.trace));
  return run;
}

void ExpectReportsIdentical(const FaultTolerantReport& a,
                            const FaultTolerantReport& b) {
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.spent, b.spent);
  EXPECT_EQ(a.reviews, b.reviews);
  EXPECT_EQ(a.stragglers, b.stragglers);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.abandoned_attempts, b.abandoned_attempts);
  EXPECT_EQ(a.expired_posts, b.expired_posts);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.floor_repetitions, b.floor_repetitions);
  EXPECT_EQ(a.deadline_expired, b.deadline_expired);
  EXPECT_EQ(a.answers, b.answers);
}

void ExpectTracesIdentical(const std::vector<TraceEvent>& a,
                           const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].worker, b[i].worker) << "event " << i;
    EXPECT_EQ(a[i].task, b[i].task) << "event " << i;
    EXPECT_EQ(a[i].repetition, b[i].repetition) << "event " << i;
  }
}

void ExpectPaymentsExactlyOnce(const std::string& journal, long spent) {
  const auto contents = ScanJournal(journal);
  ASSERT_TRUE(contents.ok());
  std::map<std::pair<uint64_t, int32_t>, int32_t> payments;
  long total = 0;
  for (const JournalRecord& record : contents->records) {
    if (record.type != JournalRecordType::kPayment) continue;
    Decoder decoder(record.payload);
    uint64_t task = 0;
    int32_t slot = 0, price = 0;
    ASSERT_TRUE(decoder.GetU64(&task).ok());
    ASSERT_TRUE(decoder.GetI32(&slot).ok());
    ASSERT_TRUE(decoder.GetI32(&price).ok());
    ASSERT_TRUE(decoder.ExpectDone().ok());
    EXPECT_TRUE(payments.emplace(std::make_pair(task, slot), price).second)
        << "task " << task << " slot " << slot << " paid twice";
    total += price;
  }
  EXPECT_EQ(total, spent);
}

// Uniform [0, 1) from the top 53 bits.
double NextDouble(SplitMix64& rng) {
  return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
}

// The per-(seed, cycle) fault schedule. Every knob is a pure function of
// the inputs, so a soak seed is a complete, replayable description of its
// chaos — a failing seed can be re-run alone and bisected.
FaultInjectorConfig DeriveInjectorConfig(uint64_t seed, int cycle) {
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(cycle));
  FaultInjectorConfig config;
  config.seed = rng.Next();
  config.append_fault_prob = 0.05 + 0.20 * NextDouble(rng);
  config.short_write_prob = 0.05 + 0.15 * NextDouble(rng);
  config.flush_fault_prob = 0.05 + 0.25 * NextDouble(rng);
  config.market_fault_prob = 0.05 + 0.20 * NextDouble(rng);
  config.max_consecutive_faults = 1 + static_cast<int>(rng.Next() % 3);
  return config;
}

// One cycle's observable outcome, for the determinism checks.
struct CycleOutcome {
  StatusCode status = StatusCode::kOk;
  uint64_t journal_bytes = 0;
  uint64_t append_faults = 0;
  uint64_t short_writes = 0;
  uint64_t flush_faults = 0;
  uint64_t market_faults = 0;

  bool operator==(const CycleOutcome&) const = default;
};

struct SoakResult {
  DurableRun final_run;
  std::string final_journal;
  std::vector<CycleOutcome> transcript;
};

// Runs one full soak schedule: repeated chaos cycles — each with its own
// derived fault schedule and, while crashes remain, a crash injector wired
// under the fault injector — until a run completes. The journal in `inner`
// carries state across cycles exactly as a real process would find it on
// disk after a kill.
SoakResult RunOneSchedule(const SoakScenario& scenario, uint64_t seed,
                          size_t reference_journal_size) {
  SoakResult result;
  SplitMix64 crash_rng(seed ^ 0xc3a5c85c97cb3127ULL);
  int crashes_remaining = static_cast<int>(crash_rng.Next() % 3);  // 0..2
  InMemoryJournalStorage inner;
  for (int cycle = 0;; ++cycle) {
    if (cycle >= 64) {
      ADD_FAILURE() << "seed " << seed << " did not converge in 64 cycles";
      return result;
    }
    std::unique_ptr<CrashInjectingStorage> crash;
    JournalStorage* base = &inner;
    if (crashes_remaining > 0) {
      // Crash somewhere within roughly a reference journal's worth of
      // appends from here; minimum 1 so the very first cycle can die
      // before even the header lands.
      const uint64_t budget =
          1 + crash_rng.Next() % (2 * reference_journal_size);
      crash = std::make_unique<CrashInjectingStorage>(&inner, budget);
      base = crash.get();
    }
    FaultInjector injector(DeriveInjectorConfig(seed, cycle));
    EXPECT_TRUE(ValidateFaultInjectorConfig(
        DeriveInjectorConfig(seed, cycle)).ok());
    auto storage = injector.WrapStorage(base);
    const auto run = RunSoak(scenario, *storage, injector.MarketGate());
    CycleOutcome outcome;
    outcome.status = run.ok() ? StatusCode::kOk : run.status().code();
    outcome.journal_bytes = inner.bytes().size();
    outcome.append_faults = injector.stats().append_faults;
    outcome.short_writes = injector.stats().short_writes;
    outcome.flush_faults = injector.stats().flush_faults;
    outcome.market_faults = injector.stats().market_faults;
    result.transcript.push_back(outcome);
    if (run.ok()) {
      result.final_run = *run;
      result.final_journal = inner.bytes();
      return result;
    }
    // Transparent-fault construction means the only way a cycle dies is
    // the crash injector's kill; a park (kUnavailable) here would mean a
    // fault outlasted a retry budget and the caps are wrong.
    if (run.status().code() != StatusCode::kResourceExhausted) {
      ADD_FAILURE() << "seed " << seed << " cycle " << cycle
                    << ": non-crash failure: " << run.status();
      return result;
    }
    if (crash == nullptr || !crash->crashed()) {
      ADD_FAILURE() << "seed " << seed << " cycle " << cycle
                    << ": run failed without the crash injector firing";
      return result;
    }
    --crashes_remaining;
  }
}

TEST(ChaosSoakTest, HundredsOfSeededSchedulesConvergeBitwise) {
  const SoakScenario scenario = MakeSoakScenario();

  // Fault-free reference: the truth every chaotic schedule must reproduce.
  InMemoryJournalStorage reference_storage;
  const auto reference = RunSoak(scenario, reference_storage, FaultGate());
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string reference_journal = reference_storage.bytes();
  EXPECT_GT(reference->report.reviews, 3);
  EXPECT_GT(reference->report.stragglers, 0);
  ASSERT_LE(reference->report.spent, scenario.config.budget);

  constexpr uint64_t kSchedules = 320;
  uint64_t total_faults = 0;
  uint64_t total_crashes = 0;
  for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
    SCOPED_TRACE("soak seed " + std::to_string(seed));
    const SoakResult result =
        RunOneSchedule(scenario, seed, reference_journal.size());
    if (::testing::Test::HasFailure()) return;

    // Invariant 1: bitwise identity with the fault-free reference.
    ExpectReportsIdentical(result.final_run.report, reference->report);
    ExpectTracesIdentical(result.final_run.trace, reference->trace);
    EXPECT_EQ(result.final_journal, reference_journal);
    // Invariant 2: payments exactly once, summing to the spend.
    ExpectPaymentsExactlyOnce(result.final_journal,
                              result.final_run.report.spent);
    // Invariant 3: spend never exceeds the ceiling.
    EXPECT_LE(result.final_run.report.spent, scenario.config.budget);

    for (const CycleOutcome& cycle : result.transcript) {
      total_faults += cycle.append_faults + cycle.short_writes +
                      cycle.flush_faults + cycle.market_faults;
      if (cycle.status == StatusCode::kResourceExhausted) ++total_crashes;
    }

    // Invariant 4 (spot-checked): the whole schedule is deterministic —
    // re-running a seed reproduces every cycle's status, fault counts, and
    // surviving journal size.
    if (seed % 16 == 0) {
      const SoakResult again =
          RunOneSchedule(scenario, seed, reference_journal.size());
      if (::testing::Test::HasFailure()) return;
      EXPECT_EQ(again.transcript, result.transcript);
      EXPECT_EQ(again.final_journal, result.final_journal);
    }
  }
  // The soak must actually have been chaotic, not vacuously green.
  EXPECT_GT(total_faults, 2000u) << "fault schedules were too quiet";
  EXPECT_GT(total_crashes, 50u) << "crash schedules were too quiet";
}

// ---------------------------------------------------------------------------
// Checkpoint-and-park: a market outage that outlasts the whole retry budget
// must not crash or corrupt anything — the run parks with kUnavailable and
// resumes to the bitwise-identical result once the fault clears.

TEST(ChaosSoakTest, ExhaustedMarketRetriesParkAndResume) {
  const SoakScenario scenario = MakeSoakScenario();
  InMemoryJournalStorage reference_storage;
  const auto reference = RunSoak(scenario, reference_storage, FaultGate());
  ASSERT_TRUE(reference.ok()) << reference.status();

  FaultInjectorConfig outage;
  outage.market_fault_prob = 1.0;
  outage.max_consecutive_faults = 1000;  // outlasts max_attempts = 5
  FaultInjector injector(outage);
  InMemoryJournalStorage storage;
  const auto parked = RunSoak(scenario, storage, injector.MarketGate());
  ASSERT_FALSE(parked.ok());
  EXPECT_EQ(parked.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(parked.status().message().find("parked:"), 0u)
      << parked.status();

  // The fault clears; the same storage resumes and converges.
  const auto resumed = RunSoak(scenario, storage, FaultGate());
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ExpectReportsIdentical(resumed->report, reference->report);
  ExpectTracesIdentical(resumed->trace, reference->trace);
  EXPECT_EQ(storage.bytes(), reference_storage.bytes());
  ExpectPaymentsExactlyOnce(storage.bytes(), resumed->report.spent);
}

TEST(ChaosSoakTest, ExhaustedJournalRetriesParkAndResume) {
  const SoakScenario scenario = MakeSoakScenario();
  InMemoryJournalStorage reference_storage;
  const auto reference = RunSoak(scenario, reference_storage, FaultGate());
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Storage goes mostly dark partway through: each append fails with
  // probability 0.55, so a 5-attempt retry budget is exhausted (p ≈ 5% per
  // append) within the first few dozen records but not before the journal
  // has made real progress.
  FaultInjectorConfig outage;
  outage.seed = 31;
  outage.append_fault_prob = 0.55;
  outage.max_consecutive_faults = 1000;
  FaultInjector injector(outage);
  InMemoryJournalStorage inner;
  auto storage = injector.WrapStorage(&inner);
  const auto parked = RunSoak(scenario, *storage, FaultGate());
  ASSERT_FALSE(parked.ok());
  EXPECT_EQ(parked.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(parked.status().message().find("parked:"), 0u);
  // The journal on the inner storage is a scannable prefix: the repair
  // between attempts truncated any torn frame.
  const auto torn = ScanJournal(inner.bytes());
  ASSERT_TRUE(torn.ok());

  const auto resumed = RunSoak(scenario, inner, FaultGate());
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ExpectReportsIdentical(resumed->report, reference->report);
  EXPECT_EQ(inner.bytes(), reference_storage.bytes());
  ExpectPaymentsExactlyOnce(inner.bytes(), resumed->report.spent);
}

// ---------------------------------------------------------------------------
// Breaker-open degradation: when only escalations keep failing, the breaker
// opens and the job finishes gracefully at current terms — floor-price mode,
// not an error. Divergent behavior, so tested on the non-durable path where
// no journal identity is promised.

TEST(ChaosSoakTest, OpenBreakerSkipsEscalationsGracefully) {
  const SoakScenario scenario = MakeSoakScenario();
  const RepetitionAllocator allocator;

  // Reference without a gate: the scenario genuinely escalates.
  {
    const FaultTolerantExecutor executor(&allocator, scenario.config);
    MarketSimulator market(scenario.market);
    const auto plain =
        executor.Run(market, scenario.problem, scenario.questions);
    ASSERT_TRUE(plain.ok()) << plain.status();
    ASSERT_GT(plain->escalations, 0);
  }

  auto run_gated = [&]() -> StatusOr<FaultTolerantReport> {
    FaultTolerantConfig config = scenario.config;
    config.breaker.failure_threshold = 3;
    config.market_fault_gate = [](std::string_view op) -> Status {
      if (op == "reprice.escalate") {
        return UnavailableError("escalation endpoint down");
      }
      return OkStatus();
    };
    const FaultTolerantExecutor executor(&allocator, config);
    MarketSimulator market(scenario.market);
    return executor.Run(market, scenario.problem, scenario.questions);
  };

  const auto degraded = run_gated();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->escalations, 0);  // every raise was skipped
  EXPECT_LE(degraded->spent, scenario.config.budget);
  // Degraded-mode decisions are just as deterministic as healthy ones.
  const auto again = run_gated();
  ASSERT_TRUE(again.ok()) << again.status();
  ExpectReportsIdentical(*again, *degraded);
}

// ---------------------------------------------------------------------------
// Deadline expiry is replay-consistent: a durable run that hit its deadline
// recovers from any prefix to the identical (flagged) report.

TEST(ChaosSoakTest, DeadlineExpiryIsFlaggedAndReplayConsistent) {
  SoakScenario scenario = MakeSoakScenario();
  scenario.config.time_deadline = 3 * scenario.config.review_interval;

  InMemoryJournalStorage baseline_storage;
  const auto baseline = RunSoak(scenario, baseline_storage, FaultGate());
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_TRUE(baseline->report.deadline_expired);
  EXPECT_LE(baseline->report.reviews, 3);
  EXPECT_LE(baseline->report.spent, scenario.config.budget);

  // Without the deadline the same scenario reviews for longer — the cut is
  // real, not incidental.
  SoakScenario unlimited = MakeSoakScenario();
  InMemoryJournalStorage unlimited_storage;
  const auto full = RunSoak(unlimited, unlimited_storage, FaultGate());
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->report.deadline_expired);
  EXPECT_GT(full->report.reviews, baseline->report.reviews);

  const std::string journal = baseline_storage.bytes();
  const auto contents = ScanJournal(journal);
  ASSERT_TRUE(contents.ok());
  std::vector<uint64_t> boundaries = {0, 8};
  for (const JournalRecord& record : contents->records) {
    boundaries.push_back(record.end_offset);
  }
  for (const uint64_t boundary : boundaries) {
    SCOPED_TRACE("killed at boundary " + std::to_string(boundary));
    InMemoryJournalStorage storage(
        journal.substr(0, static_cast<size_t>(boundary)));
    const auto recovered = RunSoak(scenario, storage, FaultGate());
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    ExpectReportsIdentical(recovered->report, baseline->report);
    EXPECT_TRUE(recovered->report.deadline_expired);
    EXPECT_EQ(storage.bytes(), journal);
  }
}

}  // namespace
}  // namespace htune
