#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "control/adaptive_retuner.h"
#include "stats/descriptive.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Believed() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

TuningProblem MakeProblem(long budget) {
  TaskGroup a;
  a.name = "a";
  a.num_tasks = 10;
  a.repetitions = 4;
  a.processing_rate = 2.0;
  a.curve = Believed();
  TaskGroup b = a;
  b.repetitions = 6;
  TuningProblem problem;
  problem.groups = {a, b};
  problem.budget = budget;
  return problem;
}

MarketConfig MisCalibratedMarket(uint64_t seed, double truth_factor) {
  // The market's true responsiveness is `truth_factor` times the belief.
  MarketConfig config;
  config.worker_arrival_rate = 200.0;
  config.true_curve = std::make_shared<FunctionCurve>(
      [truth_factor](double p) { return truth_factor * (p + 1.0); },
      "scaled-truth");
  config.seed = seed;
  config.record_trace = false;
  return config;
}

TEST(AdaptiveRetunerTest, RunsToCompletionAndAccountsSpend) {
  const TuningProblem problem = MakeProblem(600);
  const RepetitionAllocator allocator;
  RetunerConfig config;
  config.review_interval = 0.2;
  const AdaptiveRetuner retuner(&allocator, config);
  MarketSimulator market(MisCalibratedMarket(1, 1.0));
  const std::vector<QuestionSpec> questions(
      static_cast<size_t>(problem.TotalTasks()));
  const auto report = retuner.Run(market, problem, questions);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->latency, 0.0);
  EXPECT_LE(report->spent, problem.budget);
  EXPECT_EQ(report->final_scale.size(), 2u);
  EXPECT_EQ(report->final_prices.size(), 2u);
}

TEST(AdaptiveRetunerTest, WellCalibratedMarketNeedsNoScaleChange) {
  const TuningProblem problem = MakeProblem(600);
  const RepetitionAllocator allocator;
  RetunerConfig config;
  config.review_interval = 0.2;
  config.retune_threshold = 0.5;  // generous: only large drifts trigger
  const AdaptiveRetuner retuner(&allocator, config);
  MarketSimulator market(MisCalibratedMarket(2, 1.0));
  const std::vector<QuestionSpec> questions(
      static_cast<size_t>(problem.TotalTasks()));
  const auto report = retuner.Run(market, problem, questions);
  ASSERT_TRUE(report.ok());
  for (double scale : report->final_scale) {
    EXPECT_NEAR(scale, 1.0, 0.5);
  }
}

TEST(AdaptiveRetunerTest, DetectsMarketSlowdown) {
  // Truth = 0.3x belief: the estimator must pull the scale well below 1.
  const TuningProblem problem = MakeProblem(800);
  const RepetitionAllocator allocator;
  RetunerConfig config;
  config.review_interval = 0.5;
  config.min_observations = 8;
  config.smoothing = 0.8;
  const AdaptiveRetuner retuner(&allocator, config);
  MarketSimulator market(MisCalibratedMarket(3, 0.3));
  const std::vector<QuestionSpec> questions(
      static_cast<size_t>(problem.TotalTasks()));
  const auto report = retuner.Run(market, problem, questions);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->reviews, 0);
  for (double scale : report->final_scale) {
    EXPECT_LT(scale, 0.7);
    EXPECT_GT(scale, 0.1);
  }
}

TEST(AdaptiveRetunerTest, ImprovesLatencyUnderDifferentialDrift) {
  // Group "a" behaves exactly as believed; group "b" has silently become
  // 4x less price-responsive. A uniform mis-scale would leave the optimal
  // split unchanged (latencies just rescale), but differential drift makes
  // the static split wrong: it underfunds b's repetitions. The adaptive
  // loop must detect b's low realized rate and shift the remaining budget,
  // beating the static run on realized latency.
  const RepetitionAllocator allocator;
  const auto believed = Believed();
  const auto truth_b = std::make_shared<FunctionCurve>(
      [](double p) { return 0.2 * (p + 1.0); }, "b-drifted");
  RunningStats static_lat, adaptive_lat, scale_b;
  int shifted = 0;
  const int runs = 30;
  for (int r = 0; r < runs; ++r) {
    // Long repetition chains keep budget unexposed long enough for the
    // drift signal to arrive while reallocation is still possible.
    TaskGroup a;
    a.name = "a";
    a.num_tasks = 8;
    a.repetitions = 12;
    a.processing_rate = 5.0;
    a.curve = believed;
    TuningProblem problem;
    problem.groups = {a, a};
    problem.budget = 1500;
    const std::vector<QuestionSpec> questions(
        static_cast<size_t>(problem.TotalTasks()));
    for (const bool adaptive : {false, true}) {
      MarketConfig market_config;
      market_config.worker_arrival_rate = 200.0;
      market_config.seed = 100 + static_cast<uint64_t>(r);
      market_config.record_trace = false;
      MarketSimulator market(market_config);

      RetunerConfig config;
      config.market_truth_per_group = {believed, truth_b};
      if (adaptive) {
        config.review_interval = 0.25;
        config.min_observations = 10;
        config.smoothing = 0.7;
      } else {
        config.max_reviews = 0;  // static: allocate once, never look back
      }
      const AdaptiveRetuner runner(&allocator, config);
      const auto report = runner.Run(market, problem, questions);
      ASSERT_TRUE(report.ok());
      (adaptive ? adaptive_lat : static_lat).Add(report->latency);
      if (adaptive) {
        scale_b.Add(report->final_scale[1]);
        if (report->final_prices[1] > report->final_prices[0]) ++shifted;
      }
    }
  }
  // The drifted group's scale is re-learned near its true 0.2x ...
  EXPECT_NEAR(scale_b.Mean(), 0.2, 0.08);
  // ... the controller shifts money toward it ...
  EXPECT_GT(shifted, runs * 3 / 4);
  // ... and realized latency improves over the static execution.
  EXPECT_LT(adaptive_lat.Mean(), static_lat.Mean());
}

TEST(AdaptiveRetunerTest, RejectsShapeMismatch) {
  const TuningProblem problem = MakeProblem(600);
  const RepetitionAllocator allocator;
  const AdaptiveRetuner retuner(&allocator, RetunerConfig{});
  MarketSimulator market(MisCalibratedMarket(5, 1.0));
  const std::vector<QuestionSpec> too_few(3);
  EXPECT_FALSE(retuner.Run(market, problem, too_few).ok());
}

TEST(AdaptiveRetunerDeathTest, ConfigValidation) {
  const RepetitionAllocator allocator;
  RetunerConfig bad;
  bad.review_interval = 0.0;
  EXPECT_DEATH(AdaptiveRetuner(&allocator, bad), "HTUNE_CHECK");
  RetunerConfig bad2;
  bad2.smoothing = 0.0;
  EXPECT_DEATH(AdaptiveRetuner(&allocator, bad2), "HTUNE_CHECK");
  EXPECT_DEATH(AdaptiveRetuner(nullptr, RetunerConfig{}), "HTUNE_CHECK");
}

}  // namespace
}  // namespace htune
