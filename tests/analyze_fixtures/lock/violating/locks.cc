// Fixture: two paths acquire the same pair of mutexes in opposite
// order. Both edges are declared in lock_order.toml, so the failure is
// the cycle itself, exactly as a reviewed-but-wrong declaration would be.
namespace htune {
void Pool::Drain() {
  MutexLock hold(mu_);
  MutexLock flush(flush_mu_);
}
void Pool::Flush() {
  MutexLock flush(flush_mu_);
  MutexLock hold(mu_);
}
}  // namespace htune
