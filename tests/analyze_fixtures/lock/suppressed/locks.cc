// Fixture: the same nested acquisition, declared (= reviewed) in
// lock_order.toml.
namespace htune {
void Pool::Drain() {
  MutexLock hold(mu_);
  MutexLock flush(flush_mu_);
}
}  // namespace htune
