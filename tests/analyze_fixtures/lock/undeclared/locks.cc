// Fixture: a nested acquisition nobody declared in lock_order.toml.
namespace htune {
void Pool::Drain() {
  MutexLock hold(mu_);
  MutexLock flush(flush_mu_);
}
}  // namespace htune
