// Fixture: sibling scopes -- the second guard is taken after the first
// is released, so there is no nesting and no edge.
namespace htune {
void Pool::Drain() {
  {
    MutexLock hold(mu_);
  }
  {
    MutexLock flush(flush_mu_);
  }
}
}  // namespace htune
