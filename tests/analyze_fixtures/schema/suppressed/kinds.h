// Fixture: a serialized enum with a dispatch surface missing a kind.
#pragma once
namespace htune {
enum class RecordKind { kAlpha, kBeta, kGamma };
}  // namespace htune
