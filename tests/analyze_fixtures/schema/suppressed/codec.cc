namespace htune {
const char* RecordKindToString(RecordKind kind) {
  switch (kind) {
    case RecordKind::kAlpha: return "alpha";
    case RecordKind::kBeta: return "beta";
  }
  return "?";
}
}  // namespace htune
