// Fixture: the forgotten member carries a reviewed transient annotation.
#pragma once
namespace htune {
class Widget {
 public:
  void CaptureState() { capture(version_, count_); }
  void RestoreState() { restore(version_, count_); }

 private:
  int version_ = 0;
  int count_ = 0;
  double skew_ = 0.0;  // HTUNE_TRANSIENT: derived from count_ on first use
};
}  // namespace htune
