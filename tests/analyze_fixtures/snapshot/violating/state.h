// Fixture: a state-bearing class whose codec forgot a member.
#pragma once
namespace htune {
class Widget {
 public:
  void CaptureState() { capture(version_, count_); }
  void RestoreState() { restore(version_, count_); }

 private:
  int version_ = 0;
  int count_ = 0;
  double skew_ = 0.0;  // neither serialized nor annotated -> finding
};
}  // namespace htune
