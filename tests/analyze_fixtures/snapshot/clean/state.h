// Fixture: every member is referenced by both codec paths.
#pragma once
namespace htune {
class Widget {
 public:
  void CaptureState() { capture(version_, count_, skew_); }
  void RestoreState() { restore(version_, count_, skew_); }

 private:
  int version_ = 0;
  int count_ = 0;
  double skew_ = 0.0;
};
}  // namespace htune
