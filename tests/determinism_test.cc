// The parallel runtime's determinism contract, end to end: every allocator
// and the parallel Monte Carlo evaluator must produce bitwise-identical
// results whether the default pool has 1, 4, or hardware_concurrency lanes.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "model/latency_cache.h"
#include "obs/metrics.h"
#include "tuning/deadline_allocator.h"
#include "tuning/evaluator.h"
#include "tuning/heterogeneous_allocator.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

TuningProblem SmallProblem(long budget) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  for (const int tasks : {4, 6, 9, 12}) {
    for (const int reps : {2, 3}) {
      TaskGroup g;
      g.name = "g" + std::to_string(problem.groups.size());
      g.num_tasks = tasks;
      g.repetitions = reps;
      g.processing_rate = 2.0;
      g.curve = curve;
      problem.groups.push_back(std::move(g));
    }
  }
  problem.budget = budget;
  return problem;
}

// 12 tiny identical groups: unit cost 4 each, so budget 148 leaves spare
// 100 and a per-group price range of ~26 — an enumeration space of 26^12,
// far beyond HA's enumeration bound, forcing its budget DP path.
TuningProblem WideProblem() {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  for (int i = 0; i < 12; ++i) {
    TaskGroup g;
    g.name = "w" + std::to_string(i);
    g.num_tasks = 2;
    g.repetitions = 2;
    g.processing_rate = 1.5 + 0.25 * static_cast<double>(i % 4);
    g.curve = curve;
    problem.groups.push_back(std::move(g));
  }
  problem.budget = 148;
  return problem;
}

// Runs `solve` under pools of 1, 4, and hardware lanes (cold cache each
// time) and checks every run reproduces the first bitwise.
template <typename Result, typename Solve>
void ExpectSameAcrossPools(const Solve& solve) {
  std::vector<Result> results;
  for (const int threads : {1, 4, DefaultThreadCount()}) {
    ThreadPool pool(threads);
    ScopedDefaultThreadPool scoped(&pool);
    GlobalLatencyCache().Clear();
    results.push_back(solve());
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "pool variant " << i;
  }
}

TEST(DeterminismTest, RepetitionAllocatorPaperDp) {
  const TuningProblem problem = SmallProblem(800);
  const RepetitionAllocator tuner(RepetitionAllocator::Mode::kPaperDp);
  ExpectSameAcrossPools<std::vector<int>>([&] {
    const auto prices = tuner.SolvePrices(problem);
    EXPECT_TRUE(prices.ok());
    return *prices;
  });
  // The objective value, not just the argmax, must match bitwise.
  ExpectSameAcrossPools<double>([&] {
    const auto prices = tuner.SolvePrices(problem);
    return Phase1GroupSum(problem, UniformAllocation(problem, *prices));
  });
}

TEST(DeterminismTest, RepetitionAllocatorExactDp) {
  const TuningProblem problem = SmallProblem(600);
  const RepetitionAllocator tuner(RepetitionAllocator::Mode::kExactDp);
  ExpectSameAcrossPools<std::vector<int>>([&] {
    const auto prices = tuner.SolvePrices(problem);
    EXPECT_TRUE(prices.ok());
    return *prices;
  });
}

TEST(DeterminismTest, HeterogeneousAllocatorEnumerationPath) {
  const TuningProblem problem = SmallProblem(500);
  const HeterogeneousAllocator tuner;
  ExpectSameAcrossPools<std::vector<int>>([&] {
    const auto prices = tuner.SolvePrices(problem);
    EXPECT_TRUE(prices.ok());
    return *prices;
  });
}

TEST(DeterminismTest, HeterogeneousAllocatorDpPath) {
  const TuningProblem problem = WideProblem();
  const HeterogeneousAllocator tuner;
  std::vector<int> first;
  ExpectSameAcrossPools<std::vector<int>>([&] {
    const auto prices = tuner.SolvePrices(problem);
    EXPECT_TRUE(prices.ok());
    return *prices;
  });
  ExpectSameAcrossPools<double>([&] {
    const auto prices = tuner.SolvePrices(problem);
    const ObjectivePoint op =
        HeterogeneousAllocator::Objectives(problem, *prices);
    return op.o1 + op.o2;
  });
}

TEST(DeterminismTest, DeadlineAllocatorBothObjectives) {
  const TuningProblem problem = SmallProblem(2000);
  for (const DeadlineObjective objective :
       {DeadlineObjective::kPhase1Sum, DeadlineObjective::kMostDifficult}) {
    ExpectSameAcrossPools<std::vector<int>>([&] {
      const auto plan = SolveDeadline(problem, 30.0, objective);
      EXPECT_TRUE(plan.ok());
      return plan->prices;
    });
    ExpectSameAcrossPools<double>([&] {
      const auto plan = SolveDeadline(problem, 30.0, objective);
      return plan->achieved;
    });
  }
}

TEST(DeterminismTest, ParallelMonteCarloAcrossPools) {
  const TuningProblem problem = SmallProblem(600);
  const RepetitionAllocator tuner;
  const auto alloc = tuner.Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  ExpectSameAcrossPools<double>([&] {
    return ParallelMonteCarloOverallLatency(problem, *alloc, 500, 99);
  });
  ExpectSameAcrossPools<double>([&] {
    return ParallelMonteCarloPhase1Latency(problem, *alloc, 500, 99);
  });
}

// The observability layer makes the same promise as the allocators: metric
// values — and therefore whole snapshots — must not depend on which threads
// (and which shards) took which increments.
TEST(DeterminismTest, MetricsRegistryMergeAcrossPools) {
  ExpectSameAcrossPools<obs::MetricsSnapshot>([] {
    obs::MetricsRegistry registry;
    obs::Counter& items = registry.GetCounter("det.items");
    obs::Counter& weighted = registry.GetCounter("det.weighted");
    obs::HistogramMetric& histogram =
        registry.GetHistogram("det.hist", 0.0, 1.0, 32);
    ParallelFor(10000, [&](size_t i) {
      items.Add(1);
      weighted.Add(i % 7);
      // Deterministic per-index value: same observation set regardless of
      // which thread lands it (including some under/overflow and NaN).
      const double value = static_cast<double>(i % 130) / 100.0 - 0.1;
      histogram.Observe(i % 997 == 0 ? std::nan("") : value);
    });
    registry.GetGauge("det.gauge").Set(static_cast<double>(items.Value()));
    return registry.Snapshot();
  });
}

}  // namespace
}  // namespace htune
