// Equivalence and edge-case tests for the market event queues.
//
// The calendar queue is a performance structure, so its contract is exact:
// for any push/pop schedule it must emit events in precisely the
// (time, sequence) order the binary-heap reference produces. The property
// tests here drive both implementations through identical randomized
// schedules (including pathological ones: identical times, exponentially
// spread times, overflow-range times, Assign from arbitrary permutations,
// and interleaved drains that trigger resize in both directions) and
// require the pop streams to match field-for-field.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "market/event_queue.h"
#include "rng/random.h"

namespace htune {
namespace {

MarketEvent MakeEvent(double time, uint64_t sequence,
                      MarketEvent::Kind kind = MarketEvent::Kind::kCompletion,
                      TaskId task = 1, uint64_t generation = 0) {
  MarketEvent event;
  event.time = time;
  event.sequence = sequence;
  event.task = task;
  event.kind = kind;
  event.generation = generation;
  return event;
}

bool SameEvent(const MarketEvent& a, const MarketEvent& b) {
  return a.time == b.time && a.sequence == b.sequence && a.task == b.task &&
         a.kind == b.kind && a.generation == b.generation;
}

/// Pops everything from `queue` and checks the stream against `oracle`
/// (a BinaryHeapEventQueue fed the same events).
void ExpectSameDrain(EventQueue& queue, EventQueue& oracle) {
  ASSERT_EQ(queue.size(), oracle.size());
  size_t step = 0;
  while (!oracle.empty()) {
    ASSERT_FALSE(queue.empty()) << "calendar queue drained early at " << step;
    EXPECT_TRUE(SameEvent(queue.Min(), oracle.Min())) << "Min at " << step;
    const MarketEvent got = queue.Pop();
    const MarketEvent want = oracle.Pop();
    ASSERT_TRUE(SameEvent(got, want))
        << "pop " << step << ": got (t=" << got.time << ", seq=" << got.sequence
        << ") want (t=" << want.time << ", seq=" << want.sequence << ")";
    ++step;
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, FactorySelectsImplementation) {
  std::unique_ptr<EventQueue> calendar = MakeEventQueue(EventQueueImpl::kCalendar);
  std::unique_ptr<EventQueue> heap = MakeEventQueue(EventQueueImpl::kBinaryHeap);
  ASSERT_NE(calendar, nullptr);
  ASSERT_NE(heap, nullptr);
  EXPECT_NE(dynamic_cast<CalendarEventQueue*>(calendar.get()), nullptr);
  EXPECT_NE(dynamic_cast<BinaryHeapEventQueue*>(heap.get()), nullptr);
}

TEST(EventQueueTest, PopsInTimeThenSequenceOrder) {
  for (const EventQueueImpl impl :
       {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    std::unique_ptr<EventQueue> queue = MakeEventQueue(impl);
    queue->Push(MakeEvent(3.0, 7));
    queue->Push(MakeEvent(1.0, 9));
    queue->Push(MakeEvent(1.0, 2));
    queue->Push(MakeEvent(2.0, 5));
    ASSERT_EQ(queue->size(), 4u);
    EXPECT_EQ(queue->Pop().sequence, 2u);
    EXPECT_EQ(queue->Pop().sequence, 9u);
    EXPECT_EQ(queue->Pop().sequence, 5u);
    EXPECT_EQ(queue->Pop().sequence, 7u);
    EXPECT_TRUE(queue->empty());
  }
}

TEST(EventQueueTest, RandomScheduleMatchesBinaryHeap) {
  Random rng(0x5EED0001);
  CalendarEventQueue calendar;
  BinaryHeapEventQueue oracle;
  uint64_t sequence = 0;
  double now = 0.0;
  // Interleave pushes and pops the way the simulator does: events are
  // scheduled at now + exponential increments and popped in bursts, so the
  // population swings through several resize doublings and halvings.
  for (int round = 0; round < 200; ++round) {
    const int pushes = static_cast<int>(rng.UniformInt(40));
    for (int i = 0; i < pushes; ++i) {
      const double dt = rng.Exponential(0.5 + rng.Uniform() * 10.0);
      const MarketEvent event =
          MakeEvent(now + dt, sequence++,
                    static_cast<MarketEvent::Kind>(rng.UniformInt(3)),
                    static_cast<TaskId>(1 + rng.UniformInt(1000)),
                    rng.UniformInt(5));
      calendar.Push(event);
      oracle.Push(event);
    }
    const int pops =
        static_cast<int>(rng.UniformInt(oracle.size() + 1));
    for (int i = 0; i < pops; ++i) {
      ASSERT_TRUE(SameEvent(calendar.Min(), oracle.Min()));
      const MarketEvent got = calendar.Pop();
      const MarketEvent want = oracle.Pop();
      ASSERT_TRUE(SameEvent(got, want)) << "round " << round << " pop " << i;
      now = want.time;  // the simulator clock only moves forward
    }
    ASSERT_EQ(calendar.size(), oracle.size());
  }
  ExpectSameDrain(calendar, oracle);
}

TEST(EventQueueTest, ManyIdenticalTimesBreakTiesBySequence) {
  // All events land in one bucket; the bucket's descending sort must still
  // yield ascending sequence within the tied time.
  CalendarEventQueue calendar;
  BinaryHeapEventQueue oracle;
  Random rng(0x5EED0002);
  std::vector<uint64_t> sequences;
  for (uint64_t s = 0; s < 500; ++s) sequences.push_back(s);
  // Push in shuffled sequence order.
  for (size_t i = sequences.size(); i > 1; --i) {
    std::swap(sequences[i - 1], sequences[rng.UniformInt(i)]);
  }
  for (const uint64_t s : sequences) {
    const double time = (s % 3 == 0) ? 5.0 : 5.0 + static_cast<double>(s % 3);
    calendar.Push(MakeEvent(time, s));
    oracle.Push(MakeEvent(time, s));
  }
  ExpectSameDrain(calendar, oracle);
}

TEST(EventQueueTest, WidelySpreadTimesMatchOracle) {
  // Times spanning ~12 orders of magnitude stress the width fitting and the
  // year-wrap direct search.
  CalendarEventQueue calendar;
  BinaryHeapEventQueue oracle;
  Random rng(0x5EED0003);
  uint64_t sequence = 0;
  for (int i = 0; i < 2000; ++i) {
    const double time = std::pow(10.0, rng.Uniform() * 12.0 - 3.0);
    const MarketEvent event = MakeEvent(time, sequence++);
    calendar.Push(event);
    oracle.Push(event);
  }
  ExpectSameDrain(calendar, oracle);
}

TEST(EventQueueTest, OverflowTimesDegradeButStayExact) {
  // Times past the 2^62-virtual-bucket range force the single-sorted-bucket
  // degradation; order must survive, including a mix with ordinary times.
  CalendarEventQueue calendar;
  BinaryHeapEventQueue oracle;
  Random rng(0x5EED0004);
  uint64_t sequence = 0;
  for (int i = 0; i < 300; ++i) {
    const double time = rng.Bernoulli(0.5)
                            ? rng.Uniform() * 100.0
                            : 1e19 + rng.Uniform() * 1e22;
    const MarketEvent event = MakeEvent(time, sequence++);
    calendar.Push(event);
    oracle.Push(event);
  }
  ExpectSameDrain(calendar, oracle);
}

TEST(EventQueueTest, AssignAcceptsAnyPermutation) {
  Random rng(0x5EED0005);
  std::vector<MarketEvent> events;
  for (uint64_t s = 0; s < 400; ++s) {
    events.push_back(MakeEvent(rng.Uniform() * 50.0, s));
  }
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<MarketEvent> shuffled = events;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.UniformInt(i)]);
    }
    CalendarEventQueue calendar;
    BinaryHeapEventQueue oracle;
    calendar.Assign(shuffled);
    oracle.Assign(std::move(shuffled));
    ExpectSameDrain(calendar, oracle);
  }
}

TEST(EventQueueTest, SortedSnapshotIsCanonicalAndNonDestructive) {
  for (const EventQueueImpl impl :
       {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    std::unique_ptr<EventQueue> queue = MakeEventQueue(impl);
    Random rng(0x5EED0006);
    for (uint64_t s = 0; s < 200; ++s) {
      queue->Push(MakeEvent(rng.Uniform() * 10.0, s));
    }
    const std::vector<MarketEvent> snapshot = queue->SortedSnapshot();
    ASSERT_EQ(snapshot.size(), 200u);
    EXPECT_TRUE(std::is_sorted(snapshot.begin(), snapshot.end(), EventBefore));
    // The snapshot is an observation, not a drain: popping afterwards must
    // reproduce exactly the snapshot order.
    for (size_t i = 0; i < snapshot.size(); ++i) {
      ASSERT_TRUE(SameEvent(queue->Pop(), snapshot[i])) << "pop " << i;
    }
  }
}

TEST(EventQueueTest, ClearEmptiesAndQueueRemainsUsable) {
  for (const EventQueueImpl impl :
       {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    std::unique_ptr<EventQueue> queue = MakeEventQueue(impl);
    for (uint64_t s = 0; s < 100; ++s) {
      queue->Push(MakeEvent(static_cast<double>(s), s));
    }
    queue->Clear();
    EXPECT_TRUE(queue->empty());
    EXPECT_EQ(queue->SortedSnapshot().size(), 0u);
    queue->Push(MakeEvent(2.0, 11));
    queue->Push(MakeEvent(1.0, 12));
    EXPECT_EQ(queue->Pop().sequence, 12u);
    EXPECT_EQ(queue->Pop().sequence, 11u);
  }
}

TEST(EventQueueTest, DrainToEmptyAndRefill) {
  // Repeatedly emptying the calendar queue exercises the "find min after
  // the last event popped" path and the shrink resize.
  CalendarEventQueue calendar;
  BinaryHeapEventQueue oracle;
  Random rng(0x5EED0007);
  uint64_t sequence = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    const int n = 1 + static_cast<int>(rng.UniformInt(300));
    for (int i = 0; i < n; ++i) {
      const MarketEvent event =
          MakeEvent(100.0 * cycle + rng.Uniform() * 50.0, sequence++);
      calendar.Push(event);
      oracle.Push(event);
    }
    ExpectSameDrain(calendar, oracle);
  }
}

TEST(EventQueueTest, SameTimestampFloodMatchesOracle) {
  // Degenerate width fitting: every sampled inter-event gap is zero, so the
  // span-fitted width has no information. A resize mid-flood must fall back
  // to a sane width (never 0 or subnormal), keep bucket arithmetic finite,
  // and still pop in exact (time, sequence) order. Interleaved pops force
  // both grow and shrink resizes while the population is all-one-timestamp.
  for (const double time : {0.0, 1.0, 1e9, 4.0e18}) {
    CalendarEventQueue calendar;
    BinaryHeapEventQueue oracle;
    Random rng(0x5EED0011);
    uint64_t sequence = 0;
    for (int round = 0; round < 8; ++round) {
      const int pushes = 1 + static_cast<int>(rng.UniformInt(400));
      for (int i = 0; i < pushes; ++i) {
        const MarketEvent event = MakeEvent(time, sequence++);
        calendar.Push(event);
        oracle.Push(event);
      }
      const size_t pops = oracle.size() / 2;
      for (size_t i = 0; i < pops; ++i) {
        ASSERT_TRUE(SameEvent(calendar.Min(), oracle.Min()))
            << "time " << time << " round " << round << " pop " << i;
        ASSERT_TRUE(SameEvent(calendar.Pop(), oracle.Pop()))
            << "time " << time << " round " << round << " pop " << i;
      }
    }
    ExpectSameDrain(calendar, oracle);
  }
}

TEST(EventQueueTest, NearIdenticalTimesUnderflowWidthFallsBack) {
  // A span of a few ulps divided by the population underflows to a
  // subnormal fitted width; the guard must reject it before the
  // VirtualBucket division instead of hashing with an inf quotient.
  CalendarEventQueue calendar;
  BinaryHeapEventQueue oracle;
  const double base = 1.0;
  const double ulp = std::nextafter(base, 2.0) - base;
  uint64_t sequence = 0;
  for (int i = 0; i < 300; ++i) {
    // Two clusters one ulp apart: span == ulp ~ 2e-16, width ~ 2e-18 —
    // normal but extreme; and with base 0 below, fully subnormal.
    const MarketEvent event =
        MakeEvent(base + (i % 2 == 0 ? 0.0 : ulp), sequence++);
    calendar.Push(event);
    oracle.Push(event);
  }
  ExpectSameDrain(calendar, oracle);

  // Subnormal span around zero: times 0 and DBL_TRUE_MIN * k.
  CalendarEventQueue tiny;
  BinaryHeapEventQueue tiny_oracle;
  const double denorm = std::numeric_limits<double>::denorm_min();
  for (int i = 0; i < 300; ++i) {
    const MarketEvent event =
        MakeEvent(denorm * static_cast<double>(i % 4), sequence++);
    tiny.Push(event);
    tiny_oracle.Push(event);
  }
  ExpectSameDrain(tiny, tiny_oracle);
}

TEST(EventQueueTest, AssignSameTimestampFloodThenMixedPushes) {
  // Assign() routes through Resize with the flood as the whole population;
  // follow-up pushes at other times must keep matching the oracle.
  CalendarEventQueue calendar;
  BinaryHeapEventQueue oracle;
  std::vector<MarketEvent> flood;
  for (uint64_t s = 0; s < 700; ++s) flood.push_back(MakeEvent(42.0, s));
  calendar.Assign(flood);
  oracle.Assign(flood);
  Random rng(0x5EED0012);
  uint64_t sequence = 700;
  for (int i = 0; i < 300; ++i) {
    const MarketEvent event =
        MakeEvent(40.0 + rng.Uniform() * 4.0, sequence++);
    calendar.Push(event);
    oracle.Push(event);
  }
  ExpectSameDrain(calendar, oracle);
}

}  // namespace
}  // namespace htune
