// Tests for the fleet manifest codec and scanner (durability/manifest.h)
// and the atomic-replace durability sequence (durability/journal.h):
// payload round-trips, torn-tail tolerance, orphan-evidence bookkeeping,
// compaction/rotation, and the crash matrix of AtomicReplaceFile —
// including the kill between rename and parent-directory fsync that the
// durability audit exists to cover.

#include <cstdio>
#include <string>
#include <vector>

#include "durability/journal.h"
#include "durability/manifest.h"
#include "gtest/gtest.h"

namespace htune {
namespace {

FleetJobSpec SampleSpec() {
  FleetJobSpec spec;
  spec.name = "labels#3";
  spec.priority = 7;
  spec.spec_text = "budget = 8\n[group]\ntasks = 2\nrepetitions = 2\n";
  spec.ceiling = 450;
  spec.seed_override = 99;
  spec.snapshot_interval = 4;
  spec.controller = FleetController::kAdaptiveRetuner;
  return spec;
}

TEST(ManifestCodecTest, JobPayloadRoundTrips) {
  const FleetJobSpec spec = SampleSpec();
  const std::string payload = EncodeManifestJobPayload(17, spec);
  uint64_t job_id = 0;
  FleetJobSpec decoded;
  ASSERT_TRUE(DecodeManifestJobPayload(payload, &job_id, &decoded).ok());
  EXPECT_EQ(job_id, 17u);
  EXPECT_EQ(decoded.name, spec.name);
  EXPECT_EQ(decoded.priority, spec.priority);
  EXPECT_EQ(decoded.spec_text, spec.spec_text);
  EXPECT_EQ(decoded.ceiling, spec.ceiling);
  EXPECT_EQ(decoded.seed_override, spec.seed_override);
  EXPECT_EQ(decoded.snapshot_interval, spec.snapshot_interval);
  EXPECT_EQ(decoded.controller, spec.controller);
}

TEST(ManifestCodecTest, StatePayloadRoundTrips) {
  const std::string payload = EncodeManifestStatePayload(
      5, FleetJobState::kQuarantined, 3, 12345, "divergent replay");
  uint64_t job_id = 0;
  FleetJobState state = FleetJobState::kPending;
  int32_t restarts = 0;
  uint64_t journal_bytes = 0;
  std::string detail;
  ASSERT_TRUE(DecodeManifestStatePayload(payload, &job_id, &state, &restarts,
                                         &journal_bytes, &detail)
                  .ok());
  EXPECT_EQ(job_id, 5u);
  EXPECT_EQ(state, FleetJobState::kQuarantined);
  EXPECT_EQ(restarts, 3);
  EXPECT_EQ(journal_bytes, 12345u);
  EXPECT_EQ(detail, "divergent replay");
}

TEST(ManifestCodecTest, TruncatedPayloadFailsCleanly) {
  const std::string payload = EncodeManifestJobPayload(17, SampleSpec());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    uint64_t job_id = 0;
    FleetJobSpec decoded;
    EXPECT_FALSE(DecodeManifestJobPayload(payload.substr(0, cut), &job_id,
                                          &decoded)
                     .ok())
        << "cut at " << cut;
  }
}

TEST(FleetManifestTest, AppendAndReopenFoldsState) {
  InMemoryJournalStorage storage;
  auto manifest = FleetManifest::Open(&storage);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(manifest->AppendJob(1, SampleSpec()).ok());
  ASSERT_TRUE(manifest
                  ->AppendState(1, FleetJobState::kRunning, 0, 8, "")
                  .ok());
  ASSERT_TRUE(manifest
                  ->AppendState(1, FleetJobState::kDone, 2, 777, "crc32c:42")
                  .ok());
  ASSERT_TRUE(manifest->Flush().ok());

  auto reopened = FleetManifest::Open(&storage);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->jobs().size(), 1u);
  const ManifestJobEntry& entry = reopened->jobs().at(1);
  EXPECT_EQ(entry.state, FleetJobState::kDone);
  EXPECT_EQ(entry.restarts, 2);
  EXPECT_EQ(entry.journal_bytes, 777u);
  EXPECT_EQ(entry.detail, "crc32c:42");
  EXPECT_EQ(entry.spec.name, "labels#3");
  EXPECT_EQ(reopened->next_job_id(), 2u);
}

TEST(FleetManifestTest, TornTailIsTruncatedNotFatal) {
  InMemoryJournalStorage storage;
  auto manifest = FleetManifest::Open(&storage);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(manifest->AppendJob(1, SampleSpec()).ok());
  const uint64_t intact = manifest->valid_bytes();
  // A torn append: half of a record's worth of garbage at the tail.
  storage.bytes().append("torn-record-garbage");

  const auto scan = ScanManifest(storage.bytes());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->truncated_tail);
  EXPECT_EQ(scan->valid_bytes, intact);
  EXPECT_EQ(scan->jobs.size(), 1u);

  // Reopen truncates physically and appends resume at the boundary.
  auto reopened = FleetManifest::Open(&storage);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(storage.bytes().size(), intact);
  ASSERT_TRUE(reopened
                  ->AppendState(1, FleetJobState::kDone, 0, 5, "ok")
                  .ok());
  const auto rescan = ScanManifest(storage.bytes());
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan->truncated_tail);
  EXPECT_EQ(rescan->jobs.at(1).state, FleetJobState::kDone);
}

TEST(FleetManifestTest, BitFlipEndsValidPrefix) {
  InMemoryJournalStorage storage;
  auto manifest = FleetManifest::Open(&storage);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(manifest->AppendJob(1, SampleSpec()).ok());
  const uint64_t after_job = manifest->valid_bytes();
  ASSERT_TRUE(manifest
                  ->AppendState(1, FleetJobState::kRunning, 0, 8, "")
                  .ok());

  // Flip one bit inside the kState record: the CRC walk must stop there.
  storage.bytes()[after_job + 6] ^= 0x01;
  const auto scan = ScanManifest(storage.bytes());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->truncated_tail);
  EXPECT_EQ(scan->valid_bytes, after_job);
  EXPECT_EQ(scan->jobs.at(1).state, FleetJobState::kPending);
}

TEST(FleetManifestTest, WrongMagicIsAnError) {
  const auto scan = ScanManifest("NOTM\x01\x00\x00\x00junk");
  EXPECT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kInvalidArgument);
}

TEST(FleetManifestTest, StateForUnknownJobIsReportedNotFatal) {
  InMemoryJournalStorage storage;
  auto manifest = FleetManifest::Open(&storage);
  ASSERT_TRUE(manifest.ok());
  // Recover() writes exactly this shape for orphan journals.
  ASSERT_TRUE(manifest
                  ->AppendState(9, FleetJobState::kQuarantined, 0, 0,
                                "orphan journal")
                  .ok());
  const auto scan = ScanManifest(storage.bytes());
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->unknown_state_ids.size(), 1u);
  EXPECT_EQ(scan->unknown_state_ids[0], 9u);
  EXPECT_TRUE(scan->jobs.empty());
}

TEST(FleetManifestTest, CompactedEncodingFoldsEquivalently) {
  InMemoryJournalStorage storage;
  auto manifest = FleetManifest::Open(&storage);
  ASSERT_TRUE(manifest.ok());
  FleetJobSpec spec = SampleSpec();
  ASSERT_TRUE(manifest->AppendJob(1, spec).ok());
  spec.name = "second";
  ASSERT_TRUE(manifest->AppendJob(2, spec).ok());
  // Many transitions for job 1: compaction should keep only the last.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(manifest
                    ->AppendState(1, FleetJobState::kPending, i, 0, "loop")
                    .ok());
  }
  ASSERT_TRUE(
      manifest->AppendState(1, FleetJobState::kDone, 20, 99, "final").ok());

  const std::string compact = manifest->EncodeCompacted();
  EXPECT_LT(compact.size(), storage.bytes().size());
  const auto scan = ScanManifest(compact);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->jobs.size(), 2u);
  EXPECT_EQ(scan->jobs.at(1).state, FleetJobState::kDone);
  EXPECT_EQ(scan->jobs.at(1).restarts, 20);
  EXPECT_EQ(scan->jobs.at(1).detail, "final");
  EXPECT_EQ(scan->jobs.at(2).spec.name, "second");
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return "<missing>";
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return text;
}

TEST(AtomicReplaceFileTest, FullSequenceReplacesContent) {
  const std::string path = testing::TempDir() + "/replace_full.bin";
  std::remove(path.c_str());
  {
    FileJournalStorage storage(path);
    ASSERT_TRUE(storage.Append("old-content").ok());
    ASSERT_TRUE(storage.Flush().ok());
  }
  std::vector<std::string> steps;
  ASSERT_TRUE(AtomicReplaceFile(path, "new-content",
                                [&steps](std::string_view step) {
                                  steps.emplace_back(step);
                                  return OkStatus();
                                })
                  .ok());
  EXPECT_EQ(ReadWholeFile(path), "new-content");
  // The audit contract: temp written+fsynced, renamed, parent dir fsynced —
  // in exactly that order.
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0], "temp_written");
  EXPECT_EQ(steps[1], "renamed");
  EXPECT_EQ(steps[2], "dir_synced");
  EXPECT_EQ(ReadWholeFile(path + ".tmp"), "<missing>");
}

TEST(AtomicReplaceFileTest, KillAfterTempWriteLeavesOldFileIntact) {
  const std::string path = testing::TempDir() + "/replace_kill_temp.bin";
  std::remove(path.c_str());
  {
    FileJournalStorage storage(path);
    ASSERT_TRUE(storage.Append("old-content").ok());
    ASSERT_TRUE(storage.Flush().ok());
  }
  const Status status = AtomicReplaceFile(
      path, "new-content", [](std::string_view step) {
        return step == "temp_written"
                   ? ResourceExhaustedError("killed after temp write")
                   : OkStatus();
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ReadWholeFile(path), "old-content");
}

TEST(AtomicReplaceFileTest, KillBetweenRenameAndDirSyncKeepsNewContent) {
  // The durability-audit regression: a crash after rename but before the
  // parent-directory fsync. The rename already happened, so a reader after
  // "reboot" must see the new content and never a mix; the sequence must
  // not consider the replace durable (non-OK status) because the directory
  // entry itself was not yet synced.
  const std::string path = testing::TempDir() + "/replace_kill_rename.bin";
  std::remove(path.c_str());
  {
    FileJournalStorage storage(path);
    ASSERT_TRUE(storage.Append("old-content").ok());
    ASSERT_TRUE(storage.Flush().ok());
  }
  const Status status = AtomicReplaceFile(
      path, "new-content", [](std::string_view step) {
        return step == "renamed"
                   ? ResourceExhaustedError("killed before dir fsync")
                   : OkStatus();
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ReadWholeFile(path), "new-content");
}

TEST(AtomicReplaceFileTest, RotateManifestFileCompactsInPlace) {
  const std::string path = testing::TempDir() + "/MANIFEST.rotate";
  std::remove(path.c_str());
  {
    FileJournalStorage storage(path);
    auto manifest = FleetManifest::Open(&storage);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(manifest->AppendJob(1, SampleSpec()).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(manifest
                      ->AppendState(1, FleetJobState::kPending, i, 0, "spin")
                      .ok());
    }
    ASSERT_TRUE(
        manifest->AppendState(1, FleetJobState::kDone, 50, 7, "end").ok());
    ASSERT_TRUE(manifest->Flush().ok());
  }
  const size_t before = ReadWholeFile(path).size();
  ASSERT_TRUE(RotateManifestFile(path).ok());
  const std::string after = ReadWholeFile(path);
  EXPECT_LT(after.size(), before);
  const auto scan = ScanManifest(after);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->jobs.size(), 1u);
  EXPECT_EQ(scan->jobs.at(1).state, FleetJobState::kDone);
  EXPECT_EQ(scan->jobs.at(1).restarts, 50);
  EXPECT_EQ(scan->jobs.at(1).detail, "end");
  // A fresh FleetManifest can keep appending to the rotated file.
  FileJournalStorage storage(path);
  auto reopened = FleetManifest::Open(&storage);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened
                  ->AppendState(1, FleetJobState::kParked, 50, 7, "again")
                  .ok());
  const auto rescan = ScanManifest(ReadWholeFile(path));
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->jobs.at(1).state, FleetJobState::kParked);
}

TEST(AtomicReplaceFileTest, ManifestAndJournalMagicsNeverConfuse) {
  InMemoryJournalStorage storage;
  auto manifest = FleetManifest::Open(&storage);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(manifest->AppendJob(1, SampleSpec()).ok());
  // A fleet manifest is not a journal and vice versa.
  EXPECT_FALSE(ScanJournal(storage.bytes()).ok());
  InMemoryJournalStorage journal;
  JournalWriter writer(&journal, 0);
  ASSERT_TRUE(writer.Append(JournalRecordType::kRunStart, "x").ok());
  EXPECT_FALSE(ScanManifest(journal.bytes()).ok());
}

}  // namespace
}  // namespace htune
