// Unit tests for the TaskStore: the dense slot-indexed task container and
// on-hold index behind the market simulator's hot loop. The simulator's
// own behaviour is covered by market_test / market_golden_test; this file
// pins the container contracts those depend on — O(1) id resolution across
// open/completed/unknown, slot recycling that keeps vector capacity, the
// id-sorted on-hold index with its saturated-probability count, the
// one-pass RemoveOnHoldPositions compaction, and the restore-path
// duplicate/range rejection.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "market/task_store.h"
#include "rng/random.h"

namespace htune {
namespace {

TEST(TaskStoreTest, InsertFindCompleteLifecycle) {
  TaskStore store;
  EXPECT_FALSE(store.IsKnown(1));
  EXPECT_EQ(store.FindOpen(1), nullptr);
  EXPECT_EQ(store.FindCompleted(1), nullptr);
  EXPECT_EQ(store.open_count(), 0u);
  EXPECT_EQ(store.LowestOpenId(), 0);

  OpenTask& a = store.Insert(1);
  a.outcome.id = 1;
  a.outcome.posted_time = 0.25;
  store.Insert(2).outcome.id = 2;

  EXPECT_TRUE(store.IsKnown(1));
  EXPECT_TRUE(store.IsKnown(2));
  EXPECT_FALSE(store.IsKnown(3));
  EXPECT_EQ(store.open_count(), 2u);
  EXPECT_EQ(store.LowestOpenId(), 1);
  ASSERT_NE(store.FindOpen(1), nullptr);
  EXPECT_EQ(store.FindOpen(1)->outcome.posted_time, 0.25);
  EXPECT_EQ(store.FindCompleted(1), nullptr);

  store.Complete(1);
  EXPECT_TRUE(store.IsKnown(1));
  EXPECT_EQ(store.FindOpen(1), nullptr);
  ASSERT_NE(store.FindCompleted(1), nullptr);
  EXPECT_EQ(store.FindCompleted(1)->posted_time, 0.25);
  EXPECT_EQ(store.open_count(), 1u);
  EXPECT_EQ(store.LowestOpenId(), 2);
}

TEST(TaskStoreTest, CompletedKeepsCompletionOrderNotIdOrder) {
  TaskStore store;
  for (TaskId id = 1; id <= 4; ++id) store.Insert(id).outcome.id = id;
  store.Complete(3);
  store.Complete(1);
  store.Complete(4);
  ASSERT_EQ(store.completed().size(), 3u);
  EXPECT_EQ(store.completed()[0].id, 3);
  EXPECT_EQ(store.completed()[1].id, 1);
  EXPECT_EQ(store.completed()[2].id, 4);
  // FindCompleted resolves by id regardless of completion order.
  ASSERT_NE(store.FindCompleted(1), nullptr);
  EXPECT_EQ(store.FindCompleted(1)->id, 1);
  EXPECT_EQ(store.FindCompleted(2), nullptr);  // still open
}

TEST(TaskStoreTest, RecycledSlotIsResetButKeepsCapacity) {
  TaskStore store;
  OpenTask& first = store.Insert(1);
  first.outcome.id = 1;
  first.rep_rates.assign(64, 2.0);
  first.rep_prices.assign(64, 3);
  first.next_repetition = 7;
  first.awaiting_acceptance = false;
  first.exposure_generation = 9;
  const size_t rates_capacity = first.rep_rates.capacity();
  store.Complete(1);

  // Id 2 must recycle id 1's slot: state fully reset, capacity retained.
  OpenTask& second = store.Insert(2);
  EXPECT_TRUE(second.rep_rates.empty());
  EXPECT_TRUE(second.rep_prices.empty());
  EXPECT_TRUE(second.outcome.repetitions.empty());
  EXPECT_EQ(second.next_repetition, 0);
  EXPECT_TRUE(second.awaiting_acceptance);
  EXPECT_EQ(second.exposure_generation, 0u);
  EXPECT_EQ(second.reprice_price, -1);
  EXPECT_GE(second.rep_rates.capacity(), rates_capacity);
}

TEST(TaskStoreTest, ForEachOpenInIdOrderSkipsCompleted) {
  TaskStore store;
  for (TaskId id = 1; id <= 6; ++id) store.Insert(id).outcome.id = id;
  store.Complete(2);
  store.Complete(5);
  std::vector<TaskId> seen;
  store.ForEachOpenInIdOrder(
      [&seen](TaskId id, const OpenTask& task) {
        EXPECT_EQ(task.outcome.id, id);
        seen.push_back(id);
      });
  EXPECT_EQ(seen, (std::vector<TaskId>{1, 3, 4, 6}));
}

TEST(TaskStoreTest, OnHoldIndexStaysSortedById) {
  TaskStore store;
  for (TaskId id = 1; id <= 5; ++id) store.Insert(id).outcome.id = id;
  // Add out of id order; the scan order contract is ascending id.
  store.AddOnHold(4, 0.4);
  store.AddOnHold(1, 0.1);
  store.AddOnHold(5, 0.5);
  store.AddOnHold(2, 0.2);
  ASSERT_EQ(store.on_hold_count(), 4u);
  const TaskId* ids = store.on_hold_ids();
  const double* probs = store.on_hold_probs();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ids[i], static_cast<TaskId>(i < 2 ? i + 1 : i + 2));
  }
  EXPECT_DOUBLE_EQ(probs[0], 0.1);
  EXPECT_DOUBLE_EQ(probs[3], 0.5);
  // on_hold_task resolves through the slot array to the same object.
  EXPECT_EQ(store.on_hold_task(2).outcome.id, 4);

  store.RemoveOnHold(4);
  store.RemoveOnHold(3);  // absent: no-op
  ASSERT_EQ(store.on_hold_count(), 3u);
  EXPECT_EQ(store.on_hold_ids()[2], 5);
  EXPECT_DOUBLE_EQ(store.on_hold_probs()[2], 0.5);

  store.UpdateOnHoldProb(2, 0.9);
  EXPECT_DOUBLE_EQ(store.on_hold_probs()[1], 0.9);
}

TEST(TaskStoreTest, SaturatedCountTracksProbsAtOrAboveOne) {
  TaskStore store;
  for (TaskId id = 1; id <= 4; ++id) store.Insert(id).outcome.id = id;
  store.AddOnHold(1, 0.5);
  EXPECT_EQ(store.saturated_count(), 0u);
  store.AddOnHold(2, 1.0);
  store.AddOnHold(3, 2.5);
  EXPECT_EQ(store.saturated_count(), 2u);
  // Reprice across the saturation boundary in both directions.
  store.UpdateOnHoldProb(2, 0.3);
  EXPECT_EQ(store.saturated_count(), 1u);
  store.UpdateOnHoldProb(1, 1.0);
  EXPECT_EQ(store.saturated_count(), 2u);
  // An update that stays on the same side must not drift the count.
  store.UpdateOnHoldProb(3, 1.5);
  EXPECT_EQ(store.saturated_count(), 2u);
  store.RemoveOnHold(1);
  EXPECT_EQ(store.saturated_count(), 1u);
  store.RemoveOnHold(3);
  EXPECT_EQ(store.saturated_count(), 0u);
}

TEST(TaskStoreTest, RemoveOnHoldPositionsCompactsInOnePass) {
  TaskStore store;
  for (TaskId id = 1; id <= 8; ++id) store.Insert(id).outcome.id = id;
  for (TaskId id = 1; id <= 8; ++id) {
    store.AddOnHold(id, id >= 7 ? 1.0 : 0.1 * static_cast<double>(id));
  }
  EXPECT_EQ(store.saturated_count(), 2u);
  // Drop positions 0, 3, 6 (ids 1, 4, 7 — one of them saturated).
  store.RemoveOnHoldPositions({0, 3, 6});
  ASSERT_EQ(store.on_hold_count(), 5u);
  const TaskId* ids = store.on_hold_ids();
  EXPECT_EQ(ids[0], 2);
  EXPECT_EQ(ids[1], 3);
  EXPECT_EQ(ids[2], 5);
  EXPECT_EQ(ids[3], 6);
  EXPECT_EQ(ids[4], 8);
  EXPECT_DOUBLE_EQ(store.on_hold_probs()[2], 0.5);
  EXPECT_EQ(store.saturated_count(), 1u);
  // The surviving entries still resolve to the right tasks.
  EXPECT_EQ(store.on_hold_task(4).outcome.id, 8);
  // Removing every remaining entry empties the index.
  store.RemoveOnHoldPositions({0, 1, 2, 3, 4});
  EXPECT_EQ(store.on_hold_count(), 0u);
  EXPECT_EQ(store.saturated_count(), 0u);
}

TEST(TaskStoreTest, RemoveOnHoldPositionsMatchesIndividualRemoves) {
  // Property check: batch compaction == the same removals done one by one.
  Random rng(0x7A5C0001);
  for (int trial = 0; trial < 50; ++trial) {
    const TaskId n = 1 + rng.UniformInt(40);
    TaskStore batch;
    TaskStore scalar;
    for (TaskId id = 1; id <= n; ++id) {
      batch.Insert(id).outcome.id = id;
      scalar.Insert(id).outcome.id = id;
      const double prob = rng.Uniform() * 1.2;
      batch.AddOnHold(id, prob);
      scalar.AddOnHold(id, prob);
    }
    std::vector<uint32_t> positions;
    for (uint32_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.4)) positions.push_back(i);
    }
    batch.RemoveOnHoldPositions(positions);
    // Scalar removals by id (positions index the pre-removal arrays).
    for (const uint32_t pos : positions) {
      scalar.RemoveOnHold(static_cast<TaskId>(pos + 1));
    }
    ASSERT_EQ(batch.on_hold_count(), scalar.on_hold_count());
    ASSERT_EQ(batch.saturated_count(), scalar.saturated_count());
    for (size_t i = 0; i < batch.on_hold_count(); ++i) {
      ASSERT_EQ(batch.on_hold_ids()[i], scalar.on_hold_ids()[i]);
      ASSERT_EQ(batch.on_hold_probs()[i], scalar.on_hold_probs()[i]);
    }
  }
}

TEST(TaskStoreTest, RestoreHelpersAcceptArbitraryIdOrder) {
  TaskStore store;
  store.PrepareForRestore(/*next_task=*/6);  // ids 1..5 exist
  ASSERT_NE(store.InsertForRestore(4), nullptr);
  ASSERT_NE(store.InsertForRestore(1), nullptr);
  store.FindOpen(4)->outcome.id = 4;
  store.FindOpen(1)->outcome.id = 1;

  TaskOutcome done;
  done.id = 5;
  EXPECT_TRUE(store.AddCompletedForRestore(done));
  done.id = 2;
  EXPECT_TRUE(store.AddCompletedForRestore(done));
  done.id = 3;
  EXPECT_TRUE(store.AddCompletedForRestore(done));

  EXPECT_EQ(store.open_count(), 2u);
  EXPECT_EQ(store.completed().size(), 3u);
  EXPECT_EQ(store.completed()[0].id, 5);  // completion order as appended
  ASSERT_NE(store.FindCompleted(2), nullptr);
  EXPECT_EQ(store.FindOpen(4)->outcome.id, 4);
  EXPECT_EQ(store.LowestOpenId(), 1);
}

TEST(TaskStoreTest, RestoreHelpersRejectDuplicatesAndOutOfRange) {
  TaskStore store;
  store.PrepareForRestore(/*next_task=*/4);  // ids 1..3 exist
  ASSERT_NE(store.InsertForRestore(2), nullptr);
  EXPECT_EQ(store.InsertForRestore(2), nullptr);  // duplicate open
  EXPECT_EQ(store.InsertForRestore(0), nullptr);  // below range
  EXPECT_EQ(store.InsertForRestore(4), nullptr);  // at next_task

  TaskOutcome done;
  done.id = 1;
  EXPECT_TRUE(store.AddCompletedForRestore(done));
  EXPECT_FALSE(store.AddCompletedForRestore(done));  // duplicate completed
  done.id = 2;
  EXPECT_FALSE(store.AddCompletedForRestore(done));  // already open
  done.id = 9;
  EXPECT_FALSE(store.AddCompletedForRestore(done));  // out of range
}

TEST(TaskStoreTest, ManyTasksStressLifecycle) {
  // Churn a large id space through post/hold/complete and check the store
  // agrees with a simple reference model at every few steps.
  Random rng(0x7A5C0002);
  TaskStore store;
  std::vector<TaskId> open;
  size_t completed = 0;
  TaskId next = 1;
  for (int step = 0; step < 5000; ++step) {
    const double roll = rng.Uniform();
    if (roll < 0.5 || open.empty()) {
      store.Insert(next).outcome.id = next;
      if (rng.Bernoulli(0.7)) store.AddOnHold(next, rng.Uniform());
      open.push_back(next);
      ++next;
    } else {
      const size_t pick = rng.UniformInt(open.size());
      const TaskId id = open[pick];
      store.RemoveOnHold(id);
      store.Complete(id);
      open[pick] = open.back();
      open.pop_back();
      ++completed;
    }
  }
  EXPECT_EQ(store.open_count(), open.size());
  EXPECT_EQ(store.completed().size(), completed);
  for (const TaskId id : open) {
    ASSERT_NE(store.FindOpen(id), nullptr);
    EXPECT_EQ(store.FindOpen(id)->outcome.id, id);
  }
  // On-hold index is a sorted subset of the open set.
  const TaskId* ids = store.on_hold_ids();
  for (size_t i = 0; i + 1 < store.on_hold_count(); ++i) {
    EXPECT_LT(ids[i], ids[i + 1]);
  }
  for (size_t i = 0; i < store.on_hold_count(); ++i) {
    EXPECT_EQ(store.on_hold_task(i).outcome.id, ids[i]);
  }
}

}  // namespace
}  // namespace htune
