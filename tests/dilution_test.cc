#include "control/dilution.h"

#include <memory>

#include "gtest/gtest.h"
#include "model/latency_model.h"
#include "model/price_rate_curve.h"

namespace htune {
namespace {

TEST(DilutionTest, UnsaturatedMarketReturnsBaseCurveUnchanged) {
  auto base = std::make_shared<LinearCurve>(1.0, 1.0);
  // total weight below the arrival rate: factor 1, and the convenience
  // wrapper hands back the very same object (no indirection on the
  // uncontended path).
  auto curve = DiluteCurveForSharedMarket(base, 100.0, 40.0);
  EXPECT_EQ(curve.get(), base.get());
  // Boundary: exactly at saturation the factor is still 1.
  EXPECT_EQ(DiluteCurveForSharedMarket(base, 100.0, 100.0).get(), base.get());
}

TEST(DilutionTest, SaturatedMarketScalesRatesByArrivalOverTotalWeight) {
  auto base = std::make_shared<LinearCurve>(1.0, 1.0);
  const DilutedCurve diluted(base, 100.0, 250.0);
  EXPECT_DOUBLE_EQ(diluted.factor(), 0.4);
  for (double price : {1.0, 5.0, 42.0}) {
    EXPECT_DOUBLE_EQ(diluted.Rate(price), base->Rate(price) * 0.4);
  }
  EXPECT_NE(diluted.Name().find("diluted"), std::string::npos);
}

TEST(DilutionTest, DilutionPreservesMonotonicityAndPositivity) {
  auto base = std::make_shared<QuadraticCurve>(1.0, 1.0);
  const DilutedCurve diluted(base, 50.0, 400.0);
  double prev = 0.0;
  for (double price = 1.0; price <= 30.0; price += 1.0) {
    const double rate = diluted.Rate(price);
    EXPECT_GT(rate, 0.0);
    EXPECT_GE(rate, prev);
    prev = rate;
  }
}

TEST(DilutionTest, CloneIsIndependentAndIdentical) {
  auto base = std::make_shared<LinearCurve>(2.0, 3.0);
  const DilutedCurve diluted(base, 10.0, 25.0);
  const auto clone = diluted.Clone();
  EXPECT_DOUBLE_EQ(clone->Rate(7.0), diluted.Rate(7.0));
  EXPECT_EQ(clone->Name(), diluted.Name());
}

TEST(DilutionTest, ExecutorsSeeLongerLatenciesThroughTheCurveInterface) {
  // The point of the seam: a latency evaluator handed the diluted curve
  // predicts the slowdown contention causes, with no shared-market
  // plumbing of its own.
  auto base = std::make_shared<LinearCurve>(1.0, 1.0);
  const auto diluted =
      DiluteCurveForSharedMarket(base, 100.0, 300.0);  // factor 1/3
  GroupShape shape;
  shape.num_tasks = 8;
  shape.repetitions = 3;
  const double isolated = ExpectedGroupOnHoldLatency(shape, *base, 4.0);
  const double contended = ExpectedGroupOnHoldLatency(shape, *diluted, 4.0);
  EXPECT_GT(contended, isolated);
  // Erlang expectation is 1/rate-homogeneous, so a third of the rate means
  // exactly three times the expected on-hold latency.
  EXPECT_NEAR(contended, 3.0 * isolated, 1e-9 * contended);
}

TEST(DilutionTest, StackedDilutionComposesWithAbandonmentAdjustment) {
  // The two decorators meet in the platform sessions: abandonment first
  // (it models the worker), dilution second (it models the market).
  auto base = std::make_shared<LinearCurve>(1.0, 1.0);
  AbandonmentModel model{0.25, 2.0};
  auto adjusted = AdjustCurveForAbandonment(base, model);
  const auto stacked = DiluteCurveForSharedMarket(adjusted, 100.0, 200.0);
  EXPECT_DOUBLE_EQ(stacked->Rate(5.0), adjusted->Rate(5.0) * 0.5);
}

}  // namespace
}  // namespace htune
