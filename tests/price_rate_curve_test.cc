#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "model/price_rate_curve.h"

namespace htune {
namespace {

TEST(LinearCurveTest, EvaluatesLine) {
  LinearCurve curve(2.0, 3.0);
  EXPECT_DOUBLE_EQ(curve.Rate(1.0), 5.0);
  EXPECT_DOUBLE_EQ(curve.Rate(10.0), 23.0);
  EXPECT_DOUBLE_EQ(curve.slope(), 2.0);
  EXPECT_DOUBLE_EQ(curve.intercept(), 3.0);
}

TEST(LinearCurveTest, NameIsReadable) {
  EXPECT_EQ(LinearCurve(1.0, 1.0).Name(), "1.0p+1.0");
  EXPECT_EQ(LinearCurve(0.1, 10.0).Name(), "0.1p+10.0");
}

TEST(LinearCurveTest, CloneIsIndependentCopy) {
  LinearCurve curve(2.0, 1.0);
  const std::unique_ptr<PriceRateCurve> clone = curve.Clone();
  EXPECT_DOUBLE_EQ(clone->Rate(4.0), curve.Rate(4.0));
  EXPECT_EQ(clone->Name(), curve.Name());
}

TEST(LinearCurveDeathTest, RejectsInvalidParameters) {
  EXPECT_DEATH(LinearCurve(-1.0, 5.0), "HTUNE_CHECK");
  EXPECT_DEATH(LinearCurve(0.0, 0.0), "HTUNE_CHECK");
}

TEST(QuadraticCurveTest, EvaluatesParabola) {
  QuadraticCurve curve(1.0, 1.0);  // 1 + p^2
  EXPECT_DOUBLE_EQ(curve.Rate(1.0), 2.0);
  EXPECT_DOUBLE_EQ(curve.Rate(3.0), 10.0);
}

TEST(LogCurveTest, EvaluatesLog1p) {
  LogCurve curve(2.0);
  EXPECT_NEAR(curve.Rate(1.0), 2.0 * std::log(2.0), 1e-12);
  EXPECT_NEAR(curve.Rate(0.0), 0.0, 1e-12);
}

TEST(TableCurveTest, InterpolatesBetweenPoints) {
  const auto curve = TableCurve::Create({{1.0, 2.0}, {3.0, 6.0}}, "t");
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->Rate(1.0), 2.0);
  EXPECT_DOUBLE_EQ(curve->Rate(2.0), 4.0);
  EXPECT_DOUBLE_EQ(curve->Rate(3.0), 6.0);
}

TEST(TableCurveTest, ExtrapolatesConstantBelowAndLinearAbove) {
  const auto curve = TableCurve::Create({{2.0, 4.0}, {4.0, 8.0}}, "t");
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->Rate(1.0), 4.0);   // clamp below
  EXPECT_DOUBLE_EQ(curve->Rate(6.0), 12.0);  // extend last segment
}

TEST(TableCurveTest, SortsUnorderedInput) {
  const auto curve = TableCurve::Create({{4.0, 8.0}, {2.0, 4.0}}, "t");
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->Rate(3.0), 6.0);
}

TEST(TableCurveTest, PaperTable1SortVotes) {
  // Table 1 sorting-vote column: (1.5, 1.5), (2, 2), (3, 3) — the identity.
  const auto curve =
      TableCurve::Create({{2.0, 2.0}, {3.0, 3.0}, {1.5, 1.5}}, "sort-vote");
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->Rate(2.5), 2.5);
  EXPECT_DOUBLE_EQ(curve->Rate(4.0), 4.0);
}

TEST(TableCurveTest, RejectsDegenerateTables) {
  EXPECT_FALSE(TableCurve::Create({{1.0, 2.0}}, "t").ok());
  EXPECT_FALSE(TableCurve::Create({{1.0, 2.0}, {1.0, 3.0}}, "t").ok());
  EXPECT_FALSE(TableCurve::Create({{1.0, 2.0}, {2.0, 1.0}}, "t").ok());
  EXPECT_FALSE(TableCurve::Create({{1.0, 0.0}, {2.0, 1.0}}, "t").ok());
}

TEST(TableCurveTest, CloneMatchesOriginal) {
  const auto curve = TableCurve::Create({{1.0, 1.0}, {5.0, 9.0}}, "t");
  ASSERT_TRUE(curve.ok());
  const auto clone = curve->Clone();
  for (double p : {0.5, 2.0, 7.0}) {
    EXPECT_DOUBLE_EQ(clone->Rate(p), curve->Rate(p));
  }
}

TEST(SigmoidCurveTest, SaturatesAtMaxRate) {
  SigmoidCurve curve(10.0, 4.0, 1.5);
  EXPECT_DOUBLE_EQ(curve.Rate(4.0), 5.0);  // midpoint = half of max
  EXPECT_LT(curve.Rate(1.0), curve.Rate(4.0));
  EXPECT_LT(curve.Rate(50.0), 10.0);
  EXPECT_GT(curve.Rate(50.0), 9.99);
  EXPECT_GT(curve.Rate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.max_rate(), 10.0);
}

TEST(SigmoidCurveTest, MonotoneEverywhere) {
  SigmoidCurve curve(5.0, 10.0, 3.0);
  double prev = 0.0;
  for (int p = 0; p <= 40; ++p) {
    const double rate = curve.Rate(p);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(SigmoidCurveTest, CloneAndName) {
  SigmoidCurve curve(8.0, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(curve.Clone()->Rate(3.0), 4.0);
  EXPECT_EQ(curve.Name(), "sigmoid(8.0,3.0,2.0)");
}

TEST(SigmoidCurveDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(SigmoidCurve(0.0, 1.0, 1.0), "HTUNE_CHECK");
  EXPECT_DEATH(SigmoidCurve(1.0, 1.0, 0.0), "HTUNE_CHECK");
}

TEST(FunctionCurveTest, WrapsCallable) {
  FunctionCurve curve([](double p) { return 1.0 + 2.0 * p; }, "custom");
  EXPECT_DOUBLE_EQ(curve.Rate(2.0), 5.0);
  EXPECT_EQ(curve.Name(), "custom");
  EXPECT_DOUBLE_EQ(curve.Clone()->Rate(2.0), 5.0);
}

TEST(PaperSyntheticCurvesTest, MatchesPaperParameterization) {
  const auto curves = PaperSyntheticCurves();
  ASSERT_EQ(curves.size(), 6u);
  // (a) 1+p, (b) 10p+1, (c) 0.1p+10, (d) 3p+3, (e) 1+p^2, (f) log(1+p).
  EXPECT_DOUBLE_EQ(curves[0]->Rate(2.0), 3.0);
  EXPECT_DOUBLE_EQ(curves[1]->Rate(2.0), 21.0);
  EXPECT_DOUBLE_EQ(curves[2]->Rate(2.0), 10.2);
  EXPECT_DOUBLE_EQ(curves[3]->Rate(2.0), 9.0);
  EXPECT_DOUBLE_EQ(curves[4]->Rate(2.0), 5.0);
  EXPECT_NEAR(curves[5]->Rate(2.0), std::log(3.0), 1e-12);
}

TEST(PaperSyntheticCurvesTest, AllMonotoneOverExperimentRange) {
  for (const auto& curve : PaperSyntheticCurves()) {
    double prev = 0.0;
    for (int p = 1; p <= 50; ++p) {
      const double rate = curve->Rate(p);
      EXPECT_GT(rate, 0.0) << curve->Name() << " at p=" << p;
      EXPECT_GE(rate, prev) << curve->Name() << " at p=" << p;
      prev = rate;
    }
  }
}

}  // namespace
}  // namespace htune
