#include "platform/shared_market.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "model/price_rate_curve.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> UnitCurve() {
  // Rate(p) = p: weights read directly as payment units.
  return std::make_shared<LinearCurve>(1.0, 0.0);
}

SharedMarketConfig BaseConfig() {
  SharedMarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.worker_error_prob = 0.0;
  config.curve = UnitCurve();
  config.seed = 7;
  return config;
}

size_t CountAcceptances(const std::vector<TraceEvent>& trace) {
  size_t n = 0;
  for (const TraceEvent& event : trace) {
    if (event.kind == TraceEventKind::kTaskAccepted) ++n;
  }
  return n;
}

TEST(SharedMarketTest, ValidatesConfig) {
  SharedMarketConfig config = BaseConfig();
  EXPECT_TRUE(ValidateSharedMarketConfig(config).ok());
  config.worker_arrival_rate = 0.0;
  EXPECT_FALSE(ValidateSharedMarketConfig(config).ok());
  config = BaseConfig();
  config.worker_error_prob = 1.5;
  EXPECT_FALSE(ValidateSharedMarketConfig(config).ok());
  config = BaseConfig();
  config.curve = nullptr;
  EXPECT_FALSE(ValidateSharedMarketConfig(config).ok());
}

TEST(SharedMarketTest, RejectsMalformedSubmissions) {
  SharedMarket market(BaseConfig());
  ASSERT_TRUE(market.AddJob(3, 11).ok());
  EXPECT_FALSE(market.AddJob(3, 12).ok());  // not strictly ascending
  EXPECT_FALSE(market.AddJob(1, 13).ok());
  EXPECT_FALSE(market.PostTask(99, {5}, 1.0).ok());        // unknown job
  EXPECT_FALSE(market.PostTask(3, {}, 1.0).ok());          // no repetitions
  EXPECT_FALSE(market.PostTask(3, {5, 0}, 1.0).ok());      // price < 1
  EXPECT_FALSE(market.PostTask(3, {5}, 0.0).ok());         // bad rate
  EXPECT_FALSE(market.PostTask(3, {5}, 1.0, 2, 2).ok());   // answer range
  EXPECT_FALSE(market.Reprice(3, 1, 5).ok());              // unknown task
}

TEST(SharedMarketTest, SingleJobRunsToCompleteOutcomes) {
  SharedMarket market(BaseConfig());
  ASSERT_TRUE(market.AddJob(1, 42).ok());
  for (int t = 0; t < 20; ++t) {
    auto id = market.PostTask(1, {3, 3, 3}, 4.0, /*true_answer=*/1,
                              /*num_options=*/4);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<TaskId>(t + 1));
  }
  EXPECT_EQ(market.OpenTaskCount(), 20u);
  ASSERT_TRUE(market.RunToCompletion().ok());
  EXPECT_EQ(market.OpenTaskCount(), 0u);

  const std::vector<TaskOutcome>& done = market.CompletedOutcomes(1);
  ASSERT_EQ(done.size(), 20u);
  long expected_spent = 0;
  for (const TaskOutcome& outcome : done) {
    ASSERT_EQ(outcome.repetitions.size(), 3u);
    EXPECT_GT(outcome.completed_time, outcome.posted_time);
    double prev_completed = 0.0;
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      EXPECT_GE(rep.accepted_time, rep.posted_time);
      EXPECT_GT(rep.completed_time, rep.accepted_time);
      EXPECT_GE(rep.posted_time, prev_completed);
      prev_completed = rep.completed_time;
      EXPECT_EQ(rep.price, 3);
      EXPECT_TRUE(rep.correct);
      EXPECT_EQ(rep.answer, 1);
      expected_spent += rep.price;
    }
  }
  EXPECT_EQ(market.TotalSpent(1), expected_spent);
  EXPECT_EQ(CountAcceptances(market.Trace(1)), 60u);
  EXPECT_EQ(market.Counts().completions, 60u);
  EXPECT_EQ(market.Counts().tasks_posted, 20u);
}

TEST(SharedMarketTest, WorkerErrorsDrawFromTheJobLocalStream) {
  SharedMarketConfig config = BaseConfig();
  config.worker_error_prob = 1.0;  // every answer wrong
  SharedMarket market(config);
  ASSERT_TRUE(market.AddJob(1, 42).ok());
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(
        market.PostTask(1, {2, 2}, 4.0, /*true_answer=*/2, /*num_options=*/5)
            .ok());
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  for (const TaskOutcome& outcome : market.CompletedOutcomes(1)) {
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      EXPECT_FALSE(rep.correct);
      EXPECT_NE(rep.answer, 2);
      EXPECT_GE(rep.answer, 0);
      EXPECT_LT(rep.answer, 5);
    }
  }
}

// The capstone law at engine level: two identical jobs competing on one
// market each see about half the acceptance rate either sees alone. Each
// job keeps one saturating many-repetition task permanently on hold (fast
// processing), so acceptances per unit time read the effective rate.
TEST(SharedMarketTest, TwoIdenticalJobsEachSeeHalfTheIsolatedRate) {
  constexpr double kWindow = 400.0;
  constexpr double kProcessingRate = 1e6;  // turnaround is negligible
  constexpr int kSaturatingPrice = 200;    // weight 200 > arrival rate 50

  const std::vector<int> reps(200000, kSaturatingPrice);

  SharedMarket isolated(BaseConfig());
  ASSERT_TRUE(isolated.AddJob(1, 21).ok());
  ASSERT_TRUE(isolated.PostTask(1, reps, kProcessingRate).ok());
  isolated.RunUntil(kWindow);
  const double isolated_rate =
      static_cast<double>(CountAcceptances(isolated.Trace(1))) / kWindow;
  // Saturated single job accepts (nearly) every arrival.
  EXPECT_NEAR(isolated_rate, 50.0, 2.5);

  SharedMarket shared(BaseConfig());
  ASSERT_TRUE(shared.AddJob(1, 21).ok());
  ASSERT_TRUE(shared.AddJob(2, 22).ok());
  ASSERT_TRUE(shared.PostTask(1, reps, kProcessingRate).ok());
  ASSERT_TRUE(shared.PostTask(2, reps, kProcessingRate).ok());
  shared.RunUntil(kWindow);
  const double rate_1 =
      static_cast<double>(CountAcceptances(shared.Trace(1))) / kWindow;
  const double rate_2 =
      static_cast<double>(CountAcceptances(shared.Trace(2))) / kWindow;
  EXPECT_NEAR(rate_1 / isolated_rate, 0.5, 0.05);
  EXPECT_NEAR(rate_2 / isolated_rate, 0.5, 0.05);
  // Nothing is lost to the split: together they still drain the stream.
  EXPECT_NEAR((rate_1 + rate_2) / isolated_rate, 1.0, 0.05);
}

// One job raising its price mid-run drains the rival's effective rate
// through the shared denominator — no explicit coupling anywhere.
TEST(SharedMarketTest, RepriceDrainsTheRivalsEffectiveRate) {
  constexpr double kPhase = 300.0;
  const std::vector<int> reps(200000, 100);

  SharedMarket market(BaseConfig());
  ASSERT_TRUE(market.AddJob(1, 5).ok());
  ASSERT_TRUE(market.AddJob(2, 6).ok());
  auto task_1 = market.PostTask(1, reps, 1e6);
  ASSERT_TRUE(task_1.ok());
  ASSERT_TRUE(market.PostTask(2, reps, 1e6).ok());

  market.RunUntil(kPhase);
  const size_t rival_before = CountAcceptances(market.Trace(2));

  // Job 1 triples its price: weights 300 vs 100 → shares 3/4 vs 1/4.
  ASSERT_TRUE(market.Reprice(1, *task_1, 300).ok());
  market.RunUntil(2.0 * kPhase);
  const size_t rival_after = CountAcceptances(market.Trace(2)) - rival_before;

  // Equal-length windows: the rival's acceptance rate halves (Λ/4 vs Λ/2).
  const double ratio = static_cast<double>(rival_after) /
                       static_cast<double>(rival_before);
  EXPECT_NEAR(ratio, 0.5, 0.08);
}

TEST(SharedMarketTest, RepriceLeavesCompletedRepetitionsAlone) {
  SharedMarket market(BaseConfig());
  ASSERT_TRUE(market.AddJob(1, 9).ok());
  auto task = market.PostTask(1, {2, 2, 2, 2}, 5.0);
  ASSERT_TRUE(task.ok());

  // Let some repetitions complete, then reprice the remainder.
  while (true) {
    market.RunUntil(market.now() + 0.5);
    const auto& trace = market.Trace(1);
    size_t completed = 0;
    for (const TraceEvent& event : trace) {
      if (event.kind == TraceEventKind::kRepetitionCompleted) ++completed;
    }
    if (completed >= 2) break;
    ASSERT_LT(market.now(), 1e4) << "market stalled";
  }
  ASSERT_TRUE(market.Reprice(1, *task, 7).ok());
  ASSERT_TRUE(market.RunToCompletion().ok());

  const std::vector<TaskOutcome>& done = market.CompletedOutcomes(1);
  ASSERT_EQ(done.size(), 1u);
  ASSERT_EQ(done[0].repetitions.size(), 4u);
  EXPECT_EQ(done[0].repetitions.front().price, 2);
  EXPECT_EQ(done[0].repetitions.back().price, 7);
  long spent = 0;
  for (const RepetitionOutcome& rep : done[0].repetitions) spent += rep.price;
  EXPECT_EQ(market.TotalSpent(1), spent);

  EXPECT_FALSE(market.Reprice(1, *task, 9).ok());  // completed now
}

TEST(SharedMarketTest, OnHoldSinceAndCurrentPriceTrackTheOpenRepetition) {
  SharedMarket market(BaseConfig());
  ASSERT_TRUE(market.AddJob(1, 9).ok());
  auto task = market.PostTask(1, {4, 6}, 5.0);
  ASSERT_TRUE(task.ok());
  auto since = market.OnHoldSince(1, *task);
  ASSERT_TRUE(since.ok());
  EXPECT_EQ(*since, 0.0);
  auto price = market.CurrentPrice(1, *task);
  ASSERT_TRUE(price.ok());
  EXPECT_EQ(*price, 4);
  EXPECT_FALSE(market.OnHoldSince(1, 99).ok());
  ASSERT_TRUE(market.RunToCompletion().ok());
  EXPECT_FALSE(market.OnHoldSince(1, *task).ok());
  EXPECT_FALSE(market.CurrentPrice(1, *task).ok());
}

// The bitwise-resume contract: capture mid-competition, restore into a
// fresh engine, and both finish with byte-identical state.
TEST(SharedMarketTest, CaptureRestoreContinuesBitwise) {
  const std::vector<int> reps(40, 3);
  auto build = [&]() {
    auto market = std::make_unique<SharedMarket>(BaseConfig());
    EXPECT_TRUE(market->AddJob(1, 31).ok());
    EXPECT_TRUE(market->AddJob(2, 32).ok());
    EXPECT_TRUE(market->AddJob(5, 33).ok());
    return market;
  };

  auto original = build();
  for (uint64_t job : {1u, 2u, 5u}) {
    for (int t = 0; t < 6; ++t) {
      ASSERT_TRUE(original->PostTask(job, reps, 8.0).ok());
    }
  }
  original->RunUntil(2.0);
  ASSERT_GT(original->OpenTaskCount(), 0u);
  const std::string snapshot = original->CaptureState();

  // Equal states encode to equal bytes.
  EXPECT_EQ(original->CaptureState(), snapshot);

  SharedMarket resumed(BaseConfig());
  ASSERT_TRUE(resumed.RestoreState(snapshot).ok());
  EXPECT_EQ(resumed.CaptureState(), snapshot);
  EXPECT_EQ(resumed.OpenTaskCount(), original->OpenTaskCount());
  EXPECT_EQ(resumed.now(), original->now());

  ASSERT_TRUE(original->RunToCompletion().ok());
  ASSERT_TRUE(resumed.RunToCompletion().ok());
  EXPECT_EQ(resumed.CaptureState(), original->CaptureState());
  EXPECT_EQ(resumed.now(), original->now());
  for (uint64_t job : {1u, 2u, 5u}) {
    EXPECT_EQ(resumed.TotalSpent(job), original->TotalSpent(job));
    ASSERT_EQ(resumed.Trace(job).size(), original->Trace(job).size());
  }
}

// Interrupting at an arbitrary point must not perturb anything: resumed
// and uninterrupted runs produce identical bytes.
TEST(SharedMarketTest, ResumeMatchesUninterruptedRun) {
  auto run = [](double interrupt_at) {
    SharedMarketConfig config = BaseConfig();
    config.worker_error_prob = 0.2;
    SharedMarket market(config);
    EXPECT_TRUE(market.AddJob(1, 51).ok());
    EXPECT_TRUE(market.AddJob(2, 52).ok());
    for (int t = 0; t < 8; ++t) {
      EXPECT_TRUE(market.PostTask(1, {2, 5}, 6.0, 0, 3).ok());
      EXPECT_TRUE(market.PostTask(2, {4}, 6.0, 1, 3).ok());
    }
    if (interrupt_at > 0.0) {
      market.RunUntil(interrupt_at);
      const std::string snapshot = market.CaptureState();
      SharedMarket resumed(config);
      EXPECT_TRUE(resumed.RestoreState(snapshot).ok());
      if (resumed.OpenTaskCount() > 0) {
        EXPECT_TRUE(resumed.RunToCompletion().ok());
      }
      return resumed.CaptureState();
    }
    EXPECT_TRUE(market.RunToCompletion().ok());
    return market.CaptureState();
  };

  const std::string uninterrupted = run(0.0);
  EXPECT_EQ(run(0.3), uninterrupted);
  EXPECT_EQ(run(1.1), uninterrupted);
  EXPECT_EQ(run(2.7), uninterrupted);
}

// Both event-queue implementations drive the identical simulation.
TEST(SharedMarketTest, EventQueueImplementationsAgreeBitwise) {
  auto run = [](EventQueueImpl impl) {
    SharedMarketConfig config = BaseConfig();
    config.event_queue = impl;
    SharedMarket market(config);
    EXPECT_TRUE(market.AddJob(1, 61).ok());
    EXPECT_TRUE(market.AddJob(2, 62).ok());
    for (int t = 0; t < 12; ++t) {
      EXPECT_TRUE(market.PostTask(1, {3, 3}, 5.0).ok());
      EXPECT_TRUE(market.PostTask(2, {6}, 5.0).ok());
    }
    EXPECT_TRUE(market.RunToCompletion().ok());
    return market.CaptureState();
  };
  EXPECT_EQ(run(EventQueueImpl::kCalendar), run(EventQueueImpl::kBinaryHeap));
}

TEST(SharedMarketTest, RestoreRejectsCorruptBytes) {
  SharedMarket market(BaseConfig());
  EXPECT_FALSE(market.RestoreState("").ok());
  EXPECT_FALSE(market.RestoreState("garbage").ok());

  SharedMarket donor(BaseConfig());
  ASSERT_TRUE(donor.AddJob(1, 1).ok());
  ASSERT_TRUE(donor.PostTask(1, {2}, 1.0).ok());
  std::string snapshot = donor.CaptureState();
  snapshot.resize(snapshot.size() - 3);  // truncated tail
  EXPECT_FALSE(market.RestoreState(snapshot).ok());
}

}  // namespace
}  // namespace htune
