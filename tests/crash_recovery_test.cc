// Deterministic crash-recovery harness. A durable controller run is killed
// — at every journal record boundary, and mid-write at every byte offset of
// chosen records — then recovered from the same storage, and the final
// report, market trace, spend, and journal bytes must be IDENTICAL to an
// uninterrupted run's, with every payment accounted exactly once.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "control/adaptive_retuner.h"
#include "control/fault_tolerant_executor.h"
#include "durability/journal.h"
#include "durability/recovery.h"
#include "durability/serialize.h"
#include "durability/snapshot.h"
#include "market/fault_schedule.h"
#include "market/simulator.h"
#include "model/price_rate_curve.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

// ---------------------------------------------------------------------------
// Scenario: a fault-tolerant job on a hostile market (abandonment, an outage
// window, acceptance timeouts) so the journal records posts, reprices,
// payments, completions, reviews, and several snapshots.

struct FtScenario {
  TuningProblem problem;
  std::vector<QuestionSpec> questions;
  MarketConfig market;
  FaultTolerantConfig config;
  int snapshot_interval = 4;
};

FtScenario MakeFtScenario() {
  FtScenario s;
  TaskGroup g;
  g.name = "vote";
  g.num_tasks = 6;
  g.repetitions = 3;
  g.processing_rate = 5.0;
  g.curve = std::make_shared<LinearCurve>(1.0, 1.0);
  s.problem.groups = {g};
  s.problem.budget = 140;
  s.questions.assign(6, QuestionSpec{});

  s.market.worker_arrival_rate = 150.0;
  s.market.worker_error_prob = 0.2;
  s.market.abandon_prob = 0.15;
  s.market.abandon_hold_rate = 2.0;
  const auto outage = FaultSchedule::Create({{0.6, 1.8, 0.05, -1.0}});
  EXPECT_TRUE(outage.ok());
  s.market.fault_schedule = std::make_shared<FaultSchedule>(*outage);
  s.market.seed = 4242;
  s.market.record_trace = true;

  s.config.review_interval = 0.2;
  s.config.straggler_quantile = 0.9;
  s.config.budget = 200;
  s.config.acceptance_timeout = 1.0;
  s.config.abandonment = {0.15, 2.0};
  return s;
}

struct DurableRun {
  FaultTolerantReport report;
  std::vector<TraceEvent> trace;
};

StatusOr<DurableRun> RunFt(const FtScenario& s, JournalStorage& storage) {
  const RepetitionAllocator allocator;
  const FaultTolerantExecutor executor(&allocator, s.config);
  DurabilityConfig durability;
  durability.storage = &storage;
  durability.snapshot_interval = s.snapshot_interval;
  DurableRun run;
  HTUNE_ASSIGN_OR_RETURN(
      run.report, executor.RunDurable(s.market, s.problem, s.questions,
                                      durability, &run.trace));
  return run;
}

// Bitwise report equality: recovery promises the identical run, so even the
// doubles must match exactly, not approximately.
void ExpectReportsIdentical(const FaultTolerantReport& a,
                            const FaultTolerantReport& b) {
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.spent, b.spent);
  EXPECT_EQ(a.reviews, b.reviews);
  EXPECT_EQ(a.stragglers, b.stragglers);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.abandoned_attempts, b.abandoned_attempts);
  EXPECT_EQ(a.expired_posts, b.expired_posts);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.floor_repetitions, b.floor_repetitions);
  EXPECT_EQ(a.deadline_expired, b.deadline_expired);
  EXPECT_EQ(a.answers, b.answers);
}

void ExpectTracesIdentical(const std::vector<TraceEvent>& a,
                           const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].worker, b[i].worker) << "event " << i;
    EXPECT_EQ(a[i].task, b[i].task) << "event " << i;
    EXPECT_EQ(a[i].repetition, b[i].repetition) << "event " << i;
  }
}

// Exactly-once accounting: every kPayment in the journal names a distinct
// (task, slot), slots are contiguous from 0, and the total equals `spent`.
void ExpectPaymentsExactlyOnce(const std::string& journal, long spent) {
  const auto contents = ScanJournal(journal);
  ASSERT_TRUE(contents.ok());
  std::map<std::pair<uint64_t, int32_t>, int32_t> payments;
  long total = 0;
  for (const JournalRecord& record : contents->records) {
    if (record.type != JournalRecordType::kPayment) continue;
    Decoder decoder(record.payload);
    uint64_t task = 0;
    int32_t slot = 0, price = 0;
    ASSERT_TRUE(decoder.GetU64(&task).ok());
    ASSERT_TRUE(decoder.GetI32(&slot).ok());
    ASSERT_TRUE(decoder.GetI32(&price).ok());
    ASSERT_TRUE(decoder.ExpectDone().ok());
    const bool fresh = payments.emplace(std::make_pair(task, slot), price)
                           .second;
    EXPECT_TRUE(fresh) << "task " << task << " slot " << slot
                       << " paid twice";
    total += price;
  }
  EXPECT_EQ(total, spent);
  std::map<uint64_t, int32_t> max_slot;
  for (const auto& [key, price] : payments) {
    auto [it, first] = max_slot.emplace(key.first, key.second);
    if (!first) it->second = std::max(it->second, key.second);
  }
  for (const auto& [task, top] : max_slot) {
    for (int32_t slot = 0; slot <= top; ++slot) {
      EXPECT_TRUE(payments.count({task, slot}))
          << "task " << task << " skipped slot " << slot;
    }
  }
}

class FtCrashMatrixTest : public ::testing::Test {
 protected:
  // The uninterrupted run all crashed runs are compared against.
  void SetUp() override {
    scenario_ = MakeFtScenario();
    InMemoryJournalStorage storage;
    const auto run = RunFt(scenario_, storage);
    ASSERT_TRUE(run.ok()) << run.status();
    baseline_ = *run;
    journal_ = storage.bytes();
    const auto contents = ScanJournal(journal_);
    ASSERT_TRUE(contents.ok());
    records_ = contents->records;
    // The scenario must actually exercise the machinery it claims to.
    EXPECT_GT(baseline_.report.reviews, 3);
    EXPECT_GT(baseline_.report.abandoned_attempts, 0);
    size_t snapshots = 0;
    for (const JournalRecord& r : records_) {
      if (r.type == JournalRecordType::kSnapshot) ++snapshots;
    }
    EXPECT_GE(snapshots, 2u) << "scenario too short to test snapshots";
    EXPECT_EQ(records_.back().type, JournalRecordType::kRunEnd);
  }

  void ExpectRecoveryMatchesBaseline(InMemoryJournalStorage& storage) {
    const auto recovered = RunFt(scenario_, storage);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    ExpectReportsIdentical(recovered->report, baseline_.report);
    ExpectTracesIdentical(recovered->trace, baseline_.trace);
    // Recovery regenerates the journal bit for bit.
    EXPECT_EQ(storage.bytes(), journal_);
    ExpectPaymentsExactlyOnce(storage.bytes(), recovered->report.spent);
  }

  FtScenario scenario_;
  DurableRun baseline_;
  std::string journal_;
  std::vector<JournalRecord> records_;
};

TEST_F(FtCrashMatrixTest, BaselinePaymentsAreExactlyOnce) {
  ExpectPaymentsExactlyOnce(journal_, baseline_.report.spent);
}

TEST_F(FtCrashMatrixTest, KillAtEveryRecordBoundaryRecovers) {
  // Offset 0 (nothing persisted) and 8 (bare header) are boundaries too.
  std::vector<uint64_t> boundaries = {0, 8};
  for (const JournalRecord& record : records_) {
    boundaries.push_back(record.end_offset);
  }
  for (const uint64_t boundary : boundaries) {
    SCOPED_TRACE("killed at boundary " + std::to_string(boundary));
    InMemoryJournalStorage storage(
        journal_.substr(0, static_cast<size_t>(boundary)));
    ExpectRecoveryMatchesBaseline(storage);
  }
}

TEST_F(FtCrashMatrixTest, KillMidWriteAtEveryByteOffsetRecovers) {
  // Torn writes: the journal ends mid-frame at every byte offset of two
  // representative records — the first record after the first snapshot
  // (recovery must use the snapshot) and the snapshot record itself
  // (recovery must fall back to the previous state).
  size_t snapshot_index = records_.size();
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].type == JournalRecordType::kSnapshot) {
      snapshot_index = i;
      break;
    }
  }
  ASSERT_LT(snapshot_index + 1, records_.size());
  for (const size_t victim : {snapshot_index, snapshot_index + 1}) {
    const uint64_t begin =
        victim == 0 ? 8 : records_[victim - 1].end_offset;
    const uint64_t end = records_[victim].end_offset;
    for (uint64_t cut = begin; cut < end; ++cut) {
      SCOPED_TRACE("torn at byte " + std::to_string(cut) + " of record " +
                   std::to_string(victim));
      InMemoryJournalStorage storage(
          journal_.substr(0, static_cast<size_t>(cut)));
      ExpectRecoveryMatchesBaseline(storage);
    }
  }
}

TEST_F(FtCrashMatrixTest, LiveCrashInjectionTearsAndRecovers) {
  // Drive the real write path through the crash injector instead of
  // pre-truncating: the run must die with the injector's status, persist
  // exactly the byte prefix the budget allowed, and recover cleanly.
  const std::vector<uint64_t> budgets = {
      0, 13, journal_.size() / 4, journal_.size() / 2,
      journal_.size() - 3};
  for (const uint64_t budget : budgets) {
    SCOPED_TRACE("crash budget " + std::to_string(budget));
    InMemoryJournalStorage inner;
    CrashInjectingStorage crash(&inner, budget);
    const auto killed = RunFt(scenario_, crash);
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(crash.crashed());
    // Determinism: the torn journal is a byte prefix of the baseline's.
    ASSERT_LE(inner.bytes().size(), journal_.size());
    EXPECT_EQ(inner.bytes(), journal_.substr(0, inner.bytes().size()));
    ExpectRecoveryMatchesBaseline(inner);
  }
}

TEST_F(FtCrashMatrixTest, DoubleCrashStillRecovers) {
  // First kill mid-run, second kill during the recovery run, then a clean
  // recovery: exactly-once accounting must survive repeated interruption.
  InMemoryJournalStorage inner;
  CrashInjectingStorage first(&inner, journal_.size() / 3);
  ASSERT_FALSE(RunFt(scenario_, first).ok());
  const size_t after_first = inner.bytes().size();
  CrashInjectingStorage second(&inner, journal_.size() / 3);
  ASSERT_FALSE(RunFt(scenario_, second).ok());
  EXPECT_GT(inner.bytes().size(), after_first);
  ExpectRecoveryMatchesBaseline(inner);
}

TEST_F(FtCrashMatrixTest, BitFlippedTailIsDroppedAndRegenerated) {
  // Flip one bit inside a mid-journal record: recovery must discard the
  // corrupt suffix and regenerate it, converging on the baseline journal.
  const size_t victim = records_.size() / 2;
  const uint64_t begin = victim == 0 ? 8 : records_[victim - 1].end_offset;
  std::string corrupt = journal_;
  corrupt[static_cast<size_t>(begin) + 2] ^= 0x10;
  InMemoryJournalStorage storage(corrupt);
  ExpectRecoveryMatchesBaseline(storage);
}

TEST_F(FtCrashMatrixTest, V1SnapshotPrefixJournalRecoversBitwise) {
  // Forward compatibility with pre-rewrite journals: rebuild the journal up
  // to its newest snapshot, but rewrite that snapshot's market blob in the
  // legacy v1 encoding (no magic/version header), and truncate everything
  // after it — the shape of a journal written by the old engine right
  // before an upgrade-then-crash. Recovery must sniff the v1 blob, restore
  // bitwise, and regenerate the remainder of the run identically.
  size_t last_snapshot = records_.size();
  for (size_t i = records_.size(); i > 0; --i) {
    if (records_[i - 1].type == JournalRecordType::kSnapshot) {
      last_snapshot = i - 1;
      break;
    }
  }
  ASSERT_LT(last_snapshot, records_.size());

  const size_t first_frame =
      records_[0].end_offset -
      EncodeJournalRecord(records_[0].type, records_[0].payload).size();
  std::string rebuilt = journal_.substr(0, first_frame);  // header
  for (size_t i = 0; i <= last_snapshot; ++i) {
    std::string payload = records_[i].payload;
    if (i == last_snapshot) {
      std::string market_blob, executor_blob;
      ASSERT_TRUE(DurableContext::DecodeSnapshotPayload(payload, &market_blob,
                                                        &executor_blob)
                      .ok());
      const auto state = DecodeMarketState(market_blob);
      ASSERT_TRUE(state.ok()) << state.status();
      Encoder encoder;
      encoder.PutString(EncodeMarketStateLegacyV1(*state));
      encoder.PutString(executor_blob);
      payload = std::move(encoder).Release();
    }
    rebuilt += EncodeJournalRecord(records_[i].type, payload);
  }

  InMemoryJournalStorage storage(rebuilt);
  const auto recovered = RunFt(scenario_, storage);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectReportsIdentical(recovered->report, baseline_.report);
  ExpectTracesIdentical(recovered->trace, baseline_.trace);
  ExpectPaymentsExactlyOnce(storage.bytes(), recovered->report.spent);
  // The v1 snapshot record itself stays as written (the journal is
  // append-only), but every record regenerated after it must match the
  // baseline journal's suffix byte for byte.
  ASSERT_GT(storage.bytes().size(), rebuilt.size());
  EXPECT_EQ(storage.bytes().substr(rebuilt.size()),
            journal_.substr(static_cast<size_t>(
                records_[last_snapshot].end_offset)));
}

TEST_F(FtCrashMatrixTest, RerunningAFinishedJournalVerifiesAndMatches) {
  // The journal already holds kRunEnd: a re-run replays the whole history
  // in verify mode, appends nothing, and reports the same result.
  InMemoryJournalStorage storage(journal_);
  ExpectRecoveryMatchesBaseline(storage);
}

TEST_F(FtCrashMatrixTest, DurableRunMatchesPlainRun) {
  // Journaling must not perturb execution: a plain (non-durable) run on an
  // identical market produces the identical report.
  const RepetitionAllocator allocator;
  const FaultTolerantExecutor executor(&allocator, scenario_.config);
  MarketSimulator market(scenario_.market);
  const auto plain =
      executor.Run(market, scenario_.problem, scenario_.questions);
  ASSERT_TRUE(plain.ok()) << plain.status();
  ExpectReportsIdentical(*plain, baseline_.report);
  ExpectTracesIdentical(market.trace(), baseline_.trace);
}

TEST_F(FtCrashMatrixTest, DivergentConfigIsCaughtByReplayVerification) {
  // Recovering with a different market seed re-executes a DIFFERENT run;
  // the bitwise journal comparison must catch the divergence instead of
  // silently producing a franken-history. The cut must land BEFORE the
  // first snapshot: a snapshot carries the market RNG state, so once one
  // is restored the configured seed no longer matters and recovery would
  // (correctly) still converge.
  FtScenario wrong = scenario_;
  wrong.market.seed = 9999;  // different market randomness
  size_t first_snapshot = records_.size();
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].type == JournalRecordType::kSnapshot) {
      first_snapshot = i;
      break;
    }
  }
  ASSERT_GT(first_snapshot, 0u);
  ASSERT_LT(first_snapshot, records_.size());
  InMemoryJournalStorage storage(journal_.substr(
      0, static_cast<size_t>(records_[first_snapshot - 1].end_offset)));
  const auto recovered = RunFt(wrong, storage);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// The adaptive retuner under the same harness: a mis-calibrated market
// (truth = 0.4x the believed curve, carried per-group so snapshots exercise
// the curve-table encoding) with crash/recover at every record boundary.

struct RetunerScenario {
  TuningProblem problem;
  std::vector<QuestionSpec> questions;
  MarketConfig market;
  RetunerConfig config;
};

RetunerScenario MakeRetunerScenario() {
  RetunerScenario s;
  TaskGroup g;
  g.name = "drift";
  g.num_tasks = 5;
  g.repetitions = 2;
  g.processing_rate = 4.0;
  const auto believed = std::make_shared<LinearCurve>(1.0, 1.0);
  g.curve = believed;
  s.problem.groups = {g};
  s.problem.budget = 120;
  s.questions.assign(5, QuestionSpec{});

  s.market.worker_arrival_rate = 120.0;
  s.market.worker_error_prob = 0.1;
  s.market.seed = 515;
  s.market.record_trace = true;

  s.config.review_interval = 0.4;
  s.config.min_observations = 5;
  s.config.smoothing = 0.7;
  s.config.market_truth_per_group = {std::make_shared<FunctionCurve>(
      [believed](double p) { return 0.4 * believed->Rate(p); },
      "0.4x belief")};
  return s;
}

StatusOr<RetunerReport> RunRetuner(const RetunerScenario& s,
                                   JournalStorage& storage,
                                   std::vector<TraceEvent>* trace) {
  const RepetitionAllocator allocator;
  const AdaptiveRetuner retuner(&allocator, s.config);
  DurabilityConfig durability;
  durability.storage = &storage;
  durability.snapshot_interval = 3;
  return retuner.RunDurable(s.market, s.problem, s.questions, durability,
                            trace);
}

TEST(RetunerCrashMatrixTest, KillAtEveryRecordBoundaryRecovers) {
  const RetunerScenario scenario = MakeRetunerScenario();
  InMemoryJournalStorage baseline_storage;
  std::vector<TraceEvent> baseline_trace;
  const auto baseline =
      RunRetuner(scenario, baseline_storage, &baseline_trace);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_GT(baseline->reviews, 2);
  const std::string journal = baseline_storage.bytes();
  const auto contents = ScanJournal(journal);
  ASSERT_TRUE(contents.ok());
  size_t snapshots = 0;
  for (const JournalRecord& r : contents->records) {
    if (r.type == JournalRecordType::kSnapshot) ++snapshots;
  }
  EXPECT_GE(snapshots, 1u);

  std::vector<uint64_t> boundaries = {0, 8};
  for (const JournalRecord& record : contents->records) {
    boundaries.push_back(record.end_offset);
  }
  for (const uint64_t boundary : boundaries) {
    SCOPED_TRACE("killed at boundary " + std::to_string(boundary));
    InMemoryJournalStorage storage(
        journal.substr(0, static_cast<size_t>(boundary)));
    std::vector<TraceEvent> trace;
    const auto recovered = RunRetuner(scenario, storage, &trace);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered->latency, baseline->latency);
    EXPECT_EQ(recovered->spent, baseline->spent);
    EXPECT_EQ(recovered->reviews, baseline->reviews);
    EXPECT_EQ(recovered->retunes, baseline->retunes);
    EXPECT_EQ(recovered->final_scale, baseline->final_scale);
    EXPECT_EQ(recovered->final_prices, baseline->final_prices);
    ExpectTracesIdentical(trace, baseline_trace);
    EXPECT_EQ(storage.bytes(), journal);
    ExpectPaymentsExactlyOnce(storage.bytes(), recovered->spent);
  }
}

TEST(RetunerCrashMatrixTest, MidRecordTornWritesRecover) {
  const RetunerScenario scenario = MakeRetunerScenario();
  InMemoryJournalStorage baseline_storage;
  std::vector<TraceEvent> baseline_trace;
  const auto baseline =
      RunRetuner(scenario, baseline_storage, &baseline_trace);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::string journal = baseline_storage.bytes();
  // Tear inside every 11th byte across the whole journal (cheap smoke of
  // the full byte matrix, which the FT harness covers exhaustively).
  for (size_t cut = 1; cut < journal.size(); cut += 11) {
    SCOPED_TRACE("torn at byte " + std::to_string(cut));
    InMemoryJournalStorage storage(journal.substr(0, cut));
    std::vector<TraceEvent> trace;
    const auto recovered = RunRetuner(scenario, storage, &trace);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered->spent, baseline->spent);
    EXPECT_EQ(recovered->latency, baseline->latency);
    ExpectTracesIdentical(trace, baseline_trace);
    EXPECT_EQ(storage.bytes(), journal);
  }
}

// FaultTolerantConfig validation (the Run-side guard for durable and plain
// runs alike).
TEST(ValidateFaultTolerantConfigTest, RejectsBadKnobs) {
  EXPECT_TRUE(ValidateFaultTolerantConfig(FaultTolerantConfig{}).ok());
  FaultTolerantConfig c;
  c.review_interval = 0.0;
  EXPECT_EQ(ValidateFaultTolerantConfig(c).code(),
            StatusCode::kInvalidArgument);
  c = FaultTolerantConfig{};
  c.review_interval = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.straggler_quantile = 1.0;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.straggler_quantile = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.max_reposts = -1;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.price_escalation = 1.0;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.price_escalation = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.price_escalation = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.budget = -5;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.acceptance_timeout = -0.5;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.acceptance_timeout = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());

  // A bad config surfaces as a Status from Run, not a crash.
  const RepetitionAllocator allocator;
  FaultTolerantConfig bad;
  bad.price_escalation = std::numeric_limits<double>::quiet_NaN();
  const FaultTolerantExecutor executor(&allocator, bad);
  MarketConfig market_config;
  MarketSimulator market(market_config);
  TaskGroup g;
  g.num_tasks = 1;
  g.repetitions = 1;
  g.curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  problem.groups = {g};
  problem.budget = 10;
  EXPECT_EQ(executor.Run(market, problem, {QuestionSpec{}}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace htune
