// Golden-trace seed-equivalence suite for the market engine rewrite.
//
// Each scenario drives a MarketSimulator through a representative config
// (abandonment, expiry with per-repetition overrides, mid-run repricing
// through a true curve, fault schedules over a cyclic arrival schedule with
// heterogeneous workers, and a capture/restore split) and reduces the run
// to a one-line digest: a CRC32C of the exact trace CSV plus the spent /
// clock / worker / dispatch counters. The expected digests below were
// captured from the pre-rewrite engine (std::map task store + binary-heap
// event queue), so any engine change that perturbs the RNG draw order, the
// event total order, or the trace encoding fails here bitwise — not
// statistically.
//
// To regenerate after an INTENTIONAL contract change (there should be
// none), run with HTUNE_GOLDEN_PRINT=1 and paste the printed lines.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "durability/crc32c.h"
#include "market/fault_schedule.h"
#include "market/rate_schedule.h"
#include "market/simulator.h"
#include "market/trace_io.h"
#include "model/price_rate_curve.h"

namespace htune {
namespace {

std::string Digest(const MarketSimulator& market, bool with_counts) {
  const uint32_t trace_crc = Crc32c(TraceToCsv(market.trace()));
  const std::vector<TaskOutcome> outcomes = market.CompletedOutcomes();
  uint32_t summary_crc = 0;
  if (!outcomes.empty()) {
    StatusOr<TraceSummary> summary = SummarizeOutcomes(outcomes);
    if (summary.ok()) summary_crc = Crc32c(SummaryToString(*summary));
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trace_crc=%08x records=%zu spent=%ld now=%.17g workers=%llu "
                "done=%zu summary_crc=%08x",
                trace_crc, market.trace().size(), market.TotalSpent(),
                market.now(),
                static_cast<unsigned long long>(market.workers_arrived()),
                outcomes.size(), summary_crc);
  std::string digest = buf;
  if (with_counts) {
    const MarketEventCounts& counts = market.EventCounts();
    std::snprintf(buf, sizeof(buf),
                  " disp=%llu comp=%llu aband=%llu exp=%llu stale=%llu "
                  "arriv=%llu repr=%llu",
                  static_cast<unsigned long long>(counts.events_dispatched),
                  static_cast<unsigned long long>(counts.completions),
                  static_cast<unsigned long long>(counts.abandons),
                  static_cast<unsigned long long>(counts.expiries),
                  static_cast<unsigned long long>(counts.stale_expiries),
                  static_cast<unsigned long long>(counts.worker_arrivals),
                  static_cast<unsigned long long>(counts.reprices));
    digest += buf;
  }
  return digest;
}

void CheckGolden(const char* name, const std::string& got,
                 const char* want) {
  if (std::getenv("HTUNE_GOLDEN_PRINT") != nullptr) {
    std::printf("GOLDEN %s: %s\n", name, got.c_str());
  }
  EXPECT_EQ(got, want) << name;
}

// Workers who accept, hold, and walk away: exercises the abandonment branch
// (extra Bernoulli + Exponential per acceptance) and unpaid reposts.
TEST(MarketGoldenTest, Abandonment) {
  MarketConfig config;
  config.worker_arrival_rate = 30.0;
  config.worker_error_prob = 0.2;
  config.abandon_prob = 0.25;
  config.abandon_hold_rate = 4.0;
  config.seed = 77;
  MarketSimulator market(config);
  for (int i = 0; i < 12; ++i) {
    TaskSpec spec;
    spec.price_per_repetition = 1 + i % 3;
    spec.repetitions = 1 + i % 4;
    spec.on_hold_rate = 0.5 + 0.25 * (i % 5);
    spec.processing_rate = 1.5;
    spec.num_options = 4;
    spec.true_answer = i % 4;
    ASSERT_TRUE(market.PostTask(spec).ok());
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  CheckGolden(
      "abandonment", Digest(market, /*with_counts=*/true),
      "trace_crc=ecdfe8e3 records=612 spent=60 now=17.247142365790314 "
      "workers=504 done=12 summary_crc=75852512 disp=42 comp=30 aband=12 "
      "exp=0 stale=0 arriv=504 repr=0");
}

// Tight acceptance windows force expiries and reposts, including stale
// expiry events whose generation was invalidated by an acceptance; half the
// tasks use per-repetition price/rate overrides.
TEST(MarketGoldenTest, ExpiryWithPerRepetitionOverrides) {
  MarketConfig config;
  config.worker_arrival_rate = 25.0;
  config.worker_error_prob = 0.1;
  config.seed = 123;
  MarketSimulator market(config);
  for (int i = 0; i < 10; ++i) {
    TaskSpec spec;
    spec.repetitions = 3;
    spec.on_hold_rate = 0.8;
    spec.processing_rate = 2.0;
    spec.acceptance_timeout = 0.6;
    if (i % 2 == 0) {
      spec.per_repetition_prices = {1, 2, 3};
      spec.per_repetition_rates = {0.5, 1.0, 1.5};
    }
    ASSERT_TRUE(market.PostTask(spec).ok());
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  CheckGolden(
      "expiry", Digest(market, /*with_counts=*/true),
      "trace_crc=bad776fe records=705 spent=45 now=18.923486243350339 "
      "workers=425 done=10 summary_crc=b7258d32 disp=165 comp=30 aband=0 "
      "exp=105 stale=30 arriv=425 repr=0");
}

// Mid-run repricing through the market's ground-truth curve: already
// accepted repetitions keep their terms, on-hold and future ones move.
TEST(MarketGoldenTest, RepriceThroughTrueCurve) {
  MarketConfig config;
  config.worker_arrival_rate = 40.0;
  config.seed = 99;
  config.true_curve = std::make_shared<LinearCurve>(0.5, 0.5);
  MarketSimulator market(config);
  std::vector<TaskId> ids;
  for (int i = 0; i < 8; ++i) {
    TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = 3;
    spec.processing_rate = 2.0;
    StatusOr<TaskId> id = market.PostTask(spec);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  market.RunUntil(1.0);
  for (size_t i = 0; i < ids.size(); i += 2) {
    (void)market.Reprice(ids[i], 4);
  }
  market.RunUntil(2.5);
  for (size_t i = 1; i < ids.size(); i += 2) {
    (void)market.Reprice(ids[i], 2);
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  CheckGolden(
      "reprice", Digest(market, /*with_counts=*/true),
      "trace_crc=9ad4ed0a records=302 spent=55 now=5.706822280768856 "
      "workers=246 done=8 summary_crc=a6574b27 disp=24 comp=24 aband=0 "
      "exp=0 stale=0 arriv=246 repr=7");
}

// The works: cyclic arrival schedule x scripted outage/error-burst windows,
// Beta-heterogeneous workers, abandonment, timeouts, and a per-task true
// curve — every RNG draw site in one run.
TEST(MarketGoldenTest, FaultScheduleHeterogeneousWorkers) {
  MarketConfig config;
  config.worker_arrival_rate = 35.0;
  config.worker_error_prob = 0.15;
  config.worker_error_concentration = 10.0;
  config.abandon_prob = 0.1;
  config.abandon_hold_rate = 3.0;
  config.seed = 4242;
  StatusOr<RateSchedule> schedule =
      RateSchedule::Create({{0.0, 30.0}, {5.0, 40.0}}, 10.0);
  ASSERT_TRUE(schedule.ok());
  config.arrival_schedule = std::make_shared<RateSchedule>(*schedule);
  StatusOr<FaultSchedule> faults = FaultSchedule::Create(
      {{1.0, 2.0, 0.0, -1.0}, {3.0, 4.0, 1.0, 0.9}});
  ASSERT_TRUE(faults.ok());
  config.fault_schedule = std::make_shared<FaultSchedule>(*faults);
  MarketSimulator market(config);
  auto task_curve = std::make_shared<QuadraticCurve>(0.1, 0.5);
  for (int i = 0; i < 10; ++i) {
    TaskSpec spec;
    spec.price_per_repetition = 1 + i % 3;
    spec.repetitions = 2;
    spec.on_hold_rate = 0.9;
    spec.processing_rate = 1.8;
    spec.acceptance_timeout = 1.2;
    spec.num_options = 3;
    spec.true_answer = i % 3;
    if (i % 3 == 0) spec.true_curve = task_curve;
    ASSERT_TRUE(market.PostTask(spec).ok());
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  CheckGolden(
      "faults", Digest(market, /*with_counts=*/true),
      "trace_crc=f93f8b36 records=339 spent=38 now=7.4871202161608306 "
      "workers=243 done=10 summary_crc=7eeb1d5e disp=61 comp=20 aband=2 "
      "exp=20 stale=19 arriv=243 repr=0");
}

// Capture mid-run, restore into a fresh simulator, and finish both: the
// restored run must match the uninterrupted one bitwise, and both must
// match the pinned pre-rewrite digest (counters are construction-relative
// and excluded; the trace, spend, clock, and worker counts are state).
TEST(MarketGoldenTest, RestoreMidRunContinuesOnTheGoldenPath) {
  MarketConfig config;
  config.worker_arrival_rate = 30.0;
  config.worker_error_prob = 0.2;
  config.abandon_prob = 0.25;
  config.abandon_hold_rate = 4.0;
  config.seed = 77;
  auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  auto post_all = [&](MarketSimulator& market) {
    std::vector<TaskId> ids;
    for (int i = 0; i < 8; ++i) {
      TaskSpec spec;
      spec.price_per_repetition = 1 + i % 2;
      spec.repetitions = 2 + i % 2;
      spec.on_hold_rate = 0.75;
      spec.processing_rate = 1.5;
      spec.acceptance_timeout = 1.0;
      if (i % 4 == 0) spec.true_curve = curve;
      StatusOr<TaskId> id = market.PostTask(spec);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ids.push_back(*id);
    }
    market.RunUntil(0.4);
    (void)market.Reprice(ids[1], 3, 1.25);
    (void)market.Reprice(ids[0], 2);  // curve-backed task
  };

  MarketSimulator full(config);
  post_all(full);
  full.RunUntil(0.8);
  StatusOr<MarketState> state = full.CaptureState({curve});
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  MarketSimulator restored(config);
  ASSERT_TRUE(restored.RestoreState(*state, {curve}).ok());

  ASSERT_TRUE(full.RunToCompletion().ok());
  ASSERT_TRUE(restored.RunToCompletion().ok());

  const std::string full_digest = Digest(full, /*with_counts=*/false);
  const std::string restored_digest = Digest(restored, /*with_counts=*/false);
  EXPECT_EQ(full_digest, restored_digest);
  CheckGolden(
      "restore", full_digest,
      "trace_crc=cdf37f9b records=346 spent=36 now=8.1328581437894876 "
      "workers=245 done=8 summary_crc=ae0a3e41");
}

}  // namespace
}  // namespace htune
