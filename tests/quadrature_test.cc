#include <cmath>

#include <gtest/gtest.h>

#include "model/quadrature.h"

namespace htune {
namespace {

TEST(QuadratureTest, ExactForCubics) {
  // Simpson's rule is exact for polynomials up to degree 3.
  const auto cubic = [](double x) { return 2.0 * x * x * x - x + 4.0; };
  const double result = IntegrateAdaptiveSimpson(cubic, 0.0, 2.0, 1e-12);
  // Antiderivative: x^4/2 - x^2/2 + 4x -> 8 - 2 + 8 = 14.
  EXPECT_NEAR(result, 14.0, 1e-10);
}

TEST(QuadratureTest, EmptyIntervalIsZero) {
  EXPECT_EQ(IntegrateAdaptiveSimpson([](double) { return 5.0; }, 1.0, 1.0,
                                     1e-9),
            0.0);
}

TEST(QuadratureTest, SmoothTranscendental) {
  const double result = IntegrateAdaptiveSimpson(
      [](double x) { return std::sin(x); }, 0.0, M_PI, 1e-10);
  EXPECT_NEAR(result, 2.0, 1e-8);
}

TEST(QuadratureTest, SharpPeakResolved) {
  // A narrow Gaussian bump requires adaptive refinement.
  const auto peak = [](double x) {
    const double d = x - 0.73;
    return std::exp(-d * d / (2.0 * 1e-4));
  };
  const double result = IntegrateAdaptiveSimpson(peak, 0.0, 2.0, 1e-10);
  const double expected = std::sqrt(2.0 * M_PI * 1e-4);
  EXPECT_NEAR(result, expected, 1e-6);
}

TEST(QuadratureTest, DecayingTailCapturesFullMass) {
  // integral of e^{-x} over [0, inf) = 1, starting from a small window.
  const double result = IntegrateDecayingTail(
      [](double x) { return std::exp(-x); }, 0.5, 1e-12, 1e-10);
  EXPECT_NEAR(result, 1.0, 1e-7);
}

TEST(QuadratureTest, DecayingTailSlowDecay) {
  // integral of e^{-x/50}: mass 50, needs many doublings from upper=1.
  const double result = IntegrateDecayingTail(
      [](double x) { return std::exp(-x / 50.0); }, 1.0, 1e-12, 1e-8);
  EXPECT_NEAR(result, 50.0, 1e-4);
}

TEST(QuadratureDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(IntegrateAdaptiveSimpson([](double) { return 0.0; }, 1.0, 0.0,
                                        1e-9),
               "HTUNE_CHECK");
  EXPECT_DEATH(IntegrateAdaptiveSimpson([](double) { return 0.0; }, 0.0, 1.0,
                                        0.0),
               "HTUNE_CHECK");
  EXPECT_DEATH(IntegrateDecayingTail([](double) { return 0.0; }, 0.0, 1e-9,
                                     1e-9),
               "HTUNE_CHECK");
}

}  // namespace
}  // namespace htune
