// Unit tests for the resilience layer: retry/backoff/deadline policies,
// the circuit breaker's state machine under a deterministic clock, the
// seeded fault injector, the journal writer's retry-with-repair path
// (including the FileJournalStorage short-write regression), and the new
// FaultTolerantConfig resilience knobs.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "control/fault_tolerant_executor.h"
#include "durability/journal.h"
#include "resilience/circuit_breaker.h"
#include "resilience/fault_injector.h"
#include "resilience/policy.h"
#include "rng/splitmix64.h"

namespace htune {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// RetryPolicy validation: one assertion per rejection path.

TEST(RetryPolicyTest, DefaultPolicyValidates) {
  EXPECT_TRUE(ValidateRetryPolicy(RetryPolicy{}).ok());
}

TEST(RetryPolicyTest, RejectsEachBadKnob) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_EQ(ValidateRetryPolicy(p).code(), StatusCode::kInvalidArgument);
  p = RetryPolicy{};
  p.max_attempts = -3;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
  p = RetryPolicy{};
  p.initial_backoff = -0.1;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
  p = RetryPolicy{};
  p.initial_backoff = kNaN;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
  p = RetryPolicy{};
  p.backoff_multiplier = 0.5;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
  p = RetryPolicy{};
  p.backoff_multiplier = kInf;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
  p = RetryPolicy{};
  p.max_backoff = p.initial_backoff / 2.0;  // inverted ceiling
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
  p = RetryPolicy{};
  p.jitter_fraction = -0.01;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
  p = RetryPolicy{};
  p.jitter_fraction = 1.5;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
  p = RetryPolicy{};
  p.jitter_fraction = kNaN;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
}

TEST(BackoffTest, GrowsExponentiallyAndCapsWithoutJitter) {
  RetryPolicy p;
  p.initial_backoff = 0.1;
  p.backoff_multiplier = 2.0;
  p.max_backoff = 0.5;
  p.jitter_fraction = 0.0;
  SplitMix64 jitter(7);
  EXPECT_DOUBLE_EQ(BackoffFor(p, 1, jitter), 0.1);
  EXPECT_DOUBLE_EQ(BackoffFor(p, 2, jitter), 0.2);
  EXPECT_DOUBLE_EQ(BackoffFor(p, 3, jitter), 0.4);
  EXPECT_DOUBLE_EQ(BackoffFor(p, 4, jitter), 0.5);  // capped
  EXPECT_DOUBLE_EQ(BackoffFor(p, 9, jitter), 0.5);
}

TEST(BackoffTest, JitterIsBoundedAndDeterministic) {
  RetryPolicy p;
  p.initial_backoff = 0.1;
  p.jitter_fraction = 0.25;
  SplitMix64 a(42), b(42), c(43);
  std::vector<double> from_a, from_b, from_c;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double d = BackoffFor(p, attempt, a);
    from_a.push_back(d);
    from_b.push_back(BackoffFor(p, attempt, b));
    from_c.push_back(BackoffFor(p, attempt, c));
    const double base =
        std::min(p.max_backoff,
                 p.initial_backoff * std::pow(p.backoff_multiplier,
                                              static_cast<double>(attempt - 1)));
    EXPECT_GE(d, base * (1.0 - p.jitter_fraction));
    EXPECT_LE(d, base * (1.0 + p.jitter_fraction));
  }
  EXPECT_EQ(from_a, from_b);  // same seed, same delays
  EXPECT_NE(from_a, from_c);  // different seed, different jitter
}

// ---------------------------------------------------------------------------
// RetryTransient semantics.

TEST(RetryTransientTest, SucceedsWithoutRetryOnFirstOk) {
  RetryPolicy p;
  SplitMix64 jitter(1);
  int calls = 0;
  const Status status = RetryTransient(p, jitter, [&]() -> Status {
    ++calls;
    return OkStatus();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTransientTest, RetriesTransientUntilSuccess) {
  RetryPolicy p;
  p.max_attempts = 4;
  SplitMix64 jitter(1);
  int calls = 0;
  double backoff = 0.0;
  const Status status = RetryTransient(
      p, jitter,
      [&]() -> Status {
        return ++calls < 3 ? UnavailableError("blip") : OkStatus();
      },
      /*repair=*/nullptr, &backoff);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_GT(backoff, 0.0);  // two failures' worth of simulated delay
}

TEST(RetryTransientTest, ExhaustionReturnsLastTransient) {
  RetryPolicy p;
  p.max_attempts = 3;
  SplitMix64 jitter(1);
  int calls = 0;
  const Status status = RetryTransient(p, jitter, [&]() -> Status {
    ++calls;
    return UnavailableError("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTransientTest, PermanentErrorsAreNeverRetried) {
  RetryPolicy p;
  SplitMix64 jitter(1);
  int calls = 0;
  const Status status = RetryTransient(p, jitter, [&]() -> Status {
    ++calls;
    return InternalError("disk on fire");
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTransientTest, RepairRunsBetweenAttemptsAndCanAbort) {
  RetryPolicy p;
  p.max_attempts = 3;
  SplitMix64 jitter(1);
  int repairs = 0;
  Status status = RetryTransient(
      p, jitter, [&]() -> Status { return UnavailableError("blip"); },
      [&]() -> Status {
        ++repairs;
        return OkStatus();
      });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(repairs, 2);  // between 1->2 and 2->3, not after the last

  status = RetryTransient(
      p, jitter, [&]() -> Status { return UnavailableError("blip"); },
      [&]() -> Status { return InternalError("repair failed"); });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Deadline.

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired(1e18));
  EXPECT_EQ(d.Remaining(1e18), kInf);
  EXPECT_TRUE(d.Check(1e18, "loop").ok());
}

TEST(DeadlineTest, NonPositiveOrNonFiniteMeansInfinite) {
  EXPECT_TRUE(Deadline::At(0.0).infinite());
  EXPECT_TRUE(Deadline::At(-2.0).infinite());
  EXPECT_TRUE(Deadline::At(kNaN).infinite());
  EXPECT_TRUE(Deadline::At(kInf).infinite());
}

TEST(DeadlineTest, ExpiresAtTheBoundary) {
  const Deadline d = Deadline::At(5.0);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.Expired(4.999));
  EXPECT_TRUE(d.Expired(5.0));
  EXPECT_TRUE(d.Expired(6.0));
  EXPECT_DOUBLE_EQ(d.Remaining(3.0), 2.0);
  EXPECT_DOUBLE_EQ(d.Remaining(7.0), 0.0);  // never negative
  EXPECT_TRUE(d.Check(4.0, "loop").ok());
  const Status expired = d.Check(5.5, "review loop");
  EXPECT_EQ(expired.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(expired.message().find("review loop"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CircuitBreaker: satellite 3 — full state-transition coverage under a
// deterministic clock, including the half-open single-probe contract.

TEST(CircuitBreakerTest, ValidationRejectsBadKnobs) {
  EXPECT_TRUE(ValidateCircuitBreakerConfig(CircuitBreakerConfig{}).ok());
  CircuitBreakerConfig c;
  c.failure_threshold = 0;
  EXPECT_EQ(ValidateCircuitBreakerConfig(c).code(),
            StatusCode::kInvalidArgument);
  c = CircuitBreakerConfig{};
  c.open_cooldown = 0.0;
  EXPECT_FALSE(ValidateCircuitBreakerConfig(c).ok());
  c = CircuitBreakerConfig{};
  c.open_cooldown = kNaN;
  EXPECT_FALSE(ValidateCircuitBreakerConfig(c).ok());
  c = CircuitBreakerConfig{};
  c.open_cooldown = kInf;
  EXPECT_FALSE(ValidateCircuitBreakerConfig(c).ok());
  c = CircuitBreakerConfig{};
  c.half_open_successes = 0;
  EXPECT_FALSE(ValidateCircuitBreakerConfig(c).ok());
}

TEST(CircuitBreakerTest, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.open_cooldown = 1.0;
  CircuitBreaker breaker(config);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(0.1);
  breaker.RecordFailure(0.2);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(0.25));
  breaker.RecordFailure(0.3);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.AllowRequest(0.4));  // short-circuit while cooling
  EXPECT_FALSE(breaker.AllowRequest(1.29));
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  CircuitBreaker breaker(config);
  breaker.RecordFailure(0.1);
  breaker.RecordFailure(0.2);
  breaker.RecordSuccess(0.3);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  breaker.RecordFailure(0.4);
  breaker.RecordFailure(0.5);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_cooldown = 1.0;
  CircuitBreaker breaker(config);
  breaker.RecordFailure(0.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(0.5));
  // Cooldown over: the first request is the probe, concurrent/subsequent
  // requests stay short-circuited until the probe resolves.
  EXPECT_TRUE(breaker.AllowRequest(1.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest(1.0));
  EXPECT_FALSE(breaker.AllowRequest(1.5));
  breaker.RecordSuccess(1.6);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(1.7));
}

TEST(CircuitBreakerTest, FailedProbeReopensWithAFreshCooldown) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_cooldown = 1.0;
  CircuitBreaker breaker(config);
  breaker.RecordFailure(0.0);
  EXPECT_TRUE(breaker.AllowRequest(1.0));  // probe admitted
  breaker.RecordFailure(1.0);              // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_FALSE(breaker.AllowRequest(1.9));  // fresh cooldown from t=1.0
  EXPECT_TRUE(breaker.AllowRequest(2.0));
}

TEST(CircuitBreakerTest, HalfOpenCanRequireMultipleProbeSuccesses) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_cooldown = 1.0;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);
  breaker.RecordFailure(0.0);
  EXPECT_TRUE(breaker.AllowRequest(1.0));
  breaker.RecordSuccess(1.1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest(1.2));  // second sequential probe
  breaker.RecordSuccess(1.3);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// FaultInjector.

TEST(FaultInjectorTest, ValidationRejectsBadKnobs) {
  EXPECT_TRUE(ValidateFaultInjectorConfig(FaultInjectorConfig{}).ok());
  FaultInjectorConfig c;
  c.append_fault_prob = -0.1;
  EXPECT_EQ(ValidateFaultInjectorConfig(c).code(),
            StatusCode::kInvalidArgument);
  c = FaultInjectorConfig{};
  c.short_write_prob = 1.5;
  EXPECT_FALSE(ValidateFaultInjectorConfig(c).ok());
  c = FaultInjectorConfig{};
  c.flush_fault_prob = kNaN;
  EXPECT_FALSE(ValidateFaultInjectorConfig(c).ok());
  c = FaultInjectorConfig{};
  c.market_fault_prob = 2.0;
  EXPECT_FALSE(ValidateFaultInjectorConfig(c).ok());
  c = FaultInjectorConfig{};
  c.append_fault_prob = 0.7;
  c.short_write_prob = 0.7;  // sum > 1
  EXPECT_FALSE(ValidateFaultInjectorConfig(c).ok());
  c = FaultInjectorConfig{};
  c.max_consecutive_faults = -1;
  EXPECT_FALSE(ValidateFaultInjectorConfig(c).ok());
}

TEST(FaultInjectorTest, SameSeedInjectsTheSameSchedule) {
  FaultInjectorConfig config;
  config.seed = 99;
  config.append_fault_prob = 0.3;
  config.short_write_prob = 0.2;
  config.flush_fault_prob = 0.3;
  config.max_consecutive_faults = 2;
  auto run = [&](std::vector<bool>* outcomes) {
    InMemoryJournalStorage inner;
    FaultInjector injector(config);
    auto storage = injector.WrapStorage(&inner);
    for (int i = 0; i < 64; ++i) {
      outcomes->push_back(storage->Append("record").ok());
      outcomes->push_back(storage->Flush().ok());
    }
    return injector.stats();
  };
  std::vector<bool> a, b;
  const FaultInjectorStats stats_a = run(&a);
  const FaultInjectorStats stats_b = run(&b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(stats_a.append_faults, stats_b.append_faults);
  EXPECT_EQ(stats_a.short_writes, stats_b.short_writes);
  EXPECT_EQ(stats_a.flush_faults, stats_b.flush_faults);
  EXPECT_GT(stats_a.append_faults + stats_a.short_writes, 0u);
  EXPECT_GT(stats_a.flush_faults, 0u);
}

TEST(FaultInjectorTest, ConsecutiveCapForcesACleanOperation) {
  FaultInjectorConfig config;
  config.append_fault_prob = 1.0;  // every draw wants to fail
  config.max_consecutive_faults = 2;
  InMemoryJournalStorage inner;
  FaultInjector injector(config);
  auto storage = injector.WrapStorage(&inner);
  int consecutive = 0, max_consecutive = 0;
  for (int i = 0; i < 32; ++i) {
    if (storage->Append("x").ok()) {
      consecutive = 0;
    } else {
      max_consecutive = std::max(max_consecutive, ++consecutive);
    }
  }
  EXPECT_EQ(max_consecutive, 2);
  EXPECT_EQ(inner.bytes().size(), 32u - injector.stats().append_faults);
}

TEST(FaultInjectorTest, ZeroCapDisablesInjectionEntirely) {
  FaultInjectorConfig config;
  config.append_fault_prob = 1.0;
  config.flush_fault_prob = 1.0;
  config.market_fault_prob = 1.0;
  config.max_consecutive_faults = 0;
  InMemoryJournalStorage inner;
  FaultInjector injector(config);
  auto storage = injector.WrapStorage(&inner);
  FaultGate gate = injector.MarketGate();
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(storage->Append("x").ok());
    EXPECT_TRUE(storage->Flush().ok());
    EXPECT_TRUE(gate("post").ok());
  }
  EXPECT_EQ(injector.stats().append_faults, 0u);
  EXPECT_EQ(injector.stats().market_faults, 0u);
}

TEST(FaultInjectorTest, ShortWritePersistsAStrictPrefix) {
  FaultInjectorConfig config;
  config.short_write_prob = 1.0;
  config.max_consecutive_faults = 1;
  InMemoryJournalStorage inner;
  FaultInjector injector(config);
  auto storage = injector.WrapStorage(&inner);
  const std::string record = "twelve bytes";
  const Status status = storage->Append(record);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(injector.stats().short_writes, 1u);
  EXPECT_LT(inner.bytes().size(), record.size());
  EXPECT_EQ(inner.bytes(), record.substr(0, inner.bytes().size()));
}

TEST(FaultInjectorTest, MarketGateInjectsAndCaps) {
  FaultInjectorConfig config;
  config.market_fault_prob = 1.0;
  config.max_consecutive_faults = 3;
  FaultInjector injector(config);
  FaultGate gate = injector.MarketGate();
  int consecutive = 0, max_consecutive = 0;
  for (int i = 0; i < 32; ++i) {
    const Status status = gate("post");
    if (status.ok()) {
      consecutive = 0;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      max_consecutive = std::max(max_consecutive, ++consecutive);
    }
  }
  EXPECT_EQ(max_consecutive, 3);
  EXPECT_GT(injector.stats().market_faults, 0u);
}

// ---------------------------------------------------------------------------
// JournalWriter retry-with-repair: a bounded storm of injected append/flush
// faults and short writes must be healed transparently — the journal bytes
// end up identical to a fault-free writer's.

TEST(JournalWriterRetryTest, InjectedFaultsAreTransparentToTheJournal) {
  std::string clean_bytes;
  {
    InMemoryJournalStorage clean;
    JournalWriter writer(&clean, 0);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          writer.Append(JournalRecordType::kPost, "payload-" +
                        std::to_string(i)).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());
    clean_bytes = clean.bytes();
  }

  FaultInjectorConfig config;
  config.seed = 1234;
  config.append_fault_prob = 0.25;
  config.short_write_prob = 0.25;
  config.flush_fault_prob = 0.5;
  config.max_consecutive_faults = 2;  // < max_attempts below
  InMemoryJournalStorage inner;
  FaultInjector injector(config);
  auto storage = injector.WrapStorage(&inner);
  JournalWriter writer(storage.get(), 0);
  RetryPolicy policy;
  policy.max_attempts = 4;
  writer.EnableRetry(policy, /*jitter_seed=*/77);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.Append(JournalRecordType::kPost,
                              "payload-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.Flush().ok());
  const FaultInjectorStats& stats = injector.stats();
  EXPECT_GT(stats.append_faults + stats.short_writes, 0u)
      << "storm too quiet to prove anything";
  EXPECT_GT(stats.flush_faults, 0u);
  EXPECT_EQ(inner.bytes(), clean_bytes);
  // And the healed journal scans as fully intact.
  const auto contents = ScanJournal(inner.bytes());
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->truncated_tail);
  EXPECT_EQ(contents->records.size(), 50u);
}

TEST(JournalWriterRetryTest, ExhaustedRetriesSurfaceTheTransient) {
  FaultInjectorConfig config;
  config.append_fault_prob = 1.0;
  config.max_consecutive_faults = 10;  // outlasts the retry budget
  InMemoryJournalStorage inner;
  FaultInjector injector(config);
  auto storage = injector.WrapStorage(&inner);
  JournalWriter writer(storage.get(), 0);
  RetryPolicy policy;
  policy.max_attempts = 3;
  writer.EnableRetry(policy, 77);
  const Status status = writer.Append(JournalRecordType::kPost, "payload");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // The repair between attempts kept the journal at the last good boundary.
  EXPECT_TRUE(inner.bytes().empty());
}

// ---------------------------------------------------------------------------
// Satellite 1: FileJournalStorage partial-write handling. The POSIX write
// path reports short writes explicitly, and the retry layer's
// truncate-to-last-good repair heals injected short writes on a REAL file:
// the bytes on disk afterwards are identical to a fault-free run's.

class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = ::testing::TempDir() + "htune_resilience_" + tag + "_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            ".journal";
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(FileJournalStorageTest, AppendLoadTruncateRoundTrip) {
  TempFile file("roundtrip");
  FileJournalStorage storage(file.path());
  const auto empty = storage.Load();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());  // missing file reads as fresh
  ASSERT_TRUE(storage.Append("hello ").ok());
  ASSERT_TRUE(storage.Append("world").ok());
  ASSERT_TRUE(storage.Flush().ok());
  const auto loaded = storage.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, "hello world");
  ASSERT_TRUE(storage.Truncate(5).ok());
  const auto truncated = storage.Load();
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(*truncated, "hello");
  ASSERT_TRUE(storage.Truncate(100).ok());  // growing truncate is a no-op
  EXPECT_EQ(*storage.Load(), "hello");
}

TEST(FileJournalStorageTest, FlushOfAMissingJournalIsOk) {
  TempFile file("flush_missing");
  FileJournalStorage storage(file.path());
  EXPECT_TRUE(storage.Flush().ok());
}

TEST(FileJournalStorageTest, ShortWritesOnAFileAreRepairedByRetry) {
  TempFile file("short_write");
  std::string clean_bytes;
  {
    TempFile clean_file("short_write_clean");
    FileJournalStorage clean(clean_file.path());
    JournalWriter writer(&clean, 0);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(writer.Append(JournalRecordType::kPayment,
                                "slot-" + std::to_string(i)).ok());
    }
    const auto bytes = clean.Load();
    ASSERT_TRUE(bytes.ok());
    clean_bytes = *bytes;
  }

  FileJournalStorage inner(file.path());
  FaultInjectorConfig config;
  config.seed = 5150;
  config.short_write_prob = 0.4;
  config.max_consecutive_faults = 2;
  FaultInjector injector(config);
  auto storage = injector.WrapStorage(&inner);
  JournalWriter writer(storage.get(), 0);
  RetryPolicy policy;
  policy.max_attempts = 4;
  writer.EnableRetry(policy, 99);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer.Append(JournalRecordType::kPayment,
                              "slot-" + std::to_string(i)).ok());
  }
  EXPECT_GT(injector.stats().short_writes, 0u)
      << "schedule injected no short writes; bump the probability";
  const auto healed = inner.Load();
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, clean_bytes);
  const auto contents = ScanJournal(*healed);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->truncated_tail);
  EXPECT_EQ(contents->records.size(), 20u);
}

TEST(FileJournalStorageTest, UnrepairedShortWriteLeavesAScannableTornTail) {
  // Without retry the short write surfaces as kUnavailable and the torn
  // frame stays on disk — and the CRC scan must then truncate it away
  // rather than trust it.
  TempFile file("torn_tail");
  FileJournalStorage inner(file.path());
  JournalWriter clean_writer(&inner, 0);
  ASSERT_TRUE(clean_writer.Append(JournalRecordType::kPost, "intact").ok());
  const auto before = inner.Load();
  ASSERT_TRUE(before.ok());

  FaultInjectorConfig config;
  config.short_write_prob = 1.0;
  config.max_consecutive_faults = 1;
  FaultInjector injector(config);
  auto storage = injector.WrapStorage(&inner);
  JournalWriter writer(storage.get(), before->size());
  const Status status = writer.Append(JournalRecordType::kPost, "torn");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  const auto after = inner.Load();
  ASSERT_TRUE(after.ok());
  const auto contents = ScanJournal(*after);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->truncated_tail);
  EXPECT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->valid_bytes, before->size());
}

// ---------------------------------------------------------------------------
// Satellite 2: ValidateFaultTolerantConfig's new resilience knobs, one
// rejection per path, and the existing knobs still validate.

TEST(FaultTolerantConfigResilienceTest, RejectsBadResilienceKnobs) {
  EXPECT_TRUE(ValidateFaultTolerantConfig(FaultTolerantConfig{}).ok());
  FaultTolerantConfig c;
  c.market_retry.max_attempts = 0;
  EXPECT_EQ(ValidateFaultTolerantConfig(c).code(),
            StatusCode::kInvalidArgument);
  c = FaultTolerantConfig{};
  c.market_retry.jitter_fraction = 2.0;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.market_retry.backoff_multiplier = 0.0;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.breaker.failure_threshold = 0;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.breaker.open_cooldown = -1.0;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.breaker.half_open_successes = -2;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.time_deadline = -0.5;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.time_deadline = kNaN;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
  c = FaultTolerantConfig{};
  c.time_deadline = kInf;
  EXPECT_FALSE(ValidateFaultTolerantConfig(c).ok());
}

TEST(FaultTolerantConfigResilienceTest, DurabilityConfigValidatesItsRetry) {
  InMemoryJournalStorage storage;
  DurabilityConfig config;
  config.storage = &storage;
  config.journal_retry.max_attempts = -1;
  EXPECT_EQ(DurableContext::Open(config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace htune
