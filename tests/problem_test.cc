#include <memory>

#include <gtest/gtest.h>

#include "tuning/allocation.h"
#include "tuning/problem.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> TestCurve() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

TaskGroup MakeGroup(int tasks, int reps, double processing = 2.0) {
  TaskGroup g;
  g.name = "g";
  g.num_tasks = tasks;
  g.repetitions = reps;
  g.processing_rate = processing;
  g.curve = TestCurve();
  return g;
}

TEST(ProblemTest, MinimumBudgetAndTotals) {
  TuningProblem problem;
  problem.groups.push_back(MakeGroup(10, 3));
  problem.groups.push_back(MakeGroup(5, 4));
  problem.budget = 100;
  EXPECT_EQ(problem.MinimumBudget(), 10 * 3 + 5 * 4);
  EXPECT_EQ(problem.TotalTasks(), 15);
  EXPECT_EQ(problem.TotalRepetitions(), 50);
  EXPECT_EQ(problem.groups[0].UnitCost(), 30);
}

TEST(ProblemTest, ValidationErrors) {
  TuningProblem problem;
  EXPECT_FALSE(ValidateProblem(problem).ok());  // no groups

  problem.groups.push_back(MakeGroup(0, 1));
  problem.budget = 100;
  EXPECT_FALSE(ValidateProblem(problem).ok());  // zero tasks

  problem.groups[0] = MakeGroup(1, 0);
  EXPECT_FALSE(ValidateProblem(problem).ok());  // zero reps

  problem.groups[0] = MakeGroup(1, 1, 0.0);
  EXPECT_FALSE(ValidateProblem(problem).ok());  // bad processing rate

  problem.groups[0] = MakeGroup(1, 1);
  problem.groups[0].curve = nullptr;
  EXPECT_FALSE(ValidateProblem(problem).ok());  // no curve

  problem.groups[0] = MakeGroup(10, 2);
  problem.budget = 19;  // below minimum of 20
  EXPECT_FALSE(ValidateProblem(problem).ok());

  problem.budget = 20;
  EXPECT_TRUE(ValidateProblem(problem).ok());
}

TEST(AllocationTest, CostAndUniformity) {
  GroupAllocation uniform = UniformGroupAllocation(3, 2, 5);
  EXPECT_EQ(uniform.TotalCost(), 30);
  EXPECT_TRUE(uniform.IsUniform());
  EXPECT_EQ(uniform.UniformPrice(), 5);

  GroupAllocation mixed = uniform;
  mixed.prices[1][0] = 6;
  EXPECT_EQ(mixed.TotalCost(), 31);
  EXPECT_FALSE(mixed.IsUniform());
}

TEST(AllocationTest, ToStringSummaries) {
  Allocation allocation;
  allocation.groups.push_back(UniformGroupAllocation(4, 3, 2));
  EXPECT_EQ(allocation.ToString(), "g0: 4x3 @ 2");
  allocation.groups.push_back(UniformGroupAllocation(1, 1, 1));
  allocation.groups[1].prices[0][0] = 9;
  EXPECT_NE(allocation.ToString().find("g1"), std::string::npos);
}

TEST(AllocationTest, ValidationCatchesShapeAndBudgetErrors) {
  TuningProblem problem;
  problem.groups.push_back(MakeGroup(2, 2));
  problem.budget = 100;

  Allocation ok;
  ok.groups.push_back(UniformGroupAllocation(2, 2, 3));
  EXPECT_TRUE(ValidateAllocation(problem, ok).ok());

  Allocation wrong_groups;
  EXPECT_FALSE(ValidateAllocation(problem, wrong_groups).ok());

  Allocation wrong_tasks;
  wrong_tasks.groups.push_back(UniformGroupAllocation(3, 2, 3));
  EXPECT_FALSE(ValidateAllocation(problem, wrong_tasks).ok());

  Allocation wrong_reps;
  wrong_reps.groups.push_back(UniformGroupAllocation(2, 3, 3));
  EXPECT_FALSE(ValidateAllocation(problem, wrong_reps).ok());

  Allocation below_unit;
  below_unit.groups.push_back(UniformGroupAllocation(2, 2, 1));
  below_unit.groups[0].prices[0][0] = 0;
  EXPECT_FALSE(ValidateAllocation(problem, below_unit).ok());

  Allocation over_budget;
  over_budget.groups.push_back(UniformGroupAllocation(2, 2, 26));
  EXPECT_FALSE(ValidateAllocation(problem, over_budget).ok());
}

TEST(AllocationDeathTest, UniformPriceRequiresUniform) {
  GroupAllocation mixed = UniformGroupAllocation(2, 1, 3);
  mixed.prices[0][0] = 4;
  EXPECT_DEATH(mixed.UniformPrice(), "HTUNE_CHECK");
}

}  // namespace
}  // namespace htune
