#include <memory>

#include <gtest/gtest.h>

#include "tuning/baselines.h"
#include "tuning/evaluator.h"
#include "tuning/even_allocator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Curve() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

TuningProblem Homogeneous(int tasks, int reps, long budget) {
  TaskGroup g;
  g.name = "homo";
  g.num_tasks = tasks;
  g.repetitions = reps;
  g.processing_rate = 2.0;
  g.curve = Curve();
  TuningProblem problem;
  problem.groups.push_back(g);
  problem.budget = budget;
  return problem;
}

TuningProblem TwoRepGroups(long budget) {
  TuningProblem problem;
  TaskGroup a;
  a.name = "three";
  a.num_tasks = 4;
  a.repetitions = 3;
  a.processing_rate = 2.0;
  a.curve = Curve();
  TaskGroup b = a;
  b.name = "five";
  b.repetitions = 5;
  problem.groups = {a, b};
  problem.budget = budget;
  return problem;
}

TEST(BiasedAllocatorTest, SplitsBudgetByAlpha) {
  // 10 tasks x 2 reps, budget 400; alpha=0.75: prior 5 tasks (10 reps) get
  // floor(300)/10 = 30 per rep, rest get floor(100)/10 = 10 per rep.
  const TuningProblem problem = Homogeneous(10, 2, 400);
  const auto alloc = BiasedAllocator(0.75).Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  for (int t = 0; t < 5; ++t) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_EQ(alloc->groups[0].prices[t][r], 30);
    }
  }
  for (int t = 5; t < 10; ++t) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_EQ(alloc->groups[0].prices[t][r], 10);
    }
  }
  EXPECT_LE(alloc->TotalCost(), 400);
}

TEST(BiasedAllocatorTest, NameEncodesAlpha) {
  EXPECT_EQ(BiasedAllocator(0.67).Name(), "bias(0.67)");
  EXPECT_EQ(BiasedAllocator(0.75).Name(), "bias(0.75)");
}

TEST(BiasedAllocatorTest, RejectsSingleTask) {
  const TuningProblem problem = Homogeneous(1, 2, 100);
  EXPECT_EQ(BiasedAllocator(0.67).Allocate(problem).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BiasedAllocatorTest, RejectsBudgetTooSmallForRestHalf) {
  // With alpha=0.75 and budget 24 over 10x2 reps, the rest half would get
  // floor(6)/10 = 0 per repetition -> error, not a silent zero price.
  const TuningProblem problem = Homogeneous(10, 2, 24);
  EXPECT_FALSE(BiasedAllocator(0.75).Allocate(problem).ok());
}

TEST(BiasedAllocatorDeathTest, AlphaOutOfRange) {
  EXPECT_DEATH(BiasedAllocator(0.4), "HTUNE_CHECK");
  EXPECT_DEATH(BiasedAllocator(1.0), "HTUNE_CHECK");
}

TEST(BiasedAllocatorTest, EvenBeatsBiased) {
  // The paper's Scenario I claim: EA dominates both bias levels, and the
  // more biased allocation is worse.
  const TuningProblem problem = Homogeneous(10, 5, 1000);
  const auto even = EvenAllocator().Allocate(problem);
  const auto bias1 = BiasedAllocator(0.67).Allocate(problem);
  const auto bias2 = BiasedAllocator(0.75).Allocate(problem);
  ASSERT_TRUE(even.ok());
  ASSERT_TRUE(bias1.ok());
  ASSERT_TRUE(bias2.ok());
  const double e = ExpectedPhase1Latency(problem, *even);
  const double b1 = ExpectedPhase1Latency(problem, *bias1);
  const double b2 = ExpectedPhase1Latency(problem, *bias2);
  EXPECT_LT(e, b1);
  EXPECT_LT(b1, b2);
}

TEST(TaskEvenAllocatorTest, EqualTotalPerTask) {
  const TuningProblem problem = TwoRepGroups(320);
  const auto alloc = TaskEvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  // budget/8 tasks = 40 per task; 3-rep tasks pay 13 per rep, 5-rep pay 8.
  EXPECT_EQ(alloc->groups[0].prices[0][0], 13);
  EXPECT_EQ(alloc->groups[1].prices[0][0], 8);
  EXPECT_LE(alloc->TotalCost(), 320);
}

TEST(RepEvenAllocatorTest, EqualPricePerRepetition) {
  const TuningProblem problem = TwoRepGroups(320);
  const auto alloc = RepEvenAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  // 32 repetitions total -> 10 per repetition everywhere.
  EXPECT_EQ(alloc->groups[0].prices[0][0], 10);
  EXPECT_EQ(alloc->groups[1].prices[0][0], 10);
  EXPECT_EQ(alloc->TotalCost(), 320);
}

TEST(UniformHeuristicAllocatorTest, EqualTotalPerGroup) {
  const TuningProblem problem = TwoRepGroups(320);
  const auto alloc = UniformHeuristicAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  // 160 per group; group 0 unit cost 12 -> 13 per rep; group 1 unit cost
  // 20 -> 8 per rep.
  EXPECT_EQ(alloc->groups[0].prices[0][0], 13);
  EXPECT_EQ(alloc->groups[1].prices[0][0], 8);
  EXPECT_LE(alloc->TotalCost(), 320);
}

TEST(BaselinesTest, AllRejectBudgetBelowOneUnitPerRep) {
  const TuningProblem problem = TwoRepGroups(33);  // min is 32, but floors hit 0
  EXPECT_FALSE(TaskEvenAllocator().Allocate(problem).ok());
  // rep-even: 33/32 = 1 per rep, feasible.
  EXPECT_TRUE(RepEvenAllocator().Allocate(problem).ok());
}

TEST(BaselinesTest, NamesAreStable) {
  EXPECT_EQ(TaskEvenAllocator().Name(), "task-even");
  EXPECT_EQ(RepEvenAllocator().Name(), "rep-even");
  EXPECT_EQ(UniformHeuristicAllocator().Name(), "HEU");
  EXPECT_EQ(EvenAllocator().Name(), "EA");
}

}  // namespace
}  // namespace htune
