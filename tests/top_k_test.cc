#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "crowddb/top_k.h"
#include "tuning/even_allocator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Curve() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

std::vector<Item> SomeItems(int n) {
  std::vector<Item> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({i, 5.0 * (i + 1)});
  }
  return items;
}

MarketConfig Market(uint64_t seed, double error = 0.0) {
  MarketConfig config;
  config.worker_arrival_rate = 200.0;
  config.seed = seed;
  config.worker_error_prob = error;
  config.record_trace = false;
  return config;
}

TEST(CrowdTopKTest, CreateValidation) {
  EXPECT_FALSE(CrowdTopK::Create({{0, 1.0}}, 1, 1).ok());
  EXPECT_FALSE(CrowdTopK::Create(SomeItems(5), 0, 1).ok());
  EXPECT_FALSE(CrowdTopK::Create(SomeItems(5), 5, 1).ok());  // k == n
  EXPECT_FALSE(CrowdTopK::Create(SomeItems(5), 2, 0).ok());
  EXPECT_FALSE(CrowdTopK::Create({{0, 1.0}, {1, 1.0}}, 1, 1).ok());
  EXPECT_TRUE(CrowdTopK::Create(SomeItems(5), 2, 3).ok());
}

TEST(CrowdTopKTest, MatchAccounting) {
  // n=8, k=3: tournaments cost 7 + 6 + 5 = 18 matches.
  const auto query = CrowdTopK::Create(SomeItems(8), 3, 2);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->TotalMatches(), 18);
}

TEST(CrowdTopKTest, PerfectWorkersFindTrueTopK) {
  for (const int k : {1, 2, 3}) {
    const auto query = CrowdTopK::Create(SomeItems(7), k, 3);
    ASSERT_TRUE(query.ok());
    MarketSimulator market(Market(40 + static_cast<uint64_t>(k)));
    const auto result = query->Run(market, EvenAllocator(),
                                   query->TotalMatches() * 3L * 10L,
                                   Curve(), 5.0);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->top_ids.size(), static_cast<size_t>(k));
    // True top ids are 6, 5, 4, ... in that order.
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ(result->top_ids[static_cast<size_t>(i)], 6 - i);
    }
    EXPECT_DOUBLE_EQ(result->quality.precision, 1.0);
    EXPECT_DOUBLE_EQ(result->quality.recall, 1.0);
    EXPECT_GT(result->rounds, 0);
  }
}

TEST(CrowdTopKTest, SpendStaysWithinBudget) {
  const auto query = CrowdTopK::Create(SomeItems(6), 2, 3);
  ASSERT_TRUE(query.ok());
  const long budget = query->TotalMatches() * 3L * 7L;
  MarketSimulator market(Market(50));
  const auto result =
      query->Run(market, EvenAllocator(), budget, Curve(), 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->spent, budget);
  EXPECT_GT(result->latency, 0.0);
}

TEST(CrowdTopKTest, RejectsTinyBudget) {
  const auto query = CrowdTopK::Create(SomeItems(6), 2, 3);
  ASSERT_TRUE(query.ok());
  MarketSimulator market(Market(51));
  EXPECT_FALSE(query->Run(market, EvenAllocator(),
                          query->TotalMatches() * 3L - 1, Curve(), 5.0)
                   .ok());
}

TEST(CrowdTopKTest, NoisyWorkersStillMostlyRight) {
  int hits = 0, total = 0;
  for (int t = 0; t < 10; ++t) {
    const auto query = CrowdTopK::Create(SomeItems(6), 2, 5);
    ASSERT_TRUE(query.ok());
    MarketSimulator market(Market(60 + t, /*error=*/0.2));
    const auto result = query->Run(market, EvenAllocator(),
                                   query->TotalMatches() * 5L * 6L,
                                   Curve(), 5.0);
    ASSERT_TRUE(result.ok());
    total += 2;
    for (int id : result->top_ids) {
      if (id == 5 || id == 4) ++hits;
    }
  }
  EXPECT_GT(hits, total * 7 / 10);
}

}  // namespace
}  // namespace htune
