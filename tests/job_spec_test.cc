#include <string>

#include <gtest/gtest.h>

#include "spec/job_spec.h"

namespace htune {
namespace {

constexpr char kGoodSpec[] = R"(
# a two-group job
budget = 1500
arrival_rate = 120   # workers per unit time
error_prob = 0.1
abandon_prob = 0.2
abandon_hold_rate = 2.5
seed = 9

[group]
name = easy labels
tasks = 30
repetitions = 3
processing_rate = 2.0
curve = linear 1.0 1.0

[group]
tasks = 10
repetitions = 5
processing_rate = 0.5
curve = log 2.0
)";

TEST(JobSpecTest, ParsesFullSpec) {
  const auto spec = ParseJobSpec(kGoodSpec);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->problem.budget, 1500);
  EXPECT_DOUBLE_EQ(spec->arrival_rate, 120.0);
  EXPECT_DOUBLE_EQ(spec->worker_error_prob, 0.1);
  EXPECT_DOUBLE_EQ(spec->abandon_prob, 0.2);
  EXPECT_DOUBLE_EQ(spec->abandon_hold_rate, 2.5);
  EXPECT_EQ(spec->seed, 9u);
  ASSERT_EQ(spec->problem.groups.size(), 2u);
  EXPECT_EQ(spec->problem.groups[0].name, "easy labels");
  EXPECT_EQ(spec->problem.groups[0].num_tasks, 30);
  EXPECT_EQ(spec->problem.groups[0].repetitions, 3);
  EXPECT_DOUBLE_EQ(spec->problem.groups[0].processing_rate, 2.0);
  EXPECT_DOUBLE_EQ(spec->problem.groups[0].curve->Rate(4.0), 5.0);
  EXPECT_EQ(spec->problem.groups[1].name, "group 2");  // default name
  EXPECT_GT(spec->problem.groups[1].curve->Rate(3.0), 0.0);
}

TEST(JobSpecTest, DefaultsApply) {
  const auto spec = ParseJobSpec(
      "budget = 100\n[group]\ntasks = 2\nrepetitions = 2\n"
      "processing_rate = 1\ncurve = linear 1 1\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec->arrival_rate, 100.0);
  EXPECT_DOUBLE_EQ(spec->worker_error_prob, 0.0);
  EXPECT_DOUBLE_EQ(spec->abandon_prob, 0.0);
  EXPECT_DOUBLE_EQ(spec->abandon_hold_rate, 1.0);
  EXPECT_EQ(spec->seed, 1u);
}

TEST(JobSpecTest, ErrorsCarryLineNumbers) {
  const auto spec = ParseJobSpec("budget = 100\nnot a kv line\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 2"), std::string::npos);
}

TEST(JobSpecTest, RejectsUnknownKeysAndSections) {
  EXPECT_FALSE(ParseJobSpec("budget = 1\nwhatever = 2\n").ok());
  EXPECT_FALSE(ParseJobSpec("[market]\n").ok());
  EXPECT_FALSE(
      ParseJobSpec("budget = 100\n[group]\nfoo = 1\n").ok());
}

TEST(JobSpecTest, RejectsBadNumbers) {
  EXPECT_FALSE(ParseJobSpec("budget = lots\n").ok());
  EXPECT_FALSE(ParseJobSpec("budget = 10.5\n").ok());  // integer required
  EXPECT_FALSE(ParseJobSpec("budget =\n").ok());
}

TEST(JobSpecTest, ValidatesResultingProblem) {
  // Budget below the one-unit-per-repetition floor.
  const auto spec = ParseJobSpec(
      "budget = 3\n[group]\ntasks = 2\nrepetitions = 2\n"
      "processing_rate = 1\ncurve = linear 1 1\n");
  EXPECT_FALSE(spec.ok());
  // No groups at all.
  EXPECT_FALSE(ParseJobSpec("budget = 100\n").ok());
}

TEST(JobSpecTest, RejectsBadSimulationSettings) {
  EXPECT_FALSE(ParseJobSpec(
                   "budget = 100\nerror_prob = 1.5\n[group]\ntasks = 2\n"
                   "repetitions = 2\nprocessing_rate = 1\ncurve = linear 1 "
                   "1\n")
                   .ok());
  EXPECT_FALSE(ParseJobSpec(
                   "budget = 100\narrival_rate = -5\n[group]\ntasks = 2\n"
                   "repetitions = 2\nprocessing_rate = 1\ncurve = linear 1 "
                   "1\n")
                   .ok());
  EXPECT_FALSE(ParseJobSpec(
                   "budget = 100\nabandon_prob = 1.0\n[group]\ntasks = 2\n"
                   "repetitions = 2\nprocessing_rate = 1\ncurve = linear 1 "
                   "1\n")
                   .ok());
  EXPECT_FALSE(ParseJobSpec(
                   "budget = 100\nabandon_prob = 0.2\nabandon_hold_rate = "
                   "0\n[group]\ntasks = 2\nrepetitions = 2\n"
                   "processing_rate = 1\ncurve = linear 1 1\n")
                   .ok());
}

TEST(CurveSpecTest, AllKindsParse) {
  const auto linear = ParseCurveSpec("linear 2.0 0.5");
  ASSERT_TRUE(linear.ok());
  EXPECT_DOUBLE_EQ((*linear)->Rate(2.0), 4.5);

  const auto quadratic = ParseCurveSpec("quadratic 1 1");
  ASSERT_TRUE(quadratic.ok());
  EXPECT_DOUBLE_EQ((*quadratic)->Rate(3.0), 10.0);

  const auto log = ParseCurveSpec("log 1.0");
  ASSERT_TRUE(log.ok());
  EXPECT_GT((*log)->Rate(2.0), 1.0);

  const auto table = ParseCurveSpec("table 1:0.5,5:2.5");
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ((*table)->Rate(3.0), 1.5);

  const auto sigmoid = ParseCurveSpec("sigmoid 10 4 1.5");
  ASSERT_TRUE(sigmoid.ok());
  EXPECT_DOUBLE_EQ((*sigmoid)->Rate(4.0), 5.0);
}

TEST(CurveSpecTest, RejectsMalformedCurves) {
  EXPECT_FALSE(ParseCurveSpec("").ok());
  EXPECT_FALSE(ParseCurveSpec("spline 1 2").ok());
  EXPECT_FALSE(ParseCurveSpec("sigmoid 1 2").ok());      // missing width
  EXPECT_FALSE(ParseCurveSpec("sigmoid 0 2 1").ok());    // zero max rate
  EXPECT_FALSE(ParseCurveSpec("linear 1").ok());
  EXPECT_FALSE(ParseCurveSpec("linear -1 0").ok());
  EXPECT_FALSE(ParseCurveSpec("log 0").ok());
  EXPECT_FALSE(ParseCurveSpec("table 1:2").ok());       // one point
  EXPECT_FALSE(ParseCurveSpec("table 1:2,3").ok());     // bad pair
  EXPECT_FALSE(ParseCurveSpec("table 1:2,2:1").ok());   // decreasing
}

TEST(JobSpecTest, LoadFromFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/job_spec_test.htune";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(kGoodSpec, f);
  std::fclose(f);
  const auto spec = LoadJobSpec(path);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->problem.budget, 1500);
  EXPECT_EQ(LoadJobSpec("/no/such/file.htune").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace htune
