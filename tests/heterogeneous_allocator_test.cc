#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "tuning/brute_force.h"
#include "tuning/group_latency_table.h"
#include "tuning/heterogeneous_allocator.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

TaskGroup MakeGroup(const std::string& name, int tasks, int reps,
                    double processing,
                    std::shared_ptr<const PriceRateCurve> curve) {
  TaskGroup g;
  g.name = name;
  g.num_tasks = tasks;
  g.repetitions = reps;
  g.processing_rate = processing;
  g.curve = std::move(curve);
  return g;
}

TuningProblem HeterogeneousProblem(long budget,
                                   std::shared_ptr<const PriceRateCurve>
                                       curve) {
  // The paper's Scenario III shape: one easier 3-rep group, one harder
  // 5-rep group with different difficulty.
  TuningProblem problem;
  problem.groups.push_back(MakeGroup("easy", 2, 3, 2.0, curve));
  problem.groups.push_back(MakeGroup("hard", 2, 5, 3.0, curve));
  problem.budget = budget;
  return problem;
}

ObjectivePoint ObjectivesOf(const TuningProblem& problem,
                            const std::vector<int>& prices) {
  return HeterogeneousAllocator::Objectives(problem, prices);
}

TEST(HeterogeneousAllocatorTest, UtopiaPointBoundsAllFeasiblePoints) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = HeterogeneousProblem(40, curve);
  const HeterogeneousAllocator ha;
  const auto utopia = ha.UtopiaPoint(problem);
  ASSERT_TRUE(utopia.ok());
  ForEachUniformPriceVector(problem, [&](const std::vector<int>& prices) {
    const ObjectivePoint op = ObjectivesOf(problem, prices);
    EXPECT_GE(op.o1, utopia->o1 - 1e-9);
    EXPECT_GE(op.o2, utopia->o2 - 1e-9);
  });
}

TEST(HeterogeneousAllocatorTest, SolutionRespectsBudget) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = HeterogeneousProblem(60, curve);
  const auto alloc = HeterogeneousAllocator().Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_LE(alloc->TotalCost(), 60);
  EXPECT_TRUE(ValidateAllocation(problem, *alloc).ok());
}

TEST(HeterogeneousAllocatorTest, RejectsInsufficientBudget) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = HeterogeneousProblem(15, curve);  // min 16
  EXPECT_FALSE(HeterogeneousAllocator().Allocate(problem).ok());
}

// Property sweep: HA's closeness is near the brute-force minimum across
// curves and budgets. The unit-by-unit DP is a heuristic for the
// non-separable closeness objective, so allow a small relative slack.
class HaQualitySweep
    : public ::testing::TestWithParam<std::tuple<int, long>> {};

TEST_P(HaQualitySweep, NearBruteForceCloseness) {
  const auto [curve_index, budget] = GetParam();
  const auto curves = PaperSyntheticCurves();
  const std::shared_ptr<const PriceRateCurve> curve =
      std::shared_ptr<const PriceRateCurve>(curves[curve_index]->Clone());
  const TuningProblem problem = HeterogeneousProblem(budget, curve);

  const HeterogeneousAllocator ha;
  const auto utopia = ha.UtopiaPoint(problem);
  ASSERT_TRUE(utopia.ok());
  const auto closeness = [&](const std::vector<int>& prices) {
    const ObjectivePoint op = ObjectivesOf(problem, prices);
    return std::abs(op.o1 - utopia->o1) + std::abs(op.o2 - utopia->o2);
  };

  const auto ha_prices = ha.SolvePrices(problem);
  ASSERT_TRUE(ha_prices.ok());
  const auto oracle = BruteForceMinimize(problem, closeness);
  ASSERT_TRUE(oracle.ok());

  const double ha_value = closeness(*ha_prices);
  const double oracle_value = closeness(*oracle);
  EXPECT_LE(ha_value, oracle_value + 0.05 * (1.0 + oracle_value))
      << "curve=" << curve->Name() << " budget=" << budget;
}

INSTANTIATE_TEST_SUITE_P(
    CurvesAndBudgets, HaQualitySweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(16L, 24L, 40L, 64L)));

TEST(MinimizeMostDifficultTest, MatchesBruteForceBottleneck) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = HeterogeneousProblem(40, curve);
  const std::vector<int> greedy = MinimizeMostDifficult(problem);
  const double greedy_o2 = ObjectivesOf(problem, greedy).o2;

  const auto oracle = BruteForceMinimize(
      problem, [&](const std::vector<int>& prices) {
        return ObjectivesOf(problem, prices).o2;
      });
  ASSERT_TRUE(oracle.ok());
  const double oracle_o2 = ObjectivesOf(problem, *oracle).o2;
  EXPECT_NEAR(greedy_o2, oracle_o2, 1e-9);
}

TEST(MinimizeMostDifficultTest, SpendsOnTheBottleneckGroup) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  // Group 1 has 5 reps at difficulty 1.0 (phase-2 mean 5) vs group 0's
  // 1 rep at difficulty 10 (phase-2 mean 0.1): group 1 is the bottleneck.
  TuningProblem problem;
  problem.groups.push_back(MakeGroup("light", 1, 1, 10.0, curve));
  problem.groups.push_back(MakeGroup("heavy", 1, 5, 1.0, curve));
  problem.budget = 30;
  const std::vector<int> prices = MinimizeMostDifficult(problem);
  EXPECT_GT(prices[1], prices[0]);
}

TEST(HeterogeneousAllocatorTest, L2NormVariantRuns) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = HeterogeneousProblem(48, curve);
  const HeterogeneousAllocator l2(ClosenessNorm::kL2);
  EXPECT_EQ(l2.Name(), "HA-L2");
  const auto alloc = l2.Allocate(problem);
  ASSERT_TRUE(alloc.ok());
  EXPECT_LE(alloc->TotalCost(), 48);
}

TEST(HeterogeneousAllocatorTest, ObjectivesAreInternallyConsistent) {
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  const TuningProblem problem = HeterogeneousProblem(40, curve);
  const std::vector<int> prices = {2, 2};
  const ObjectivePoint op = ObjectivesOf(problem, prices);
  // O1 is the sum of two group phase-1 terms; O2 adds a positive phase-2
  // term to one of them, so O2 > each phase-1 term but O1 may exceed O2.
  GroupLatencyTable t0(problem.groups[0]);
  GroupLatencyTable t1(problem.groups[1]);
  EXPECT_NEAR(op.o1, t0.Phase1(2) + t1.Phase1(2), 1e-9);
  EXPECT_NEAR(op.o2,
              std::max(t0.Phase1(2) + t0.Phase2(),
                       t1.Phase1(2) + t1.Phase2()),
              1e-9);
}

}  // namespace
}  // namespace htune
