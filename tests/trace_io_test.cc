#include <string>

#include <gtest/gtest.h>

#include "market/simulator.h"
#include "market/trace_io.h"

namespace htune {
namespace {

TEST(TraceIoTest, CsvHeaderAndRows) {
  std::vector<TraceEvent> trace;
  trace.push_back({1.5, TraceEventKind::kWorkerArrival, 3, 0, 0});
  trace.push_back({2.25, TraceEventKind::kTaskAccepted, 3, 7, 1});
  const std::string csv = TraceToCsv(trace);
  EXPECT_NE(csv.find("time,kind,worker,task,repetition\n"),
            std::string::npos);
  EXPECT_NE(csv.find("1.500000,WORKER_ARRIVAL,3,0,0\n"), std::string::npos);
  EXPECT_NE(csv.find("2.250000,TASK_ACCEPTED,3,7,1\n"), std::string::npos);
}

TEST(TraceIoTest, EmptyTraceIsJustHeader) {
  EXPECT_EQ(TraceToCsv({}), "time,kind,worker,task,repetition\n");
}

TEST(TraceIoTest, WriteAndReadBack) {
  MarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.seed = 1;
  MarketSimulator market(config);
  TaskSpec spec;
  spec.price_per_repetition = 2;
  spec.repetitions = 2;
  spec.on_hold_rate = 5.0;
  spec.processing_rate = 3.0;
  ASSERT_TRUE(market.PostTask(spec).ok());
  ASSERT_TRUE(market.RunToCompletion().ok());

  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  ASSERT_TRUE(WriteTraceCsv(market.trace(), path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line), "time,kind,worker,task,repetition\n");
  std::fclose(f);

  EXPECT_FALSE(WriteTraceCsv(market.trace(), "/no/such/dir/x.csv").ok());
}

TEST(TraceIoTest, SummaryAggregatesOutcomes) {
  MarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.worker_error_prob = 0.5;
  config.seed = 2;
  config.record_trace = false;
  MarketSimulator market(config);
  for (int i = 0; i < 50; ++i) {
    TaskSpec spec;
    spec.price_per_repetition = 3;
    spec.repetitions = 2;
    spec.on_hold_rate = 4.0;
    spec.processing_rate = 2.0;
    ASSERT_TRUE(market.PostTask(spec).ok());
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  const auto summary = SummarizeOutcomes(market.CompletedOutcomes());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->tasks, 50u);
  EXPECT_EQ(summary->repetitions, 100u);
  EXPECT_EQ(summary->total_paid, 300);
  EXPECT_NEAR(summary->mean_on_hold, 0.25, 0.1);
  EXPECT_NEAR(summary->mean_processing, 0.5, 0.15);
  EXPECT_NEAR(summary->error_rate, 0.5, 0.15);
  EXPECT_GT(summary->max_task_latency, 0.0);

  const std::string text = SummaryToString(*summary);
  EXPECT_NE(text.find("50 tasks"), std::string::npos);
  EXPECT_NE(text.find("paid 300 units"), std::string::npos);
}

TEST(TraceIoTest, SummaryRejectsEmptyInput) {
  EXPECT_FALSE(SummarizeOutcomes({}).ok());
}

}  // namespace
}  // namespace htune
