// The observability layer: sharded metric accumulation, span/tracer
// semantics, exporter validation, and the JSON round trip through
// tools/bench_report.py.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "rng/random.h"

namespace htune::obs {
namespace {

/// Restores the runtime switch on scope exit so tests cannot leak a
/// disabled observability layer into each other.
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool enabled) : previous_(Enabled()) {
    SetEnabled(enabled);
  }
  ~ScopedEnabled() { SetEnabled(previous_); }

 private:
  const bool previous_;
};

TEST(CounterTest, AccumulatesAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(3);
  counter.Add(39);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, SumsAcrossThreads) {
  Counter counter;
  ThreadPool pool(4);
  ScopedDefaultThreadPool scoped(&pool);
  ParallelFor(1000, [&counter](size_t) { counter.Add(1); });
  EXPECT_EQ(counter.Value(), 1000u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Set(-17.0);
  EXPECT_EQ(gauge.Value(), -17.0);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(HistogramMetricTest, BucketsEdgesAndSpecials) {
  HistogramMetric histogram(0.0, 10.0, 10);
  histogram.Observe(0.0);    // first bucket (inclusive lo)
  histogram.Observe(9.999);  // last bucket
  histogram.Observe(5.0);    // middle
  histogram.Observe(-0.1);   // underflow
  histogram.Observe(10.0);   // hi is exclusive -> overflow
  histogram.Observe(std::nan(""));
  const HistogramSnapshot merged = histogram.Merge();
  EXPECT_EQ(merged.buckets[0], 1u);
  EXPECT_EQ(merged.buckets[9], 1u);
  EXPECT_EQ(merged.buckets[5], 1u);
  EXPECT_EQ(merged.underflow, 1u);
  EXPECT_EQ(merged.overflow, 1u);
  EXPECT_EQ(merged.nan_count, 1u);
  EXPECT_EQ(merged.count, 6u);
}

TEST(HistogramMetricTest, ResetZeroesEverything) {
  HistogramMetric histogram(0.0, 1.0, 4);
  histogram.Observe(0.5);
  histogram.Observe(-1.0);
  histogram.Reset();
  const HistogramSnapshot merged = histogram.Merge();
  EXPECT_EQ(merged.count, 0u);
  EXPECT_EQ(merged.underflow, 0u);
}

TEST(MetricsRegistryTest, ReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.count("x.count"), 1u);
  EXPECT_EQ(snapshot.counters.at("x.count"), 7u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  registry.GetGauge("g").Set(1.0);
  counter.Add(5);
  registry.ResetValues();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(registry.Snapshot().gauges.at("g"), 0.0);
  EXPECT_EQ(&registry.GetCounter("c"), &counter);
}

TEST(MetricsRegistryDeathTest, HistogramShapeMismatchAborts) {
  MetricsRegistry registry;
  registry.GetHistogram("h", 0.0, 1.0, 8);
  EXPECT_DEATH(registry.GetHistogram("h", 0.0, 2.0, 8), "HTUNE_CHECK");
}

TEST(TracerTest, DrainsOldestFirstAndCountsDrops) {
  Tracer tracer(/*capacity=*/3);
  for (uint64_t i = 1; i <= 5; ++i) {
    SpanRecord record;
    record.name = "t";
    record.id = i;
    tracer.Push(record);
  }
  const std::vector<SpanRecord> drained = tracer.Drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].id, 3u);
  EXPECT_EQ(drained[1].id, 4u);
  EXPECT_EQ(drained[2].id, 5u);
  EXPECT_EQ(tracer.dropped(), 2u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Drain().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(SpanTest, MacroRecordsNestingAndCounters) {
  ScopedEnabled enabled(true);
  GlobalTracer().Clear();
  {
    HTUNE_OBS_SPAN("obs_test.outer");
    HTUNE_OBS_SPAN("obs_test.inner");
  }
  const std::vector<SpanRecord> spans = GlobalTracer().Drain();
  // Inner closes (and records) first.
  ASSERT_GE(spans.size(), 2u);
  const SpanRecord& inner = spans[spans.size() - 2];
  const SpanRecord& outer = spans[spans.size() - 1];
  EXPECT_STREQ(inner.name, "obs_test.inner");
  EXPECT_STREQ(outer.name, "obs_test.outer");
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(inner.depth, outer.depth + 1);
  EXPECT_GE(
      GlobalMetrics().GetCounter("span.obs_test.outer.count").Value(), 1u);
  EXPECT_GE(
      GlobalMetrics().GetCounter("span.obs_test.outer.total_ns").Value(),
      outer.duration_ns);
}

TEST(SpanTest, DisabledSpansRecordNothing) {
  ScopedEnabled enabled(false);
  GlobalTracer().Clear();
  const uint64_t before =
      GlobalMetrics().GetCounter("span.obs_test.disabled.count").Value();
  {
    HTUNE_OBS_SPAN("obs_test.disabled");
  }
  EXPECT_TRUE(GlobalTracer().Drain().empty());
  EXPECT_EQ(
      GlobalMetrics().GetCounter("span.obs_test.disabled.count").Value(),
      before);
}

TEST(ObsMacrosTest, DisabledMacrosAreNoOps) {
  ScopedEnabled enabled(false);
  const uint64_t before =
      GlobalMetrics().GetCounter("obs_test.noop").Value();
  HTUNE_OBS_COUNTER_ADD("obs_test.noop", 5);
  EXPECT_EQ(GlobalMetrics().GetCounter("obs_test.noop").Value(), before);
}

TEST(ObsMacrosTest, EnabledMacrosRecord) {
  ScopedEnabled enabled(true);
  const uint64_t before =
      GlobalMetrics().GetCounter("obs_test.live").Value();
  HTUNE_OBS_COUNTER_ADD("obs_test.live", 2);
  HTUNE_OBS_COUNTER_ADD("obs_test.live", 3);
  EXPECT_EQ(GlobalMetrics().GetCounter("obs_test.live").Value(), before + 5);
  HTUNE_OBS_GAUGE_SET("obs_test.live_gauge", 4.25);
  EXPECT_EQ(GlobalMetrics().GetGauge("obs_test.live_gauge").Value(), 4.25);
  HTUNE_OBS_HISTOGRAM_OBSERVE("obs_test.live_hist", 0.0, 1.0, 4, 0.3);
  EXPECT_GE(GlobalMetrics().GetHistogram("obs_test.live_hist", 0.0, 1.0, 4)
                .Merge()
                .count,
            1u);
}

MetricsSnapshot SampleSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("a.count").Add(12);
  registry.GetGauge("b.value").Set(2.5);
  HistogramMetric& histogram = registry.GetHistogram("c.hist", 0.0, 4.0, 4);
  histogram.Observe(1.0);
  histogram.Observe(-1.0);
  histogram.Observe(9.0);
  return registry.Snapshot();
}

std::vector<SpanRecord> SampleSpans() {
  SpanRecord span;
  span.name = "phase";
  span.id = 1;
  span.parent_id = 0;
  span.start_ns = 10;
  span.duration_ns = 500;
  return {span};
}

TEST(ExportTest, JsonContainsEverySection) {
  const auto json = MetricsToJson(SampleSnapshot(), SampleSpans(),
                                  /*spans_dropped=*/3);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json->find("\"a.count\": 12"), std::string::npos);
  EXPECT_NE(json->find("\"b.value\": 2.5"), std::string::npos);
  EXPECT_NE(json->find("\"underflow\": 1"), std::string::npos);
  EXPECT_NE(json->find("\"overflow\": 1"), std::string::npos);
  EXPECT_NE(json->find("\"name\": \"phase\""), std::string::npos);
  EXPECT_NE(json->find("\"spans_dropped\": 3"), std::string::npos);
}

TEST(ExportTest, RejectsNonFiniteGauge) {
  MetricsRegistry registry;
  registry.GetGauge("bad").Set(std::numeric_limits<double>::infinity());
  const auto json = MetricsToJson(registry.Snapshot(), {});
  ASSERT_FALSE(json.ok());
  EXPECT_EQ(json.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(json.status().message().find("bad"), std::string::npos);

  registry.GetGauge("bad").Set(std::nan(""));
  EXPECT_FALSE(MetricsToJson(registry.Snapshot(), {}).ok());
}

TEST(ExportTest, TableListsMetricsAndSpanAggregates) {
  const std::string table = MetricsToTable(SampleSnapshot(), SampleSpans());
  EXPECT_NE(table.find("a.count"), std::string::npos);
  EXPECT_NE(table.find("b.value"), std::string::npos);
  EXPECT_NE(table.find("c.hist"), std::string::npos);
  EXPECT_NE(table.find("phase"), std::string::npos);
}

// --- Round trip through tools/bench_report.py --------------------------

std::string PythonDigest(const std::string& metrics_path, bool* ok) {
  const std::string command = "python3 " HTUNE_SOURCE_DIR
                              "/tools/bench_report.py --validate-metrics " +
                              metrics_path + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  *ok = false;
  if (pipe == nullptr) return "";
  std::string output;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    output += buffer;
  }
  *ok = pclose(pipe) == 0;
  return output;
}

bool HavePython() {
  return std::system("python3 -c 'pass' >/dev/null 2>&1") == 0;
}

/// The canonical digest bench_report.py prints, recomputed here from the
/// same snapshot. %.17g on both sides makes double comparison exact.
std::string ExpectedDigest(const MetricsSnapshot& snapshot,
                           const std::vector<SpanRecord>& spans,
                           uint64_t dropped) {
  std::ostringstream out;
  char line[512];
  out << "schema_version=" << kMetricsSchemaVersion << "\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << "counter " << name << "=" << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "gauge %s=%.17g\n", name.c_str(),
                  value);
    out << line;
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %s lo=%.17g hi=%.17g count=%llu underflow=%llu "
                  "overflow=%llu nan=%llu buckets=",
                  name.c_str(), histogram.lo, histogram.hi,
                  static_cast<unsigned long long>(histogram.count),
                  static_cast<unsigned long long>(histogram.underflow),
                  static_cast<unsigned long long>(histogram.overflow),
                  static_cast<unsigned long long>(histogram.nan_count));
    out << line;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (i > 0) out << ",";
      out << histogram.buckets[i];
    }
    out << "\n";
  }
  out << "spans=" << spans.size() << " dropped=" << dropped << "\n";
  return out.str();
}

TEST(ExportTest, SeededRoundTripThroughBenchReport) {
  if (!HavePython()) {
    GTEST_SKIP() << "python3 not available";
  }
  // Seeded property check: random metric values — including awkward
  // doubles — must survive C++ -> JSON -> python float() -> digest intact.
  Random rng(20260806);
  MetricsRegistry registry;
  for (int i = 0; i < 8; ++i) {
    registry.GetCounter("rt.counter" + std::to_string(i))
        .Add(rng.UniformInt(1u << 30));
  }
  for (int i = 0; i < 8; ++i) {
    // Exercise subnormal-ish tiny values, huge values, and negatives.
    const double magnitude = std::pow(10.0, rng.UniformRange(-30.0, 30.0));
    const double value = (rng.Bernoulli(0.5) ? 1.0 : -1.0) *
                         rng.UniformRange(0.0, 1.0) * magnitude;
    registry.GetGauge("rt.gauge" + std::to_string(i)).Set(value);
  }
  HistogramMetric& histogram =
      registry.GetHistogram("rt.hist", -1.0, 1.0, 16);
  for (int i = 0; i < 200; ++i) {
    histogram.Observe(rng.UniformRange(-1.5, 1.5));
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  std::vector<SpanRecord> spans;
  for (uint64_t i = 1; i <= 5; ++i) {
    SpanRecord span;
    span.name = "rt.span";
    span.id = i;
    span.parent_id = i / 2;
    span.start_ns = 100 * i;
    span.duration_ns = rng.UniformInt(1u << 20);
    span.depth = static_cast<uint32_t>(i % 3);
    spans.push_back(span);
  }

  const auto json = MetricsToJson(snapshot, spans, /*spans_dropped=*/7);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  const std::string path =
      testing::TempDir() + "/obs_round_trip_metrics.json";
  {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << *json;
  }

  bool python_ok = false;
  const std::string digest = PythonDigest(path, &python_ok);
  ASSERT_TRUE(python_ok) << "bench_report.py --validate-metrics failed:\n"
                         << digest;
  EXPECT_EQ(digest, ExpectedDigest(snapshot, spans, 7));
  std::remove(path.c_str());
}

TEST(ExportTest, WriteGlobalMetricsTableToStdout) {
  // "-" path: just verify it returns OK (stdout output checked manually).
  EXPECT_TRUE(WriteGlobalMetrics("-").ok());
}

TEST(ExportTest, WriteGlobalMetricsToFile) {
  ScopedEnabled enabled(true);
  HTUNE_OBS_COUNTER_ADD("obs_test.file_export", 1);
  const std::string path = testing::TempDir() + "/obs_export.json";
  ASSERT_TRUE(WriteGlobalMetrics(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("obs_test.file_export"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace htune::obs
