#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "market/simulator.h"
#include "probe/calibration.h"
#include "probe/probe.h"

namespace htune {
namespace {

MarketConfig ProbeMarket(uint64_t seed) {
  MarketConfig config;
  config.worker_arrival_rate = 100.0;
  config.seed = seed;
  config.record_trace = false;
  return config;
}

TEST(ProbeTest, FixedPeriodEstimatesRate) {
  MarketSimulator market(ProbeMarket(1));
  ProbeSpec spec;
  spec.price = 2;
  spec.on_hold_rate = 5.0;
  const auto report = RunFixedPeriodProbe(market, spec, 200.0);
  ASSERT_TRUE(report.ok());
  // ~1000 events; relative error ~ 1/sqrt(1000) ~ 3%.
  EXPECT_NEAR(report->lambda_hat, 5.0, 0.5);
  EXPECT_EQ(report->lambda_corrected, report->lambda_hat);
  EXPECT_GT(report->events, 800);
  EXPECT_DOUBLE_EQ(report->period, 200.0);
}

TEST(ProbeTest, FixedPeriodRejectsBadPeriod) {
  MarketSimulator market(ProbeMarket(2));
  EXPECT_FALSE(RunFixedPeriodProbe(market, ProbeSpec{}, 0.0).ok());
}

TEST(ProbeTest, RandomPeriodEstimatesRate) {
  MarketSimulator market(ProbeMarket(3));
  ProbeSpec spec;
  spec.on_hold_rate = 2.0;
  const auto report = RunRandomPeriodProbe(market, spec, 800);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->lambda_hat, 2.0, 0.2);
  EXPECT_EQ(report->events, 800);
  // Bias correction shrinks the estimate by (N-1)/N.
  EXPECT_NEAR(report->lambda_corrected,
              report->lambda_hat * 799.0 / 800.0, 1e-12);
}

TEST(ProbeTest, RandomPeriodNeedsTwoEvents) {
  MarketSimulator market(ProbeMarket(4));
  EXPECT_FALSE(RunRandomPeriodProbe(market, ProbeSpec{}, 1).ok());
}

TEST(ProbeTest, RandomPeriodBiasCorrectionReducesBias) {
  // With tiny N the raw MLE N/T0 overestimates; the corrected estimator's
  // average should sit closer to the truth.
  const double truth = 3.0;
  double raw_sum = 0.0, corrected_sum = 0.0;
  const int runs = 800;
  for (int r = 0; r < runs; ++r) {
    MarketSimulator market(ProbeMarket(100 + r));
    ProbeSpec spec;
    spec.on_hold_rate = truth;
    const auto report = RunRandomPeriodProbe(market, spec, 4);
    ASSERT_TRUE(report.ok());
    raw_sum += report->lambda_hat;
    corrected_sum += report->lambda_corrected;
  }
  const double raw_bias = raw_sum / runs - truth;
  const double corrected_bias = corrected_sum / runs - truth;
  EXPECT_GT(raw_bias, 0.0);
  EXPECT_LT(std::abs(corrected_bias), std::abs(raw_bias));
}

TEST(ProbeTest, ProcessingAndOnHoldRateEstimators) {
  MarketSimulator market(ProbeMarket(5));
  TaskSpec task;
  task.price_per_repetition = 1;
  task.repetitions = 5;
  task.on_hold_rate = 4.0;
  task.processing_rate = 1.5;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(market.PostTask(task).ok());
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  const std::vector<TaskOutcome> outcomes = market.CompletedOutcomes();
  const auto processing = EstimateProcessingRate(outcomes);
  const auto on_hold = EstimateOnHoldRate(outcomes);
  ASSERT_TRUE(processing.ok());
  ASSERT_TRUE(on_hold.ok());
  EXPECT_NEAR(*processing, 1.5, 0.1);
  EXPECT_NEAR(*on_hold, 4.0, 0.3);
}

TEST(ProbeTest, EstimatorsRejectEmptyInput) {
  EXPECT_FALSE(EstimateProcessingRate({}).ok());
  EXPECT_FALSE(EstimateOnHoldRate({}).ok());
}

TEST(ProbeTest, DecomposeOverallRate) {
  // lambda_o = 4, lambda_p = 2 -> overall mean 0.25 + 0.5 = 0.75,
  // overall rate = 4/3.
  const auto decomposition = DecomposeOverallRate(4.0 / 3.0, 4.0);
  ASSERT_TRUE(decomposition.ok());
  EXPECT_NEAR(decomposition->processing_rate_harmonic, 2.0, 1e-9);
  EXPECT_NEAR(decomposition->processing_rate_subtraction, 4.0 - 4.0 / 3.0,
              1e-12);
}

TEST(ProbeTest, DecomposeRejectsInfeasibleRates) {
  EXPECT_FALSE(DecomposeOverallRate(5.0, 4.0).ok());
  EXPECT_FALSE(DecomposeOverallRate(0.0, 4.0).ok());
}

TEST(CalibrationTest, RecoversLinearMarketCurve) {
  // Probe a market whose true curve is 0.5p + 1 at several prices, then fit.
  const LinearCurve truth(0.5, 1.0);
  std::vector<std::pair<double, double>> measured;
  for (int price : {1, 2, 4, 6, 8}) {
    MarketSimulator market(ProbeMarket(40 + static_cast<uint64_t>(price)));
    ProbeSpec spec;
    spec.price = price;
    spec.on_hold_rate = truth.Rate(price);
    const auto report = RunFixedPeriodProbe(market, spec, 400.0);
    ASSERT_TRUE(report.ok());
    measured.emplace_back(price, report->lambda_hat);
  }
  const auto calibration = CalibrateLinearCurve(measured);
  ASSERT_TRUE(calibration.ok());
  EXPECT_TRUE(calibration->SupportsLinearity(0.9));
  EXPECT_NEAR(calibration->fit.slope, 0.5, 0.1);
  EXPECT_NEAR(calibration->fit.intercept, 1.0, 0.4);
  const auto curve = calibration->ToCurve();
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR((*curve)->Rate(10.0), truth.Rate(10.0), 1.0);
}

TEST(CalibrationTest, PaperAmtPointsSupportLinearity) {
  // §5.2.2: the four (reward, lambda) measurements support Hypothesis 1.
  const auto calibration = CalibrateLinearCurve(PaperAmtMeasuredPoints());
  ASSERT_TRUE(calibration.ok());
  EXPECT_GT(calibration->fit.slope, 0.0);
  EXPECT_TRUE(calibration->SupportsLinearity(0.85));
}

TEST(CalibrationTest, Table1PointsAreMonotone) {
  for (const auto& points :
       {PaperTable1SortVotePoints(), PaperTable1YesNoVotePoints()}) {
    const auto calibration = CalibrateLinearCurve(points);
    ASSERT_TRUE(calibration.ok());
    EXPECT_GT(calibration->fit.slope, 0.0);
  }
  // Yes/no votes are easier, so their rate dominates sort votes at every
  // measured price.
  const auto sort_points = PaperTable1SortVotePoints();
  const auto yesno_points = PaperTable1YesNoVotePoints();
  for (size_t i = 0; i < sort_points.size(); ++i) {
    EXPECT_GE(yesno_points[i].second, sort_points[i].second);
  }
}

TEST(CalibrationTest, ToCurveRejectsNegativeSlope) {
  Calibration calibration;
  calibration.fit.slope = -1.0;
  calibration.fit.intercept = 5.0;
  EXPECT_FALSE(calibration.ToCurve().ok());
  calibration.fit.slope = 0.0;
  calibration.fit.intercept = 0.0;
  EXPECT_FALSE(calibration.ToCurve().ok());
}

TEST(CalibrationTest, RejectsTooFewPoints) {
  EXPECT_FALSE(CalibrateLinearCurve({{1.0, 2.0}}).ok());
}

}  // namespace
}  // namespace htune
