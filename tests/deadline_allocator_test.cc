#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "tuning/brute_force.h"
#include "tuning/deadline_allocator.h"
#include "tuning/group_latency_table.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Curve() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

TuningProblem MakeProblem(long budget_ceiling) {
  TaskGroup a;
  a.name = "a";
  a.num_tasks = 3;
  a.repetitions = 2;
  a.processing_rate = 2.0;
  a.curve = Curve();
  TaskGroup b = a;
  b.repetitions = 4;
  b.processing_rate = 1.0;
  TuningProblem problem;
  problem.groups = {a, b};
  problem.budget = budget_ceiling;
  return problem;
}

double Phase1Sum(const TuningProblem& problem,
                 const std::vector<int>& prices) {
  double total = 0.0;
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    total += GroupLatencyTable(problem.groups[i]).Phase1(prices[i]);
  }
  return total;
}

TEST(DeadlineTest, LooseDeadlineCostsTheMinimum) {
  const TuningProblem problem = MakeProblem(10000);
  const auto plan =
      SolveDeadline(problem, 1e9, DeadlineObjective::kPhase1Sum);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->prices, (std::vector<int>{1, 1}));
  EXPECT_EQ(plan->cost, problem.MinimumBudget());
}

TEST(DeadlineTest, MeetsTheDeadlineAtReportedValue) {
  const TuningProblem problem = MakeProblem(10000);
  for (const double deadline : {3.0, 1.5, 0.8, 0.3}) {
    const auto plan =
        SolveDeadline(problem, deadline, DeadlineObjective::kPhase1Sum);
    ASSERT_TRUE(plan.ok()) << deadline;
    EXPECT_LE(plan->achieved, deadline);
    EXPECT_NEAR(plan->achieved, Phase1Sum(problem, plan->prices), 1e-9);
    EXPECT_LE(plan->cost, problem.budget);
  }
}

TEST(DeadlineTest, CostIsMonotoneInDeadline) {
  const TuningProblem problem = MakeProblem(10000);
  long prev_cost = 1L << 60;
  for (const double deadline : {0.3, 0.5, 1.0, 2.0, 4.0}) {
    const auto plan =
        SolveDeadline(problem, deadline, DeadlineObjective::kPhase1Sum);
    ASSERT_TRUE(plan.ok());
    EXPECT_LE(plan->cost, prev_cost) << deadline;
    prev_cost = plan->cost;
  }
}

TEST(DeadlineTest, MatchesBruteForceMinimalCost) {
  const TuningProblem problem = MakeProblem(120);
  for (const double deadline : {2.0, 1.0, 0.6}) {
    const auto plan =
        SolveDeadline(problem, deadline, DeadlineObjective::kPhase1Sum);
    // Oracle: cheapest feasible uniform price vector by enumeration.
    long best_cost = 1L << 60;
    ForEachUniformPriceVector(problem, [&](const std::vector<int>& prices) {
      if (Phase1Sum(problem, prices) > deadline) return;
      long cost = 0;
      for (size_t i = 0; i < prices.size(); ++i) {
        cost += problem.groups[i].UnitCost() * prices[i];
      }
      best_cost = std::min(best_cost, cost);
    });
    if (best_cost == (1L << 60)) {
      EXPECT_EQ(plan.status().code(), StatusCode::kOutOfRange)
          << "deadline=" << deadline;
    } else {
      ASSERT_TRUE(plan.ok()) << "deadline=" << deadline;
      EXPECT_EQ(plan->cost, best_cost) << "deadline=" << deadline;
    }
  }
}

TEST(DeadlineTest, MostDifficultObjectiveRespectsProcessingFloor) {
  const TuningProblem problem = MakeProblem(10000);
  // Group b's phase-2 mean is 4 / 1.0 = 4: no deadline below that works.
  const auto impossible =
      SolveDeadline(problem, 3.9, DeadlineObjective::kMostDifficult);
  EXPECT_EQ(impossible.status().code(), StatusCode::kOutOfRange);

  const auto feasible =
      SolveDeadline(problem, 4.5, DeadlineObjective::kMostDifficult);
  ASSERT_TRUE(feasible.ok());
  EXPECT_LE(feasible->achieved, 4.5);
  // Nearly all payment must flow to b's phase 1.
  EXPECT_GT(feasible->prices[1], feasible->prices[0]);
}

TEST(DeadlineTest, BudgetCeilingBindsSearch) {
  const TuningProblem problem = MakeProblem(30);  // min spend is 18
  const auto plan =
      SolveDeadline(problem, 0.01, DeadlineObjective::kPhase1Sum);
  EXPECT_EQ(plan.status().code(), StatusCode::kOutOfRange);
}

TEST(DeadlineTest, ValidationErrors) {
  const TuningProblem problem = MakeProblem(1000);
  EXPECT_FALSE(
      SolveDeadline(problem, 0.0, DeadlineObjective::kPhase1Sum).ok());
  TuningProblem empty;
  EXPECT_FALSE(
      SolveDeadline(empty, 1.0, DeadlineObjective::kPhase1Sum).ok());
}

TEST(DeadlineTest, PlanExpandsToValidAllocation) {
  const TuningProblem problem = MakeProblem(10000);
  const auto plan =
      SolveDeadline(problem, 1.0, DeadlineObjective::kPhase1Sum);
  ASSERT_TRUE(plan.ok());
  const Allocation alloc = DeadlinePlanToAllocation(problem, *plan);
  EXPECT_TRUE(ValidateAllocation(problem, alloc).ok());
  EXPECT_EQ(alloc.TotalCost(), plan->cost);
}

}  // namespace
}  // namespace htune
