#include <tuple>

#include <gtest/gtest.h>

#include "model/quality.h"
#include "rng/random.h"

namespace htune {
namespace {

TEST(MajorityCorrectTest, SingleVoteIsRawAccuracy) {
  const auto p = MajorityCorrectProbability(0.2, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.8, 1e-12);
}

TEST(MajorityCorrectTest, ThreeVotesClosedForm) {
  // P(correct) = p^3 + 3 p^2 (1-p) with p = 0.9.
  const auto result = MajorityCorrectProbability(0.1, 3);
  ASSERT_TRUE(result.ok());
  const double p = 0.9;
  EXPECT_NEAR(*result, p * p * p + 3.0 * p * p * (1.0 - p), 1e-12);
}

TEST(MajorityCorrectTest, DegenerateErrorRates) {
  EXPECT_DOUBLE_EQ(*MajorityCorrectProbability(0.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(*MajorityCorrectProbability(1.0, 5), 0.0);
}

TEST(MajorityCorrectTest, FairCoinWorkersStayAtHalf) {
  for (int r : {1, 3, 7, 15}) {
    const auto p = MajorityCorrectProbability(0.5, r);
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(*p, 0.5, 1e-9) << "r=" << r;
  }
}

TEST(MajorityCorrectTest, TieBreakOrdering) {
  // Even repetition count: pessimistic <= coin flip <= optimistic, strictly
  // separated by half the tie mass.
  const double eps = 0.3;
  const int r = 4;
  const double pess =
      *MajorityCorrectProbability(eps, r, TieBreak::kPessimistic);
  const double coin = *MajorityCorrectProbability(eps, r, TieBreak::kCoinFlip);
  const double opt =
      *MajorityCorrectProbability(eps, r, TieBreak::kOptimistic);
  EXPECT_LT(pess, coin);
  EXPECT_LT(coin, opt);
  EXPECT_NEAR(coin, 0.5 * (pess + opt), 1e-12);
}

TEST(MajorityCorrectTest, OddCountsHaveNoTies) {
  const double eps = 0.25;
  for (int r : {1, 3, 5, 9}) {
    EXPECT_DOUBLE_EQ(
        *MajorityCorrectProbability(eps, r, TieBreak::kPessimistic),
        *MajorityCorrectProbability(eps, r, TieBreak::kOptimistic))
        << "r=" << r;
  }
}

TEST(MajorityCorrectTest, RejectsBadArguments) {
  EXPECT_FALSE(MajorityCorrectProbability(-0.1, 3).ok());
  EXPECT_FALSE(MajorityCorrectProbability(1.1, 3).ok());
  EXPECT_FALSE(MajorityCorrectProbability(0.2, 0).ok());
}

// Property sweep: majority accuracy is monotone in odd repetitions when
// workers beat a coin, and matches a Monte Carlo estimate.
class MajoritySweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(MajoritySweep, MatchesMonteCarloAndMonotone) {
  const auto [eps, r] = GetParam();
  const double analytic = *MajorityCorrectProbability(eps, r);
  if (r > 2) {
    EXPECT_GE(analytic + 1e-12, *MajorityCorrectProbability(eps, r - 2));
  }
  Random rng(static_cast<uint64_t>(r * 100) + 3);
  int correct = 0;
  const int trials = 120000;
  for (int t = 0; t < trials; ++t) {
    int right = 0;
    for (int i = 0; i < r; ++i) {
      if (!rng.Bernoulli(eps)) ++right;
    }
    if (2 * right > r) {
      ++correct;
    } else if (2 * right == r && rng.Bernoulli(0.5)) {
      ++correct;
    }
  }
  EXPECT_NEAR(analytic, correct / static_cast<double>(trials), 0.006);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MajoritySweep,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.35),
                       ::testing::Values(1, 3, 5, 9)));

TEST(MinRepetitionsTest, KnownThresholds) {
  // eps=0.3: r=1 -> 0.7; r=3 -> 0.784; r=5 -> 0.837.
  EXPECT_EQ(*MinRepetitionsForTarget(0.3, 0.70), 1);
  EXPECT_EQ(*MinRepetitionsForTarget(0.3, 0.75), 3);
  EXPECT_EQ(*MinRepetitionsForTarget(0.3, 0.80), 5);
}

TEST(MinRepetitionsTest, PerfectWorkersNeedOneVote) {
  EXPECT_EQ(*MinRepetitionsForTarget(0.0, 0.999), 1);
}

TEST(MinRepetitionsTest, CoinWorkersNeverReachTarget) {
  const auto result = MinRepetitionsForTarget(0.5, 0.9, 31);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(MinRepetitionsTest, RejectsBadArguments) {
  EXPECT_FALSE(MinRepetitionsForTarget(0.2, 0.0).ok());
  EXPECT_FALSE(MinRepetitionsForTarget(0.2, 1.0).ok());
  EXPECT_FALSE(MinRepetitionsForTarget(0.2, 0.9, 0).ok());
  EXPECT_FALSE(MinRepetitionsForTarget(-1.0, 0.9).ok());
}

TEST(QualityCurveTest, IncreasingOddPoints) {
  const auto curve = QualityCurve(0.2, 9);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 5u);
  double prev = 0.0;
  for (const QualityPoint& point : *curve) {
    EXPECT_EQ(point.repetitions % 2, 1);
    EXPECT_GT(point.correct_prob, prev);
    EXPECT_DOUBLE_EQ(point.latency_factor, point.repetitions);
    EXPECT_DOUBLE_EQ(point.cost_factor, point.repetitions);
    prev = point.correct_prob;
  }
}

TEST(QualityCurveTest, RejectsHopelessWorkers) {
  EXPECT_FALSE(QualityCurve(0.5, 9).ok());
  EXPECT_FALSE(QualityCurve(0.2, 0).ok());
}

}  // namespace
}  // namespace htune
