#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "model/latency_cache.h"
#include "model/latency_model.h"
#include "model/price_rate_curve.h"

namespace htune {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    for (const size_t n : {size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, ZeroIndicesIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, WritesLandInPerIndexSlots) {
  ThreadPool pool(4);
  std::vector<double> slots(512, 0.0);
  pool.ParallelFor(slots.size(), [&](size_t i) {
    slots[i] = static_cast<double>(i) * 1.5;
  });
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<double>(i) * 1.5);
  }
}

TEST(ParallelForTest, PropagatesTheFirstBodyException) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(100,
                         [&](size_t i) {
                           if (i == 37) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives a failed region: a fresh region still completes.
    std::atomic<int> completed{0};
    pool.ParallelFor(100, [&](size_t) { completed.fetch_add(1); });
    EXPECT_EQ(completed.load(), 100) << "threads=" << threads;
  }
}

TEST(ParallelForTest, NestedRegionsComplete) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(8, [&](size_t outer) {
    pool.ParallelFor(8, [&](size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelMapTest, SlotsHoldFnOfIndex) {
  ThreadPool pool(4);
  const std::vector<int> out =
      pool.ParallelMap<int>(100, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(DefaultThreadCountTest, HonorsEnvironmentOverride) {
  ::setenv("HTUNE_THREADS", "3", 1);
  EXPECT_EQ(DefaultThreadCount(), 3);
  ::setenv("HTUNE_THREADS", "0", 1);  // out of range: falls back to hardware
  EXPECT_GE(DefaultThreadCount(), 1);
  ::setenv("HTUNE_THREADS", "junk", 1);
  EXPECT_GE(DefaultThreadCount(), 1);
  ::unsetenv("HTUNE_THREADS");
  EXPECT_GE(DefaultThreadCount(), 1);
}

TEST(ScopedDefaultThreadPoolTest, OverridesAndRestores) {
  const int base_threads = DefaultThreadPool().threads();
  {
    ThreadPool pool(2);
    ScopedDefaultThreadPool scoped(&pool);
    EXPECT_EQ(&DefaultThreadPool(), &pool);
    EXPECT_EQ(DefaultThreadPool().threads(), 2);
    std::vector<int> slots(16, 0);
    ParallelFor(slots.size(), [&](size_t i) { slots[i] = 1; });
    for (int v : slots) EXPECT_EQ(v, 1);
  }
  EXPECT_EQ(DefaultThreadPool().threads(), base_threads);
}

TEST(LatencyCacheTest, ConcurrentLookupsMatchSerialKernel) {
  GlobalLatencyCache().Clear();
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  // 16 distinct (shape, price) keys, each requested from 64 indices at once.
  const int kKeys = 16;
  const int kRequests = 64 * kKeys;
  std::vector<double> got(static_cast<size_t>(kRequests), 0.0);
  ThreadPool pool(4);
  pool.ParallelFor(static_cast<size_t>(kRequests), [&](size_t i) {
    const int key = static_cast<int>(i) % kKeys;
    GroupShape shape;
    shape.num_tasks = 5 + key % 4;
    shape.repetitions = 1 + key / 4;
    got[i] = GlobalLatencyCache().Phase1(shape, curve, 1 + key % 3);
  });
  for (int key = 0; key < kKeys; ++key) {
    GroupShape shape;
    shape.num_tasks = 5 + key % 4;
    shape.repetitions = 1 + key / 4;
    const double expect =
        ExpectedGroupOnHoldLatency(shape, *curve, 1 + key % 3);
    for (int i = key; i < kRequests; i += kKeys) {
      EXPECT_EQ(got[static_cast<size_t>(i)], expect) << "key=" << key;
    }
  }
  const LatencyCacheStats stats = GlobalLatencyCache().Stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kRequests));
  // A racing pair may both miss, but entries are keyed uniquely.
  EXPECT_EQ(stats.entries, static_cast<uint64_t>(kKeys));
  EXPECT_GE(stats.hits, static_cast<uint64_t>(kRequests - 2 * kKeys));
}

TEST(LatencyCacheTest, ClearDropsEntriesAndCounters) {
  GlobalLatencyCache().Clear();
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  GroupShape shape;
  shape.num_tasks = 4;
  shape.repetitions = 2;
  GlobalLatencyCache().Phase1(shape, curve, 2);
  EXPECT_GE(GlobalLatencyCache().Stats().entries, 1u);
  GlobalLatencyCache().Clear();
  const LatencyCacheStats stats = GlobalLatencyCache().Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

// Regression: the miss path used to pin the curve and insert the entry
// under separate critical sections, so a concurrent Clear() could land
// between them — dropping the pin while the entry survived, leaving a
// key whose curve address could be recycled into a colliding key. The
// pair is now atomic against Clear() (both run under pin_mu_), so every
// surviving entry always has a live pin.
TEST(LatencyCacheTest, ClearNeverStrandsAnUnpinnedEntry) {
  GlobalLatencyCache().Clear();
  ThreadPool pool(4);
  const size_t kIters = 4000;
  pool.ParallelFor(kIters, [](size_t i) {
    if (i % 17 == 0) {
      GlobalLatencyCache().Clear();
      return;
    }
    // Fresh heap allocation per iteration: unpinned curves really are
    // destroyed, so their addresses really can be recycled.
    const auto curve =
        std::make_shared<LinearCurve>(1.0 + static_cast<double>(i % 7), 1.0);
    GroupShape shape;
    shape.num_tasks = 2 + static_cast<int>(i % 3);
    shape.repetitions = 1 + static_cast<int>(i % 2);
    GlobalLatencyCache().Phase1(shape, curve, 1 + static_cast<int>(i % 4));
  });
  EXPECT_EQ(GlobalLatencyCache().UnpinnedEntryCountForTest(), 0u);
  GlobalLatencyCache().Clear();
}

TEST(LatencyCacheTest, ProcessingRateDoesNotSplitEntries) {
  GlobalLatencyCache().Clear();
  const auto curve = std::make_shared<LinearCurve>(1.0, 1.0);
  GroupShape fast;
  fast.num_tasks = 6;
  fast.repetitions = 3;
  fast.processing_rate = 10.0;
  GroupShape slow = fast;
  slow.processing_rate = 0.5;
  const double a = GlobalLatencyCache().Phase1(fast, curve, 2);
  const double b = GlobalLatencyCache().Phase1(slow, curve, 2);
  EXPECT_EQ(a, b);
  const LatencyCacheStats stats = GlobalLatencyCache().Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

}  // namespace
}  // namespace htune
