#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "market/simulator.h"
#include "stats/descriptive.h"

namespace htune {
namespace {

MarketConfig FastConfig(uint64_t seed) {
  MarketConfig config;
  config.worker_arrival_rate = 50.0;
  config.seed = seed;
  return config;
}

TaskSpec BasicSpec() {
  TaskSpec spec;
  spec.price_per_repetition = 2;
  spec.repetitions = 1;
  spec.on_hold_rate = 3.0;
  spec.processing_rate = 2.0;
  return spec;
}

TEST(MarketTest, PostTaskValidatesSpec) {
  MarketSimulator market(FastConfig(1));
  TaskSpec spec = BasicSpec();

  spec.price_per_repetition = 0;
  EXPECT_FALSE(market.PostTask(spec).ok());

  spec = BasicSpec();
  spec.repetitions = 0;
  EXPECT_FALSE(market.PostTask(spec).ok());

  spec = BasicSpec();
  spec.on_hold_rate = 0.0;
  EXPECT_FALSE(market.PostTask(spec).ok());

  spec = BasicSpec();
  spec.on_hold_rate = 100.0;  // exceeds arrival rate 50
  EXPECT_EQ(market.PostTask(spec).status().code(),
            StatusCode::kFailedPrecondition);

  spec = BasicSpec();
  spec.processing_rate = -1.0;
  EXPECT_FALSE(market.PostTask(spec).ok());

  spec = BasicSpec();
  spec.true_answer = 5;
  spec.num_options = 2;
  EXPECT_FALSE(market.PostTask(spec).ok());

  spec = BasicSpec();
  spec.per_repetition_prices = {1, 2};  // wrong length for 1 repetition
  EXPECT_FALSE(market.PostTask(spec).ok());

  spec = BasicSpec();
  spec.per_repetition_rates = {1.0, 1.0};
  EXPECT_FALSE(market.PostTask(spec).ok());
}

TEST(MarketTest, RunToCompletionWithoutTasksFails) {
  MarketSimulator market(FastConfig(2));
  EXPECT_EQ(market.RunToCompletion().code(), StatusCode::kFailedPrecondition);
}

TEST(MarketTest, SingleTaskCompletes) {
  MarketSimulator market(FastConfig(3));
  const auto id = market.PostTask(BasicSpec());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(market.RunToCompletion().ok());
  const auto outcome = market.GetOutcome(*id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->repetitions.size(), 1u);
  EXPECT_GT(outcome->completed_time, outcome->posted_time);
  EXPECT_GT(outcome->Latency(), 0.0);
  EXPECT_EQ(market.TotalSpent(), 2);
}

TEST(MarketTest, DeterministicReplay) {
  std::vector<double> latencies;
  for (int run = 0; run < 2; ++run) {
    MarketSimulator market(FastConfig(42));
    std::vector<TaskId> ids;
    for (int i = 0; i < 5; ++i) {
      TaskSpec spec = BasicSpec();
      spec.repetitions = 3;
      ids.push_back(*market.PostTask(spec));
    }
    ASSERT_TRUE(market.RunToCompletion().ok());
    for (TaskId id : ids) {
      latencies.push_back(market.GetOutcome(id)->Latency());
    }
  }
  ASSERT_EQ(latencies.size(), 10u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(latencies[i], latencies[i + 5]);
  }
}

TEST(MarketTest, SequentialRepetitionsAreOrdered) {
  MarketSimulator market(FastConfig(4));
  TaskSpec spec = BasicSpec();
  spec.repetitions = 6;
  const TaskId id = *market.PostTask(spec);
  ASSERT_TRUE(market.RunToCompletion().ok());
  const TaskOutcome outcome = *market.GetOutcome(id);
  ASSERT_EQ(outcome.repetitions.size(), 6u);
  double prev_complete = outcome.posted_time;
  for (const RepetitionOutcome& rep : outcome.repetitions) {
    // Each repetition is posted exactly when the previous one finished.
    EXPECT_DOUBLE_EQ(rep.posted_time, prev_complete);
    EXPECT_GE(rep.accepted_time, rep.posted_time);
    EXPECT_GE(rep.completed_time, rep.accepted_time);
    prev_complete = rep.completed_time;
  }
  EXPECT_DOUBLE_EQ(outcome.completed_time, prev_complete);
}

TEST(MarketTest, OnHoldLatencyIsExponentialWithRequestedRate) {
  // Acceptance is the arrival Poisson stream thinned by rate/arrival_rate,
  // so on-hold latencies must be Exp(on_hold_rate). Tasks sharing one
  // market share arrival epochs and are correlated, so the sample is drawn
  // across many independent markets.
  const double rate = 4.0;
  std::vector<double> on_hold;
  for (int m = 0; m < 300; ++m) {
    MarketSimulator market(FastConfig(500 + m));
    std::vector<TaskId> ids;
    for (int i = 0; i < 5; ++i) {
      TaskSpec spec = BasicSpec();
      spec.on_hold_rate = rate;
      spec.processing_rate = 100.0;
      ids.push_back(*market.PostTask(spec));
    }
    ASSERT_TRUE(market.RunToCompletion().ok());
    for (TaskId id : ids) {
      on_hold.push_back(
          market.GetOutcome(id)->repetitions[0].OnHoldLatency());
    }
  }
  EXPECT_NEAR(Mean(on_hold), 1.0 / rate, 0.02);
  EmpiricalCdf ecdf(on_hold);
  const double ks = KolmogorovSmirnovStatistic(ecdf, [rate](double t) {
    return 1.0 - std::exp(-rate * t);
  });
  EXPECT_LT(ks, 0.05);
}

TEST(MarketTest, ProcessingLatencyIsExponential) {
  MarketSimulator market(FastConfig(6));
  const double processing_rate = 1.5;
  std::vector<TaskId> ids;
  for (int i = 0; i < 1500; ++i) {
    TaskSpec spec = BasicSpec();
    spec.processing_rate = processing_rate;
    ids.push_back(*market.PostTask(spec));
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  std::vector<double> processing;
  for (TaskId id : ids) {
    processing.push_back(
        market.GetOutcome(id)->repetitions[0].ProcessingLatency());
  }
  EXPECT_NEAR(Mean(processing), 1.0 / processing_rate, 0.05);
  EmpiricalCdf ecdf(processing);
  const double ks =
      KolmogorovSmirnovStatistic(ecdf, [processing_rate](double t) {
        return 1.0 - std::exp(-processing_rate * t);
      });
  EXPECT_LT(ks, 0.05);
}

TEST(MarketTest, WorkerArrivalsFormPoissonProcess) {
  MarketConfig config = FastConfig(7);
  config.worker_arrival_rate = 10.0;
  MarketSimulator market(config);
  TaskSpec spec = BasicSpec();
  spec.on_hold_rate = 0.5;
  spec.repetitions = 40;
  ASSERT_TRUE(market.PostTask(spec).ok());
  ASSERT_TRUE(market.RunToCompletion().ok());
  // Count arrival events in the trace; their count over elapsed time must
  // match the configured rate, and inter-arrival gaps must look memoryless.
  std::vector<double> arrival_times;
  for (const TraceEvent& event : market.trace()) {
    if (event.kind == TraceEventKind::kWorkerArrival) {
      arrival_times.push_back(event.time);
    }
  }
  ASSERT_GT(arrival_times.size(), 100u);
  const double elapsed = arrival_times.back();
  EXPECT_NEAR(static_cast<double>(arrival_times.size()) / elapsed, 10.0, 0.8);
  std::vector<double> gaps;
  for (size_t i = 1; i < arrival_times.size(); ++i) {
    gaps.push_back(arrival_times[i] - arrival_times[i - 1]);
  }
  EmpiricalCdf ecdf(gaps);
  const double ks = KolmogorovSmirnovStatistic(
      ecdf, [](double t) { return 1.0 - std::exp(-10.0 * t); });
  EXPECT_LT(ks, 0.06);
}

TEST(MarketTest, ErrorInjectionMatchesConfiguredProbability) {
  MarketConfig config = FastConfig(8);
  config.worker_error_prob = 0.25;
  MarketSimulator market(config);
  std::vector<TaskId> ids;
  for (int i = 0; i < 800; ++i) {
    TaskSpec spec = BasicSpec();
    spec.repetitions = 3;
    spec.true_answer = 1;
    spec.num_options = 4;
    ids.push_back(*market.PostTask(spec));
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  int wrong = 0, total = 0;
  for (TaskId id : ids) {
    const TaskOutcome outcome = *market.GetOutcome(id);
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      ++total;
      if (!rep.correct) {
        ++wrong;
        EXPECT_NE(rep.answer, 1);
        EXPECT_GE(rep.answer, 0);
        EXPECT_LT(rep.answer, 4);
      } else {
        EXPECT_EQ(rep.answer, 1);
      }
    }
  }
  EXPECT_NEAR(wrong / static_cast<double>(total), 0.25, 0.035);
}

TEST(MarketTest, ErrorsRequireMultipleOptions) {
  MarketConfig config = FastConfig(9);
  config.worker_error_prob = 0.5;
  MarketSimulator market(config);
  TaskSpec spec = BasicSpec();
  spec.num_options = 1;
  spec.true_answer = 0;
  EXPECT_FALSE(market.PostTask(spec).ok());
}

TEST(MarketTest, PerRepetitionOverridesApply) {
  MarketSimulator market(FastConfig(10));
  TaskSpec spec = BasicSpec();
  spec.repetitions = 3;
  spec.per_repetition_prices = {1, 5, 2};
  spec.per_repetition_rates = {1.0, 10.0, 2.0};
  const TaskId id = *market.PostTask(spec);
  ASSERT_TRUE(market.RunToCompletion().ok());
  EXPECT_EQ(market.TotalSpent(), 8);
  EXPECT_EQ(market.GetOutcome(id)->repetitions.size(), 3u);
}

TEST(MarketTest, RunUntilStopsAtDeadline) {
  MarketSimulator market(FastConfig(11));
  TaskSpec spec = BasicSpec();
  spec.on_hold_rate = 0.001;  // will not be accepted quickly
  ASSERT_TRUE(market.PostTask(spec).ok());
  const size_t open = market.RunUntil(1.0);
  EXPECT_EQ(open, 1u);
  EXPECT_DOUBLE_EQ(market.now(), 1.0);
  // The incomplete task reports progress but not an outcome.
  EXPECT_EQ(market.GetOutcome(1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(market.GetProgress(1).ok());
}

TEST(MarketTest, GetOutcomeUnknownIdIsNotFound) {
  MarketSimulator market(FastConfig(12));
  EXPECT_EQ(market.GetOutcome(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(market.GetProgress(99).status().code(), StatusCode::kNotFound);
}

TEST(MarketTest, CompletedOutcomesInCompletionOrder) {
  MarketSimulator market(FastConfig(13));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(market.PostTask(BasicSpec()).ok());
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  const std::vector<TaskOutcome> outcomes = market.CompletedOutcomes();
  ASSERT_EQ(outcomes.size(), 20u);
  double prev = 0.0;
  for (const TaskOutcome& outcome : outcomes) {
    EXPECT_GE(outcome.completed_time, prev);
    prev = outcome.completed_time;
  }
}

TEST(MarketTest, TraceDisabledLeavesTraceEmpty) {
  MarketConfig config = FastConfig(14);
  config.record_trace = false;
  MarketSimulator market(config);
  ASSERT_TRUE(market.PostTask(BasicSpec()).ok());
  ASSERT_TRUE(market.RunToCompletion().ok());
  EXPECT_TRUE(market.trace().empty());
}

TEST(MarketTest, TraceEventKindsAreNamed) {
  EXPECT_EQ(TraceEventKindToString(TraceEventKind::kWorkerArrival),
            "WORKER_ARRIVAL");
  EXPECT_EQ(TraceEventKindToString(TraceEventKind::kTaskAccepted),
            "TASK_ACCEPTED");
  EXPECT_EQ(TraceEventKindToString(TraceEventKind::kRepetitionCompleted),
            "REPETITION_COMPLETED");
  EXPECT_EQ(TraceEventKindToString(TraceEventKind::kTaskCompleted),
            "TASK_COMPLETED");
}

TEST(MarketTest, HigherRateShortensOnHoldLatency) {
  // End-to-end stochastic dominance check: raising the on-hold rate (the
  // price knob) must reduce mean acceptance latency.
  double slow_mean = 0.0, fast_mean = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    MarketSimulator market(FastConfig(15));
    const double rate = pass == 0 ? 1.0 : 8.0;
    std::vector<TaskId> ids;
    for (int i = 0; i < 600; ++i) {
      TaskSpec spec = BasicSpec();
      spec.on_hold_rate = rate;
      ids.push_back(*market.PostTask(spec));
    }
    EXPECT_TRUE(market.RunToCompletion().ok());
    RunningStats stats;
    for (TaskId id : ids) {
      stats.Add(market.GetOutcome(id)->repetitions[0].OnHoldLatency());
    }
    (pass == 0 ? slow_mean : fast_mean) = stats.Mean();
  }
  EXPECT_LT(fast_mean, slow_mean / 4.0);
}

TEST(MarketTest, SpentAccountingMatchesPrices) {
  MarketSimulator market(FastConfig(16));
  TaskSpec spec = BasicSpec();
  spec.repetitions = 4;
  spec.price_per_repetition = 3;
  ASSERT_TRUE(market.PostTask(spec).ok());
  ASSERT_TRUE(market.PostTask(spec).ok());
  ASSERT_TRUE(market.RunToCompletion().ok());
  EXPECT_EQ(market.TotalSpent(), 2 * 4 * 3);
}

}  // namespace
}  // namespace htune
