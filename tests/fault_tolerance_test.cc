// Tests for the fault layer: worker abandonment, acceptance-timeout expiry,
// scripted fault schedules, the renewal-corrected latency model, and the
// fault-tolerant executor's recovery behaviour.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "control/fault_tolerant_executor.h"
#include "crowddb/executor.h"
#include "market/fault_schedule.h"
#include "market/simulator.h"
#include "market/trace_io.h"
#include "model/latency_model.h"
#include "stats/descriptive.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

TEST(FaultScheduleTest, CreateValidation) {
  EXPECT_FALSE(FaultSchedule::Create({}).ok());
  EXPECT_FALSE(FaultSchedule::Create({{2.0, 1.0, 0.5, -1.0}}).ok());  // end<=s
  EXPECT_FALSE(FaultSchedule::Create({{-1.0, 1.0, 0.5, -1.0}}).ok());
  EXPECT_FALSE(FaultSchedule::Create({{0.0, 1.0, -0.5, -1.0}}).ok());
  EXPECT_FALSE(FaultSchedule::Create({{0.0, 1.0, 1.0, 2.0}}).ok());  // p > 1
  // Overlapping windows are rejected; unsorted input is sorted internally.
  EXPECT_FALSE(
      FaultSchedule::Create({{0.0, 2.0, 0.5, -1.0}, {1.0, 3.0, 0.5, -1.0}})
          .ok());
  const auto unsorted =
      FaultSchedule::Create({{5.0, 6.0, 0.5, -1.0}, {1.0, 2.0, 0.3, -1.0}});
  ASSERT_TRUE(unsorted.ok());
  EXPECT_DOUBLE_EQ(unsorted->ArrivalFactorAt(1.5), 0.3);
  EXPECT_DOUBLE_EQ(unsorted->ArrivalFactorAt(5.5), 0.5);
  EXPECT_TRUE(
      FaultSchedule::Create({{0.0, 2.0, 0.5, -1.0}, {2.0, 3.0, 2.0, 0.9}})
          .ok());
}

TEST(FaultScheduleTest, LookupAndEnvelope) {
  const auto schedule = FaultSchedule::Create(
      {{1.0, 2.0, 0.1, -1.0}, {5.0, 6.0, 3.0, 0.75}});
  ASSERT_TRUE(schedule.ok());
  EXPECT_DOUBLE_EQ(schedule->ArrivalFactorAt(0.5), 1.0);
  EXPECT_DOUBLE_EQ(schedule->ArrivalFactorAt(1.0), 0.1);
  EXPECT_DOUBLE_EQ(schedule->ArrivalFactorAt(1.999), 0.1);
  EXPECT_DOUBLE_EQ(schedule->ArrivalFactorAt(2.0), 1.0);
  EXPECT_DOUBLE_EQ(schedule->ArrivalFactorAt(5.5), 3.0);
  // Error override only inside the second window.
  EXPECT_DOUBLE_EQ(schedule->ErrorProbAt(1.5, 0.2), 0.2);
  EXPECT_DOUBLE_EQ(schedule->ErrorProbAt(5.5, 0.2), 0.75);
  // Envelope covers the implicit factor 1 outside all windows.
  EXPECT_DOUBLE_EQ(schedule->MaxArrivalFactor(), 3.0);
  EXPECT_DOUBLE_EQ(schedule->MaxErrorProb(0.2), 0.75);
  const auto dimmed = FaultSchedule::Create({{1.0, 2.0, 0.1, -1.0}});
  ASSERT_TRUE(dimmed.ok());
  EXPECT_DOUBLE_EQ(dimmed->MaxArrivalFactor(), 1.0);
}

TEST(AbandonmentModelTest, RenewalFormulas) {
  const AbandonmentModel none;
  EXPECT_DOUBLE_EQ(ExpectedAttemptsPerRepetition(none), 1.0);
  EXPECT_DOUBLE_EQ(EffectiveOnHoldMean(4.0, none), 0.25);
  EXPECT_DOUBLE_EQ(EffectiveOnHoldRate(4.0, none), 4.0);

  const AbandonmentModel model{0.4, 2.0};
  EXPECT_NEAR(ExpectedAttemptsPerRepetition(model), 1.0 / 0.6, 1e-12);
  // (1/0.6)/4 + (0.4/0.6)/2
  const double mean = (1.0 / 0.6) / 4.0 + (0.4 / 0.6) / 2.0;
  EXPECT_NEAR(EffectiveOnHoldMean(4.0, model), mean, 1e-12);
  EXPECT_NEAR(EffectiveOnHoldRate(4.0, model), 1.0 / mean, 1e-12);
  EXPECT_NEAR(EffectiveRepetitionLatency(4.0, 2.0, model), mean + 0.5,
              1e-12);
}

TEST(AbandonmentModelTest, CertainAbandonmentClampsToFiniteCeiling) {
  // prob == 1 is an infinite expected hold chain. The model math must not
  // abort or emit inf/NaN — it clamps to kAbandonProbCeiling so anything
  // that slips past validation still produces finite, positive rates.
  const double eps = 1e-12;
  const AbandonmentModel none{0.0, 2.0};
  const AbandonmentModel near_one{1.0 - eps, 2.0};
  const AbandonmentModel certain{1.0, 2.0};

  // prob == 0: exact identity, untouched by the clamp.
  EXPECT_DOUBLE_EQ(ExpectedAttemptsPerRepetition(none), 1.0);
  EXPECT_DOUBLE_EQ(EffectiveOnHoldRate(4.0, none), 4.0);

  // prob == 1 - eps (inside the ceiling): astronomically slow but finite.
  EXPECT_TRUE(std::isfinite(ExpectedAttemptsPerRepetition(near_one)));
  EXPECT_TRUE(std::isfinite(EffectiveOnHoldMean(4.0, near_one)));
  EXPECT_GT(EffectiveOnHoldRate(4.0, near_one), 0.0);

  // prob == 1: clamped to the ceiling, never inf/NaN/zero.
  const double attempts = ExpectedAttemptsPerRepetition(certain);
  EXPECT_TRUE(std::isfinite(attempts));
  EXPECT_DOUBLE_EQ(attempts, 1.0 / (1.0 - kAbandonProbCeiling));
  const double mean = EffectiveOnHoldMean(4.0, certain);
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_GT(mean, 0.0);
  const double rate = EffectiveOnHoldRate(4.0, certain);
  EXPECT_TRUE(std::isfinite(rate));
  EXPECT_GT(rate, 0.0);
  EXPECT_TRUE(std::isfinite(EffectiveRepetitionLatency(4.0, 2.0, certain)));

  // The adjusted curve keeps the PriceRateCurve contract (positive,
  // finite, monotone) even at the degenerate probability.
  const auto base = std::make_shared<LinearCurve>(1.0, 1.0);
  const auto adjusted = AdjustCurveForAbandonment(base, certain);
  ASSERT_NE(adjusted, nullptr);
  double prev = 0.0;
  for (const double price : {1.0, 4.0, 9.0}) {
    const double r = adjusted->Rate(price);
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(AbandonmentModelTest, ValidationRejectsCertainAbandonment) {
  // The executor-facing validation rejects prob >= 1 with a clear Status
  // instead of letting the degenerate model reach the DP.
  FaultTolerantConfig config;
  config.abandonment = {1.0, 2.0};
  const Status status = ValidateFaultTolerantConfig(config);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("abandonment.prob"), std::string::npos);

  config.abandonment = {1.5, 2.0};
  EXPECT_FALSE(ValidateFaultTolerantConfig(config).ok());
  config.abandonment = {-0.1, 2.0};
  EXPECT_FALSE(ValidateFaultTolerantConfig(config).ok());
  config.abandonment = {0.5, 0.0};
  EXPECT_FALSE(ValidateFaultTolerantConfig(config).ok());
  config.abandonment = {1.0 - 1e-9, 2.0};
  EXPECT_TRUE(ValidateFaultTolerantConfig(config).ok());
  config.abandonment = {0.0, 0.0};  // hold_rate irrelevant at prob 0
  EXPECT_TRUE(ValidateFaultTolerantConfig(config).ok());
}

TEST(AbandonmentModelTest, AdjustCurveDecorates) {
  const auto base = std::make_shared<LinearCurve>(1.0, 1.0);
  // prob == 0 must return the identical curve (no wrapper, no RNG cost).
  EXPECT_EQ(AdjustCurveForAbandonment(base, AbandonmentModel{}).get(),
            base.get());
  const AbandonmentModel model{0.25, 3.0};
  const auto adjusted = AdjustCurveForAbandonment(base, model);
  ASSERT_NE(adjusted, nullptr);
  for (const double price : {1.0, 4.0, 9.0}) {
    EXPECT_NEAR(adjusted->Rate(price),
                EffectiveOnHoldRate(base->Rate(price), model), 1e-12);
  }
  // Correction always slows the curve down.
  EXPECT_LT(adjusted->Rate(5.0), base->Rate(5.0));
}

TEST(ProblemWithAbandonmentTest, WrapsEveryGroupCurve) {
  TaskGroup g;
  g.num_tasks = 4;
  g.repetitions = 2;
  g.processing_rate = 3.0;
  g.curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  problem.groups = {g, g};
  problem.budget = 40;

  const TuningProblem same = ProblemWithAbandonment(problem, {});
  EXPECT_EQ(same.groups[0].curve.get(), problem.groups[0].curve.get());

  const AbandonmentModel model{0.3, 2.0};
  const TuningProblem adjusted = ProblemWithAbandonment(problem, model);
  ASSERT_EQ(adjusted.groups.size(), 2u);
  EXPECT_EQ(adjusted.budget, problem.budget);
  for (const TaskGroup& group : adjusted.groups) {
    EXPECT_NEAR(group.curve->Rate(5.0),
                EffectiveOnHoldRate(problem.groups[0].curve->Rate(5.0), model),
                1e-12);
  }
}

// Acceptance criterion (a): simulated mean job latency under abandonment
// matches the analytic renewal-corrected expectation within MC tolerance.
TEST(AbandonmentSimTest, MeanLatencyMatchesRenewalExpectation) {
  const AbandonmentModel model{0.4, 2.0};
  const int kReps = 3;
  const double expected_task =
      kReps * EffectiveRepetitionLatency(4.0, 2.0, model);
  ASSERT_NEAR(expected_task, 3.75, 1e-12);  // the numbers behind the test

  RunningStats task_latency;
  long answered = 0, abandoned = 0;
  for (int m = 0; m < 100; ++m) {
    MarketConfig config;
    config.worker_arrival_rate = 100.0;
    config.abandon_prob = model.prob;
    config.abandon_hold_rate = model.hold_rate;
    config.seed = 500 + static_cast<uint64_t>(m);
    config.record_trace = false;
    MarketSimulator market(config);
    std::vector<TaskId> ids;
    for (int i = 0; i < 8; ++i) {
      TaskSpec spec;
      spec.price_per_repetition = 3;
      spec.repetitions = kReps;
      spec.on_hold_rate = 4.0;
      spec.processing_rate = 2.0;
      ids.push_back(*market.PostTask(spec));
    }
    ASSERT_TRUE(market.RunToCompletion().ok());
    long expected_spend = 0;
    for (const TaskId id : ids) {
      const TaskOutcome outcome = *market.GetOutcome(id);
      task_latency.Add(outcome.Latency());
      answered += static_cast<long>(outcome.repetitions.size());
      abandoned += outcome.abandoned_attempts;
      for (const RepetitionOutcome& rep : outcome.repetitions) {
        expected_spend += rep.price;
      }
    }
    // Abandoned attempts are unpaid: spend covers answered repetitions only.
    EXPECT_EQ(market.TotalSpent(), expected_spend);
    EXPECT_EQ(expected_spend, 8L * kReps * 3);
  }
  EXPECT_NEAR(task_latency.Mean(), expected_task, 0.15);
  // The abandoned fraction of accepted attempts estimates p.
  EXPECT_NEAR(abandoned / static_cast<double>(answered + abandoned),
              model.prob, 0.05);
}

TEST(ExpiryTest, TimedOutRepetitionsRepostUntilAccepted) {
  MarketConfig config;
  config.worker_arrival_rate = 20.0;
  config.seed = 71;
  MarketSimulator market(config);
  std::vector<TaskId> ids;
  for (int i = 0; i < 6; ++i) {
    TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = 2;
    spec.on_hold_rate = 0.8;          // slow acceptance...
    spec.acceptance_timeout = 0.5;    // ...against a short window
    spec.processing_rate = 10.0;
    ids.push_back(*market.PostTask(spec));
  }
  ASSERT_TRUE(market.RunToCompletion().ok());
  int expired = 0;
  for (const TaskId id : ids) {
    const TaskOutcome outcome = *market.GetOutcome(id);
    EXPECT_EQ(outcome.repetitions.size(), 2u);
    expired += outcome.expired_posts;
  }
  // E[expiries per exposure] = e^{-0.4}/(1-e^{-0.4}) ≈ 2: plenty expected.
  EXPECT_GT(expired, 0);
  int reposted_events = 0, expired_events = 0;
  for (const TraceEvent& event : market.trace()) {
    if (event.kind == TraceEventKind::kReposted) ++reposted_events;
    if (event.kind == TraceEventKind::kExpired) ++expired_events;
  }
  EXPECT_EQ(expired_events, expired);
  EXPECT_GE(reposted_events, expired_events);
}

TEST(GetProgressTest, ReflectsAbandonedAttemptsWhileOpen) {
  MarketConfig config;
  config.worker_arrival_rate = 30.0;
  config.abandon_prob = 0.5;
  config.abandon_hold_rate = 1.0;
  config.seed = 72;
  config.record_trace = false;
  MarketSimulator market(config);
  std::vector<TaskId> ids;
  for (int i = 0; i < 6; ++i) {
    TaskSpec spec;
    spec.price_per_repetition = 1;
    spec.repetitions = 3;
    spec.on_hold_rate = 4.0;
    spec.processing_rate = 2.0;
    ids.push_back(*market.PostTask(spec));
  }
  // Poll progress while the job runs: abandoned attempts must be visible
  // before completion, not only in the final outcome.
  bool seen_open_abandon = false;
  for (int step = 0; step < 200 && market.OpenTaskCount() > 0; ++step) {
    market.RunUntil(market.now() + 0.05);
    for (const TaskId id : ids) {
      const auto progress = market.GetProgress(id);
      ASSERT_TRUE(progress.ok());
      if (progress->completed_time == 0.0 &&
          progress->abandoned_attempts > 0) {
        seen_open_abandon = true;
      }
    }
  }
  EXPECT_TRUE(seen_open_abandon);
}

// Acceptance criterion (c): traces containing the new event kinds round-trip
// through trace_io, and equal configs produce identical traces.
TEST(TraceRoundTripTest, FaultEventKindsRoundTripAndDeterminism) {
  const auto run_once = [] {
    MarketConfig config;
    config.worker_arrival_rate = 20.0;
    config.abandon_prob = 0.4;
    config.abandon_hold_rate = 2.0;
    config.seed = 73;
    MarketSimulator market(config);
    for (int i = 0; i < 5; ++i) {
      TaskSpec spec;
      spec.price_per_repetition = 2;
      spec.repetitions = 2;
      spec.on_hold_rate = 1.0;
      spec.acceptance_timeout = 0.6;
      spec.processing_rate = 5.0;
      EXPECT_TRUE(market.PostTask(spec).ok());
    }
    EXPECT_TRUE(market.RunToCompletion().ok());
    return TraceToCsv(market.trace());
  };

  const std::string csv = run_once();
  for (const char* kind : {"ABANDONED", "EXPIRED", "REPOSTED"}) {
    EXPECT_NE(csv.find(kind), std::string::npos) << kind;
  }
  const auto parsed = ParseTraceCsv(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(TraceToCsv(*parsed), csv);  // exact textual round trip
  // Same config + posting sequence => identical trace, fault events and all.
  EXPECT_EQ(run_once(), csv);
}

TEST(TraceIoTest, NewKindsParseAndRejectUnknown) {
  EXPECT_EQ(*TraceEventKindFromString("ABANDONED"), TraceEventKind::kAbandoned);
  EXPECT_EQ(*TraceEventKindFromString("EXPIRED"), TraceEventKind::kExpired);
  EXPECT_EQ(*TraceEventKindFromString("REPOSTED"), TraceEventKind::kReposted);
  EXPECT_FALSE(TraceEventKindFromString("NOPE").ok());
}

// Acceptance criterion (b): under a scripted mid-job outage the executor
// completes every repetition within budget, while the static path's latency
// degrades measurably against its own fault-free baseline.
TEST(FaultTolerantExecutorTest, OutageRecoveryWithinBudget) {
  const RepetitionAllocator allocator;
  const long kCeiling = 240;
  const int kTasks = 8, kReps = 3;

  const auto make_problem = [&](long budget) {
    TaskGroup g;
    g.name = "vote";
    g.num_tasks = kTasks;
    g.repetitions = kReps;
    g.processing_rate = 5.0;
    g.curve = std::make_shared<LinearCurve>(1.0, 1.0);
    TuningProblem problem;
    problem.groups = {g};
    problem.budget = budget;
    return problem;
  };
  const auto make_market = [&](uint64_t seed, bool outage) {
    MarketConfig config;
    config.worker_arrival_rate = 150.0;
    config.abandon_prob = 0.1;
    config.abandon_hold_rate = 2.0;
    if (outage) {
      const auto schedule =
          FaultSchedule::Create({{0.8, 2.8, 0.03, -1.0}});
      EXPECT_TRUE(schedule.ok());
      config.fault_schedule = std::make_shared<FaultSchedule>(*schedule);
    }
    config.seed = seed;
    config.record_trace = false;
    return config;
  };

  RunningStats static_clean, static_outage, ft_outage;
  for (int r = 0; r < 15; ++r) {
    const uint64_t seed = 900 + static_cast<uint64_t>(r);
    const std::vector<QuestionSpec> questions(kTasks);

    // Static path, fault-free baseline and outage run, full budget.
    const TuningProblem full = make_problem(kCeiling);
    const auto alloc = allocator.Allocate(full);
    ASSERT_TRUE(alloc.ok());
    for (const bool outage : {false, true}) {
      MarketSimulator market(make_market(seed, outage));
      const auto run = ExecuteJob(market, full, *alloc, questions);
      ASSERT_TRUE(run.ok());
      (outage ? static_outage : static_clean).Add(run->latency);
    }

    // Fault-tolerant path plans below the ceiling and escalates into it.
    MarketSimulator market(make_market(seed, true));
    FaultTolerantConfig config;
    config.review_interval = 0.2;
    config.straggler_quantile = 0.9;
    config.budget = kCeiling;
    config.abandonment = {0.1, 2.0};
    const FaultTolerantExecutor executor(&allocator, config);
    const auto report =
        executor.Run(market, make_problem(180), questions);
    ASSERT_TRUE(report.ok());
    // Every repetition of every task completed, inside the spend ceiling.
    ASSERT_EQ(report->answers.size(), static_cast<size_t>(kTasks));
    for (const std::vector<int>& answers : report->answers) {
      EXPECT_EQ(answers.size(), static_cast<size_t>(kReps));
    }
    EXPECT_LE(report->spent, kCeiling);
    EXPECT_GT(report->stragglers, 0);
    ft_outage.Add(report->latency);
  }
  // The outage measurably degrades the static path...
  EXPECT_GT(static_outage.Mean(), static_clean.Mean() + 0.8);
  // ...while escalation claws most of that degradation back.
  EXPECT_LT(ft_outage.Mean(), static_outage.Mean() + 0.25);
}

TEST(FaultTolerantExecutorTest, RejectsPlanAboveBudget) {
  const RepetitionAllocator allocator;
  TaskGroup g;
  g.num_tasks = 2;
  g.repetitions = 2;
  g.processing_rate = 4.0;
  g.curve = std::make_shared<LinearCurve>(1.0, 1.0);
  TuningProblem problem;
  problem.groups = {g};
  problem.budget = 40;

  MarketConfig market_config;
  market_config.worker_arrival_rate = 100.0;
  MarketSimulator market(market_config);
  FaultTolerantConfig config;
  config.budget = 20;  // below what the allocation will spend
  const FaultTolerantExecutor executor(&allocator, config);
  const std::vector<QuestionSpec> questions(2);
  EXPECT_EQ(executor.Run(market, problem, questions).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace htune
