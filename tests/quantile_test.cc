#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "rng/random.h"
#include "tuning/quantile.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Curve() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

TuningProblem SmallProblem(long budget) {
  TaskGroup a;
  a.name = "a";
  a.num_tasks = 4;
  a.repetitions = 2;
  a.processing_rate = 2.0;
  a.curve = Curve();
  TaskGroup b = a;
  b.name = "b";
  b.repetitions = 3;
  b.processing_rate = 1.0;
  TuningProblem problem;
  problem.groups = {a, b};
  problem.budget = budget;
  return problem;
}

Allocation UniformAlloc(const TuningProblem& problem,
                        const std::vector<int>& prices) {
  return UniformAllocation(problem, prices);
}

TEST(JobCompletionProbabilityTest, MonotoneAndBounded) {
  const TuningProblem problem = SmallProblem(200);
  const Allocation alloc = UniformAlloc(problem, {3, 3});
  EXPECT_EQ(JobCompletionProbability(problem, alloc, 0.0), 0.0);
  EXPECT_EQ(JobCompletionProbability(problem, alloc, -1.0), 0.0);
  double prev = 0.0;
  for (double t = 0.5; t <= 30.0; t += 0.5) {
    const double p = JobCompletionProbability(problem, alloc, t);
    EXPECT_GE(p, prev - 1e-9);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_GT(JobCompletionProbability(problem, alloc, 100.0), 0.999);
}

TEST(JobCompletionProbabilityTest, MatchesMonteCarlo) {
  const TuningProblem problem = SmallProblem(200);
  const Allocation alloc = UniformAlloc(problem, {4, 5});
  Random rng(3);
  for (const double t : {2.0, 4.0, 7.0}) {
    int done = 0;
    const int trials = 60000;
    for (int trial = 0; trial < trials; ++trial) {
      double worst = 0.0;
      for (const TaskGroup& g : problem.groups) {
        const double rate =
            g.curve->Rate(g.name == "a" ? 4.0 : 5.0);
        for (int task = 0; task < g.num_tasks; ++task) {
          const double latency = rng.Erlang(g.repetitions, rate) +
                                 rng.Erlang(g.repetitions,
                                            g.processing_rate);
          worst = std::max(worst, latency);
        }
      }
      if (worst <= t) ++done;
    }
    EXPECT_NEAR(JobCompletionProbability(problem, alloc, t),
                done / static_cast<double>(trials), 0.01)
        << "t=" << t;
  }
}

TEST(JobCompletionProbabilityTest, HigherPricesShiftMassEarlier) {
  const TuningProblem problem = SmallProblem(500);
  const Allocation cheap = UniformAlloc(problem, {1, 1});
  const Allocation rich = UniformAlloc(problem, {10, 10});
  for (const double t : {2.0, 5.0, 8.0}) {
    EXPECT_GT(JobCompletionProbability(problem, rich, t),
              JobCompletionProbability(problem, cheap, t));
  }
}

TEST(JobLatencyQuantileTest, InvertsTheCdf) {
  const TuningProblem problem = SmallProblem(200);
  const Allocation alloc = UniformAlloc(problem, {3, 4});
  for (const double q : {0.25, 0.5, 0.9, 0.99}) {
    const auto t = JobLatencyQuantile(problem, alloc, q);
    ASSERT_TRUE(t.ok());
    EXPECT_NEAR(JobCompletionProbability(problem, alloc, *t), q, 1e-6);
  }
  // Quantiles are increasing in q.
  EXPECT_LT(*JobLatencyQuantile(problem, alloc, 0.5),
            *JobLatencyQuantile(problem, alloc, 0.95));
}

TEST(JobLatencyQuantileTest, RejectsBadQ) {
  const TuningProblem problem = SmallProblem(200);
  const Allocation alloc = UniformAlloc(problem, {2, 2});
  EXPECT_FALSE(JobLatencyQuantile(problem, alloc, 0.0).ok());
  EXPECT_FALSE(JobLatencyQuantile(problem, alloc, 1.0).ok());
}

TEST(SolveQuantileDeadlineTest, PlanReachesTheConfidence) {
  const TuningProblem problem = SmallProblem(400);
  const auto plan = SolveQuantileDeadline(problem, 8.0, 0.9);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GE(plan->achieved, 0.9);
  EXPECT_LE(plan->cost, problem.budget);
  const Allocation alloc = UniformAlloc(problem, plan->prices);
  EXPECT_NEAR(JobCompletionProbability(problem, alloc, 8.0),
              plan->achieved, 1e-9);
}

TEST(SolveQuantileDeadlineTest, TighterConfidenceCostsMore) {
  const TuningProblem problem = SmallProblem(600);
  long prev_cost = 0;
  for (const double confidence : {0.5, 0.8, 0.95}) {
    const auto plan = SolveQuantileDeadline(problem, 9.0, confidence);
    ASSERT_TRUE(plan.ok()) << confidence << ": " << plan.status();
    EXPECT_GE(plan->cost, prev_cost) << confidence;
    prev_cost = plan->cost;
  }
}

TEST(SolveQuantileDeadlineTest, InfeasibleWhenProcessingCapsProbability) {
  // Deadline far below the processing time scale: even infinite payment
  // cannot make P(done by deadline) high.
  const TuningProblem problem = SmallProblem(2000);
  const auto plan = SolveQuantileDeadline(problem, 0.4, 0.95);
  EXPECT_EQ(plan.status().code(), StatusCode::kOutOfRange);
}

TEST(SolveQuantileDeadlineTest, Validation) {
  const TuningProblem problem = SmallProblem(200);
  EXPECT_FALSE(SolveQuantileDeadline(problem, -1.0, 0.9).ok());
  EXPECT_FALSE(SolveQuantileDeadline(problem, 5.0, 0.0).ok());
  EXPECT_FALSE(SolveQuantileDeadline(problem, 5.0, 1.0).ok());
  TuningProblem empty;
  EXPECT_FALSE(SolveQuantileDeadline(empty, 5.0, 0.9).ok());
}

TEST(SolveQuantileDeadlineTest, MatchesEnumerationOracle) {
  // Tiny instance: verify exact minimality against enumeration.
  TuningProblem problem = SmallProblem(60);
  const double deadline = 6.0;
  const double confidence = 0.7;
  const auto plan = SolveQuantileDeadline(problem, deadline, confidence);
  long oracle_cost = 1L << 60;
  for (int pa = 1; pa * 8 <= problem.budget; ++pa) {
    for (int pb = 1; pa * 8 + pb * 12 <= problem.budget; ++pb) {
      const Allocation alloc = UniformAlloc(problem, {pa, pb});
      if (JobCompletionProbability(problem, alloc, deadline) >= confidence) {
        oracle_cost = std::min<long>(oracle_cost, pa * 8 + pb * 12);
      }
    }
  }
  if (oracle_cost == (1L << 60)) {
    EXPECT_EQ(plan.status().code(), StatusCode::kOutOfRange);
  } else {
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->cost, oracle_cost);
  }
}

}  // namespace
}  // namespace htune
