#!/usr/bin/env python3
"""Unit tests for tools/journal_inspect.py's snapshot-body decoding.

Fabricates market-state snapshot blobs byte-for-byte in the
src/durability/snapshot.cc layout (v2 header and headerless v1) and a
framed journal around them, then checks the inspector fully decodes the
body: per-kind tallies for both pending calendar events
(MarketEvent::Kind) and trace events (TraceEventKind), open/completed
task counts, and graceful handling of unknown kinds and truncation.
"""

import os
import struct
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import journal_inspect  # noqa: E402


def u8(v):
    return struct.pack("<B", v)


def u32(v):
    return struct.pack("<I", v)


def u64(v):
    return struct.pack("<Q", v)


def i32(v):
    return struct.pack("<i", v)


def i64(v):
    return struct.pack("<q", v)


def f64(v):
    return struct.pack("<d", v)


def boolean(v):
    return u8(1 if v else 0)


def rng_state():
    return u64(1) + u64(2) + u64(3) + u64(4) + boolean(False) + f64(0.0)


def event(kind):
    return f64(1.5) + u64(7) + u64(11) + u8(kind) + u64(0)


def repetition():
    return (f64(0.1) + f64(0.2) + f64(0.3) + u64(5) + i32(30) + i32(1)
            + boolean(True))


def task_outcome(reps=1):
    return (u64(11) + f64(0.0) + f64(2.0) + u64(reps)
            + repetition() * reps + i32(0) + i32(0) + i32(0))


def task():
    empty_i32s = u64(0)
    empty_f64s = u64(0)
    return (u64(11) + i32(30) + i32(3) + f64(0.25)
            + empty_i32s + empty_f64s + i32(-1) + f64(1.0) + f64(60.0)
            + i32(2) + i32(4) + empty_i32s + empty_f64s + i32(-1)
            + task_outcome() + i32(1) + boolean(False) + f64(0.5)
            + u64(1) + i32(30) + f64(0.25))


def market_blob(v2=True, event_kinds=(0, 2), trace_kinds=(0, 1, 6)):
    body = (f64(12.5) + f64(13.0) + u64(100) + u64(42) + u64(900)
            + i64(1234) + rng_state()
            + u64(len(event_kinds)) + b"".join(event(k)
                                               for k in event_kinds)
            + u64(1) + task()
            + u64(1) + task_outcome()
            + u64(1) + u64(11)
            + u64(len(trace_kinds)))
    for kind in trace_kinds:
        body += f64(3.0) + u8(kind) + u64(5) + u64(11) + i32(0)
    if not v2:
        return body
    return (u64(journal_inspect.SNAPSHOT_MAGIC)
            + u32(journal_inspect.SNAPSHOT_VERSION) + body)


def frame(rtype, payload):
    framed = u32(len(payload)) + u8(rtype) + payload
    return framed + u32(journal_inspect.crc32c(framed))


def journal(records):
    data = journal_inspect.MAGIC + u32(journal_inspect.VERSION)
    return data + b"".join(frame(t, p) for t, p in records)


class DescribeSnapshotTest(unittest.TestCase):
    def test_v2_full_decode(self):
        text = journal_inspect.describe_snapshot(market_blob())
        self.assertIn("v2 now=12.500000", text)
        self.assertIn("tasks_created=42", text)
        self.assertIn("events_seen=900", text)
        self.assertIn("spent=1234", text)
        self.assertIn("open=1", text)
        self.assertIn("completed=1", text)
        self.assertIn("queue=[completion=1 expiry=1]", text)
        self.assertIn(
            "trace=[worker-arrival=1 task-accepted=1 reposted=1]", text)
        self.assertNotIn("trailing", text)

    def test_v1_full_decode(self):
        text = journal_inspect.describe_snapshot(market_blob(v2=False))
        self.assertIn("v1 now=12.500000", text)
        self.assertIn("queue=[completion=1 expiry=1]", text)

    def test_unknown_kind_is_labelled_not_fatal(self):
        text = journal_inspect.describe_snapshot(
            market_blob(event_kinds=(0, 9), trace_kinds=(250,)))
        self.assertIn("kind-9=1", text)
        self.assertIn("kind-250=1", text)

    def test_truncated_blob_is_malformed(self):
        text = journal_inspect.describe_snapshot(market_blob()[:-10])
        self.assertIn("malformed snapshot", text)

    def test_trailing_bytes_are_reported(self):
        text = journal_inspect.describe_snapshot(market_blob() + b"\x00")
        self.assertIn("<1 trailing bytes>", text)

    def test_kind_tables_cover_all_cpp_enumerators(self):
        # Mirrors the analyzer's schema check: the dicts must stay dense
        # from zero (both enums serialize as consecutive u8 values).
        self.assertEqual(sorted(journal_inspect.EVENT_KINDS), [0, 1, 2])
        self.assertEqual(sorted(journal_inspect.TRACE_EVENT_KINDS),
                         list(range(7)))


class DumpIntegrationTest(unittest.TestCase):
    def test_dump_renders_snapshot_record(self):
        market = market_blob()
        executor = b"\x01\x02\x03"
        snapshot_payload = (u64(len(market)) + market
                            + u64(len(executor)) + executor)
        data = journal([
            (1, i64(100000) + u64(4)),
            (7, snapshot_payload),
            (8, i64(0) + f64(2.25)),
        ])
        records, valid, torn = journal_inspect.scan(data)
        self.assertIsNone(torn)
        self.assertEqual([r[1] for r in records], [1, 7, 8])
        rendered = journal_inspect.describe(7, records[1][2])
        self.assertIn("queue=[completion=1 expiry=1]", rendered)
        self.assertIn("executor_blob=3B", rendered)


if __name__ == "__main__":
    unittest.main()
