#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/random.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/regression.h"

namespace htune {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.StdError(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats stats;
  stats.AddAll(values);
  EXPECT_EQ(stats.count(), values.size());
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), Variance(values), 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.Mean(), 3.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.Add(1e9 + (i % 2));  // values 1e9 and 1e9+1
  }
  // Unbiased sample variance of a 500/500 split of {1e9, 1e9+1}.
  EXPECT_NEAR(stats.Variance(), 250.0 / 999.0, 1e-6);
}

TEST(DescriptiveTest, MeanAndVariance) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(Variance({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 2.0);
}

TEST(QuantileTest, OrderStatisticsAndInterpolation) {
  const std::vector<double> values = {3.0, 1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0 / 3.0), 2.0);
}

TEST(QuantileDeathTest, RejectsBadInput) {
  EXPECT_DEATH(Quantile({}, 0.5), "HTUNE_CHECK");
  EXPECT_DEATH(Quantile({1.0}, 1.5), "HTUNE_CHECK");
}

TEST(EmpiricalCdfTest, StepFunction) {
  EmpiricalCdf ecdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(10.0), 1.0);
}

TEST(KolmogorovSmirnovTest, ZeroForPerfectFit) {
  // Sample placed at theoretical quantile midpoints of U(0,1).
  std::vector<double> sample;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    sample.push_back((i + 0.5) / n);
  }
  EmpiricalCdf ecdf(sample);
  const double d =
      KolmogorovSmirnovStatistic(ecdf, [](double x) { return x; });
  EXPECT_LT(d, 0.01);
}

TEST(KolmogorovSmirnovTest, DetectsWrongDistribution) {
  Random rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) {
    sample.push_back(rng.Exponential(1.0));
  }
  EmpiricalCdf ecdf(sample);
  // Against the true Exp(1) CDF the statistic is small...
  const double d_true = KolmogorovSmirnovStatistic(
      ecdf, [](double x) { return 1.0 - std::exp(-x); });
  EXPECT_LT(d_true, 0.04);
  // ...but against Exp(2) it is large.
  const double d_wrong = KolmogorovSmirnovStatistic(
      ecdf, [](double x) { return 1.0 - std::exp(-2.0 * x); });
  EXPECT_GT(d_wrong, 0.1);
}

TEST(RegressionTest, ExactLineRecovered) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x - 1.0);
  const auto fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 3.0, 1e-12);
  EXPECT_NEAR(fit->intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->residual_rms, 0.0, 1e-12);
  EXPECT_NEAR(fit->Predict(10.0), 29.0, 1e-12);
}

TEST(RegressionTest, NoisyLineApproximatelyRecovered) {
  Random rng(2);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.UniformRange(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(2.0 * x + 5.0 + rng.Normal(0.0, 0.5));
  }
  const auto fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 0.05);
  EXPECT_NEAR(fit->intercept, 5.0, 0.2);
  EXPECT_GT(fit->r_squared, 0.98);
}

TEST(RegressionTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitLinear({1.0}, {1.0}).ok());
  EXPECT_FALSE(FitLinear({1.0, 2.0}, {1.0}).ok());
  EXPECT_FALSE(FitLinear({2.0, 2.0}, {1.0, 3.0}).ok());
}

TEST(RegressionTest, ConstantYGivesZeroSlopeAndPerfectR2) {
  const auto fit = FitLinear({1.0, 2.0, 3.0}, {4.0, 4.0, 4.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(BootstrapTest, CoverageFrequencyNearNominal) {
  // A 90% CI should cover the true mean in roughly 90% of repetitions.
  Random rng(3);
  int covered = 0;
  const int repeats = 200;
  for (int r = 0; r < repeats; ++r) {
    std::vector<double> sample;
    for (int i = 0; i < 200; ++i) {
      sample.push_back(rng.Exponential(0.5));  // mean 2
    }
    const auto ci = BootstrapMeanCi(sample, 0.90, 500, rng);
    ASSERT_TRUE(ci.ok());
    EXPECT_TRUE(ci->Contains(ci->point_estimate));
    EXPECT_LT(ci->lower, ci->upper);
    if (ci->Contains(2.0)) ++covered;
  }
  // Percentile bootstrap under-covers slightly for skewed data; accept a
  // generous band around the nominal level.
  EXPECT_GE(covered, repeats * 80 / 100);
  EXPECT_LE(covered, repeats * 98 / 100);
}

TEST(BootstrapTest, NarrowerAtLowerConfidence) {
  Random rng(4);
  std::vector<double> sample;
  for (int i = 0; i < 400; ++i) {
    sample.push_back(rng.Normal(0.0, 1.0));
  }
  Random rng_a(5), rng_b(5);
  const auto wide = BootstrapMeanCi(sample, 0.99, 3000, rng_a);
  const auto narrow = BootstrapMeanCi(sample, 0.80, 3000, rng_b);
  ASSERT_TRUE(wide.ok());
  ASSERT_TRUE(narrow.ok());
  EXPECT_LT(narrow->upper - narrow->lower, wide->upper - wide->lower);
}

TEST(BootstrapTest, RejectsBadArguments) {
  Random rng(6);
  EXPECT_FALSE(BootstrapMeanCi({}, 0.95, 100, rng).ok());
  EXPECT_FALSE(BootstrapMeanCi({1.0}, 1.5, 100, rng).ok());
  EXPECT_FALSE(BootstrapMeanCi({1.0}, 0.95, 5, rng).ok());
}

TEST(HistogramTest, BucketsAndOutOfRangeCounters) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.5);    // bucket 0
  hist.Add(3.0);    // bucket 1
  hist.Add(-5.0);   // underflow, NOT clamped into bucket 0
  hist.Add(100.0);  // overflow, NOT clamped into bucket 4
  hist.Add(9.999);  // bucket 4
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(4), 1u);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.nan_count(), 0u);
  EXPECT_DOUBLE_EQ(hist.bucket_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bucket_lower(4), 8.0);
}

TEST(HistogramTest, RangeEdgesAndNan) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.0);   // lo is inclusive -> bucket 0
  hist.Add(10.0);  // hi is exclusive -> overflow
  hist.Add(std::nan(""));
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.nan_count(), 1u);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram hist(0.0, 2.0, 2);
  hist.Add(0.5);
  hist.Add(1.5);
  hist.Add(1.6);
  const std::string ascii = hist.ToAscii(10);
  EXPECT_NE(ascii.find("(1)"), std::string::npos);
  EXPECT_NE(ascii.find("(2)"), std::string::npos);
}

TEST(HistogramDeathTest, RejectsEmptyRange) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 3), "HTUNE_CHECK");
}

TEST(HistogramTest, AsciiShowsOutOfRangeTallies) {
  Histogram hist(0.0, 2.0, 2);
  hist.Add(0.5);
  hist.Add(-1.0);
  hist.Add(5.0);
  hist.Add(std::nan(""));
  const std::string ascii = hist.ToAscii(10);
  EXPECT_NE(ascii.find("< "), std::string::npos) << ascii;
  EXPECT_NE(ascii.find(">= "), std::string::npos) << ascii;
  EXPECT_NE(ascii.find("NaN"), std::string::npos) << ascii;
}

TEST(HistogramTest, AsciiOmitsZeroTallies) {
  Histogram hist(0.0, 2.0, 2);
  hist.Add(0.5);
  const std::string ascii = hist.ToAscii(10);
  EXPECT_EQ(ascii.find("NaN"), std::string::npos) << ascii;
  EXPECT_EQ(ascii.find(">= "), std::string::npos) << ascii;
}

TEST(RunningStatsTest, EmptyMinMaxAreZeroNotInfinite) {
  // An empty accumulator used to leak +/-inf sentinels through Min()/Max(),
  // which then poisoned JSON exports downstream.
  RunningStats stats;
  EXPECT_EQ(stats.Min(), 0.0);
  EXPECT_EQ(stats.Max(), 0.0);
  EXPECT_TRUE(std::isfinite(stats.Min()));
  EXPECT_TRUE(std::isfinite(stats.Max()));
}

TEST(QuantileDeathTest, RejectsNanSample) {
  EXPECT_DEATH(Quantile({1.0, std::nan(""), 3.0}, 0.5), "HTUNE_CHECK");
}

TEST(EmpiricalCdfDeathTest, RejectsNanSample) {
  EXPECT_DEATH(EmpiricalCdf({0.5, std::nan("")}), "HTUNE_CHECK");
}

}  // namespace
}  // namespace htune
