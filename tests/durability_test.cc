// Unit tests for the durability layer: CRC32C, the binary codec, journal
// framing and torn-tail recovery, the exactly-once budget ledger, the
// market snapshot codec, and MarketSimulator capture/restore determinism.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "durability/crc32c.h"
#include "durability/journal.h"
#include "durability/ledger.h"
#include "durability/recovery.h"
#include "durability/serialize.h"
#include "durability/snapshot.h"
#include "market/simulator.h"
#include "model/price_rate_curve.h"

namespace htune {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value (RFC 3720 / Castagnoli).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // iSCSI test vector: 32 zero bytes.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t head = Crc32c(data.substr(0, split));
    EXPECT_EQ(ExtendCrc32c(head, data.substr(split)), Crc32c(data));
  }
}

TEST(SerializeTest, RoundTripsEveryType) {
  Encoder encoder;
  encoder.PutU8(250);
  encoder.PutU32(0xDEADBEEFu);
  encoder.PutU64(0x0123456789ABCDEFull);
  encoder.PutI32(-42);
  encoder.PutI64(-1234567890123LL);
  encoder.PutBool(true);
  encoder.PutDouble(3.14159265358979);
  encoder.PutString("payload");
  encoder.PutI32Vector({1, -2, 3});
  encoder.PutDoubleVector({0.5, -0.25});

  Decoder decoder(encoder.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  bool b;
  double d;
  std::string s;
  std::vector<int> iv;
  std::vector<double> dv;
  ASSERT_TRUE(decoder.GetU8(&u8).ok());
  ASSERT_TRUE(decoder.GetU32(&u32).ok());
  ASSERT_TRUE(decoder.GetU64(&u64).ok());
  ASSERT_TRUE(decoder.GetI32(&i32).ok());
  ASSERT_TRUE(decoder.GetI64(&i64).ok());
  ASSERT_TRUE(decoder.GetBool(&b).ok());
  ASSERT_TRUE(decoder.GetDouble(&d).ok());
  ASSERT_TRUE(decoder.GetString(&s).ok());
  ASSERT_TRUE(decoder.GetI32Vector(&iv).ok());
  ASSERT_TRUE(decoder.GetDoubleVector(&dv).ok());
  EXPECT_TRUE(decoder.Done());
  EXPECT_TRUE(decoder.ExpectDone().ok());
  EXPECT_EQ(u8, 250);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_TRUE(b);
  EXPECT_DOUBLE_EQ(d, 3.14159265358979);
  EXPECT_EQ(s, "payload");
  EXPECT_EQ(iv, (std::vector<int>{1, -2, 3}));
  EXPECT_EQ(dv, (std::vector<double>{0.5, -0.25}));
}

TEST(SerializeTest, TruncatedInputFailsCleanly) {
  Encoder encoder;
  encoder.PutDouble(1.5);
  encoder.PutString("hello");
  const std::string bytes = encoder.bytes();
  // Every strict prefix must fail on some accessor, never crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    Decoder decoder(std::string_view(bytes).substr(0, len));
    double d;
    std::string s;
    const Status status =
        !decoder.GetDouble(&d).ok()
            ? InvalidArgumentError("truncated double")
            : decoder.GetString(&s);
    EXPECT_FALSE(status.ok()) << "prefix length " << len;
  }
}

TEST(SerializeTest, HostileLengthIsRejectedBeforeAllocation) {
  Encoder encoder;
  encoder.PutU64(~0ull);  // a string length claiming 2^64-1 bytes
  Decoder decoder(encoder.bytes());
  std::string s;
  EXPECT_FALSE(decoder.GetString(&s).ok());
  Decoder decoder2(encoder.bytes());
  std::vector<double> dv;
  EXPECT_FALSE(decoder2.GetDoubleVector(&dv).ok());
}

std::string JournalWith(const std::vector<std::pair<JournalRecordType,
                                                    std::string>>& records) {
  InMemoryJournalStorage storage;
  JournalWriter writer(&storage, 0);
  for (const auto& [type, payload] : records) {
    EXPECT_TRUE(writer.Append(type, payload).ok());
  }
  return storage.bytes();
}

TEST(JournalTest, EmptyIsFresh) {
  const auto contents = ScanJournal("");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_FALSE(contents->truncated_tail);
  EXPECT_EQ(contents->valid_bytes, 0u);
}

TEST(JournalTest, RoundTripsRecords) {
  const std::string bytes = JournalWith({
      {JournalRecordType::kRunStart, "alpha"},
      {JournalRecordType::kPayment, std::string("\x00\x01", 2)},
      {JournalRecordType::kRunEnd, ""},
  });
  const auto contents = ScanJournal(bytes);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0].type, JournalRecordType::kRunStart);
  EXPECT_EQ(contents->records[0].payload, "alpha");
  EXPECT_EQ(contents->records[1].payload, std::string("\x00\x01", 2));
  EXPECT_EQ(contents->records[2].type, JournalRecordType::kRunEnd);
  EXPECT_EQ(contents->records.back().end_offset, bytes.size());
  EXPECT_FALSE(contents->truncated_tail);
}

TEST(JournalTest, EveryTruncationRecoversTheValidPrefix) {
  const std::string bytes = JournalWith({
      {JournalRecordType::kRunStart, "alpha"},
      {JournalRecordType::kPost, "bravo-bravo"},
      {JournalRecordType::kRunEnd, "c"},
  });
  const auto full = ScanJournal(bytes);
  ASSERT_TRUE(full.ok());
  std::vector<uint64_t> boundaries = {8};  // header
  for (const JournalRecord& record : full->records) {
    boundaries.push_back(record.end_offset);
  }
  for (size_t len = 0; len <= bytes.size(); ++len) {
    const auto contents = ScanJournal(std::string_view(bytes).substr(0, len));
    ASSERT_TRUE(contents.ok()) << "truncated to " << len;
    // The scan keeps exactly the records whose frames fit entirely.
    size_t expect_records = 0;
    uint64_t expect_valid = len < 8 ? 0 : 8;
    for (size_t i = 1; i < boundaries.size(); ++i) {
      if (boundaries[i] <= len) {
        expect_records = i;
        expect_valid = boundaries[i];
      }
    }
    EXPECT_EQ(contents->records.size(), expect_records) << "len " << len;
    EXPECT_EQ(contents->valid_bytes, expect_valid) << "len " << len;
    EXPECT_EQ(contents->truncated_tail, len != expect_valid) << "len " << len;
  }
}

TEST(JournalTest, EveryBitFlipIsDetected) {
  const std::string bytes = JournalWith({
      {JournalRecordType::kRunStart, "seed"},
      {JournalRecordType::kPayment, "pay"},
  });
  const auto full = ScanJournal(bytes);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->records.size(), 2u);
  // Flip every bit of the second record's frame: the scan must either drop
  // that record (CRC/length/type detection) or report an error — it must
  // never return a record with altered bytes as valid.
  const uint64_t frame_start = full->records[0].end_offset;
  for (size_t byte = frame_start; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      const auto contents = ScanJournal(corrupt);
      ASSERT_TRUE(contents.ok());
      ASSERT_LE(contents->records.size(), 2u);
      if (contents->records.size() == 2) {
        // A surviving second record must be byte-identical to the original
        // (possible only if the flip landed past the frame—it cannot here).
        EXPECT_EQ(contents->records[1].payload, "pay")
            << "byte " << byte << " bit " << bit;
        ADD_FAILURE() << "bit flip inside the frame went undetected at byte "
                      << byte << " bit " << bit;
      } else {
        EXPECT_TRUE(contents->truncated_tail);
        EXPECT_EQ(contents->records.size(), 1u);
      }
    }
  }
}

TEST(JournalTest, BadMagicIsAnErrorNotATruncation) {
  std::string bytes = JournalWith({{JournalRecordType::kRunStart, "x"}});
  bytes[0] = 'X';
  EXPECT_FALSE(ScanJournal(bytes).ok());
}

TEST(JournalTest, OpenPhysicallyTruncatesTornTail) {
  InMemoryJournalStorage storage;
  JournalWriter writer(&storage, 0);
  ASSERT_TRUE(writer.Append(JournalRecordType::kRunStart, "alpha").ok());
  const size_t valid = storage.bytes().size();
  storage.bytes() += "torn-partial-frame";
  const auto contents = OpenJournal(storage);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->truncated_tail);
  EXPECT_EQ(storage.bytes().size(), valid);
  // Appending after recovery lands on a clean boundary.
  JournalWriter resumed(&storage, contents->valid_bytes);
  ASSERT_TRUE(resumed.Append(JournalRecordType::kRunEnd, "omega").ok());
  const auto reread = ScanJournal(storage.bytes());
  ASSERT_TRUE(reread.ok());
  ASSERT_EQ(reread->records.size(), 2u);
  EXPECT_EQ(reread->records[1].payload, "omega");
}

TEST(JournalTest, CrashInjectionTearsExactlyAtBudget) {
  const std::string one = EncodeJournalRecord(JournalRecordType::kPost, "pp");
  InMemoryJournalStorage inner;
  // Budget covers the header and half of the first record.
  const uint64_t budget = 8 + one.size() / 2;
  CrashInjectingStorage crash(&inner, budget);
  JournalWriter writer(&crash, 0);
  const Status status = writer.Append(JournalRecordType::kPost, "pp");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(crash.crashed());
  EXPECT_EQ(inner.bytes().size(), budget);  // torn prefix persisted
  EXPECT_FALSE(writer.Append(JournalRecordType::kPost, "pp").ok());
  // Recovery on the torn storage drops the partial frame.
  const auto contents = OpenJournal(inner);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_TRUE(contents->truncated_tail);
  EXPECT_EQ(inner.bytes().size(), 8u);
}

TEST(LedgerTest, ExactlyOnceSemantics) {
  BudgetLedger ledger;
  auto first = ledger.RecordPayment(7, 0, 3);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  auto duplicate = ledger.RecordPayment(7, 0, 3);
  ASSERT_TRUE(duplicate.ok());
  EXPECT_FALSE(*duplicate);  // idempotent re-record
  EXPECT_FALSE(ledger.RecordPayment(7, 0, 4).ok());  // conflicting price
  EXPECT_FALSE(ledger.RecordPayment(7, 2, 3).ok());  // slot gap
  ASSERT_TRUE(ledger.RecordPayment(7, 1, 5).ok());
  EXPECT_EQ(ledger.PaymentsFor(7), 2);
  EXPECT_EQ(ledger.PaymentsFor(8), 0);
  EXPECT_EQ(ledger.TotalPaid(), 8);
  EXPECT_EQ(ledger.Entries(), 2u);
}

TEST(LedgerTest, EncodeDecodeRoundTrip) {
  BudgetLedger ledger;
  ASSERT_TRUE(ledger.RecordPayment(1, 0, 2).ok());
  ASSERT_TRUE(ledger.RecordPayment(1, 1, 4).ok());
  ASSERT_TRUE(ledger.RecordPayment(9, 0, 1).ok());
  const std::string bytes = ledger.Encode();
  const auto decoded = BudgetLedger::Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->TotalPaid(), 7);
  EXPECT_EQ(decoded->PaymentsFor(1), 2);
  EXPECT_EQ(decoded->PaymentsFor(9), 1);
  EXPECT_EQ(decoded->Encode(), bytes);
  // Corrupted ledger bytes fail cleanly.
  for (size_t len = 0; len < bytes.size(); ++len) {
    BudgetLedger::Decode(std::string_view(bytes).substr(0, len)).ok();
  }
}

MarketConfig AbandonmentConfig() {
  MarketConfig config;
  config.worker_arrival_rate = 30.0;
  config.worker_error_prob = 0.2;
  config.abandon_prob = 0.25;
  config.abandon_hold_rate = 4.0;
  config.seed = 77;
  return config;
}

void PostSomeTasks(MarketSimulator& market, int count) {
  for (int i = 0; i < count; ++i) {
    TaskSpec spec;
    spec.price_per_repetition = 2;
    spec.repetitions = 3;
    spec.on_hold_rate = 3.0;
    spec.processing_rate = 2.0;
    spec.acceptance_timeout = 1.5;
    spec.num_options = 4;
    ASSERT_TRUE(market.PostTask(spec).ok());
  }
}

TEST(SnapshotTest, MarketStateCodecRoundTripsBitwise) {
  MarketSimulator market(AbandonmentConfig());
  PostSomeTasks(market, 6);
  market.RunUntil(0.8);  // capture mid-run, with events in flight
  const auto state = market.CaptureState({});
  ASSERT_TRUE(state.ok());
  const std::string bytes = EncodeMarketState(*state);
  const auto decoded = DecodeMarketState(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(EncodeMarketState(*decoded), bytes);
  // Hostile inputs: every truncation fails cleanly.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    EXPECT_FALSE(DecodeMarketState(std::string_view(bytes).substr(0, len))
                     .ok());
  }
}

TEST(SnapshotTest, V2BlobCarriesMagicAndRejectsUnknownVersions) {
  MarketSimulator market(AbandonmentConfig());
  PostSomeTasks(market, 6);
  market.RunUntil(0.8);
  const auto state = market.CaptureState({});
  ASSERT_TRUE(state.ok());
  const std::string bytes = EncodeMarketState(*state);
  // The v2 header is a NaN-patterned magic u64 — a value the v1 format
  // (which opened with a finite clock double) can never begin with.
  ASSERT_GE(bytes.size(), 12u);
  Decoder decoder(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  ASSERT_TRUE(decoder.GetU64(&magic).ok());
  ASSERT_TRUE(decoder.GetU32(&version).ok());
  EXPECT_EQ(magic, 0xFFF7485453563200ULL);
  EXPECT_EQ(version, 2u);
  // A future version must be rejected, not misparsed.
  Encoder forged;
  forged.PutU64(magic);
  forged.PutU32(3);
  const auto decoded = DecodeMarketState(std::move(forged).Release());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("unsupported snapshot version"),
            std::string::npos);
}

TEST(SnapshotTest, LegacyV1BlobDecodesAndContinuesBitwise) {
  // A pre-rewrite (v1) snapshot blob — the raw body with no magic/version
  // header, events in whatever order the old binary heap held them — must
  // decode transparently and restore to the same run as the v2 blob.
  MarketSimulator original(AbandonmentConfig());
  PostSomeTasks(original, 6);
  original.RunUntil(0.8);
  const auto state = original.CaptureState({});
  ASSERT_TRUE(state.ok());

  // Scramble the canonical event order: v1 journals stored raw heap order,
  // so the decoder must accept any permutation.
  MarketState scrambled = *state;
  if (scrambled.events.size() > 1) {
    std::reverse(scrambled.events.begin(), scrambled.events.end());
  }
  const std::string v1_bytes = EncodeMarketStateLegacyV1(scrambled);
  const auto decoded = DecodeMarketState(v1_bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  MarketSimulator from_v1(AbandonmentConfig());
  ASSERT_TRUE(from_v1.RestoreState(*decoded, {}).ok());
  ASSERT_TRUE(original.RunToCompletion().ok());
  ASSERT_TRUE(from_v1.RunToCompletion().ok());
  EXPECT_EQ(original.TotalSpent(), from_v1.TotalSpent());
  EXPECT_EQ(original.now(), from_v1.now());
  EXPECT_EQ(original.workers_arrived(), from_v1.workers_arrived());
  ASSERT_EQ(original.trace().size(), from_v1.trace().size());
  for (size_t i = 0; i < original.trace().size(); ++i) {
    EXPECT_EQ(original.trace()[i].time, from_v1.trace()[i].time)
        << "event " << i;
    EXPECT_EQ(original.trace()[i].kind, from_v1.trace()[i].kind)
        << "event " << i;
  }
}

TEST(SnapshotTest, RestoredMarketContinuesBitwiseIdentically) {
  MarketSimulator original(AbandonmentConfig());
  PostSomeTasks(original, 6);
  original.RunUntil(0.8);
  const auto state = original.CaptureState({});
  ASSERT_TRUE(state.ok());

  MarketSimulator restored(AbandonmentConfig());
  ASSERT_TRUE(restored.RestoreState(*state, {}).ok());

  ASSERT_TRUE(original.RunToCompletion().ok());
  ASSERT_TRUE(restored.RunToCompletion().ok());
  EXPECT_EQ(original.TotalSpent(), restored.TotalSpent());
  EXPECT_EQ(original.now(), restored.now());
  EXPECT_EQ(original.workers_arrived(), restored.workers_arrived());
  const auto& trace_a = original.trace();
  const auto& trace_b = restored.trace();
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i].time, trace_b[i].time) << "event " << i;
    EXPECT_EQ(trace_a[i].kind, trace_b[i].kind) << "event " << i;
    EXPECT_EQ(trace_a[i].worker, trace_b[i].worker) << "event " << i;
    EXPECT_EQ(trace_a[i].task, trace_b[i].task) << "event " << i;
    EXPECT_EQ(trace_a[i].repetition, trace_b[i].repetition) << "event " << i;
  }
}

TEST(SnapshotTest, CaptureRejectsUnknownCurves) {
  MarketConfig config;
  config.seed = 3;
  MarketSimulator market(config);
  TaskSpec spec;
  spec.price_per_repetition = 1;
  spec.repetitions = 1;
  spec.on_hold_rate = 2.0;
  spec.true_curve = std::make_shared<LinearCurve>(1.0, 1.0);
  ASSERT_TRUE(market.PostTask(spec).ok());
  EXPECT_FALSE(market.CaptureState({}).ok());  // curve not in the table
  EXPECT_TRUE(market.CaptureState({spec.true_curve}).ok());
}

TEST(RecoveryTest, SnapshotPayloadRoundTrip) {
  InMemoryJournalStorage storage;
  DurabilityConfig config;
  config.storage = &storage;
  auto context = DurableContext::Open(config);
  ASSERT_TRUE(context.ok());
  EXPECT_FALSE(context->has_snapshot());
  EXPECT_FALSE(context->replaying());
  ASSERT_TRUE(context->Emit(JournalRecordType::kRunStart, "rs").ok());
  ASSERT_TRUE(context->EmitSnapshot("market-blob", "executor-blob").ok());
  ASSERT_TRUE(context->Emit(JournalRecordType::kPayment, "pay0").ok());

  auto reopened = DurableContext::Open(config);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened->has_snapshot());
  EXPECT_EQ(reopened->market_snapshot(), "market-blob");
  EXPECT_EQ(reopened->executor_snapshot(), "executor-blob");
  // One record after the snapshot: replay must verify it bitwise.
  EXPECT_TRUE(reopened->replaying());
  EXPECT_FALSE(
      reopened->Emit(JournalRecordType::kPayment, "different").ok());
  auto reopened2 = DurableContext::Open(config);
  ASSERT_TRUE(reopened2.ok());
  EXPECT_TRUE(
      reopened2->Emit(JournalRecordType::kPayment, "pay0").ok());
  EXPECT_FALSE(reopened2->replaying());  // tail exhausted: append mode
  EXPECT_TRUE(reopened2->Emit(JournalRecordType::kRunEnd, "done").ok());
}

}  // namespace
}  // namespace htune
