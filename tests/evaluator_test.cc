#include <memory>

#include <gtest/gtest.h>

#include "model/order_statistics.h"
#include "rng/random.h"
#include "tuning/evaluator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Identity() {
  // Rate(p) = p, so prices map straight to rates in expectations.
  return std::make_shared<LinearCurve>(1.0, 0.001);
}

TuningProblem OneGroupProblem(int tasks, int reps, double processing,
                              long budget) {
  TaskGroup g;
  g.name = "g";
  g.num_tasks = tasks;
  g.repetitions = reps;
  g.processing_rate = processing;
  g.curve = Identity();
  TuningProblem problem;
  problem.groups.push_back(g);
  problem.budget = budget;
  return problem;
}

TEST(EvaluatorTest, UniformGroupMatchesErlangOrderStatistic) {
  const TuningProblem problem = OneGroupProblem(8, 3, 2.0, 1000);
  Allocation alloc;
  alloc.groups.push_back(UniformGroupAllocation(8, 3, 4));
  const double expected = ExpectedMaxErlang(8, 3, 4.001);
  EXPECT_NEAR(ExpectedPhase1GroupLatency(problem.groups[0], alloc.groups[0]),
              expected, 1e-6);
}

TEST(EvaluatorTest, MixedPricesUseHypoexponential) {
  const TuningProblem problem = OneGroupProblem(1, 2, 2.0, 1000);
  Allocation alloc;
  alloc.groups.push_back(UniformGroupAllocation(1, 2, 2));
  alloc.groups[0].prices[0][1] = 6;
  // Sum of Exp(2.001) + Exp(6.001): mean is the sum of the means.
  const double latency =
      ExpectedPhase1GroupLatency(problem.groups[0], alloc.groups[0]);
  EXPECT_NEAR(latency, 1.0 / 2.001 + 1.0 / 6.001, 1e-6);
}

TEST(EvaluatorTest, GroupSumIsUpperBoundOnTrueMax) {
  TuningProblem problem = OneGroupProblem(5, 2, 2.0, 1000);
  TaskGroup second = problem.groups[0];
  second.repetitions = 4;
  problem.groups.push_back(second);

  Allocation alloc;
  alloc.groups.push_back(UniformGroupAllocation(5, 2, 3));
  alloc.groups.push_back(UniformGroupAllocation(5, 4, 2));

  const double group_sum = Phase1GroupSum(problem, alloc);
  const double true_max = ExpectedPhase1Latency(problem, alloc);
  EXPECT_GE(group_sum, true_max);
  // And the true max dominates each individual group's expectation.
  for (double g : ExpectedPhase1GroupLatencies(problem, alloc)) {
    EXPECT_LE(g, true_max + 1e-9);
  }
}

TEST(EvaluatorTest, AnalyticPhase1MatchesMonteCarlo) {
  TuningProblem problem = OneGroupProblem(10, 2, 2.0, 1000);
  Allocation alloc;
  alloc.groups.push_back(UniformGroupAllocation(10, 2, 3));
  const double analytic = ExpectedPhase1Latency(problem, alloc);
  Random rng(1);
  const double mc = MonteCarloPhase1Latency(problem, alloc, 120000, rng);
  EXPECT_NEAR(analytic, mc, 0.02);
}

TEST(EvaluatorTest, OverallExceedsPhase1) {
  TuningProblem problem = OneGroupProblem(10, 2, 1.0, 1000);
  Allocation alloc;
  alloc.groups.push_back(UniformGroupAllocation(10, 2, 3));
  Random rng(2);
  const double overall = MonteCarloOverallLatency(problem, alloc, 40000, rng);
  const double phase1 = ExpectedPhase1Latency(problem, alloc);
  EXPECT_GT(overall, phase1);
}

TEST(EvaluatorTest, MostDifficultObjectivePicksWorstGroup) {
  // Group 0: fast processing; group 1: slow processing and more reps.
  TuningProblem problem = OneGroupProblem(4, 1, 10.0, 1000);
  TaskGroup hard = problem.groups[0];
  hard.repetitions = 5;
  hard.processing_rate = 0.5;  // phase 2 mean = 10
  problem.groups.push_back(hard);

  Allocation alloc;
  alloc.groups.push_back(UniformGroupAllocation(4, 1, 5));
  alloc.groups.push_back(UniformGroupAllocation(4, 5, 5));

  const auto phase1 = ExpectedPhase1GroupLatencies(problem, alloc);
  const double expected = phase1[1] + 5.0 / 0.5;
  EXPECT_NEAR(MostDifficultObjective(problem, alloc), expected, 1e-9);
}

TEST(EvaluatorTest, HigherPricesReducePhase1) {
  const TuningProblem problem = OneGroupProblem(20, 3, 2.0, 100000);
  Allocation cheap, rich;
  cheap.groups.push_back(UniformGroupAllocation(20, 3, 1));
  rich.groups.push_back(UniformGroupAllocation(20, 3, 10));
  EXPECT_GT(ExpectedPhase1Latency(problem, cheap),
            ExpectedPhase1Latency(problem, rich));
}

TEST(EvaluatorTest, MonteCarloIsDeterministicGivenSeed) {
  const TuningProblem problem = OneGroupProblem(5, 2, 2.0, 1000);
  Allocation alloc;
  alloc.groups.push_back(UniformGroupAllocation(5, 2, 3));
  Random rng_a(7), rng_b(7);
  EXPECT_DOUBLE_EQ(MonteCarloPhase1Latency(problem, alloc, 1000, rng_a),
                   MonteCarloPhase1Latency(problem, alloc, 1000, rng_b));
}

}  // namespace
}  // namespace htune
