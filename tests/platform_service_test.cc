// Fleet-level tests of the shared-market platform: gang execution through
// FleetSupervisor::RunAllShared, durable exactly-once kRunEnd artifacts,
// whole-fleet kill-and-resume bitwise recovery, and the wire codec of the
// serving protocol.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "durability/journal.h"
#include "durability/manifest.h"
#include "durability/serialize.h"
#include "fleet/supervisor.h"
#include "platform/service.h"
#include "platform/session.h"
#include "platform/wire.h"
#include "resilience/fault_injector.h"

namespace htune {
namespace {

std::string JobText(int tasks, int reps, long budget, uint64_t seed) {
  return "budget = " + std::to_string(budget) +
         "\nseed = " + std::to_string(seed) +
         "\n\n[group]\nname = g\ntasks = " + std::to_string(tasks) +
         "\nrepetitions = " + std::to_string(reps) +
         "\nprocessing_rate = 2.0\ncurve = linear 1.0 0.0\n";
}

FleetJobSpec MakeJob(const std::string& name, int tasks, int reps,
                     long budget, uint64_t seed) {
  FleetJobSpec job;
  job.name = name;
  job.spec_text = JobText(tasks, reps, budget, seed);
  return job;
}

SharedServiceConfig ServiceConfig() {
  SharedServiceConfig config;
  config.market.present = true;
  config.market.arrival_rate = 50.0;
  config.market.worker_error_prob = 0.0;
  config.market.curve = "linear 1.0 0.0";  // rate = price
  config.market.seed = 3;
  config.market.review_interval = 0.25;
  config.market.snapshot_interval = 1;
  return config;
}

StatusOr<JournalContents> JobJournal(InMemoryFleetStorage& provider,
                                     const std::string& path) {
  InMemoryJournalStorage* storage = provider.Find(path);
  if (storage == nullptr) {
    return NotFoundError("no storage at " + path);
  }
  return ScanJournal(storage->bytes());
}

Status DecodeRunEnd(std::string_view payload, std::string* report_bytes,
                    std::string* trace_bytes) {
  Decoder d(payload);
  uint32_t version = 0;
  HTUNE_RETURN_IF_ERROR(d.GetU32(&version));
  if (version != 1) {
    return InvalidArgumentError("unexpected kRunEnd version");
  }
  HTUNE_RETURN_IF_ERROR(d.GetString(report_bytes));
  HTUNE_RETURN_IF_ERROR(d.GetString(trace_bytes));
  return d.ExpectDone();
}

TEST(SharedServiceTest, GangCompletesWithExactlyOnceRunEnds) {
  InMemoryFleetStorage provider;
  FleetSupervisor fleet(&provider, FleetConfig{});
  ASSERT_TRUE(fleet.Open().ok());
  std::vector<uint64_t> ids;
  for (int j = 0; j < 3; ++j) {
    const auto id = fleet.Submit(
        MakeJob("job" + std::to_string(j), 10, 2, 200,
                /*seed=*/100 + static_cast<uint64_t>(j)));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  SharedMarketService service(&provider, ServiceConfig());
  const auto stats = fleet.RunAllShared(&service);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->dispatched, 3);
  EXPECT_EQ(stats->completed, 3);
  EXPECT_EQ(stats->quarantined, 0);
  EXPECT_EQ(service.Counts().gangs, 1u);
  EXPECT_EQ(service.Counts().jobs_completed, 3u);

  const auto entries = fleet.jobs();
  for (const uint64_t id : ids) {
    ASSERT_TRUE(entries.count(id));
    EXPECT_EQ(entries.at(id).state, FleetJobState::kDone);

    const auto journal = JobJournal(provider, FleetJobJournalPath(id));
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_GE(journal->records.size(), 2u);
    EXPECT_EQ(journal->records.front().type, JournalRecordType::kRunStart);
    int run_ends = 0;
    for (const JournalRecord& record : journal->records) {
      if (record.type == JournalRecordType::kRunEnd) ++run_ends;
    }
    EXPECT_EQ(run_ends, 1);
    EXPECT_EQ(journal->records.back().type, JournalRecordType::kRunEnd);

    // The journaled artifacts are the in-memory results, bitwise.
    std::string report_bytes;
    std::string trace_bytes;
    ASSERT_TRUE(DecodeRunEnd(journal->records.back().payload, &report_bytes,
                             &trace_bytes)
                    .ok());
    ASSERT_TRUE(fleet.results().count(id));
    EXPECT_EQ(report_bytes, fleet.results().at(id).report_bytes);
    EXPECT_EQ(trace_bytes, fleet.results().at(id).trace_bytes);

    SessionReport report;
    ASSERT_TRUE(DecodeSessionReport(report_bytes, &report).ok());
    EXPECT_EQ(report.job_id, id);
    EXPECT_EQ(report.tasks, 10u);
    EXPECT_EQ(report.repetitions, 20u);
    EXPECT_GT(report.spent, 0);
    EXPECT_GT(report.mean_processing_latency, 0.0);
  }

  // The service journal holds one generation and its snapshot cadence.
  const auto shared = JobJournal(provider, kSharedServiceJournalPath);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  ASSERT_FALSE(shared->records.empty());
  EXPECT_EQ(shared->records.front().type, JournalRecordType::kRunStart);
  int snapshots = 0;
  for (const JournalRecord& record : shared->records) {
    if (record.type == JournalRecordType::kSnapshot) ++snapshots;
  }
  EXPECT_GE(snapshots, 1);
  EXPECT_EQ(service.Counts().snapshots, static_cast<uint64_t>(snapshots));
}

TEST(SharedServiceTest, CompetitionInflatesOnHoldLatency) {
  // One job alone, then the same job against an identical twin. Posted
  // weight exceeds the arrival rate in both settings, so splitting one
  // worker stream two ways must roughly double the time a repetition
  // waits on hold.
  const auto run_fleet =
      [](int num_jobs) -> std::map<uint64_t, SessionReport> {
    InMemoryFleetStorage provider;
    FleetSupervisor fleet(&provider, FleetConfig{});
    EXPECT_TRUE(fleet.Open().ok());
    for (int j = 0; j < num_jobs; ++j) {
      EXPECT_TRUE(fleet
                      .Submit(MakeJob("job" + std::to_string(j), 20, 3, 300,
                                      /*seed=*/50 + static_cast<uint64_t>(j)))
                      .ok());
    }
    SharedMarketService service(&provider, ServiceConfig());
    const auto stats = fleet.RunAllShared(&service);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    std::map<uint64_t, SessionReport> reports;
    for (const auto& [id, result] : fleet.results()) {
      SessionReport report;
      EXPECT_TRUE(DecodeSessionReport(result.report_bytes, &report).ok());
      reports[id] = report;
    }
    return reports;
  };

  const auto solo = run_fleet(1);
  const auto pair = run_fleet(2);
  ASSERT_EQ(solo.size(), 1u);
  ASSERT_EQ(pair.size(), 2u);
  const double solo_wait = solo.at(1).mean_on_hold_latency;
  ASSERT_GT(solo_wait, 0.0);
  for (const auto& [id, report] : pair) {
    EXPECT_GT(report.mean_on_hold_latency, 1.4 * solo_wait)
        << "job " << id << " did not feel the competition";
    EXPECT_LT(report.mean_on_hold_latency, 3.0 * solo_wait)
        << "job " << id << " slowed more than the split explains";
  }
}

TEST(SharedServiceTest, LaneCountNeverChangesSharedOutcomes) {
  // The gang runs inside one simulation whatever max_running says; the
  // durable artifacts must be bitwise identical across lane counts.
  const auto run_with_lanes =
      [](int lanes) -> std::map<std::string, std::string> {
    InMemoryFleetStorage provider;
    FleetConfig config;
    config.max_running = lanes;
    FleetSupervisor fleet(&provider, config);
    EXPECT_TRUE(fleet.Open().ok());
    std::vector<uint64_t> ids;
    for (int j = 0; j < 4; ++j) {
      const auto id =
          fleet.Submit(MakeJob("job" + std::to_string(j), 8, 2, 160,
                               /*seed=*/200 + static_cast<uint64_t>(j)));
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
    SharedMarketService service(&provider, ServiceConfig());
    const auto stats = fleet.RunAllShared(&service);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    std::map<std::string, std::string> bytes;
    for (const uint64_t id : ids) {
      InMemoryJournalStorage* storage =
          provider.Find(FleetJobJournalPath(id));
      EXPECT_NE(storage, nullptr);
      bytes[FleetJobJournalPath(id)] = storage->bytes();
    }
    return bytes;
  };

  const auto one = run_with_lanes(1);
  const auto four = run_with_lanes(4);
  const int hardware =
      static_cast<int>(std::thread::hardware_concurrency());
  const auto many = run_with_lanes(hardware > 0 ? hardware : 8);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, many);
}

/// Wraps every storage a fleet opens — manifest, job journals, and the
/// shared-service journal — with one FleetKillSwitch, so the injected
/// whole-process kill lands at a deterministic total write volume across
/// the entire serving stack.
class KillEverythingProvider : public FleetStorageProvider {
 public:
  KillEverythingProvider(FleetStorageProvider* inner, FleetKillSwitch* kill)
      : inner_(inner), kill_(kill) {}

  StatusOr<JournalStorage*> Storage(const std::string& path) override {
    const auto it = wrapped_.find(path);
    if (it != wrapped_.end()) {
      return it->second.get();
    }
    HTUNE_ASSIGN_OR_RETURN(JournalStorage * raw, inner_->Storage(path));
    auto wrapper = kill_->WrapStorage(raw);
    JournalStorage* result = wrapper.get();
    wrapped_[path] = std::move(wrapper);
    return result;
  }

  StatusOr<std::vector<std::string>> ListJournals() override {
    return inner_->ListJournals();
  }

 private:
  FleetStorageProvider* inner_;
  FleetKillSwitch* kill_;
  std::map<std::string, std::unique_ptr<FleetKillStorage>> wrapped_;
};

TEST(SharedServiceTest, WholeFleetKillAndResumeRecoversEveryJobBitwise) {
  const auto submit_all = [](FleetSupervisor& fleet) {
    for (int j = 0; j < 4; ++j) {
      ASSERT_TRUE(fleet
                      .Submit(MakeJob("job" + std::to_string(j), 15, 3, 225,
                                      /*seed=*/300 + static_cast<uint64_t>(j)))
                      .ok());
    }
  };

  // Uninterrupted baseline.
  InMemoryFleetStorage baseline_provider;
  std::map<uint64_t, FleetJobResult> baseline_results;
  uint64_t total_bytes = 0;
  {
    FleetSupervisor fleet(&baseline_provider, FleetConfig{});
    ASSERT_TRUE(fleet.Open().ok());
    submit_all(fleet);
    SharedMarketService service(&baseline_provider, ServiceConfig());
    const auto stats = fleet.RunAllShared(&service);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_EQ(stats->completed, 4);
    baseline_results = fleet.results();
    std::vector<std::string> paths{FleetManifestFileName(),
                                   kSharedServiceJournalPath};
    for (uint64_t id = 1; id <= 4; ++id) {
      paths.push_back(FleetJobJournalPath(id));
    }
    for (const std::string& path : paths) {
      ASSERT_NE(baseline_provider.Find(path), nullptr) << path;
      total_bytes += baseline_provider.Find(path)->bytes().size();
    }
  }

  // The same fleet, killed at ~60% of the baseline write volume — inside
  // the competing simulation, after the generation opened.
  InMemoryFleetStorage provider;
  FleetKillSwitch kill(total_bytes * 6 / 10);
  {
    KillEverythingProvider chaos(&provider, &kill);
    FleetSupervisor fleet(&chaos, FleetConfig{});
    ASSERT_TRUE(fleet.Open().ok());
    submit_all(fleet);
    SharedMarketService service(&chaos, ServiceConfig());
    const auto stats = fleet.RunAllShared(&service);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(kill.killed());
  }

  // Recovery: a fresh supervisor over the raw storages resumes every job
  // from the service snapshot to the bitwise-identical outcome.
  {
    FleetSupervisor fleet(&provider, FleetConfig{});
    ASSERT_TRUE(fleet.Recover().ok());
    EXPECT_TRUE(fleet.orphans().empty());
    SharedMarketService service(&provider, ServiceConfig());
    const auto stats = fleet.RunAllShared(&service);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(service.Counts().resumes, 1u);
    const auto entries = fleet.jobs();
    for (uint64_t id = 1; id <= 4; ++id) {
      ASSERT_TRUE(entries.count(id));
      EXPECT_EQ(entries.at(id).state, FleetJobState::kDone)
          << "job " << id << ": " << entries.at(id).detail;
      ASSERT_TRUE(fleet.results().count(id));
      ASSERT_TRUE(baseline_results.count(id));
      EXPECT_EQ(fleet.results().at(id).report_bytes,
                baseline_results.at(id).report_bytes)
          << "job " << id << " report diverged across kill+resume";
      EXPECT_EQ(fleet.results().at(id).trace_bytes,
                baseline_results.at(id).trace_bytes)
          << "job " << id << " trace diverged across kill+resume";
      // The durable artifact itself: byte-identical journals.
      EXPECT_EQ(provider.Find(FleetJobJournalPath(id))->bytes(),
                baseline_provider.Find(FleetJobJournalPath(id))->bytes())
          << "job " << id << " journal diverged across kill+resume";
    }
  }
}

TEST(SharedServiceTest, ReplayVerifiesJournaledRunEndBitwise) {
  // Driving the service directly (no supervisor) lets a finished gang be
  // re-run: the second pass must reproduce each journaled kRunEnd bitwise
  // without appending a duplicate, and a divergent replay (different
  // market seed) must be caught.
  InMemoryFleetStorage provider;
  const auto make_runs = [&]() {
    std::vector<SharedJobDriver::JobRun> runs;
    for (uint64_t id = 1; id <= 2; ++id) {
      SharedJobDriver::JobRun run;
      run.job_id = id;
      run.spec = MakeJob("job" + std::to_string(id), 6, 2, 120,
                         /*seed=*/400 + id);
      auto storage = provider.Storage(FleetJobJournalPath(id));
      EXPECT_TRUE(storage.ok());
      run.storage = *storage;
      runs.push_back(std::move(run));
    }
    return runs;
  };
  SharedServiceConfig config = ServiceConfig();
  config.market.snapshot_interval = 1000000;  // keep the journal end-free

  SharedMarketService first(&provider, config);
  const auto outcomes1 = first.RunJobs(make_runs());
  ASSERT_TRUE(outcomes1.ok()) << outcomes1.status().ToString();
  std::map<uint64_t, std::string> journal_bytes;
  for (const auto& outcome : *outcomes1) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    journal_bytes[outcome.job_id] =
        provider.Find(FleetJobJournalPath(outcome.job_id))->bytes();
  }

  SharedMarketService second(&provider, config);
  const auto outcomes2 = second.RunJobs(make_runs());
  ASSERT_TRUE(outcomes2.ok()) << outcomes2.status().ToString();
  for (const auto& outcome : *outcomes2) {
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    // Exactly-once: the verified replay appended nothing.
    EXPECT_EQ(provider.Find(FleetJobJournalPath(outcome.job_id))->bytes(),
              journal_bytes.at(outcome.job_id));
  }

  SharedServiceConfig divergent = config;
  divergent.market.seed = config.market.seed + 1;
  SharedMarketService third(&provider, divergent);
  const auto outcomes3 = third.RunJobs(make_runs());
  ASSERT_TRUE(outcomes3.ok()) << outcomes3.status().ToString();
  for (const auto& outcome : *outcomes3) {
    EXPECT_EQ(outcome.status.code(), StatusCode::kInternal);
    EXPECT_EQ(outcome.detail, "shared replay");
    EXPECT_EQ(provider.Find(FleetJobJournalPath(outcome.job_id))->bytes(),
              journal_bytes.at(outcome.job_id));
  }
}

TEST(WireTest, RoundTripsEscapedValues) {
  const WireFields fields{{"cmd", "submit"},
                          {"spec_text", "budget = 5\n[group]\ttasks=1"},
                          {"quote", "say \"hi\" \\ done"},
                          {"count", "42"}};
  const std::string line = SerializeWireObject(fields);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto parsed = ParseWireObject(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, fields);
}

TEST(WireTest, ParsesScalarsAndUnicodeEscapes) {
  const auto parsed = ParseWireObject(
      " {\"a\": 12.5e3 , \"b\": true, \"c\": null, \"d\": \"\\u0041\\u00e9\"} ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*FindWireField(*parsed, "a"), "12.5e3");
  EXPECT_EQ(*FindWireField(*parsed, "b"), "true");
  EXPECT_EQ(*FindWireField(*parsed, "c"), "null");
  EXPECT_EQ(*FindWireField(*parsed, "d"), "A\xC3\xA9");
  EXPECT_EQ(FindWireField(*parsed, "missing"), nullptr);
}

TEST(WireTest, RejectsMalformedMessages) {
  EXPECT_FALSE(ParseWireObject("").ok());
  EXPECT_FALSE(ParseWireObject("[1,2]").ok());
  EXPECT_FALSE(ParseWireObject("{\"a\":{\"nested\":1}}").ok());
  EXPECT_FALSE(ParseWireObject("{\"a\":[1]}").ok());
  EXPECT_FALSE(ParseWireObject("{\"a\":1,\"a\":2}").ok());
  EXPECT_FALSE(ParseWireObject("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseWireObject("{\"a\":\"unterminated}").ok());
  EXPECT_FALSE(ParseWireObject("{\"a\":\"\\ud800\"}").ok());
  EXPECT_FALSE(ParseWireObject("{\"a\":bogus}").ok());
  EXPECT_FALSE(ParseWireObject("{\"a\" 1}").ok());
  EXPECT_TRUE(ParseWireObject("{}").ok());
}

}  // namespace
}  // namespace htune
