// Randomized invariant checks ("fuzz-lite"): generate random tuning
// problems and market workloads and verify structural properties that must
// hold for every instance, independent of the specific numbers.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "durability/journal.h"
#include "durability/recovery.h"
#include "durability/snapshot.h"
#include "market/simulator.h"
#include "market/trace_io.h"
#include "rng/random.h"
#include "tuning/baselines.h"
#include "tuning/brute_force.h"
#include "tuning/deadline_allocator.h"
#include "tuning/evaluator.h"
#include "tuning/group_latency_table.h"
#include "tuning/heterogeneous_allocator.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> RandomCurve(Random& rng) {
  switch (rng.UniformInt(3)) {
    case 0:
      return std::make_shared<LinearCurve>(rng.UniformRange(0.2, 5.0),
                                           rng.UniformRange(0.2, 5.0));
    case 1:
      return std::make_shared<QuadraticCurve>(rng.UniformRange(0.1, 2.0),
                                              rng.UniformRange(0.5, 3.0));
    default:
      return std::make_shared<LogCurve>(rng.UniformRange(0.5, 4.0));
  }
}

TuningProblem RandomProblem(Random& rng, int max_groups = 3) {
  TuningProblem problem;
  const int groups = 1 + static_cast<int>(rng.UniformInt(max_groups));
  for (int g = 0; g < groups; ++g) {
    TaskGroup group;
    group.name = "g" + std::to_string(g);
    group.num_tasks = 1 + static_cast<int>(rng.UniformInt(4));
    group.repetitions = 1 + static_cast<int>(rng.UniformInt(4));
    group.processing_rate = rng.UniformRange(0.5, 5.0);
    group.curve = RandomCurve(rng);
    problem.groups.push_back(std::move(group));
  }
  problem.budget =
      problem.MinimumBudget() + static_cast<long>(rng.UniformInt(60));
  return problem;
}

TEST(RandomizedInvariants, AllocatorsProduceValidBudgetRespectingPlans) {
  Random rng(101);
  const RepetitionAllocator ra;
  const RepetitionAllocator ra_exact(RepetitionAllocator::Mode::kExactDp);
  const HeterogeneousAllocator ha;
  const RepEvenAllocator rep_even;
  const std::vector<const BudgetAllocator*> allocators = {&ra, &ra_exact,
                                                          &ha, &rep_even};
  for (int trial = 0; trial < 40; ++trial) {
    const TuningProblem problem = RandomProblem(rng);
    for (const BudgetAllocator* allocator : allocators) {
      const auto alloc = allocator->Allocate(problem);
      ASSERT_TRUE(alloc.ok())
          << allocator->Name() << " trial " << trial << ": "
          << alloc.status();
      EXPECT_TRUE(ValidateAllocation(problem, *alloc).ok())
          << allocator->Name() << " trial " << trial;
      EXPECT_LE(alloc->TotalCost(), problem.budget);
    }
  }
}

TEST(RandomizedInvariants, ExactDpNeverLosesToAnyUniformVector) {
  Random rng(102);
  const RepetitionAllocator exact(RepetitionAllocator::Mode::kExactDp);
  for (int trial = 0; trial < 15; ++trial) {
    const TuningProblem problem = RandomProblem(rng, 2);
    const auto prices = exact.SolvePrices(problem);
    ASSERT_TRUE(prices.ok());
    std::vector<GroupLatencyTable> tables;
    for (const TaskGroup& g : problem.groups) {
      tables.emplace_back(g);
    }
    const auto objective = [&](const std::vector<int>& p) {
      double total = 0.0;
      for (size_t i = 0; i < tables.size(); ++i) {
        total += tables[i].Phase1(p[i]);
      }
      return total;
    };
    const double exact_value = objective(*prices);
    ForEachUniformPriceVector(problem, [&](const std::vector<int>& p) {
      EXPECT_LE(exact_value, objective(p) + 1e-9) << "trial " << trial;
    });
  }
}

TEST(RandomizedInvariants, GroupSumAlwaysBoundsTrueMax) {
  Random rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const TuningProblem problem = RandomProblem(rng);
    const auto alloc = RepEvenAllocator().Allocate(problem);
    ASSERT_TRUE(alloc.ok());
    EXPECT_GE(Phase1GroupSum(problem, *alloc) + 1e-9,
              ExpectedPhase1Latency(problem, *alloc))
        << "trial " << trial;
  }
}

TEST(RandomizedInvariants, UtopiaPointDominatesHaSolution) {
  Random rng(104);
  const HeterogeneousAllocator ha;
  for (int trial = 0; trial < 15; ++trial) {
    const TuningProblem problem = RandomProblem(rng, 2);
    const auto utopia = ha.UtopiaPoint(problem);
    const auto prices = ha.SolvePrices(problem);
    ASSERT_TRUE(utopia.ok());
    ASSERT_TRUE(prices.ok());
    const ObjectivePoint op =
        HeterogeneousAllocator::Objectives(problem, *prices);
    EXPECT_GE(op.o1 + 1e-9, utopia->o1) << "trial " << trial;
    EXPECT_GE(op.o2 + 1e-9, utopia->o2) << "trial " << trial;
  }
}

TEST(RandomizedInvariants, DeadlinePlansMeetTheirDeadlines) {
  Random rng(105);
  for (int trial = 0; trial < 20; ++trial) {
    TuningProblem problem = RandomProblem(rng, 2);
    problem.budget = problem.MinimumBudget() * 10 + 200;
    for (const auto objective : {DeadlineObjective::kPhase1Sum,
                                 DeadlineObjective::kMostDifficult}) {
      const double deadline = rng.UniformRange(0.5, 20.0);
      const auto plan = SolveDeadline(problem, deadline, objective);
      if (!plan.ok()) {
        EXPECT_EQ(plan.status().code(), StatusCode::kOutOfRange)
            << "trial " << trial;
        continue;
      }
      EXPECT_LE(plan->achieved, deadline) << "trial " << trial;
      EXPECT_LE(plan->cost, problem.budget) << "trial " << trial;
      const Allocation alloc = DeadlinePlanToAllocation(problem, *plan);
      EXPECT_TRUE(ValidateAllocation(problem, alloc).ok());
    }
  }
}

TEST(RandomizedInvariants, MarketConservesTasksAndMoney) {
  Random rng(106);
  for (int trial = 0; trial < 15; ++trial) {
    MarketConfig config;
    config.worker_arrival_rate = rng.UniformRange(20.0, 200.0);
    config.worker_error_prob = rng.UniformRange(0.0, 0.4);
    config.seed = 500 + static_cast<uint64_t>(trial);
    config.record_trace = false;
    MarketSimulator market(config);
    long expected_spend = 0;
    int expected_reps = 0;
    std::vector<TaskId> ids;
    const int tasks = 1 + static_cast<int>(rng.UniformInt(20));
    for (int i = 0; i < tasks; ++i) {
      TaskSpec spec;
      spec.price_per_repetition = 1 + static_cast<int>(rng.UniformInt(5));
      spec.repetitions = 1 + static_cast<int>(rng.UniformInt(4));
      spec.on_hold_rate =
          rng.UniformRange(0.5, config.worker_arrival_rate * 0.5);
      spec.processing_rate = rng.UniformRange(0.5, 10.0);
      spec.num_options = 2 + static_cast<int>(rng.UniformInt(3));
      spec.true_answer =
          static_cast<int>(rng.UniformInt(spec.num_options));
      const auto id = market.PostTask(spec);
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(*id);
      expected_spend += static_cast<long>(spec.price_per_repetition) *
                        spec.repetitions;
      expected_reps += spec.repetitions;
    }
    ASSERT_TRUE(market.RunToCompletion().ok());
    EXPECT_EQ(market.TotalSpent(), expected_spend);
    EXPECT_EQ(market.OpenTaskCount(), 0u);
    int completed_reps = 0;
    for (const TaskId id : ids) {
      const auto outcome = market.GetOutcome(id);
      ASSERT_TRUE(outcome.ok());
      completed_reps += static_cast<int>(outcome->repetitions.size());
      for (const RepetitionOutcome& rep : outcome->repetitions) {
        EXPECT_GE(rep.accepted_time, rep.posted_time);
        EXPECT_GE(rep.completed_time, rep.accepted_time);
        EXPECT_GE(rep.answer, 0);
      }
    }
    EXPECT_EQ(completed_reps, expected_reps);
  }
}

// --------------------------------------------------------------------------
// Corruption properties: the durable artifacts (journal bytes, snapshot
// blobs, trace CSVs) are parsed from storage that crashes can tear and disks
// can flip. Under random truncation and bit flips every parser must return
// a clean error or a valid prefix — never crash, hang, or read out of
// bounds (run under ASan in CI).

struct CorruptionCorpus {
  MarketConfig market_config;
  std::string journal;
  std::string market_blob;
  std::string trace_csv;
};

CorruptionCorpus MakeCorruptionCorpus() {
  CorruptionCorpus corpus;
  corpus.market_config.worker_arrival_rate = 40.0;
  corpus.market_config.worker_error_prob = 0.2;
  corpus.market_config.seed = 31337;
  corpus.market_config.record_trace = true;
  MarketSimulator market(corpus.market_config);
  std::vector<TaskId> ids;
  for (int i = 0; i < 4; ++i) {
    TaskSpec spec;
    spec.price_per_repetition = 2 + i;
    spec.repetitions = 3;
    spec.on_hold_rate = 5.0;
    spec.processing_rate = 2.0;
    spec.num_options = 2;
    spec.true_answer = i % 2;
    const auto id = market.PostTask(spec);
    EXPECT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Stop mid-flight so the snapshot has pending events and open tasks.
  market.RunUntil(0.6);
  const auto state = market.CaptureState({});
  EXPECT_TRUE(state.ok());
  corpus.market_blob = EncodeMarketState(*state);
  EXPECT_TRUE(market.RunToCompletion().ok());
  corpus.trace_csv = TraceToCsv(market.trace());

  InMemoryJournalStorage storage;
  JournalWriter writer(&storage, 0);
  Encoder start;
  start.PutI64(100);
  start.PutU64(ids.size());
  EXPECT_TRUE(
      writer.Append(JournalRecordType::kRunStart, start.bytes()).ok());
  for (const TaskId id : ids) {
    Encoder post;
    post.PutU64(id);
    post.PutU64(0);
    post.PutI32Vector({2, 2, 2});
    EXPECT_TRUE(writer.Append(JournalRecordType::kPost, post.bytes()).ok());
  }
  Encoder payment;
  payment.PutU64(ids[0]);
  payment.PutI32(0);
  payment.PutI32(2);
  EXPECT_TRUE(
      writer.Append(JournalRecordType::kPayment, payment.bytes()).ok());
  Encoder snapshot;
  snapshot.PutString(corpus.market_blob);
  snapshot.PutString("executor-state-opaque-to-the-journal");
  EXPECT_TRUE(
      writer.Append(JournalRecordType::kSnapshot, snapshot.bytes()).ok());
  Encoder end;
  end.PutI64(8);
  end.PutDouble(1.25);
  EXPECT_TRUE(writer.Append(JournalRecordType::kRunEnd, end.bytes()).ok());
  corpus.journal = storage.bytes();
  return corpus;
}

TEST(RandomizedInvariants, CorruptedDurableArtifactsFailCleanly) {
  const CorruptionCorpus corpus = MakeCorruptionCorpus();
  Random rng(107);
  for (int trial = 0; trial < 400; ++trial) {
    const int artifact = static_cast<int>(rng.UniformInt(3));
    std::string bytes = artifact == 0   ? corpus.journal
                        : artifact == 1 ? corpus.market_blob
                                        : corpus.trace_csv;
    if (rng.UniformInt(2) == 0) {
      bytes.resize(static_cast<size_t>(rng.UniformInt(bytes.size() + 1)));
    } else if (!bytes.empty()) {
      const int flips = 1 + static_cast<int>(rng.UniformInt(3));
      for (int f = 0; f < flips; ++f) {
        bytes[static_cast<size_t>(rng.UniformInt(bytes.size()))] ^=
            static_cast<char>(1 << rng.UniformInt(8));
      }
    }
    switch (artifact) {
      case 0: {
        const auto scan = ScanJournal(bytes);
        if (scan.ok()) {
          // The reported valid prefix must itself scan cleanly and
          // completely — truncation converges in one pass.
          ASSERT_LE(scan->valid_bytes, bytes.size()) << "trial " << trial;
          const auto rescan = ScanJournal(std::string_view(bytes).substr(
              0, static_cast<size_t>(scan->valid_bytes)));
          ASSERT_TRUE(rescan.ok()) << "trial " << trial;
          EXPECT_FALSE(rescan->truncated_tail) << "trial " << trial;
          EXPECT_EQ(rescan->records.size(), scan->records.size());
        }
        // Recovery entry point on the same bytes: clean error, or a
        // physically truncated journal ending at a record boundary.
        InMemoryJournalStorage storage(bytes);
        DurabilityConfig config;
        config.storage = &storage;
        const auto ctx = DurableContext::Open(config);
        if (ctx.ok()) {
          ASSERT_TRUE(scan.ok()) << "trial " << trial;
          EXPECT_EQ(storage.bytes().size(), scan->valid_bytes)
              << "trial " << trial;
        } else {
          EXPECT_FALSE(ctx.status().message().empty());
        }
        break;
      }
      case 1: {
        const auto state = DecodeMarketState(bytes);
        if (state.ok()) {
          // Structurally decodable but semantically bogus states must be
          // rejected by the simulator, not acted upon.
          MarketSimulator scratch(corpus.market_config);
          const Status restored = scratch.RestoreState(*state, {});
          if (!restored.ok()) {
            EXPECT_FALSE(restored.message().empty());
          }
        } else {
          EXPECT_FALSE(state.status().message().empty());
        }
        break;
      }
      default: {
        const auto trace = ParseTraceCsv(bytes);
        if (trace.ok()) {
          // Whatever survives must round-trip through the writer.
          EXPECT_TRUE(ParseTraceCsv(TraceToCsv(*trace)).ok())
              << "trial " << trial;
        } else {
          EXPECT_FALSE(trace.status().message().empty());
        }
        break;
      }
    }
  }
}

}  // namespace
}  // namespace htune
