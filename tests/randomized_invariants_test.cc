// Randomized invariant checks ("fuzz-lite"): generate random tuning
// problems and market workloads and verify structural properties that must
// hold for every instance, independent of the specific numbers.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "market/simulator.h"
#include "rng/random.h"
#include "tuning/baselines.h"
#include "tuning/brute_force.h"
#include "tuning/deadline_allocator.h"
#include "tuning/evaluator.h"
#include "tuning/group_latency_table.h"
#include "tuning/heterogeneous_allocator.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> RandomCurve(Random& rng) {
  switch (rng.UniformInt(3)) {
    case 0:
      return std::make_shared<LinearCurve>(rng.UniformRange(0.2, 5.0),
                                           rng.UniformRange(0.2, 5.0));
    case 1:
      return std::make_shared<QuadraticCurve>(rng.UniformRange(0.1, 2.0),
                                              rng.UniformRange(0.5, 3.0));
    default:
      return std::make_shared<LogCurve>(rng.UniformRange(0.5, 4.0));
  }
}

TuningProblem RandomProblem(Random& rng, int max_groups = 3) {
  TuningProblem problem;
  const int groups = 1 + static_cast<int>(rng.UniformInt(max_groups));
  for (int g = 0; g < groups; ++g) {
    TaskGroup group;
    group.name = "g" + std::to_string(g);
    group.num_tasks = 1 + static_cast<int>(rng.UniformInt(4));
    group.repetitions = 1 + static_cast<int>(rng.UniformInt(4));
    group.processing_rate = rng.UniformRange(0.5, 5.0);
    group.curve = RandomCurve(rng);
    problem.groups.push_back(std::move(group));
  }
  problem.budget =
      problem.MinimumBudget() + static_cast<long>(rng.UniformInt(60));
  return problem;
}

TEST(RandomizedInvariants, AllocatorsProduceValidBudgetRespectingPlans) {
  Random rng(101);
  const RepetitionAllocator ra;
  const RepetitionAllocator ra_exact(RepetitionAllocator::Mode::kExactDp);
  const HeterogeneousAllocator ha;
  const RepEvenAllocator rep_even;
  const std::vector<const BudgetAllocator*> allocators = {&ra, &ra_exact,
                                                          &ha, &rep_even};
  for (int trial = 0; trial < 40; ++trial) {
    const TuningProblem problem = RandomProblem(rng);
    for (const BudgetAllocator* allocator : allocators) {
      const auto alloc = allocator->Allocate(problem);
      ASSERT_TRUE(alloc.ok())
          << allocator->Name() << " trial " << trial << ": "
          << alloc.status();
      EXPECT_TRUE(ValidateAllocation(problem, *alloc).ok())
          << allocator->Name() << " trial " << trial;
      EXPECT_LE(alloc->TotalCost(), problem.budget);
    }
  }
}

TEST(RandomizedInvariants, ExactDpNeverLosesToAnyUniformVector) {
  Random rng(102);
  const RepetitionAllocator exact(RepetitionAllocator::Mode::kExactDp);
  for (int trial = 0; trial < 15; ++trial) {
    const TuningProblem problem = RandomProblem(rng, 2);
    const auto prices = exact.SolvePrices(problem);
    ASSERT_TRUE(prices.ok());
    std::vector<GroupLatencyTable> tables;
    for (const TaskGroup& g : problem.groups) {
      tables.emplace_back(g);
    }
    const auto objective = [&](const std::vector<int>& p) {
      double total = 0.0;
      for (size_t i = 0; i < tables.size(); ++i) {
        total += tables[i].Phase1(p[i]);
      }
      return total;
    };
    const double exact_value = objective(*prices);
    ForEachUniformPriceVector(problem, [&](const std::vector<int>& p) {
      EXPECT_LE(exact_value, objective(p) + 1e-9) << "trial " << trial;
    });
  }
}

TEST(RandomizedInvariants, GroupSumAlwaysBoundsTrueMax) {
  Random rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const TuningProblem problem = RandomProblem(rng);
    const auto alloc = RepEvenAllocator().Allocate(problem);
    ASSERT_TRUE(alloc.ok());
    EXPECT_GE(Phase1GroupSum(problem, *alloc) + 1e-9,
              ExpectedPhase1Latency(problem, *alloc))
        << "trial " << trial;
  }
}

TEST(RandomizedInvariants, UtopiaPointDominatesHaSolution) {
  Random rng(104);
  const HeterogeneousAllocator ha;
  for (int trial = 0; trial < 15; ++trial) {
    const TuningProblem problem = RandomProblem(rng, 2);
    const auto utopia = ha.UtopiaPoint(problem);
    const auto prices = ha.SolvePrices(problem);
    ASSERT_TRUE(utopia.ok());
    ASSERT_TRUE(prices.ok());
    const ObjectivePoint op =
        HeterogeneousAllocator::Objectives(problem, *prices);
    EXPECT_GE(op.o1 + 1e-9, utopia->o1) << "trial " << trial;
    EXPECT_GE(op.o2 + 1e-9, utopia->o2) << "trial " << trial;
  }
}

TEST(RandomizedInvariants, DeadlinePlansMeetTheirDeadlines) {
  Random rng(105);
  for (int trial = 0; trial < 20; ++trial) {
    TuningProblem problem = RandomProblem(rng, 2);
    problem.budget = problem.MinimumBudget() * 10 + 200;
    for (const auto objective : {DeadlineObjective::kPhase1Sum,
                                 DeadlineObjective::kMostDifficult}) {
      const double deadline = rng.UniformRange(0.5, 20.0);
      const auto plan = SolveDeadline(problem, deadline, objective);
      if (!plan.ok()) {
        EXPECT_EQ(plan.status().code(), StatusCode::kOutOfRange)
            << "trial " << trial;
        continue;
      }
      EXPECT_LE(plan->achieved, deadline) << "trial " << trial;
      EXPECT_LE(plan->cost, problem.budget) << "trial " << trial;
      const Allocation alloc = DeadlinePlanToAllocation(problem, *plan);
      EXPECT_TRUE(ValidateAllocation(problem, alloc).ok());
    }
  }
}

TEST(RandomizedInvariants, MarketConservesTasksAndMoney) {
  Random rng(106);
  for (int trial = 0; trial < 15; ++trial) {
    MarketConfig config;
    config.worker_arrival_rate = rng.UniformRange(20.0, 200.0);
    config.worker_error_prob = rng.UniformRange(0.0, 0.4);
    config.seed = 500 + static_cast<uint64_t>(trial);
    config.record_trace = false;
    MarketSimulator market(config);
    long expected_spend = 0;
    int expected_reps = 0;
    std::vector<TaskId> ids;
    const int tasks = 1 + static_cast<int>(rng.UniformInt(20));
    for (int i = 0; i < tasks; ++i) {
      TaskSpec spec;
      spec.price_per_repetition = 1 + static_cast<int>(rng.UniformInt(5));
      spec.repetitions = 1 + static_cast<int>(rng.UniformInt(4));
      spec.on_hold_rate =
          rng.UniformRange(0.5, config.worker_arrival_rate * 0.5);
      spec.processing_rate = rng.UniformRange(0.5, 10.0);
      spec.num_options = 2 + static_cast<int>(rng.UniformInt(3));
      spec.true_answer =
          static_cast<int>(rng.UniformInt(spec.num_options));
      const auto id = market.PostTask(spec);
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(*id);
      expected_spend += static_cast<long>(spec.price_per_repetition) *
                        spec.repetitions;
      expected_reps += spec.repetitions;
    }
    ASSERT_TRUE(market.RunToCompletion().ok());
    EXPECT_EQ(market.TotalSpent(), expected_spend);
    EXPECT_EQ(market.OpenTaskCount(), 0u);
    int completed_reps = 0;
    for (const TaskId id : ids) {
      const auto outcome = market.GetOutcome(id);
      ASSERT_TRUE(outcome.ok());
      completed_reps += static_cast<int>(outcome->repetitions.size());
      for (const RepetitionOutcome& rep : outcome->repetitions) {
        EXPECT_GE(rep.accepted_time, rep.posted_time);
        EXPECT_GE(rep.completed_time, rep.accepted_time);
        EXPECT_GE(rep.answer, 0);
      }
    }
    EXPECT_EQ(completed_reps, expected_reps);
  }
}

}  // namespace
}  // namespace htune
