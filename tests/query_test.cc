// Tests for CrowdCategorize and the two-phase TopKFilteredQuery plan.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "crowddb/categorize.h"
#include "crowddb/query.h"
#include "tuning/even_allocator.h"

namespace htune {
namespace {

std::shared_ptr<const PriceRateCurve> Curve() {
  return std::make_shared<LinearCurve>(1.0, 1.0);
}

MarketConfig Market(uint64_t seed, double error = 0.0) {
  MarketConfig config;
  config.worker_arrival_rate = 200.0;
  config.seed = seed;
  config.worker_error_prob = error;
  config.record_trace = false;
  return config;
}

std::vector<Item> SomeItems(int n) {
  std::vector<Item> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({i, 10.0 * (i + 1)});
  }
  return items;
}

TEST(CrowdCategorizeTest, CreateValidation) {
  EXPECT_FALSE(CrowdCategorize::Create({}, {1.0}, 1).ok());
  EXPECT_FALSE(CrowdCategorize::Create(SomeItems(3), {}, 1).ok());
  EXPECT_FALSE(CrowdCategorize::Create(SomeItems(3), {1.0}, 0).ok());
  EXPECT_FALSE(CrowdCategorize::Create(SomeItems(3), {2.0, 1.0}, 1).ok());
  EXPECT_FALSE(
      CrowdCategorize::Create({{0, 1.0}, {0, 2.0}}, {1.5}, 1).ok());
  EXPECT_TRUE(CrowdCategorize::Create(SomeItems(3), {15.0, 25.0}, 2).ok());
}

TEST(CrowdCategorizeTest, TrueBucketBoundaries) {
  const auto cat = CrowdCategorize::Create(SomeItems(3), {15.0, 25.0}, 1);
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(cat->NumBuckets(), 3);
  EXPECT_EQ(cat->TrueBucket(10.0), 0);
  EXPECT_EQ(cat->TrueBucket(15.0), 1);  // boundary goes to the upper bucket
  EXPECT_EQ(cat->TrueBucket(20.0), 1);
  EXPECT_EQ(cat->TrueBucket(30.0), 2);
}

TEST(CrowdCategorizeTest, PerfectWorkersBucketExactly) {
  const auto cat = CrowdCategorize::Create(SomeItems(9), {35.0, 65.0}, 3);
  ASSERT_TRUE(cat.ok());
  MarketSimulator market(Market(1));
  const auto result = cat->Run(market, EvenAllocator(), 200, Curve(), 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->accuracy, 1.0);
  // Values 10..90: buckets 0,0,0, 1,1,1, 2,2,2.
  EXPECT_EQ(result->categories,
            (std::vector<int>{0, 0, 0, 1, 1, 1, 2, 2, 2}));
}

TEST(CrowdCategorizeTest, NoisyWorkersDegradeGracefully) {
  const auto cat = CrowdCategorize::Create(SomeItems(20), {105.0}, 5);
  ASSERT_TRUE(cat.ok());
  MarketSimulator market(Market(2, /*error=*/0.25));
  const auto result = cat->Run(market, EvenAllocator(), 600, Curve(), 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->accuracy, 0.8);
  EXPECT_LE(result->accuracy, 1.0);
}

TEST(TopKFilteredQueryTest, CreateValidation) {
  EXPECT_FALSE(
      TopKFilteredQuery::Create({{0, 1.0}}, 0.5, 1, 1, 1).ok());
  EXPECT_FALSE(TopKFilteredQuery::Create(SomeItems(4), 5.0, 0, 1, 1).ok());
  EXPECT_FALSE(TopKFilteredQuery::Create(SomeItems(4), 5.0, 1, 0, 1).ok());
  EXPECT_FALSE(TopKFilteredQuery::Create(SomeItems(4), 5.0, 1, 1, 0).ok());
  EXPECT_TRUE(TopKFilteredQuery::Create(SomeItems(4), 5.0, 2, 3, 3).ok());
}

TEST(TopKFilteredQueryTest, PerfectWorkersAnswerTheQuery) {
  // Items 10..120; WHERE value >= 45 keeps ids 4..11; top-3 = 11, 10, 9.
  const auto query =
      TopKFilteredQuery::Create(SomeItems(12), 45.0, 3, 3, 3);
  ASSERT_TRUE(query.ok());
  MarketSimulator market(Market(3));
  const auto result =
      query->Run(market, EvenAllocator(), 3000, Curve(), 5.0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->top_ids, (std::vector<int>{11, 10, 9}));
  EXPECT_DOUBLE_EQ(result->quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(result->quality.recall, 1.0);
  EXPECT_EQ(result->filtered_ids.size(), 8u);
  EXPECT_LE(result->spent, 3000);
  EXPECT_GT(result->latency, 0.0);
}

TEST(TopKFilteredQueryTest, FewSurvivorsSkipTheRankingPhase) {
  // Threshold keeps only ids 10 and 11; k=3 > survivors, so the filter's
  // output is the whole answer.
  const auto query =
      TopKFilteredQuery::Create(SomeItems(12), 105.0, 3, 3, 3);
  ASSERT_TRUE(query.ok());
  MarketSimulator market(Market(4));
  const auto result =
      query->Run(market, EvenAllocator(), 3000, Curve(), 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->top_ids.size(), 2u);
  EXPECT_DOUBLE_EQ(result->quality.recall, 1.0);
}

TEST(TopKFilteredQueryTest, RejectsTinyBudget) {
  const auto query = TopKFilteredQuery::Create(SomeItems(8), 5.0, 2, 3, 3);
  ASSERT_TRUE(query.ok());
  MarketSimulator market(Market(5));
  EXPECT_FALSE(query->Run(market, EvenAllocator(), 10, Curve(), 5.0).ok());
}

TEST(TopKFilteredQueryTest, PhasesAreSequential) {
  // The query's latency equals phase-1 latency + phase-2 latency; with two
  // phases on one market, total spent splits between them.
  const auto query =
      TopKFilteredQuery::Create(SomeItems(10), 25.0, 2, 2, 2);
  ASSERT_TRUE(query.ok());
  MarketSimulator market(Market(6));
  const auto result =
      query->Run(market, EvenAllocator(), 2000, Curve(), 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->latency, 0.0);
  EXPECT_GT(result->spent, 0);
  // The market's clock advanced through both phases.
  EXPECT_GE(market.now(), result->latency);
}

}  // namespace
}  // namespace htune
