// Fixture: lifecycle reads are fine anywhere; mutations go through the
// supervisor's transition helpers.
bool IsTerminal(const ManifestJobEntry& entry) {
  return entry.state == FleetJobState::kDone ||
         entry.state == FleetJobState::kQuarantined ||
         entry.state != FleetJobState::kRunning;
}

Status Finish(FleetSupervisor* fleet, uint64_t job_id) {
  return fleet->CompleteJob(job_id);
}
