// Fixture: the approved alternative — the operation is wrapped in
// htune::RetryTransient, which owns the attempt bound, exponential
// backoff, and deterministic jitter (charged in simulated seconds).
#include "resilience/policy.h"
#include "rng/splitmix64.h"

namespace htune {

Status TryOnce();

Status RetryViaPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 5;
  SplitMix64 jitter(42);
  return RetryTransient(policy, jitter, [] { return TryOnce(); });
}

}  // namespace htune
