// Fixture: file-level suppression for a hypothetical non-replayed path.
// htune-lint: allow-file(market-obs) outside the replayed region
void OnShutdown() {
  HTUNE_OBS_COUNTER_ADD("market.shutdowns", 1);
}
