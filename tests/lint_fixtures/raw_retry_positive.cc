// Fixture: hand-rolled retry machinery outside src/resilience/ must fire
// the raw-retry rule (3 findings: two sleeps, one single-line retry loop).
#include <chrono>
#include <thread>

namespace htune {

bool TryOnce();

bool NaiveRetry() {
  for (int attempt = 0; attempt < 5; ++attempt) {
    if (TryOnce()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10 << attempt));
  }
  usleep(1000);
  return false;
}

}  // namespace htune
