// Fixture: a justified suppression silences the rule.
#include <random>

int EntropyForDiagnosticsOnly() {
  // htune-lint: allow(nondeterminism) diagnostics banner only, never data
  std::random_device rd;
  return static_cast<int>(rd());
}
