// Fixture: the same raw retry machinery, silenced by per-line and
// line-above suppressions with justifications.
#include <chrono>
#include <thread>

namespace htune {

bool TryOnce();

bool NaiveRetry() {
  // htune-lint: allow(raw-retry) fixture: bounded by the test harness
  for (int attempt = 0; attempt < 5; ++attempt) {
    if (TryOnce()) {
      return true;
    }
    std::this_thread::sleep_for(  // htune-lint: allow(raw-retry) fixture
        std::chrono::milliseconds(10 << attempt));
  }
  usleep(1000);  // htune-lint: allow(raw-retry) fixture: test-only pacing
  return false;
}

}  // namespace htune
