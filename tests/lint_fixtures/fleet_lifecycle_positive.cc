// Fixture: lifecycle mutations outside src/fleet/ (virtually
// src/control/): a raw manifest append and a direct state assignment.
void MarkJobDone(FleetManifest* manifest, ManifestJobEntry* entry) {
  manifest->AppendState(entry->job_id, FleetJobState::kDone, 0, 0, "");
  entry->state = FleetJobState::kDone;
}
