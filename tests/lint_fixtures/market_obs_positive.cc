// Fixture: obs macros in the (virtually src/market/) simulator.
void OnEvent() {
  HTUNE_OBS_COUNTER_ADD("market.events_dispatched", 1);
}
