// Fixture: node-based ordered containers in the (virtually src/market/)
// event engine — the include and two declarations each fire.
#include <map>

std::map<unsigned long, double> open_tasks;
std::set<unsigned long> on_hold;
