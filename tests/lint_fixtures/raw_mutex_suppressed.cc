// Fixture: justified raw use at a std-API interop boundary.
#include <mutex>

// htune-lint: allow(raw-mutex) interop: external API hands us a std::mutex
extern std::mutex& ExternalLock();
void WithExternal() { ExternalLock().lock(); ExternalLock().unlock(); }
