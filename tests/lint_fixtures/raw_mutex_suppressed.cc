// Fixture: justified raw use (e.g. interop with a std API).
#include <mutex>

// htune-lint: allow(raw-mutex) std::call_once requires std::once_flag
std::once_flag init_flag_;
void Init() {}
void EnsureInit() { std::call_once(init_flag_, Init); }
