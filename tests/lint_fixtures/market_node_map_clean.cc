// Fixture: the approved alternatives — flat arrays for the hot path,
// unordered_map for untrusted-id bookkeeping (mentions of std::map in
// comments don't count).
#include <unordered_map>
#include <vector>

std::vector<unsigned long> hold_ids;
std::vector<double> hold_probs;
std::unordered_map<unsigned long, double> last_time_per_task;
