// Fixture: the simulator publishes via control/market_metrics.h instead.
struct TraceSummary {
  long events = 0;
};

TraceSummary Summarize() { return TraceSummary{42}; }
