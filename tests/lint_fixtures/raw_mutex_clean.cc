// Fixture: locking through the annotated wrappers.
#include "common/mutex.h"
#include "common/thread_annotations.h"

htune::Mutex mu_;
int value_ HTUNE_GUARDED_BY(mu_) = 0;

void Bump() {
  htune::MutexLock lock(mu_);
  ++value_;
}
