// Fixture: range-for over an unordered container in the same file.
#include <iostream>
#include <unordered_map>

std::unordered_map<int, double> table_;

void Export(std::ostream& os) {
  for (const auto& [key, value] : table_) {
    os << key << "," << value << "\n";
  }
}
