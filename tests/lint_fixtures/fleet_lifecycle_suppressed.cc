// Fixture: the same mutations suppressed with justifications.
void MarkJobDone(FleetManifest* manifest, ManifestJobEntry* entry) {
  // htune-lint: allow(fleet-lifecycle) migration shim, tracked removal
  manifest->AppendState(entry->job_id, FleetJobState::kDone, 0, 0, "");
  entry->state = FleetJobState::kDone;  // htune-lint: allow(fleet-lifecycle) same shim
}
