// Fixture: sort into an ordered view before iterating for export.
#include <iostream>
#include <map>
#include <unordered_map>

std::unordered_map<int, double> table_;

void Export(std::ostream& os) {
  const std::map<int, double> sorted(table_.begin(), table_.end());
  for (const auto& [key, value] : sorted) {
    os << key << "," << value << "\n";
  }
}
