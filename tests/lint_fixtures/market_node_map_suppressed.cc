// Fixture: a justified one-off map on a cold path, suppressed per line.
#include <map>  // htune-lint: allow(market-node-map) cold diagnostics path
// htune-lint: allow(market-node-map) runs once per CaptureState, not per event
std::map<unsigned long, double> snapshot_index;
