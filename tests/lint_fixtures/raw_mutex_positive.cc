// Fixture: raw std synchronization outside common/mutex.h.
#include <mutex>

std::mutex mu_;

void Touch() {
  std::lock_guard<std::mutex> lock(mu_);
}
