// Fixture: order-independent iteration with a justification.
#include <unordered_map>

std::unordered_map<int, double> table_;

double Sum() {
  double total = 0.0;
  // htune-lint: allow(unordered-iter) commutative sum, order never escapes
  for (const auto& [key, value] : table_) {
    total += value;
  }
  return total;
}
