// Fixture: nondeterminism rule must fire on each ambient-random source.
#include <cstdlib>
#include <ctime>
#include <random>

int Seed() {
  std::random_device rd;
  std::srand(static_cast<unsigned>(time(nullptr)));
  return rd() + rand() + static_cast<int>(std::chrono::system_clock::now()
                                              .time_since_epoch()
                                              .count());
}
