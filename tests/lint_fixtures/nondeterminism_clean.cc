// Fixture: seeded streams and steady_clock are the approved sources.
#include <chrono>
#include <cstdint>

uint64_t Now() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
uint64_t NextState(uint64_t state) { return state * 6364136223846793005ULL; }
