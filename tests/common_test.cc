#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/strings.h"

namespace htune {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, OkCodeWithMessageNormalizes) {
  const Status status(StatusCode::kOk, "ignored");
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x"), InvalidArgumentError("x"));
  EXPECT_FALSE(InvalidArgumentError("x") == InvalidArgumentError("y"));
  EXPECT_FALSE(InvalidArgumentError("x") == InternalError("x"));
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream oss;
  oss << NotFoundError("missing");
  EXPECT_EQ(oss.str(), "NOT_FOUND: missing");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(OkStatus().code(), StatusCode::kOk);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status UsesReturnIfError(int x) {
  HTUNE_RETURN_IF_ERROR(FailIfNegative(x));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(StatusOrTest, ConstructingFromOkStatusBecomesInternalError) {
  StatusOr<int> result = OkStatus();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, ArrowOperatorAccessesMembers) {
  StatusOr<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  HTUNE_ASSIGN_OR_RETURN(const int half, Half(x));
  return Half(half);
}

TEST(StatusOrTest, AssignOrReturnChains) {
  const StatusOr<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"a"}, ","), "a");
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, SplitString) {
  EXPECT_EQ(SplitString("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString(",a", ','), (std::vector<std::string>{"", "a"}));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(CheckTest, PassingChecksDoNotAbort) {
  HTUNE_CHECK(true);
  HTUNE_CHECK_EQ(1, 1);
  HTUNE_CHECK_NE(1, 2);
  HTUNE_CHECK_LT(1, 2);
  HTUNE_CHECK_LE(2, 2);
  HTUNE_CHECK_GT(2, 1);
  HTUNE_CHECK_GE(2, 2);
  HTUNE_CHECK_OK(OkStatus());
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(HTUNE_CHECK(false), "HTUNE_CHECK failed");
  EXPECT_DEATH(HTUNE_CHECK_EQ(1, 2), "1 == 2");
  EXPECT_DEATH(HTUNE_CHECK_OK(InternalError("boom")), "boom");
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result = NotFoundError("gone");
  EXPECT_DEATH(result.value(), "gone");
}

}  // namespace
}  // namespace htune
