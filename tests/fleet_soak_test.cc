// Fleet chaos soak: hundreds of seeded schedules, each running a 64-job
// fleet that is killed mid-flight at a schedule-dependent byte budget while
// per-job fault injectors blip storage and market operations; a quarter of
// the schedules additionally poison one interrupted job's journal (header
// corruption or a bit flip below the manifest's durable mark). Recovery
// must finish every non-poisoned job bitwise identically to the fault-free
// reference — equal completion digests and an exactly-once payment
// sequence — and quarantine exactly the deliberately poisoned jobs.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "durability/journal.h"
#include "durability/manifest.h"
#include "fleet/supervisor.h"
#include "gtest/gtest.h"
#include "resilience/fault_injector.h"
#include "rng/splitmix64.h"

namespace htune {
namespace {

constexpr int kFleetJobs = 64;
constexpr int kSchedules = 200;
constexpr uint64_t kSeedBase = 1000;

constexpr char kSoakSpec[] =
    "budget = 6\n"
    "arrival_rate = 80\n"
    "[group]\n"
    "tasks = 2\n"
    "repetitions = 1\n"
    "processing_rate = 4.0\n"
    "curve = linear 1.0 1.0\n";

FleetJobSpec SoakJob(int index) {
  FleetJobSpec spec;
  spec.name = "soak#" + std::to_string(index);
  spec.spec_text = kSoakSpec;
  spec.seed_override = static_cast<int64_t>(kSeedBase) + index;
  spec.snapshot_interval = 4;
  // A few retuners ride along: same durability contract, different
  // controller and journal shape.
  if (index % 8 == 3) {
    spec.controller = FleetController::kAdaptiveRetuner;
  }
  return spec;
}

Status SubmitSoakFleet(FleetSupervisor& fleet) {
  for (int i = 0; i < kFleetJobs; ++i) {
    HTUNE_RETURN_IF_ERROR(fleet.Submit(SoakJob(i)).status());
  }
  return OkStatus();
}

/// The fault-free truth every schedule is measured against.
struct JobTruth {
  std::string digest;  // manifest completion detail, "crc32c:<n>"
  std::vector<std::string> payments;  // kPayment payloads in order
};

std::vector<std::string> PaymentPayloads(std::string_view journal_bytes) {
  std::vector<std::string> payments;
  const auto scan = ScanJournal(journal_bytes);
  if (!scan.ok()) return payments;
  for (const JournalRecord& record : scan->records) {
    if (record.type == JournalRecordType::kPayment) {
      payments.push_back(record.payload);
    }
  }
  return payments;
}

std::map<uint64_t, JobTruth> ComputeReference() {
  InMemoryFleetStorage provider;
  FleetConfig config;
  config.max_running = 8;
  FleetSupervisor fleet(&provider, config);
  EXPECT_TRUE(fleet.Open().ok());
  EXPECT_TRUE(SubmitSoakFleet(fleet).ok());
  const auto stats = fleet.RunAll();
  EXPECT_TRUE(stats.ok());
  std::map<uint64_t, JobTruth> truth;
  for (const auto& [id, entry] : fleet.jobs()) {
    EXPECT_EQ(entry.state, FleetJobState::kDone) << entry.detail;
    truth[id] = {entry.detail,
                 PaymentPayloads(provider.Find(FleetJobJournalPath(id))
                                     ->bytes())};
  }
  return truth;
}

TEST(FleetSoakTest, KilledPoisonedFleetsRecoverBitwise) {
  const std::map<uint64_t, JobTruth> truth = ComputeReference();
  ASSERT_EQ(truth.size(), static_cast<size_t>(kFleetJobs));

  int kills = 0;
  int quarantines = 0;
  int poisoned_schedules = 0;
  int restarts_seen = 0;

  for (int schedule = 0; schedule < kSchedules; ++schedule) {
    SplitMix64 rng(0x736f616bULL + static_cast<uint64_t>(schedule));
    InMemoryFleetStorage provider;

    // Per-job chaos surfaces, pre-built so the unlocked market-gate lookup
    // in the supervisor's run path never races the storage decorator.
    // Index 0 is the manifest (kill only, no transient faults).
    std::vector<std::unique_ptr<FaultInjector>> injectors(kFleetJobs + 1);
    const int fault_cap = 1 + static_cast<int>(rng.Next() % 3);  // 1..3
    for (int id = 1; id <= kFleetJobs; ++id) {
      FaultInjectorConfig fcfg;
      fcfg.seed = rng.Next();
      fcfg.append_fault_prob = 0.04;
      fcfg.short_write_prob = 0.03;
      fcfg.flush_fault_prob = 0.03;
      fcfg.market_fault_prob = 0.05;
      fcfg.max_consecutive_faults = fault_cap;
      injectors[id] = std::make_unique<FaultInjector>(fcfg);
    }
    const uint64_t kill_budget = 15000 + rng.Next() % 60000;
    FleetKillSwitch kill(kill_budget);
    std::vector<std::unique_ptr<JournalStorage>> wrappers;

    FleetConfig chaos;
    chaos.max_running = 8;
    chaos.journal_retry.max_attempts = 5;  // > fault_cap: faults heal
    chaos.market_retry.max_attempts = 5;
    chaos.decorate_storage = [&](uint64_t job_id, JournalStorage* inner) {
      JournalStorage* wrapped = inner;
      if (job_id != 0) {
        wrappers.push_back(injectors[job_id]->WrapStorage(wrapped));
        wrapped = wrappers.back().get();
      }
      wrappers.push_back(kill.WrapStorage(wrapped));
      return wrappers.back().get();
    };
    chaos.market_gate = [&](uint64_t job_id) -> FaultGate {
      return injectors[job_id]->MarketGate();
    };

    bool killed = false;
    {
      FleetSupervisor fleet(&provider, chaos);
      ASSERT_TRUE(fleet.Open().ok());
      ASSERT_TRUE(SubmitSoakFleet(fleet).ok());
      const auto stats = fleet.RunAll();
      if (!stats.ok()) {
        ASSERT_EQ(stats.status().code(), StatusCode::kResourceExhausted)
            << stats.status().ToString();
        killed = true;
        ++kills;
      } else {
        restarts_seen += stats->restarts;
      }
    }

    // Poison one interrupted job on a quarter of the killed schedules:
    // header corruption, or — when the manifest already proved durable
    // bytes — a bit flip below that mark.
    uint64_t poisoned_id = 0;
    if (killed && schedule % 4 == 0) {
      const auto manifest_scan =
          ScanManifest(provider.Find(FleetManifestFileName())->bytes());
      ASSERT_TRUE(manifest_scan.ok());
      for (const auto& [id, entry] : manifest_scan->jobs) {
        if (entry.state == FleetJobState::kDone) continue;
        InMemoryJournalStorage* journal =
            provider.Find(FleetJobJournalPath(id));
        if (journal == nullptr || journal->bytes().empty()) continue;
        if (entry.journal_bytes >= 16 &&
            journal->bytes().size() >= entry.journal_bytes) {
          const uint64_t offset =
              8 + rng.Next() % (entry.journal_bytes - 8);
          journal->bytes()[offset] ^= static_cast<char>(
              1u << (rng.Next() % 8));
        } else {
          journal->bytes()[0] ^= 0x55;  // journal magic
        }
        poisoned_id = id;
        ++poisoned_schedules;
        break;
      }
    }

    // Clean recovery: no injected faults, no kill. Everything the poison
    // did not touch must finish.
    FleetConfig clean;
    clean.max_running = 8;
    FleetSupervisor recovered(&provider, clean);
    ASSERT_TRUE(recovered.Recover().ok()) << "schedule " << schedule;
    EXPECT_TRUE(recovered.orphans().empty()) << "schedule " << schedule;
    const auto stats = recovered.RunAll();
    ASSERT_TRUE(stats.ok()) << "schedule " << schedule << ": "
                            << stats.status().ToString();
    quarantines += stats->quarantined;
    restarts_seen += stats->restarts;

    for (const auto& [id, entry] : recovered.jobs()) {
      if (id == poisoned_id) {
        EXPECT_EQ(entry.state, FleetJobState::kQuarantined)
            << "schedule " << schedule << " job " << id << ": "
            << entry.detail;
        continue;
      }
      ASSERT_EQ(entry.state, FleetJobState::kDone)
          << "schedule " << schedule << " job " << id << ": "
          << entry.detail;
      // Bitwise identity with the fault-free reference: same completion
      // digest (report + trace CRC)...
      EXPECT_EQ(entry.detail, truth.at(id).digest)
          << "schedule " << schedule << " job " << id;
      // ...and the exactly-once payment ledger: the same payments, in the
      // same order, no duplicates across any number of crash/recover
      // cycles.
      EXPECT_EQ(PaymentPayloads(provider.Find(FleetJobJournalPath(id))
                                    ->bytes()),
                truth.at(id).payments)
          << "schedule " << schedule << " job " << id;
    }
    if (poisoned_id != 0) {
      EXPECT_EQ(stats->quarantined, 1) << "schedule " << schedule;
    } else {
      EXPECT_EQ(stats->quarantined, 0) << "schedule " << schedule;
    }
  }

  // The soak must actually have exercised the machinery it gates.
  EXPECT_GT(kills, 50);
  EXPECT_GT(quarantines, 10);
  EXPECT_EQ(quarantines, poisoned_schedules);
  std::printf("fleet soak: %d schedules, %d kills, %d quarantines, "
              "%d restarts\n",
              kSchedules, kills, quarantines, restarts_seen);
}

}  // namespace
}  // namespace htune
