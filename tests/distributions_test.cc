#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "model/distributions.h"
#include "model/hypoexponential.h"
#include "model/quadrature.h"
#include "rng/random.h"
#include "stats/descriptive.h"

namespace htune {
namespace {

TEST(ExponentialDistTest, PdfCdfConsistency) {
  ExponentialDist dist(2.0);
  EXPECT_DOUBLE_EQ(dist.Pdf(0.0), 2.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(0.0), 0.0);
  EXPECT_EQ(dist.Pdf(-1.0), 0.0);
  EXPECT_NEAR(dist.Cdf(1.0), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(dist.Mean(), 0.5);
  EXPECT_DOUBLE_EQ(dist.Variance(), 0.25);
}

TEST(ExponentialDistTest, CdfIsIntegralOfPdf) {
  ExponentialDist dist(1.5);
  const double integral = IntegrateAdaptiveSimpson(
      [&dist](double t) { return dist.Pdf(t); }, 0.0, 2.0, 1e-10);
  EXPECT_NEAR(integral, dist.Cdf(2.0), 1e-8);
}

TEST(ExponentialDistTest, QuantileRoundTrips) {
  ExponentialDist dist(3.0);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(dist.Cdf(dist.Quantile(q)), q, 1e-12);
  }
}

TEST(ExponentialDistTest, SampleMomentsMatch) {
  ExponentialDist dist(4.0);
  Random rng(1);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(dist.Sample(rng));
  }
  EXPECT_NEAR(stats.Mean(), dist.Mean(), 0.005);
}

TEST(ErlangDistTest, ReducesToExponentialForK1) {
  ErlangDist erlang(1, 2.0);
  ExponentialDist expo(2.0);
  for (double t : {0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(erlang.Pdf(t), expo.Pdf(t), 1e-10);
    EXPECT_NEAR(erlang.Cdf(t), expo.Cdf(t), 1e-10);
  }
}

TEST(ErlangDistTest, MomentsAndBoundaries) {
  ErlangDist dist(5, 2.0);
  EXPECT_DOUBLE_EQ(dist.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(dist.Variance(), 1.25);
  EXPECT_EQ(dist.Cdf(0.0), 0.0);
  EXPECT_EQ(dist.Pdf(0.0), 0.0);
  EXPECT_EQ(dist.Pdf(-0.1), 0.0);
  EXPECT_NEAR(dist.Cdf(1e6), 1.0, 1e-12);
}

TEST(ErlangDistTest, CdfIsIntegralOfPdf) {
  ErlangDist dist(3, 1.5);
  for (double t : {0.5, 1.0, 2.0, 5.0}) {
    const double integral = IntegrateAdaptiveSimpson(
        [&dist](double u) { return dist.Pdf(u); }, 0.0, t, 1e-11);
    EXPECT_NEAR(integral, dist.Cdf(t), 1e-8);
  }
}

TEST(ErlangDistTest, CdfMonotoneIncreasing) {
  ErlangDist dist(4, 0.7);
  double prev = 0.0;
  for (double t = 0.0; t < 20.0; t += 0.25) {
    const double cur = dist.Cdf(t);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(ErlangDistTest, SampleMomentsMatch) {
  ErlangDist dist(6, 3.0);
  Random rng(2);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(dist.Sample(rng));
  }
  EXPECT_NEAR(stats.Mean(), dist.Mean(), 0.01);
  EXPECT_NEAR(stats.Variance(), dist.Variance(), 0.02);
}

TEST(ErlangDistTest, LargeShapeRemainsStable) {
  ErlangDist dist(200, 10.0);  // mean 20
  EXPECT_NEAR(dist.Cdf(20.0), 0.5, 0.05);
  EXPECT_NEAR(dist.Cdf(40.0), 1.0, 1e-9);
  EXPECT_NEAR(dist.Cdf(5.0), 0.0, 1e-9);
}

TEST(TwoPhaseLatencyDistTest, PaperPdfFormula) {
  // f(t) = lo*lp/(lo-lp) (e^{-lp t} - e^{-lo t}) from §3.2.
  TwoPhaseLatencyDist dist(3.0, 1.0);
  const double t = 0.8;
  const double expected =
      3.0 * 1.0 / (3.0 - 1.0) * (std::exp(-t) - std::exp(-3.0 * t));
  EXPECT_NEAR(dist.Pdf(t), expected, 1e-12);
  EXPECT_DOUBLE_EQ(dist.Mean(), 1.0 / 3.0 + 1.0);
}

TEST(TwoPhaseLatencyDistTest, CdfIsIntegralOfPdf) {
  TwoPhaseLatencyDist dist(2.0, 5.0);
  for (double t : {0.3, 1.0, 2.5}) {
    const double integral = IntegrateAdaptiveSimpson(
        [&dist](double u) { return dist.Pdf(u); }, 0.0, t, 1e-11);
    EXPECT_NEAR(integral, dist.Cdf(t), 1e-8);
  }
}

TEST(TwoPhaseLatencyDistTest, EqualRatesFallBackToErlang) {
  TwoPhaseLatencyDist dist(2.0, 2.0);
  ErlangDist erlang(2, 2.0);
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(dist.Pdf(t), erlang.Pdf(t), 1e-9);
    EXPECT_NEAR(dist.Cdf(t), erlang.Cdf(t), 1e-9);
  }
}

TEST(TwoPhaseLatencyDistTest, NearEqualRatesContinuous) {
  // The hypoexponential formula must not blow up as rates converge.
  TwoPhaseLatencyDist near_equal(2.0, 2.0 + 1e-12);
  TwoPhaseLatencyDist equal(2.0, 2.0);
  for (double t : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(near_equal.Cdf(t), equal.Cdf(t), 1e-6);
  }
}

TEST(TwoPhaseLatencyDistTest, SampleMomentsMatch) {
  TwoPhaseLatencyDist dist(1.0, 4.0);
  Random rng(3);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(dist.Sample(rng));
  }
  EXPECT_NEAR(stats.Mean(), dist.Mean(), 0.02);
  EXPECT_NEAR(stats.Variance(), dist.Variance(), 0.05);
}

TEST(HypoexponentialTest, SinglePhaseMatchesExponential) {
  HypoexponentialDist dist({2.0});
  ExponentialDist expo(2.0);
  for (double t : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(dist.Cdf(t), expo.Cdf(t), 1e-9);
  }
}

TEST(HypoexponentialTest, EqualRatesMatchErlang) {
  HypoexponentialDist dist({1.5, 1.5, 1.5, 1.5});
  ErlangDist erlang(4, 1.5);
  for (double t : {0.5, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(dist.Cdf(t), erlang.Cdf(t), 1e-9);
  }
}

TEST(HypoexponentialTest, TwoDistinctRatesMatchClosedForm) {
  HypoexponentialDist dist({3.0, 1.0});
  TwoPhaseLatencyDist closed(3.0, 1.0);
  for (double t : {0.2, 0.8, 2.0, 6.0}) {
    EXPECT_NEAR(dist.Cdf(t), closed.Cdf(t), 1e-8);
  }
}

TEST(HypoexponentialTest, RepeatedMixedRatesMatchMonteCarlo) {
  // Rates with repeats — the regime where partial fractions fail and
  // uniformization must be exact.
  const std::vector<double> rates = {2.0, 2.0, 5.0, 5.0, 5.0, 0.7};
  HypoexponentialDist dist(rates);
  Random rng(4);
  const int trials = 400000;
  for (double t : {1.0, 2.5, 5.0}) {
    int below = 0;
    Random local(rng.UniformInt(1u << 30));
    for (int i = 0; i < trials; ++i) {
      if (dist.Sample(local) <= t) ++below;
    }
    const double empirical = below / static_cast<double>(trials);
    EXPECT_NEAR(dist.Cdf(t), empirical, 0.004) << "t=" << t;
  }
}

TEST(HypoexponentialTest, MeanAndVariance) {
  HypoexponentialDist dist({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(dist.Mean(), 1.0 + 0.5 + 0.25);
  EXPECT_DOUBLE_EQ(dist.Variance(), 1.0 + 0.25 + 0.0625);
}

TEST(HypoexponentialTest, WideRateSpreadStable) {
  // Very spread-out rates force the log-space uniformization branch at the
  // tail; the CDF must stay in [0, 1] and be monotone.
  HypoexponentialDist dist({100.0, 100.0, 0.5, 2.0});
  double prev = 0.0;
  for (double t = 0.0; t <= 30.0; t += 0.5) {
    const double c = dist.Cdf(t);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(dist.Cdf(60.0), 1.0, 1e-6);
}

TEST(HypoexponentialDeathTest, RejectsBadRates) {
  EXPECT_DEATH(HypoexponentialDist({}), "HTUNE_CHECK");
  EXPECT_DEATH(HypoexponentialDist({1.0, -1.0}), "HTUNE_CHECK");
}

}  // namespace
}  // namespace htune
