#ifndef HTUNE_OBS_TRACE_H_
#define HTUNE_OBS_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace htune::obs {

/// One finished span. Names are interned string literals (the SpanSite owns
/// them for the life of the process), so records are POD-cheap to copy.
struct SpanRecord {
  const char* name = nullptr;
  /// Process-wide unique id (never 0) and the id of the span that was open
  /// on this thread when this one started (0 = root).
  uint64_t id = 0;
  uint64_t parent_id = 0;
  /// Nanoseconds since the tracer's process-start epoch.
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Nesting depth at start (0 = root), per thread.
  uint32_t depth = 0;
  /// Home metric shard of the emitting thread — a stable small thread tag.
  uint32_t thread = 0;
};

/// Fixed-capacity ring buffer of finished spans. Push overwrites the oldest
/// record once full (and counts the loss), so a long run keeps the freshest
/// tail of timing history at O(capacity) memory. A mutex guards the ring:
/// spans wrap coarse operations (allocator phases, kernel evaluations,
/// review rounds, journal writes), so contention is negligible next to the
/// work they time.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Push(const SpanRecord& record);

  /// The buffered spans, oldest first.
  std::vector<SpanRecord> Drain() const;

  /// Spans overwritten because the ring was full.
  uint64_t dropped() const;

  size_t capacity() const { return capacity_; }

  void Clear();

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<SpanRecord> ring_ HTUNE_GUARDED_BY(mu_);
  size_t next_ HTUNE_GUARDED_BY(mu_) = 0;
  bool wrapped_ HTUNE_GUARDED_BY(mu_) = false;
  uint64_t dropped_ HTUNE_GUARDED_BY(mu_) = 0;
};

/// The process-wide tracer every span records into.
Tracer& GlobalTracer();

/// Nanoseconds since the process-start epoch (steady clock).
uint64_t NowNanos();

/// Per-instrumentation-site state: the interned span name plus the derived
/// counters every completed span feeds ("span.<name>.count" and
/// "span.<name>.total_ns"). Constructed once per site as a function-local
/// static by the HTUNE_OBS_SPAN macro, so the registry lookup happens once
/// and the per-span cost is two relaxed counter adds plus a ring push.
struct SpanSite {
  explicit SpanSite(const char* span_name);

  const char* name;
  Counter* count;
  Counter* total_ns;
};

/// RAII scoped timer. Starting a span makes it the thread's current span;
/// spans opened inside it become its children (parent_id/depth in the
/// record), restoring the parent on destruction — strict stack discipline
/// per thread. When observability is disabled at runtime the constructor
/// takes no clock reading and the destructor does nothing.
class Span {
 public:
  explicit Span(const SpanSite& site);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const SpanSite* site_;  // null when disabled at construction
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace htune::obs

#endif  // HTUNE_OBS_TRACE_H_
