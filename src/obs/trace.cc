#include "obs/trace.h"

#include <chrono>
#include <string>

#include "common/check.h"

namespace htune::obs {

namespace {

std::atomic<uint64_t> g_next_span_id{1};

/// The span currently open on this thread (0 = none) and its depth.
struct ThreadSpanState {
  uint64_t current_id = 0;
  uint32_t depth = 0;
};

ThreadSpanState& ThisThreadSpanState() {
  thread_local ThreadSpanState state;
  return state;
}

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

Tracer::Tracer(size_t capacity) : capacity_(capacity) {
  HTUNE_CHECK_GE(capacity, 1u);
  ring_.reserve(capacity);
}

void Tracer::Push(const SpanRecord& record) {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
    wrapped_ = true;
    ++dropped_;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> Tracer::Drain() const {
  MutexLock lock(mu_);
  if (!wrapped_) {
    return ring_;
  }
  std::vector<SpanRecord> out;
  out.reserve(capacity_);
  out.insert(out.end(), ring_.begin() + static_cast<long>(next_), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(next_));
  return out;
}

uint64_t Tracer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

SpanSite::SpanSite(const char* span_name)
    : name(span_name),
      count(&GlobalMetrics().GetCounter("span." + std::string(span_name) +
                                        ".count")),
      total_ns(&GlobalMetrics().GetCounter("span." + std::string(span_name) +
                                           ".total_ns")) {}

Span::Span(const SpanSite& site) {
  if (!Enabled()) {
    site_ = nullptr;
    return;
  }
  site_ = &site;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  ThreadSpanState& state = ThisThreadSpanState();
  parent_id_ = state.current_id;
  depth_ = state.depth;
  state.current_id = id_;
  ++state.depth;
  start_ns_ = NowNanos();
}

Span::~Span() {
  if (site_ == nullptr) {
    return;
  }
  const uint64_t end_ns = NowNanos();
  ThreadSpanState& state = ThisThreadSpanState();
  state.current_id = parent_id_;
  --state.depth;
  SpanRecord record;
  record.name = site_->name;
  record.id = id_;
  record.parent_id = parent_id_;
  record.start_ns = start_ns_;
  record.duration_ns = end_ns - start_ns_;
  record.depth = depth_;
  record.thread = static_cast<uint32_t>(ThisThreadShard());
  GlobalTracer().Push(record);
  site_->count->Add(1);
  site_->total_ns->Add(record.duration_ns);
}

}  // namespace htune::obs
