#ifndef HTUNE_OBS_OBS_H_
#define HTUNE_OBS_OBS_H_

/// Instrumentation entry points. Include this header (only) at call sites;
/// it is the one place that honors the compile-time HTUNE_OBS_OFF kill
/// switch — with it defined, every macro below expands to a no-op and the
/// observability layer costs nothing, not even the Enabled() load.
///
/// All macros intern their metric lazily in a function-local static on first
/// execution, so steady-state cost is one relaxed Enabled() load plus one
/// relaxed atomic add (counters/histograms) or store (gauges). HTUNE_OBS_SPAN
/// additionally takes two steady_clock readings and one mutex-guarded ring
/// push, which is why spans wrap coarse operations only (allocator phases,
/// kernel evaluations, review rounds, journal writes) — never per-element
/// inner loops.

#include "obs/metrics.h"
#include "obs/trace.h"

#define HTUNE_OBS_CONCAT_INNER_(a, b) a##b
#define HTUNE_OBS_CONCAT_(a, b) HTUNE_OBS_CONCAT_INNER_(a, b)

#ifndef HTUNE_OBS_OFF

/// Adds `delta` (uint64) to the counter named `name` (string literal).
#define HTUNE_OBS_COUNTER_ADD(name, delta)                                \
  do {                                                                    \
    if (::htune::obs::Enabled()) {                                        \
      static ::htune::obs::Counter& HTUNE_OBS_CONCAT_(obs_counter_,       \
                                                      __LINE__) =         \
          ::htune::obs::GlobalMetrics().GetCounter(name);                 \
      HTUNE_OBS_CONCAT_(obs_counter_, __LINE__).Add(delta);               \
    }                                                                     \
  } while (0)

/// Sets the gauge named `name` to `value` (double, last write wins).
#define HTUNE_OBS_GAUGE_SET(name, value)                                  \
  do {                                                                    \
    if (::htune::obs::Enabled()) {                                        \
      static ::htune::obs::Gauge& HTUNE_OBS_CONCAT_(obs_gauge_,           \
                                                    __LINE__) =           \
          ::htune::obs::GlobalMetrics().GetGauge(name);                   \
      HTUNE_OBS_CONCAT_(obs_gauge_, __LINE__).Set(value);                 \
    }                                                                     \
  } while (0)

/// Observes `value` in the fixed-bucket histogram named `name` with shape
/// (lo, hi, num_buckets); the shape is fixed by whichever site runs first.
#define HTUNE_OBS_HISTOGRAM_OBSERVE(name, lo, hi, num_buckets, value)     \
  do {                                                                    \
    if (::htune::obs::Enabled()) {                                        \
      static ::htune::obs::HistogramMetric& HTUNE_OBS_CONCAT_(            \
          obs_histogram_, __LINE__) =                                     \
          ::htune::obs::GlobalMetrics().GetHistogram(name, lo, hi,        \
                                                     num_buckets);        \
      HTUNE_OBS_CONCAT_(obs_histogram_, __LINE__).Observe(value);         \
    }                                                                     \
  } while (0)

/// Opens a RAII span named `name` (string literal) covering the rest of the
/// enclosing scope. Feeds "span.<name>.count" / "span.<name>.total_ns" and
/// pushes a record (with parent/child nesting) into the global tracer ring.
#define HTUNE_OBS_SPAN(name)                                              \
  static const ::htune::obs::SpanSite HTUNE_OBS_CONCAT_(obs_span_site_,   \
                                                        __LINE__){name};  \
  const ::htune::obs::Span HTUNE_OBS_CONCAT_(obs_span_, __LINE__)(        \
      HTUNE_OBS_CONCAT_(obs_span_site_, __LINE__))

#else  // HTUNE_OBS_OFF

/// The arguments are still named (inside dead code the optimizer removes)
/// so values computed only to feed a metric do not trip
/// -Wunused-but-set-variable in the kill-switch build.
#define HTUNE_OBS_COUNTER_ADD(name, delta) \
  do {                                     \
    if (false) {                           \
      static_cast<void>(name);             \
      static_cast<void>(delta);            \
    }                                      \
  } while (0)
#define HTUNE_OBS_GAUGE_SET(name, value) \
  do {                                   \
    if (false) {                         \
      static_cast<void>(name);           \
      static_cast<void>(value);          \
    }                                    \
  } while (0)
#define HTUNE_OBS_HISTOGRAM_OBSERVE(name, lo, hi, num_buckets, value) \
  do {                                                                \
    if (false) {                                                      \
      static_cast<void>(name);                                        \
      static_cast<void>(lo);                                          \
      static_cast<void>(hi);                                          \
      static_cast<void>(num_buckets);                                 \
      static_cast<void>(value);                                       \
    }                                                                 \
  } while (0)
#define HTUNE_OBS_SPAN(name)   \
  do {                         \
    if (false) {               \
      static_cast<void>(name); \
    }                          \
  } while (0)

#endif  // HTUNE_OBS_OFF

#endif  // HTUNE_OBS_OBS_H_
