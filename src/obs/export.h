#ifndef HTUNE_OBS_EXPORT_H_
#define HTUNE_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace htune::obs {

/// Version stamped into every JSON export; bump on any layout change so
/// downstream consumers (tools/bench_report.py) can reject payloads they do
/// not understand.
inline constexpr int kMetricsSchemaVersion = 1;

/// Serializes a snapshot plus span records to schema-versioned JSON:
///   { "schema_version": 1,
///     "counters": {name: uint}, "gauges": {name: double},
///     "histograms": {name: {lo, hi, buckets, underflow, overflow,
///                           nan_count, count}},
///     "spans": [{name, id, parent_id, start_ns, duration_ns, depth,
///                thread}],
///     "spans_dropped": uint }
/// Doubles are printed with %.17g so a round trip through python's float()
/// is exact. Any non-finite double (a gauge or histogram bound holding
/// inf/NaN) is rejected with InvalidArgument — JSON has no encoding for
/// non-finite numbers, and silently emitting "inf" corrupts downstream
/// parsers.
StatusOr<std::string> MetricsToJson(const MetricsSnapshot& snapshot,
                                    const std::vector<SpanRecord>& spans,
                                    uint64_t spans_dropped = 0);

/// Human-readable fixed-width table of the same data: counters, gauges,
/// histogram summaries, then per-span-name aggregate timings.
std::string MetricsToTable(const MetricsSnapshot& snapshot,
                           const std::vector<SpanRecord>& spans,
                           uint64_t spans_dropped = 0);

/// Snapshots the global registry + tracer and writes JSON to `path`, or the
/// table to stdout when `path` is "-".
Status WriteGlobalMetrics(const std::string& path);

}  // namespace htune::obs

#endif  // HTUNE_OBS_EXPORT_H_
