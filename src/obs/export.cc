#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

namespace htune::obs {

namespace {

/// %.17g: the shortest printf format guaranteed to round-trip an IEEE
/// double exactly through text (and python's float()).
std::string DoubleRepr(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Status CheckFinite(const std::string& name, double value) {
  if (!std::isfinite(value)) {
    return Status(StatusCode::kInvalidArgument,
                  "metric '" + name + "' holds non-finite value " +
                      DoubleRepr(value) + "; JSON cannot represent it");
  }
  return Status::OK();
}

/// Per-name aggregate used by the table view.
struct SpanAggregate {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;
};

std::map<std::string, SpanAggregate> AggregateSpans(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanRecord& span : spans) {
    SpanAggregate& agg = by_name[span.name];
    ++agg.count;
    agg.total_ns += span.duration_ns;
    if (span.duration_ns > agg.max_ns) agg.max_ns = span.duration_ns;
  }
  return by_name;
}

}  // namespace

StatusOr<std::string> MetricsToJson(const MetricsSnapshot& snapshot,
                                    const std::vector<SpanRecord>& spans,
                                    uint64_t spans_dropped) {
  std::ostringstream out;
  out << "{\n  \"schema_version\": " << kMetricsSchemaVersion << ",\n";

  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n";

  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    HTUNE_RETURN_IF_ERROR(CheckFinite(name, value));
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << DoubleRepr(value);
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n";

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    HTUNE_RETURN_IF_ERROR(CheckFinite(name + ".lo", histogram.lo));
    HTUNE_RETURN_IF_ERROR(CheckFinite(name + ".hi", histogram.hi));
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name) << "\": {"
        << "\"lo\": " << DoubleRepr(histogram.lo)
        << ", \"hi\": " << DoubleRepr(histogram.hi) << ", \"buckets\": [";
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (i > 0) out << ", ";
      out << histogram.buckets[i];
    }
    out << "], \"underflow\": " << histogram.underflow
        << ", \"overflow\": " << histogram.overflow
        << ", \"nan_count\": " << histogram.nan_count
        << ", \"count\": " << histogram.count << "}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n";

  out << "  \"spans\": [";
  first = true;
  for (const SpanRecord& span : spans) {
    out << (first ? "\n" : ",\n") << "    {\"name\": \""
        << EscapeJson(span.name) << "\", \"id\": " << span.id
        << ", \"parent_id\": " << span.parent_id
        << ", \"start_ns\": " << span.start_ns
        << ", \"duration_ns\": " << span.duration_ns
        << ", \"depth\": " << span.depth << ", \"thread\": " << span.thread
        << "}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n";

  out << "  \"spans_dropped\": " << spans_dropped << "\n}\n";
  return out.str();
}

std::string MetricsToTable(const MetricsSnapshot& snapshot,
                           const std::vector<SpanRecord>& spans,
                           uint64_t spans_dropped) {
  std::ostringstream out;
  char line[256];

  if (!snapshot.counters.empty()) {
    out << "counters\n";
    for (const auto& [name, value] : snapshot.counters) {
      std::snprintf(line, sizeof(line), "  %-44s %20" PRIu64 "\n",
                    name.c_str(), value);
      out << line;
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges\n";
    for (const auto& [name, value] : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "  %-44s %20.6g\n", name.c_str(),
                    value);
      out << line;
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms\n";
    for (const auto& [name, histogram] : snapshot.histograms) {
      std::snprintf(line, sizeof(line),
                    "  %-44s count=%" PRIu64 " range=[%g, %g) underflow=%" PRIu64
                    " overflow=%" PRIu64 " nan=%" PRIu64 "\n",
                    name.c_str(), histogram.count, histogram.lo, histogram.hi,
                    histogram.underflow, histogram.overflow,
                    histogram.nan_count);
      out << line;
    }
  }
  const std::map<std::string, SpanAggregate> by_name = AggregateSpans(spans);
  if (!by_name.empty()) {
    out << "spans (buffered tail";
    if (spans_dropped > 0) out << ", " << spans_dropped << " dropped";
    out << ")\n";
    for (const auto& [name, agg] : by_name) {
      const double mean_us =
          static_cast<double>(agg.total_ns) / static_cast<double>(agg.count) /
          1e3;
      std::snprintf(line, sizeof(line),
                    "  %-44s n=%-8" PRIu64 " total=%.3fms mean=%.1fus "
                    "max=%.1fus\n",
                    name.c_str(), agg.count,
                    static_cast<double>(agg.total_ns) / 1e6, mean_us,
                    static_cast<double>(agg.max_ns) / 1e3);
      out << line;
    }
  }
  return out.str();
}

Status WriteGlobalMetrics(const std::string& path) {
  const MetricsSnapshot snapshot = GlobalMetrics().Snapshot();
  const std::vector<SpanRecord> spans = GlobalTracer().Drain();
  const uint64_t dropped = GlobalTracer().dropped();
  if (path == "-") {
    std::cout << MetricsToTable(snapshot, spans, dropped);
    return Status::OK();
  }
  HTUNE_ASSIGN_OR_RETURN(std::string json,
                         MetricsToJson(snapshot, spans, dropped));
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status(StatusCode::kInternal,
                  "cannot open metrics output file: " + path);
  }
  out << json;
  out.flush();
  if (!out) {
    return Status(StatusCode::kInternal,
                  "failed writing metrics output file: " + path);
  }
  return Status::OK();
}

}  // namespace htune::obs
