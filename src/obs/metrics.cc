#include "obs/metrics.h"

#include <bit>
#include <cmath>

#include "common/check.h"

namespace htune::obs {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<size_t> g_next_shard{0};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

size_t ThisThreadShard() {
  thread_local const size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

void Gauge::Set(double value) {
  bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

double Gauge::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

HistogramMetric::HistogramMetric(double lo, double hi, size_t num_buckets)
    : lo_(lo),
      hi_(hi),
      inv_width_(static_cast<double>(num_buckets) / (hi - lo)),
      num_buckets_(num_buckets) {
  HTUNE_CHECK_LT(lo, hi);
  HTUNE_CHECK_GE(num_buckets, 1u);
  HTUNE_CHECK_LE(num_buckets, 512u);
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<uint64_t>[]>(num_buckets);
    for (size_t i = 0; i < num_buckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void HistogramMetric::Observe(double value) {
  Shard& shard = shards_[ThisThreadShard()];
  if (std::isnan(value)) {
    shard.nan_count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (value < lo_) {
    shard.underflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (value >= hi_) {
    shard.overflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_t index = static_cast<size_t>((value - lo_) * inv_width_);
  // In-range by the guards above; rounding at the top edge clamps.
  if (index >= num_buckets_) index = num_buckets_ - 1;
  shard.buckets[index].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot HistogramMetric::Merge() const {
  HistogramSnapshot merged;
  merged.lo = lo_;
  merged.hi = hi_;
  merged.buckets.assign(num_buckets_, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < num_buckets_; ++i) {
      merged.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    merged.underflow += shard.underflow.load(std::memory_order_relaxed);
    merged.overflow += shard.overflow.load(std::memory_order_relaxed);
    merged.nan_count += shard.nan_count.load(std::memory_order_relaxed);
  }
  merged.count = merged.underflow + merged.overflow + merged.nan_count;
  for (uint64_t b : merged.buckets) merged.count += b;
  return merged;
}

void HistogramMetric::Reset() {
  for (Shard& shard : shards_) {
    for (size_t i = 0; i < num_buckets_; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.underflow.store(0, std::memory_order_relaxed);
    shard.overflow.store(0, std::memory_order_relaxed);
    shard.nan_count.store(0, std::memory_order_relaxed);
  }
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  {
    ReaderMutexLock lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  WriterMutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  {
    ReaderMutexLock lock(mu_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  WriterMutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::GetHistogram(std::string_view name,
                                               double lo, double hi,
                                               size_t num_buckets) {
  const auto check_shape = [lo, hi,
                            num_buckets](const HistogramMetric& histogram) {
    HTUNE_CHECK_EQ(histogram.lo(), lo);
    HTUNE_CHECK_EQ(histogram.hi(), hi);
    HTUNE_CHECK_EQ(histogram.num_buckets(), num_buckets);
  };
  {
    ReaderMutexLock lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      check_shape(*it->second);
      return *it->second;
    }
  }
  WriterMutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<HistogramMetric>(lo, hi, num_buckets))
             .first;
  } else {
    check_shape(*it->second);
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Shared lock: the maps' structure is all this section reads; the
  // metric values themselves are atomics.
  ReaderMutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->Merge());
  }
  return snapshot;
}

void MetricsRegistry::ResetValues() {
  // Shared lock suffices: zeroing goes through each metric's atomics and
  // never mutates the maps.
  ReaderMutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace htune::obs
