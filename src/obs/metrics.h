#ifndef HTUNE_OBS_METRICS_H_
#define HTUNE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace htune::obs {

/// Runtime observability switch. Instrumentation macros (obs.h) check it
/// before touching any metric, so a disabled process pays one relaxed load
/// per site; the overhead bench flips it to measure instrumented vs
/// uninstrumented hot paths in one binary. Defaults to on. Orthogonal to the
/// compile-time HTUNE_OBS_OFF kill switch, which removes the sites outright.
bool Enabled();
void SetEnabled(bool enabled);

/// Number of accumulation shards per metric. Each thread is assigned a home
/// shard round-robin on first use; writers touch only their shard's cache
/// line, readers sum all shards.
inline constexpr size_t kMetricShards = 16;

/// This thread's home shard index in [0, kMetricShards).
size_t ThisThreadShard();

/// Monotonic counter with thread-local sharded accumulation. The same
/// determinism contract as common/parallel: which thread (and therefore
/// which shard) takes each increment is unspecified, but increments are
/// integers and addition over them is exact and commutative, so Value() —
/// and any Snapshot() built from it — is identical for a given set of
/// increments regardless of thread count or scheduling.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins double gauge. Set from one logical site at a time (phase
/// boundaries, run ends); concurrent setters race benignly to one of their
/// values.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value);
  double Value() const;
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Merged read-only view of one histogram (see HistogramMetric).
struct HistogramSnapshot {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<uint64_t> buckets;
  uint64_t underflow = 0;
  uint64_t overflow = 0;
  uint64_t nan_count = 0;
  /// Total observations (bucketed + underflow + overflow + nan).
  uint64_t count = 0;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Fixed-bucket histogram with the same sharded accumulation and determinism
/// contract as Counter: all state is integer bucket counts, so merges are
/// exact. Out-of-range and NaN observations go to explicit counters, never
/// into the edge buckets (the same policy as stats::Histogram).
class HistogramMetric {
 public:
  /// `num_buckets` equal-width buckets spanning [lo, hi); lo < hi and
  /// num_buckets in [1, 512] (fixed small size keeps shards cache-friendly).
  HistogramMetric(double lo, double hi, size_t num_buckets);
  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

  void Observe(double value);

  /// Sums all shards into one snapshot.
  HistogramSnapshot Merge() const;

  void Reset();

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t num_buckets() const { return num_buckets_; }

 private:
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    alignas(64) std::atomic<uint64_t> underflow{0};
    std::atomic<uint64_t> overflow{0};
    std::atomic<uint64_t> nan_count{0};
  };

  double lo_;
  double hi_;
  double inv_width_;
  size_t num_buckets_;
  std::array<Shard, kMetricShards> shards_;
};

/// Merged read-only view of a whole registry. Maps are name-sorted, so two
/// snapshots of identical metric values compare (and export) identically.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Process-wide registry of named metrics. Get* registers on first use and
/// returns a stable reference afterwards — metrics are never deleted, so
/// instrumentation sites may cache the reference (the macros in obs.h do)
/// and write to it lock-free for the life of the process. Registration
/// takes the registry lock exclusively; repeat lookups take it shared and
/// the metric write paths never touch it at all.
///
/// Naming scheme: dot-separated lowercase path, "<subsystem>.<what>[_unit]"
/// — e.g. "allocator.dp_ns", "market.events_dispatched",
/// "journal.appended_bytes". See DESIGN.md §8 for the full taxonomy.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// The shape (lo, hi, num_buckets) is fixed by the first registration;
  /// later calls with a different shape abort (two sites disagreeing on a
  /// metric's buckets is a programming error).
  HistogramMetric& GetHistogram(std::string_view name, double lo, double hi,
                                size_t num_buckets);

  /// Merges every metric into a read-only snapshot.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations survive, so cached
  /// references stay valid). Benches and tests use this between phases.
  void ResetValues();

 private:
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HTUNE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HTUNE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_ HTUNE_GUARDED_BY(mu_);
};

/// The process-wide registry every instrumentation macro records into.
MetricsRegistry& GlobalMetrics();

}  // namespace htune::obs

#endif  // HTUNE_OBS_METRICS_H_
