#include "market/rate_schedule.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace htune {

StatusOr<RateSchedule> RateSchedule::Create(
    std::vector<std::pair<double, double>> breakpoints, double period) {
  if (breakpoints.empty()) {
    return InvalidArgumentError("RateSchedule: need at least one breakpoint");
  }
  if (period <= 0.0) {
    return InvalidArgumentError("RateSchedule: period must be positive");
  }
  if (breakpoints.front().first != 0.0) {
    return InvalidArgumentError("RateSchedule: first breakpoint must be 0");
  }
  for (size_t i = 0; i < breakpoints.size(); ++i) {
    if (breakpoints[i].second <= 0.0) {
      return InvalidArgumentError("RateSchedule: rates must be positive");
    }
    if (i > 0 && breakpoints[i].first <= breakpoints[i - 1].first) {
      return InvalidArgumentError(
          "RateSchedule: breakpoints must be strictly increasing");
    }
    if (breakpoints[i].first >= period) {
      return InvalidArgumentError(
          "RateSchedule: breakpoints must lie inside [0, period)");
    }
  }
  return RateSchedule(std::move(breakpoints), period);
}

RateSchedule RateSchedule::Constant(double rate) {
  HTUNE_CHECK_GT(rate, 0.0);
  return RateSchedule({{0.0, rate}}, 1.0);
}

double RateSchedule::RateAt(double t) const {
  HTUNE_CHECK_GE(t, 0.0);
  const double phase = std::fmod(t, period_);
  // Last breakpoint with start <= phase.
  const auto it = std::upper_bound(
      breakpoints_.begin(), breakpoints_.end(), phase,
      [](double p, const std::pair<double, double>& bp) {
        return p < bp.first;
      });
  HTUNE_CHECK(it != breakpoints_.begin());
  return (it - 1)->second;
}

double RateSchedule::MaxRate() const {
  double max_rate = 0.0;
  for (const auto& [start, rate] : breakpoints_) {
    max_rate = std::max(max_rate, rate);
  }
  return max_rate;
}

double RateSchedule::MeanRate() const {
  double weighted = 0.0;
  for (size_t i = 0; i < breakpoints_.size(); ++i) {
    const double start = breakpoints_[i].first;
    const double end =
        i + 1 < breakpoints_.size() ? breakpoints_[i + 1].first : period_;
    weighted += breakpoints_[i].second * (end - start);
  }
  return weighted / period_;
}

}  // namespace htune
