#include "market/task_store.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace htune {

OpenTask& TaskStore::Insert(TaskId id) {
  // PostTask assigns ids sequentially; the flat index relies on it.
  HTUNE_CHECK_EQ(id, static_cast<TaskId>(id_index_.size()) + 1);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].ResetForReuse();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  id_index_.push_back(static_cast<int64_t>(slot));
  ++open_count_;
  return slots_[slot];
}

OpenTask* TaskStore::FindOpen(TaskId id) {
  const int64_t entry = IndexEntry(id);
  return entry >= 0 ? &slots_[static_cast<size_t>(entry)] : nullptr;
}

const OpenTask* TaskStore::FindOpen(TaskId id) const {
  const int64_t entry = IndexEntry(id);
  return entry >= 0 ? &slots_[static_cast<size_t>(entry)] : nullptr;
}

const TaskOutcome* TaskStore::FindCompleted(TaskId id) const {
  const int64_t entry = IndexEntry(id);
  return entry <= -2 ? &completed_[static_cast<size_t>(-entry - 2)]
                     : nullptr;
}

bool TaskStore::IsKnown(TaskId id) const { return IndexEntry(id) != -1; }

void TaskStore::Complete(TaskId id) {
  const int64_t entry = IndexEntry(id);
  HTUNE_CHECK_GE(entry, 0);
  const uint32_t slot = static_cast<uint32_t>(entry);
  id_index_[id - 1] = -static_cast<int64_t>(completed_.size()) - 2;
  completed_.push_back(std::move(slots_[slot].outcome));
  free_slots_.push_back(slot);
  --open_count_;
}

TaskId TaskStore::LowestOpenId() const {
  for (size_t i = 0; i < id_index_.size(); ++i) {
    if (id_index_[i] >= 0) return static_cast<TaskId>(i + 1);
  }
  return 0;
}

size_t TaskStore::HoldPosition(TaskId id) const {
  return static_cast<size_t>(
      std::lower_bound(hold_ids_.begin(), hold_ids_.end(), id) -
      hold_ids_.begin());
}

void TaskStore::AddOnHold(TaskId id, double accept_prob) {
  const int64_t entry = IndexEntry(id);
  HTUNE_CHECK_GE(entry, 0);
  const size_t pos = HoldPosition(id);
  HTUNE_CHECK(pos == hold_ids_.size() || hold_ids_[pos] != id);
  hold_ids_.insert(hold_ids_.begin() + pos, id);
  hold_slots_.insert(hold_slots_.begin() + pos,
                     static_cast<uint32_t>(entry));
  hold_probs_.insert(hold_probs_.begin() + pos, accept_prob);
  if (accept_prob >= 1.0) ++saturated_count_;
}

void TaskStore::RemoveOnHold(TaskId id) {
  const size_t pos = HoldPosition(id);
  if (pos == hold_ids_.size() || hold_ids_[pos] != id) return;
  if (hold_probs_[pos] >= 1.0) --saturated_count_;
  hold_ids_.erase(hold_ids_.begin() + pos);
  hold_slots_.erase(hold_slots_.begin() + pos);
  hold_probs_.erase(hold_probs_.begin() + pos);
}

void TaskStore::UpdateOnHoldProb(TaskId id, double accept_prob) {
  const size_t pos = HoldPosition(id);
  if (pos == hold_ids_.size() || hold_ids_[pos] != id) return;
  if (hold_probs_[pos] >= 1.0) --saturated_count_;
  hold_probs_[pos] = accept_prob;
  if (accept_prob >= 1.0) ++saturated_count_;
}

void TaskStore::RemoveOnHoldPositions(
    const std::vector<uint32_t>& positions) {
  if (positions.empty()) return;
  const size_t n = hold_ids_.size();
  size_t write = positions.front();
  size_t next = 0;
  for (size_t read = write; read < n; ++read) {
    if (next < positions.size() && positions[next] == read) {
      ++next;
      if (hold_probs_[read] >= 1.0) --saturated_count_;
      continue;
    }
    hold_ids_[write] = hold_ids_[read];
    hold_slots_[write] = hold_slots_[read];
    hold_probs_[write] = hold_probs_[read];
    ++write;
  }
  HTUNE_CHECK_EQ(next, positions.size());
  hold_ids_.resize(write);
  hold_slots_.resize(write);
  hold_probs_.resize(write);
}

void TaskStore::PrepareForRestore(TaskId next_task) {
  HTUNE_CHECK_GE(next_task, 1u);
  id_index_.assign(static_cast<size_t>(next_task - 1), -1);
}

OpenTask* TaskStore::InsertForRestore(TaskId id) {
  const uint64_t pos = id - 1;
  if (id < 1 || pos >= id_index_.size() || id_index_[pos] != -1) {
    return nullptr;
  }
  const uint32_t slot = static_cast<uint32_t>(slots_.size());
  slots_.emplace_back();
  id_index_[pos] = static_cast<int64_t>(slot);
  ++open_count_;
  return &slots_[slot];
}

bool TaskStore::AddCompletedForRestore(TaskOutcome outcome) {
  const TaskId id = outcome.id;
  const uint64_t pos = id - 1;
  if (id < 1 || pos >= id_index_.size() || id_index_[pos] != -1) {
    return false;
  }
  id_index_[pos] = -static_cast<int64_t>(completed_.size()) - 2;
  completed_.push_back(std::move(outcome));
  return true;
}

}  // namespace htune
