#include "market/event_queue.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/check.h"

namespace htune {

namespace {

/// Heap/sort comparator: a "greater" order so std::push_heap builds a
/// min-heap on (time, sequence).
struct EventGreater {
  bool operator()(const MarketEvent& a, const MarketEvent& b) const {
    return EventBefore(b, a);
  }
};

}  // namespace

void BinaryHeapEventQueue::Push(const MarketEvent& event) {
  events_.push_back(event);
  std::push_heap(events_.begin(), events_.end(), EventGreater{});
}

MarketEvent BinaryHeapEventQueue::Pop() {
  HTUNE_CHECK(!events_.empty());
  std::pop_heap(events_.begin(), events_.end(), EventGreater{});
  const MarketEvent event = events_.back();
  events_.pop_back();
  return event;
}

std::vector<MarketEvent> BinaryHeapEventQueue::SortedSnapshot() const {
  std::vector<MarketEvent> sorted = events_;
  std::sort(sorted.begin(), sorted.end(), EventBefore);
  return sorted;
}

void BinaryHeapEventQueue::Assign(std::vector<MarketEvent> events) {
  events_ = std::move(events);
  std::make_heap(events_.begin(), events_.end(), EventGreater{});
}

CalendarEventQueue::CalendarEventQueue() : buckets_(kMinBuckets) {}

uint64_t CalendarEventQueue::VirtualBucket(double time) const {
  // A zero or subnormal width makes the division meaningless (time / width_
  // jumps straight to inf, or to a bucket index so large every event lands
  // in a different year): treat it as overflow so the caller degrades to
  // the single sorted bucket instead of dividing.
  if (!(width_ >= std::numeric_limits<double>::min())) return kOverflowBucket;
  const double q = time / width_;
  // 2^62: far below the uint64 cast limit, far above any simulated horizon.
  if (!(q >= 0.0) || q >= 4.611686018427388e18) return kOverflowBucket;
  return static_cast<uint64_t>(q);
}

void CalendarEventQueue::InsertIntoBucket(const MarketEvent& event) {
  size_t idx = 0;
  if (!overflow_) {
    const uint64_t vb = VirtualBucket(event.time);
    if (vb == kOverflowBucket) {
      // Degrade to a single sorted bucket; exact order is preserved, only
      // the amortized-O(1) hashing is lost.
      std::vector<MarketEvent> all;
      all.reserve(size_ + 1);
      for (std::vector<MarketEvent>& bucket : buckets_) {
        all.insert(all.end(), bucket.begin(), bucket.end());
        bucket.clear();
      }
      overflow_ = true;
      std::sort(all.begin(), all.end(), EventGreater{});
      buckets_[0] = std::move(all);
    } else {
      idx = static_cast<size_t>(vb) & bucket_mask_;
    }
  }
  std::vector<MarketEvent>& bucket = buckets_[idx];
  // Descending (time, sequence): the bucket minimum lives at the back.
  bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), event,
                                 EventGreater{}),
                event);
}

void CalendarEventQueue::Push(const MarketEvent& event) {
  if (size_ == 0 || EventBefore(event, min_)) {
    min_ = event;
  }
  InsertIntoBucket(event);
  ++size_;
  if (!overflow_ && size_ > buckets_.size() * 2 &&
      buckets_.size() < (size_t{1} << 20)) {
    Resize(buckets_.size() * 2);
  }
}

MarketEvent CalendarEventQueue::Pop() {
  HTUNE_CHECK_GT(size_, 0u);
  const MarketEvent popped = min_;
  const size_t idx =
      overflow_ ? 0
                : static_cast<size_t>(VirtualBucket(popped.time)) &
                      bucket_mask_;
  std::vector<MarketEvent>& bucket = buckets_[idx];
  HTUNE_CHECK(!bucket.empty());
  bucket.pop_back();
  --size_;
  if (size_ > 0) {
    FindMinAfterPop(popped.time);
    if (!overflow_ && buckets_.size() > kMinBuckets &&
        size_ < buckets_.size() / 4) {
      Resize(buckets_.size() / 2);
    }
  }
  return popped;
}

void CalendarEventQueue::FindMinAfterPop(double popped_time) {
  if (overflow_) {
    min_ = buckets_[0].back();
    return;
  }
  // Every remaining event is >= the popped minimum, so its virtual bucket
  // is >= the popped one: scan forward in calendar order. The first bucket
  // whose minimum (its back) falls inside the scanned year holds the global
  // minimum; a bucket whose minimum lies in a later year contributes no
  // event to this year at all (its other events are even later). A full
  // wrap without a year hit means the minimum is simply the best
  // bucket-minimum seen.
  const uint64_t start = VirtualBucket(popped_time);
  bool have_best = false;
  MarketEvent best;
  for (size_t k = 0; k < buckets_.size(); ++k) {
    const uint64_t virtual_bucket = start + k;
    const std::vector<MarketEvent>& bucket =
        buckets_[static_cast<size_t>(virtual_bucket) & bucket_mask_];
    if (bucket.empty()) continue;
    const MarketEvent& candidate = bucket.back();
    if (VirtualBucket(candidate.time) == virtual_bucket) {
      min_ = candidate;
      return;
    }
    if (!have_best || EventBefore(candidate, best)) {
      best = candidate;
      have_best = true;
    }
  }
  HTUNE_CHECK(have_best);
  min_ = best;
}

void CalendarEventQueue::Resize(size_t target_buckets) {
  std::vector<MarketEvent> all;
  all.reserve(size_);
  for (std::vector<MarketEvent>& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  const size_t saved = size_;
  // Fit the width to the live population: ~3 events per bucket-year keeps
  // both the per-bucket insertion sort and the year scan short.
  if (!all.empty()) {
    double lo = all.front().time;
    double hi = lo;
    for (const MarketEvent& event : all) {
      lo = std::min(lo, event.time);
      hi = std::max(hi, event.time);
    }
    const double span = hi - lo;
    double width = span > 0.0 ? 3.0 * span / static_cast<double>(all.size())
                              : 1.0;
    // Every sampled inter-event gap being zero (a same-timestamp flood)
    // yields span == 0; a span of a few ulps divided by a large population
    // can underflow to a subnormal. Either way the fitted width would send
    // time / width_ to inf in VirtualBucket, so require a normal positive
    // width and otherwise fall back to unit-width buckets (same-timestamp
    // events then share one bucket, which is exactly the degenerate
    // population's optimal layout).
    if (!(width >= std::numeric_limits<double>::min()) ||
        !std::isfinite(width)) {
      width = 1.0;
    }
    width_ = width;
  } else {
    width_ = 1.0;
  }
  buckets_.resize(target_buckets);
  bucket_mask_ = target_buckets - 1;
  overflow_ = false;
  size_ = 0;
  for (const MarketEvent& event : all) {
    if (size_ == 0 || EventBefore(event, min_)) min_ = event;
    InsertIntoBucket(event);
    ++size_;
  }
  HTUNE_CHECK_EQ(size_, saved);
}

void CalendarEventQueue::Clear() {
  for (std::vector<MarketEvent>& bucket : buckets_) bucket.clear();
  size_ = 0;
  overflow_ = false;
  width_ = 1.0;
}

std::vector<MarketEvent> CalendarEventQueue::SortedSnapshot() const {
  std::vector<MarketEvent> sorted;
  sorted.reserve(size_);
  for (const std::vector<MarketEvent>& bucket : buckets_) {
    sorted.insert(sorted.end(), bucket.begin(), bucket.end());
  }
  std::sort(sorted.begin(), sorted.end(), EventBefore);
  return sorted;
}

void CalendarEventQueue::Assign(std::vector<MarketEvent> events) {
  Clear();
  size_t target = kMinBuckets;
  while (target < events.size() && target < (size_t{1} << 20)) target *= 2;
  // Resize on the incoming population: stash the events in bucket 0 and let
  // the rebuild fit the width and redistribute.
  buckets_[0] = std::move(events);
  size_ = buckets_[0].size();
  Resize(target);
}

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueImpl impl) {
  switch (impl) {
    case EventQueueImpl::kBinaryHeap:
      return std::make_unique<BinaryHeapEventQueue>();
    case EventQueueImpl::kCalendar:
      break;
  }
  return std::make_unique<CalendarEventQueue>();
}

}  // namespace htune
