#ifndef HTUNE_MARKET_RATE_SCHEDULE_H_
#define HTUNE_MARKET_RATE_SCHEDULE_H_

#include <utility>
#include <vector>

#include "common/statusor.h"

namespace htune {

/// A time-varying worker-arrival intensity: piecewise-constant over one
/// period, repeated cyclically. Models the daily/weekly workforce
/// fluctuation the paper observes on AMT (§3, Worker definition) and then
/// assumes away; the fluctuation bench quantifies what that assumption
/// costs.
class RateSchedule {
 public:
  /// Builds a cyclic schedule from (segment_start, rate) breakpoints over
  /// [0, period). Breakpoints must start at 0, be strictly increasing,
  /// stay below `period`, and carry positive rates. A single breakpoint
  /// yields a constant schedule.
  static StatusOr<RateSchedule> Create(
      std::vector<std::pair<double, double>> breakpoints, double period);

  /// Constant schedule at `rate`.
  static RateSchedule Constant(double rate);

  /// Arrival intensity at absolute time `t` (>= 0).
  double RateAt(double t) const;

  /// Largest rate over the cycle — the thinning envelope for
  /// nonhomogeneous Poisson generation.
  double MaxRate() const;

  /// Average rate over one full cycle.
  double MeanRate() const;

  double period() const { return period_; }

 private:
  RateSchedule(std::vector<std::pair<double, double>> breakpoints,
               double period)
      : breakpoints_(std::move(breakpoints)), period_(period) {}

  std::vector<std::pair<double, double>> breakpoints_;
  double period_;
};

}  // namespace htune

#endif  // HTUNE_MARKET_RATE_SCHEDULE_H_
