#ifndef HTUNE_MARKET_TRACE_IO_H_
#define HTUNE_MARKET_TRACE_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "market/events.h"

namespace htune {

/// Renders a trace as CSV with header
/// "time,kind,worker,task,repetition". Deterministic output for
/// deterministic traces; intended for offline analysis of bench runs.
std::string TraceToCsv(const std::vector<TraceEvent>& trace);

/// Writes `TraceToCsv(trace)` to `path`. Returns an Internal error when the
/// file cannot be written.
Status WriteTraceCsv(const std::vector<TraceEvent>& trace,
                     const std::string& path);

/// Inverse of TraceEventKindToString; InvalidArgument for unknown names.
StatusOr<TraceEventKind> TraceEventKindFromString(std::string_view name);

/// Parses the CSV produced by TraceToCsv back into events. Round-trips
/// exactly: TraceToCsv(*ParseTraceCsv(csv)) == csv for any csv the writer
/// produced (times are serialized at fixed precision, so the writer-parser
/// composition is the identity on the textual form). InvalidArgument with a
/// line-numbered message on malformed input, on negative or NaN timestamps,
/// and on a timestamp that goes backwards within one task's event sequence
/// (worker arrivals, task id 0, are checked as their own sequence).
StatusOr<std::vector<TraceEvent>> ParseTraceCsv(std::string_view csv);

/// Reads `path` and parses it. NotFound when the file cannot be read.
StatusOr<std::vector<TraceEvent>> ReadTraceCsv(const std::string& path);

/// Aggregate statistics computed from completed task outcomes.
struct TraceSummary {
  size_t tasks = 0;
  size_t repetitions = 0;
  double mean_on_hold = 0.0;
  double mean_processing = 0.0;
  double max_task_latency = 0.0;
  /// Fraction of repetitions answered incorrectly.
  double error_rate = 0.0;
  long total_paid = 0;
  /// Accepted attempts abandoned by workers (unpaid, reposted).
  size_t abandoned_attempts = 0;
  /// Acceptance-window expiries that forced a repost.
  size_t expired_posts = 0;
  /// Re-exposures of a repetition after abandonment or expiry (kReposted
  /// events); the total churn the market absorbed to finish the job.
  size_t reposted_posts = 0;
};

/// Summarizes a set of completed outcomes; returns InvalidArgument when
/// `outcomes` is empty or contains an incomplete task.
StatusOr<TraceSummary> SummarizeOutcomes(
    const std::vector<TaskOutcome>& outcomes);

/// Human-readable one-paragraph rendering of a summary.
std::string SummaryToString(const TraceSummary& summary);

}  // namespace htune

#endif  // HTUNE_MARKET_TRACE_IO_H_
