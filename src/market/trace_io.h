#ifndef HTUNE_MARKET_TRACE_IO_H_
#define HTUNE_MARKET_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "market/events.h"

namespace htune {

/// Renders a trace as CSV with header
/// "time,kind,worker,task,repetition". Deterministic output for
/// deterministic traces; intended for offline analysis of bench runs.
std::string TraceToCsv(const std::vector<TraceEvent>& trace);

/// Writes `TraceToCsv(trace)` to `path`. Returns an Internal error when the
/// file cannot be written.
Status WriteTraceCsv(const std::vector<TraceEvent>& trace,
                     const std::string& path);

/// Aggregate statistics computed from completed task outcomes.
struct TraceSummary {
  size_t tasks = 0;
  size_t repetitions = 0;
  double mean_on_hold = 0.0;
  double mean_processing = 0.0;
  double max_task_latency = 0.0;
  /// Fraction of repetitions answered incorrectly.
  double error_rate = 0.0;
  long total_paid = 0;
};

/// Summarizes a set of completed outcomes; returns InvalidArgument when
/// `outcomes` is empty or contains an incomplete task.
StatusOr<TraceSummary> SummarizeOutcomes(
    const std::vector<TaskOutcome>& outcomes);

/// Human-readable one-paragraph rendering of a summary.
std::string SummaryToString(const TraceSummary& summary);

}  // namespace htune

#endif  // HTUNE_MARKET_TRACE_IO_H_
