#ifndef HTUNE_MARKET_SHARED_STREAM_H_
#define HTUNE_MARKET_SHARED_STREAM_H_

#include <cstddef>
#include <cstdint>

#include "rng/random.h"

namespace htune {

/// One worker arrival as the shared stream reports it.
struct SharedArrival {
  /// Simulated epoch of the arrival.
  double time = 0.0;
  /// Sequential worker id (0-based since construction/restore lineage).
  uint64_t worker = 0;
  /// True when the worker accepted a candidate.
  bool accepted = false;
  /// Index into the caller's candidate weights when `accepted`.
  size_t candidate = 0;
};

/// Serializable dynamic state of a SharedArrivalStream (see
/// MarketState for the pattern: configuration is NOT captured; restore
/// reconstructs the stream from the same arrival rate and feeds this back).
struct SharedStreamState {
  double now = 0.0;
  double next_arrival_time = 0.0;
  uint64_t arrivals = 0;
  Random::State rng;
};

/// ONE Poisson worker-arrival process split across competing consumers by
/// proportional thinning — the multiplexing seam under the multi-job
/// platform engine. Where MarketSimulator models each open repetition's
/// acceptance as an *independent* thinning of its own arrival stream (a
/// worker may accept several tasks; §3.1.2), the shared stream models the
/// contended marketplace: each arriving worker accepts at most one of the
/// candidate repetitions, chosen proportionally to its posted weight
/// w_i = curve(price_i).
///
/// Per arrival the stream computes W = sum of the candidate weights
/// (strictly left to right — callers must present candidates in a
/// deterministic order, and the same order after a restore, because float
/// accumulation order is part of the bitwise-resume contract), sets
/// T = max(arrival_rate, W), draws ONE uniform u, and accepts the candidate
/// whose cumulative-weight interval contains u * T; u * T >= W means the
/// worker walks away. Exactly two uniforms are consumed per arrival (the
/// next interarrival Exponential and the selection draw) regardless of the
/// candidate count, so the draw stream depends only on the number of
/// arrivals — never on who is competing.
///
/// The law this yields per candidate: while W <= arrival_rate (the market
/// is unsaturated) the acceptance process of candidate i is Poisson with
/// rate exactly w_i — the same marginal law the isolated simulator gives a
/// task posted at that price. Once W exceeds the arrival rate, every
/// candidate's rate is diluted by the common factor arrival_rate / W: one
/// job raising its price (weight) drains every rival's effective rate
/// through the shared denominator. Two identical saturating jobs therefore
/// each see half the acceptance rate either would see alone.
class SharedArrivalStream {
 public:
  /// `arrival_rate` is the Poisson intensity of worker arrivals (must be
  /// positive and finite); `seed` fully determines the stream.
  SharedArrivalStream(double arrival_rate, uint64_t seed);

  SharedArrivalStream(const SharedArrivalStream&) = delete;
  SharedArrivalStream& operator=(const SharedArrivalStream&) = delete;

  /// Epoch of the next arrival (peek; Step advances to it).
  double NextArrivalTime() const { return next_arrival_time_; }

  /// Current simulated time (epoch of the last arrival stepped to).
  double now() const { return now_; }

  /// Workers that have arrived so far.
  uint64_t arrivals() const { return arrivals_; }

  /// The configured Poisson intensity.
  double arrival_rate() const { return arrival_rate_; }

  /// Advances to the next arrival and lets that worker pick among
  /// `weights[0..n)` proportionally, as described above. Weights must be
  /// non-negative and finite; a zero-weight candidate is never selected.
  /// Always consumes exactly two uniforms, even when n == 0.
  SharedArrival Step(const double* weights, size_t n);

  /// The raw material of one Step: the arrival epoch, worker id, and the
  /// selection uniform, before any weight layout is applied.
  struct Draw {
    double time = 0.0;
    uint64_t worker = 0;
    /// The selection uniform in [0, 1). The worker accepts the candidate
    /// whose cumulative-weight interval contains selector * max(rate, W).
    double selector = 0.0;
  };

  /// Low-level variant of Step for hierarchical selectors (the multi-job
  /// platform engine walks cached per-job totals instead of a flat weight
  /// array). Consumes the same two uniforms Step would, so flat and
  /// hierarchical callers share one draw discipline; the caller applies
  /// the documented threshold rule selector * max(arrival_rate, W) < W
  /// against its own left-to-right accumulation.
  Draw StepDraw();

  /// Left-to-right sum of `weights[0..n)` — the exact W the selection in
  /// Step uses. Exposed so rate-dilution observers (DilutedCurve) compute
  /// bitwise the same total from the same candidate order.
  static double TotalWeight(const double* weights, size_t n);

  /// Complete dynamic state for a checkpoint; restoring it into a stream
  /// constructed with the same arrival rate continues bitwise-identically.
  SharedStreamState CaptureState() const;
  void RestoreState(const SharedStreamState& state);

 private:
  // HTUNE_TRANSIENT: construction-time config, identical across resume
  double arrival_rate_;
  Random rng_;
  double now_ = 0.0;
  double next_arrival_time_;
  uint64_t arrivals_ = 0;
};

}  // namespace htune

#endif  // HTUNE_MARKET_SHARED_STREAM_H_
