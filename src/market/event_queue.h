#ifndef HTUNE_MARKET_EVENT_QUEUE_H_
#define HTUNE_MARKET_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "market/events.h"

namespace htune {

/// A scheduled simulator event: the in-flight repetition finishing
/// (kCompletion), the in-flight repetition being returned unanswered
/// (kAbandon), or the exposed repetition's acceptance window lapsing
/// (kExpiry). Expiry events carry the exposure generation they were armed
/// for; a stale generation (the repetition got accepted or reposted in the
/// meantime) makes the event a no-op.
struct MarketEvent {
  enum class Kind : uint8_t { kCompletion, kAbandon, kExpiry };
  double time = 0.0;
  uint64_t sequence = 0;
  TaskId task = 0;
  Kind kind = Kind::kCompletion;
  uint64_t generation = 0;
};

/// The simulator's total order on events: time, with the monotone push
/// sequence breaking ties. Every EventQueue implementation must pop in
/// exactly this order — the order is part of the bitwise-determinism
/// contract, not a performance detail.
inline bool EventBefore(const MarketEvent& a, const MarketEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.sequence < b.sequence;
}

/// Priority queue of pending market events, minimum (time, sequence) first.
/// Implementations must agree on the pop order exactly; they may differ in
/// internal layout, which is why snapshots store SortedSnapshot() (the
/// canonical order) rather than any internal representation, and Assign()
/// accepts the events in any permutation.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void Push(const MarketEvent& event) = 0;
  /// Removes and returns the minimum event. Requires !empty().
  virtual MarketEvent Pop() = 0;
  /// The minimum event without removing it. Requires !empty().
  virtual const MarketEvent& Min() const = 0;
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }
  /// Drops all events and releases per-run bookkeeping (bucket capacity may
  /// be retained for reuse).
  virtual void Clear() = 0;
  /// All pending events in the canonical (time, sequence) order — the
  /// snapshot-v2 wire order.
  virtual std::vector<MarketEvent> SortedSnapshot() const = 0;
  /// Replaces the queue contents with `events` (any order; duplicates are
  /// the caller's bug). Used by RestoreState.
  virtual void Assign(std::vector<MarketEvent> events) = 0;
};

/// Reference implementation: std::push_heap/std::pop_heap over a vector —
/// the engine the simulator shipped with before the calendar queue. Kept as
/// the equivalence oracle (tests drive both queues through identical
/// schedules) and as a fallback.
class BinaryHeapEventQueue final : public EventQueue {
 public:
  void Push(const MarketEvent& event) override;
  MarketEvent Pop() override;
  const MarketEvent& Min() const override { return events_.front(); }
  size_t size() const override { return events_.size(); }
  void Clear() override { events_.clear(); }
  std::vector<MarketEvent> SortedSnapshot() const override;
  void Assign(std::vector<MarketEvent> events) override;

 private:
  /// Min-heap on (time, sequence).
  std::vector<MarketEvent> events_;
};

/// Calendar queue (R. Brown, CACM 1988): events hash into time buckets of
/// width `width_`; each bucket holds its events sorted descending so the
/// bucket minimum pops from the back in O(1). With the width tracking the
/// mean event spacing, Push and Pop are amortized O(1) versus the binary
/// heap's O(log n) — and, more importantly for this workload, a Push of a
/// far-future expiry does not touch the path to the near-term minimum.
///
/// The global minimum is cached, so Min() — called once per simulator loop
/// iteration to race the next worker arrival — is a field read. After a Pop
/// the successor is found by scanning buckets in calendar order from the
/// popped event's virtual bucket, which visits O(1) buckets in the common
/// case; a full wrap falls back to taking the best bucket-minimum seen
/// (the classic direct search).
///
/// Bucket count and width adapt by powers of two when the population
/// doubles or quarters, rebuilding from the events themselves, so the
/// structure depends only on queue content — never on wall-clock state —
/// and stays deterministic. Times so large that time/width overflows the
/// bucket arithmetic (>= 2^62 virtual buckets) degrade to a single sorted
/// bucket, which is slower but still pops in exact order.
class CalendarEventQueue final : public EventQueue {
 public:
  CalendarEventQueue();

  void Push(const MarketEvent& event) override;
  MarketEvent Pop() override;
  const MarketEvent& Min() const override { return min_; }
  size_t size() const override { return size_; }
  void Clear() override;
  std::vector<MarketEvent> SortedSnapshot() const override;
  void Assign(std::vector<MarketEvent> events) override;

 private:
  /// Virtual (un-wrapped) bucket of `time`; kOverflow when the division
  /// leaves the exactly-representable range.
  uint64_t VirtualBucket(double time) const;
  void InsertIntoBucket(const MarketEvent& event);
  /// Recomputes min_ by scanning from the popped event's virtual bucket.
  void FindMinAfterPop(double popped_time);
  /// Rebuilds with a bucket count/width fitted to the current population.
  void Resize(size_t target_buckets);

  static constexpr uint64_t kOverflowBucket = ~uint64_t{0};
  static constexpr size_t kMinBuckets = 8;

  std::vector<std::vector<MarketEvent>> buckets_;
  size_t bucket_mask_ = kMinBuckets - 1;
  double width_ = 1.0;
  size_t size_ = 0;
  bool overflow_ = false;
  MarketEvent min_;
};

/// Queue implementation selector carried by MarketConfig.
enum class EventQueueImpl : uint8_t {
  kCalendar,    ///< default: CalendarEventQueue
  kBinaryHeap,  ///< reference oracle
};

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueImpl impl);

}  // namespace htune

#endif  // HTUNE_MARKET_EVENT_QUEUE_H_
