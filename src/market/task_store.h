#ifndef HTUNE_MARKET_TASK_STORE_H_
#define HTUNE_MARKET_TASK_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "market/events.h"
#include "market/task.h"

namespace htune {

/// Dense slot-indexed store of a market's tasks, replacing the former
/// `std::map<TaskId, OpenTask>` / `std::map<TaskId, TaskOutcome>` pair.
///
/// TaskIds are assigned sequentially from 1, so a flat array indexed by
/// id-1 resolves any id in O(1) with no hashing and no pointer chasing:
/// each entry encodes unknown (-1), an open task's slot (>= 0), or a
/// completed task's position in the completion-order vector (-(pos + 2)).
/// Open tasks live in stable slots recycled through a free list; recycling
/// keeps each slot's repetition vectors' capacity, so a long posting
/// sequence stops allocating once the fleet size plateaus (the "arena"
/// behaviour of the perf rewrite). Completed outcomes are stored in
/// completion order, which makes CompletedOutcomes() a free const
/// reference instead of a map walk that deep-copied every outcome.
///
/// The store also maintains the on-hold index: the tasks whose exposed
/// repetition is awaiting a worker, as parallel arrays sorted by TaskId
/// (ids / slots / acceptance probabilities). StepWorkerArrival — the
/// simulator's inner loop — scans only these arrays, touching 8 bytes per
/// candidate instead of a map node, in exactly the TaskId order the old
/// full-map scan used (the RNG draw order contract). The probability array
/// is maintained on expose/reprice so the scan performs no indirection at
/// all, and `saturated_count()` reports how many entries would accept with
/// probability >= 1 (those consume no RNG draw, so the batched-uniform
/// fast path must be disabled while any exist).
class TaskStore {
 public:
  /// Creates the slot for a new task id, which must be the next sequential
  /// id (1, 2, ...). The returned task is reset (vectors cleared, capacity
  /// retained from the slot's previous tenant) and owned by the store;
  /// the reference is invalidated by the next Insert (slot storage may
  /// grow), like any vector element.
  OpenTask& Insert(TaskId id);

  /// The open task with `id`, or nullptr when unknown or completed. The
  /// pointer is invalidated by the next Insert.
  OpenTask* FindOpen(TaskId id);
  const OpenTask* FindOpen(TaskId id) const;

  /// The completed outcome for `id`, or nullptr when unknown or open.
  const TaskOutcome* FindCompleted(TaskId id) const;

  bool IsKnown(TaskId id) const;

  /// Moves `id`'s outcome into the completed list (in completion order) and
  /// recycles its slot. The task must be open and off hold.
  void Complete(TaskId id);

  size_t open_count() const { return open_count_; }

  /// Completed outcomes in completion order.
  const std::vector<TaskOutcome>& completed() const { return completed_; }

  /// Smallest open id, or 0 when none (diagnostics only; O(ids)).
  TaskId LowestOpenId() const;

  /// Calls `fn(id, task)` for every open task in ascending id order
  /// (O(ids); used by CaptureState, not the hot loop).
  template <typename Fn>
  void ForEachOpenInIdOrder(Fn&& fn) const {
    for (size_t i = 0; i < id_index_.size(); ++i) {
      const int64_t entry = id_index_[i];
      if (entry >= 0) {
        fn(static_cast<TaskId>(i + 1), slots_[static_cast<size_t>(entry)]);
      }
    }
  }

  // On-hold index -----------------------------------------------------

  /// Adds `id` (currently open, not in the index) with the given
  /// acceptance probability.
  void AddOnHold(TaskId id, double accept_prob);
  /// Removes `id` from the index. No-op when absent.
  void RemoveOnHold(TaskId id);
  /// Updates `id`'s acceptance probability if it is in the index.
  void UpdateOnHoldProb(TaskId id, double accept_prob);

  size_t on_hold_count() const { return hold_ids_.size(); }
  size_t saturated_count() const { return saturated_count_; }
  const TaskId* on_hold_ids() const { return hold_ids_.data(); }
  const double* on_hold_probs() const { return hold_probs_.data(); }
  /// The open task at on-hold position `i` (O(1) via the slot array).
  OpenTask& on_hold_task(size_t i) { return slots_[hold_slots_[i]]; }

  /// Removes the entries at `positions` (strictly ascending) in one
  /// compaction pass; used by the arrival scan to drop accepted tasks.
  void RemoveOnHoldPositions(const std::vector<uint32_t>& positions);

  // Restore path ------------------------------------------------------
  // RestoreState builds a fresh store off to the side and move-assigns it
  // over the live one only after full validation, so these never run on a
  // store with live state.

  /// Pre-sizes the id index for ids in [1, next_task).
  void PrepareForRestore(TaskId next_task);
  /// Creates the slot for an arbitrary id < next_task. nullptr on a
  /// duplicate or out-of-range id.
  OpenTask* InsertForRestore(TaskId id);
  /// Appends a completed outcome (in completion order). False on a
  /// duplicate or out-of-range id.
  bool AddCompletedForRestore(TaskOutcome outcome);

 private:
  int64_t IndexEntry(TaskId id) const {
    const uint64_t pos = id - 1;
    return id >= 1 && pos < id_index_.size() ? id_index_[pos] : -1;
  }
  size_t HoldPosition(TaskId id) const;

  /// id -> -1 (unknown), slot (>= 0), or -(completed_pos + 2).
  std::vector<int64_t> id_index_;
  std::vector<OpenTask> slots_;
  std::vector<uint32_t> free_slots_;
  size_t open_count_ = 0;
  std::vector<TaskOutcome> completed_;

  /// Parallel arrays sorted by TaskId (struct-of-arrays so the hot scan
  /// reads only ids+probs).
  std::vector<TaskId> hold_ids_;
  std::vector<uint32_t> hold_slots_;
  std::vector<double> hold_probs_;
  size_t saturated_count_ = 0;
};

}  // namespace htune

#endif  // HTUNE_MARKET_TASK_STORE_H_
