#ifndef HTUNE_MARKET_EVENTS_H_
#define HTUNE_MARKET_EVENTS_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace htune {

/// Opaque identifier for a task posted on the market.
using TaskId = uint64_t;

/// Opaque identifier for a worker who arrived at the market.
using WorkerId = uint64_t;

/// What happened at a point in simulated time.
enum class TraceEventKind {
  /// A worker entered the marketplace (Poisson arrival).
  kWorkerArrival,
  /// A worker accepted an open repetition of a task (end of on-hold phase).
  kTaskAccepted,
  /// A worker returned the answer for a repetition (end of processing).
  kRepetitionCompleted,
  /// All repetitions of a task finished.
  kTaskCompleted,
  /// A worker returned an accepted repetition without answering: no payment,
  /// the repetition goes back on hold (the AMT "return HIT" failure mode).
  kAbandoned,
  /// The exposed repetition's acceptance window lapsed with no taker.
  kExpired,
  /// An abandoned or expired repetition was re-exposed to workers.
  kReposted,
};

std::string_view TraceEventKindToString(TraceEventKind kind);

/// One entry in the market's event trace. Fields that do not apply to the
/// event kind are zero.
struct TraceEvent {
  double time = 0.0;
  TraceEventKind kind = TraceEventKind::kWorkerArrival;
  WorkerId worker = 0;
  TaskId task = 0;
  /// 1-based repetition index within the task.
  int repetition = 0;
};

/// Outcome of one completed repetition.
struct RepetitionOutcome {
  /// Simulated time the repetition was posted (became accept-able).
  double posted_time = 0.0;
  /// Simulated time a worker accepted it.
  double accepted_time = 0.0;
  /// Simulated time the answer came back.
  double completed_time = 0.0;
  /// Which worker answered.
  WorkerId worker = 0;
  /// Payment units promised for this repetition at acceptance time.
  int price = 0;
  /// The answer returned (option index); equals the task's true answer
  /// unless the worker erred.
  int answer = 0;
  /// Whether the returned answer matches the task's ground truth.
  bool correct = true;

  /// On-hold latency of this repetition.
  double OnHoldLatency() const { return accepted_time - posted_time; }
  /// Processing latency of this repetition.
  double ProcessingLatency() const { return completed_time - accepted_time; }
};

/// Final record of a completed task.
struct TaskOutcome {
  TaskId id = 0;
  /// Time the task was first posted.
  double posted_time = 0.0;
  /// Time the final repetition's answer arrived; the task's latency is
  /// completed_time - posted_time.
  double completed_time = 0.0;
  std::vector<RepetitionOutcome> repetitions;
  /// Accepted attempts a worker abandoned before answering. Abandoned
  /// attempts are not paid and do not appear in `repetitions` (each
  /// successful repetition's posted_time is its last re-exposure); their
  /// cost shows up only in the task's overall latency.
  int abandoned_attempts = 0;
  /// Times an exposed repetition's acceptance window lapsed and the
  /// repetition was reposted.
  int expired_posts = 0;
  /// Times a repetition of this task was re-exposed to workers (kReposted
  /// trace events): one per abandoned attempt and one per expired post.
  /// Surfaced separately so repost storms are visible without a trace.
  int reposted_posts = 0;

  double Latency() const { return completed_time - posted_time; }
};

}  // namespace htune

#endif  // HTUNE_MARKET_EVENTS_H_
