#include "market/fault_schedule.h"

#include <algorithm>
#include <string>
#include <utility>

namespace htune {

FaultSchedule::FaultSchedule(std::vector<FaultWindow> windows)
    : windows_(std::move(windows)) {}

StatusOr<FaultSchedule> FaultSchedule::Create(
    std::vector<FaultWindow> windows) {
  if (windows.empty()) {
    return InvalidArgumentError("FaultSchedule: need at least one window");
  }
  for (const FaultWindow& w : windows) {
    if (w.start < 0.0 || w.end <= w.start) {
      return InvalidArgumentError(
          "FaultSchedule: every window needs end > start >= 0");
    }
    if (w.arrival_factor < 0.0) {
      return InvalidArgumentError(
          "FaultSchedule: arrival_factor must be >= 0");
    }
    if (w.error_prob > 1.0) {
      return InvalidArgumentError(
          "FaultSchedule: error_prob override must lie in [0, 1]");
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              return a.start < b.start;
            });
  for (size_t i = 1; i < windows.size(); ++i) {
    if (windows[i].start < windows[i - 1].end) {
      return InvalidArgumentError(
          "FaultSchedule: windows overlap at t=" +
          std::to_string(windows[i].start));
    }
  }
  return FaultSchedule(std::move(windows));
}

double FaultSchedule::ArrivalFactorAt(double t) const {
  for (const FaultWindow& w : windows_) {
    if (t < w.start) break;
    if (t < w.end) return w.arrival_factor;
  }
  return 1.0;
}

double FaultSchedule::ErrorProbAt(double t, double base_error_prob) const {
  for (const FaultWindow& w : windows_) {
    if (t < w.start) break;
    if (t < w.end) {
      return w.error_prob >= 0.0 ? w.error_prob : base_error_prob;
    }
  }
  return base_error_prob;
}

double FaultSchedule::MaxArrivalFactor() const {
  double factor = 1.0;
  for (const FaultWindow& w : windows_) {
    factor = std::max(factor, w.arrival_factor);
  }
  return factor;
}

double FaultSchedule::MaxErrorProb(double base_error_prob) const {
  double prob = base_error_prob;
  for (const FaultWindow& w : windows_) {
    prob = std::max(prob, w.error_prob);
  }
  return prob;
}

}  // namespace htune
