#include "market/simulator.h"

#include <algorithm>
#include <functional>
#include <string>

#include "common/check.h"

namespace htune {

std::string_view TraceEventKindToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kWorkerArrival:
      return "WORKER_ARRIVAL";
    case TraceEventKind::kTaskAccepted:
      return "TASK_ACCEPTED";
    case TraceEventKind::kRepetitionCompleted:
      return "REPETITION_COMPLETED";
    case TraceEventKind::kTaskCompleted:
      return "TASK_COMPLETED";
    case TraceEventKind::kAbandoned:
      return "ABANDONED";
    case TraceEventKind::kExpired:
      return "EXPIRED";
    case TraceEventKind::kReposted:
      return "REPOSTED";
  }
  return "UNKNOWN";
}

MarketSimulator::MarketSimulator(const MarketConfig& config)
    : config_(config), rng_(config.seed) {
  HTUNE_CHECK_GT(config.worker_arrival_rate, 0.0);
  HTUNE_CHECK_GE(config.worker_error_prob, 0.0);
  HTUNE_CHECK_LE(config.worker_error_prob, 1.0);
  HTUNE_CHECK_GE(config.worker_error_concentration, 0.0);
  if (config.worker_error_concentration > 0.0) {
    // Beta parameters must both be positive: a heterogeneous error model
    // needs a mean strictly inside (0, 1).
    HTUNE_CHECK_GT(config.worker_error_prob, 0.0);
    HTUNE_CHECK_LT(config.worker_error_prob, 1.0);
  }
  HTUNE_CHECK_GE(config.abandon_prob, 0.0);
  HTUNE_CHECK_LE(config.abandon_prob, 1.0);
  if (config.abandon_prob > 0.0) {
    HTUNE_CHECK_GT(config.abandon_hold_rate, 0.0);
  }
  next_arrival_time_ = SampleArrivalAfter(0.0);
}

double MarketSimulator::SampleArrivalAfter(double after) {
  const RateSchedule* schedule = config_.arrival_schedule.get();
  const FaultSchedule* faults = config_.fault_schedule.get();
  if (schedule == nullptr && faults == nullptr) {
    return after + rng_.Exponential(config_.worker_arrival_rate);
  }
  // Nonhomogeneous Poisson via thinning against the joint envelope: the
  // cycle's max rate times the largest fault multiplier (>= 1, so a pure
  // outage script still thins against the nominal rate).
  const double base_max =
      schedule != nullptr ? schedule->MaxRate() : config_.worker_arrival_rate;
  const double envelope =
      base_max * (faults != nullptr ? faults->MaxArrivalFactor() : 1.0);
  double t = after;
  while (true) {
    t += rng_.Exponential(envelope);
    const double base =
        schedule != nullptr ? schedule->RateAt(t) : config_.worker_arrival_rate;
    const double factor = faults != nullptr ? faults->ArrivalFactorAt(t) : 1.0;
    if (rng_.Bernoulli(base * factor / envelope)) {
      return t;
    }
  }
}

void MarketSimulator::PushEvent(const PendingEvent& event) {
  events_.push_back(event);
  std::push_heap(events_.begin(), events_.end(),
                 std::greater<PendingEvent>());
}

MarketSimulator::PendingEvent MarketSimulator::PopEvent() {
  std::pop_heap(events_.begin(), events_.end(), std::greater<PendingEvent>());
  const PendingEvent event = events_.back();
  events_.pop_back();
  return event;
}

void MarketSimulator::Record(const TraceEvent& event) {
  if (config_.record_trace) {
    trace_.push_back(event);
  }
}

StatusOr<TaskId> MarketSimulator::PostTask(const TaskSpec& spec) {
  if (spec.repetitions < 1) {
    return InvalidArgumentError("PostTask: repetitions must be >= 1");
  }
  if (spec.processing_rate <= 0.0) {
    return InvalidArgumentError("PostTask: processing_rate must be positive");
  }
  const double max_error_prob =
      config_.fault_schedule != nullptr
          ? config_.fault_schedule->MaxErrorProb(config_.worker_error_prob)
          : config_.worker_error_prob;
  if (spec.num_options < 2 && max_error_prob > 0.0) {
    return InvalidArgumentError(
        "PostTask: need >= 2 answer options when workers can err");
  }
  if (spec.acceptance_timeout < 0.0) {
    return InvalidArgumentError(
        "PostTask: acceptance_timeout must be >= 0 (0 disables expiry)");
  }
  if (spec.true_answer < 0 || spec.true_answer >= spec.num_options) {
    return InvalidArgumentError("PostTask: true_answer outside option range");
  }
  // Normalize per-repetition prices/rates, applying overrides if present.
  const size_t reps = static_cast<size_t>(spec.repetitions);
  if (!spec.per_repetition_prices.empty() &&
      spec.per_repetition_prices.size() != reps) {
    return InvalidArgumentError(
        "PostTask: per_repetition_prices size must equal repetitions");
  }
  if (!spec.per_repetition_rates.empty() &&
      spec.per_repetition_rates.size() != reps) {
    return InvalidArgumentError(
        "PostTask: per_repetition_rates size must equal repetitions");
  }
  std::vector<int> rep_prices =
      spec.per_repetition_prices.empty()
          ? std::vector<int>(reps, spec.price_per_repetition)
          : spec.per_repetition_prices;
  std::vector<double> rep_rates =
      spec.per_repetition_rates.empty()
          ? std::vector<double>(reps, spec.on_hold_rate)
          : spec.per_repetition_rates;
  for (int price : rep_prices) {
    if (price < 1) {
      return InvalidArgumentError("PostTask: every price must be >= 1");
    }
  }
  // When the market (or the task's type) owns the ground-truth curve, the
  // requester only sets prices; rates follow the market's behaviour, not
  // the caller's belief.
  const std::shared_ptr<const PriceRateCurve> effective_curve =
      spec.true_curve != nullptr ? spec.true_curve : config_.true_curve;
  if (effective_curve != nullptr) {
    for (size_t i = 0; i < reps; ++i) {
      rep_rates[i] =
          effective_curve->Rate(static_cast<double>(rep_prices[i]));
    }
  }
  for (double rate : rep_rates) {
    if (rate <= 0.0) {
      return InvalidArgumentError("PostTask: every on-hold rate must be > 0");
    }
    if (rate > config_.worker_arrival_rate) {
      return FailedPreconditionError(
          "PostTask: on_hold_rate exceeds worker arrival rate; the thinned "
          "acceptance process cannot be faster than arrivals");
    }
  }

  const TaskId id = next_task_++;
  OpenTask task;
  task.spec = spec;
  task.rep_prices = std::move(rep_prices);
  task.effective_curve = effective_curve;
  task.rep_rates = std::move(rep_rates);
  task.outcome.id = id;
  task.outcome.posted_time = now_;
  auto [it, inserted] = open_tasks_.emplace(id, std::move(task));
  HTUNE_CHECK(inserted);
  ++event_counts_.tasks_posted;
  ExposeCurrentRepetition(id, it->second, now_, /*reposted=*/false);
  return id;
}

void MarketSimulator::ExposeCurrentRepetition(TaskId id, OpenTask& task,
                                              double t, bool reposted) {
  task.current_posted_time = t;
  task.awaiting_acceptance = true;
  ++task.exposure_generation;
  const int rep_index =
      static_cast<int>(task.outcome.repetitions.size()) + 1;
  if (reposted) {
    ++task.outcome.reposted_posts;
    Record({t, TraceEventKind::kReposted, 0, id, rep_index});
  }
  if (task.spec.acceptance_timeout > 0.0) {
    PushEvent({t + task.spec.acceptance_timeout, event_sequence_++, id,
               PendingEvent::Kind::kExpiry, task.exposure_generation});
  }
}

void MarketSimulator::FillAnswer(const OpenTask& task, double worker_error,
                                 RepetitionOutcome& rep) {
  if (rng_.Bernoulli(worker_error)) {
    // Uniformly random wrong option.
    const int wrong = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(task.spec.num_options - 1)));
    rep.answer = wrong >= task.spec.true_answer ? wrong + 1 : wrong;
    rep.correct = false;
  } else {
    rep.answer = task.spec.true_answer;
    rep.correct = true;
  }
}

void MarketSimulator::StepWorkerArrival() {
  now_ = next_arrival_time_;
  ++event_counts_.worker_arrivals;
  next_arrival_time_ = SampleArrivalAfter(now_);
  const WorkerId worker = next_worker_++;
  Record({now_, TraceEventKind::kWorkerArrival, worker, 0, 0});
  // The worker's personal reliability: fixed market-wide, or drawn from a
  // Beta distribution when heterogeneity is configured. An error-burst
  // window overrides the result wholesale (the burst's spammers are not the
  // regular population).
  double worker_error =
      config_.worker_error_concentration > 0.0
          ? rng_.Beta(config_.worker_error_prob *
                          config_.worker_error_concentration,
                      (1.0 - config_.worker_error_prob) *
                          config_.worker_error_concentration)
          : config_.worker_error_prob;
  if (config_.fault_schedule != nullptr) {
    worker_error = config_.fault_schedule->ErrorProbAt(now_, worker_error);
  }

  // The worker considers every open repetition independently: acceptance
  // with probability lambda_o / arrival_rate thins the Poisson arrival
  // stream into an Exp(lambda_o) acceptance process per task, exactly the
  // model of §3.1.2. (A worker may accept several distinct tasks, as real
  // workers serially accept multiple HITs.)
  for (auto& [id, task] : open_tasks_) {
    if (!task.awaiting_acceptance) continue;
    const size_t rep_slot = task.outcome.repetitions.size();
    const double accept_prob =
        task.rep_rates[rep_slot] / config_.worker_arrival_rate;
    if (!rng_.Bernoulli(accept_prob)) continue;

    task.awaiting_acceptance = false;
    RepetitionOutcome rep;
    rep.posted_time = task.current_posted_time;
    rep.accepted_time = now_;
    rep.worker = worker;
    rep.price = task.rep_prices[rep_slot];
    // The answer is decided by the accepting worker; it is revealed (and
    // recorded) when processing finishes.
    FillAnswer(task, worker_error, rep);
    task.outcome.repetitions.push_back(rep);
    const int rep_index = static_cast<int>(task.outcome.repetitions.size());
    Record({now_, TraceEventKind::kTaskAccepted, worker, id, rep_index});

    // Decide at acceptance whether this worker will answer or abandon (the
    // gate keeps the RNG stream identical to the fault-free simulator when
    // abandonment is disabled).
    const bool abandons =
        config_.abandon_prob > 0.0 && rng_.Bernoulli(config_.abandon_prob);
    if (abandons) {
      const double hold = rng_.Exponential(config_.abandon_hold_rate);
      PushEvent({now_ + hold, event_sequence_++, id,
                 PendingEvent::Kind::kAbandon, 0});
    } else {
      const double processing = rng_.Exponential(task.spec.processing_rate);
      PushEvent({now_ + processing, event_sequence_++, id,
                 PendingEvent::Kind::kCompletion, 0});
    }
  }
}

void MarketSimulator::AdvanceTask(TaskId id, OpenTask& task, double t) {
  if (static_cast<int>(task.outcome.repetitions.size()) >=
      task.spec.repetitions) {
    task.outcome.completed_time = t;
    Record({t, TraceEventKind::kTaskCompleted, 0, id, task.spec.repetitions});
    completed_.emplace(id, std::move(task.outcome));
    completion_order_.push_back(id);
    open_tasks_.erase(id);
    return;
  }
  // Expose the next repetition: sequential submission (§4.3).
  ExposeCurrentRepetition(id, task, t, /*reposted=*/false);
}

void MarketSimulator::ApplyEvent(const PendingEvent& event) {
  now_ = event.time;
  ++event_counts_.events_dispatched;
  auto it = open_tasks_.find(event.task);
  if (event.kind == PendingEvent::Kind::kExpiry) {
    // Expiry events may be stale: the task completed, a worker accepted the
    // exposed repetition, or it was already reposted (new generation).
    if (it == open_tasks_.end()) {
      ++event_counts_.stale_expiries;
      return;
    }
    OpenTask& task = it->second;
    if (!task.awaiting_acceptance ||
        event.generation != task.exposure_generation) {
      ++event_counts_.stale_expiries;
      return;
    }
    ++event_counts_.expiries;
    ++task.outcome.expired_posts;
    const int rep_index =
        static_cast<int>(task.outcome.repetitions.size()) + 1;
    Record({now_, TraceEventKind::kExpired, 0, event.task, rep_index});
    ExposeCurrentRepetition(event.task, task, now_, /*reposted=*/true);
    return;
  }

  HTUNE_CHECK(it != open_tasks_.end());
  OpenTask& task = it->second;

  if (event.kind == PendingEvent::Kind::kAbandon) {
    // The worker returns the repetition unanswered: drop the attempt, pay
    // nothing, and put the repetition back on hold at the task's current
    // terms (a later Reprice supersedes the abandoned promise).
    ++event_counts_.abandons;
    const RepetitionOutcome attempt = task.outcome.repetitions.back();
    task.outcome.repetitions.pop_back();
    ++task.outcome.abandoned_attempts;
    const size_t slot = task.outcome.repetitions.size();
    if (task.reprice_price > 0) {
      task.rep_prices[slot] = task.reprice_price;
      task.rep_rates[slot] = task.reprice_rate;
    }
    Record({now_, TraceEventKind::kAbandoned, attempt.worker, event.task,
            static_cast<int>(slot) + 1});
    ExposeCurrentRepetition(event.task, task, now_, /*reposted=*/true);
    return;
  }

  ++event_counts_.completions;
  RepetitionOutcome& rep = task.outcome.repetitions.back();
  rep.completed_time = now_;
  total_spent_ += task.rep_prices[task.outcome.repetitions.size() - 1];
  const int rep_index = static_cast<int>(task.outcome.repetitions.size());
  Record({now_, TraceEventKind::kRepetitionCompleted, rep.worker,
          event.task, rep_index});
  AdvanceTask(event.task, task, now_);
}

Status MarketSimulator::Reprice(TaskId id, int new_price,
                                double new_on_hold_rate) {
  if (new_price < 1) {
    return InvalidArgumentError("Reprice: price must be >= 1");
  }
  const auto it = open_tasks_.find(id);
  if (it == open_tasks_.end()) {
    if (completed_.count(id) > 0) {
      return FailedPreconditionError("Reprice: task already completed");
    }
    return NotFoundError("Reprice: unknown task id");
  }
  OpenTask& task = it->second;
  double rate = new_on_hold_rate;
  if (task.effective_curve != nullptr) {
    rate = task.effective_curve->Rate(static_cast<double>(new_price));
  }
  if (rate <= 0.0) {
    return InvalidArgumentError(
        "Reprice: need a positive on-hold rate (or a market true_curve)");
  }
  if (rate > config_.worker_arrival_rate) {
    return FailedPreconditionError(
        "Reprice: on-hold rate exceeds worker arrival rate");
  }
  // While on hold, the current slot (= repetitions.size()) takes the new
  // terms; while processing, the accepted repetition keeps its promise and
  // only later slots change (but if the in-flight attempt is abandoned, its
  // slot is re-exposed at the repriced terms).
  const size_t first = task.outcome.repetitions.size();
  for (size_t r = first; r < task.rep_prices.size(); ++r) {
    task.rep_prices[r] = new_price;
    task.rep_rates[r] = rate;
  }
  task.reprice_price = new_price;
  task.reprice_rate = rate;
  ++event_counts_.reprices;
  return OkStatus();
}

size_t MarketSimulator::RunUntil(double deadline) {
  while (!open_tasks_.empty()) {
    const bool has_event = !events_.empty();
    const double event_time = has_event ? events_.front().time : 0.0;
    if (has_event && event_time <= next_arrival_time_) {
      if (event_time > deadline) break;
      ApplyEvent(PopEvent());
    } else {
      if (next_arrival_time_ > deadline) break;
      StepWorkerArrival();
    }
  }
  if (deadline > now_) {
    now_ = deadline;
  }
  return open_tasks_.size();
}

Status MarketSimulator::RunToCompletion() {
  if (open_tasks_.empty()) {
    return FailedPreconditionError("RunToCompletion: no open tasks");
  }
  // Safety valve: with sane rates a job finishes long before this many
  // events; hitting the cap means a posted rate is effectively zero (or an
  // acceptance timeout is reposting a starved repetition forever).
  constexpr uint64_t kMaxEvents = 200'000'000;
  uint64_t events = 0;
  while (!open_tasks_.empty()) {
    if (++events > kMaxEvents) {
      const auto& [stuck_id, stuck] = *open_tasks_.begin();
      return InternalError(
          "RunToCompletion: event horizon exceeded at t=" +
          std::to_string(now_) + "; task " + std::to_string(stuck_id) +
          " is still open on repetition " +
          std::to_string(stuck.outcome.repetitions.size() + 1) + " of " +
          std::to_string(stuck.spec.repetitions) + " (" +
          std::to_string(open_tasks_.size()) +
          " open tasks total) — a posted rate is effectively zero");
    }
    const bool has_event = !events_.empty();
    if (has_event && events_.front().time <= next_arrival_time_) {
      ApplyEvent(PopEvent());
    } else {
      StepWorkerArrival();
    }
  }
  return OkStatus();
}

StatusOr<TaskOutcome> MarketSimulator::GetOutcome(TaskId id) const {
  const auto done = completed_.find(id);
  if (done != completed_.end()) {
    return done->second;
  }
  if (open_tasks_.count(id) > 0) {
    return FailedPreconditionError("GetOutcome: task not yet complete");
  }
  return NotFoundError("GetOutcome: unknown task id");
}

StatusOr<double> MarketSimulator::OnHoldSince(TaskId id) const {
  const auto open = open_tasks_.find(id);
  if (open == open_tasks_.end()) {
    if (completed_.count(id) > 0) {
      return FailedPreconditionError("OnHoldSince: task already completed");
    }
    return NotFoundError("OnHoldSince: unknown task id");
  }
  if (!open->second.awaiting_acceptance) {
    return FailedPreconditionError(
        "OnHoldSince: current repetition is being processed");
  }
  return open->second.current_posted_time;
}

StatusOr<int> MarketSimulator::CurrentPrice(TaskId id) const {
  const auto open = open_tasks_.find(id);
  if (open == open_tasks_.end()) {
    if (completed_.count(id) > 0) {
      return FailedPreconditionError("CurrentPrice: task already completed");
    }
    return NotFoundError("CurrentPrice: unknown task id");
  }
  const OpenTask& task = open->second;
  const size_t reps = task.outcome.repetitions.size();
  // On hold: the exposed slot == reps. Processing: the in-flight attempt is
  // the last recorded repetition.
  const size_t slot = task.awaiting_acceptance ? reps : reps - 1;
  return task.rep_prices[slot];
}

StatusOr<TaskOutcome> MarketSimulator::GetProgress(TaskId id) const {
  const auto open = open_tasks_.find(id);
  if (open != open_tasks_.end()) {
    return open->second.outcome;
  }
  const auto done = completed_.find(id);
  if (done != completed_.end()) {
    return done->second;
  }
  return NotFoundError("GetProgress: unknown task id");
}

std::vector<TaskOutcome> MarketSimulator::CompletedOutcomes() const {
  std::vector<TaskOutcome> outcomes;
  outcomes.reserve(completion_order_.size());
  for (TaskId id : completion_order_) {
    outcomes.push_back(completed_.at(id));
  }
  return outcomes;
}

namespace {

/// Maps a task's curve pointer to its MarketState index (pointer identity:
/// the controller posts tasks with curves from its own table, so the same
/// shared object is found again at capture time).
StatusOr<int32_t> CurveToIndex(
    const std::shared_ptr<const PriceRateCurve>& curve,
    const std::shared_ptr<const PriceRateCurve>& market_curve,
    const std::vector<std::shared_ptr<const PriceRateCurve>>& table) {
  if (curve == nullptr) return MarketState::kCurveNone;
  if (curve == market_curve) return MarketState::kCurveMarket;
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i] == curve) {
      return static_cast<int32_t>(MarketState::kCurveTableBase + i);
    }
  }
  return InvalidArgumentError(
      "CaptureState: open task references a curve outside the curve table");
}

StatusOr<std::shared_ptr<const PriceRateCurve>> CurveFromIndex(
    int32_t index, const std::shared_ptr<const PriceRateCurve>& market_curve,
    const std::vector<std::shared_ptr<const PriceRateCurve>>& table) {
  if (index == MarketState::kCurveNone) {
    return std::shared_ptr<const PriceRateCurve>();
  }
  if (index == MarketState::kCurveMarket) {
    if (market_curve == nullptr) {
      return InvalidArgumentError(
          "RestoreState: state references the market true_curve but the "
          "config has none");
    }
    return market_curve;
  }
  const int64_t slot = static_cast<int64_t>(index) -
                       MarketState::kCurveTableBase;
  if (slot < 0 || slot >= static_cast<int64_t>(table.size()) ||
      table[static_cast<size_t>(slot)] == nullptr) {
    return InvalidArgumentError("RestoreState: curve index " +
                                std::to_string(index) +
                                " outside the curve table");
  }
  return table[static_cast<size_t>(slot)];
}

}  // namespace

StatusOr<MarketState> MarketSimulator::CaptureState(
    const std::vector<std::shared_ptr<const PriceRateCurve>>& curve_table)
    const {
  MarketState state;
  state.now = now_;
  state.next_arrival_time = next_arrival_time_;
  state.next_worker = next_worker_;
  state.next_task = next_task_;
  state.event_sequence = event_sequence_;
  state.total_spent = total_spent_;
  state.rng = rng_.SaveState();
  state.events.reserve(events_.size());
  for (const PendingEvent& event : events_) {
    state.events.push_back({event.time, event.sequence, event.task,
                            static_cast<uint8_t>(event.kind),
                            event.generation});
  }
  state.open_tasks.reserve(open_tasks_.size());
  for (const auto& [id, task] : open_tasks_) {
    MarketState::Task t;
    t.id = id;
    t.price_per_repetition = task.spec.price_per_repetition;
    t.repetitions = task.spec.repetitions;
    t.on_hold_rate = task.spec.on_hold_rate;
    t.spec_prices = task.spec.per_repetition_prices;
    t.spec_rates = task.spec.per_repetition_rates;
    HTUNE_ASSIGN_OR_RETURN(
        t.spec_curve,
        CurveToIndex(task.spec.true_curve, config_.true_curve, curve_table));
    t.processing_rate = task.spec.processing_rate;
    t.acceptance_timeout = task.spec.acceptance_timeout;
    t.true_answer = task.spec.true_answer;
    t.num_options = task.spec.num_options;
    t.rep_prices = task.rep_prices;
    t.rep_rates = task.rep_rates;
    HTUNE_ASSIGN_OR_RETURN(
        t.effective_curve,
        CurveToIndex(task.effective_curve, config_.true_curve, curve_table));
    t.outcome = task.outcome;
    t.next_repetition = task.next_repetition;
    t.awaiting_acceptance = task.awaiting_acceptance;
    t.current_posted_time = task.current_posted_time;
    t.exposure_generation = task.exposure_generation;
    t.reprice_price = task.reprice_price;
    t.reprice_rate = task.reprice_rate;
    state.open_tasks.push_back(std::move(t));
  }
  state.completed.reserve(completed_.size());
  for (const auto& [id, outcome] : completed_) {
    state.completed.push_back(outcome);
  }
  state.completion_order = completion_order_;
  state.trace = trace_;
  return state;
}

Status MarketSimulator::RestoreState(
    const MarketState& state,
    const std::vector<std::shared_ptr<const PriceRateCurve>>& curve_table) {
  // Structural validation first so a failed restore leaves the simulator
  // untouched.
  for (const MarketState::Event& event : state.events) {
    if (event.kind > static_cast<uint8_t>(PendingEvent::Kind::kExpiry)) {
      return InvalidArgumentError("RestoreState: unknown event kind");
    }
  }
  std::map<TaskId, OpenTask> open_tasks;
  for (const MarketState::Task& t : state.open_tasks) {
    const size_t reps = static_cast<size_t>(t.repetitions);
    if (t.repetitions < 1 || t.rep_prices.size() != reps ||
        t.rep_rates.size() != reps ||
        t.outcome.repetitions.size() > reps) {
      return InvalidArgumentError(
          "RestoreState: task repetition shape is inconsistent");
    }
    OpenTask task;
    task.spec.price_per_repetition = t.price_per_repetition;
    task.spec.repetitions = t.repetitions;
    task.spec.on_hold_rate = t.on_hold_rate;
    task.spec.per_repetition_prices = t.spec_prices;
    task.spec.per_repetition_rates = t.spec_rates;
    HTUNE_ASSIGN_OR_RETURN(
        task.spec.true_curve,
        CurveFromIndex(t.spec_curve, config_.true_curve, curve_table));
    task.spec.processing_rate = t.processing_rate;
    task.spec.acceptance_timeout = t.acceptance_timeout;
    task.spec.true_answer = t.true_answer;
    task.spec.num_options = t.num_options;
    task.rep_prices = t.rep_prices;
    task.rep_rates = t.rep_rates;
    HTUNE_ASSIGN_OR_RETURN(
        task.effective_curve,
        CurveFromIndex(t.effective_curve, config_.true_curve, curve_table));
    task.outcome = t.outcome;
    task.next_repetition = t.next_repetition;
    task.awaiting_acceptance = t.awaiting_acceptance;
    task.current_posted_time = t.current_posted_time;
    task.exposure_generation = t.exposure_generation;
    task.reprice_price = t.reprice_price;
    task.reprice_rate = t.reprice_rate;
    if (!open_tasks.emplace(t.id, std::move(task)).second) {
      return InvalidArgumentError("RestoreState: duplicate open task id");
    }
  }
  std::map<TaskId, TaskOutcome> completed;
  for (const TaskOutcome& outcome : state.completed) {
    if (!completed.emplace(outcome.id, outcome).second) {
      return InvalidArgumentError("RestoreState: duplicate completed id");
    }
  }
  if (state.completion_order.size() != completed.size()) {
    return InvalidArgumentError(
        "RestoreState: completion order does not match completed set");
  }
  for (const TaskId id : state.completion_order) {
    if (completed.count(id) == 0) {
      return InvalidArgumentError(
          "RestoreState: completion order names an unknown task");
    }
  }
  std::vector<PendingEvent> events;
  events.reserve(state.events.size());
  for (const MarketState::Event& event : state.events) {
    events.push_back({event.time, event.sequence, event.task,
                      static_cast<PendingEvent::Kind>(event.kind),
                      event.generation});
  }
  if (!std::is_heap(events.begin(), events.end(),
                    std::greater<PendingEvent>())) {
    return InvalidArgumentError(
        "RestoreState: pending events are not in heap order");
  }

  now_ = state.now;
  next_arrival_time_ = state.next_arrival_time;
  next_worker_ = state.next_worker;
  next_task_ = state.next_task;
  event_sequence_ = state.event_sequence;
  total_spent_ = state.total_spent;
  rng_.RestoreState(state.rng);
  events_ = std::move(events);
  open_tasks_ = std::move(open_tasks);
  completed_ = std::move(completed);
  completion_order_ = state.completion_order;
  trace_ = state.trace;
  return OkStatus();
}

}  // namespace htune
