#include "market/simulator.h"

#include <string>

#include "common/check.h"

namespace htune {

std::string_view TraceEventKindToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kWorkerArrival:
      return "WORKER_ARRIVAL";
    case TraceEventKind::kTaskAccepted:
      return "TASK_ACCEPTED";
    case TraceEventKind::kRepetitionCompleted:
      return "REPETITION_COMPLETED";
    case TraceEventKind::kTaskCompleted:
      return "TASK_COMPLETED";
  }
  return "UNKNOWN";
}

MarketSimulator::MarketSimulator(const MarketConfig& config)
    : config_(config), rng_(config.seed) {
  HTUNE_CHECK_GT(config.worker_arrival_rate, 0.0);
  HTUNE_CHECK_GE(config.worker_error_prob, 0.0);
  HTUNE_CHECK_LE(config.worker_error_prob, 1.0);
  HTUNE_CHECK_GE(config.worker_error_concentration, 0.0);
  if (config.worker_error_concentration > 0.0) {
    // Beta parameters must both be positive: a heterogeneous error model
    // needs a mean strictly inside (0, 1).
    HTUNE_CHECK_GT(config.worker_error_prob, 0.0);
    HTUNE_CHECK_LT(config.worker_error_prob, 1.0);
  }
  next_arrival_time_ = SampleArrivalAfter(0.0);
}

double MarketSimulator::SampleArrivalAfter(double after) {
  if (config_.arrival_schedule == nullptr) {
    return after + rng_.Exponential(config_.worker_arrival_rate);
  }
  // Nonhomogeneous Poisson via thinning against the cycle's max rate.
  const RateSchedule& schedule = *config_.arrival_schedule;
  const double envelope = schedule.MaxRate();
  double t = after;
  while (true) {
    t += rng_.Exponential(envelope);
    if (rng_.Bernoulli(schedule.RateAt(t) / envelope)) {
      return t;
    }
  }
}

void MarketSimulator::Record(const TraceEvent& event) {
  if (config_.record_trace) {
    trace_.push_back(event);
  }
}

StatusOr<TaskId> MarketSimulator::PostTask(const TaskSpec& spec) {
  if (spec.repetitions < 1) {
    return InvalidArgumentError("PostTask: repetitions must be >= 1");
  }
  if (spec.processing_rate <= 0.0) {
    return InvalidArgumentError("PostTask: processing_rate must be positive");
  }
  if (spec.num_options < 2 && config_.worker_error_prob > 0.0) {
    return InvalidArgumentError(
        "PostTask: need >= 2 answer options when workers can err");
  }
  if (spec.true_answer < 0 || spec.true_answer >= spec.num_options) {
    return InvalidArgumentError("PostTask: true_answer outside option range");
  }
  // Normalize per-repetition prices/rates, applying overrides if present.
  const size_t reps = static_cast<size_t>(spec.repetitions);
  if (!spec.per_repetition_prices.empty() &&
      spec.per_repetition_prices.size() != reps) {
    return InvalidArgumentError(
        "PostTask: per_repetition_prices size must equal repetitions");
  }
  if (!spec.per_repetition_rates.empty() &&
      spec.per_repetition_rates.size() != reps) {
    return InvalidArgumentError(
        "PostTask: per_repetition_rates size must equal repetitions");
  }
  std::vector<int> rep_prices =
      spec.per_repetition_prices.empty()
          ? std::vector<int>(reps, spec.price_per_repetition)
          : spec.per_repetition_prices;
  std::vector<double> rep_rates =
      spec.per_repetition_rates.empty()
          ? std::vector<double>(reps, spec.on_hold_rate)
          : spec.per_repetition_rates;
  for (int price : rep_prices) {
    if (price < 1) {
      return InvalidArgumentError("PostTask: every price must be >= 1");
    }
  }
  // When the market (or the task's type) owns the ground-truth curve, the
  // requester only sets prices; rates follow the market's behaviour, not
  // the caller's belief.
  const std::shared_ptr<const PriceRateCurve> effective_curve =
      spec.true_curve != nullptr ? spec.true_curve : config_.true_curve;
  if (effective_curve != nullptr) {
    for (size_t i = 0; i < reps; ++i) {
      rep_rates[i] =
          effective_curve->Rate(static_cast<double>(rep_prices[i]));
    }
  }
  for (double rate : rep_rates) {
    if (rate <= 0.0) {
      return InvalidArgumentError("PostTask: every on-hold rate must be > 0");
    }
    if (rate > config_.worker_arrival_rate) {
      return FailedPreconditionError(
          "PostTask: on_hold_rate exceeds worker arrival rate; the thinned "
          "acceptance process cannot be faster than arrivals");
    }
  }

  const TaskId id = next_task_++;
  OpenTask task;
  task.spec = spec;
  task.rep_prices = std::move(rep_prices);
  task.effective_curve = effective_curve;
  task.rep_rates = std::move(rep_rates);
  task.outcome.id = id;
  task.outcome.posted_time = now_;
  task.current_posted_time = now_;
  task.awaiting_acceptance = true;
  open_tasks_.emplace(id, std::move(task));
  return id;
}

void MarketSimulator::FillAnswer(const OpenTask& task, double worker_error,
                                 RepetitionOutcome& rep) {
  if (rng_.Bernoulli(worker_error)) {
    // Uniformly random wrong option.
    const int wrong = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(task.spec.num_options - 1)));
    rep.answer = wrong >= task.spec.true_answer ? wrong + 1 : wrong;
    rep.correct = false;
  } else {
    rep.answer = task.spec.true_answer;
    rep.correct = true;
  }
}

void MarketSimulator::StepWorkerArrival() {
  now_ = next_arrival_time_;
  next_arrival_time_ = SampleArrivalAfter(now_);
  const WorkerId worker = next_worker_++;
  Record({now_, TraceEventKind::kWorkerArrival, worker, 0, 0});
  // The worker's personal reliability: fixed market-wide, or drawn from a
  // Beta distribution when heterogeneity is configured.
  const double worker_error =
      config_.worker_error_concentration > 0.0
          ? rng_.Beta(config_.worker_error_prob *
                          config_.worker_error_concentration,
                      (1.0 - config_.worker_error_prob) *
                          config_.worker_error_concentration)
          : config_.worker_error_prob;

  // The worker considers every open repetition independently: acceptance
  // with probability lambda_o / arrival_rate thins the Poisson arrival
  // stream into an Exp(lambda_o) acceptance process per task, exactly the
  // model of §3.1.2. (A worker may accept several distinct tasks, as real
  // workers serially accept multiple HITs.)
  for (auto& [id, task] : open_tasks_) {
    if (!task.awaiting_acceptance) continue;
    const size_t rep_slot = task.outcome.repetitions.size();
    const double accept_prob =
        task.rep_rates[rep_slot] / config_.worker_arrival_rate;
    if (!rng_.Bernoulli(accept_prob)) continue;

    task.awaiting_acceptance = false;
    RepetitionOutcome rep;
    rep.posted_time = task.current_posted_time;
    rep.accepted_time = now_;
    rep.worker = worker;
    rep.price = task.rep_prices[rep_slot];
    // The answer is decided by the accepting worker; it is revealed (and
    // recorded) when processing finishes.
    FillAnswer(task, worker_error, rep);
    task.outcome.repetitions.push_back(rep);
    const int rep_index = static_cast<int>(task.outcome.repetitions.size());
    Record({now_, TraceEventKind::kTaskAccepted, worker, id, rep_index});

    const double processing = rng_.Exponential(task.spec.processing_rate);
    completions_.push(
        {now_ + processing, completion_sequence_++, id});
  }
}

void MarketSimulator::AdvanceTask(TaskId id, OpenTask& task, double t) {
  if (static_cast<int>(task.outcome.repetitions.size()) >=
      task.spec.repetitions) {
    task.outcome.completed_time = t;
    Record({t, TraceEventKind::kTaskCompleted, 0, id, task.spec.repetitions});
    completed_.emplace(id, std::move(task.outcome));
    completion_order_.push_back(id);
    open_tasks_.erase(id);
    return;
  }
  // Expose the next repetition: sequential submission (§4.3).
  task.current_posted_time = t;
  task.awaiting_acceptance = true;
}

void MarketSimulator::ApplyCompletion(const PendingCompletion& completion) {
  now_ = completion.time;
  auto it = open_tasks_.find(completion.task);
  HTUNE_CHECK(it != open_tasks_.end());
  OpenTask& task = it->second;

  RepetitionOutcome& rep = task.outcome.repetitions.back();
  rep.completed_time = now_;
  total_spent_ += task.rep_prices[task.outcome.repetitions.size() - 1];
  const int rep_index = static_cast<int>(task.outcome.repetitions.size());
  Record({now_, TraceEventKind::kRepetitionCompleted, rep.worker,
          completion.task, rep_index});
  AdvanceTask(completion.task, task, now_);
}

Status MarketSimulator::Reprice(TaskId id, int new_price,
                                double new_on_hold_rate) {
  if (new_price < 1) {
    return InvalidArgumentError("Reprice: price must be >= 1");
  }
  const auto it = open_tasks_.find(id);
  if (it == open_tasks_.end()) {
    if (completed_.count(id) > 0) {
      return FailedPreconditionError("Reprice: task already completed");
    }
    return NotFoundError("Reprice: unknown task id");
  }
  OpenTask& task = it->second;
  double rate = new_on_hold_rate;
  if (task.effective_curve != nullptr) {
    rate = task.effective_curve->Rate(static_cast<double>(new_price));
  }
  if (rate <= 0.0) {
    return InvalidArgumentError(
        "Reprice: need a positive on-hold rate (or a market true_curve)");
  }
  if (rate > config_.worker_arrival_rate) {
    return FailedPreconditionError(
        "Reprice: on-hold rate exceeds worker arrival rate");
  }
  // While on hold, the current slot (= repetitions.size()) takes the new
  // terms; while processing, the accepted repetition keeps its promise and
  // only later slots change.
  const size_t first = task.outcome.repetitions.size();
  for (size_t r = first; r < task.rep_prices.size(); ++r) {
    task.rep_prices[r] = new_price;
    task.rep_rates[r] = rate;
  }
  return OkStatus();
}

size_t MarketSimulator::RunUntil(double deadline) {
  while (!open_tasks_.empty()) {
    const bool has_completion = !completions_.empty();
    const double completion_time =
        has_completion ? completions_.top().time : 0.0;
    if (has_completion && completion_time <= next_arrival_time_) {
      if (completion_time > deadline) break;
      const PendingCompletion head = completions_.top();
      completions_.pop();
      ApplyCompletion(head);
    } else {
      if (next_arrival_time_ > deadline) break;
      StepWorkerArrival();
    }
  }
  if (deadline > now_) {
    now_ = deadline;
  }
  return open_tasks_.size();
}

Status MarketSimulator::RunToCompletion() {
  if (open_tasks_.empty()) {
    return FailedPreconditionError("RunToCompletion: no open tasks");
  }
  // Safety valve: with sane rates a job finishes long before this many
  // events; hitting the cap means a posted rate is effectively zero.
  constexpr uint64_t kMaxEvents = 200'000'000;
  uint64_t events = 0;
  while (!open_tasks_.empty()) {
    if (++events > kMaxEvents) {
      return InternalError("RunToCompletion: event horizon exceeded");
    }
    const bool has_completion = !completions_.empty();
    if (has_completion && completions_.top().time <= next_arrival_time_) {
      const PendingCompletion head = completions_.top();
      completions_.pop();
      ApplyCompletion(head);
    } else {
      StepWorkerArrival();
    }
  }
  return OkStatus();
}

StatusOr<TaskOutcome> MarketSimulator::GetOutcome(TaskId id) const {
  const auto done = completed_.find(id);
  if (done != completed_.end()) {
    return done->second;
  }
  if (open_tasks_.count(id) > 0) {
    return FailedPreconditionError("GetOutcome: task not yet complete");
  }
  return NotFoundError("GetOutcome: unknown task id");
}

StatusOr<TaskOutcome> MarketSimulator::GetProgress(TaskId id) const {
  const auto open = open_tasks_.find(id);
  if (open != open_tasks_.end()) {
    return open->second.outcome;
  }
  const auto done = completed_.find(id);
  if (done != completed_.end()) {
    return done->second;
  }
  return NotFoundError("GetProgress: unknown task id");
}

std::vector<TaskOutcome> MarketSimulator::CompletedOutcomes() const {
  std::vector<TaskOutcome> outcomes;
  outcomes.reserve(completion_order_.size());
  for (TaskId id : completion_order_) {
    outcomes.push_back(completed_.at(id));
  }
  return outcomes;
}

}  // namespace htune
