#include "market/simulator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace htune {

std::string_view TraceEventKindToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kWorkerArrival:
      return "WORKER_ARRIVAL";
    case TraceEventKind::kTaskAccepted:
      return "TASK_ACCEPTED";
    case TraceEventKind::kRepetitionCompleted:
      return "REPETITION_COMPLETED";
    case TraceEventKind::kTaskCompleted:
      return "TASK_COMPLETED";
    case TraceEventKind::kAbandoned:
      return "ABANDONED";
    case TraceEventKind::kExpired:
      return "EXPIRED";
    case TraceEventKind::kReposted:
      return "REPOSTED";
  }
  return "UNKNOWN";
}

MarketSimulator::MarketSimulator(const MarketConfig& config)
    : config_(config), rng_(config.seed) {
  HTUNE_CHECK_GT(config.worker_arrival_rate, 0.0);
  HTUNE_CHECK_GE(config.worker_error_prob, 0.0);
  HTUNE_CHECK_LE(config.worker_error_prob, 1.0);
  HTUNE_CHECK_GE(config.worker_error_concentration, 0.0);
  if (config.worker_error_concentration > 0.0) {
    // Beta parameters must both be positive: a heterogeneous error model
    // needs a mean strictly inside (0, 1).
    HTUNE_CHECK_GT(config.worker_error_prob, 0.0);
    HTUNE_CHECK_LT(config.worker_error_prob, 1.0);
  }
  HTUNE_CHECK_GE(config.abandon_prob, 0.0);
  HTUNE_CHECK_LE(config.abandon_prob, 1.0);
  if (config.abandon_prob > 0.0) {
    HTUNE_CHECK_GT(config.abandon_hold_rate, 0.0);
  }
  queue_ = MakeEventQueue(config.event_queue);
  if (config.record_trace) {
    trace_.reserve(1024);
  }
  next_arrival_time_ = SampleArrivalAfter(0.0);
}

double MarketSimulator::SampleArrivalAfter(double after) {
  const RateSchedule* schedule = config_.arrival_schedule.get();
  const FaultSchedule* faults = config_.fault_schedule.get();
  if (schedule == nullptr && faults == nullptr) {
    return after + rng_.Exponential(config_.worker_arrival_rate);
  }
  // Nonhomogeneous Poisson via thinning against the joint envelope: the
  // cycle's max rate times the largest fault multiplier (>= 1, so a pure
  // outage script still thins against the nominal rate).
  const double base_max =
      schedule != nullptr ? schedule->MaxRate() : config_.worker_arrival_rate;
  const double envelope =
      base_max * (faults != nullptr ? faults->MaxArrivalFactor() : 1.0);
  double t = after;
  while (true) {
    t += rng_.Exponential(envelope);
    const double base =
        schedule != nullptr ? schedule->RateAt(t) : config_.worker_arrival_rate;
    const double factor = faults != nullptr ? faults->ArrivalFactorAt(t) : 1.0;
    if (rng_.Bernoulli(base * factor / envelope)) {
      return t;
    }
  }
}

void MarketSimulator::Record(const TraceEvent& event) {
  if (config_.record_trace &&
      ((config_.trace_mask >> static_cast<int>(event.kind)) & 1u) != 0) {
    trace_.push_back(event);
  }
}

StatusOr<TaskId> MarketSimulator::PostTask(const TaskSpec& spec) {
  if (spec.repetitions < 1) {
    return InvalidArgumentError("PostTask: repetitions must be >= 1");
  }
  if (spec.processing_rate <= 0.0) {
    return InvalidArgumentError("PostTask: processing_rate must be positive");
  }
  const double max_error_prob =
      config_.fault_schedule != nullptr
          ? config_.fault_schedule->MaxErrorProb(config_.worker_error_prob)
          : config_.worker_error_prob;
  if (spec.num_options < 2 && max_error_prob > 0.0) {
    return InvalidArgumentError(
        "PostTask: need >= 2 answer options when workers can err");
  }
  if (spec.acceptance_timeout < 0.0) {
    return InvalidArgumentError(
        "PostTask: acceptance_timeout must be >= 0 (0 disables expiry)");
  }
  if (spec.true_answer < 0 || spec.true_answer >= spec.num_options) {
    return InvalidArgumentError("PostTask: true_answer outside option range");
  }
  // Validate the normalized per-repetition prices/rates without building
  // them yet: a rejected spec must not allocate a task slot.
  const size_t reps = static_cast<size_t>(spec.repetitions);
  if (!spec.per_repetition_prices.empty() &&
      spec.per_repetition_prices.size() != reps) {
    return InvalidArgumentError(
        "PostTask: per_repetition_prices size must equal repetitions");
  }
  if (!spec.per_repetition_rates.empty() &&
      spec.per_repetition_rates.size() != reps) {
    return InvalidArgumentError(
        "PostTask: per_repetition_rates size must equal repetitions");
  }
  if (spec.per_repetition_prices.empty()) {
    if (spec.price_per_repetition < 1) {
      return InvalidArgumentError("PostTask: every price must be >= 1");
    }
  } else {
    for (int price : spec.per_repetition_prices) {
      if (price < 1) {
        return InvalidArgumentError("PostTask: every price must be >= 1");
      }
    }
  }
  // When the market (or the task's type) owns the ground-truth curve, the
  // requester only sets prices; rates follow the market's behaviour, not
  // the caller's belief.
  const std::shared_ptr<const PriceRateCurve> effective_curve =
      spec.true_curve != nullptr ? spec.true_curve : config_.true_curve;
  rate_buf_.resize(reps);  // scratch: the validated per-repetition rates
  for (size_t i = 0; i < reps; ++i) {
    double rate;
    if (effective_curve != nullptr) {
      const int price = spec.per_repetition_prices.empty()
                            ? spec.price_per_repetition
                            : spec.per_repetition_prices[i];
      rate = effective_curve->Rate(static_cast<double>(price));
    } else {
      rate = spec.per_repetition_rates.empty() ? spec.on_hold_rate
                                               : spec.per_repetition_rates[i];
    }
    if (rate <= 0.0) {
      return InvalidArgumentError("PostTask: every on-hold rate must be > 0");
    }
    if (rate > config_.worker_arrival_rate) {
      return FailedPreconditionError(
          "PostTask: on_hold_rate exceeds worker arrival rate; the thinned "
          "acceptance process cannot be faster than arrivals");
    }
    rate_buf_[i] = rate;
  }

  const TaskId id = next_task_++;
  OpenTask& task = tasks_.Insert(id);
  task.spec = spec;
  if (spec.per_repetition_prices.empty()) {
    task.rep_prices.assign(reps, spec.price_per_repetition);
  } else {
    task.rep_prices = spec.per_repetition_prices;
  }
  task.rep_rates.assign(rate_buf_.begin(), rate_buf_.end());
  task.effective_curve = effective_curve;
  task.outcome.id = id;
  task.outcome.posted_time = now_;
  ++event_counts_.tasks_posted;
  ExposeCurrentRepetition(id, task, now_, /*reposted=*/false,
                          /*already_on_hold=*/false);
  return id;
}

void MarketSimulator::ExposeCurrentRepetition(TaskId id, OpenTask& task,
                                              double t, bool reposted,
                                              bool already_on_hold) {
  task.current_posted_time = t;
  task.awaiting_acceptance = true;
  ++task.exposure_generation;
  const size_t rep_slot = task.outcome.repetitions.size();
  if (reposted) {
    ++task.outcome.reposted_posts;
    Record({t, TraceEventKind::kReposted, 0, id,
            static_cast<int>(rep_slot) + 1});
  }
  if (!already_on_hold) {
    // The expiry path re-exposes a repetition that never left the on-hold
    // index (and whose cached probability is already current).
    tasks_.AddOnHold(id,
                     task.rep_rates[rep_slot] / config_.worker_arrival_rate);
  }
  if (task.spec.acceptance_timeout > 0.0) {
    PushEvent({t + task.spec.acceptance_timeout, event_sequence_++, id,
               MarketEvent::Kind::kExpiry, task.exposure_generation});
  }
}

void MarketSimulator::FillAnswer(const OpenTask& task, double worker_error,
                                 RepetitionOutcome& rep) {
  if (rng_.Bernoulli(worker_error)) {
    // Uniformly random wrong option.
    const int wrong = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(task.spec.num_options - 1)));
    rep.answer = wrong >= task.spec.true_answer ? wrong + 1 : wrong;
    rep.correct = false;
  } else {
    rep.answer = task.spec.true_answer;
    rep.correct = true;
  }
}

void MarketSimulator::StepWorkerArrival() {
  now_ = next_arrival_time_;
  ++event_counts_.worker_arrivals;
  next_arrival_time_ = SampleArrivalAfter(now_);
  const WorkerId worker = next_worker_++;
  Record({now_, TraceEventKind::kWorkerArrival, worker, 0, 0});
  // The worker's personal reliability: fixed market-wide, or drawn from a
  // Beta distribution when heterogeneity is configured. An error-burst
  // window overrides the result wholesale (the burst's spammers are not the
  // regular population).
  double worker_error =
      config_.worker_error_concentration > 0.0
          ? rng_.Beta(config_.worker_error_prob *
                          config_.worker_error_concentration,
                      (1.0 - config_.worker_error_prob) *
                          config_.worker_error_concentration)
          : config_.worker_error_prob;
  if (config_.fault_schedule != nullptr) {
    worker_error = config_.fault_schedule->ErrorProbAt(now_, worker_error);
  }

  // The worker considers every repetition awaiting acceptance
  // independently: acceptance with probability lambda_o / arrival_rate
  // thins the Poisson arrival stream into an Exp(lambda_o) acceptance
  // process per task, exactly the model of §3.1.2. (A worker may accept
  // several distinct tasks, as real workers serially accept multiple HITs.)
  // The on-hold index supplies the candidates in TaskId order — the same
  // Bernoulli draw order as the historical scan over the full task map.
  const size_t n = tasks_.on_hold_count();
  if (n == 0) return;
  const TaskId* ids = tasks_.on_hold_ids();
  const double* probs = tasks_.on_hold_probs();
  // With every probability strictly inside (0, 1), each Bernoulli consumes
  // exactly one uniform, so the scan can draw inline against the raw
  // probability array — same bit patterns in the same order as the scalar
  // Bernoulli loop, minus its clamping branches. A saturated entry
  // (prob >= 1) accepts without consuming a draw, so its presence forces
  // the general loop to keep the stream identical.
  const bool all_probs_draw = tasks_.saturated_count() == 0;
  accepted_positions_.clear();
  for (size_t i = 0; i < n; ++i) {
    const bool accepted =
        all_probs_draw ? rng_.Uniform() < probs[i] : rng_.Bernoulli(probs[i]);
    if (!accepted) continue;
    const TaskId id = ids[i];
    OpenTask& task = tasks_.on_hold_task(i);
    accepted_positions_.push_back(static_cast<uint32_t>(i));
    task.awaiting_acceptance = false;
    const size_t rep_slot = task.outcome.repetitions.size();
    RepetitionOutcome rep;
    rep.posted_time = task.current_posted_time;
    rep.accepted_time = now_;
    rep.worker = worker;
    rep.price = task.rep_prices[rep_slot];
    // The answer is decided by the accepting worker; it is revealed (and
    // recorded) when processing finishes.
    FillAnswer(task, worker_error, rep);
    task.outcome.repetitions.push_back(rep);
    const int rep_index = static_cast<int>(task.outcome.repetitions.size());
    Record({now_, TraceEventKind::kTaskAccepted, worker, id, rep_index});

    // Decide at acceptance whether this worker will answer or abandon (the
    // gate keeps the RNG stream identical to the fault-free simulator when
    // abandonment is disabled).
    const bool abandons =
        config_.abandon_prob > 0.0 && rng_.Bernoulli(config_.abandon_prob);
    if (abandons) {
      const double hold = rng_.Exponential(config_.abandon_hold_rate);
      PushEvent({now_ + hold, event_sequence_++, id,
                 MarketEvent::Kind::kAbandon, 0});
    } else {
      const double processing = rng_.Exponential(task.spec.processing_rate);
      PushEvent({now_ + processing, event_sequence_++, id,
                 MarketEvent::Kind::kCompletion, 0});
    }
  }
  // The loop never mutates the on-hold arrays (acceptance only flips task
  // state and schedules events), so the accepted positions stay valid for
  // one compaction pass here.
  if (!accepted_positions_.empty()) {
    tasks_.RemoveOnHoldPositions(accepted_positions_);
  }
}

void MarketSimulator::AdvanceTask(TaskId id, OpenTask& task, double t) {
  if (static_cast<int>(task.outcome.repetitions.size()) >=
      task.spec.repetitions) {
    task.outcome.completed_time = t;
    Record({t, TraceEventKind::kTaskCompleted, 0, id, task.spec.repetitions});
    tasks_.Complete(id);
    return;
  }
  // Expose the next repetition: sequential submission (§4.3).
  ExposeCurrentRepetition(id, task, t, /*reposted=*/false,
                          /*already_on_hold=*/false);
}

void MarketSimulator::ApplyEvent(const MarketEvent& event) {
  now_ = event.time;
  ++event_counts_.events_dispatched;
  OpenTask* found = tasks_.FindOpen(event.task);
  if (event.kind == MarketEvent::Kind::kExpiry) {
    // Expiry events may be stale: the task completed, a worker accepted the
    // exposed repetition, or it was already reposted (new generation).
    if (found == nullptr) {
      ++event_counts_.stale_expiries;
      return;
    }
    OpenTask& task = *found;
    if (!task.awaiting_acceptance ||
        event.generation != task.exposure_generation) {
      ++event_counts_.stale_expiries;
      return;
    }
    ++event_counts_.expiries;
    ++task.outcome.expired_posts;
    const int rep_index =
        static_cast<int>(task.outcome.repetitions.size()) + 1;
    Record({now_, TraceEventKind::kExpired, 0, event.task, rep_index});
    ExposeCurrentRepetition(event.task, task, now_, /*reposted=*/true,
                            /*already_on_hold=*/true);
    return;
  }

  HTUNE_CHECK(found != nullptr);
  OpenTask& task = *found;

  if (event.kind == MarketEvent::Kind::kAbandon) {
    // The worker returns the repetition unanswered: drop the attempt, pay
    // nothing, and put the repetition back on hold at the task's current
    // terms (a later Reprice supersedes the abandoned promise).
    ++event_counts_.abandons;
    const RepetitionOutcome attempt = task.outcome.repetitions.back();
    task.outcome.repetitions.pop_back();
    ++task.outcome.abandoned_attempts;
    const size_t slot = task.outcome.repetitions.size();
    if (task.reprice_price > 0) {
      task.rep_prices[slot] = task.reprice_price;
      task.rep_rates[slot] = task.reprice_rate;
    }
    Record({now_, TraceEventKind::kAbandoned, attempt.worker, event.task,
            static_cast<int>(slot) + 1});
    ExposeCurrentRepetition(event.task, task, now_, /*reposted=*/true,
                            /*already_on_hold=*/false);
    return;
  }

  ++event_counts_.completions;
  RepetitionOutcome& rep = task.outcome.repetitions.back();
  rep.completed_time = now_;
  total_spent_ += task.rep_prices[task.outcome.repetitions.size() - 1];
  const int rep_index = static_cast<int>(task.outcome.repetitions.size());
  Record({now_, TraceEventKind::kRepetitionCompleted, rep.worker,
          event.task, rep_index});
  AdvanceTask(event.task, task, now_);
}

Status MarketSimulator::Reprice(TaskId id, int new_price,
                                double new_on_hold_rate) {
  if (new_price < 1) {
    return InvalidArgumentError("Reprice: price must be >= 1");
  }
  OpenTask* found = tasks_.FindOpen(id);
  if (found == nullptr) {
    if (tasks_.FindCompleted(id) != nullptr) {
      return FailedPreconditionError("Reprice: task already completed");
    }
    return NotFoundError("Reprice: unknown task id");
  }
  OpenTask& task = *found;
  double rate = new_on_hold_rate;
  if (task.effective_curve != nullptr) {
    rate = task.effective_curve->Rate(static_cast<double>(new_price));
  }
  if (rate <= 0.0) {
    return InvalidArgumentError(
        "Reprice: need a positive on-hold rate (or a market true_curve)");
  }
  if (rate > config_.worker_arrival_rate) {
    return FailedPreconditionError(
        "Reprice: on-hold rate exceeds worker arrival rate");
  }
  // While on hold, the current slot (= repetitions.size()) takes the new
  // terms; while processing, the accepted repetition keeps its promise and
  // only later slots change (but if the in-flight attempt is abandoned, its
  // slot is re-exposed at the repriced terms).
  const size_t first = task.outcome.repetitions.size();
  for (size_t r = first; r < task.rep_prices.size(); ++r) {
    task.rep_prices[r] = new_price;
    task.rep_rates[r] = rate;
  }
  task.reprice_price = new_price;
  task.reprice_rate = rate;
  if (task.awaiting_acceptance) {
    tasks_.UpdateOnHoldProb(id, rate / config_.worker_arrival_rate);
  }
  ++event_counts_.reprices;
  return OkStatus();
}

size_t MarketSimulator::RunUntil(double deadline) {
  while (tasks_.open_count() > 0) {
    const bool has_event = !queue_->empty();
    const double event_time = has_event ? queue_->Min().time : 0.0;
    if (has_event && event_time <= next_arrival_time_) {
      if (event_time > deadline) break;
      ApplyEvent(queue_->Pop());
    } else {
      if (next_arrival_time_ > deadline) break;
      StepWorkerArrival();
    }
  }
  if (deadline > now_) {
    now_ = deadline;
  }
  return tasks_.open_count();
}

Status MarketSimulator::RunToCompletion() {
  if (tasks_.open_count() == 0) {
    return FailedPreconditionError("RunToCompletion: no open tasks");
  }
  // Safety valve: with sane rates a job finishes long before this many
  // events; hitting the cap means a posted rate is effectively zero (or an
  // acceptance timeout is reposting a starved repetition forever).
  constexpr uint64_t kMaxEvents = 200'000'000;
  uint64_t events = 0;
  while (tasks_.open_count() > 0) {
    if (++events > kMaxEvents) {
      const TaskId stuck_id = tasks_.LowestOpenId();
      const OpenTask& stuck = *tasks_.FindOpen(stuck_id);
      return InternalError(
          "RunToCompletion: event horizon exceeded at t=" +
          std::to_string(now_) + "; task " + std::to_string(stuck_id) +
          " is still open on repetition " +
          std::to_string(stuck.outcome.repetitions.size() + 1) + " of " +
          std::to_string(stuck.spec.repetitions) + " (" +
          std::to_string(tasks_.open_count()) +
          " open tasks total) — a posted rate is effectively zero");
    }
    if (!queue_->empty() && queue_->Min().time <= next_arrival_time_) {
      ApplyEvent(queue_->Pop());
    } else {
      StepWorkerArrival();
    }
  }
  return OkStatus();
}

StatusOr<TaskOutcome> MarketSimulator::GetOutcome(TaskId id) const {
  HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* outcome, GetOutcomeView(id));
  return *outcome;
}

StatusOr<const TaskOutcome*> MarketSimulator::GetOutcomeView(
    TaskId id) const {
  const TaskOutcome* done = tasks_.FindCompleted(id);
  if (done != nullptr) {
    return done;
  }
  if (tasks_.FindOpen(id) != nullptr) {
    return FailedPreconditionError("GetOutcome: task not yet complete");
  }
  return NotFoundError("GetOutcome: unknown task id");
}

StatusOr<double> MarketSimulator::OnHoldSince(TaskId id) const {
  const OpenTask* open = tasks_.FindOpen(id);
  if (open == nullptr) {
    if (tasks_.FindCompleted(id) != nullptr) {
      return FailedPreconditionError("OnHoldSince: task already completed");
    }
    return NotFoundError("OnHoldSince: unknown task id");
  }
  if (!open->awaiting_acceptance) {
    return FailedPreconditionError(
        "OnHoldSince: current repetition is being processed");
  }
  return open->current_posted_time;
}

StatusOr<int> MarketSimulator::CurrentPrice(TaskId id) const {
  const OpenTask* open = tasks_.FindOpen(id);
  if (open == nullptr) {
    if (tasks_.FindCompleted(id) != nullptr) {
      return FailedPreconditionError("CurrentPrice: task already completed");
    }
    return NotFoundError("CurrentPrice: unknown task id");
  }
  const size_t reps = open->outcome.repetitions.size();
  // On hold: the exposed slot == reps. Processing: the in-flight attempt is
  // the last recorded repetition.
  const size_t slot = open->awaiting_acceptance ? reps : reps - 1;
  return open->rep_prices[slot];
}

StatusOr<TaskOutcome> MarketSimulator::GetProgress(TaskId id) const {
  HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* outcome, GetProgressView(id));
  return *outcome;
}

StatusOr<const TaskOutcome*> MarketSimulator::GetProgressView(
    TaskId id) const {
  const OpenTask* open = tasks_.FindOpen(id);
  if (open != nullptr) {
    return &open->outcome;
  }
  const TaskOutcome* done = tasks_.FindCompleted(id);
  if (done != nullptr) {
    return done;
  }
  return NotFoundError("GetProgress: unknown task id");
}

const std::vector<TaskOutcome>& MarketSimulator::CompletedOutcomes() const {
  return tasks_.completed();
}

namespace {

/// Maps a task's curve pointer to its MarketState index (pointer identity:
/// the controller posts tasks with curves from its own table, so the same
/// shared object is found again at capture time).
StatusOr<int32_t> CurveToIndex(
    const std::shared_ptr<const PriceRateCurve>& curve,
    const std::shared_ptr<const PriceRateCurve>& market_curve,
    const std::vector<std::shared_ptr<const PriceRateCurve>>& table) {
  if (curve == nullptr) return MarketState::kCurveNone;
  if (curve == market_curve) return MarketState::kCurveMarket;
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i] == curve) {
      return static_cast<int32_t>(MarketState::kCurveTableBase + i);
    }
  }
  return InvalidArgumentError(
      "CaptureState: open task references a curve outside the curve table");
}

StatusOr<std::shared_ptr<const PriceRateCurve>> CurveFromIndex(
    int32_t index, const std::shared_ptr<const PriceRateCurve>& market_curve,
    const std::vector<std::shared_ptr<const PriceRateCurve>>& table) {
  if (index == MarketState::kCurveNone) {
    return std::shared_ptr<const PriceRateCurve>();
  }
  if (index == MarketState::kCurveMarket) {
    if (market_curve == nullptr) {
      return InvalidArgumentError(
          "RestoreState: state references the market true_curve but the "
          "config has none");
    }
    return market_curve;
  }
  const int64_t slot = static_cast<int64_t>(index) -
                       MarketState::kCurveTableBase;
  if (slot < 0 || slot >= static_cast<int64_t>(table.size()) ||
      table[static_cast<size_t>(slot)] == nullptr) {
    return InvalidArgumentError("RestoreState: curve index " +
                                std::to_string(index) +
                                " outside the curve table");
  }
  return table[static_cast<size_t>(slot)];
}

}  // namespace

StatusOr<MarketState> MarketSimulator::CaptureState(
    const std::vector<std::shared_ptr<const PriceRateCurve>>& curve_table)
    const {
  MarketState state;
  state.now = now_;
  state.next_arrival_time = next_arrival_time_;
  state.next_worker = next_worker_;
  state.next_task = next_task_;
  state.event_sequence = event_sequence_;
  state.total_spent = total_spent_;
  state.rng = rng_.SaveState();
  const std::vector<MarketEvent> events = queue_->SortedSnapshot();
  state.events.reserve(events.size());
  for (const MarketEvent& event : events) {
    state.events.push_back({event.time, event.sequence, event.task,
                            static_cast<uint8_t>(event.kind),
                            event.generation});
  }
  state.open_tasks.reserve(tasks_.open_count());
  Status capture_status = OkStatus();
  tasks_.ForEachOpenInIdOrder([&](TaskId id, const OpenTask& task) {
    if (!capture_status.ok()) return;
    MarketState::Task t;
    t.id = id;
    t.price_per_repetition = task.spec.price_per_repetition;
    t.repetitions = task.spec.repetitions;
    t.on_hold_rate = task.spec.on_hold_rate;
    t.spec_prices = task.spec.per_repetition_prices;
    t.spec_rates = task.spec.per_repetition_rates;
    StatusOr<int32_t> spec_curve =
        CurveToIndex(task.spec.true_curve, config_.true_curve, curve_table);
    if (!spec_curve.ok()) {
      capture_status = spec_curve.status();
      return;
    }
    t.spec_curve = *spec_curve;
    t.processing_rate = task.spec.processing_rate;
    t.acceptance_timeout = task.spec.acceptance_timeout;
    t.true_answer = task.spec.true_answer;
    t.num_options = task.spec.num_options;
    t.rep_prices = task.rep_prices;
    t.rep_rates = task.rep_rates;
    StatusOr<int32_t> effective_curve =
        CurveToIndex(task.effective_curve, config_.true_curve, curve_table);
    if (!effective_curve.ok()) {
      capture_status = effective_curve.status();
      return;
    }
    t.effective_curve = *effective_curve;
    t.outcome = task.outcome;
    t.next_repetition = task.next_repetition;
    t.awaiting_acceptance = task.awaiting_acceptance;
    t.current_posted_time = task.current_posted_time;
    t.exposure_generation = task.exposure_generation;
    t.reprice_price = task.reprice_price;
    t.reprice_rate = task.reprice_rate;
    state.open_tasks.push_back(std::move(t));
  });
  HTUNE_RETURN_IF_ERROR(capture_status);
  state.completed = tasks_.completed();
  state.completion_order.reserve(state.completed.size());
  for (const TaskOutcome& outcome : state.completed) {
    state.completion_order.push_back(outcome.id);
  }
  state.trace = trace_;
  return state;
}

Status MarketSimulator::RestoreState(
    const MarketState& state,
    const std::vector<std::shared_ptr<const PriceRateCurve>>& curve_table) {
  // Structural validation first so a failed restore leaves the simulator
  // untouched: a fresh TaskStore is built off to the side and only
  // move-assigned over the live one once everything checks out.
  for (const MarketState::Event& event : state.events) {
    if (event.kind > static_cast<uint8_t>(MarketEvent::Kind::kExpiry)) {
      return InvalidArgumentError("RestoreState: unknown event kind");
    }
  }
  // In every reachable state the id space [1, next_task) is exactly the
  // open and completed sets combined; checking it up front also bounds the
  // id-index allocation against hostile snapshot blobs.
  if (state.next_task < 1 ||
      state.next_task - 1 !=
          state.open_tasks.size() + state.completed.size()) {
    return InvalidArgumentError(
        "RestoreState: task id space does not match the open and completed "
        "sets");
  }
  TaskStore store;
  store.PrepareForRestore(state.next_task);
  for (const MarketState::Task& t : state.open_tasks) {
    const size_t reps = static_cast<size_t>(t.repetitions);
    if (t.repetitions < 1 || t.rep_prices.size() != reps ||
        t.rep_rates.size() != reps ||
        t.outcome.repetitions.size() > reps) {
      return InvalidArgumentError(
          "RestoreState: task repetition shape is inconsistent");
    }
    if (t.awaiting_acceptance && t.outcome.repetitions.size() >= reps) {
      // An awaiting task always has an exposed slot left; a state claiming
      // otherwise would index rep_rates out of bounds on the next arrival.
      return InvalidArgumentError(
          "RestoreState: awaiting task has no repetition left to expose");
    }
    OpenTask* task = store.InsertForRestore(t.id);
    if (task == nullptr) {
      return InvalidArgumentError("RestoreState: duplicate open task id");
    }
    task->spec.price_per_repetition = t.price_per_repetition;
    task->spec.repetitions = t.repetitions;
    task->spec.on_hold_rate = t.on_hold_rate;
    task->spec.per_repetition_prices = t.spec_prices;
    task->spec.per_repetition_rates = t.spec_rates;
    HTUNE_ASSIGN_OR_RETURN(
        task->spec.true_curve,
        CurveFromIndex(t.spec_curve, config_.true_curve, curve_table));
    task->spec.processing_rate = t.processing_rate;
    task->spec.acceptance_timeout = t.acceptance_timeout;
    task->spec.true_answer = t.true_answer;
    task->spec.num_options = t.num_options;
    task->rep_prices = t.rep_prices;
    task->rep_rates = t.rep_rates;
    HTUNE_ASSIGN_OR_RETURN(
        task->effective_curve,
        CurveFromIndex(t.effective_curve, config_.true_curve, curve_table));
    task->outcome = t.outcome;
    task->next_repetition = t.next_repetition;
    task->awaiting_acceptance = t.awaiting_acceptance;
    task->current_posted_time = t.current_posted_time;
    task->exposure_generation = t.exposure_generation;
    task->reprice_price = t.reprice_price;
    task->reprice_rate = t.reprice_rate;
  }
  if (state.completion_order.size() != state.completed.size()) {
    return InvalidArgumentError(
        "RestoreState: completion order does not match completed set");
  }
  // Index the completed outcomes by id, then append them in completion
  // order (snapshots may hold them in any permutation: v2 writes completion
  // order, v1 wrote id order).
  std::vector<int64_t> outcome_at(static_cast<size_t>(state.next_task - 1),
                                  -1);
  for (size_t i = 0; i < state.completed.size(); ++i) {
    const TaskId id = state.completed[i].id;
    if (id < 1 || id >= state.next_task) {
      return InvalidArgumentError(
          "RestoreState: completed task id outside the id space");
    }
    if (outcome_at[static_cast<size_t>(id - 1)] != -1) {
      return InvalidArgumentError("RestoreState: duplicate completed id");
    }
    outcome_at[static_cast<size_t>(id - 1)] = static_cast<int64_t>(i);
  }
  for (const TaskId id : state.completion_order) {
    const int64_t at =
        id >= 1 && id < state.next_task
            ? outcome_at[static_cast<size_t>(id - 1)]
            : -1;
    if (at < 0) {
      return InvalidArgumentError(
          "RestoreState: completion order names an unknown task");
    }
    outcome_at[static_cast<size_t>(id - 1)] = -1;  // consume (rejects dups)
    if (!store.AddCompletedForRestore(
            state.completed[static_cast<size_t>(at)])) {
      return InvalidArgumentError("RestoreState: duplicate completed id");
    }
  }
  std::vector<MarketEvent> events;
  events.reserve(state.events.size());
  for (const MarketState::Event& event : state.events) {
    events.push_back({event.time, event.sequence, event.task,
                      static_cast<MarketEvent::Kind>(event.kind),
                      event.generation});
  }

  now_ = state.now;
  next_arrival_time_ = state.next_arrival_time;
  next_worker_ = state.next_worker;
  next_task_ = state.next_task;
  event_sequence_ = state.event_sequence;
  total_spent_ = state.total_spent;
  rng_.RestoreState(state.rng);
  queue_->Assign(std::move(events));
  tasks_ = std::move(store);
  // Rebuild the on-hold index (not serialized: it is derivable state).
  tasks_.ForEachOpenInIdOrder([&](TaskId id, const OpenTask& task) {
    if (task.awaiting_acceptance) {
      tasks_.AddOnHold(id,
                       task.rep_rates[task.outcome.repetitions.size()] /
                           config_.worker_arrival_rate);
    }
  });
  trace_ = state.trace;
  return OkStatus();
}

}  // namespace htune
