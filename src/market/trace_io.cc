#include "market/trace_io.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace htune {

std::string TraceToCsv(const std::vector<TraceEvent>& trace) {
  std::string csv = "time,kind,worker,task,repetition\n";
  for (const TraceEvent& event : trace) {
    csv += FormatDouble(event.time, 6);
    csv += ',';
    csv += TraceEventKindToString(event.kind);
    csv += ',';
    csv += std::to_string(event.worker);
    csv += ',';
    csv += std::to_string(event.task);
    csv += ',';
    csv += std::to_string(event.repetition);
    csv += '\n';
  }
  return csv;
}

Status WriteTraceCsv(const std::vector<TraceEvent>& trace,
                     const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return InternalError("WriteTraceCsv: cannot open " + path);
  }
  const std::string csv = TraceToCsv(trace);
  const size_t written = std::fwrite(csv.data(), 1, csv.size(), file);
  const int close_result = std::fclose(file);
  if (written != csv.size() || close_result != 0) {
    return InternalError("WriteTraceCsv: short write to " + path);
  }
  return OkStatus();
}

StatusOr<TraceSummary> SummarizeOutcomes(
    const std::vector<TaskOutcome>& outcomes) {
  if (outcomes.empty()) {
    return InvalidArgumentError("SummarizeOutcomes: no outcomes");
  }
  TraceSummary summary;
  summary.tasks = outcomes.size();
  double on_hold_total = 0.0;
  double processing_total = 0.0;
  size_t wrong = 0;
  for (const TaskOutcome& outcome : outcomes) {
    if (outcome.completed_time <= outcome.posted_time &&
        outcome.repetitions.empty()) {
      return InvalidArgumentError(
          "SummarizeOutcomes: incomplete task in input");
    }
    summary.max_task_latency =
        std::max(summary.max_task_latency, outcome.Latency());
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      ++summary.repetitions;
      on_hold_total += rep.OnHoldLatency();
      processing_total += rep.ProcessingLatency();
      summary.total_paid += rep.price;
      if (!rep.correct) ++wrong;
    }
  }
  if (summary.repetitions == 0) {
    return InvalidArgumentError("SummarizeOutcomes: no repetitions");
  }
  summary.mean_on_hold =
      on_hold_total / static_cast<double>(summary.repetitions);
  summary.mean_processing =
      processing_total / static_cast<double>(summary.repetitions);
  summary.error_rate =
      static_cast<double>(wrong) / static_cast<double>(summary.repetitions);
  return summary;
}

std::string SummaryToString(const TraceSummary& summary) {
  std::string out;
  out += std::to_string(summary.tasks);
  out += " tasks / ";
  out += std::to_string(summary.repetitions);
  out += " repetitions; mean on-hold ";
  out += FormatDouble(summary.mean_on_hold, 4);
  out += ", mean processing ";
  out += FormatDouble(summary.mean_processing, 4);
  out += ", job latency ";
  out += FormatDouble(summary.max_task_latency, 4);
  out += ", error rate ";
  out += FormatDouble(summary.error_rate * 100.0, 1);
  out += "%, paid ";
  out += std::to_string(summary.total_paid);
  out += " units";
  return out;
}

}  // namespace htune
