#include "market/trace_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "common/strings.h"

namespace htune {

namespace {

constexpr std::string_view kCsvHeader = "time,kind,worker,task,repetition";

}  // namespace

std::string TraceToCsv(const std::vector<TraceEvent>& trace) {
  std::string csv = std::string(kCsvHeader) + "\n";
  for (const TraceEvent& event : trace) {
    csv += FormatDouble(event.time, 6);
    csv += ',';
    csv += TraceEventKindToString(event.kind);
    csv += ',';
    csv += std::to_string(event.worker);
    csv += ',';
    csv += std::to_string(event.task);
    csv += ',';
    csv += std::to_string(event.repetition);
    csv += '\n';
  }
  return csv;
}

Status WriteTraceCsv(const std::vector<TraceEvent>& trace,
                     const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return InternalError("WriteTraceCsv: cannot open " + path);
  }
  const std::string csv = TraceToCsv(trace);
  const size_t written = std::fwrite(csv.data(), 1, csv.size(), file);
  const int close_result = std::fclose(file);
  if (written != csv.size() || close_result != 0) {
    return InternalError("WriteTraceCsv: short write to " + path);
  }
  return OkStatus();
}

StatusOr<TraceEventKind> TraceEventKindFromString(std::string_view name) {
  for (const TraceEventKind kind :
       {TraceEventKind::kWorkerArrival, TraceEventKind::kTaskAccepted,
        TraceEventKind::kRepetitionCompleted, TraceEventKind::kTaskCompleted,
        TraceEventKind::kAbandoned, TraceEventKind::kExpired,
        TraceEventKind::kReposted}) {
    if (TraceEventKindToString(kind) == name) {
      return kind;
    }
  }
  return InvalidArgumentError("unknown trace event kind: '" +
                              std::string(name) + "'");
}

StatusOr<std::vector<TraceEvent>> ParseTraceCsv(std::string_view csv) {
  std::vector<std::string> lines = SplitString(csv, '\n');
  // The writer ends every row with '\n', leaving one trailing empty field.
  if (!lines.empty() && lines.back().empty()) {
    lines.pop_back();
  }
  if (lines.empty() || lines[0] != kCsvHeader) {
    return InvalidArgumentError("ParseTraceCsv: missing header '" +
                                std::string(kCsvHeader) + "'");
  }
  std::vector<TraceEvent> trace;
  trace.reserve(lines.size() - 1);
  // Per-task monotonicity check: a task's events must carry non-decreasing
  // timestamps (task 0 covers worker arrivals, which the simulator also
  // emits in time order). Catches hand-edited or corrupted traces that
  // would silently skew latency statistics downstream. Hashed rather than
  // ordered: ids come from untrusted CSV, so a flat array could be made to
  // allocate per the largest id, and no ordered iteration is needed.
  std::unordered_map<TaskId, double> last_time_per_task;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string where =
        "ParseTraceCsv: line " + std::to_string(i + 1) + ": ";
    const std::vector<std::string> fields = SplitString(lines[i], ',');
    if (fields.size() != 5) {
      return InvalidArgumentError(where + "expected 5 fields, got " +
                                  std::to_string(fields.size()));
    }
    TraceEvent event;
    char* end = nullptr;
    event.time = std::strtod(fields[0].c_str(), &end);
    if (end == fields[0].c_str() || *end != '\0') {
      return InvalidArgumentError(where + "bad time '" + fields[0] + "'");
    }
    if (std::isnan(event.time) || event.time < 0.0) {
      return InvalidArgumentError(where + "negative or NaN time '" +
                                  fields[0] + "'");
    }
    HTUNE_ASSIGN_OR_RETURN(event.kind, TraceEventKindFromString(fields[1]));
    event.worker = std::strtoull(fields[2].c_str(), &end, 10);
    if (end == fields[2].c_str() || *end != '\0') {
      return InvalidArgumentError(where + "bad worker '" + fields[2] + "'");
    }
    event.task = std::strtoull(fields[3].c_str(), &end, 10);
    if (end == fields[3].c_str() || *end != '\0') {
      return InvalidArgumentError(where + "bad task '" + fields[3] + "'");
    }
    const long repetition = std::strtol(fields[4].c_str(), &end, 10);
    if (end == fields[4].c_str() || *end != '\0') {
      return InvalidArgumentError(where + "bad repetition '" + fields[4] +
                                  "'");
    }
    event.repetition = static_cast<int>(repetition);
    const auto [it, first_event] =
        last_time_per_task.emplace(event.task, event.time);
    if (!first_event) {
      if (event.time < it->second) {
        return InvalidArgumentError(
            where + "time " + fields[0] + " for task " +
            std::to_string(event.task) +
            " goes backwards (previous event at " +
            FormatDouble(it->second, 6) + ")");
      }
      it->second = event.time;
    }
    trace.push_back(event);
  }
  return trace;
}

StatusOr<std::vector<TraceEvent>> ReadTraceCsv(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("ReadTraceCsv: cannot read " + path);
  }
  std::string csv;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    csv.append(buffer, got);
  }
  std::fclose(file);
  return ParseTraceCsv(csv);
}

StatusOr<TraceSummary> SummarizeOutcomes(
    const std::vector<TaskOutcome>& outcomes) {
  if (outcomes.empty()) {
    return InvalidArgumentError("SummarizeOutcomes: no outcomes");
  }
  TraceSummary summary;
  summary.tasks = outcomes.size();
  double on_hold_total = 0.0;
  double processing_total = 0.0;
  size_t wrong = 0;
  for (const TaskOutcome& outcome : outcomes) {
    if (outcome.completed_time <= outcome.posted_time &&
        outcome.repetitions.empty()) {
      return InvalidArgumentError(
          "SummarizeOutcomes: incomplete task in input");
    }
    summary.max_task_latency =
        std::max(summary.max_task_latency, outcome.Latency());
    summary.abandoned_attempts +=
        static_cast<size_t>(outcome.abandoned_attempts);
    summary.expired_posts += static_cast<size_t>(outcome.expired_posts);
    summary.reposted_posts += static_cast<size_t>(outcome.reposted_posts);
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      ++summary.repetitions;
      on_hold_total += rep.OnHoldLatency();
      processing_total += rep.ProcessingLatency();
      summary.total_paid += rep.price;
      if (!rep.correct) ++wrong;
    }
  }
  if (summary.repetitions == 0) {
    return InvalidArgumentError("SummarizeOutcomes: no repetitions");
  }
  summary.mean_on_hold =
      on_hold_total / static_cast<double>(summary.repetitions);
  summary.mean_processing =
      processing_total / static_cast<double>(summary.repetitions);
  summary.error_rate =
      static_cast<double>(wrong) / static_cast<double>(summary.repetitions);
  return summary;
}

std::string SummaryToString(const TraceSummary& summary) {
  std::string out;
  out += std::to_string(summary.tasks);
  out += " tasks / ";
  out += std::to_string(summary.repetitions);
  out += " repetitions; mean on-hold ";
  out += FormatDouble(summary.mean_on_hold, 4);
  out += ", mean processing ";
  out += FormatDouble(summary.mean_processing, 4);
  out += ", job latency ";
  out += FormatDouble(summary.max_task_latency, 4);
  out += ", error rate ";
  out += FormatDouble(summary.error_rate * 100.0, 1);
  out += "%, paid ";
  out += std::to_string(summary.total_paid);
  out += " units";
  if (summary.abandoned_attempts > 0 || summary.expired_posts > 0 ||
      summary.reposted_posts > 0) {
    out += "; ";
    out += std::to_string(summary.abandoned_attempts);
    out += " abandoned, ";
    out += std::to_string(summary.expired_posts);
    out += " expired, ";
    out += std::to_string(summary.reposted_posts);
    out += " reposts";
  }
  return out;
}

}  // namespace htune
