#include "market/shared_stream.h"

#include <cmath>

#include "common/check.h"

namespace htune {

SharedArrivalStream::SharedArrivalStream(double arrival_rate, uint64_t seed)
    : arrival_rate_(arrival_rate), rng_(seed) {
  HTUNE_CHECK_GT(arrival_rate, 0.0);
  HTUNE_CHECK(std::isfinite(arrival_rate));
  next_arrival_time_ = rng_.Exponential(arrival_rate_);
}

double SharedArrivalStream::TotalWeight(const double* weights, size_t n) {
  // Strictly left to right: this sum is recomputed fresh on every arrival
  // (never maintained incrementally across membership changes), so the
  // accumulation order — and therefore the bit pattern of W — depends only
  // on the candidate order, which restore replays identically.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += weights[i];
  }
  return total;
}

SharedArrivalStream::Draw SharedArrivalStream::StepDraw() {
  Draw draw;
  now_ = next_arrival_time_;
  draw.time = now_;
  draw.worker = arrivals_++;
  next_arrival_time_ = now_ + rng_.Exponential(arrival_rate_);
  // The selection draw happens unconditionally so the uniform stream
  // advances two draws per arrival no matter who competes.
  draw.selector = rng_.Uniform();
  return draw;
}

SharedArrival SharedArrivalStream::Step(const double* weights, size_t n) {
  const Draw draw = StepDraw();
  SharedArrival arrival;
  arrival.time = draw.time;
  arrival.worker = draw.worker;

  const double total = TotalWeight(weights, n);
  // T = max(rate, W): below saturation each candidate keeps its exact
  // marginal rate w_i; above it everyone shares the common dilution
  // arrival_rate / W.
  const double threshold =
      draw.selector * (total > arrival_rate_ ? total : arrival_rate_);
  if (threshold < total) {
    double cumulative = 0.0;
    for (size_t i = 0; i < n; ++i) {
      cumulative += weights[i];
      if (threshold < cumulative) {
        arrival.accepted = true;
        arrival.candidate = i;
        break;
      }
    }
    // threshold < total with the identical accumulation order guarantees
    // the scan found a candidate; the guard above is the whole proof.
    HTUNE_CHECK(arrival.accepted);
  }
  return arrival;
}

SharedStreamState SharedArrivalStream::CaptureState() const {
  SharedStreamState state;
  state.now = now_;
  state.next_arrival_time = next_arrival_time_;
  state.arrivals = arrivals_;
  state.rng = rng_.SaveState();
  return state;
}

void SharedArrivalStream::RestoreState(const SharedStreamState& state) {
  now_ = state.now;
  next_arrival_time_ = state.next_arrival_time;
  arrivals_ = state.arrivals;
  rng_.RestoreState(state.rng);
}

}  // namespace htune
