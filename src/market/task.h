#ifndef HTUNE_MARKET_TASK_H_
#define HTUNE_MARKET_TASK_H_

#include <memory>
#include <vector>

#include "market/events.h"
#include "model/price_rate_curve.h"

namespace htune {

/// One task to post: `repetitions` answers gathered sequentially (repetition
/// j+1 is exposed to workers only after repetition j's answer returns, per
/// §4.3), each paying `price_per_repetition`.
struct TaskSpec {
  /// Payment units promised per repetition; must be >= 1.
  int price_per_repetition = 1;
  /// Number of sequential answer repetitions; must be >= 1.
  int repetitions = 1;
  /// On-hold clock rate lambda_o for this task at this price. The caller
  /// maps price to rate through a PriceRateCurve; the simulator takes the
  /// rate so it stays decoupled from curve calibration.
  double on_hold_rate = 1.0;
  /// Optional per-repetition overrides. When non-empty, both must have
  /// exactly `repetitions` entries and replace the scalar price/rate for
  /// the corresponding repetition (used when an allocator pays repetitions
  /// of one task differently, e.g. EA's remainder units).
  std::vector<int> per_repetition_prices;
  std::vector<double> per_repetition_rates;
  /// Optional market-behaviour override for this task's type: when set (or
  /// when the market has a global true_curve), every rate — including
  /// Reprice — is derived from it and caller-supplied rates are ignored.
  /// Lets simulations give different task types different real
  /// price-responsiveness.
  std::shared_ptr<const PriceRateCurve> true_curve;
  /// Processing clock rate lambda_p (difficulty; price independent).
  double processing_rate = 1.0;
  /// When > 0, the exposed repetition expires if no worker accepts it
  /// within this window; the simulator reposts it immediately (kExpired
  /// then kReposted) and the on-hold clock restarts. Models the HIT
  /// lifetime requesters set on AMT. 0 = never expires.
  double acceptance_timeout = 0.0;
  /// Ground-truth option index for answer bookkeeping.
  int true_answer = 0;
  /// Number of answer options (>= 2 when errors are possible): a worker who
  /// errs returns a uniformly random wrong option.
  int num_options = 2;
};

/// A posted task's live state while it is open. Owned by the TaskStore in a
/// recycled slot; ResetForReuse clears a previous tenant field by field so
/// the slot's vector capacity survives recycling.
struct OpenTask {
  TaskSpec spec;
  /// Normalized per-repetition payments/rates (scalar spec expanded).
  std::vector<int> rep_prices;
  std::vector<double> rep_rates;
  /// Effective market-behaviour curve (task override or market global);
  /// null when the caller's explicit rates govern.
  std::shared_ptr<const PriceRateCurve> effective_curve;
  TaskOutcome outcome;
  /// Index (0-based) of the repetition currently exposed to workers, ==
  /// outcome.repetitions.size() while a repetition is on hold or being
  /// processed.
  int next_repetition = 0;
  /// True while the current repetition awaits a worker (on-hold phase).
  bool awaiting_acceptance = true;
  /// Posted time of the currently exposed repetition.
  double current_posted_time = 0.0;
  /// Bumped on every (re)exposure; invalidates stale expiry events.
  uint64_t exposure_generation = 0;
  /// Terms set by the latest Reprice (or -1 when never repriced): an
  /// abandoned repetition is re-exposed at these, not at the terms the
  /// abandoning worker accepted under.
  int reprice_price = -1;
  double reprice_rate = 0.0;

  void ResetForReuse() {
    spec.price_per_repetition = 1;
    spec.repetitions = 1;
    spec.on_hold_rate = 1.0;
    spec.per_repetition_prices.clear();
    spec.per_repetition_rates.clear();
    spec.true_curve.reset();
    spec.processing_rate = 1.0;
    spec.acceptance_timeout = 0.0;
    spec.true_answer = 0;
    spec.num_options = 2;
    rep_prices.clear();
    rep_rates.clear();
    effective_curve.reset();
    outcome.id = 0;
    outcome.posted_time = 0.0;
    outcome.completed_time = 0.0;
    outcome.repetitions.clear();
    outcome.abandoned_attempts = 0;
    outcome.expired_posts = 0;
    outcome.reposted_posts = 0;
    next_repetition = 0;
    awaiting_acceptance = true;
    current_posted_time = 0.0;
    exposure_generation = 0;
    reprice_price = -1;
    reprice_rate = 0.0;
  }
};

}  // namespace htune

#endif  // HTUNE_MARKET_TASK_H_
