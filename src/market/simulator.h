#ifndef HTUNE_MARKET_SIMULATOR_H_
#define HTUNE_MARKET_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/statusor.h"
#include "market/event_queue.h"
#include "market/events.h"
#include "market/fault_schedule.h"
#include "market/rate_schedule.h"
#include "market/task.h"
#include "market/task_store.h"
#include "model/price_rate_curve.h"
#include "rng/random.h"

namespace htune {

/// Bit for `kind` in MarketConfig::trace_mask.
constexpr uint32_t TraceMaskBit(TraceEventKind kind) {
  return uint32_t{1} << static_cast<int>(kind);
}

/// Every TraceEventKind bit set: the full trace (the default).
inline constexpr uint32_t kTraceMaskAll = ~uint32_t{0};

/// Feature probe for tools built against multiple engine revisions (the
/// throughput bench compiles against pre-mask checkouts to capture
/// baselines).
#define HTUNE_MARKET_HAS_TRACE_MASK 1

/// Global marketplace parameters (the AMT stand-in).
struct MarketConfig {
  /// Poisson rate at which workers enter the marketplace (workers per unit
  /// time). Must exceed the on-hold rate of any posted task: a task's
  /// acceptance process is the arrival process thinned by the worker's
  /// price-dependent acceptance probability, so lambda_o <= arrival rate.
  double worker_arrival_rate = 100.0;
  /// Probability that a worker's answer is wrong (the HPU's "error-prone"
  /// trait). Applied per repetition.
  double worker_error_prob = 0.0;
  /// When > 0, workers are heterogeneous: each arriving worker draws a
  /// personal error probability from Beta(a, b) with mean
  /// a / (a + b) = worker_error_prob and "concentration"
  /// a + b = worker_error_concentration. 0 keeps the constant model.
  double worker_error_concentration = 0.0;
  /// Optional time-varying arrival intensity (daily/weekly workforce
  /// cycles). When set, workers arrive as a nonhomogeneous Poisson process
  /// with this intensity, while each worker's acceptance probability stays
  /// on_hold_rate / worker_arrival_rate — so a task's instantaneous
  /// acceptance rate scales with schedule(t) / worker_arrival_rate, and
  /// worker_arrival_rate acts as the calibration reference the tuner's
  /// rates were measured against.
  std::shared_ptr<const RateSchedule> arrival_schedule;
  /// Optional ground-truth price-to-rate mapping owned by the market. When
  /// set, PostTask and Reprice derive every repetition's on-hold rate from
  /// this curve and ignore caller-supplied rates — modeling the real
  /// situation where the requester only controls the price and may hold a
  /// stale estimate of the market's responsiveness.
  std::shared_ptr<const PriceRateCurve> true_curve;
  /// Worker abandonment ("return HIT"): with this probability an accepted
  /// repetition is never answered — the worker holds it for an
  /// Exp(abandon_hold_rate) time, then returns it. Nothing is paid and the
  /// repetition goes back on hold (kAbandoned then kReposted in the trace).
  /// 0 disables the fault and leaves the RNG stream untouched.
  double abandon_prob = 0.0;
  /// Rate of the exponential hold before an abandoning worker gives up.
  /// Must be positive when abandon_prob > 0.
  double abandon_hold_rate = 1.0;
  /// Optional scripted fault windows (demand outages, error bursts). The
  /// arrival factor composes multiplicatively with `arrival_schedule` (or
  /// the constant worker_arrival_rate); error overrides replace the worker
  /// error model inside their window.
  std::shared_ptr<const FaultSchedule> fault_schedule;
  /// PRNG seed; two simulators with equal configs and posting sequences
  /// produce identical traces.
  uint64_t seed = 1;
  /// If true, every event passing `trace_mask` is appended to the trace
  /// (Fig 3 uses this); large jobs may prefer to disable tracing.
  bool record_trace = true;
  /// Which TraceEventKinds to record (1 << kind per bit). The default
  /// records everything, preserving the historical full trace bitwise.
  /// Million-event runs typically drop the per-worker arrival firehose
  /// with `kTraceMaskAll & ~TraceMaskBit(TraceEventKind::kWorkerArrival)`
  /// while keeping every task-lifecycle record. Filtering changes only
  /// which records are appended — never the simulation's RNG stream.
  uint32_t trace_mask = kTraceMaskAll;
  /// Pending-event scheduler. The calendar queue is the amortized-O(1)
  /// default; the binary heap is the pre-rewrite reference kept for
  /// equivalence testing. Both pop in the identical (time, sequence)
  /// total order, so this choice never affects results — only speed.
  EventQueueImpl event_queue = EventQueueImpl::kCalendar;
};

/// Complete dynamic state of a MarketSimulator as plain serializable data,
/// for checkpoint/restore (src/durability). The MarketConfig is NOT part of
/// the state: recovery reconstructs the simulator from the same config the
/// original run was started with (configs come from code or a job spec, not
/// from the snapshot), then restores this state into it. Curves referenced
/// by open tasks are encoded as indices into a caller-supplied table of
/// shared curve objects, since arbitrary PriceRateCurve implementations are
/// not serializable (see MarketState::kCurve* sentinels).
struct MarketState {
  /// Curve reference encoding used by `Task::spec_curve` /
  /// `Task::effective_curve`.
  static constexpr int32_t kCurveNone = 0;     ///< no curve (null)
  static constexpr int32_t kCurveMarket = 1;   ///< the config's true_curve
  static constexpr int32_t kCurveTableBase = 2;  ///< table[i] at 2 + i

  /// Mirror of MarketEvent. CaptureState emits events in the canonical
  /// (time, sequence) order — the snapshot-v2 wire order. RestoreState
  /// accepts any permutation: the event queue's pop order depends only on
  /// the set of events, not on their submission order (historical v1
  /// snapshots stored the binary heap's backing array verbatim, which is
  /// just such a permutation).
  struct Event {
    double time = 0.0;
    uint64_t sequence = 0;
    TaskId task = 0;
    uint8_t kind = 0;  // MarketEvent::Kind
    uint64_t generation = 0;
  };

  /// Mirror of OpenTask plus its TaskSpec.
  struct Task {
    TaskId id = 0;
    // TaskSpec fields (scalar price/rate retained for faithfulness even
    // though the normalized per-repetition vectors govern execution).
    int price_per_repetition = 1;
    int repetitions = 1;
    double on_hold_rate = 1.0;
    std::vector<int> spec_prices;
    std::vector<double> spec_rates;
    int32_t spec_curve = kCurveNone;
    double processing_rate = 1.0;
    double acceptance_timeout = 0.0;
    int true_answer = 0;
    int num_options = 2;
    // OpenTask fields.
    std::vector<int> rep_prices;
    std::vector<double> rep_rates;
    int32_t effective_curve = kCurveNone;
    TaskOutcome outcome;
    int next_repetition = 0;
    bool awaiting_acceptance = true;
    double current_posted_time = 0.0;
    uint64_t exposure_generation = 0;
    int reprice_price = -1;
    double reprice_rate = 0.0;
  };

  double now = 0.0;
  double next_arrival_time = 0.0;
  uint64_t next_worker = 0;
  TaskId next_task = 1;
  uint64_t event_sequence = 0;
  long total_spent = 0;
  Random::State rng;
  std::vector<Event> events;
  std::vector<Task> open_tasks;
  /// Completed outcomes keyed by TaskOutcome::id. CaptureState emits them
  /// in completion order (matching `completion_order`); v1 snapshots hold
  /// them in id order. RestoreState accepts any permutation consistent
  /// with `completion_order`.
  std::vector<TaskOutcome> completed;
  std::vector<TaskId> completion_order;
  std::vector<TraceEvent> trace;
};

/// Cumulative dispatch counts maintained by the simulator since
/// construction. Plain integers bumped inline on the hot event loop — the
/// market layer stays free of any observability dependency; controllers and
/// the CLI publish these to obs gauges at phase boundaries. Deliberately NOT
/// part of MarketState: counters are diagnostics, and excluding them keeps
/// the capture/restore bitwise-identity contract about simulation state
/// only.
struct MarketEventCounts {
  uint64_t events_dispatched = 0;  ///< total MarketEvents applied
  uint64_t completions = 0;        ///< kCompletion events applied
  uint64_t abandons = 0;           ///< kAbandon events applied
  uint64_t expiries = 0;           ///< live kExpiry events applied
  uint64_t stale_expiries = 0;     ///< kExpiry no-ops (stale generation)
  uint64_t worker_arrivals = 0;    ///< worker-arrival steps taken
  uint64_t tasks_posted = 0;       ///< successful PostTask calls
  uint64_t reprices = 0;           ///< successful Reprice calls
};

/// Discrete-event simulator of a crowdsourcing marketplace implementing the
/// paper's stochastic model end-to-end: Poisson worker arrivals (§3.1.1),
/// price-thinned task acceptance (§3.1.2), exponential processing times
/// (§3.2), and error-prone answers. The acceptance process of each open
/// repetition is an independent thinning of the arrival stream, so its law
/// is Exp(lambda_o) exactly as the model assumes — but realized worker by
/// worker, which lets experiments observe arrival epochs (Fig 3) and
/// non-asymptotic effects.
///
/// Engine layout (see DESIGN.md §11): tasks live in a dense slot store with
/// an O(1) id index and a sorted on-hold index, pending events in a
/// calendar queue, and the per-arrival acceptance scan batches its uniform
/// draws — all bitwise-identical in observable behaviour to the original
/// map-and-heap engine (the golden-trace suite pins that equivalence).
class MarketSimulator {
 public:
  explicit MarketSimulator(const MarketConfig& config);

  MarketSimulator(const MarketSimulator&) = delete;
  MarketSimulator& operator=(const MarketSimulator&) = delete;

  /// Posts a task at the current simulated time. Returns its id, or
  /// InvalidArgument / FailedPrecondition on a bad spec (non-positive rates,
  /// price < 1, on_hold_rate > worker_arrival_rate).
  StatusOr<TaskId> PostTask(const TaskSpec& spec);

  /// Changes the payment of the currently exposed and all future
  /// repetitions of an open task (already-accepted repetitions keep their
  /// original terms; if the current repetition is on hold, the new rate
  /// applies immediately — well-defined by memorylessness). The new on-hold
  /// rate comes from the market's true_curve when configured; otherwise
  /// `new_on_hold_rate` must be supplied and positive. NotFound for unknown
  /// ids, FailedPrecondition for completed tasks.
  Status Reprice(TaskId id, int new_price, double new_on_hold_rate = 0.0);

  /// Runs until every posted task has completed or simulated time exceeds
  /// `deadline`. Returns the number of tasks still open at return.
  size_t RunUntil(double deadline);

  /// Runs until all posted tasks complete. Returns FailedPrecondition if no
  /// tasks are open and Internal if the simulation exceeds an internal
  /// safety horizon (which indicates an impossible acceptance rate).
  Status RunToCompletion();

  /// Current simulated time.
  double now() const { return now_; }

  /// Outcome of task `id`, as a copy; NotFound if unknown,
  /// FailedPrecondition if still incomplete. Prefer GetOutcomeView on
  /// polling paths — a TaskOutcome owns a vector per repetition.
  StatusOr<TaskOutcome> GetOutcome(TaskId id) const;

  /// Copy-free variant of GetOutcome: a pointer into the completed store,
  /// valid until the simulator is mutated (run/post/reprice/restore).
  StatusOr<const TaskOutcome*> GetOutcomeView(TaskId id) const;

  /// Snapshot of task `id`'s progress, complete or not: the outcome so far,
  /// with completed_time == 0 while the task is still open (abandoned
  /// attempts and expired posts are reflected as they happen). NotFound if
  /// unknown.
  StatusOr<TaskOutcome> GetProgress(TaskId id) const;

  /// Copy-free variant of GetProgress: a pointer into the live task (or
  /// completed store), valid until the simulator is mutated.
  StatusOr<const TaskOutcome*> GetProgressView(TaskId id) const;

  /// Time the currently exposed repetition of `id` was (re)posted, i.e. how
  /// long it has been waiting is now() - OnHoldSince(id). FailedPrecondition
  /// when the current repetition is being processed or the task completed;
  /// NotFound for unknown ids. Controllers use this to spot stragglers.
  StatusOr<double> OnHoldSince(TaskId id) const;

  /// Payment the currently exposed (or in-flight) repetition of `id`
  /// promises. FailedPrecondition for completed tasks, NotFound otherwise.
  StatusOr<int> CurrentPrice(TaskId id) const;

  /// Outcomes of all completed tasks, in completion order. The reference
  /// is into the simulator's own store (no copy); it is invalidated by
  /// RestoreState and grows as tasks complete.
  const std::vector<TaskOutcome>& CompletedOutcomes() const;

  /// Number of workers who have arrived so far.
  uint64_t workers_arrived() const { return next_worker_; }

  /// Number of posted tasks not yet completed.
  size_t OpenTaskCount() const { return tasks_.open_count(); }

  /// The recorded event trace (empty when record_trace is false; filtered
  /// by MarketConfig::trace_mask).
  const std::vector<TraceEvent>& trace() const { return trace_; }

  /// Total payment units spent on completed repetitions so far.
  long TotalSpent() const { return total_spent_; }

  /// Cumulative event-dispatch counts since construction (not part of
  /// MarketState; a restored simulator keeps its own counts).
  const MarketEventCounts& EventCounts() const { return event_counts_; }

  /// Captures the complete dynamic state for a checkpoint. `curve_table`
  /// must contain (by pointer identity) every curve referenced by an open
  /// task that is neither null nor the config's own true_curve; an
  /// unmatchable curve is an InvalidArgument, since a restore could never
  /// rebuild it. Controllers pass the same table they post tasks with.
  StatusOr<MarketState> CaptureState(
      const std::vector<std::shared_ptr<const PriceRateCurve>>& curve_table)
      const;

  /// Restores a captured state, replacing all dynamic state of this
  /// simulator. The simulator must have been constructed with the same
  /// MarketConfig as the one the state was captured from, and `curve_table`
  /// must resolve the state's curve indices. A restored simulator continues
  /// bitwise-identically to the captured one. InvalidArgument on indices or
  /// shapes the state cannot satisfy.
  Status RestoreState(
      const MarketState& state,
      const std::vector<std::shared_ptr<const PriceRateCurve>>& curve_table);

 private:
  void PushEvent(const MarketEvent& event) { queue_->Push(event); }

  void Record(const TraceEvent& event);
  /// Samples the next worker arrival epoch after `after` (homogeneous, or
  /// thinned against the joint schedule x fault envelope when either is
  /// configured).
  double SampleArrivalAfter(double after);
  /// Advances to the next worker arrival and lets that worker consider every
  /// repetition awaiting acceptance (via the on-hold index, in TaskId
  /// order — the same draw order as the historical full-map scan).
  void StepWorkerArrival();
  /// Decides an arriving worker's answer for `task` (error model applied).
  void FillAnswer(const OpenTask& task, double worker_error,
                  RepetitionOutcome& rep);
  /// Applies the event at the head of the event queue.
  void ApplyEvent(const MarketEvent& event);
  /// Exposes the next repetition of `task` (or finalizes it) at time `t`.
  void AdvanceTask(TaskId id, OpenTask& task, double t);
  /// Puts the current repetition of `task` (back) on hold at time `t`,
  /// arming the acceptance-timeout clock. `reposted` records a kReposted
  /// trace event (abandonment / expiry recovery). `already_on_hold` is set
  /// on the expiry path, where the task never left the on-hold index (and
  /// its cached acceptance probability is already current).
  void ExposeCurrentRepetition(TaskId id, OpenTask& task, double t,
                               bool reposted, bool already_on_hold);

  MarketConfig config_;
  Random rng_;
  double now_ = 0.0;
  double next_arrival_time_;
  uint64_t next_worker_ = 0;
  TaskId next_task_ = 1;
  uint64_t event_sequence_ = 0;
  long total_spent_ = 0;
  TaskStore tasks_;
  std::unique_ptr<EventQueue> queue_;
  std::vector<TraceEvent> trace_;
  // HTUNE_TRANSIENT: report-only event tallies, reset on resume
  MarketEventCounts event_counts_;
  /// Reusable scratch: PostTask validates per-repetition rates into this
  /// before committing a slot; the arrival scan collects accepted on-hold
  /// positions. Both keep their capacity across calls.
  std::vector<double> rate_buf_;  // HTUNE_TRANSIENT: scratch, capacity only
  std::vector<uint32_t> accepted_positions_;  // HTUNE_TRANSIENT: scratch
};

}  // namespace htune

#endif  // HTUNE_MARKET_SIMULATOR_H_
