#ifndef HTUNE_MARKET_FAULT_SCHEDULE_H_
#define HTUNE_MARKET_FAULT_SCHEDULE_H_

#include <vector>

#include "common/statusor.h"

namespace htune {

/// One scripted fault window on the simulated market: over [start, end) the
/// worker-arrival intensity is multiplied by `arrival_factor` (0 = total
/// demand outage, values in (0, 1) = partial outage, > 1 = surge), and, when
/// `error_prob >= 0`, every arriving worker's error probability is overridden
/// by it (an error burst — e.g. a spammer wave).
struct FaultWindow {
  double start = 0.0;
  double end = 0.0;
  double arrival_factor = 1.0;
  /// Negative = keep the market's base error model inside the window.
  double error_prob = -1.0;
};

/// A one-shot fault-injection script: a sorted, non-overlapping list of
/// FaultWindows. Outside every window the market behaves nominally
/// (arrival factor 1, base error model). Unlike RateSchedule — which models
/// recurring workforce cycles and repeats forever — a FaultSchedule is an
/// absolute-time script for robustness experiments; the two compose
/// multiplicatively when both are configured.
class FaultSchedule {
 public:
  /// Validates and builds a schedule. Windows must have end > start >= 0,
  /// arrival_factor >= 0, error_prob either negative or within [0, 1], and
  /// must not overlap once sorted by start time. At least one window is
  /// required (an empty script is expressed by no FaultSchedule at all).
  static StatusOr<FaultSchedule> Create(std::vector<FaultWindow> windows);

  /// Arrival-intensity multiplier at absolute time `t` (1 outside windows).
  double ArrivalFactorAt(double t) const;

  /// Worker error probability at `t`: the window's override when `t` falls
  /// inside a window carrying one, otherwise `base_error_prob`.
  double ErrorProbAt(double t, double base_error_prob) const;

  /// Largest arrival multiplier over all time, including the implicit 1
  /// outside windows — the thinning envelope for arrival generation.
  double MaxArrivalFactor() const;

  /// Largest error probability reachable given `base_error_prob`.
  double MaxErrorProb(double base_error_prob) const;

  const std::vector<FaultWindow>& windows() const { return windows_; }

 private:
  explicit FaultSchedule(std::vector<FaultWindow> windows);

  /// Sorted by start, pairwise disjoint.
  std::vector<FaultWindow> windows_;
};

}  // namespace htune

#endif  // HTUNE_MARKET_FAULT_SCHEDULE_H_
