#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <thread>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace htune {

namespace {

/// One dynamic-scheduling parallel region. Helper tasks enqueued on the pool
/// and the calling thread all pull chunks off `next` until the index space
/// is exhausted; `done` counts finished indices so the caller can wait out
/// chunks still running on workers after it runs dry. Held by shared_ptr so
/// helper tasks that wake after the region completed find valid (drained)
/// state and return immediately.
struct ForRegion {
  /// body/n/chunk are written once before the region is published to any
  /// helper task and read-only afterwards, so they need no guard.
  const std::function<void(size_t)>* body = nullptr;
  size_t n = 0;
  size_t chunk = 1;
  std::atomic<size_t> next{0};
  Mutex mu;
  CondVar done_cv;
  size_t done HTUNE_GUARDED_BY(mu) = 0;
  std::exception_ptr error HTUNE_GUARDED_BY(mu);  // first failure

  void RunChunks() {
    while (true) {
      const size_t start = next.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= n) return;
      const size_t end = std::min(start + chunk, n);
      std::exception_ptr caught;
      try {
        for (size_t i = start; i < end; ++i) {
          (*body)(i);
        }
      } catch (...) {
        caught = std::current_exception();
      }
      MutexLock lock(mu);
      if (caught && !error) error = caught;
      done += end - start;
      if (done == n) done_cv.NotifyAll();
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  Mutex mu;
  CondVar work_cv;
  std::deque<std::function<void()>> queue HTUNE_GUARDED_BY(mu);
  bool stopping HTUNE_GUARDED_BY(mu) = false;
  /// Touched only by the owning thread (constructor spawn, destructor
  /// join), never from workers, so it stays unguarded.
  std::vector<std::thread> workers;

  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mu);
        while (!stopping && queue.empty()) work_cv.Wait(mu);
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }

  void Enqueue(std::function<void()> task) {
    {
      MutexLock lock(mu);
      queue.push_back(std::move(task));
    }
    work_cv.NotifyOne();
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(std::make_unique<Impl>()), threads_(threads) {
  HTUNE_CHECK_GE(threads, 1);
  impl_->workers.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.NotifyAll();
  for (std::thread& worker : impl_->workers) {
    worker.join();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  auto region = std::make_shared<ForRegion>();
  region->body = &body;
  region->n = n;
  // Small chunks keep the expensive-kernel case (quadrature per index)
  // balanced; the cap bounds scheduling overhead for huge cheap loops.
  region->chunk =
      std::max<size_t>(1, n / (static_cast<size_t>(threads_) * 8));

  const size_t helpers =
      std::min<size_t>(static_cast<size_t>(threads_ - 1),
                       (n + region->chunk - 1) / region->chunk);
  for (size_t h = 0; h < helpers; ++h) {
    impl_->Enqueue([region] { region->RunChunks(); });
  }
  region->RunChunks();

  MutexLock lock(region->mu);
  while (region->done != region->n) region->done_cv.Wait(region->mu);
  if (region->error) std::rethrow_exception(region->error);
}

int DefaultThreadCount() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any worker
  // thread exists; the result is cached in the default pool's size.
  if (const char* env = std::getenv("HTUNE_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1 && parsed <= 1024) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {
ThreadPool* g_default_override = nullptr;
}  // namespace

ThreadPool& DefaultThreadPool() {
  if (g_default_override != nullptr) return *g_default_override;
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

ScopedDefaultThreadPool::ScopedDefaultThreadPool(ThreadPool* pool)
    : previous_(g_default_override) {
  g_default_override = pool;
}

ScopedDefaultThreadPool::~ScopedDefaultThreadPool() {
  g_default_override = previous_;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  DefaultThreadPool().ParallelFor(n, body);
}

}  // namespace htune
