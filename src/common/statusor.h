#ifndef HTUNE_COMMON_STATUSOR_H_
#define HTUNE_COMMON_STATUSOR_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace htune {

/// Holds either a value of type `T` or an error `Status`. Accessing the value
/// of a non-OK StatusOr aborts the process (htune is exception-free), so
/// callers must test `ok()` first. [[nodiscard]] like Status: a dropped
/// result is a dropped error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. Passing an OK status here is a
  /// programming error and is converted to an internal error.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }

  /// Constructs from a value; the result is OK.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(OkStatus()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if `!ok()`.
  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "StatusOr::value() on error status: " << status_
                << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace htune

/// Evaluates `rexpr` (a StatusOr<T>), propagating its error status from the
/// current function on failure and binding the value to `lhs` on success.
#define HTUNE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  HTUNE_ASSIGN_OR_RETURN_IMPL_(                                 \
      HTUNE_STATUS_MACRO_CONCAT_(statusor_tmp_, __LINE__), lhs, rexpr)

#define HTUNE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#define HTUNE_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define HTUNE_STATUS_MACRO_CONCAT_(x, y) HTUNE_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // HTUNE_COMMON_STATUSOR_H_
