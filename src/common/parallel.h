#ifndef HTUNE_COMMON_PARALLEL_H_
#define HTUNE_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace htune {

/// Fixed-size thread pool for the tuning stack's embarrassingly parallel
/// hot loops (kernel prewarms, Monte Carlo replications).
///
/// Determinism contract: ParallelFor/ParallelMap schedule dynamically, so
/// which thread runs which index is unspecified — but every index runs
/// exactly once and bodies write only per-index output slots, so results
/// are bitwise-identical regardless of thread count or scheduling. Callers
/// must keep any floating-point reduction out of the parallel region and
/// fold the slots serially in index order.
class ThreadPool {
 public:
  /// A pool with `threads` total lanes of concurrency (>= 1). The calling
  /// thread participates in every parallel region, so `threads == 1` means
  /// purely inline serial execution and spawns no workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs `body(i)` for every i in [0, n), distributing contiguous chunks
  /// across the pool; the caller participates and blocks until all indices
  /// complete. The first exception thrown by any body is rethrown on the
  /// caller after the region drains. Nested calls are safe: an inner region
  /// whose workers are busy is simply executed by its own caller.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// ParallelFor writing `fn(i)` into slot i of the returned vector.
  template <typename T>
  std::vector<T> ParallelMap(size_t n, const std::function<T(size_t)>& fn) {
    std::vector<T> out(n);
    ParallelFor(n, [&out, &fn](size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int threads_;
};

/// The pool size the process defaults to: the HTUNE_THREADS environment
/// variable if set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (minimum 1).
int DefaultThreadCount();

/// Lazily constructed process-wide pool of DefaultThreadCount() lanes, used
/// by every free ParallelFor/ParallelMap and by the allocator prewarms.
ThreadPool& DefaultThreadPool();

/// Swaps the pool returned by DefaultThreadPool() for this scope — the
/// explicit-handle override (tests run the allocators at 1/4/hardware lanes
/// to assert determinism). Not thread-safe against concurrent regions on
/// the previous default; install overrides from a quiescent main thread.
class ScopedDefaultThreadPool {
 public:
  explicit ScopedDefaultThreadPool(ThreadPool* pool);
  ~ScopedDefaultThreadPool();

  ScopedDefaultThreadPool(const ScopedDefaultThreadPool&) = delete;
  ScopedDefaultThreadPool& operator=(const ScopedDefaultThreadPool&) = delete;

 private:
  ThreadPool* previous_;
};

/// ParallelFor on the default pool.
void ParallelFor(size_t n, const std::function<void(size_t)>& body);

/// ParallelMap on the default pool.
template <typename T>
std::vector<T> ParallelMap(size_t n, const std::function<T(size_t)>& fn) {
  return DefaultThreadPool().ParallelMap<T>(n, fn);
}

}  // namespace htune

#endif  // HTUNE_COMMON_PARALLEL_H_
