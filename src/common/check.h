#ifndef HTUNE_COMMON_CHECK_H_
#define HTUNE_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>

/// Aborts with a diagnostic if `condition` is false. Used for invariants that
/// indicate a programming error (not recoverable input errors, which return
/// Status instead). Always enabled, including in release builds, because the
/// guarded invariants protect simulation correctness.
#define HTUNE_CHECK(condition)                                          \
  do {                                                                  \
    if (!(condition)) {                                                 \
      std::cerr << "HTUNE_CHECK failed at " << __FILE__ << ":"          \
                << __LINE__ << ": " #condition << std::endl;            \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#define HTUNE_CHECK_OP_(a, b, op)                                       \
  do {                                                                  \
    if (!((a)op(b))) {                                                  \
      std::cerr << "HTUNE_CHECK failed at " << __FILE__ << ":"          \
                << __LINE__ << ": " #a " " #op " " #b " (" << (a)       \
                << " vs " << (b) << ")" << std::endl;                   \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#define HTUNE_CHECK_EQ(a, b) HTUNE_CHECK_OP_(a, b, ==)
#define HTUNE_CHECK_NE(a, b) HTUNE_CHECK_OP_(a, b, !=)
#define HTUNE_CHECK_LT(a, b) HTUNE_CHECK_OP_(a, b, <)
#define HTUNE_CHECK_LE(a, b) HTUNE_CHECK_OP_(a, b, <=)
#define HTUNE_CHECK_GT(a, b) HTUNE_CHECK_OP_(a, b, >)
#define HTUNE_CHECK_GE(a, b) HTUNE_CHECK_OP_(a, b, >=)

/// Aborts if `status_expr` evaluates to a non-OK ::htune::Status.
#define HTUNE_CHECK_OK(status_expr)                                     \
  do {                                                                  \
    const ::htune::Status htune_check_ok_tmp = (status_expr);           \
    if (!htune_check_ok_tmp.ok()) {                                     \
      std::cerr << "HTUNE_CHECK_OK failed at " << __FILE__ << ":"       \
                << __LINE__ << ": " << htune_check_ok_tmp << std::endl; \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#endif  // HTUNE_COMMON_CHECK_H_
