#include "common/status.h"

#include <string>

namespace htune {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}

Status OutOfRangeError(std::string_view message) {
  return Status(StatusCode::kOutOfRange, std::string(message));
}

Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, std::string(message));
}

Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, std::string(message));
}

Status AlreadyExistsError(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, std::string(message));
}

Status ResourceExhaustedError(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, std::string(message));
}

Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, std::string(message));
}

Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, std::string(message));
}

Status UnavailableError(std::string_view message) {
  return Status(StatusCode::kUnavailable, std::string(message));
}

}  // namespace htune
