#ifndef HTUNE_COMMON_THREAD_ANNOTATIONS_H_
#define HTUNE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (no-ops on other
/// compilers). Annotating every lock-protected field with
/// HTUNE_GUARDED_BY and every locking function with the acquire/release
/// macros lets `clang -Wthread-safety` prove the locking discipline at
/// compile time — a missed lock is a build error, not a race TSan has to
/// catch at runtime. The spellings follow the Clang documentation (and
/// abseil's thread_annotations.h); see DESIGN.md §9 for which invariants
/// the annotations protect.
///
/// Only the annotated wrapper types in common/mutex.h carry the
/// capability attributes, so the analysis only understands locks taken
/// through them — which is why tools/lint_htune.py bans raw std::mutex
/// outside that header.

#if defined(__clang__)
#define HTUNE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HTUNE_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares that a field or variable is protected by `x` (a capability,
/// i.e. an htune::Mutex or htune::SharedMutex). Reads require the lock
/// held at least shared; writes require it held exclusively.
#define HTUNE_GUARDED_BY(x) HTUNE_THREAD_ANNOTATION(guarded_by(x))

/// Like HTUNE_GUARDED_BY, for pointer fields: the pointed-to data (not
/// the pointer itself) is protected by `x`.
#define HTUNE_PT_GUARDED_BY(x) HTUNE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that the annotated function requires the listed capabilities
/// held exclusively (resp. shared) on entry, and does not release them.
#define HTUNE_REQUIRES(...) \
  HTUNE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HTUNE_REQUIRES_SHARED(...) \
  HTUNE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Declares that the annotated function acquires the listed capabilities
/// (exclusively / shared) and holds them on return.
#define HTUNE_ACQUIRE(...) \
  HTUNE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HTUNE_ACQUIRE_SHARED(...) \
  HTUNE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Declares that the annotated function releases the listed capabilities
/// (which must be held on entry).
#define HTUNE_RELEASE(...) \
  HTUNE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HTUNE_RELEASE_SHARED(...) \
  HTUNE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Declares that the annotated function tries to acquire the capability
/// and returns `result` (true/false) on success.
#define HTUNE_TRY_ACQUIRE(...) \
  HTUNE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares that the annotated function must NOT be called with the
/// listed capabilities held (deadlock prevention: e.g. Clear() excludes
/// the shard mutexes it is about to take).
#define HTUNE_EXCLUDES(...) HTUNE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Marks a type as a capability (lockable) for the analysis.
#define HTUNE_CAPABILITY(x) HTUNE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (htune::MutexLock and friends).
#define HTUNE_SCOPED_CAPABILITY HTUNE_THREAD_ANNOTATION(scoped_lockable)

/// Declares that this capability must be acquired after `...` (lock
/// ordering, checked when both orders appear in one function).
#define HTUNE_ACQUIRED_AFTER(...) \
  HTUNE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define HTUNE_ACQUIRED_BEFORE(...) \
  HTUNE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Returns a reference to the underlying capability; lets a wrapper
/// expose its mutex for annotation purposes.
#define HTUNE_RETURN_CAPABILITY(x) \
  HTUNE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment justifying why the discipline cannot be expressed.
#define HTUNE_NO_THREAD_SAFETY_ANALYSIS \
  HTUNE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // HTUNE_COMMON_THREAD_ANNOTATIONS_H_
