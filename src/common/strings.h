#ifndef HTUNE_COMMON_STRINGS_H_
#define HTUNE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace htune {

/// Joins `parts` with `separator` ("a", "b" -> "a,b").
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator);

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view text, char delimiter);

/// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace htune

#endif  // HTUNE_COMMON_STRINGS_H_
