#ifndef HTUNE_COMMON_STATUS_H_
#define HTUNE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace htune {

/// Canonical error codes, modeled after the subset of absl::StatusCode that a
/// numerical/simulation library actually needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
  /// A transient fault: the operation failed now but may succeed if
  /// retried (flaky journal I/O, a stalled market endpoint). This is the
  /// one code the resilience layer treats as retryable; everything else is
  /// considered permanent.
  kUnavailable = 9,
};

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. htune is exception-free: every
/// fallible operation returns `Status` (or `StatusOr<T>`); callers must check
/// `ok()` before relying on side effects. The type is [[nodiscard]], so
/// silently dropping a journal/recovery/spec-parsing error is a compile
/// error under -Werror; a call site that intentionally ignores the result
/// must say so with a `(void)` cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and diagnostic `message`. An OK code
  /// with a non-empty message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string()
                                                      : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Convenience constructors mirroring absl's.
Status OkStatus();
Status InvalidArgumentError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status InternalError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status UnavailableError(std::string_view message);

}  // namespace htune

/// Propagates an error Status from the current function if `expr` is not OK.
#define HTUNE_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::htune::Status htune_status_macro_tmp = (expr);  \
    if (!htune_status_macro_tmp.ok()) {               \
      return htune_status_macro_tmp;                  \
    }                                                 \
  } while (false)

#endif  // HTUNE_COMMON_STATUS_H_
