#ifndef HTUNE_COMMON_MUTEX_H_
#define HTUNE_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace htune {

/// Annotated wrappers over the std synchronization primitives. All locking
/// in src/ goes through these types (tools/lint_htune.py enforces it):
/// they carry the Clang capability attributes, so a field declared
/// HTUNE_GUARDED_BY(mu_) can only be touched while the analysis can prove
/// mu_ is held. Method names keep the std lowercase spelling so the
/// wrappers stay BasicLockable/SharedLockable and interoperate with
/// CondVar and std algorithms.

/// Exclusive mutex (std::mutex with a capability annotation).
class HTUNE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HTUNE_ACQUIRE() { mu_.lock(); }
  void unlock() HTUNE_RELEASE() { mu_.unlock(); }
  bool try_lock() HTUNE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex (std::shared_mutex with a capability annotation).
class HTUNE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() HTUNE_ACQUIRE() { mu_.lock(); }
  void unlock() HTUNE_RELEASE() { mu_.unlock(); }
  bool try_lock() HTUNE_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() HTUNE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() HTUNE_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() HTUNE_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex.
class HTUNE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HTUNE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HTUNE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex.
class HTUNE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) HTUNE_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() HTUNE_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class HTUNE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) HTUNE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() HTUNE_RELEASE_SHARED() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable usable with Mutex. Wait() is annotated REQUIRES:
/// the mutex must be held on entry and is held again on return (the
/// internal unlock/relock is invisible to the analysis, matching how
/// abseil annotates CondVar::Wait). Use an explicit while-loop around
/// Wait() rather than the predicate overloads of std::condition_variable
/// — the analysis cannot see through a predicate lambda, and the loop
/// keeps the guarded reads inside the annotated critical section.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) HTUNE_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace htune

#endif  // HTUNE_COMMON_MUTEX_H_
