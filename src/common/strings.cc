#include "common/strings.h"

#include <cstdio>

namespace htune {

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      result += separator;
    }
    result += parts[i];
  }
  return result;
}

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace htune
