#ifndef HTUNE_TUNING_REPETITION_ALLOCATOR_H_
#define HTUNE_TUNING_REPETITION_ALLOCATOR_H_

#include <string>
#include <vector>

#include "tuning/allocator.h"

namespace htune {

/// Scenario II: the Repetition Algorithm ("RA", Algorithm 2). Tasks are
/// grouped by repetition count; the objective is the group-sum surrogate
/// min sum_i E[L1(g_i)] subject to the budget, where group i's tasks all
/// pay a uniform per-repetition price p_i and raising p_i by one unit costs
/// u_i = num_tasks_i * repetitions_i budget units.
///
/// Two solution modes:
///  - kPaperDp: the paper's O(n * B') budget-indexed dynamic program, which
///    extends the best allocation at budget x - u_i by one price unit for
///    group i.
///  - kExactDp: a knapsack-style DP over per-group uniform prices, exact for
///    arbitrary (even non-convex) per-group latency tables; used to verify
///    the paper's algorithm and in ablation benches.
///
/// Caveat: kPaperDp's unit-step extension assumes the latency tables keep
/// strictly improving with price, which holds for the paper's strictly
/// increasing curves. Measured TableCurves can contain flat stretches
/// (plateaus) where the unit step shows zero gain; ties prefer spending so
/// single-group plateaus are crossed, but with several groups a competing
/// positive-gain group can starve a plateaued one. Use kExactDp when the
/// curve may plateau.
class RepetitionAllocator : public BudgetAllocator {
 public:
  enum class Mode { kPaperDp, kExactDp };

  explicit RepetitionAllocator(Mode mode = Mode::kPaperDp) : mode_(mode) {}

  std::string Name() const override {
    return mode_ == Mode::kPaperDp ? "RA" : "RA-exact";
  }
  StatusOr<Allocation> Allocate(const TuningProblem& problem) const override;

  /// Exposes the uniform per-group prices chosen for `problem` (the
  /// allocation is the uniform expansion of these). Used by HA's Utopia
  /// computation and by tests.
  StatusOr<std::vector<int>> SolvePrices(const TuningProblem& problem) const;

 private:
  std::vector<int> SolvePaperDp(const TuningProblem& problem) const;
  std::vector<int> SolveExactDp(const TuningProblem& problem) const;

  Mode mode_;
};

/// Expands uniform per-group prices into a full Allocation.
Allocation UniformAllocation(const TuningProblem& problem,
                             const std::vector<int>& prices);

}  // namespace htune

#endif  // HTUNE_TUNING_REPETITION_ALLOCATOR_H_
