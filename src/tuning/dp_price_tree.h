#ifndef HTUNE_TUNING_DP_PRICE_TREE_H_
#define HTUNE_TUNING_DP_PRICE_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace htune {

/// Persistent (path-copying) fixed-width array of per-group (price, value)
/// pairs with a max-over-values aggregate, backing the budget-indexed DPs.
///
/// The paper's Algorithm 2/3 DP used to keep a full std::vector<int> price
/// vector per budget state — O(spare * n) memory and an O(n) copy per state.
/// Here each DP state is just an int32 root id; extending a state by one
/// price unit path-copies O(log n) nodes, and querying one group's price (or
/// the max latency excluding one group) walks O(log n) nodes. Peak memory is
/// O(n + spare * log n) arena nodes plus one root id per state — O(spare)
/// for bounded group counts, with no per-state vector copies anywhere.
///
/// Versions are immutable once created, so reads of existing roots and a
/// single writer appending new versions need no synchronization (the DPs are
/// serial; only the kernel prewarm underneath them is parallel).
class DpPriceTree {
 public:
  /// A tree of `n` leaves, all starting at `price`; leaf i carries
  /// `values[i]` (pass an empty vector for all-zero values when the max
  /// aggregate is unused). The initial version is root().
  DpPriceTree(size_t n, int price, const std::vector<double>& values);

  /// Root id of the initial all-`price` version.
  int32_t root() const { return init_root_; }

  /// Reserves arena capacity for `updates` WithLeaf calls.
  void ReserveUpdates(size_t updates);

  /// Price of leaf i in version `root`.
  int PriceAt(int32_t root, size_t i) const;

  /// Max over all leaf values in version `root`.
  double MaxValue(int32_t root) const;

  /// Max over all leaf values except leaf i in version `root`
  /// (-infinity when n == 1): the candidate O2 of bumping group i is
  /// max(MaxValueExcluding(root, i), new value of i) without materializing
  /// the update.
  double MaxValueExcluding(int32_t root, size_t i) const;

  /// A new version equal to `root` with leaf i set to (price, value);
  /// path-copies O(log n) nodes and returns the new root id.
  int32_t WithLeaf(int32_t root, size_t i, int price, double value);

  /// All leaf prices of version `root`, in leaf order (one traversal).
  std::vector<int> Prices(int32_t root) const;

 private:
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    int32_t price = 0;  // leaves only
    double value = 0.0;  // leaf value, or max over the subtree
  };

  int32_t Build(size_t lo, size_t hi, int price,
                const std::vector<double>& values);
  int32_t CopySet(int32_t node, size_t lo, size_t hi, size_t i, int price,
                  double value);
  void Collect(int32_t node, std::vector<int>& out) const;

  size_t n_;
  std::vector<Node> nodes_;
  int32_t init_root_;
};

}  // namespace htune

#endif  // HTUNE_TUNING_DP_PRICE_TREE_H_
