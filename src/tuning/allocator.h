#ifndef HTUNE_TUNING_ALLOCATOR_H_
#define HTUNE_TUNING_ALLOCATOR_H_

#include <string>

#include "common/statusor.h"
#include "tuning/allocation.h"
#include "tuning/problem.h"

namespace htune {

/// Strategy interface for solving the H-Tuning problem: produce a budget
/// allocation for `problem` whose cost does not exceed problem.budget.
/// Implementations are deterministic; any tie-breaking is fixed so results
/// reproduce across runs.
class BudgetAllocator {
 public:
  virtual ~BudgetAllocator() = default;

  /// Short identifier for reports ("EA", "RA", "bias(0.67)", ...).
  virtual std::string Name() const = 0;

  /// Solves `problem`. Returns InvalidArgument for malformed problems
  /// (ValidateProblem) and FailedPrecondition if the strategy's structural
  /// assumptions (e.g. EA's homogeneity) do not hold.
  virtual StatusOr<Allocation> Allocate(const TuningProblem& problem) const = 0;
};

}  // namespace htune

#endif  // HTUNE_TUNING_ALLOCATOR_H_
