#include "tuning/deadline_allocator.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "tuning/group_latency_table.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

double Evaluate(const std::vector<GroupLatencyTable>& tables,
                const std::vector<int>& prices,
                DeadlineObjective objective) {
  if (objective == DeadlineObjective::kPhase1Sum) {
    double total = 0.0;
    for (size_t i = 0; i < tables.size(); ++i) {
      total += tables[i].Phase1(prices[i]);
    }
    return total;
  }
  double worst = 0.0;
  for (size_t i = 0; i < tables.size(); ++i) {
    worst = std::max(worst,
                     tables[i].Phase1(prices[i]) + tables[i].Phase2());
  }
  return worst;
}

// kMostDifficult decomposes per group: every group independently needs the
// cheapest price whose phase-1 + phase-2 is within the deadline. The
// stopping price is unknown upfront, so instead of prewarming the whole
// budget band we evaluate doubling windows of prices in parallel and scan
// each window serially — the same first-feasible price the fully serial
// scan finds, with wasted kernel work bounded by the final window.
StatusOr<DeadlinePlan> SolveBottleneck(
    const TuningProblem& problem,
    std::vector<GroupLatencyTable>& tables,
    const std::vector<long>& unit_cost, double deadline) {
  DeadlinePlan plan;
  const size_t n = tables.size();
  plan.prices.assign(n, 1);
  for (size_t i = 0; i < n; ++i) {
    const long max_price = problem.budget / unit_cost[i];
    int window = std::max(DefaultThreadPool().threads() * 2, 8);
    int warmed = 0;
    int price = 1;
    while (true) {
      if (price > warmed) {
        warmed = static_cast<int>(
            std::min<long>(static_cast<long>(price + window - 1), max_price));
        tables[i].Prewarm(warmed);
        window *= 2;
      }
      if (tables[i].Phase1(price) + tables[i].Phase2() <= deadline) break;
      if (price >= max_price) {
        return OutOfRangeError(
            "SolveDeadline: deadline unreachable within the budget ceiling "
            "for group '" + problem.groups[i].name + "'");
      }
      ++price;
    }
    plan.prices[i] = price;
  }
  for (size_t i = 0; i < n; ++i) {
    plan.cost += unit_cost[i] * plan.prices[i];
  }
  if (plan.cost > problem.budget) {
    return OutOfRangeError(
        "SolveDeadline: per-group requirements exceed the budget ceiling");
  }
  plan.achieved =
      Evaluate(tables, plan.prices, DeadlineObjective::kMostDifficult);
  return plan;
}

// kPhase1Sum: exact knapsack DP over total spend. best[b] = the smallest
// objective achievable spending exactly b, with per-group choices recorded
// for reconstruction; the answer is the smallest b whose value meets the
// deadline.
StatusOr<DeadlinePlan> SolveSeparable(
    const TuningProblem& problem,
    std::vector<GroupLatencyTable>& tables,
    const std::vector<long>& unit_cost, double deadline) {
  const size_t n = tables.size();
  const long budget = problem.budget;

  // The knapsack touches every price up to budget / u_i for every group:
  // prewarm the whole band in one parallel fan-out and hoist the tables
  // flat before the serial DP.
  std::vector<int> max_price(n);
  for (size_t i = 0; i < n; ++i) {
    max_price[i] = static_cast<int>(budget / unit_cost[i]);
  }
  PrewarmTables(tables, max_price);
  std::vector<std::vector<double>> phase1(n);
  for (size_t i = 0; i < n; ++i) {
    phase1[i] = tables[i].FlatPhase1(max_price[i]);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(static_cast<size_t>(budget) + 1, kInf);
  best[0] = 0.0;
  std::vector<std::vector<int>> choice(
      n, std::vector<int>(static_cast<size_t>(budget) + 1, 0));

  for (size_t i = 0; i < n; ++i) {
    std::vector<double> next(static_cast<size_t>(budget) + 1, kInf);
    const long group_max = max_price[i];
    const std::vector<double>& phase1_i = phase1[i];
    for (long b = 0; b <= budget; ++b) {
      if (best[static_cast<size_t>(b)] == kInf) continue;
      for (long p = 1; p <= group_max; ++p) {
        const long spend = b + unit_cost[i] * p;
        if (spend > budget) break;
        const double value =
            best[static_cast<size_t>(b)] + phase1_i[static_cast<size_t>(p)];
        if (value < next[static_cast<size_t>(spend)]) {
          next[static_cast<size_t>(spend)] = value;
          choice[i][static_cast<size_t>(spend)] = static_cast<int>(p);
        }
      }
    }
    best = std::move(next);
  }

  // The per-spend minima are not monotone in b (spending exactly b can be
  // awkward); take the cheapest b whose prefix-minimum meets the deadline.
  long chosen = -1;
  double running = kInf;
  long running_at = -1;
  for (long b = 0; b <= budget; ++b) {
    if (best[static_cast<size_t>(b)] < running) {
      running = best[static_cast<size_t>(b)];
      running_at = b;
    }
    if (running <= deadline) {
      chosen = running_at;
      break;
    }
  }
  if (chosen < 0) {
    return OutOfRangeError(
        "SolveDeadline: deadline unreachable within the budget ceiling");
  }

  DeadlinePlan plan;
  plan.prices.assign(n, 0);
  long b = chosen;
  for (size_t i = n; i > 0; --i) {
    const int p = choice[i - 1][static_cast<size_t>(b)];
    HTUNE_CHECK_GE(p, 1);
    plan.prices[i - 1] = p;
    b -= unit_cost[i - 1] * p;
  }
  HTUNE_CHECK_EQ(b, 0);
  plan.cost = chosen;
  plan.achieved =
      Evaluate(tables, plan.prices, DeadlineObjective::kPhase1Sum);
  return plan;
}

}  // namespace

StatusOr<DeadlinePlan> SolveDeadline(const TuningProblem& problem,
                                     double deadline,
                                     DeadlineObjective objective) {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  if (deadline <= 0.0) {
    return InvalidArgumentError("SolveDeadline: deadline must be positive");
  }

  const size_t n = problem.groups.size();
  std::vector<GroupLatencyTable> tables;
  tables.reserve(n);
  std::vector<long> unit_cost(n);
  for (size_t i = 0; i < n; ++i) {
    tables.emplace_back(problem.groups[i]);
    unit_cost[i] = problem.groups[i].UnitCost();
  }

  if (objective == DeadlineObjective::kMostDifficult) {
    // The processing floor is unbuyable: fail fast when the deadline sits
    // below it.
    double floor = 0.0;
    for (const GroupLatencyTable& table : tables) {
      floor = std::max(floor, table.Phase2());
    }
    if (deadline < floor) {
      return OutOfRangeError(
          "SolveDeadline: deadline lies below the processing-latency floor "
          "that no payment can reduce");
    }
    return SolveBottleneck(problem, tables, unit_cost, deadline);
  }
  return SolveSeparable(problem, tables, unit_cost, deadline);
}

Allocation DeadlinePlanToAllocation(const TuningProblem& problem,
                                    const DeadlinePlan& plan) {
  HTUNE_CHECK_EQ(plan.prices.size(), problem.groups.size());
  return UniformAllocation(problem, plan.prices);
}

}  // namespace htune
