#ifndef HTUNE_TUNING_DEADLINE_ALLOCATOR_H_
#define HTUNE_TUNING_DEADLINE_ALLOCATOR_H_

#include <vector>

#include "common/statusor.h"
#include "tuning/allocation.h"
#include "tuning/problem.h"

namespace htune {

/// Which expected-latency functional the deadline constrains.
enum class DeadlineObjective {
  /// Sum over groups of expected phase-1 latency (the RA surrogate): an
  /// upper bound on the batch's on-hold completion.
  kPhase1Sum,
  /// Max over groups of expected phase-1 + phase-2 latency (the HA "most
  /// difficult task" objective): a proxy for the job's expected makespan.
  kMostDifficult,
};

/// Solution of a deadline-constrained tuning instance.
struct DeadlinePlan {
  /// Uniform per-repetition price per group.
  std::vector<int> prices;
  /// Total cost in payment units.
  long cost = 0;
  /// The objective value achieved (<= the deadline).
  double achieved = 0.0;
};

/// The dual of the H-Tuning problem (cf. Gao & Parameswaran's "Finish
/// Them!" formulation the paper relates to): find the *cheapest* budget
/// allocation whose expected latency meets a deadline, instead of the
/// fastest allocation within a budget.
///
/// Both objectives are solved exactly. kPhase1Sum runs a knapsack DP over
/// total spend (the separable analogue of RA's exact mode) and returns the
/// cheapest spend whose optimal objective meets the deadline; kMostDifficult
/// decomposes per group — each group independently needs the cheapest price
/// bringing its phase-1 + phase-2 under the deadline. `problem.budget` acts
/// as the search ceiling; returns OutOfRange if the deadline cannot be met
/// within it (e.g. below the processing-latency floor, which no payment can
/// buy off), and InvalidArgument for malformed problems or a non-positive
/// deadline.
StatusOr<DeadlinePlan> SolveDeadline(const TuningProblem& problem,
                                     double deadline,
                                     DeadlineObjective objective);

/// Expands a DeadlinePlan into a full Allocation for execution.
Allocation DeadlinePlanToAllocation(const TuningProblem& problem,
                                    const DeadlinePlan& plan);

}  // namespace htune

#endif  // HTUNE_TUNING_DEADLINE_ALLOCATOR_H_
