#include "tuning/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "model/latency_model.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

// CDF at `t` of one task's total latency in group `g` at uniform
// per-repetition price `price`.
double TaskTotalCdf(const TaskGroup& g, int price, double t) {
  const double on_hold_rate = g.curve->Rate(static_cast<double>(price));
  HTUNE_CHECK_GT(on_hold_rate, 0.0);
  return SumOfErlangsCdf(g.repetitions, on_hold_rate, g.repetitions,
                         g.processing_rate, t);
}

}  // namespace

double JobCompletionProbability(const TuningProblem& problem,
                                const Allocation& alloc, double t) {
  HTUNE_CHECK_OK(ValidateAllocation(problem, alloc));
  if (t <= 0.0) return 0.0;
  double log_p = 0.0;
  for (size_t g = 0; g < problem.groups.size(); ++g) {
    const TaskGroup& group = problem.groups[g];
    HTUNE_CHECK(alloc.groups[g].IsUniform());
    const double task_cdf =
        TaskTotalCdf(group, alloc.groups[g].UniformPrice(), t);
    if (task_cdf <= 0.0) return 0.0;
    log_p += static_cast<double>(group.num_tasks) * std::log(task_cdf);
  }
  return std::exp(log_p);
}

StatusOr<double> JobLatencyQuantile(const TuningProblem& problem,
                                    const Allocation& alloc, double q) {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  HTUNE_RETURN_IF_ERROR(ValidateAllocation(problem, alloc));
  if (q <= 0.0 || q >= 1.0) {
    return InvalidArgumentError("JobLatencyQuantile: q outside (0, 1)");
  }
  // Bracket: grow the upper bound until the probability exceeds q.
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 80 && JobCompletionProbability(problem, alloc, hi) < q;
       ++i) {
    hi *= 2.0;
  }
  if (JobCompletionProbability(problem, alloc, hi) < q) {
    return InternalError("JobLatencyQuantile: failed to bracket quantile");
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (JobCompletionProbability(problem, alloc, mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

StatusOr<DeadlinePlan> SolveQuantileDeadline(const TuningProblem& problem,
                                             double deadline,
                                             double confidence) {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  if (deadline <= 0.0) {
    return InvalidArgumentError(
        "SolveQuantileDeadline: deadline must be positive");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    return InvalidArgumentError(
        "SolveQuantileDeadline: confidence outside (0, 1)");
  }

  const size_t n = problem.groups.size();
  const long budget = problem.budget;
  // Per-group "penalty" tables: -n_i log F_i(deadline; p). A group whose
  // task CDF is 0 even at the max affordable price makes the instance
  // infeasible regardless of the others.
  std::vector<std::vector<double>> penalty(n);
  std::vector<long> unit_cost(n);
  for (size_t i = 0; i < n; ++i) {
    const TaskGroup& g = problem.groups[i];
    unit_cost[i] = g.UnitCost();
    const long max_price = budget / unit_cost[i];
    penalty[i].resize(static_cast<size_t>(max_price) + 1,
                      std::numeric_limits<double>::infinity());
    for (long p = 1; p <= max_price; ++p) {
      const double cdf = TaskTotalCdf(g, static_cast<int>(p), deadline);
      if (cdf > 0.0) {
        penalty[i][static_cast<size_t>(p)] =
            -static_cast<double>(g.num_tasks) * std::log(cdf);
      }
    }
  }
  const double budget_penalty = -std::log(confidence);

  // Spend-indexed knapsack: best[b] = minimal total penalty spending
  // exactly b; feasible at the smallest b whose prefix-minimum penalty is
  // within -log(confidence).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(static_cast<size_t>(budget) + 1, kInf);
  best[0] = 0.0;
  std::vector<std::vector<int>> choice(
      n, std::vector<int>(static_cast<size_t>(budget) + 1, 0));
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> next(static_cast<size_t>(budget) + 1, kInf);
    const long max_price = budget / unit_cost[i];
    for (long b = 0; b <= budget; ++b) {
      if (best[static_cast<size_t>(b)] == kInf) continue;
      for (long p = 1; p <= max_price; ++p) {
        const long spend = b + unit_cost[i] * p;
        if (spend > budget) break;
        const double value =
            best[static_cast<size_t>(b)] + penalty[i][static_cast<size_t>(p)];
        if (value < next[static_cast<size_t>(spend)]) {
          next[static_cast<size_t>(spend)] = value;
          choice[i][static_cast<size_t>(spend)] = static_cast<int>(p);
        }
      }
    }
    best = std::move(next);
  }

  long chosen = -1;
  double running = kInf;
  long running_at = -1;
  for (long b = 0; b <= budget; ++b) {
    if (best[static_cast<size_t>(b)] < running) {
      running = best[static_cast<size_t>(b)];
      running_at = b;
    }
    if (running <= budget_penalty) {
      chosen = running_at;
      break;
    }
  }
  if (chosen < 0) {
    return OutOfRangeError(
        "SolveQuantileDeadline: confidence unreachable within the budget "
        "ceiling (the processing phase may cap the completion probability)");
  }

  DeadlinePlan plan;
  plan.prices.assign(n, 0);
  long b = chosen;
  for (size_t i = n; i > 0; --i) {
    const int p = choice[i - 1][static_cast<size_t>(b)];
    HTUNE_CHECK_GE(p, 1);
    plan.prices[i - 1] = p;
    b -= unit_cost[i - 1] * p;
  }
  HTUNE_CHECK_EQ(b, 0);
  plan.cost = chosen;
  plan.achieved = JobCompletionProbability(
      problem, UniformAllocation(problem, plan.prices), deadline);
  return plan;
}

}  // namespace htune
