#include "tuning/baselines.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace htune {
namespace {

// Builds an allocation where task t in group i pays `price_of(i, t)` per
// repetition, validating the per-repetition minimum of one unit.
template <typename PriceFn>
StatusOr<Allocation> PerTaskUniform(const TuningProblem& problem,
                                    PriceFn&& price_of) {
  Allocation allocation;
  allocation.groups.reserve(problem.groups.size());
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    const TaskGroup& g = problem.groups[i];
    GroupAllocation ga;
    ga.prices.reserve(static_cast<size_t>(g.num_tasks));
    for (int t = 0; t < g.num_tasks; ++t) {
      const long price = price_of(i, t);
      if (price < 1) {
        return InvalidArgumentError(
            "baseline allocation drops below one unit per repetition; "
            "budget too small for this strategy");
      }
      ga.prices.emplace_back(static_cast<size_t>(g.repetitions),
                             static_cast<int>(price));
    }
    allocation.groups.push_back(std::move(ga));
  }
  return allocation;
}

}  // namespace

BiasedAllocator::BiasedAllocator(double alpha) : alpha_(alpha) {
  HTUNE_CHECK_GE(alpha, 0.5);
  HTUNE_CHECK_LT(alpha, 1.0);
}

std::string BiasedAllocator::Name() const {
  return "bias(" + FormatDouble(alpha_, 2) + ")";
}

StatusOr<Allocation> BiasedAllocator::Allocate(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  const int total_tasks = problem.TotalTasks();
  const int prior_tasks = (total_tasks + 1) / 2;
  const int rest_tasks = total_tasks - prior_tasks;
  if (rest_tasks == 0) {
    return FailedPreconditionError(
        "BiasedAllocator: need at least two tasks to form two halves");
  }

  // Per-repetition price for each half, assuming the repetitions within a
  // half are homogeneous (Scenario I); with heterogeneous repetition counts
  // the half's budget is still spread evenly over its repetitions.
  long prior_reps = 0, rest_reps = 0;
  {
    int index = 0;
    for (const TaskGroup& g : problem.groups) {
      for (int t = 0; t < g.num_tasks; ++t, ++index) {
        (index < prior_tasks ? prior_reps : rest_reps) += g.repetitions;
      }
    }
  }
  const long prior_price = static_cast<long>(
      std::floor(alpha_ * static_cast<double>(problem.budget)) / prior_reps);
  const long rest_price =
      static_cast<long>(std::floor((1.0 - alpha_) *
                                   static_cast<double>(problem.budget))) /
      rest_reps;

  // Map global task index back to (group, task).
  std::vector<int> group_start(problem.groups.size(), 0);
  {
    int acc = 0;
    for (size_t i = 0; i < problem.groups.size(); ++i) {
      group_start[i] = acc;
      acc += problem.groups[i].num_tasks;
    }
  }
  return PerTaskUniform(problem, [&](size_t i, int t) -> long {
    const int global = group_start[i] + t;
    return global < prior_tasks ? prior_price : rest_price;
  });
}

StatusOr<Allocation> TaskEvenAllocator::Allocate(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  const long per_task = problem.budget / problem.TotalTasks();
  return PerTaskUniform(problem, [&](size_t i, int) {
    return per_task / problem.groups[i].repetitions;
  });
}

StatusOr<Allocation> RepEvenAllocator::Allocate(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  const long per_rep = problem.budget / problem.TotalRepetitions();
  return PerTaskUniform(problem, [&](size_t, int) { return per_rep; });
}

StatusOr<Allocation> UniformHeuristicAllocator::Allocate(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  const long per_group = problem.budget /
                         static_cast<long>(problem.groups.size());
  return PerTaskUniform(problem, [&](size_t i, int) {
    return per_group / problem.groups[i].UnitCost();
  });
}

}  // namespace htune
