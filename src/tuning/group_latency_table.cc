#include "tuning/group_latency_table.h"

#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "model/latency_cache.h"
#include "obs/obs.h"

namespace htune {

GroupLatencyTable::GroupLatencyTable(const TaskGroup& group) : group_(group) {
  HTUNE_CHECK(group_.curve != nullptr);
  HTUNE_CHECK_GE(group_.num_tasks, 1);
  HTUNE_CHECK_GE(group_.repetitions, 1);
  HTUNE_CHECK_GT(group_.processing_rate, 0.0);
  phase2_ = static_cast<double>(group_.repetitions) / group_.processing_rate;
}

void GroupLatencyTable::EnsureCapacity(int max_price) const {
  const size_t needed = static_cast<size_t>(max_price);
  if (needed > cache_.size()) {
    cache_.resize(needed, 0.0);
    computed_.resize(needed, 0);
  }
}

void GroupLatencyTable::FillSlot(int price) const {
  const size_t index = static_cast<size_t>(price - 1);
  GroupShape shape{group_.num_tasks, group_.repetitions,
                   group_.processing_rate};
  cache_[index] = GlobalLatencyCache().Phase1(shape, group_.curve, price);
  computed_[index] = 1;
}

double GroupLatencyTable::Phase1(int price) const {
  HTUNE_CHECK_GE(price, 1);
  EnsureCapacity(price);
  const size_t index = static_cast<size_t>(price - 1);
  if (!computed_[index]) {
    FillSlot(price);
  }
  return cache_[index];
}

void GroupLatencyTable::Prewarm(int max_price) {
  HTUNE_CHECK_GE(max_price, 1);
  HTUNE_OBS_SPAN("allocator.prewarm");
  EnsureCapacity(max_price);
  std::vector<int> missing;
  for (int price = 1; price <= max_price; ++price) {
    if (!computed_[static_cast<size_t>(price - 1)]) {
      missing.push_back(price);
    }
  }
  ParallelFor(missing.size(),
              [this, &missing](size_t j) { FillSlot(missing[j]); });
}

std::vector<double> GroupLatencyTable::FlatPhase1(int max_price) const {
  HTUNE_CHECK_GE(max_price, 1);
  std::vector<double> flat(static_cast<size_t>(max_price) + 1, 0.0);
  for (int price = 1; price <= max_price; ++price) {
    flat[static_cast<size_t>(price)] = Phase1(price);
  }
  return flat;
}

void PrewarmTables(std::vector<GroupLatencyTable>& tables,
                   const std::vector<int>& max_prices) {
  HTUNE_CHECK_EQ(tables.size(), max_prices.size());
  HTUNE_OBS_SPAN("allocator.prewarm");
  std::vector<std::pair<GroupLatencyTable*, int>> jobs;
  for (size_t i = 0; i < tables.size(); ++i) {
    HTUNE_CHECK_GE(max_prices[i], 1);
    tables[i].EnsureCapacity(max_prices[i]);
    for (int price = 1; price <= max_prices[i]; ++price) {
      if (!tables[i].computed_[static_cast<size_t>(price - 1)]) {
        jobs.emplace_back(&tables[i], price);
      }
    }
  }
  ParallelFor(jobs.size(), [&jobs](size_t j) {
    jobs[j].first->FillSlot(jobs[j].second);
  });
  HTUNE_OBS_COUNTER_ADD("allocator.prewarm_slots_filled", jobs.size());
}

}  // namespace htune
