#include "tuning/group_latency_table.h"

#include <cmath>

#include "common/check.h"
#include "model/latency_model.h"

namespace htune {

GroupLatencyTable::GroupLatencyTable(const TaskGroup& group) : group_(group) {
  HTUNE_CHECK(group_.curve != nullptr);
  HTUNE_CHECK_GE(group_.num_tasks, 1);
  HTUNE_CHECK_GE(group_.repetitions, 1);
  HTUNE_CHECK_GT(group_.processing_rate, 0.0);
  phase2_ = static_cast<double>(group_.repetitions) / group_.processing_rate;
}

double GroupLatencyTable::Phase1(int price) const {
  HTUNE_CHECK_GE(price, 1);
  const size_t index = static_cast<size_t>(price - 1);
  if (index >= cache_.size()) {
    cache_.resize(index + 1, std::nan(""));
  }
  if (std::isnan(cache_[index])) {
    GroupShape shape{group_.num_tasks, group_.repetitions,
                     group_.processing_rate};
    cache_[index] = ExpectedGroupOnHoldLatency(shape, *group_.curve,
                                               static_cast<double>(price));
  }
  return cache_[index];
}

}  // namespace htune
