#include "tuning/allocation.h"

#include "common/check.h"
#include "common/strings.h"

namespace htune {

long GroupAllocation::TotalCost() const {
  long total = 0;
  for (const auto& task : prices) {
    for (int p : task) {
      total += p;
    }
  }
  return total;
}

bool GroupAllocation::IsUniform() const {
  if (prices.empty() || prices[0].empty()) return true;
  const int first = prices[0][0];
  for (const auto& task : prices) {
    for (int p : task) {
      if (p != first) return false;
    }
  }
  return true;
}

int GroupAllocation::UniformPrice() const {
  HTUNE_CHECK(IsUniform());
  HTUNE_CHECK(!prices.empty());
  HTUNE_CHECK(!prices[0].empty());
  return prices[0][0];
}

long Allocation::TotalCost() const {
  long total = 0;
  for (const auto& g : groups) {
    total += g.TotalCost();
  }
  return total;
}

std::string Allocation::ToString() const {
  std::string out;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i > 0) out += "; ";
    out += "g";
    out += std::to_string(i);
    out += ": ";
    if (groups[i].IsUniform() && !groups[i].prices.empty() &&
        !groups[i].prices[0].empty()) {
      out += std::to_string(groups[i].prices.size());
      out += "x";
      out += std::to_string(groups[i].prices[0].size());
      out += " @ ";
      out += std::to_string(groups[i].UniformPrice());
    } else {
      out += "cost ";
      out += std::to_string(groups[i].TotalCost());
    }
  }
  return out;
}

GroupAllocation UniformGroupAllocation(int num_tasks, int repetitions,
                                       int price) {
  HTUNE_CHECK_GE(num_tasks, 1);
  HTUNE_CHECK_GE(repetitions, 1);
  HTUNE_CHECK_GE(price, 1);
  GroupAllocation ga;
  ga.prices.assign(static_cast<size_t>(num_tasks),
                   std::vector<int>(static_cast<size_t>(repetitions), price));
  return ga;
}

Status ValidateAllocation(const TuningProblem& problem,
                          const Allocation& allocation) {
  if (allocation.groups.size() != problem.groups.size()) {
    return InvalidArgumentError("Allocation: group count mismatch");
  }
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    const TaskGroup& g = problem.groups[i];
    const GroupAllocation& ga = allocation.groups[i];
    if (ga.prices.size() != static_cast<size_t>(g.num_tasks)) {
      return InvalidArgumentError("Allocation: task count mismatch in group " +
                                  std::to_string(i));
    }
    for (const auto& task : ga.prices) {
      if (task.size() != static_cast<size_t>(g.repetitions)) {
        return InvalidArgumentError(
            "Allocation: repetition count mismatch in group " +
            std::to_string(i));
      }
      for (int p : task) {
        if (p < 1) {
          return InvalidArgumentError(
              "Allocation: price below one unit in group " +
              std::to_string(i));
        }
      }
    }
  }
  if (allocation.TotalCost() > problem.budget) {
    return InvalidArgumentError("Allocation: total cost exceeds budget");
  }
  return OkStatus();
}

}  // namespace htune
