#ifndef HTUNE_TUNING_HETEROGENEOUS_ALLOCATOR_H_
#define HTUNE_TUNING_HETEROGENEOUS_ALLOCATOR_H_

#include <string>
#include <vector>

#include "tuning/allocator.h"

namespace htune {

/// The two objective values of Scenario III at some allocation (§4.4):
/// O1 = sum_i E[L1(g_i)] (phase-1 group sum) and O2 = max_i (E[L1(g_i)] +
/// E[L2(g_i)]) (expected latency of the most difficult task group).
struct ObjectivePoint {
  double o1 = 0.0;
  double o2 = 0.0;
};

/// Distance norm used for the Closeness between the objective point and the
/// Utopia point. The paper's "first order distance" is the L1 norm; L2 is
/// provided for the ablation bench.
enum class ClosenessNorm { kL1, kL2 };

/// Scenario III: the Heterogeneous Algorithm ("HA", Algorithm 3).
/// Compromise programming over (O1, O2): compute the Utopia point by
/// optimizing each objective independently under the budget, then run the
/// unit-by-unit budget DP minimizing the Closeness ||OP - UP||.
class HeterogeneousAllocator : public BudgetAllocator {
 public:
  explicit HeterogeneousAllocator(ClosenessNorm norm = ClosenessNorm::kL1)
      : norm_(norm) {}

  std::string Name() const override {
    return norm_ == ClosenessNorm::kL1 ? "HA" : "HA-L2";
  }
  StatusOr<Allocation> Allocate(const TuningProblem& problem) const override;

  /// Uniform per-group prices chosen for `problem`.
  StatusOr<std::vector<int>> SolvePrices(const TuningProblem& problem) const;

  /// The Utopia point (O1*, O2*) for `problem` (Definition 4): O1* from the
  /// exact group-sum DP, O2* from bottleneck-greedy minimization of the
  /// most-difficult-task latency.
  StatusOr<ObjectivePoint> UtopiaPoint(const TuningProblem& problem) const;

  /// Objective values of a uniform per-group price vector.
  static ObjectivePoint Objectives(const TuningProblem& problem,
                                   const std::vector<int>& prices);

 private:
  double Closeness(const ObjectivePoint& op, const ObjectivePoint& utopia) const;

  ClosenessNorm norm_;
};

/// Minimizes O2 alone: repeatedly raises the price of the group whose
/// E[L1]+E[L2] currently attains the max, while affordable. Exposed for the
/// ablation bench ("O2-only tuner").
std::vector<int> MinimizeMostDifficult(const TuningProblem& problem);

}  // namespace htune

#endif  // HTUNE_TUNING_HETEROGENEOUS_ALLOCATOR_H_
