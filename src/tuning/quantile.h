#ifndef HTUNE_TUNING_QUANTILE_H_
#define HTUNE_TUNING_QUANTILE_H_

#include "common/statusor.h"
#include "tuning/allocation.h"
#include "tuning/deadline_allocator.h"
#include "tuning/problem.h"

namespace htune {

/// P(job completes by t): the product over every task of its total-latency
/// CDF (tasks are independent; a task's total latency is the convolution of
/// its on-hold Erlang and processing Erlang). Exact under the model — this
/// is the distributional refinement of the expectation-based evaluators.
/// Requires a structurally valid allocation with uniform per-task prices in
/// each group (the tuners' output shape).
double JobCompletionProbability(const TuningProblem& problem,
                                const Allocation& alloc, double t);

/// Smallest t with P(job <= t) >= q, by bisection on
/// JobCompletionProbability. Requires q in (0, 1).
StatusOr<double> JobLatencyQuantile(const TuningProblem& problem,
                                    const Allocation& alloc, double q);

/// Probabilistic deadline planning: the cheapest uniform per-group prices
/// with P(every task done by `deadline`) >= `confidence`.
///
/// log P = sum_i n_i * log F_i(deadline; p_i) is separable across groups,
/// so the instance is an exact knapsack over per-group prices with value
/// -n_i log F_i — solved by the same spend-indexed DP as the expectation
/// deadline. Returns OutOfRange when no affordable allocation reaches the
/// confidence (the processing phase alone may cap P below it), and
/// InvalidArgument for bad parameters.
StatusOr<DeadlinePlan> SolveQuantileDeadline(const TuningProblem& problem,
                                             double deadline,
                                             double confidence);

}  // namespace htune

#endif  // HTUNE_TUNING_QUANTILE_H_
