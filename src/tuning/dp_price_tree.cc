#include "tuning/dp_price_tree.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace htune {

namespace {

size_t CeilLog2(size_t n) {
  size_t bits = 0;
  while ((size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace

DpPriceTree::DpPriceTree(size_t n, int price,
                         const std::vector<double>& values)
    : n_(n) {
  HTUNE_CHECK_GE(n, size_t{1});
  HTUNE_CHECK(values.empty() || values.size() == n);
  nodes_.reserve(2 * n);
  init_root_ = Build(0, n, price, values);
}

void DpPriceTree::ReserveUpdates(size_t updates) {
  nodes_.reserve(nodes_.size() + updates * (CeilLog2(n_) + 1));
}

int32_t DpPriceTree::Build(size_t lo, size_t hi, int price,
                           const std::vector<double>& values) {
  if (hi - lo == 1) {
    nodes_.push_back(
        {-1, -1, price, values.empty() ? 0.0 : values[lo]});
    return static_cast<int32_t>(nodes_.size() - 1);
  }
  const size_t mid = lo + (hi - lo) / 2;
  const int32_t left = Build(lo, mid, price, values);
  const int32_t right = Build(mid, hi, price, values);
  Node node;
  node.left = left;
  node.right = right;
  node.value = std::max(nodes_[left].value, nodes_[right].value);
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size() - 1);
}

int DpPriceTree::PriceAt(int32_t root, size_t i) const {
  HTUNE_CHECK_LT(i, n_);
  size_t lo = 0;
  size_t hi = n_;
  int32_t node = root;
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (i < mid) {
      node = nodes_[static_cast<size_t>(node)].left;
      hi = mid;
    } else {
      node = nodes_[static_cast<size_t>(node)].right;
      lo = mid;
    }
  }
  return nodes_[static_cast<size_t>(node)].price;
}

double DpPriceTree::MaxValue(int32_t root) const {
  return nodes_[static_cast<size_t>(root)].value;
}

double DpPriceTree::MaxValueExcluding(int32_t root, size_t i) const {
  HTUNE_CHECK_LT(i, n_);
  double best = -std::numeric_limits<double>::infinity();
  size_t lo = 0;
  size_t hi = n_;
  int32_t node = root;
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    const Node& cur = nodes_[static_cast<size_t>(node)];
    if (i < mid) {
      best = std::max(best, nodes_[static_cast<size_t>(cur.right)].value);
      node = cur.left;
      hi = mid;
    } else {
      best = std::max(best, nodes_[static_cast<size_t>(cur.left)].value);
      node = cur.right;
      lo = mid;
    }
  }
  return best;
}

int32_t DpPriceTree::CopySet(int32_t node, size_t lo, size_t hi, size_t i,
                             int price, double value) {
  if (hi - lo == 1) {
    nodes_.push_back({-1, -1, price, value});
    return static_cast<int32_t>(nodes_.size() - 1);
  }
  const size_t mid = lo + (hi - lo) / 2;
  // Copy the fields before any push_back can move the arena.
  const Node cur = nodes_[static_cast<size_t>(node)];
  Node fresh;
  if (i < mid) {
    fresh.left = CopySet(cur.left, lo, mid, i, price, value);
    fresh.right = cur.right;
  } else {
    fresh.left = cur.left;
    fresh.right = CopySet(cur.right, mid, hi, i, price, value);
  }
  fresh.value = std::max(nodes_[static_cast<size_t>(fresh.left)].value,
                         nodes_[static_cast<size_t>(fresh.right)].value);
  nodes_.push_back(fresh);
  return static_cast<int32_t>(nodes_.size() - 1);
}

int32_t DpPriceTree::WithLeaf(int32_t root, size_t i, int price,
                              double value) {
  HTUNE_CHECK_LT(i, n_);
  return CopySet(root, 0, n_, i, price, value);
}

void DpPriceTree::Collect(int32_t node, std::vector<int>& out) const {
  const Node& cur = nodes_[static_cast<size_t>(node)];
  if (cur.left < 0) {
    out.push_back(cur.price);
    return;
  }
  Collect(cur.left, out);
  Collect(cur.right, out);
}

std::vector<int> DpPriceTree::Prices(int32_t root) const {
  std::vector<int> out;
  out.reserve(n_);
  Collect(root, out);
  return out;
}

}  // namespace htune
