#ifndef HTUNE_TUNING_BASELINES_H_
#define HTUNE_TUNING_BASELINES_H_

#include <string>

#include "tuning/allocator.h"

namespace htune {

/// Scenario I baseline (§5.1.1): splits the tasks into a "prior" half that
/// receives `alpha` of the budget and a remainder half that receives
/// 1 - alpha, each half spreading its share evenly over its repetitions.
/// alpha = 0.5 degenerates to even allocation; the paper uses 0.67 and 0.75.
/// The prior half is the first ceil(N/2) tasks — the tasks are
/// statistically identical, so a deterministic choice matches the paper's
/// random one in distribution. Division remainders are left unspent.
class BiasedAllocator : public BudgetAllocator {
 public:
  /// Requires alpha in [0.5, 1).
  explicit BiasedAllocator(double alpha);

  std::string Name() const override;
  StatusOr<Allocation> Allocate(const TuningProblem& problem) const override;

 private:
  double alpha_;
};

/// Scenario II/III baseline "task-even" (te): every atomic task receives the
/// same total payment B/N, spread evenly over its own repetitions — so tasks
/// with more repetitions pay each repetition less.
class TaskEvenAllocator : public BudgetAllocator {
 public:
  TaskEvenAllocator() = default;

  std::string Name() const override { return "task-even"; }
  StatusOr<Allocation> Allocate(const TuningProblem& problem) const override;
};

/// Scenario II/III baseline "rep-even" (re): every repetition of every task
/// receives the same payment B / (total repetitions) — so tasks with more
/// repetitions receive a larger total.
class RepEvenAllocator : public BudgetAllocator {
 public:
  RepEvenAllocator() = default;

  std::string Name() const override { return "rep-even"; }
  StatusOr<Allocation> Allocate(const TuningProblem& problem) const override;
};

/// The MTurk-experiment heuristic of Fig 5(c) ("HEU"): every task *type*
/// (group) receives the same total payment B / #groups, spread evenly over
/// the group's repetitions.
class UniformHeuristicAllocator : public BudgetAllocator {
 public:
  UniformHeuristicAllocator() = default;

  std::string Name() const override { return "HEU"; }
  StatusOr<Allocation> Allocate(const TuningProblem& problem) const override;
};

}  // namespace htune

#endif  // HTUNE_TUNING_BASELINES_H_
