#include "tuning/heterogeneous_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "tuning/brute_force.h"
#include "tuning/group_latency_table.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

std::vector<GroupLatencyTable> BuildTables(const TuningProblem& problem) {
  std::vector<GroupLatencyTable> tables;
  tables.reserve(problem.groups.size());
  for (const TaskGroup& g : problem.groups) {
    tables.emplace_back(g);
  }
  return tables;
}

ObjectivePoint ObjectivesFromTables(
    const std::vector<GroupLatencyTable>& tables,
    const std::vector<int>& prices) {
  ObjectivePoint op;
  for (size_t i = 0; i < tables.size(); ++i) {
    const double phase1 = tables[i].Phase1(prices[i]);
    op.o1 += phase1;
    op.o2 = std::max(op.o2, phase1 + tables[i].Phase2());
  }
  return op;
}

std::vector<int> MinimizeMostDifficultWithTables(
    const TuningProblem& problem,
    const std::vector<GroupLatencyTable>& tables) {
  const size_t n = problem.groups.size();
  std::vector<int> prices(n, 1);
  long remaining = problem.budget - problem.MinimumBudget();
  while (true) {
    // Find the group attaining the current max of E[L1] + E[L2].
    size_t worst = 0;
    double worst_value = -1.0;
    for (size_t i = 0; i < n; ++i) {
      const double value = tables[i].Phase1(prices[i]) + tables[i].Phase2();
      if (value > worst_value) {
        worst_value = value;
        worst = i;
      }
    }
    // Only raising the bottleneck group can lower the max; stop when that
    // is no longer affordable. Zero-gain steps are still taken — a flat
    // stretch of the curve may precede an improving region, and since
    // Phase1 is non-increasing in price the extra spend can never raise O2.
    const long cost = problem.groups[worst].UnitCost();
    if (cost > remaining) break;
    ++prices[worst];
    remaining -= cost;
  }
  return prices;
}

}  // namespace

std::vector<int> MinimizeMostDifficult(const TuningProblem& problem) {
  HTUNE_CHECK_OK(ValidateProblem(problem));
  const std::vector<GroupLatencyTable> tables = BuildTables(problem);
  return MinimizeMostDifficultWithTables(problem, tables);
}

ObjectivePoint HeterogeneousAllocator::Objectives(
    const TuningProblem& problem, const std::vector<int>& prices) {
  HTUNE_CHECK_EQ(prices.size(), problem.groups.size());
  const std::vector<GroupLatencyTable> tables = BuildTables(problem);
  return ObjectivesFromTables(tables, prices);
}

double HeterogeneousAllocator::Closeness(const ObjectivePoint& op,
                                         const ObjectivePoint& utopia) const {
  const double d1 = std::abs(op.o1 - utopia.o1);
  const double d2 = std::abs(op.o2 - utopia.o2);
  if (norm_ == ClosenessNorm::kL1) {
    return d1 + d2;
  }
  return std::sqrt(d1 * d1 + d2 * d2);
}

StatusOr<ObjectivePoint> HeterogeneousAllocator::UtopiaPoint(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  const std::vector<GroupLatencyTable> tables = BuildTables(problem);

  // O1*: the exact separable DP used by RA minimizes the same group sum.
  const RepetitionAllocator exact(RepetitionAllocator::Mode::kExactDp);
  HTUNE_ASSIGN_OR_RETURN(const std::vector<int> o1_prices,
                         exact.SolvePrices(problem));
  const double o1_star = ObjectivesFromTables(tables, o1_prices).o1;

  // O2*: bottleneck greedy on the most-difficult-task latency.
  const std::vector<int> o2_prices =
      MinimizeMostDifficultWithTables(problem, tables);
  const double o2_star = ObjectivesFromTables(tables, o2_prices).o2;

  return ObjectivePoint{o1_star, o2_star};
}

namespace {

// Upper bound on the number of uniform price vectors enumerated exactly.
// Beyond this the budget-indexed unit DP (Algorithm 3) takes over.
constexpr double kMaxEnumeration = 4e6;

double EnumerationBound(const TuningProblem& problem) {
  double bound = 1.0;
  for (const TaskGroup& g : problem.groups) {
    bound *= static_cast<double>(problem.budget / g.UnitCost());
    if (bound > kMaxEnumeration) break;
  }
  return bound;
}

}  // namespace

StatusOr<std::vector<int>> HeterogeneousAllocator::SolvePrices(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  const std::vector<GroupLatencyTable> tables = BuildTables(problem);
  HTUNE_ASSIGN_OR_RETURN(const ObjectivePoint utopia, UtopiaPoint(problem));

  // Exact path: the closeness objective is not separable (O2 is a max), and
  // the unit-step DP below can stall on plateaus of measured (table)
  // curves, so when the uniform-price space is small enough we enumerate it
  // outright and return the true compromise optimum.
  if (EnumerationBound(problem) <= kMaxEnumeration) {
    std::vector<int> best;
    double best_value = std::numeric_limits<double>::infinity();
    ForEachUniformPriceVector(problem, [&](const std::vector<int>& prices) {
      const double value =
          Closeness(ObjectivesFromTables(tables, prices), utopia);
      if (value < best_value ||
          (value == best_value && (best.empty() || prices < best))) {
        best_value = value;
        best = prices;
      }
    });
    HTUNE_CHECK(!best.empty());
    return best;
  }

  const size_t n = problem.groups.size();
  std::vector<long> unit_cost(n);
  for (size_t i = 0; i < n; ++i) {
    unit_cost[i] = problem.groups[i].UnitCost();
  }

  // Algorithm 3: budget-indexed DP over price vectors, objective = Closeness
  // to the Utopia point.
  const long spare = problem.budget - problem.MinimumBudget();
  std::vector<std::vector<int>> prices_at(
      static_cast<size_t>(spare) + 1, std::vector<int>(n, 1));
  std::vector<double> closeness_at(static_cast<size_t>(spare) + 1, 0.0);
  closeness_at[0] =
      Closeness(ObjectivesFromTables(tables, prices_at[0]), utopia);

  std::vector<int> scratch(n, 1);
  for (long x = 1; x <= spare; ++x) {
    const size_t xi = static_cast<size_t>(x);
    double best = closeness_at[xi - 1];
    size_t best_group = n;  // n = carry previous state
    for (size_t i = 0; i < n; ++i) {
      if (unit_cost[i] > x) continue;
      const size_t from = static_cast<size_t>(x - unit_cost[i]);
      scratch = prices_at[from];
      ++scratch[i];
      const double candidate =
          Closeness(ObjectivesFromTables(tables, scratch), utopia);
      // Ties prefer spending (see RepetitionAllocator): zero-gain plateaus
      // of the curve must be crossable.
      if (candidate <= best) {
        best = candidate;
        best_group = i;
      }
    }
    if (best_group == n) {
      prices_at[xi] = prices_at[xi - 1];
    } else {
      const size_t from = static_cast<size_t>(x - unit_cost[best_group]);
      prices_at[xi] = prices_at[from];
      ++prices_at[xi][best_group];
    }
    closeness_at[xi] = best;
  }
  return prices_at[static_cast<size_t>(spare)];
}

StatusOr<Allocation> HeterogeneousAllocator::Allocate(
    const TuningProblem& problem) const {
  HTUNE_ASSIGN_OR_RETURN(const std::vector<int> prices, SolvePrices(problem));
  return UniformAllocation(problem, prices);
}

}  // namespace htune
