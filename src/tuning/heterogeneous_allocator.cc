#include "tuning/heterogeneous_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "obs/obs.h"
#include "tuning/brute_force.h"
#include "tuning/dp_price_tree.h"
#include "tuning/group_latency_table.h"
#include "tuning/repetition_allocator.h"

namespace htune {
namespace {

std::vector<GroupLatencyTable> BuildTables(const TuningProblem& problem) {
  std::vector<GroupLatencyTable> tables;
  tables.reserve(problem.groups.size());
  for (const TaskGroup& g : problem.groups) {
    tables.emplace_back(g);
  }
  return tables;
}

// Fans every price any HA phase can touch (enumeration, greedy bottleneck,
// the exact RA used for O1*, and the unit DP) out on the pool. The kernel
// values land in the process-wide cache, so the tables this and every
// downstream helper rebuilds become pure lookups.
void PrewarmForProblem(const TuningProblem& problem,
                       std::vector<GroupLatencyTable>& tables) {
  std::vector<int> max_price(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    max_price[i] = static_cast<int>(
        problem.budget / problem.groups[i].UnitCost()) + 1;
  }
  PrewarmTables(tables, max_price);
}

ObjectivePoint ObjectivesFromTables(
    const std::vector<GroupLatencyTable>& tables,
    const std::vector<int>& prices) {
  ObjectivePoint op;
  for (size_t i = 0; i < tables.size(); ++i) {
    const double phase1 = tables[i].Phase1(prices[i]);
    op.o1 += phase1;
    op.o2 = std::max(op.o2, phase1 + tables[i].Phase2());
  }
  return op;
}

std::vector<int> MinimizeMostDifficultWithTables(
    const TuningProblem& problem,
    const std::vector<GroupLatencyTable>& tables) {
  const size_t n = problem.groups.size();
  std::vector<int> prices(n, 1);
  long remaining = problem.budget - problem.MinimumBudget();
  while (true) {
    // Find the group attaining the current max of E[L1] + E[L2].
    size_t worst = 0;
    double worst_value = -1.0;
    for (size_t i = 0; i < n; ++i) {
      const double value = tables[i].Phase1(prices[i]) + tables[i].Phase2();
      if (value > worst_value) {
        worst_value = value;
        worst = i;
      }
    }
    // Only raising the bottleneck group can lower the max; stop when that
    // is no longer affordable. Zero-gain steps are still taken — a flat
    // stretch of the curve may precede an improving region, and since
    // Phase1 is non-increasing in price the extra spend can never raise O2.
    const long cost = problem.groups[worst].UnitCost();
    if (cost > remaining) break;
    ++prices[worst];
    remaining -= cost;
  }
  return prices;
}

}  // namespace

std::vector<int> MinimizeMostDifficult(const TuningProblem& problem) {
  HTUNE_CHECK_OK(ValidateProblem(problem));
  const std::vector<GroupLatencyTable> tables = BuildTables(problem);
  return MinimizeMostDifficultWithTables(problem, tables);
}

ObjectivePoint HeterogeneousAllocator::Objectives(
    const TuningProblem& problem, const std::vector<int>& prices) {
  HTUNE_CHECK_EQ(prices.size(), problem.groups.size());
  const std::vector<GroupLatencyTable> tables = BuildTables(problem);
  return ObjectivesFromTables(tables, prices);
}

double HeterogeneousAllocator::Closeness(const ObjectivePoint& op,
                                         const ObjectivePoint& utopia) const {
  const double d1 = std::abs(op.o1 - utopia.o1);
  const double d2 = std::abs(op.o2 - utopia.o2);
  if (norm_ == ClosenessNorm::kL1) {
    return d1 + d2;
  }
  return std::sqrt(d1 * d1 + d2 * d2);
}

StatusOr<ObjectivePoint> HeterogeneousAllocator::UtopiaPoint(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  const std::vector<GroupLatencyTable> tables = BuildTables(problem);

  // O1*: the exact separable DP used by RA minimizes the same group sum.
  const RepetitionAllocator exact(RepetitionAllocator::Mode::kExactDp);
  HTUNE_ASSIGN_OR_RETURN(const std::vector<int> o1_prices,
                         exact.SolvePrices(problem));
  const double o1_star = ObjectivesFromTables(tables, o1_prices).o1;

  // O2*: bottleneck greedy on the most-difficult-task latency.
  const std::vector<int> o2_prices =
      MinimizeMostDifficultWithTables(problem, tables);
  const double o2_star = ObjectivesFromTables(tables, o2_prices).o2;

  return ObjectivePoint{o1_star, o2_star};
}

namespace {

// Upper bound on the number of uniform price vectors enumerated exactly.
// Beyond this the budget-indexed unit DP (Algorithm 3) takes over.
constexpr double kMaxEnumeration = 4e6;

double EnumerationBound(const TuningProblem& problem) {
  double bound = 1.0;
  for (const TaskGroup& g : problem.groups) {
    bound *= static_cast<double>(problem.budget / g.UnitCost());
    if (bound > kMaxEnumeration) break;
  }
  return bound;
}

}  // namespace

StatusOr<std::vector<int>> HeterogeneousAllocator::SolvePrices(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  std::vector<GroupLatencyTable> tables = BuildTables(problem);
  PrewarmForProblem(problem, tables);
  HTUNE_ASSIGN_OR_RETURN(const ObjectivePoint utopia, UtopiaPoint(problem));

  // Exact path: the closeness objective is not separable (O2 is a max), and
  // the unit-step DP below can stall on plateaus of measured (table)
  // curves, so when the uniform-price space is small enough we enumerate it
  // outright and return the true compromise optimum.
  if (EnumerationBound(problem) <= kMaxEnumeration) {
    HTUNE_OBS_SPAN("allocator.enumeration");
    std::vector<int> best;
    double best_value = std::numeric_limits<double>::infinity();
    ForEachUniformPriceVector(problem, [&](const std::vector<int>& prices) {
      const double value =
          Closeness(ObjectivesFromTables(tables, prices), utopia);
      if (value < best_value ||
          (value == best_value && (best.empty() || prices < best))) {
        best_value = value;
        best = prices;
      }
    });
    HTUNE_CHECK(!best.empty());
    return best;
  }

  const size_t n = problem.groups.size();
  std::vector<long> unit_cost(n);
  for (size_t i = 0; i < n; ++i) {
    unit_cost[i] = problem.groups[i].UnitCost();
  }

  // Algorithm 3: budget-indexed DP over price vectors, objective = Closeness
  // to the Utopia point. As in SolvePaperDp, each state is an int32 root
  // into a persistent price tree — O(spare) state memory, no O(n) copies.
  // The tree's leaf values carry each group's E[L1] + E[L2], so the O2 max
  // of a candidate bump is an O(log n) sibling walk instead of an O(n)
  // rescan, and O1 is maintained incrementally from the marginal gain.
  const long spare = problem.budget - problem.MinimumBudget();
  std::vector<int> max_price(n);
  std::vector<std::vector<double>> phase1(n);
  std::vector<double> phase2(n);
  std::vector<double> initial_value(n);
  for (size_t i = 0; i < n; ++i) {
    max_price[i] = static_cast<int>(1 + spare / unit_cost[i]) + 1;
    phase1[i] = tables[i].FlatPhase1(max_price[i]);
    phase2[i] = tables[i].Phase2();
    initial_value[i] = phase1[i][1] + phase2[i];
  }

  DpPriceTree tree(n, /*price=*/1, initial_value);
  tree.ReserveUpdates(static_cast<size_t>(spare));
  std::vector<int32_t> root_at(static_cast<size_t>(spare) + 1, tree.root());
  std::vector<double> o1_at(static_cast<size_t>(spare) + 1, 0.0);
  std::vector<double> closeness_at(static_cast<size_t>(spare) + 1, 0.0);
  double base_o1 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    base_o1 += phase1[i][1];
  }
  o1_at[0] = base_o1;
  closeness_at[0] =
      Closeness(ObjectivePoint{base_o1, tree.MaxValue(tree.root())}, utopia);

  HTUNE_OBS_SPAN("allocator.dp");
  for (long x = 1; x <= spare; ++x) {
    const size_t xi = static_cast<size_t>(x);
    double best = closeness_at[xi - 1];
    size_t best_group = n;  // n = carry previous state
    int best_price = 0;
    double best_o1 = o1_at[xi - 1];
    double best_leaf_value = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (unit_cost[i] > x) continue;
      const size_t from = static_cast<size_t>(x - unit_cost[i]);
      const int p = tree.PriceAt(root_at[from], i);
      const double next_phase1 = phase1[i][static_cast<size_t>(p) + 1];
      const double o1_candidate =
          o1_at[from] -
          (phase1[i][static_cast<size_t>(p)] - next_phase1);
      const double leaf_value = next_phase1 + phase2[i];
      const double o2_candidate =
          std::max(tree.MaxValueExcluding(root_at[from], i), leaf_value);
      const double candidate =
          Closeness(ObjectivePoint{o1_candidate, o2_candidate}, utopia);
      // Ties prefer spending (see RepetitionAllocator): zero-gain plateaus
      // of the curve must be crossable.
      if (candidate <= best) {
        best = candidate;
        best_group = i;
        best_price = p + 1;
        best_o1 = o1_candidate;
        best_leaf_value = leaf_value;
      }
    }
    if (best_group == n) {
      root_at[xi] = root_at[xi - 1];
    } else {
      const size_t from = static_cast<size_t>(x - unit_cost[best_group]);
      root_at[xi] = tree.WithLeaf(root_at[from], best_group, best_price,
                                  best_leaf_value);
    }
    o1_at[xi] = best_o1;
    closeness_at[xi] = best;
  }
  HTUNE_OBS_SPAN("allocator.backtrack");
  return tree.Prices(root_at[static_cast<size_t>(spare)]);
}

StatusOr<Allocation> HeterogeneousAllocator::Allocate(
    const TuningProblem& problem) const {
  HTUNE_ASSIGN_OR_RETURN(const std::vector<int> prices, SolvePrices(problem));
  return UniformAllocation(problem, prices);
}

}  // namespace htune
