#include "tuning/repetition_allocator.h"

#include <limits>

#include "common/check.h"
#include "obs/obs.h"
#include "tuning/dp_price_tree.h"
#include "tuning/group_latency_table.h"

namespace htune {

Allocation UniformAllocation(const TuningProblem& problem,
                             const std::vector<int>& prices) {
  HTUNE_CHECK_EQ(prices.size(), problem.groups.size());
  Allocation allocation;
  allocation.groups.reserve(problem.groups.size());
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    const TaskGroup& g = problem.groups[i];
    allocation.groups.push_back(
        UniformGroupAllocation(g.num_tasks, g.repetitions, prices[i]));
  }
  return allocation;
}

StatusOr<std::vector<int>> RepetitionAllocator::SolvePrices(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  if (mode_ == Mode::kPaperDp) {
    return SolvePaperDp(problem);
  }
  return SolveExactDp(problem);
}

StatusOr<Allocation> RepetitionAllocator::Allocate(
    const TuningProblem& problem) const {
  HTUNE_ASSIGN_OR_RETURN(const std::vector<int> prices, SolvePrices(problem));
  return UniformAllocation(problem, prices);
}

std::vector<int> RepetitionAllocator::SolvePaperDp(
    const TuningProblem& problem) const {
  const size_t n = problem.groups.size();
  std::vector<GroupLatencyTable> tables;
  tables.reserve(n);
  std::vector<long> unit_cost(n);
  for (size_t i = 0; i < n; ++i) {
    tables.emplace_back(problem.groups[i]);
    unit_cost[i] = problem.groups[i].UnitCost();
  }

  // Algorithm 2: start every repetition at one unit; the DP state at spare
  // budget x holds the best price vector reachable with x extra units.
  const long spare = problem.budget - problem.MinimumBudget();

  // Group i's price at any state is at most 1 + spare / u_i (every unit step
  // costs u_i), and the marginal-gain lookup touches one price beyond.
  // Prewarm that whole band in one parallel fan-out, then hoist the tables
  // into flat arrays so the serial DP below is pure double indexing.
  std::vector<int> max_price(n);
  for (size_t i = 0; i < n; ++i) {
    max_price[i] = static_cast<int>(1 + spare / unit_cost[i]) + 1;
  }
  PrewarmTables(tables, max_price);
  std::vector<std::vector<double>> phase1(n);
  for (size_t i = 0; i < n; ++i) {
    phase1[i] = tables[i].FlatPhase1(max_price[i]);
  }

  // Each DP state is an int32 root into a persistent price tree plus its
  // objective value — O(spare) state memory, no per-state vector copies.
  DpPriceTree tree(n, /*price=*/1, /*values=*/{});
  tree.ReserveUpdates(static_cast<size_t>(spare));
  std::vector<int32_t> root_at(static_cast<size_t>(spare) + 1, tree.root());
  std::vector<double> objective_at(static_cast<size_t>(spare) + 1, 0.0);
  double base = 0.0;
  for (size_t i = 0; i < n; ++i) {
    base += phase1[i][1];
  }
  objective_at[0] = base;

  {
    HTUNE_OBS_SPAN("allocator.dp");
    for (long x = 1; x <= spare; ++x) {
      // Default: carry the previous state (one unit left unspent).
      double best = objective_at[static_cast<size_t>(x - 1)];
      size_t best_group = n;  // n = carry
      int best_price = 0;
      for (size_t i = 0; i < n; ++i) {
        if (unit_cost[i] > x) continue;
        const size_t from = static_cast<size_t>(x - unit_cost[i]);
        const int p = tree.PriceAt(root_at[from], i);
        const double candidate =
            objective_at[from] - (phase1[i][static_cast<size_t>(p)] -
                                  phase1[i][static_cast<size_t>(p) + 1]);
        // Ties prefer spending over carrying: on a flat stretch of the
        // price-rate curve the marginal gain is zero, and only a state that
        // keeps accumulating price units can cross the plateau and reach the
        // improving region beyond it.
        if (candidate <= best) {
          best = candidate;
          best_group = i;
          best_price = p + 1;
        }
      }
      const size_t xi = static_cast<size_t>(x);
      if (best_group == n) {
        root_at[xi] = root_at[xi - 1];
      } else {
        const size_t from = static_cast<size_t>(x - unit_cost[best_group]);
        root_at[xi] = tree.WithLeaf(root_at[from], best_group, best_price, 0.0);
      }
      objective_at[xi] = best;
    }
    HTUNE_OBS_COUNTER_ADD("allocator.dp_states",
                          static_cast<uint64_t>(spare) + 1);
  }
  HTUNE_OBS_SPAN("allocator.backtrack");
  return tree.Prices(root_at[static_cast<size_t>(spare)]);
}

std::vector<int> RepetitionAllocator::SolveExactDp(
    const TuningProblem& problem) const {
  const size_t n = problem.groups.size();
  std::vector<GroupLatencyTable> tables;
  tables.reserve(n);
  std::vector<long> unit_cost(n);
  for (size_t i = 0; i < n; ++i) {
    tables.emplace_back(problem.groups[i]);
    unit_cost[i] = problem.groups[i].UnitCost();
  }

  const long budget = problem.budget;

  // Every price the knapsack loop can touch, prewarmed in parallel and
  // hoisted flat so the O(n * B * p_max) inner loop below never leaves
  // straight-line array code.
  std::vector<int> max_price(n);
  for (size_t i = 0; i < n; ++i) {
    max_price[i] = static_cast<int>(budget / unit_cost[i]);
  }
  PrewarmTables(tables, max_price);
  std::vector<std::vector<double>> phase1(n);
  for (size_t i = 0; i < n; ++i) {
    phase1[i] = tables[i].FlatPhase1(max_price[i]);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // best[b] = min sum of E over groups processed so far spending exactly b;
  // choice[i][b] = price picked for group i to reach b.
  std::vector<double> best(static_cast<size_t>(budget) + 1, kInf);
  best[0] = 0.0;
  std::vector<std::vector<int>> choice(
      n, std::vector<int>(static_cast<size_t>(budget) + 1, 0));

  HTUNE_OBS_SPAN("allocator.dp");
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> next(static_cast<size_t>(budget) + 1, kInf);
    const long group_max = max_price[i];
    const std::vector<double>& phase1_i = phase1[i];
    for (long b = 0; b <= budget; ++b) {
      if (best[static_cast<size_t>(b)] == kInf) continue;
      for (long p = 1; p <= group_max; ++p) {
        const long spend = b + unit_cost[i] * p;
        if (spend > budget) break;
        const double value =
            best[static_cast<size_t>(b)] + phase1_i[static_cast<size_t>(p)];
        if (value < next[static_cast<size_t>(spend)]) {
          next[static_cast<size_t>(spend)] = value;
          choice[i][static_cast<size_t>(spend)] = static_cast<int>(p);
        }
      }
    }
    best = std::move(next);
  }

  // Phase-1 latency is non-increasing in price, but find the best spend
  // level explicitly so the DP is exact for arbitrary tables.
  long best_spend = -1;
  double best_value = kInf;
  for (long b = 0; b <= budget; ++b) {
    if (best[static_cast<size_t>(b)] < best_value) {
      best_value = best[static_cast<size_t>(b)];
      best_spend = b;
    }
  }
  HTUNE_CHECK_GE(best_spend, 0);

  HTUNE_OBS_SPAN("allocator.backtrack");
  std::vector<int> prices(n, 0);
  long b = best_spend;
  for (size_t i = n; i > 0; --i) {
    const int p = choice[i - 1][static_cast<size_t>(b)];
    HTUNE_CHECK_GE(p, 1);
    prices[i - 1] = p;
    b -= unit_cost[i - 1] * p;
  }
  HTUNE_CHECK_EQ(b, 0);
  return prices;
}

}  // namespace htune
