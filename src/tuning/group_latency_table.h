#ifndef HTUNE_TUNING_GROUP_LATENCY_TABLE_H_
#define HTUNE_TUNING_GROUP_LATENCY_TABLE_H_

#include <vector>

#include "tuning/problem.h"

namespace htune {

/// Memoized expected-latency lookups for one task group under uniform
/// per-repetition pricing. The DP/greedy tuners evaluate E_i(p) for many
/// prices, and each evaluation integrates an order-statistic tail — caching
/// turns the optimizers' inner loops into table lookups.
class GroupLatencyTable {
 public:
  explicit GroupLatencyTable(const TaskGroup& group);

  /// E[max over the group's tasks of Erlang(repetitions, curve(price))]:
  /// expected phase-1 latency when every repetition pays `price` (>= 1).
  double Phase1(int price) const;

  /// Marginal phase-1 improvement of one extra payment unit per repetition:
  /// Phase1(price) - Phase1(price + 1). Non-negative for monotone curves.
  double Phase1Gain(int price) const { return Phase1(price) - Phase1(price + 1); }

  /// Expected phase-2 latency of one task: repetitions / processing_rate.
  double Phase2() const { return phase2_; }

  const TaskGroup& group() const { return group_; }

 private:
  TaskGroup group_;
  double phase2_;
  /// Lazily grown cache; cache_[p] = Phase1(p + 1).
  mutable std::vector<double> cache_;
};

}  // namespace htune

#endif  // HTUNE_TUNING_GROUP_LATENCY_TABLE_H_
