#ifndef HTUNE_TUNING_GROUP_LATENCY_TABLE_H_
#define HTUNE_TUNING_GROUP_LATENCY_TABLE_H_

#include <vector>

#include "tuning/problem.h"

namespace htune {

/// Memoized expected-latency lookups for one task group under uniform
/// per-repetition pricing. The DP/greedy tuners evaluate E_i(p) for many
/// prices, and each evaluation integrates an order-statistic tail — caching
/// turns the optimizers' inner loops into table lookups. Values come from
/// the process-wide LatencyKernelCache, so identical (shape, curve) groups
/// share quadrature work across tables, allocator calls, and threads.
///
/// Thread safety: lazy Phase1 growth is NOT thread-safe; concurrent access
/// is only valid through Prewarm/PrewarmTables (which fan disjoint slots out
/// on the default pool) or after prewarming, when lookups are plain reads.
class GroupLatencyTable {
 public:
  explicit GroupLatencyTable(const TaskGroup& group);

  /// E[max over the group's tasks of Erlang(repetitions, curve(price))]:
  /// expected phase-1 latency when every repetition pays `price` (>= 1).
  double Phase1(int price) const;

  /// Marginal phase-1 improvement of one extra payment unit per repetition:
  /// Phase1(price) - Phase1(price + 1). Non-negative for monotone curves.
  double Phase1Gain(int price) const { return Phase1(price) - Phase1(price + 1); }

  /// Expected phase-2 latency of one task: repetitions / processing_rate.
  double Phase2() const { return phase2_; }

  /// Ensures Phase1(1..max_price) are all computed, fanning the missing
  /// evaluations out on the default thread pool. Afterwards Phase1 lookups
  /// up to max_price are lock-free reads.
  void Prewarm(int max_price);

  /// Phase1(1..max_price) hoisted into a flat array indexed by price
  /// (slot 0 unused): lets DP inner loops index doubles directly instead of
  /// going through the bounds-checked lazy path. Computes missing entries
  /// serially; call Prewarm (or PrewarmTables) first to fill them in
  /// parallel.
  std::vector<double> FlatPhase1(int max_price) const;

  const TaskGroup& group() const { return group_; }

 private:
  friend void PrewarmTables(std::vector<GroupLatencyTable>& tables,
                            const std::vector<int>& max_prices);

  /// Grows the cache arrays (serially) so slots [0, max_price) exist.
  void EnsureCapacity(int max_price) const;
  /// Computes slot `price` (must be within capacity). Distinct prices touch
  /// distinct slots, so disjoint FillSlot calls may run concurrently.
  void FillSlot(int price) const;

  TaskGroup group_;
  double phase2_;
  /// cache_[p] = Phase1(p + 1), valid iff computed_[p] != 0. An explicit
  /// validity flag (not a NaN sentinel) so a genuine NaN evaluation result
  /// is remembered instead of being recomputed forever.
  mutable std::vector<double> cache_;
  mutable std::vector<char> computed_;
};

/// Prewarms several tables at once: flattens every missing (table, price)
/// slot across all tables into one job list and fans it out on the default
/// pool. `max_prices[i]` bounds table i (>= 1). This is the allocators'
/// entry point — one wide fan-out beats per-table waves.
void PrewarmTables(std::vector<GroupLatencyTable>& tables,
                   const std::vector<int>& max_prices);

}  // namespace htune

#endif  // HTUNE_TUNING_GROUP_LATENCY_TABLE_H_
