#include "tuning/problem.h"

#include <string>

namespace htune {

long TuningProblem::MinimumBudget() const {
  long total = 0;
  for (const TaskGroup& g : groups) {
    total += g.UnitCost();
  }
  return total;
}

int TuningProblem::TotalTasks() const {
  int total = 0;
  for (const TaskGroup& g : groups) {
    total += g.num_tasks;
  }
  return total;
}

long TuningProblem::TotalRepetitions() const { return MinimumBudget(); }

Status ValidateProblem(const TuningProblem& problem) {
  if (problem.groups.empty()) {
    return InvalidArgumentError("TuningProblem: no task groups");
  }
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    const TaskGroup& g = problem.groups[i];
    const std::string where = "group " + std::to_string(i);
    if (g.num_tasks < 1) {
      return InvalidArgumentError(where + ": num_tasks must be >= 1");
    }
    if (g.repetitions < 1) {
      return InvalidArgumentError(where + ": repetitions must be >= 1");
    }
    if (g.processing_rate <= 0.0) {
      return InvalidArgumentError(where + ": processing_rate must be > 0");
    }
    if (g.curve == nullptr) {
      return InvalidArgumentError(where + ": missing price-rate curve");
    }
  }
  if (problem.budget < problem.MinimumBudget()) {
    return InvalidArgumentError(
        "TuningProblem: budget below one unit per repetition (B < " +
        std::to_string(problem.MinimumBudget()) + ")");
  }
  return OkStatus();
}

TuningProblem ProblemWithAbandonment(const TuningProblem& problem,
                                     const AbandonmentModel& model) {
  if (model.prob == 0.0) {
    return problem;
  }
  TuningProblem adjusted = problem;
  for (TaskGroup& group : adjusted.groups) {
    if (group.curve != nullptr) {
      group.curve = AdjustCurveForAbandonment(group.curve, model);
    }
  }
  return adjusted;
}

}  // namespace htune
