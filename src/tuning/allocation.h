#ifndef HTUNE_TUNING_ALLOCATION_H_
#define HTUNE_TUNING_ALLOCATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tuning/problem.h"

namespace htune {

/// Payments for one task group: prices[task][repetition] in whole payment
/// units, each >= 1.
struct GroupAllocation {
  std::vector<std::vector<int>> prices;

  /// Sum of all payments in the group.
  long TotalCost() const;
  /// True iff every task pays every repetition the same amount.
  bool IsUniform() const;
  /// The common per-repetition price; requires IsUniform().
  int UniformPrice() const;
};

/// A full budget allocation: one GroupAllocation per problem group, in the
/// same order.
struct Allocation {
  std::vector<GroupAllocation> groups;

  long TotalCost() const;
  /// Human-readable summary ("g0: 100x5 @ 3; g1: ...").
  std::string ToString() const;
};

/// Builds a uniform allocation: every repetition of every task in the group
/// pays `price`.
GroupAllocation UniformGroupAllocation(int num_tasks, int repetitions,
                                       int price);

/// Checks structural validity of `allocation` against `problem`: matching
/// group/task/repetition shapes, all prices >= 1, total cost <= budget.
Status ValidateAllocation(const TuningProblem& problem,
                          const Allocation& allocation);

}  // namespace htune

#endif  // HTUNE_TUNING_ALLOCATION_H_
