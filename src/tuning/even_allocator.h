#ifndef HTUNE_TUNING_EVEN_ALLOCATOR_H_
#define HTUNE_TUNING_EVEN_ALLOCATOR_H_

#include <string>

#include "tuning/allocator.h"

namespace htune {

/// Scenario I: Even Allocation (Algorithm 1, "EA"). For a homogeneous set of
/// N atomic tasks each needing m repetitions, splitting the budget evenly
/// across all N*m repetitions minimizes the expected phase-1 latency
/// (Theorem 1). The division remainder is spread one unit at a time: gamma
/// whole extra units to the same repetitions of every task, then sigma
/// single units to distinct tasks. Remainder recipients are chosen
/// deterministically (first repetitions / first tasks) — the tasks are
/// statistically identical, so the choice does not affect the latency law.
///
/// Requires every group to share the same repetition count, processing rate
/// and price-rate curve (the Scenario I homogeneity assumption); returns
/// FailedPrecondition otherwise.
class EvenAllocator : public BudgetAllocator {
 public:
  EvenAllocator() = default;

  std::string Name() const override { return "EA"; }
  StatusOr<Allocation> Allocate(const TuningProblem& problem) const override;
};

}  // namespace htune

#endif  // HTUNE_TUNING_EVEN_ALLOCATOR_H_
