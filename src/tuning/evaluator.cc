#include "tuning/evaluator.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/parallel.h"
#include "model/hypoexponential.h"
#include "model/order_statistics.h"
#include "rng/splitmix64.h"

namespace htune {
namespace {

// Groups the tasks of one GroupAllocation by their multiset of per-repetition
// prices (on-hold latency depends only on that multiset) and returns one
// (distribution, multiplicity) pair per distinct pattern.
struct TaskPattern {
  HypoexponentialDist dist;
  int count;
};

std::vector<TaskPattern> Phase1Patterns(const TaskGroup& group,
                                        const GroupAllocation& alloc) {
  HTUNE_CHECK(group.curve != nullptr);
  HTUNE_CHECK_EQ(alloc.prices.size(), static_cast<size_t>(group.num_tasks));
  std::map<std::vector<int>, int> pattern_counts;
  for (const auto& task : alloc.prices) {
    HTUNE_CHECK_EQ(task.size(), static_cast<size_t>(group.repetitions));
    std::vector<int> key = task;
    std::sort(key.begin(), key.end());
    ++pattern_counts[key];
  }
  std::vector<TaskPattern> patterns;
  patterns.reserve(pattern_counts.size());
  for (const auto& [prices, count] : pattern_counts) {
    std::vector<double> rates;
    rates.reserve(prices.size());
    for (int p : prices) {
      const double rate = group.curve->Rate(static_cast<double>(p));
      HTUNE_CHECK_GT(rate, 0.0);
      rates.push_back(rate);
    }
    patterns.push_back({HypoexponentialDist(std::move(rates)), count});
  }
  return patterns;
}

std::vector<WeightedCdf> ToWeightedCdfs(const std::vector<TaskPattern>& ps,
                                        double& mean_hint) {
  std::vector<WeightedCdf> cdfs;
  cdfs.reserve(ps.size());
  for (const TaskPattern& pattern : ps) {
    mean_hint = std::max(mean_hint, pattern.dist.Mean());
    // The distribution object is captured by value so the callable owns it.
    cdfs.push_back(
        {[dist = pattern.dist](double t) { return dist.Cdf(t); },
         pattern.count});
  }
  return cdfs;
}

}  // namespace

double ExpectedPhase1GroupLatency(const TaskGroup& group,
                                  const GroupAllocation& alloc) {
  const std::vector<TaskPattern> patterns = Phase1Patterns(group, alloc);
  double mean_hint = 0.0;
  const std::vector<WeightedCdf> cdfs = ToWeightedCdfs(patterns, mean_hint);
  return ExpectedMaxWithMultiplicity(cdfs, mean_hint);
}

std::vector<double> ExpectedPhase1GroupLatencies(const TuningProblem& problem,
                                                 const Allocation& alloc) {
  HTUNE_CHECK_EQ(alloc.groups.size(), problem.groups.size());
  std::vector<double> latencies;
  latencies.reserve(problem.groups.size());
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    latencies.push_back(
        ExpectedPhase1GroupLatency(problem.groups[i], alloc.groups[i]));
  }
  return latencies;
}

double Phase1GroupSum(const TuningProblem& problem, const Allocation& alloc) {
  double total = 0.0;
  for (double latency : ExpectedPhase1GroupLatencies(problem, alloc)) {
    total += latency;
  }
  return total;
}

double ExpectedPhase1Latency(const TuningProblem& problem,
                             const Allocation& alloc) {
  HTUNE_CHECK_EQ(alloc.groups.size(), problem.groups.size());
  double mean_hint = 0.0;
  std::vector<WeightedCdf> cdfs;
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    const std::vector<TaskPattern> patterns =
        Phase1Patterns(problem.groups[i], alloc.groups[i]);
    std::vector<WeightedCdf> group_cdfs = ToWeightedCdfs(patterns, mean_hint);
    cdfs.insert(cdfs.end(), std::make_move_iterator(group_cdfs.begin()),
                std::make_move_iterator(group_cdfs.end()));
  }
  return ExpectedMaxWithMultiplicity(cdfs, mean_hint);
}

double MostDifficultObjective(const TuningProblem& problem,
                              const Allocation& alloc) {
  const std::vector<double> phase1 =
      ExpectedPhase1GroupLatencies(problem, alloc);
  double worst = 0.0;
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    const TaskGroup& g = problem.groups[i];
    const double phase2 =
        static_cast<double>(g.repetitions) / g.processing_rate;
    worst = std::max(worst, phase1[i] + phase2);
  }
  return worst;
}

namespace {

// Precomputed per-repetition on-hold rates for every task.
struct TaskRates {
  std::vector<double> on_hold;
  double processing;
  int repetitions;
};

std::vector<TaskRates> BuildTaskRates(const TuningProblem& problem,
                                      const Allocation& alloc) {
  HTUNE_CHECK_EQ(alloc.groups.size(), problem.groups.size());
  std::vector<TaskRates> tasks;
  for (size_t i = 0; i < problem.groups.size(); ++i) {
    const TaskGroup& g = problem.groups[i];
    for (const auto& task_prices : alloc.groups[i].prices) {
      TaskRates tr;
      tr.processing = g.processing_rate;
      tr.repetitions = g.repetitions;
      tr.on_hold.reserve(task_prices.size());
      for (int p : task_prices) {
        tr.on_hold.push_back(g.curve->Rate(static_cast<double>(p)));
      }
      tasks.push_back(std::move(tr));
    }
  }
  return tasks;
}

double OneTrialMax(const std::vector<TaskRates>& tasks, Random& rng,
                   bool include_processing) {
  double job_latency = 0.0;
  for (const TaskRates& tr : tasks) {
    double task_latency = 0.0;
    for (double rate : tr.on_hold) {
      task_latency += rng.Exponential(rate);
    }
    if (include_processing) {
      task_latency += rng.Erlang(tr.repetitions, tr.processing);
    }
    job_latency = std::max(job_latency, task_latency);
  }
  return job_latency;
}

double MonteCarloMax(const TuningProblem& problem, const Allocation& alloc,
                     int trials, Random& rng, bool include_processing) {
  HTUNE_CHECK_GE(trials, 1);
  const std::vector<TaskRates> tasks = BuildTaskRates(problem, alloc);
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    total += OneTrialMax(tasks, rng, include_processing);
  }
  return total / static_cast<double>(trials);
}

double ParallelMonteCarloMax(const TuningProblem& problem,
                             const Allocation& alloc, int trials,
                             uint64_t seed, bool include_processing) {
  HTUNE_CHECK_GE(trials, 1);
  const std::vector<TaskRates> tasks = BuildTaskRates(problem, alloc);
  // Each trial draws from its own SplitMix64-derived stream and writes only
  // its own slot, so the estimate is bitwise-identical for any thread
  // count; the reduction below runs serially in trial order.
  std::vector<double> per_trial(static_cast<size_t>(trials), 0.0);
  ParallelFor(per_trial.size(), [&](size_t trial) {
    Random rng(SplitMix64(seed + static_cast<uint64_t>(trial)).Next());
    per_trial[trial] = OneTrialMax(tasks, rng, include_processing);
  });
  double total = 0.0;
  for (double value : per_trial) {
    total += value;
  }
  return total / static_cast<double>(trials);
}

}  // namespace

double MonteCarloOverallLatency(const TuningProblem& problem,
                                const Allocation& alloc, int trials,
                                Random& rng) {
  return MonteCarloMax(problem, alloc, trials, rng, /*include_processing=*/true);
}

double MonteCarloPhase1Latency(const TuningProblem& problem,
                               const Allocation& alloc, int trials,
                               Random& rng) {
  return MonteCarloMax(problem, alloc, trials, rng,
                       /*include_processing=*/false);
}

double ParallelMonteCarloOverallLatency(const TuningProblem& problem,
                                        const Allocation& alloc, int trials,
                                        uint64_t seed) {
  return ParallelMonteCarloMax(problem, alloc, trials, seed,
                               /*include_processing=*/true);
}

double ParallelMonteCarloPhase1Latency(const TuningProblem& problem,
                                       const Allocation& alloc, int trials,
                                       uint64_t seed) {
  return ParallelMonteCarloMax(problem, alloc, trials, seed,
                               /*include_processing=*/false);
}

}  // namespace htune
