#ifndef HTUNE_TUNING_PROBLEM_H_
#define HTUNE_TUNING_PROBLEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/latency_model.h"
#include "model/price_rate_curve.h"

namespace htune {

/// A group of statistically identical atomic tasks: same difficulty
/// (processing rate), same repetition requirement, same price-rate
/// behaviour. Scenario I has one group; Scenario II groups by repetition
/// count; Scenario III groups by (type, repetitions) (§4.4).
struct TaskGroup {
  /// Display name for reports, e.g. "sort-votes x5".
  std::string name;
  /// Number of atomic tasks in the group (published in parallel).
  int num_tasks = 1;
  /// Sequential answer repetitions each task requires.
  int repetitions = 1;
  /// Processing clock rate lambda_p (difficulty; unaffected by payment).
  double processing_rate = 1.0;
  /// Maps per-repetition payment to the on-hold rate lambda_o for this task
  /// type. Shared (not owned per group copy) so problems are cheap to copy.
  std::shared_ptr<const PriceRateCurve> curve;

  /// Total repetitions across the group = num_tasks * repetitions: the cost
  /// in budget units of raising the per-repetition price by one unit.
  long UnitCost() const {
    return static_cast<long>(num_tasks) * static_cast<long>(repetitions);
  }
};

/// An instance of the H-Tuning problem (Definition 3): allocate a discrete
/// budget over the groups' repetitions to minimize the latency target.
struct TuningProblem {
  std::vector<TaskGroup> groups;
  /// Total budget B in payment units (the AMT granularity, $0.01).
  long budget = 0;

  /// Minimum feasible spend: one unit per repetition of every task.
  long MinimumBudget() const;
  /// Total number of atomic tasks across groups.
  int TotalTasks() const;
  /// Total repetitions across groups.
  long TotalRepetitions() const;
};

/// Validates an instance: at least one group; every group has num_tasks >= 1,
/// repetitions >= 1, processing_rate > 0, a curve; budget >= MinimumBudget().
Status ValidateProblem(const TuningProblem& problem);

/// Returns a copy of `problem` whose group curves are wrapped with
/// AdjustCurveForAbandonment, so every allocator and latency evaluator
/// consumes the renewal-corrected effective on-hold rates: allocations
/// tuned on the result stay optimal (to first order) on a market with the
/// given abandonment behaviour. A model with prob == 0 returns the problem
/// unchanged.
TuningProblem ProblemWithAbandonment(const TuningProblem& problem,
                                     const AbandonmentModel& model);

}  // namespace htune

#endif  // HTUNE_TUNING_PROBLEM_H_
