#ifndef HTUNE_TUNING_EVALUATOR_H_
#define HTUNE_TUNING_EVALUATOR_H_

#include <vector>

#include "rng/random.h"
#include "tuning/allocation.h"
#include "tuning/problem.h"

namespace htune {

/// Analytic expectations under the paper's stochastic model (§3.2): each
/// repetition's on-hold phase is Exp(lambda_o(price)) and its processing
/// phase is Exp(lambda_p); a task's phase-1 latency is the sum over its
/// sequential repetitions (Erlang for uniform prices, hypoexponential
/// otherwise). All functions require a structurally valid allocation
/// (ValidateAllocation) and abort on shape mismatches.

/// E[max over the tasks of group `g` of phase-1 (on-hold) latency].
double ExpectedPhase1GroupLatency(const TaskGroup& group,
                                  const GroupAllocation& alloc);

/// Per-group phase-1 expectations, in group order.
std::vector<double> ExpectedPhase1GroupLatencies(const TuningProblem& problem,
                                                 const Allocation& alloc);

/// Sum of per-group phase-1 expectations: the paper's tractable surrogate
/// for E[max over all tasks] (an upper bound; §4.3.1), minimized by RA.
double Phase1GroupSum(const TuningProblem& problem, const Allocation& alloc);

/// E[max over ALL tasks of phase-1 latency] — the true Scenario I/II target.
double ExpectedPhase1Latency(const TuningProblem& problem,
                             const Allocation& alloc);

/// HA's objective 2 (§4.4): max over groups of
/// E[phase-1 of group] + E[phase-2 of one task] — the expected latency of
/// the "most difficult task".
double MostDifficultObjective(const TuningProblem& problem,
                              const Allocation& alloc);

/// Monte Carlo estimate of E[max over all tasks of total latency
/// (on-hold + processing over all repetitions)], sampling the model
/// directly with `trials` independent job executions.
double MonteCarloOverallLatency(const TuningProblem& problem,
                                const Allocation& alloc, int trials,
                                Random& rng);

/// Monte Carlo estimate of E[max over all tasks of phase-1 latency].
double MonteCarloPhase1Latency(const TuningProblem& problem,
                               const Allocation& alloc, int trials,
                               Random& rng);

/// Parallel Monte Carlo estimate of E[max over all tasks of total latency],
/// fanning the trials out on the default thread pool. Trial t samples from
/// an independent stream seeded as SplitMix64(seed + t), and per-trial
/// results are reduced serially in trial order, so the estimate is
/// bitwise-identical for any thread count (it differs from the serial
/// single-stream MonteCarloOverallLatency estimate, which threads one
/// stream through all trials).
double ParallelMonteCarloOverallLatency(const TuningProblem& problem,
                                        const Allocation& alloc, int trials,
                                        uint64_t seed);

/// Parallel Monte Carlo estimate of E[max over all tasks of phase-1
/// latency]; same determinism contract as ParallelMonteCarloOverallLatency.
double ParallelMonteCarloPhase1Latency(const TuningProblem& problem,
                                       const Allocation& alloc, int trials,
                                       uint64_t seed);

}  // namespace htune

#endif  // HTUNE_TUNING_EVALUATOR_H_
