#include "tuning/brute_force.h"

#include <limits>

namespace htune {
namespace {

void Recurse(const TuningProblem& problem, size_t group, long remaining,
             std::vector<int>& prices,
             const std::function<void(const std::vector<int>&)>& fn) {
  if (group == problem.groups.size()) {
    fn(prices);
    return;
  }
  // Reserve one unit per repetition for the remaining groups.
  long reserved = 0;
  for (size_t j = group + 1; j < problem.groups.size(); ++j) {
    reserved += problem.groups[j].UnitCost();
  }
  const long unit = problem.groups[group].UnitCost();
  for (long p = 1; unit * p + reserved <= remaining; ++p) {
    prices[group] = static_cast<int>(p);
    Recurse(problem, group + 1, remaining - unit * p, prices, fn);
  }
  prices[group] = 0;
}

}  // namespace

void ForEachUniformPriceVector(
    const TuningProblem& problem,
    const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> prices(problem.groups.size(), 0);
  Recurse(problem, 0, problem.budget, prices, fn);
}

StatusOr<std::vector<int>> BruteForceMinimize(
    const TuningProblem& problem,
    const std::function<double(const std::vector<int>&)>& objective) {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  std::vector<int> best;
  double best_value = std::numeric_limits<double>::infinity();
  ForEachUniformPriceVector(problem, [&](const std::vector<int>& prices) {
    const double value = objective(prices);
    if (value < best_value ||
        (value == best_value && (best.empty() || prices < best))) {
      best_value = value;
      best = prices;
    }
  });
  if (best.empty()) {
    return InvalidArgumentError("BruteForceMinimize: no feasible allocation");
  }
  return best;
}

}  // namespace htune
