#include "tuning/even_allocator.h"

#include <vector>

#include "common/check.h"

namespace htune {

StatusOr<Allocation> EvenAllocator::Allocate(
    const TuningProblem& problem) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  const TaskGroup& first = problem.groups.front();
  for (const TaskGroup& g : problem.groups) {
    if (g.repetitions != first.repetitions ||
        g.processing_rate != first.processing_rate ||
        g.curve.get() != first.curve.get()) {
      return FailedPreconditionError(
          "EvenAllocator: Scenario I requires homogeneous tasks (equal "
          "repetitions, difficulty and price-rate curve in every group)");
    }
  }

  const long n = problem.TotalTasks();
  const long m = first.repetitions;
  const long total_reps = n * m;
  // ValidateProblem guarantees budget >= total_reps, so delta >= 1.
  const long delta = problem.budget / total_reps;
  const long remainder = problem.budget % total_reps;
  const long gamma = remainder / n;  // < m
  const long sigma = remainder % n;  // < n
  HTUNE_CHECK_LT(gamma, m);
  HTUNE_CHECK_EQ(delta * total_reps + gamma * n + sigma, problem.budget);

  Allocation allocation;
  allocation.groups.reserve(problem.groups.size());
  long task_index = 0;  // global task index across groups
  for (const TaskGroup& g : problem.groups) {
    GroupAllocation ga = UniformGroupAllocation(g.num_tasks, g.repetitions,
                                                static_cast<int>(delta));
    for (auto& task : ga.prices) {
      // gamma extra units per task, one per repetition.
      for (long r = 0; r < gamma; ++r) {
        ++task[static_cast<size_t>(r)];
      }
      // sigma single units to the first sigma tasks, on a repetition whose
      // payment was not increased in the previous step.
      if (task_index < sigma) {
        ++task[static_cast<size_t>(gamma)];
      }
      ++task_index;
    }
    allocation.groups.push_back(std::move(ga));
  }
  HTUNE_CHECK_EQ(allocation.TotalCost(), problem.budget);
  return allocation;
}

}  // namespace htune
