#ifndef HTUNE_TUNING_BRUTE_FORCE_H_
#define HTUNE_TUNING_BRUTE_FORCE_H_

#include <functional>
#include <vector>

#include "common/statusor.h"
#include "tuning/problem.h"

namespace htune {

/// Enumerates every uniform per-group price vector (each group pays one
/// price per repetition, price >= 1) whose cost sum_i u_i * p_i does not
/// exceed the budget, invoking `fn` on each. Exponential in the number of
/// groups; intended as a test oracle on small instances.
void ForEachUniformPriceVector(
    const TuningProblem& problem,
    const std::function<void(const std::vector<int>&)>& fn);

/// Returns the uniform price vector minimizing `objective` over the full
/// feasible set (ties broken toward the lexicographically smallest vector).
/// Returns InvalidArgument for malformed problems.
StatusOr<std::vector<int>> BruteForceMinimize(
    const TuningProblem& problem,
    const std::function<double(const std::vector<int>&)>& objective);

}  // namespace htune

#endif  // HTUNE_TUNING_BRUTE_FORCE_H_
